package bdi

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// Facade tests: the public API is the contract downstream users build
// against, so exercise each exported surface end-to-end.

func TestFacadeQuickstartFlow(t *testing.T) {
	world := NewWorld(WorldConfig{Seed: 1, NumEntities: 40})
	web := BuildWeb(world, SourceConfig{Seed: 2, NumSources: 10, DirtLevel: 1})
	rep, err := NewPipeline(PipelineConfig{Fuser: "accu"}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) == 0 || len(rep.Fusion.Values) == 0 {
		t.Fatal("pipeline produced nothing")
	}
	prf := EvalClusters(rep.Clusters, web.Dataset.GroundTruthClusters())
	if prf.F1 < 0.8 {
		t.Errorf("facade pipeline F1 = %f", prf.F1)
	}
}

func TestFacadeValueHelpers(t *testing.T) {
	if !ParseValue("3.5").Equal(NumberValue(3.5)) {
		t.Error("ParseValue number")
	}
	if StringValue("").Kind != 0 {
		t.Error("empty string should be null-kind")
	}
	r := NewRecord("r1", "s1")
	r.Set("x", BoolValue(true))
	if !r.Get("x").Bool {
		t.Error("record set/get")
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	d := NewDataset()
	if err := d.AddSource(&Source{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRecord(NewRecord("r", "s").Set("title", StringValue("x y"))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRecords() != 1 {
		t.Error("JSON round trip lost records")
	}
}

func TestFacadeStageComposition(t *testing.T) {
	// Compose blocking + matching + clustering through the facade only.
	d := NewDataset()
	_ = d.AddSource(&Source{ID: "a"})
	_ = d.AddSource(&Source{ID: "b"})
	_ = d.AddRecord(NewRecord("r1", "a").Set("title", StringValue("acme rocket skate")))
	_ = d.AddRecord(NewRecord("r2", "b").Set("title", StringValue("acme rocket skate pro")))
	_ = d.AddRecord(NewRecord("r3", "b").Set("title", StringValue("zenix blender")))

	cands := StandardBlocking{Key: TokenBlockingKey("title")}.Candidates(d.Records())
	matched := MatchPairs(d, cands, ThresholdMatcher{
		Comparator: UniformComparator(Jaccard, "title"),
		Threshold:  0.6,
	}, 2)
	clusters := ConnectedComponents{}.Cluster([]string{"r1", "r2", "r3"}, matched)
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestFacadeFusers(t *testing.T) {
	for _, name := range []string{"vote", "truthfinder", "accu", "popaccu", "accucopy"} {
		f, err := BuildFuser(name)
		if err != nil {
			t.Fatal(err)
		}
		cs := NewClaimSet()
		it := Item{Entity: "e", Attr: "v"}
		cs.Add(Claim{Item: it, Source: "s1", Value: StringValue("x")})
		cs.Add(Claim{Item: it, Source: "s2", Value: StringValue("x")})
		cs.Add(Claim{Item: it, Source: "s3", Value: StringValue("y")})
		res, err := f.Fuse(cs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Values[it].Equal(StringValue("x")) {
			t.Errorf("%s fused %v", name, res.Values[it])
		}
	}
}

func TestFacadeTemporal(t *testing.T) {
	m := NewTemporalMatcher(UniformComparator(Jaccard, "title"))
	a := NewRecord("a", "s").Set("title", StringValue("same thing")).Set("epoch", NumberValue(0))
	b := NewRecord("b", "s").Set("title", StringValue("same thing")).Set("epoch", NumberValue(3))
	if _, ok := m.Match(a, b); !ok {
		t.Error("identical titles must match across epochs")
	}
}

func TestFacadeResilientIngestion(t *testing.T) {
	world := NewWorld(WorldConfig{Seed: 5, NumEntities: 30})
	web := BuildWeb(world, SourceConfig{Seed: 6, NumSources: 8})

	// Every source dead: ingestion degrades to an empty fleet and says so.
	fleet := WrapAllFaults(SourcesFromWeb(web), FaultConfig{Seed: 9, DeadRate: 1})
	_, rep, err := NewIngestor(IngestConfig{MinSources: 1}).Ingest(context.Background(), fleet)
	if !errors.Is(err, ErrTooFewSources) {
		t.Fatalf("all-dead fleet: err = %v, want ErrTooFewSources", err)
	}
	if rep.Succeeded != 0 || len(rep.Dropped) != rep.Total {
		t.Errorf("all-dead fleet: %d ok, %d/%d dropped", rep.Succeeded, len(rep.Dropped), rep.Total)
	}

	// Clean fleet: everything survives and the dataset feeds the pipeline.
	d, rep, err := NewIngestor(IngestConfig{}).Ingest(context.Background(), SourcesFromWeb(web))
	if err != nil || rep.Succeeded != rep.Total {
		t.Fatalf("clean fleet: %d/%d ok, err = %v", rep.Succeeded, rep.Total, err)
	}
	if _, err := NewPipeline(PipelineConfig{}).RunCtx(context.Background(), d); err != nil {
		t.Fatalf("pipeline over ingested dataset: %v", err)
	}
}

func TestFacadeSentinelErrors(t *testing.T) {
	if _, err := BuildFuser("no-such-fuser"); !errors.Is(err, ErrUnknownFuser) {
		t.Errorf("BuildFuser err = %v", err)
	}
	if err := (PipelineConfig{Order: Order(99)}).Validate(); !errors.Is(err, ErrUnknownOrder) {
		t.Errorf("Validate order err = %v", err)
	}
	if err := (PipelineConfig{Clusterer: "no-such"}).Validate(); !errors.Is(err, ErrUnknownClusterer) {
		t.Errorf("Validate clusterer err = %v", err)
	}
}

func TestFacadeOrderConstants(t *testing.T) {
	if LinkageFirst.String() != "linkage-first" || SchemaFirst.String() != "schema-first" {
		t.Error("order constants broken")
	}
}
