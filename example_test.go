package bdi_test

import (
	"fmt"

	bdi "repro"
)

// The end-to-end pipeline over a generated web of sources.
func Example() {
	world := bdi.NewWorld(bdi.WorldConfig{Seed: 1, NumEntities: 30})
	web := bdi.BuildWeb(world, bdi.SourceConfig{Seed: 2, NumSources: 8, DirtLevel: 1})
	report, err := bdi.NewPipeline(bdi.PipelineConfig{Fuser: "accu"}).Run(web.Dataset)
	if err != nil {
		panic(err)
	}
	prf := bdi.EvalClusters(report.Clusters, web.Dataset.GroundTruthClusters())
	fmt.Printf("linkage F1 >= 0.9: %v\n", prf.F1 >= 0.9)
	// Output: linkage F1 >= 0.9: true
}

// Majority voting over conflicting claims.
func ExampleMajorityVote() {
	cs := bdi.NewClaimSet()
	item := bdi.Item{Entity: "flight-17", Attr: "gate"}
	cs.Add(bdi.Claim{Item: item, Source: "airport", Value: bdi.StringValue("B22")})
	cs.Add(bdi.Claim{Item: item, Source: "airline", Value: bdi.StringValue("B22")})
	cs.Add(bdi.Claim{Item: item, Source: "tracker", Value: bdi.StringValue("C10")})
	res, _ := bdi.MajorityVote{}.Fuse(cs)
	fmt.Println(res.Values[item])
	// Output: B22
}

// Identifier-rule matching: shared product ids force a match.
func ExampleRuleMatcher() {
	a := bdi.NewRecord("a", "s1").Set("pid", bdi.StringValue("X-100"))
	b := bdi.NewRecord("b", "s2").Set("pid", bdi.StringValue("X-100"))
	score, match := bdi.RuleMatcher{Exact: []string{"pid"}}.Match(a, b)
	fmt.Println(score, match)
	// Output: 1 true
}

// Token blocking groups records sharing title words.
func ExampleBuildBlocks() {
	records := []*bdi.Record{
		bdi.NewRecord("r1", "s").Set("title", bdi.StringValue("acme rocket")),
		bdi.NewRecord("r2", "s").Set("title", bdi.StringValue("acme skate")),
		bdi.NewRecord("r3", "s").Set("title", bdi.StringValue("zenix blender")),
	}
	blocks := bdi.BuildBlocks(records, bdi.TokenBlockingKey("title"))
	fmt.Println(len(blocks["acme"]), len(blocks["zenix"]))
	// Output: 2 1
}

// Incremental linkage over a stream of records.
func ExampleIncrementalLinker() {
	linker := bdi.NewIncrementalLinker(bdi.TitleTokenKey, bdi.ThresholdMatcher{
		Comparator: bdi.UniformComparator(bdi.Jaccard, "title"),
		Threshold:  0.6,
	})
	src := &bdi.Source{ID: "s"}
	_, _ = linker.Insert(src, bdi.NewRecord("r1", "s").Set("title", bdi.StringValue("nova camera pro")))
	matched, _ := linker.Insert(src, bdi.NewRecord("r2", "s").Set("title", bdi.StringValue("nova camera pro x")))
	fmt.Println(matched)
	// Output: [r1]
}

// Swoosh merges records so accumulated evidence links what pairwise
// matching cannot.
func ExampleSwoosh() {
	r1 := bdi.NewRecord("r1", "s1").Set("pid1", bdi.StringValue("A"))
	r2 := bdi.NewRecord("r2", "s2").Set("pid1", bdi.StringValue("A")).Set("pid2", bdi.StringValue("B"))
	r3 := bdi.NewRecord("r3", "s3").Set("pid2", bdi.StringValue("B"))
	clusters, _, _ := bdi.Swoosh{Matcher: bdi.RuleMatcher{Exact: []string{"pid1", "pid2"}}}.
		Resolve([]*bdi.Record{r1, r2, r3})
	fmt.Println(len(clusters), len(clusters[0]))
	// Output: 1 3
}
