package bdi

import (
	"math"
	"sort"
	"testing"

	"repro/internal/experiments"
)

// One benchmark per experiment in DESIGN.md's index. Each iteration
// regenerates the experiment's workload and recomputes its table, so
// ns/op measures the full cost of reproducing that result. Key quality
// figures are attached as custom metrics so `go test -bench` output
// doubles as a results summary.

func benchExperiment(b *testing.B, id string, metric func() (string, float64)) {
	b.Helper()
	r := experiments.Runner{Seed: 42}
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		name, v := metric()
		b.ReportMetric(v, name)
	}
}

func BenchmarkE1FusionUnderCopying(b *testing.B) {
	benchExperiment(b, "E1", func() (string, float64) {
		_, res, err := experiments.E1(42)
		if err != nil {
			b.Fatal(err)
		}
		return "accucopy@heavy", res.Accuracy[1.0]["accucopy"]
	})
}

func BenchmarkE2Convergence(b *testing.B) {
	benchExperiment(b, "E2", func() (string, float64) {
		_, res, err := experiments.E2(42)
		if err != nil {
			b.Fatal(err)
		}
		return "final-accuracy", res.Accuracy[len(res.Accuracy)-1]
	})
}

func BenchmarkE3Blocking(b *testing.B) {
	benchExperiment(b, "E3", func() (string, float64) {
		_, res, err := experiments.E3(42)
		if err != nil {
			b.Fatal(err)
		}
		return "token-PC", res.Quality["token(title)"].PairCompleteness
	})
}

func BenchmarkE4MetaBlocking(b *testing.B) {
	benchExperiment(b, "E4", func() (string, float64) {
		_, res, err := experiments.E4(42)
		if err != nil {
			b.Fatal(err)
		}
		return "ecbs+wep-PC", res.Meta["ecbs+wep"].PairCompleteness
	})
}

func BenchmarkE5Matchers(b *testing.B) {
	benchExperiment(b, "E5", func() (string, float64) {
		_, res, err := experiments.E5(42)
		if err != nil {
			b.Fatal(err)
		}
		return "rule-F1@dirt1", res.F1[1]["rule(id)"]
	})
}

func BenchmarkE6Clustering(b *testing.B) {
	benchExperiment(b, "E6", func() (string, float64) {
		_, res, err := experiments.E6(42)
		if err != nil {
			b.Fatal(err)
		}
		return "correlation-F1", res.PRF["correlation"].F1
	})
}

func BenchmarkE7Incremental(b *testing.B) {
	benchExperiment(b, "E7", func() (string, float64) {
		_, res, err := experiments.E7(42)
		if err != nil {
			b.Fatal(err)
		}
		return "incremental-F1", res.FinalIncrementalF1
	})
}

func BenchmarkE8SchemaAlignment(b *testing.B) {
	benchExperiment(b, "E8", func() (string, float64) {
		_, res, err := experiments.E8(42)
		if err != nil {
			b.Fatal(err)
		}
		return "align-F1@max-sources", res.LinkageF1[len(res.LinkageF1)-1]
	})
}

func BenchmarkE9ScaleOut(b *testing.B) {
	benchExperiment(b, "E9", func() (string, float64) {
		_, res, err := experiments.E9(42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[len(res.Speedup)-1], "cache-speedup")
		return "pairs/sec@max-workers", res.Throughput[len(res.Throughput)-1]
	})
}

func BenchmarkE10LessIsMore(b *testing.B) {
	benchExperiment(b, "E10", func() (string, float64) {
		_, res, err := experiments.E10(42)
		if err != nil {
			b.Fatal(err)
		}
		return "greedy-accuracy", res.Greedy.Quality
	})
}

func BenchmarkE11DomainStudy(b *testing.B) {
	benchExperiment(b, "E11", func() (string, float64) {
		_, res, err := experiments.E11(42)
		if err != nil {
			b.Fatal(err)
		}
		return "accucopy@stock", res.Accuracy["stock-like (heavy copying)"]["accucopy"]
	})
}

func BenchmarkE12Temporal(b *testing.B) {
	benchExperiment(b, "E12", func() (string, float64) {
		_, res, err := experiments.E12(42)
		if err != nil {
			b.Fatal(err)
		}
		return "temporal-F1@evolving", res.EvolvingTemporalF1
	})
}

func BenchmarkE13EndToEnd(b *testing.B) {
	benchExperiment(b, "E13", func() (string, float64) {
		_, res, err := experiments.E13(42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MatchSpeedup, "match-cache-speedup")
		return "linkage-F1", res.LinkageF1
	})
}

func BenchmarkE14OrderAblation(b *testing.B) {
	benchExperiment(b, "E14", func() (string, float64) {
		_, res, err := experiments.E14(42)
		if err != nil {
			b.Fatal(err)
		}
		return "linkage-first-align-F1", res.LinkageFirstAlignF1
	})
}

func BenchmarkE15OnlineFusion(b *testing.B) {
	benchExperiment(b, "E15", func() (string, float64) {
		_, res, err := experiments.E15(42)
		if err != nil {
			b.Fatal(err)
		}
		return "mean-probes", res.MeanProbes
	})
}

func BenchmarkE16PayAsYouGo(b *testing.B) {
	benchExperiment(b, "E16", func() (string, float64) {
		_, res, err := experiments.E16(42)
		if err != nil {
			b.Fatal(err)
		}
		return "F1@60q", res.F1[len(res.F1)-1]
	})
}

func BenchmarkE17Ablations(b *testing.B) {
	benchExperiment(b, "E17", func() (string, float64) {
		_, res, err := experiments.E17(42)
		if err != nil {
			b.Fatal(err)
		}
		return "bootstrap-gain", res.FuseBootstrap - res.FuseNoBootstrap
	})
}

func BenchmarkE18LSH(b *testing.B) {
	benchExperiment(b, "E18", func() (string, float64) {
		_, res, err := experiments.E18(42)
		if err != nil {
			b.Fatal(err)
		}
		return "lsh16x2-PC", res.Quality["minhash(16x2)"].PairCompleteness
	})
}

func BenchmarkE19Deception(b *testing.B) {
	benchExperiment(b, "E19", func() (string, float64) {
		_, res, err := experiments.E19(42)
		if err != nil {
			b.Fatal(err)
		}
		return "accucopy@8liars", res.Accuracy[8]["accucopy"]
	})
}

func BenchmarkE20ProgressiveER(b *testing.B) {
	benchExperiment(b, "E20", func() (string, float64) {
		_, res, err := experiments.E20(42)
		if err != nil {
			b.Fatal(err)
		}
		return "recall@10%budget", res.Progressive[2]
	})
}

func BenchmarkE21Discovery(b *testing.B) {
	benchExperiment(b, "E21", func() (string, float64) {
		_, res, err := experiments.E21(42)
		if err != nil {
			b.Fatal(err)
		}
		return "final-recall", res.Recall[len(res.Recall)-1]
	})
}

func BenchmarkE22WrapperInduction(b *testing.B) {
	benchExperiment(b, "E22", func() (string, float64) {
		_, res, err := experiments.E22(42)
		if err != nil {
			b.Fatal(err)
		}
		return "reinduced-recall", res.ReinducedRecall
	})
}

// Micro-benchmarks for the primitives the pipeline spends its time in.

// matchBenchWorkload is the E5-style dirty-duplicate workload used by
// the cached/uncached matching benchmarks.
func matchBenchWorkload() (d *Dataset, cands []Pair) {
	world := NewWorld(WorldConfig{Seed: 9, NumEntities: 60, Categories: []string{"camera"}})
	web := BuildWeb(world, SourceConfig{
		Seed: 10, NumSources: 10, DirtLevel: 2,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	d = web.Dataset
	cands = StandardBlocking{Key: TokenBlockingKey("title"), MaxBlock: 200}.Candidates(d.Records())
	return d, cands
}

func matchBenchComparator() *RecordComparator {
	return NewRecordComparator(
		FieldWeight{Attr: "title", Weight: 2, Metric: Jaccard},
		FieldWeight{Attr: "camera_brand", Weight: 1, Metric: NamedMetric("dice")},
		FieldWeight{Attr: "camera_color", Weight: 1},
		FieldWeight{Attr: "camera_price_usd", Weight: 1},
	)
}

// BenchmarkMatchPairsCached scores candidate pairs with the per-record
// feature cache (the MatchPairs default).
func BenchmarkMatchPairsCached(b *testing.B) {
	d, cands := matchBenchWorkload()
	m := ThresholdMatcher{Comparator: matchBenchComparator(), Threshold: 0.6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPairs(d, cands, m, 1)
	}
	b.ReportMetric(float64(len(cands)), "pairs/batch")
}

// BenchmarkMatchPairsUncached is the same workload with the cache
// disabled: every pair re-tokenises both records.
func BenchmarkMatchPairsUncached(b *testing.B) {
	d, cands := matchBenchWorkload()
	m := NoIndexMatcher(ThresholdMatcher{Comparator: matchBenchComparator(), Threshold: 0.6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPairs(d, cands, m, 1)
	}
	b.ReportMetric(float64(len(cands)), "pairs/batch")
}

// BenchmarkMatchPairsObsDisabled is the cached workload routed through
// the instrumented entry point with a nil registry. Compare allocs/op
// against BenchmarkMatchPairsCached: a disabled registry must add none.
func BenchmarkMatchPairsObsDisabled(b *testing.B) {
	d, cands := matchBenchWorkload()
	m := ThresholdMatcher{Comparator: matchBenchComparator(), Threshold: 0.6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPairsObs(d, cands, m, 1, nil)
	}
	b.ReportMetric(float64(len(cands)), "pairs/batch")
}

// BenchmarkMatchPairsObsEnabled is the same workload with a live
// registry attached, to price the enabled instrumentation.
func BenchmarkMatchPairsObsEnabled(b *testing.B) {
	d, cands := matchBenchWorkload()
	m := ThresholdMatcher{Comparator: matchBenchComparator(), Threshold: 0.6}
	reg := NewMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPairsObs(d, cands, m, 1, reg)
	}
	b.ReportMetric(float64(len(cands)), "pairs/batch")
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	world := NewWorld(WorldConfig{Seed: 1, NumEntities: 60})
	web := BuildWeb(world, SourceConfig{Seed: 2, NumSources: 12, DirtLevel: 1})
	p := NewPipeline(PipelineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(web.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateWeb(b *testing.B) {
	world := NewWorld(WorldConfig{Seed: 1, NumEntities: 200})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildWeb(world, SourceConfig{Seed: int64(i), NumSources: 20, DirtLevel: 2})
	}
}

func BenchmarkJaccardTitle(b *testing.B) {
	x, y := "nova camera pro 300 deluxe", "nova camera pro 300"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}

func BenchmarkJaroWinklerTitle(b *testing.B) {
	x, y := "nova camera pro 300 deluxe", "nova camera pro 300"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaroWinkler(x, y)
	}
}

func BenchmarkLevenshteinTitle(b *testing.B) {
	x, y := "nova camera pro 300 deluxe", "nova camera pro 300"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}

func BenchmarkTokenBlocking(b *testing.B) {
	world := NewWorld(WorldConfig{Seed: 3, NumEntities: 150})
	web := BuildWeb(world, SourceConfig{Seed: 4, NumSources: 15, DirtLevel: 1})
	records := web.Dataset.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildBlocks(records, TokenBlockingKey("title")).Pairs()
	}
}

// blockingBenchWorkload is the E3-style dirty web the blocking-engine
// benchmarks run over.
func blockingBenchWorkload() []*Record {
	world := NewWorld(WorldConfig{Seed: 3, NumEntities: 400, Categories: []string{"camera"}})
	web := BuildWeb(world, SourceConfig{
		Seed: 4, NumSources: 20, DirtLevel: 2,
		IdentifierRate: 0.7, Heterogeneity: 0.3,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	return web.Dataset.Records()
}

// legacyBuildBlocks is the pre-engine sequential implementation (fresh
// dedup map per record) kept inline as the benchmark baseline.
func legacyBuildBlocks(records []*Record, key KeyFunc) Blocks {
	b := Blocks{}
	for _, r := range records {
		seen := map[string]bool{}
		for _, k := range key(r) {
			if k == "" || seen[k] {
				continue
			}
			seen[k] = true
			b[k] = append(b[k], r.ID)
		}
	}
	return b
}

// legacyPairs is the pre-engine map[Pair]bool dedup kept inline as the
// benchmark baseline.
func legacyPairs(blocks Blocks) []Pair {
	seen := map[Pair]bool{}
	var out []Pair
	for _, k := range blocks.SortedKeys() {
		ids := blocks[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				p := NewPair(ids[i], ids[j])
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// BenchmarkBuildBlocks compares block building: the legacy per-record-
// map loop, the engine at one worker, and the engine at NumCPU.
func BenchmarkBuildBlocks(b *testing.B) {
	records := blockingBenchWorkload()
	key := TokenBlockingKey("title")
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyBuildBlocks(records, key)
		}
	})
	b.Run("engine-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildIndexedBlocks(records, key, 1)
		}
	})
	b.Run("engine-ncpu", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildIndexedBlocks(records, key, 0)
		}
	})
}

// BenchmarkBlocksPairs compares candidate expansion + dedup: the legacy
// map[Pair]bool path against the packed pair-code sort/compact path.
func BenchmarkBlocksPairs(b *testing.B) {
	records := blockingBenchWorkload()
	idx := BuildIndexedBlocks(records, TokenBlockingKey("title"), 0).Purge(200)
	blocks := idx.Blocks()
	n := 0
	b.Run("legacy-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n = len(legacyPairs(blocks))
		}
		b.ReportMetric(float64(n), "pairs/batch")
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n = idx.CandidateSet().Len()
		}
		b.ReportMetric(float64(n), "pairs/batch")
	})
}

// legacyMetaCandidates is the pre-engine ECBS+WEP meta-blocking (maps
// keyed by pair and record ID) kept inline as the benchmark baseline.
func legacyMetaCandidates(blocks Blocks) []Pair {
	blockOf := map[string][]string{}
	for _, k := range blocks.SortedKeys() {
		for _, id := range blocks[k] {
			blockOf[id] = append(blockOf[id], k)
		}
	}
	common := map[Pair]int{}
	for _, k := range blocks.SortedKeys() {
		ids := blocks[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				common[NewPair(ids[i], ids[j])]++
			}
		}
	}
	type edge struct {
		p Pair
		w float64
	}
	nBlocks := float64(len(blocks))
	edges := make([]edge, 0, len(common))
	for p, c := range common {
		w := float64(c) *
			math.Log(nBlocks/float64(len(blockOf[p.A]))) *
			math.Log(nBlocks/float64(len(blockOf[p.B])))
		edges = append(edges, edge{p: p, w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].p.A != edges[j].p.A {
			return edges[i].p.A < edges[j].p.A
		}
		return edges[i].p.B < edges[j].p.B
	})
	if len(edges) == 0 {
		return nil
	}
	var sum float64
	for _, e := range edges {
		sum += e.w
	}
	mean := sum / float64(len(edges))
	var out []Pair
	for _, e := range edges {
		if e.w > mean {
			out = append(out, e.p)
		}
	}
	return out
}

// BenchmarkMetaBlocking compares ECBS+WEP meta-blocking: the legacy
// map-of-pairs graph against the interned kernel, sequential and
// parallel.
func BenchmarkMetaBlocking(b *testing.B) {
	records := blockingBenchWorkload()
	idx := BuildIndexedBlocks(records, TokenBlockingKey("title"), 0).Purge(200)
	blocks := idx.Blocks()
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyMetaCandidates(blocks)
		}
	})
	b.Run("engine-1", func(b *testing.B) {
		mb := MetaBlocker{Weight: ECBSWeight, Prune: WEPPrune, Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mb.Pruned(idx)
		}
	})
	b.Run("engine-ncpu", func(b *testing.B) {
		mb := MetaBlocker{Weight: ECBSWeight, Prune: WEPPrune}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mb.Pruned(idx)
		}
	})
}

// BenchmarkACCUFuse times the full ACCU EM on an E2-style workload
// scaled up so the parallel engine has work to spread: sequential
// (Workers: 1) vs the default worker pool. Both produce byte-identical
// results (pinned by internal/fusion/engine_test.go).
func BenchmarkACCUFuse(b *testing.B) {
	cw := BuildClaims(ClaimConfig{
		Seed: 5, NumItems: 2000, NumValues: 5, NumSources: 30,
		MinAccuracy: 0.4, MaxAccuracy: 0.95,
	})
	for _, bench := range []struct {
		name string
		f    ACCU
	}{
		{"seq", ACCU{Workers: 1}},
		{"par", ACCU{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.f.Fuse(cw.Claims); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCopyDetect times the O(S²·overlap) pairwise copy detector,
// sequential vs parallel over source pairs.
func BenchmarkCopyDetect(b *testing.B) {
	cw := BuildClaims(ClaimConfig{
		Seed: 9, NumItems: 1500, NumValues: 5, NumSources: 40,
		MinAccuracy: 0.4, MaxAccuracy: 0.95, NumCopiers: 8, CopyRate: 0.9,
	})
	truth, err := ACCU{}.Fuse(cw.Claims)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		cd   CopyDetector
	}{
		{"seq", CopyDetector{Workers: 1}},
		{"par", CopyDetector{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.cd.Detect(cw.Claims, truth, truth.SourceAccuracy)
			}
		})
	}
}

func BenchmarkFuseACCUCOPY(b *testing.B) {
	cw := BuildClaims(ClaimConfig{Seed: 6, NumItems: 200, NumSources: 8, NumCopiers: 4})
	f := ACCUCOPY{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Fuse(cw.Claims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	world := NewWorld(WorldConfig{Seed: 7, NumEntities: 500, Categories: []string{"camera"}})
	web := BuildWeb(world, SourceConfig{Seed: 8, NumSources: 20, DirtLevel: 1})
	records := web.Dataset.Records()
	linker := NewIncrementalLinker(TitleTokenKey, ThresholdMatcher{
		Comparator: UniformComparator(Jaccard, "title"),
		Threshold:  0.72,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := records[i%len(records)].Clone()
		r.ID = r.ID + "-" + itoa(i)
		if _, err := linker.Insert(web.Dataset.Source(r.SourceID), r); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
