package bdi

import (
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/extract"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/schema"
	"repro/internal/similarity"
	"repro/internal/sourcesel"
	"repro/internal/temporal"
	"repro/internal/tokenize"
)

// Stage-level public API: the individual pipeline components for users
// who compose their own flows instead of running the end-to-end
// Pipeline.

// Similarity.
type (
	// Metric is a string-similarity function in [0,1].
	Metric = similarity.Metric
	// FieldWeight assigns a comparison weight and metric to an attribute.
	FieldWeight = similarity.FieldWeight
	// RecordComparator scores record pairs by weighted field similarity.
	RecordComparator = similarity.RecordComparator
	// FeatureIndex caches per-record tokenisation and TF-IDF vectors so
	// batch matching tokenises each record once, not once per pair.
	FeatureIndex = similarity.FeatureIndex
	// Corpus holds document frequencies for TF-IDF weighting.
	Corpus = tokenize.Corpus
)

var (
	// NewRecordComparator builds a comparator over weighted fields.
	NewRecordComparator = similarity.NewRecordComparator
	// UniformComparator weights the given attributes equally.
	UniformComparator = similarity.UniformComparator
	// NamedMetric resolves a built-in metric by name ("jaccard",
	// "jarowinkler", "levenshtein", ...).
	NamedMetric = similarity.Named
	// Jaccard is word-set Jaccard similarity.
	Jaccard = similarity.Jaccard
	// JaroWinkler is prefix-boosted Jaro similarity.
	JaroWinkler = similarity.JaroWinkler
	// Levenshtein is the unit-cost edit distance.
	Levenshtein = similarity.Levenshtein
	// TFIDF is corpus-weighted cosine similarity as a Metric.
	TFIDF = similarity.TFIDF
	// BuildFeatureIndex precomputes comparison features for a record set.
	BuildFeatureIndex = similarity.BuildFeatureIndex
	// BuildFeatureIndexCorpus is BuildFeatureIndex with an explicit
	// TF-IDF corpus.
	BuildFeatureIndexCorpus = similarity.BuildFeatureIndexCorpus
	// NewCorpus returns an empty TF-IDF corpus.
	NewCorpus = tokenize.NewCorpus
)

// Blocking.
type (
	// Blocker produces candidate pairs from records.
	Blocker = blocking.Blocker
	// KeyFunc derives blocking keys from a record.
	KeyFunc = blocking.KeyFunc
	// StandardBlocking is classic key blocking.
	StandardBlocking = blocking.Standard
	// SortedNeighborhood is windowed sorted-key blocking.
	SortedNeighborhood = blocking.SortedNeighborhood
	// MetaBlocker prunes a redundancy-positive block collection.
	MetaBlocker = blocking.MetaBlocker
	// Blocks is the map form of a block collection.
	Blocks = blocking.Blocks
	// BlockingEngine interns record IDs once for several blocking
	// passes over the same records.
	BlockingEngine = blocking.Engine
	// IndexedBlocks is the interned, rank-based block collection the
	// parallel engine produces.
	IndexedBlocks = blocking.Indexed
	// CandidateSet is a deduplicated candidate collection packed as
	// uint64 rank codes; it streams into MatchPairsFrom without a pair
	// slice ever existing.
	CandidateSet = blocking.CandidateSet
)

// Edge-weighting and pruning schemes for MetaBlocker.
const (
	CBSWeight  = blocking.CBS
	ECBSWeight = blocking.ECBS
	JSWeight   = blocking.JS
	WEPPrune   = blocking.WEP
	CEPPrune   = blocking.CEP
	WNPPrune   = blocking.WNP
)

var (
	// TokenBlockingKey emits one key per token of the given attributes.
	TokenBlockingKey = blocking.TokenKey
	// ExactBlockingKey blocks on the normalised attribute value.
	ExactBlockingKey = blocking.AttrExactKey
	// PrefixBlockingKey blocks on a value prefix.
	PrefixBlockingKey = blocking.AttrPrefixKey
	// QGramBlockingKey blocks on padded q-grams.
	QGramBlockingKey = blocking.QGramKey
	// BuildBlocks groups records by blocking key.
	BuildBlocks = blocking.BuildBlocks
	// NewBlockingEngine interns record IDs for sharded block building.
	NewBlockingEngine = blocking.NewEngine
	// UnionCandidateSets unions packed candidate sets, deduplicating
	// while preserving first-seen order.
	UnionCandidateSets = blocking.UnionCandidates
)

// BuildIndexedBlocks builds an interned block collection across the
// given number of workers (0 = NumCPU) — the one-shot engine form.
func BuildIndexedBlocks(records []*Record, key KeyFunc, workers int) *IndexedBlocks {
	return blocking.NewEngine(records, workers).Blocks(key)
}

// Matching and clustering.
type (
	// Matcher decides whether a candidate pair co-refers.
	Matcher = linkage.Matcher
	// ThresholdMatcher wraps a comparator with a decision threshold.
	ThresholdMatcher = linkage.ThresholdMatcher
	// RuleMatcher matches on identifier equality with a comparator
	// fallback.
	RuleMatcher = linkage.RuleMatcher
	// FellegiSunter is the EM-trained probabilistic matcher.
	FellegiSunter = linkage.FellegiSunter
	// Clusterer turns scored match edges into entity clusters.
	Clusterer = linkage.Clusterer
	// ConnectedComponents clusters by transitive closure.
	ConnectedComponents = linkage.ConnectedComponents
	// CenterClustering is precision-oriented center clustering.
	CenterClustering = linkage.Center
	// MergeCenterClustering merges directly linked centers.
	MergeCenterClustering = linkage.MergeCenter
	// CorrelationClustering is pivot-based correlation clustering.
	CorrelationClustering = linkage.CorrelationClustering
	// IncrementalLinker links a stream of records online.
	IncrementalLinker = linkage.Incremental
)

var (
	// NewFellegiSunter returns an untrained probabilistic matcher.
	NewFellegiSunter = linkage.NewFellegiSunter
	// MatchPairs scores candidate pairs in parallel, preparing the
	// matcher's feature index once per batch.
	MatchPairs = linkage.MatchPairs
	// MatchPairsFrom is MatchPairs over a packed candidate source
	// (e.g. a CandidateSet): pairs decode on the fly inside the
	// workers.
	MatchPairsFrom = linkage.MatchPairsFrom
	// MatchPairsObs is MatchPairs recording comparison counts into a
	// metrics registry (nil registry = identical to MatchPairs).
	MatchPairsObs = linkage.MatchPairsObs
	// MatchPairsFromObs is the instrumented MatchPairsFrom.
	MatchPairsFromObs = linkage.MatchPairsFromObs
	// NoIndexMatcher wraps a matcher so MatchPairs skips the feature
	// cache — the uncached baseline for benchmarks and ablations.
	NoIndexMatcher = linkage.NoIndex
	// NewIncrementalLinker returns an empty online linker.
	NewIncrementalLinker = linkage.NewIncremental
	// TitleTokenKey is the default online blocking key (title tokens).
	TitleTokenKey = linkage.TitleTokenKey
)

// Schema alignment.
type (
	// SourceAttr identifies one attribute of one source.
	SourceAttr = schema.SourceAttr
	// AttrProfile summarises one source attribute's observed values.
	AttrProfile = schema.Profile
	// SchemaAligner clusters attribute profiles into a mediated schema.
	SchemaAligner = schema.Aligner
	// MediatedSchema is a probabilistic global schema.
	MediatedSchema = schema.MediatedSchema
	// AttrTransform is a discovered numeric unit conversion.
	AttrTransform = schema.Transform
	// SchemaNormalizer rewrites records into the mediated schema.
	SchemaNormalizer = schema.Normalizer
	// AttrProfiler builds attribute profiles from a dataset.
	AttrProfiler = schema.Profiler
	// LinkageEvidence derives alignment evidence from linked clusters.
	LinkageEvidence = schema.LinkageEvidence
)

var (
	// NewLinkageEvidence scans co-linked records for attribute agreement.
	NewLinkageEvidence = schema.NewLinkageEvidence
	// DiscoverTransforms finds unit conversions between aligned attrs.
	DiscoverTransforms = schema.DiscoverTransforms
	// NewSchemaNormalizer prepares mediated-schema rewriting.
	NewSchemaNormalizer = schema.NewNormalizer
)

// Fusion.
type (
	// MajorityVote picks the most-claimed value per item.
	MajorityVote = fusion.MajorityVote
	// WeightedVote votes with per-source weights.
	WeightedVote = fusion.WeightedVote
	// TruthFinder is the iterative trust model of Yin et al.
	TruthFinder = fusion.TruthFinder
	// ACCU is the Bayesian source-accuracy model (POPACCU via field).
	ACCU = fusion.ACCU
	// ACCUCOPY interleaves ACCU with copy detection.
	ACCUCOPY = fusion.ACCUCOPY
	// CopyDetector scores pairwise source-copying posteriors.
	CopyDetector = fusion.CopyDetector
	// SourcePair is an unordered pair of source IDs.
	SourcePair = fusion.SourcePair
	// NumericFusion fuses continuous claims by robust location
	// estimation (median / mean / accuracy-weighted mean).
	NumericFusion = fusion.NumericFusion
	// DirectedCopy is an inferred copier→original edge.
	DirectedCopy = fusion.DirectedCopy
)

// InferCopyDirections decides who copies whom among dependent pairs.
var InferCopyDirections = fusion.InferDirections

// Source selection ("less is more").
type (
	// GainPoint is one step of the marginal-gain curve.
	GainPoint = sourcesel.GainPoint
	// GreedySelection selects sources by marginal fusion-quality gain.
	GreedySelection = sourcesel.Greedy
	// Selection is a greedy selection result.
	Selection = sourcesel.Selection
)

var (
	// FusionAccuracyQuality builds a truth-sample quality function.
	FusionAccuracyQuality = sourcesel.FusionAccuracyQuality
	// SourceGainCurve integrates sources in order, measuring quality.
	SourceGainCurve = sourcesel.GainCurve
	// RestrictClaims filters a claim set to allowed sources.
	RestrictClaims = sourcesel.Restrict
	// SourcesByEstimatedAccuracy orders sources best-first.
	SourcesByEstimatedAccuracy = sourcesel.ByEstimatedAccuracy
)

// Temporal linkage.
type (
	// TemporalMatcher scores record pairs with time-decayed
	// disagreement.
	TemporalMatcher = temporal.Matcher
)

var (
	// NewTemporalMatcher returns a matcher with default decay.
	NewTemporalMatcher = temporal.NewMatcher
	// LearnDecay estimates per-attribute drift rates from labelled
	// clusters.
	LearnDecay = temporal.LearnDecay
	// FitTemporalMatcher builds a matcher with learned decay rates.
	FitTemporalMatcher = temporal.FitMatcher
)

// Extension surface: merge-based ER, online fusion, schema ensembles
// and pay-as-you-go feedback.
type (
	// Swoosh is R-Swoosh merge-based entity resolution.
	Swoosh = linkage.Swoosh
	// OnlineFusion probes sources best-first with early termination.
	OnlineFusion = fusion.Online
	// OnlineFusionResult extends FusionResult with probe statistics.
	OnlineFusionResult = fusion.OnlineResult
	// SchemaEnsemble is a probabilistic mediated-schema ensemble.
	SchemaEnsemble = schema.Ensemble
	// SchemaFeedback runs the pay-as-you-go ask-and-realign loop.
	SchemaFeedback = schema.Feedback
	// SchemaOracle answers attribute-correspondence questions.
	SchemaOracle = schema.Oracle
	// IntegratedEntity is a fused entity materialised from a report.
	IntegratedEntity = core.Entity
	// SearchHit is one keyword-query result over integrated entities.
	SearchHit = core.Hit
)

var (
	// UnionMerge is the default Swoosh merge function.
	UnionMerge = linkage.UnionMerge
	// BuildSchemaEnsemble aligns at several thresholds and weights the
	// resulting candidate schemas.
	BuildSchemaEnsemble = schema.BuildEnsemble
)

// Source discovery (the pipeline's front end).
type (
	// SimWeb is a simulated web of product and noise sites with a
	// keyword index.
	SimWeb = discovery.SimWeb
	// SimWebConfig controls simulated-web construction.
	SimWebConfig = discovery.SimWebConfig
	// SourceCrawler discovers sources by identifier redundancy.
	SourceCrawler = discovery.Crawler
	// DiscoveryResult reports a crawl's admissions and per-iteration
	// quality.
	DiscoveryResult = discovery.Result
)

var (
	// BuildSimWeb wraps a generated web's sources as sites plus noise.
	BuildSimWeb = discovery.BuildSimWeb
	// NewSourceCrawler returns a crawler with standard settings.
	NewSourceCrawler = discovery.NewCrawler
)

// Extraction (wrapper induction).
type (
	// PageTemplate is one site's page layout.
	PageTemplate = extract.Template
	// Page is one rendered product page.
	Page = extract.Page
	// Wrapper is an induced extraction rule.
	Wrapper = extract.Wrapper
)

var (
	// NewPageTemplate derives a deterministic template for a site.
	NewPageTemplate = extract.NewTemplate
	// InduceWrapper learns a wrapper from a site's pages.
	InduceWrapper = extract.Induce
	// ExtractionQuality scores extracted records against originals.
	ExtractionQuality = extract.ExtractionQuality
)
