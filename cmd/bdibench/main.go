// Command bdibench regenerates the experiment tables indexed in
// DESIGN.md (E1–E26): fusion under copying, EM convergence, blocking
// trade-offs, meta-blocking, matcher quality, clustering comparison,
// incremental linkage, schema alignment, scale-out, source selection,
// domain regimes, temporal linkage, the end-to-end pipeline, the
// stage-ordering ablation, the extension features, ingestion under
// faults, memory-budgeted pair generation at scale, rank-fused
// progressive candidate generation and concurrent serving latency
// (E26, the bdiserve load benchmark).
//
// Usage:
//
//	bdibench            # run every experiment
//	bdibench -exp E1    # run one experiment
//	bdibench -exp E23   # the fault-injection chaos sweep
//	bdibench -seed 7    # change the workload seed
//
// E24 (the sharded-blocking scale sweep) takes extra knobs:
//
//	bdibench -exp E24 -e24-sizes 1000000,3000000,10000000 \
//	    -e24-workers 1,2,8 -shards 16 -bench-json BENCH_blocking.json
//
// E25 (rank fusion: recall vs comparison budget) writes its own
// baseline:
//
//	bdibench -exp E25 -rrf-k 600 -bench-json BENCH_progressive.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdibench:", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle, so deferred cleanup (the debug server)
// executes on error paths too.
func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment ID (E1..E24) or 'all'")
		seed       = flag.Int64("seed", 42, "workload seed")
		metrics    = flag.Bool("metrics", false, "print a per-experiment metrics block")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		shards     = flag.Int("shards", 0, "E24: blocking data shards (0 = default 8)")
		pairBudget = flag.String("pair-mem-budget", "", "E24: explicit pair-memory budget, e.g. 256mb (empty = 25% of the unsharded peak)")
		spillDir   = flag.String("spill-dir", "", "E24: directory for blocking spill runs (empty = system temp)")
		e24Sizes   = flag.String("e24-sizes", "", "E24: comma-separated record counts, e.g. 1000000,3000000,10000000")
		e24Workers = flag.String("e24-workers", "", "E24: comma-separated worker counts (default 1,2,8)")
		rrfK       = flag.Float64("rrf-k", 0, "E25: reciprocal-rank-fusion constant (0 = committed default)")
		benchJSON  = flag.String("bench-json", "", "E24/E25: write the perf baseline JSON to this path")
	)
	flag.Parse()

	e24opts := experiments.E24Opts{Shards: *shards, SpillDir: *spillDir}
	var err error
	if e24opts.Sizes, err = parseInts(*e24Sizes); err != nil {
		return fmt.Errorf("-e24-sizes: %w", err)
	}
	if e24opts.Workers, err = parseInts(*e24Workers); err != nil {
		return fmt.Errorf("-e24-workers: %w", err)
	}
	if e24opts.PairMemBudget, err = core.ParseByteSize(*pairBudget); err != nil {
		return fmt.Errorf("-pair-mem-budget: %w", err)
	}

	if *debugAddr != "" {
		srv, addr, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bdibench: debug server on http://%s\n", addr)
	}

	runner := experiments.Runner{Seed: *seed}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		// Fresh registry per experiment: the stages pick it up through
		// obs.OrDefault, and the debug server's expvar export always
		// reflects the experiment currently running.
		var reg *obs.Registry
		if *metrics || *debugAddr != "" {
			reg = obs.NewRegistry()
			obs.SetDefault(reg)
		}
		var tab *experiments.Table
		switch id {
		case "E24":
			// E24 goes through the options-aware entry point so the
			// scale flags and the bench-json baseline apply.
			var res *experiments.E24Result
			tab, res, err = experiments.E24Scale(*seed, e24opts)
			if err == nil && *benchJSON != "" {
				if werr := writeBenchJSON(*benchJSON, "E24", *seed, res); werr != nil {
					return werr
				}
				fmt.Fprintf(os.Stderr, "bdibench: wrote %s\n", *benchJSON)
			}
		case "E25":
			// E25 likewise: the -rrf-k knob and the progressive
			// baseline (BENCH_progressive.json) apply.
			var res *experiments.E25Result
			tab, res, err = experiments.E25RankFusion(*seed, experiments.E25Opts{RRFK: *rrfK})
			if err == nil && *benchJSON != "" {
				if werr := writeBenchJSON(*benchJSON, "E25", *seed, res); werr != nil {
					return werr
				}
				fmt.Fprintf(os.Stderr, "bdibench: wrote %s\n", *benchJSON)
			}
		default:
			tab, err = runner.Run(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdibench: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(tab)
		if *metrics {
			fmt.Printf("-- %s metrics --\n%s", id, reg.Snapshot().Text())
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

// parseInts parses a comma-separated list of integers; "" means unset.
func parseInts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeBenchJSON persists an experiment result as a perf baseline
// (BENCH_blocking.json, BENCH_progressive.json) future runs diff
// against.
func writeBenchJSON(path, experiment string, seed int64, res any) error {
	doc := struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
		Result     any    `json:"result"`
	}{Experiment: experiment, Seed: seed, Result: res}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}
