// Command bdibench regenerates the experiment tables indexed in
// DESIGN.md (E1–E23): fusion under copying, EM convergence, blocking
// trade-offs, meta-blocking, matcher quality, clustering comparison,
// incremental linkage, schema alignment, scale-out, source selection,
// domain regimes, temporal linkage, the end-to-end pipeline, the
// stage-ordering ablation, the extension features and ingestion under
// faults.
//
// Usage:
//
//	bdibench            # run every experiment
//	bdibench -exp E1    # run one experiment
//	bdibench -exp E23   # the fault-injection chaos sweep
//	bdibench -seed 7    # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdibench:", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle, so deferred cleanup (the debug server)
// executes on error paths too.
func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment ID (E1..E23) or 'all'")
		seed      = flag.Int64("seed", 42, "workload seed")
		metrics   = flag.Bool("metrics", false, "print a per-experiment metrics block")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, addr, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bdibench: debug server on http://%s\n", addr)
	}

	runner := experiments.Runner{Seed: *seed}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		// Fresh registry per experiment: the stages pick it up through
		// obs.OrDefault, and the debug server's expvar export always
		// reflects the experiment currently running.
		var reg *obs.Registry
		if *metrics || *debugAddr != "" {
			reg = obs.NewRegistry()
			obs.SetDefault(reg)
		}
		tab, err := runner.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdibench: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(tab)
		if *metrics {
			fmt.Printf("-- %s metrics --\n%s", id, reg.Snapshot().Text())
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
