// Command bdiserve turns one integration run into a long-lived
// service: it ingests a dataset (from a file or generated in-process),
// runs the full pipeline once, builds an immutable serving snapshot
// and answers concurrent HTTP/JSON queries over it:
//
//	GET  /entities/{id}      one integrated entity
//	GET  /search?q=&limit=   keyword search over titles + fused values
//	POST /resolve            score a new record against the entities
//	GET  /similar/{id}?k=    top-k similar entities
//	POST /reindex            admin: rebuild in the background (429 when full)
//	GET  /healthz            liveness, entity count, swap count
//	GET  /metrics            obs snapshot
//
// Reads are lock-free: handlers load the current snapshot through an
// atomic pointer; POST /reindex re-runs the pipeline over the held
// dataset on a single background worker and swaps the new snapshot in
// atomically. The reindex queue is bounded — extra requests get 429.
//
// Usage:
//
//	bdigen -out web.json && bdiserve -in web.json -addr :8080
//	bdiserve -gen -gen-entities 200 -addr :8080          # self-generated data
//	bdiserve -gen -loadtest 1x50,8x50,64x50              # latency benchmark
//	bdiserve -gen -stream -stream-state bdi.state        # streaming ingestion
//
// With -stream the batch pipeline is bypassed: sources are replayed as
// an epoch stream through incremental linkage and online fusion, and
// each published view is swapped into the serving snapshot within the
// -stream-staleness window. -stream-state makes the stream durable —
// the state file is restored on start and saved at each epoch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/source"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdiserve:", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle, so deferred cleanup (the server, the
// background worker) executes on error paths too.
func run() error {
	var (
		in          = flag.String("in", "", "input dataset (JSON; - for stdin)")
		csvIn       = flag.Bool("csv", false, "input is CSV instead of JSON")
		gen         = flag.Bool("gen", false, "generate a synthetic dataset instead of reading one")
		genEntities = flag.Int("gen-entities", 100, "entities in the generated dataset")
		genSources  = flag.Int("gen-sources", 20, "sources in the generated dataset")
		seed        = flag.Int64("seed", 42, "generator seed")
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 2, "reindex queue depth (extra requests get 429)")
		threshold   = flag.Float64("threshold", 0.6, "resolve match threshold")
		maxLimit    = flag.Int("max-limit", 100, "cap on limit/k query parameters")
		fuser       = flag.String("fuser", "vote", "fusion method: vote, truthfinder, accu, popaccu, accucopy")
		order       = flag.String("order", "linkage-first", "stage order: linkage-first or schema-first")
		workers     = flag.Int("workers", 0, "pipeline worker goroutines (0 = NumCPU)")
		loadtest    = flag.String("loadtest", "", "run a load test instead of serving: comma-separated NxM levels, e.g. 1x50,8x50,64x50")

		stream          = flag.Bool("stream", false, "stream the dataset through incremental linkage + online fusion, republishing the snapshot as epochs land")
		streamEpoch     = flag.Int("stream-epoch", 100, "records per stream epoch")
		streamStaleness = flag.Duration("stream-staleness", 2*time.Second, "maximum staleness window before a dirty view is republished")
		streamState     = flag.String("stream-state", "", "stream state file: restored on start, saved at each epoch (empty = no persistence)")
		streamCompact   = flag.Float64("stream-compact-ratio", 0, "compact stream state when tombstone garbage reaches this posting-slot ratio (0 = never)")
	)
	flag.Parse()

	if *gen == (*in != "") {
		return fmt.Errorf("exactly one of -in or -gen is required")
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)

	dataset, err := loadDataset(*in, *csvIn, *gen, *genEntities, *genSources, *seed)
	if err != nil {
		return err
	}

	cfg := core.Config{Fuser: *fuser, Workers: *workers, Obs: reg}
	switch *order {
	case "linkage-first":
		cfg.Order = core.LinkageFirst
	case "schema-first":
		cfg.Order = core.SchemaFirst
	default:
		return fmt.Errorf("unknown -order %q (want linkage-first or schema-first)", *order)
	}

	srvCfg := serve.Config{
		QueueDepth:     *queue,
		MatchThreshold: *threshold,
		MaxLimit:       *maxLimit,
		Obs:            reg,
	}

	var srv *serve.Server
	if *stream {
		// Streaming mode: the dataset's sources are replayed as a
		// stream; each published view is pushed into the server's swap
		// path, so readers always see a snapshot at most one staleness
		// window behind ingestion. POST /reindex is disabled — the
		// stream owns the write path.
		st, err := core.ResumeStream(core.StreamConfig{
			EpochSize:    *streamEpoch,
			Staleness:    *streamStaleness,
			StatePath:    *streamState,
			CompactRatio: *streamCompact,
			Workers:      *workers,
			Obs:          reg,
		}, func(snap *core.Snapshot) {
			if srv != nil {
				srv.Publish(snap)
			}
		})
		if err != nil {
			return err
		}
		snap, err := st.Rebuild(context.Background())
		if err != nil {
			return err
		}
		srv, err = serve.New(snap, nil, srvCfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		streamCtx, streamCancel := context.WithCancel(context.Background())
		defer streamCancel()
		go func() {
			if err := st.Run(streamCtx, source.FromDataset(dataset), source.Totals(dataset)); err != nil {
				fmt.Fprintln(os.Stderr, "bdiserve: stream:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "bdiserve: stream drained — %d records in %d epochs, %d publishes\n",
				st.Ingested(), st.Epoch(), st.Publishes())
		}()
		fmt.Fprintf(os.Stderr, "bdiserve: streaming %d records (epoch %d, staleness %v)\n",
			dataset.NumRecords(), *streamEpoch, *streamStaleness)
	} else {
		// The rebuild path is the same pipeline over the held dataset, so
		// POST /reindex on unchanged data swaps in a byte-identical view.
		rebuild := func(ctx context.Context) (*core.Snapshot, error) {
			rep, err := core.New(cfg).RunCtx(ctx, dataset)
			if err != nil {
				return nil, err
			}
			return rep.Snapshot()
		}

		t0 := time.Now()
		snap, err := rebuild(context.Background())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bdiserve: pipeline done in %v — %d entities from %d records\n",
			time.Since(t0).Round(time.Millisecond), snap.Len(), dataset.NumRecords())

		srv, err = serve.New(snap, rebuild, srvCfg)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	if *loadtest != "" {
		return runLoadTest(srv, *loadtest)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "bdiserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "bdiserve: %v — shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	}
}

func loadDataset(in string, csvIn, gen bool, entities, sources int, seed int64) (*data.Dataset, error) {
	if gen {
		world := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: entities})
		web := datagen.BuildWeb(world, datagen.SourceConfig{
			Seed: seed + 1, NumSources: sources, DirtLevel: 1,
			IdentifierRate: 0.8, Heterogeneity: 0.5,
		})
		return web.Dataset, nil
	}
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if csvIn {
		return data.ReadCSV(r)
	}
	return data.ReadJSON(r)
}

// runLoadTest serves on an ephemeral loopback port, drives each NxM
// load level against /search and prints a latency table.
func runLoadTest(srv *serve.Server, spec string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()

	var queries []string
	for i, e := range srv.Snapshot().Entities() {
		if i%5 == 0 && e.Title != "" {
			queries = append(queries, e.Title)
		}
	}
	if len(queries) == 0 {
		return errors.New("no entity titles to query")
	}

	fmt.Printf("%-8s  %-9s  %-7s  %-10s  %-10s  %-10s  %s\n",
		"clients", "requests", "errors", "p50", "p99", "max", "qps")
	for _, level := range strings.Split(spec, ",") {
		var clients, requests int
		if _, err := fmt.Sscanf(level, "%dx%d", &clients, &requests); err != nil {
			return fmt.Errorf("bad -loadtest level %q (want NxM): %w", level, err)
		}
		res, err := serve.LoadTest(baseURL, serve.LoadConfig{
			Clients: clients, Requests: requests, Queries: queries,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d  %-9d  %-7d  %-10v  %-10v  %-10v  %.0f\n",
			res.Clients, res.Requests, res.Errors, res.P50, res.P99, res.Max, res.QPS)
	}
	return nil
}
