// Command bdigen generates a synthetic web-of-sources dataset and
// writes it as JSON or CSV. The generated data carries ground truth
// (entity IDs, source accuracies, copier edges) for evaluation.
//
// Usage:
//
//	bdigen -entities 100 -sources 20 -dirt 1 -format json -out web.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdigen:", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle, so deferred cleanup (the output file,
// the debug server) executes on error paths too.
func run() error {
	var (
		seed       = flag.Int64("seed", 42, "generator seed")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
		entities   = flag.Int("entities", 100, "number of real-world entities")
		sources    = flag.Int("sources", 20, "number of sources")
		dirt       = flag.Int("dirt", 1, "dirt level 0..3")
		hetero     = flag.Float64("heterogeneity", 0.5, "schema heterogeneity 0..1")
		copiers    = flag.Float64("copiers", 0, "fraction of sources that copy")
		identifier = flag.Float64("identifiers", 0.8, "probability a source publishes product ids")
		categories = flag.String("categories", "", "comma-separated category list (default camera,phone,tv)")
		format     = flag.String("format", "json", "output format: json or csv")
		out        = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, addr, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bdigen: debug server on http://%s\n", addr)
	}

	wcfg := datagen.WorldConfig{Seed: *seed, NumEntities: *entities}
	if *categories != "" {
		wcfg.Categories = splitComma(*categories)
	}
	world := datagen.NewWorld(wcfg)
	web := datagen.BuildWeb(world, datagen.SourceConfig{
		Seed:           *seed + 1,
		NumSources:     *sources,
		DirtLevel:      *dirt,
		Heterogeneity:  *hetero,
		CopierFraction: *copiers,
		IdentifierRate: *identifier,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "json":
		err = web.Dataset.WriteJSON(w)
	case "csv":
		err = web.Dataset.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d records from %d sources over %d entities\n",
		web.Dataset.NumRecords(), web.Dataset.NumSources(), *entities)
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
