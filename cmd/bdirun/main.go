// Command bdirun executes the end-to-end big-data-integration pipeline
// over a dataset produced by bdigen (or any dataset in the same JSON/CSV
// form) and prints an integration report: linkage clusters, the mediated
// schema, discovered unit transforms and fused values. When the dataset
// carries ground truth, quality metrics are reported too.
//
// Input always flows through the resilient ingestor (retry, backoff,
// circuit breaking), so a fault-injected run (-fault-rate) degrades
// gracefully: dropped sources are reported and the pipeline integrates
// whatever survived. -timeout bounds the whole run; cancellation stops
// every stage at its next chunk boundary.
//
// Usage:
//
//	bdigen -out web.json && bdirun -in web.json -fuser accucopy
//	bdirun -in web.json -search "nova camera"   # query integrated entities
//	bdirun -in web.json -fault-rate 0.3 -fault-seed 7 -min-sources 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/source"
	"repro/internal/source/faults"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdirun:", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle, so deferred cleanup (input files, the
// debug server) executes on error paths too — main's os.Exit would
// skip it.
func run() error {
	var (
		in          = flag.String("in", "-", "input dataset (JSON; - for stdin)")
		csvIn       = flag.Bool("csv", false, "input is CSV instead of JSON")
		order       = flag.String("order", "linkage-first", "stage order: linkage-first or schema-first")
		fuser       = flag.String("fuser", "vote", "fusion method: vote, truthfinder, accu, popaccu, accucopy")
		clusterer   = flag.String("clusterer", "components", "clustering: components, center, merge, correlation")
		meta        = flag.Bool("metablock", false, "apply meta-blocking")
		rankFusion  = flag.Bool("rank-fusion", false, "fuse token/q-gram/minhash/sorted-neighborhood/phonetic blockers with reciprocal-rank fusion")
		rrfK        = flag.Float64("rrf-k", 0, "reciprocal-rank-fusion constant (0 = default 60)")
		cmpBudget   = flag.Int("comparison-budget", 0, "cap matcher comparisons; consumes the candidate stream front-first (0 = unlimited)")
		fs          = flag.Bool("fellegi-sunter", false, "use the probabilistic matcher")
		workers     = flag.Int("workers", 0, "worker goroutines per stage (0 = NumCPU)")
		shards      = flag.Int("shards", 0, "blocking data shards (0 = one per worker)")
		pairBudget  = flag.String("pair-mem-budget", "", "blocking pair-memory budget, e.g. 256mb (empty = unlimited; excess spills to disk)")
		spillDir    = flag.String("spill-dir", "", "directory for blocking spill runs (empty = system temp)")
		timeout     = flag.Duration("timeout", 0, "overall deadline for ingestion + pipeline (0 = none)")
		faultRate   = flag.Float64("fault-rate", 0, "inject transient faults at this per-fetch rate (plus rate/4 dead sources)")
		faultSeed   = flag.Int64("fault-seed", 1, "fault injection seed (schedules are reproducible per seed)")
		minSources  = flag.Int("min-sources", 1, "fail unless at least this many sources survive ingestion")
		verbose     = flag.Bool("v", false, "print clusters and fused values")
		search      = flag.String("search", "", "keyword query over the integrated entities")
		metrics     = flag.Bool("metrics", false, "print the stable metrics snapshot (byte-deterministic)")
		metricsJSON = flag.Bool("metrics-json", false, "print the stable metrics snapshot as JSON")
		metricsFull = flag.Bool("metrics-full", false, "print the full snapshot, including timers and scheduling metrics")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")

		stream        = flag.Bool("stream", false, "stream the dataset through incremental linkage + online fusion instead of the batch pipeline")
		streamEpoch   = flag.Int("stream-epoch", 100, "records per stream epoch")
		streamPublish = flag.Int("stream-publish", 0, "publish every N epochs (0 = staleness-window cadence)")
		streamState   = flag.String("stream-state", "", "stream state file: restored on start, saved at each epoch (empty = no persistence)")
		streamUpdate  = flag.Float64("stream-update-rate", 0, "with -stream: churn this fraction of records as corrupt-then-correct updates")
		streamDelete  = flag.Float64("stream-delete-rate", 0, "with -stream: churn this fraction of records as late deletions")
		streamCompact = flag.Float64("stream-compact-ratio", 0, "with -stream: compact state when tombstone garbage reaches this posting-slot ratio (0 = never)")
		compactOnce   = flag.Bool("compact", false, "one-shot: compact the -stream-state file in place and exit")
	)
	flag.Parse()

	if *compactOnce {
		if *streamState == "" {
			return fmt.Errorf("-compact requires -stream-state")
		}
		return compactStateFile(*streamState)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var (
		d   *data.Dataset
		err error
	)
	if *csvIn {
		d, err = data.ReadCSV(r)
	} else {
		d, err = data.ReadJSON(r)
	}
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	if *debugAddr != "" {
		srv, addr, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bdirun: debug server on http://%s\n", addr)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fleet := source.FromDataset(d)

	if *stream {
		scfg := core.StreamConfig{
			EpochSize:    *streamEpoch,
			PublishEvery: *streamPublish,
			StatePath:    *streamState,
			CompactRatio: *streamCompact,
			FusionN:      0,
			Workers:      *workers,
			Obs:          reg,
		}
		if *streamUpdate > 0 || *streamDelete > 0 {
			// Mutable-stream mode: the dataset is replayed as a typed
			// delta log with synthetic churn (corrupt-then-correct
			// updates, late deletions); -fault-rate mangles the deltas
			// (duplicate deletes, delete-before-insert, update storms)
			// instead of flaking fetches.
			if err := runDeltaStream(ctx, d, scfg, source.ChurnConfig{
				Seed:       *faultSeed,
				UpdateRate: *streamUpdate,
				DeleteRate: *streamDelete,
			}, *faultRate, *faultSeed, reg); err != nil {
				return err
			}
			printMetrics(reg, *metrics, *metricsJSON, *metricsFull)
			return nil
		}
		if *faultRate > 0 {
			// The stream path has no drop-a-source fallback — its
			// resilience is refetch-until-covered — so chaos here is
			// transient flakes and truncations, not dead sources.
			fleet = faults.WrapAll(fleet, faults.Config{
				Seed:             *faultSeed,
				TransientRate:    *faultRate,
				TruncateRate:     *faultRate / 2,
				TruncateFraction: 0.5,
				Obs:              reg,
			})
		}
		if err := runStream(ctx, d, fleet, scfg); err != nil {
			return err
		}
		printMetrics(reg, *metrics, *metricsJSON, *metricsFull)
		return nil
	}

	// Ingest: every run goes through the resilient ingestor, with the
	// fault injector wrapped in when -fault-rate asks for chaos.
	if *faultRate > 0 {
		fleet = faults.WrapAll(fleet, faults.Config{
			Seed:          *faultSeed,
			TransientRate: *faultRate,
			DeadRate:      *faultRate / 4,
			Obs:           reg,
		})
	}
	ing := source.NewIngestor(source.IngestConfig{
		Workers:    *workers,
		MinSources: *minSources,
		Obs:        reg,
	})
	d, irep, err := ing.Ingest(ctx, fleet)
	if err != nil {
		return err
	}
	fmt.Printf("ingested: %d/%d sources ok (%d records, %d attempts)\n",
		irep.Succeeded, irep.Total, irep.Records, irep.Attempts)
	if len(irep.Dropped) > 0 {
		fmt.Printf("dropped sources: %s\n", strings.Join(irep.Dropped, " "))
	}
	if len(irep.Degraded) > 0 {
		fmt.Printf("degraded sources (needed retries): %s\n", strings.Join(irep.Degraded, " "))
	}

	budget, err := core.ParseByteSize(*pairBudget)
	if err != nil {
		return fmt.Errorf("-pair-mem-budget: %w", err)
	}
	cfg := core.Config{
		Fuser:            *fuser,
		Clusterer:        *clusterer,
		MetaBlock:        *meta,
		RankFusion:       *rankFusion,
		RRFK:             *rrfK,
		ComparisonBudget: *cmpBudget,
		FellegiSunter:    *fs,
		Workers:          *workers,
		Shards:           *shards,
		PairMemBudget:    budget,
		SpillDir:         *spillDir,
		Obs:              reg,
	}
	switch *order {
	case "linkage-first":
		cfg.Order = core.LinkageFirst
	case "schema-first":
		cfg.Order = core.SchemaFirst
	default:
		return fmt.Errorf("unknown -order %q (want linkage-first or schema-first)", *order)
	}
	rep, err := core.New(cfg).RunCtx(ctx, d)
	if err != nil {
		return err
	}

	fmt.Printf("pipeline order: %s\n", cfg.Order)
	fmt.Printf("records: %d   sources: %d\n", d.NumRecords(), d.NumSources())
	fmt.Printf("candidates: %d   comparisons: %d   matched: %d   clusters: %d\n",
		rep.Candidates, rep.Comparisons, len(rep.Matched), len(rep.Clusters))
	fmt.Printf("mediated attributes: %d   transforms: %d\n", len(rep.Schema.Attrs), len(rep.Transforms))
	fmt.Printf("claims: %d   fused items: %d\n", rep.Claims.Len(), len(rep.Fusion.Values))
	for _, stage := range []string{"blocking", "matching", "clustering", "alignment", "fusion"} {
		fmt.Printf("%-10s %v\n", stage, rep.StageTime[stage])
	}

	if truth := d.GroundTruthClusters(); len(truth) > 0 {
		prf := eval.Clusters(rep.Clusters, truth)
		fmt.Printf("linkage quality vs ground truth: %s\n", prf)
	}

	if *search != "" {
		hits, err := rep.Search(*search, 5)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- top hits for %q --\n", *search)
		for _, h := range hits {
			fmt.Printf("%.3f  %s  (%d records from %v)\n",
				h.Score, h.Entity.Title, len(h.Entity.Records), h.Entity.Sources)
			for _, attr := range sortedKeys(h.Entity.Values) {
				fmt.Printf("        %s = %s\n", attr, h.Entity.Values[attr])
			}
		}
	}

	if *verbose {
		fmt.Println("\n-- mediated schema --")
		fmt.Print(rep.Schema)
		fmt.Println("\n-- transforms --")
		for _, t := range rep.Transforms {
			fmt.Printf("%s -> %s  x%.4f (support %d)\n", t.From, t.To, t.Scale, t.Support)
		}
		fmt.Println("\n-- clusters (multi-record only) --")
		for i, cl := range rep.Clusters {
			if len(cl) > 1 {
				fmt.Printf("cluster %d: %v\n", i, cl)
			}
		}
		fmt.Println("\n-- fused values --")
		items := rep.Claims.Items()
		sort.Slice(items, func(i, j int) bool { return items[i].String() < items[j].String() })
		for _, it := range items {
			if v, ok := rep.Fusion.Values[it]; ok {
				fmt.Printf("%s = %s (conf %.3f)\n", it, v, rep.Fusion.Confidence[it])
			}
		}
	}

	printMetrics(reg, *metrics, *metricsJSON, *metricsFull)
	return nil
}

// runStream drives the velocity path: the fleet is replayed as an
// epoch stream through incremental linkage and online fusion, with the
// final published view and cumulative costs reported instead of the
// batch pipeline's stage table.
func runStream(ctx context.Context, d *data.Dataset, fleet []source.Source, cfg core.StreamConfig) error {
	var last *core.Snapshot
	st, err := core.ResumeStream(cfg, func(snap *core.Snapshot) { last = snap })
	if err != nil {
		return err
	}
	if st.Epoch() > 0 {
		fmt.Printf("resumed stream state: epoch %d, %d records already ingested\n", st.Epoch(), st.Ingested())
	}
	t0 := time.Now()
	if err := st.Run(ctx, fleet, source.Totals(d)); err != nil {
		return err
	}
	elapsed := time.Since(t0)

	fmt.Printf("stream: %d records in %d epochs (%v)\n", st.Ingested(), st.Epoch(), elapsed.Round(time.Millisecond))
	fmt.Printf("publishes: %d   comparisons: %d   clusters: %d\n",
		st.Publishes(), st.Comparisons(), len(st.Clusters()))
	if last != nil {
		fmt.Printf("final view: %d entities\n", last.Len())
	}
	if truth := d.GroundTruthClusters(); len(truth) > 0 {
		prf := eval.Clusters(st.Clusters(), truth)
		fmt.Printf("linkage quality vs ground truth: %s\n", prf)
	}
	return nil
}

// runDeltaStream drives the mutable velocity path: churned delta logs
// (upserts + deletions) through incremental linkage with retraction,
// online fusion over live claims only, and optional auto-compaction.
func runDeltaStream(ctx context.Context, d *data.Dataset, cfg core.StreamConfig,
	churn source.ChurnConfig, faultRate float64, faultSeed int64, reg *obs.Registry) error {
	fleet, totals, planned := source.ChurnSources(d, churn)
	if faultRate > 0 {
		mcfg := faults.DeltaConfig{
			Seed:            faultSeed,
			DupDeleteRate:   faultRate,
			EarlyDeleteRate: faultRate / 2,
			UpdateStormRate: faultRate / 2,
			Obs:             reg,
		}
		mangled := map[string]int{}
		for _, s := range fleet {
			ds := s.(*source.DeltaStatic)
			mangled[ds.Src.ID] = faults.MangledTotal(ds.Src.ID, ds.Log, mcfg)
		}
		fleet, totals = faults.WrapDeltasAll(fleet, mcfg), mangled
	}

	var last *core.Snapshot
	st, err := core.ResumeStream(cfg, func(snap *core.Snapshot) { last = snap })
	if err != nil {
		return err
	}
	if st.Epoch() > 0 {
		fmt.Printf("resumed stream state: epoch %d, %d records already ingested\n", st.Epoch(), st.Ingested())
	}
	t0 := time.Now()
	if err := st.RunDeltas(ctx, fleet, totals); err != nil {
		return err
	}
	elapsed := time.Since(t0)

	fmt.Printf("stream: %d records inserted, %d deleted (%d planned) in %d epochs (%v)\n",
		st.Ingested(), st.Deleted(), len(planned), st.Epoch(), elapsed.Round(time.Millisecond))
	fmt.Printf("publishes: %d   comparisons: %d   clusters: %d   live records: %d\n",
		st.Publishes(), st.Comparisons(), len(st.Clusters()), st.Dataset().NumRecords())
	fmt.Printf("tombstones: %d live (garbage ratio %.3f)   compactions: %d\n",
		st.Tombstones(), st.GarbageRatio(), st.Compactions())
	if last != nil {
		fmt.Printf("final view: %d entities\n", last.Len())
	}
	if truth := d.GroundTruthClusters(); len(truth) > 0 {
		live := make(data.Clustering, 0, len(truth))
		for _, cl := range truth {
			keep := make([]string, 0, len(cl))
			for _, id := range cl {
				if st.Dataset().Record(id) != nil {
					keep = append(keep, id)
				}
			}
			if len(keep) > 0 {
				live = append(live, keep)
			}
		}
		fmt.Printf("linkage quality vs live ground truth: %s\n", eval.Clusters(st.Clusters(), live))
	}
	return nil
}

// compactStateFile is the -compact one-shot: load a persisted stream
// state, rewrite its posting lists and partition dropping tombstoned
// IDs, and save it back atomically (the previous state rotates to .bak).
func compactStateFile(path string) error {
	st, err := core.LoadStream(path, core.StreamConfig{StatePath: path}, nil)
	if err != nil {
		return err
	}
	slots, keys, tombs := st.Compact()
	if err := st.Save(path); err != nil {
		return err
	}
	fmt.Printf("compacted %s: reclaimed %d posting slots across %d keys, dropped %d tombstones\n",
		path, slots, keys, tombs)
	return nil
}

func printMetrics(reg *obs.Registry, metrics, metricsJSON, metricsFull bool) {
	if !metrics && !metricsJSON && !metricsFull {
		return
	}
	snap := reg.Snapshot()
	if !metricsFull {
		snap = snap.Stable()
	}
	switch {
	case metricsJSON:
		js, err := snap.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdirun: metrics:", err)
			return
		}
		fmt.Printf("\n%s\n", js)
	default:
		fmt.Printf("\n-- metrics --\n%s", snap.Text())
	}
}

func sortedKeys(m map[string]data.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
