package obs

import (
	"runtime"
	"sync"
	"time"
)

// HeapWatch samples the Go heap in the background and tracks its
// high-water mark — the scaling experiments' stand-in for peak RSS,
// reported through the registry like every other metric.
type HeapWatch struct {
	reg  *Registry
	done chan struct{}
	wg   sync.WaitGroup

	mu   sync.Mutex
	peak uint64
}

// StartHeapWatch begins sampling runtime.MemStats.HeapAlloc every
// interval (<= 0 means 20ms) until Stop. The high-water mark lands in
// the registry's "runtime.peak_heap_bytes" gauge at Stop time; a nil
// registry still measures, it just records nowhere.
func StartHeapWatch(reg *Registry, interval time.Duration) *HeapWatch {
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	w := &HeapWatch{reg: reg, done: make(chan struct{})}
	w.sample()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-t.C:
				w.sample()
			}
		}
	}()
	return w
}

func (w *HeapWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.mu.Lock()
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	w.mu.Unlock()
}

// Stop takes a final sample, halts the sampler and returns the peak
// heap bytes observed, recording it in the registry's
// "runtime.peak_heap_bytes" gauge. Stop is idempotent-unsafe: call it
// once.
func (w *HeapWatch) Stop() int64 {
	close(w.done)
	w.wg.Wait()
	w.sample()
	w.mu.Lock()
	peak := int64(w.peak)
	w.mu.Unlock()
	if w.reg != nil {
		w.reg.Gauge("runtime.peak_heap_bytes").Set(float64(peak))
	}
	return peak
}
