package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and tests may start several debug servers.
var expvarOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/vars         expvar (including "bdi_metrics", the live stable snapshot)
//	/debug/pprof/...    net/http/pprof profiles
//	/metrics            the registry's stable snapshot as text
//	/metrics.json       the registry's stable snapshot as JSON
//
// It returns the server (so callers can Close it) and the bound
// address (useful with addr ":0"). The registry may be nil, in which
// case the metric endpoints follow the process-wide Default() registry
// at request time (so a caller that swaps registries per run always
// serves the current one). Serving uses a dedicated mux, not
// http.DefaultServeMux, so tests can run several servers side by side.
func ServeDebug(addr string, r *Registry) (*http.Server, net.Addr, error) {
	expvarOnce.Do(func() {
		expvar.Publish("bdi_metrics", expvar.Func(func() any {
			return Default().Snapshot().Stable()
		}))
	})
	reg := func() *Registry {
		if r != nil {
			return r
		}
		return Default()
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(reg().Snapshot().Stable().Text()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := reg().Snapshot().Stable().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
