package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry's metrics, ready for
// rendering. All listings are sorted by name; spans are flattened in
// pre-order with slash-joined paths, preserving creation order inside
// each parent.
type Snapshot struct {
	Counters []CounterStat `json:"counters,omitempty"`
	Gauges   []GaugeStat   `json:"gauges,omitempty"`
	Dists    []DistStat    `json:"dists,omitempty"`
	Timers   []TimerStat   `json:"timers,omitempty"`
	Spans    []SpanStat    `json:"spans,omitempty"`
}

// CounterStat is one counter's snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStat is one gauge's snapshot.
type GaugeStat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// DistStat is one float distribution's snapshot.
type DistStat struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
}

// TimerStat is one duration timer's snapshot. Durations are
// nanoseconds in JSON.
type TimerStat struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets []TimerBucket `json:"buckets,omitempty"`
}

// TimerBucket is one non-empty histogram bucket: observations d with
// Lo <= d < Hi.
type TimerBucket struct {
	Lo    time.Duration `json:"lo_ns"`
	Hi    time.Duration `json:"hi_ns"`
	Count int64         `json:"count"`
}

// Quantile estimates the q-th quantile (q in [0,1]) of the timer's
// observations from its log₂ histogram, interpolating linearly inside
// the containing bucket and clamping to the observed min/max (so the
// tails never report beyond what was actually seen). With no
// observations it returns 0. The estimate's error is bounded by the
// bucket width — a factor of two — which is plenty for the p50/p99
// latency reporting the serving load tests do.
func (t TimerStat) Quantile(q float64) time.Duration {
	if t.Count == 0 {
		return 0
	}
	if q <= 0 {
		return t.Min
	}
	if q >= 1 {
		return t.Max
	}
	target := q * float64(t.Count)
	var cum float64
	for _, b := range t.Buckets {
		if cum+float64(b.Count) >= target {
			lo, hi := b.Lo, b.Hi
			if lo < t.Min {
				lo = t.Min
			}
			if hi > t.Max {
				hi = t.Max
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(b.Count)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += float64(b.Count)
	}
	return t.Max
}

// SpanStat is one span in the flattened tree. Dur is zero in stable
// snapshots (and omitted from their JSON).
type SpanStat struct {
	Path  string        `json:"path"`
	Depth int           `json:"depth"`
	Dur   time.Duration `json:"dur_ns,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields
// an empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	dists := make(map[string]*Dist, len(r.dists))
	for k, v := range r.dists {
		dists[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	roots := make([]*Span, len(r.roots))
	copy(roots, r.roots)
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: counters[name].Value()})
	}
	for _, name := range sortedKeys(gauges) {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: gauges[name].Value()})
	}
	for _, name := range sortedKeys(dists) {
		d := dists[name]
		d.mu.Lock()
		s.Dists = append(s.Dists, DistStat{
			Name: name, Count: d.count, Sum: d.sum, Min: d.min, Max: d.max, Last: d.last_,
		})
		d.mu.Unlock()
	}
	for _, name := range sortedKeys(timers) {
		t := timers[name]
		t.mu.Lock()
		ts := TimerStat{Name: name, Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
		for i, n := range t.buckets {
			if n == 0 {
				continue
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = time.Duration(1) << (i - 1)
			}
			ts.Buckets = append(ts.Buckets, TimerBucket{Lo: lo, Hi: time.Duration(1) << i, Count: n})
		}
		t.mu.Unlock()
		s.Timers = append(s.Timers, ts)
	}
	for _, root := range roots {
		flattenSpan(root, "", 0, &s.Spans)
	}
	return s
}

// Timer returns the named timer's stats from the snapshot, reporting
// whether it exists — the lookup the latency reporters (load tests,
// serving handlers) use to pull p50/p99 out of one snapshot.
func (s *Snapshot) Timer(name string) (TimerStat, bool) {
	for _, t := range s.Timers {
		if t.Name == name {
			return t, true
		}
	}
	return TimerStat{}, false
}

func flattenSpan(sp *Span, prefix string, depth int, out *[]SpanStat) {
	path := sp.Name()
	if prefix != "" {
		path = prefix + "/" + path
	}
	*out = append(*out, SpanStat{Path: path, Depth: depth, Dur: sp.Duration()})
	for _, c := range sp.Children() {
		flattenSpan(c, path, depth+1, out)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// volatilePrefix is the metric namespace whose counts depend on the
// worker count (chunk hand-outs, per-worker busy time, task fan-out).
// Stable drops it along with every wall-clock duration.
const volatilePrefix = "parallel."

// Stable returns the deterministic subset of the snapshot: counters,
// gauges and dists outside the "parallel." namespace, plus the span
// tree with durations zeroed. For a deterministic pipeline the stable
// snapshot is byte-identical for any worker count — it is what the
// determinism regressions (and `bdirun -metrics`) compare.
func (s *Snapshot) Stable() *Snapshot {
	out := &Snapshot{}
	for _, c := range s.Counters {
		if !strings.HasPrefix(c.Name, volatilePrefix) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !strings.HasPrefix(g.Name, volatilePrefix) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, d := range s.Dists {
		if !strings.HasPrefix(d.Name, volatilePrefix) {
			out.Dists = append(out.Dists, d)
		}
	}
	for _, sp := range s.Spans {
		sp.Dur = 0
		out.Spans = append(out.Spans, sp)
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as a sorted, aligned text table. Zero span
// durations (the stable view) render as "-".
func (s *Snapshot) Text() string {
	var b strings.Builder
	width := 0
	for _, c := range s.Counters {
		width = maxInt(width, len(c.Name))
	}
	for _, g := range s.Gauges {
		width = maxInt(width, len(g.Name))
	}
	for _, d := range s.Dists {
		width = maxInt(width, len(d.Name))
	}
	for _, t := range s.Timers {
		width = maxInt(width, len(t.Name))
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s  %d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s  %s\n", width, g.Name, ftoa(g.Value))
		}
	}
	if len(s.Dists) > 0 {
		b.WriteString("dists:\n")
		for _, d := range s.Dists {
			fmt.Fprintf(&b, "  %-*s  n=%d sum=%s min=%s max=%s last=%s\n",
				width, d.Name, d.Count, ftoa(d.Sum), ftoa(d.Min), ftoa(d.Max), ftoa(d.Last))
		}
	}
	if len(s.Timers) > 0 {
		b.WriteString("timers:\n")
		for _, t := range s.Timers {
			fmt.Fprintf(&b, "  %-*s  n=%d sum=%v min=%v max=%v\n",
				width, t.Name, t.Count, t.Sum, t.Min, t.Max)
			if len(t.Buckets) > 0 {
				fmt.Fprintf(&b, "  %-*s  hist:", width, "")
				for _, bk := range t.Buckets {
					fmt.Fprintf(&b, " [%v,%v):%d", bk.Lo, bk.Hi, bk.Count)
				}
				b.WriteByte('\n')
			}
		}
	}
	if len(s.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, sp := range s.Spans {
			name := sp.Path
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[i+1:]
			}
			dur := "-"
			if sp.Dur != 0 {
				dur = sp.Dur.String()
			}
			fmt.Fprintf(&b, "  %s%-*s  %s\n",
				strings.Repeat("  ", sp.Depth), width-2*sp.Depth, name, dur)
		}
	}
	return b.String()
}

// ftoa formats a float with full round-trip precision, so equal values
// render to equal bytes.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
