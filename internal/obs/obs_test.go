package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	g := r.Gauge("x")
	g.Set(1.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	tm := r.Timer("x")
	tm.Observe(time.Second)
	ran := false
	tm.Time(func() { ran = true })
	if !ran {
		t.Fatal("nil timer Time did not run f")
	}
	if tm.Count() != 0 {
		t.Fatal("nil timer recorded observations")
	}
	d := r.Dist("x")
	d.Observe(2.5)
	if d.Count() != 0 || d.Last() != 0 {
		t.Fatal("nil dist recorded observations")
	}
	sp := r.StartSpan("stage")
	if sp == nil {
		t.Fatal("StartSpan on nil registry returned nil — detached spans must stay live")
	}
	child := sp.Child("sub")
	child.End()
	sp.End()
	if sp.Name() != "stage" || len(sp.Children()) != 1 {
		t.Fatal("detached span did not record its child")
	}
	var nilSpan *Span
	if nilSpan.Child("x") != nil || nilSpan.End() != 0 || nilSpan.Name() != "" || nilSpan.Duration() != 0 || nilSpan.Children() != nil {
		t.Fatal("nil span methods are not no-ops")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if out := snap.Stable().Text(); out != "" {
		t.Fatalf("empty stable snapshot rendered %q", out)
	}
}

func TestNilHandlesZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	d := r.Dist("x")
	tm := r.Timer("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(2)
		d.Observe(3)
		tm.Observe(time.Millisecond)
		_ = OrDefault(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-handle hot path allocates %v times per run, want 0", allocs)
	}
}

func TestCounterGaugeTimerDist(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("blocking.pairs")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("blocking.pairs") != c {
		t.Fatal("Counter did not return the same handle for the same name")
	}
	g := r.Gauge("blocking.ratio")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
	tm := r.Timer("parallel.busy")
	tm.Observe(-time.Second) // clamps to 0
	tm.Observe(3 * time.Millisecond)
	tm.Time(func() {})
	if got := tm.Count(); got != 3 {
		t.Fatalf("timer count = %d, want 3", got)
	}
	d := r.Dist("fusion.delta")
	d.Observe(0.5)
	d.Observe(0.125)
	if d.Count() != 2 || d.Last() != 0.125 {
		t.Fatalf("dist count=%d last=%v, want 2, 0.125", d.Count(), d.Last())
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("pipeline")
	a := root.Child("blocking")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("matching")
	b.End()
	root.End()
	if a.End() != a.Duration() {
		t.Fatal("second End changed the recorded duration")
	}
	if a.Duration() <= 0 {
		t.Fatal("ended span has non-positive duration")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "blocking" || kids[1].Name() != "matching" {
		t.Fatalf("children out of creation order: %v, %v", kids[0].Name(), kids[1].Name())
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("flattened spans = %d, want 3", len(snap.Spans))
	}
	if snap.Spans[1].Path != "pipeline/blocking" || snap.Spans[1].Depth != 1 {
		t.Fatalf("span path/depth = %q/%d", snap.Spans[1].Path, snap.Spans[1].Depth)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry unexpectedly set at test start")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r || OrDefault(nil) != r {
		t.Fatal("SetDefault not visible through Default/OrDefault")
	}
	other := NewRegistry()
	if OrDefault(other) != other {
		t.Fatal("OrDefault ignored the explicit registry")
	}
}

// populate builds a registry whose deterministic content is identical
// across calls; the "parallel." entries and timers simulate the
// run-dependent parts that Stable must strip.
func populate(variant int) *Registry {
	r := NewRegistry()
	r.Counter("matching.comparisons").Add(100)
	r.Counter("blocking.pairs_emitted").Add(40)
	r.Counter("fusion.em_iterations").Add(7)
	r.Gauge("blocking.dedup_ratio").Set(0.4)
	r.Dist("fusion.em_delta").Observe(0.5)
	r.Dist("fusion.em_delta").Observe(0.001)
	// Run-dependent parts, different per variant:
	r.Counter("parallel.chunks").Add(int64(10 * (variant + 1)))
	r.Timer("parallel.worker_busy").Observe(time.Duration(variant+1) * time.Millisecond)
	root := r.StartSpan("pipeline")
	root.Child("blocking").End()
	root.Child("matching").End()
	root.End()
	return r
}

func TestStableSnapshotDeterministic(t *testing.T) {
	var prevText string
	var prevJSON []byte
	for variant := 0; variant < 3; variant++ {
		snap := populate(variant).Snapshot().Stable()
		text := snap.Text()
		js, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if variant > 0 {
			if text != prevText {
				t.Fatalf("stable text differs between variants:\n%s\nvs\n%s", prevText, text)
			}
			if !bytes.Equal(js, prevJSON) {
				t.Fatalf("stable JSON differs between variants:\n%s\nvs\n%s", prevJSON, js)
			}
		}
		prevText, prevJSON = text, js
	}
	if strings.Contains(prevText, "parallel.") {
		t.Fatalf("stable snapshot leaked the parallel namespace:\n%s", prevText)
	}
	if strings.Contains(prevText, "timers:") {
		t.Fatalf("stable snapshot leaked timers:\n%s", prevText)
	}
	for _, want := range []string{"matching.comparisons", "blocking.dedup_ratio", "fusion.em_delta", "pipeline", "blocking"} {
		if !strings.Contains(prevText, want) {
			t.Fatalf("stable text missing %q:\n%s", want, prevText)
		}
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(name).Inc()
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 3 ||
		snap.Counters[0].Name != "a.first" ||
		snap.Counters[1].Name != "m.middle" ||
		snap.Counters[2].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
}

func TestFullSnapshotHasTimers(t *testing.T) {
	r := populate(0)
	snap := r.Snapshot()
	if len(snap.Timers) != 1 || snap.Timers[0].Name != "parallel.worker_busy" {
		t.Fatalf("full snapshot timers = %+v", snap.Timers)
	}
	if len(snap.Timers[0].Buckets) == 0 {
		t.Fatal("timer histogram has no buckets after an observation")
	}
	text := snap.Text()
	if !strings.Contains(text, "timers:") || !strings.Contains(text, "parallel.chunks") {
		t.Fatalf("full text view missing run-dependent sections:\n%s", text)
	}
}

func TestServeDebug(t *testing.T) {
	r := populate(0)
	srv, addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()
	base := "http://" + addr.String()
	for path, want := range map[string]string{
		"/metrics":      "matching.comparisons",
		"/metrics.json": "\"matching.comparisons\"",
		"/debug/vars":   "bdi_metrics",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s: body missing %q:\n%s", path, want, body)
		}
	}
}

func BenchmarkObsSnapshot(b *testing.B) {
	r := populate(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot().Stable().Text()
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
