package obs

import (
	"testing"
	"time"
)

func TestTimerQuantile(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timer("q")
	// 100 observations spread over two decades; exact values are known
	// so the histogram estimate can be checked against the true ranks.
	for i := 1; i <= 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	ts, ok := reg.Snapshot().Timer("q")
	if !ok {
		t.Fatal("timer missing from snapshot")
	}
	if ts.Quantile(0) != time.Millisecond {
		t.Errorf("q0 = %v, want min 1ms", ts.Quantile(0))
	}
	if ts.Quantile(1) != 100*time.Millisecond {
		t.Errorf("q1 = %v, want max 100ms", ts.Quantile(1))
	}
	p50, p99 := ts.Quantile(0.5), ts.Quantile(0.99)
	// log₂ buckets bound the error by 2x of the true value.
	if p50 < 25*time.Millisecond || p50 > 100*time.Millisecond {
		t.Errorf("p50 = %v, want within 2x of 50ms", p50)
	}
	if p99 < 50*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want within 2x of 99ms", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
}

func TestTimerQuantileEdges(t *testing.T) {
	var empty TimerStat
	if empty.Quantile(0.5) != 0 {
		t.Error("empty timer must report 0")
	}
	reg := NewRegistry()
	reg.Timer("one").Observe(7 * time.Millisecond)
	ts, _ := reg.Snapshot().Timer("one")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := ts.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("single-observation q%.2f = %v, want 7ms", q, got)
		}
	}
	if _, ok := reg.Snapshot().Timer("absent"); ok {
		t.Error("absent timer reported present")
	}
}
