// Package obs is the pipeline's observability substrate: atomic
// counters and gauges, duration timers with simple log₂ histograms,
// float distributions, and hierarchical stage/sub-stage spans, exported
// as a sorted text table or JSON (see snapshot.go) and optionally over
// HTTP next to net/http/pprof and expvar (see debug.go).
//
// Two properties shape the design:
//
//   - A nil or absent registry costs ~zero. Every handle type is a
//     pointer whose methods no-op on nil without touching the heap, so
//     instrumented hot paths (pair matching, chunked ForEach, the
//     fusion EM) pay one predictable branch when observability is off —
//     asserted by zero-alloc regressions. "Disabled" is spelled by
//     passing a nil *Registry, never by a boolean.
//
//   - Snapshots are deterministic. All metric listings are sorted by
//     name, span children keep creation order, and Snapshot.Stable
//     strips the two inherently run-dependent ingredients — wall-clock
//     durations, and the "parallel." scheduling namespace whose counts
//     depend on the worker count — leaving output that is byte-identical
//     for any worker count, matching the determinism contract of every
//     other subsystem.
//
// Metric names are dot-paths, "stage.metric" ("blocking.pairs_emitted",
// "fusion.em_iterations"). The "parallel." prefix is reserved for
// scheduling metrics that legitimately vary with the worker count;
// everything else must be worker-count-invariant.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics and root spans. The zero value is not
// used; construct with NewRegistry. All methods are safe on a nil
// receiver (returning nil handles / empty snapshots), which is how a
// disabled registry costs nothing at the call sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	dists    map[string]*Dist
	roots    []*Span
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		dists:    map[string]*Dist{},
	}
}

// defaultReg is the process-wide fallback registry consulted by
// OrDefault. It exists for the CLIs (bdibench instruments experiment
// code it does not own); libraries should thread explicit registries.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs (or, with nil, clears) the process-wide default
// registry returned by Default and OrDefault.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the process-wide default registry, or nil.
func Default() *Registry { return defaultReg.Load() }

// OrDefault returns r when non-nil, else the process default (which is
// nil unless a CLI installed one). One atomic load; no allocation.
func OrDefault(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return defaultReg.Load()
}

// Counter returns the named counter, creating it on first use. Returns
// nil — a valid no-op handle — when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named duration timer, creating it on first use
// (nil on a nil registry).
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Dist returns the named float distribution, creating it on first use
// (nil on a nil registry).
func (r *Registry) Dist(name string) *Dist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.dists[name]
	if d == nil {
		d = &Dist{}
		r.dists[name] = d
	}
	return d
}

// StartSpan starts a root span. On a nil registry the span is still
// live (it times and accepts children) but detached — callers that
// derive data from the span tree, like the pipeline's StageTime, work
// identically whether or not a registry is attached.
func (r *Registry) StartSpan(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	if r != nil {
		r.mu.Lock()
		r.roots = append(r.roots, s)
		r.mu.Unlock()
	}
	return s
}

// Counter is a monotonically increasing atomic counter. All methods
// no-op (or return zero) on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. All methods no-op (or
// return zero) on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates duration observations: count, sum, min, max and a
// log₂-of-nanoseconds histogram. Observation frequency is per batch or
// per worker, not per item, so a mutex is cheap enough and keeps the
// min/max/histogram updates consistent. All methods no-op on nil.
type Timer struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [65]int64 // buckets[i] counts observations with bits.Len64(ns) == i
}

// Observe records one duration (negative observations clamp to 0).
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.sum += d
	t.buckets[bits.Len64(uint64(d))]++
	t.mu.Unlock()
}

// Time runs f and records its duration.
func (t *Timer) Time(f func()) {
	if t == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	t.Observe(time.Since(t0))
}

// Count returns the number of observations (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Dist accumulates float64 observations: count, sum, min, max and the
// last value. Unlike Timer it carries no histogram — its users record
// small deterministic series (EM convergence deltas), where sum/extrema
// plus the final value tell the story. Observations from a single
// goroutine are bit-deterministic (the sum accumulates in observation
// order); concurrent observers are safe but make the sum
// order-dependent, so deterministic metrics must observe sequentially.
// All methods no-op on nil.
type Dist struct {
	mu                   sync.Mutex
	count                int64
	sum, min, max, last_ float64
}

// Observe records one value.
func (d *Dist) Observe(v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.last_ = v
	d.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (d *Dist) Count() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Last returns the most recent observation (0 on nil).
func (d *Dist) Last() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last_
}

// Span is one timed node in a stage/sub-stage hierarchy. Spans are
// created by Registry.StartSpan (roots) and Span.Child (sub-stages),
// and End stops the clock. Child and End no-op on nil, so optional
// sub-stage instrumentation can hang off a span that may be absent.
// Children keep creation order; creators are expected to start
// sub-stages from one goroutine (the pipeline's stage driver), which
// the mutex makes safe but not order-deterministic otherwise.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
}

// Child starts a sub-span (nil on a nil receiver).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock (first call wins) and returns its
// duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration; an un-ended span reports the
// time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a copy of the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}
