// Package temporal implements linkage over evolving entities — the
// Velocity dimension at the matching level. Records carry an epoch;
// entities legitimately change attribute values over time, so a static
// matcher splits an evolving entity into several clusters. The temporal
// matcher decays disagreement penalties with time distance (a value
// conflict across a long gap is weak evidence of non-match, following
// the temporal record-linkage line of work the tutorial surveys) and
// clusters records in time order against cluster representatives.
package temporal

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/similarity"
)

// EpochAttr is the record field holding the epoch number.
const EpochAttr = "epoch"

// EpochOf extracts a record's epoch (0 when absent).
func EpochOf(r *data.Record) float64 {
	v := r.Get(EpochAttr)
	if v.Kind != data.KindNumber {
		return 0
	}
	return v.Num
}

// Matcher scores record pairs with time-decayed disagreement: the
// per-field similarities from Comparator are relaxed toward neutrality
// as the epoch gap grows, at a per-field relaxation controlled by
// Decay ∈ [0,1) per epoch. Stable evidence (agreement) is kept at full
// strength; only disagreement is forgiven.
type Matcher struct {
	Comparator *similarity.RecordComparator
	// Decay is the default per-epoch disagreement forgiveness rate in
	// [0,1). 0 reduces to the static matcher. Default 0.25.
	Decay float64
	// AttrDecay overrides the decay per attribute: identity-stable
	// attributes (names, identifiers) should be pinned to 0 so that
	// their disagreement is never forgiven, while fast-evolving ones
	// (affiliation, price) can decay faster than the default — mirroring
	// the learned per-attribute change rates of the temporal
	// record-linkage literature.
	AttrDecay map[string]float64
	// Threshold on the adjusted score. Default 0.75.
	Threshold float64
}

func (m *Matcher) decayFor(attr string) float64 {
	if d, ok := m.AttrDecay[attr]; ok {
		return d
	}
	return m.Decay
}

// NewMatcher returns a temporal matcher with default decay/threshold.
func NewMatcher(c *similarity.RecordComparator) *Matcher {
	return &Matcher{Comparator: c, Decay: 0.25, Threshold: 0.75}
}

// Score returns the time-adjusted similarity of two records.
func (m *Matcher) Score(a, b *data.Record) float64 {
	gap := math.Abs(EpochOf(a) - EpochOf(b))
	var sum, wsum float64
	for _, f := range m.Comparator.Fields() {
		va, vb := a.Get(f.Attr), b.Get(f.Attr)
		if va.IsNull() && vb.IsNull() {
			continue
		}
		s := similarity.Values(va, vb, f.Metric)
		// forgiveness ∈ [0,1): how much of a disagreement on this
		// attribute is excused at this time distance. Lift the score
		// toward 1 in proportion: old conflicts on evolving attributes
		// stop counting against the match.
		forgiveness := 1 - math.Pow(1-m.decayFor(f.Attr), gap)
		s = s + (1-s)*forgiveness
		sum += f.Weight * s
		wsum += f.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Match implements the linkage.Matcher shape.
func (m *Matcher) Match(a, b *data.Record) (float64, bool) {
	s := m.Score(a, b)
	return s, s >= m.Threshold
}

// Cluster links records of one corpus in time order: each record is
// compared against the latest representative of every existing cluster
// (under the temporal score) and joins the best cluster above
// threshold, else founds a new one. Candidates may restrict the
// clusters considered for a record (blocking); when nil, all clusters
// are considered.
func (m *Matcher) Cluster(records []*data.Record) data.Clustering {
	ordered := append([]*data.Record(nil), records...)
	sort.SliceStable(ordered, func(i, j int) bool {
		ei, ej := EpochOf(ordered[i]), EpochOf(ordered[j])
		if ei != ej {
			return ei < ej
		}
		return ordered[i].ID < ordered[j].ID
	})
	type clusterState struct {
		members []string
		latest  *data.Record
	}
	var clusters []*clusterState
	for _, r := range ordered {
		bestIdx, bestScore := -1, m.Threshold
		for ci, c := range clusters {
			if s := m.Score(c.latest, r); s >= bestScore {
				bestIdx, bestScore = ci, s
			}
		}
		if bestIdx >= 0 {
			clusters[bestIdx].members = append(clusters[bestIdx].members, r.ID)
			clusters[bestIdx].latest = r
		} else {
			clusters = append(clusters, &clusterState{members: []string{r.ID}, latest: r})
		}
	}
	out := make(data.Clustering, 0, len(clusters))
	for _, c := range clusters {
		out = append(out, c.members)
	}
	return out.Normalize()
}

// StaticCluster runs the same greedy clustering with decay disabled —
// the baseline the temporal matcher is compared against in E12.
func (m *Matcher) StaticCluster(records []*data.Record) data.Clustering {
	static := *m
	static.Decay = 0
	static.AttrDecay = nil
	return static.Cluster(records)
}
