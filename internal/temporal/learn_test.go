package temporal

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
)

// learnCorpus builds a labelled multi-epoch dataset where "affiliation"
// drifts and "name" never does.
func learnCorpus() (*data.Dataset, data.Clustering) {
	d := data.NewDataset()
	_ = d.AddSource(&data.Source{ID: "s"})
	var clusters data.Clustering
	names := []string{"alice johnson", "bob miller", "carol zhang", "dave brown"}
	for e, name := range names {
		var cl data.Cluster
		for epoch := 0; epoch < 6; epoch++ {
			affil := "first employer"
			if epoch >= 2 {
				affil = "second employer"
			}
			if epoch >= 4 {
				affil = "third employer"
			}
			id := fmt.Sprintf("l%d-t%d", e, epoch)
			r := data.NewRecord(id, "s").
				Set("name", data.String(name)).
				Set("affiliation", data.String(affil)).
				Set(EpochAttr, data.Number(float64(epoch)))
			_ = d.AddRecord(r)
			cl = append(cl, id)
		}
		clusters = append(clusters, cl)
	}
	return d, clusters.Normalize()
}

func TestLearnDecayShape(t *testing.T) {
	d, clusters := learnCorpus()
	decay := LearnDecay(d, clusters, 5)
	nameDecay, okName := decay["name"]
	affilDecay, okAffil := decay["affiliation"]
	if !okName || !okAffil {
		t.Fatalf("missing learned decays: %v", decay)
	}
	if nameDecay != 0 {
		t.Errorf("name decay = %f, want 0 (never drifts)", nameDecay)
	}
	if affilDecay <= 0.05 {
		t.Errorf("affiliation decay = %f, want clearly positive", affilDecay)
	}
	for a, v := range decay {
		if v < 0 || v > 0.95 {
			t.Errorf("decay[%s] = %f out of range", a, v)
		}
	}
}

func TestLearnDecayMinSupport(t *testing.T) {
	d, clusters := learnCorpus()
	decay := LearnDecay(d, clusters, 10000)
	if len(decay) != 0 {
		t.Errorf("absurd support floor must learn nothing, got %v", decay)
	}
}

func TestFitMatcherBeatsStaticOnDriftingData(t *testing.T) {
	d, clusters := learnCorpus()
	cmp := cmp() // name + affiliation comparator from temporal_test
	fitted := FitMatcher(d, clusters, cmp, 0.1)
	fitted.Threshold = 0.8
	fittedF1 := eval.Clusters(fitted.Cluster(d.Records()), clusters).F1
	static := NewMatcher(cmp)
	static.Decay = 0
	static.Threshold = 0.8
	staticF1 := eval.Clusters(static.Cluster(d.Records()), clusters).F1
	if fittedF1 <= staticF1 {
		t.Errorf("fitted matcher %f must beat static %f on its own drift regime", fittedF1, staticF1)
	}
	if fittedF1 < 0.9 {
		t.Errorf("fitted F1 = %f", fittedF1)
	}
	// Learned name decay pins identity: different people stay apart.
	other := data.NewRecord("x", "s").Set("name", data.String("totally different person")).
		Set("affiliation", data.String("first employer")).
		Set(EpochAttr, data.Number(9))
	first := d.Records()[0]
	if _, ok := fitted.Match(first, other); ok {
		t.Error("fitted matcher must not merge different names across epochs")
	}
}
