package temporal

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/similarity"
)

func cmp() *similarity.RecordComparator {
	return similarity.NewRecordComparator(
		similarity.FieldWeight{Attr: "name", Weight: 2, Metric: similarity.Jaccard},
		similarity.FieldWeight{Attr: "affiliation", Weight: 1, Metric: similarity.Jaccard},
	)
}

func recAt(id string, epoch int, name, affil string) *data.Record {
	r := data.NewRecord(id, "s").
		Set("name", data.String(name)).
		Set("affiliation", data.String(affil)).
		Set(EpochAttr, data.Number(float64(epoch)))
	return r
}

func TestEpochOf(t *testing.T) {
	if EpochOf(recAt("x", 3, "a", "b")) != 3 {
		t.Error("epoch lookup failed")
	}
	if EpochOf(data.NewRecord("y", "s")) != 0 {
		t.Error("missing epoch must be 0")
	}
}

func TestScoreDecayForgivesOldConflicts(t *testing.T) {
	m := NewMatcher(cmp())
	// Same person, affiliation changed.
	a := recAt("a", 0, "xin luna dong", "university of washington")
	bNear := recAt("b", 1, "xin luna dong", "google research lab")
	bFar := recAt("c", 6, "xin luna dong", "google research lab")
	near := m.Score(a, bNear)
	far := m.Score(a, bFar)
	if far <= near {
		t.Errorf("far-apart conflict must be forgiven more: near=%f far=%f", near, far)
	}
	// Agreement is not inflated for identical records at distance 0.
	same := m.Score(a, a)
	if same < 0.999 {
		t.Errorf("self score = %f", same)
	}
}

func TestZeroDecayIsStatic(t *testing.T) {
	m := NewMatcher(cmp())
	m.Decay = 0
	a := recAt("a", 0, "john smith", "acme corp")
	b := recAt("b", 9, "john smith", "different inc")
	c := recAt("c", 0, "john smith", "different inc")
	if m.Score(a, b) != m.Score(a, c) {
		t.Error("zero decay must ignore epochs")
	}
}

// evolvingCorpus: entities whose affiliation changes once mid-stream,
// two records per epoch over 6 epochs.
func evolvingCorpus() ([]*data.Record, data.Clustering) {
	var recs []*data.Record
	var truth data.Clustering
	names := []string{"alice johnson", "bob miller", "carol zhang"}
	for e, name := range names {
		var cluster data.Cluster
		for epoch := 0; epoch < 6; epoch++ {
			affil := "initial institute " + name
			if epoch >= 3 {
				affil = "moved laboratory " + name
			}
			id := fmt.Sprintf("p%d-t%d", e, epoch)
			recs = append(recs, recAt(id, epoch, name, affil))
			cluster = append(cluster, id)
		}
		truth = append(truth, cluster)
	}
	return recs, truth.Normalize()
}

func TestTemporalBeatsStaticOnEvolvingEntities(t *testing.T) {
	recs, truth := evolvingCorpus()
	m := NewMatcher(cmp())
	m.Threshold = 0.8
	m.Decay = 0.4
	m.AttrDecay = map[string]float64{"name": 0} // names never evolve
	temporalF1 := eval.Clusters(m.Cluster(recs), truth).F1
	staticF1 := eval.Clusters(m.StaticCluster(recs), truth).F1
	if temporalF1 <= staticF1 {
		t.Errorf("temporal F1 %f must beat static F1 %f", temporalF1, staticF1)
	}
	if temporalF1 < 0.95 {
		t.Errorf("temporal F1 = %f, want ~1", temporalF1)
	}
}

func TestTemporalEqualsStaticOnStableEntities(t *testing.T) {
	var recs []*data.Record
	var truth data.Clustering
	for e := 0; e < 3; e++ {
		var cluster data.Cluster
		for epoch := 0; epoch < 4; epoch++ {
			id := fmt.Sprintf("s%d-t%d", e, epoch)
			recs = append(recs, recAt(id, epoch,
				fmt.Sprintf("stable person %d", e),
				fmt.Sprintf("stable employer %d", e)))
			cluster = append(cluster, id)
		}
		truth = append(truth, cluster)
	}
	m := NewMatcher(cmp())
	m.Threshold = 0.8
	tF1 := eval.Clusters(m.Cluster(recs), truth.Normalize()).F1
	sF1 := eval.Clusters(m.StaticCluster(recs), truth.Normalize()).F1
	if tF1 != 1 || sF1 != 1 {
		t.Errorf("stable entities: temporal=%f static=%f, want both 1", tF1, sF1)
	}
}

func TestTemporalDoesNotOvermergeDistinctEntities(t *testing.T) {
	// Two different people far apart in time: forgiveness must not link
	// records whose *names* disagree (agreement evidence stays primary).
	m := NewMatcher(cmp())
	m.Threshold = 0.8
	m.Decay = 0.3
	m.AttrDecay = map[string]float64{"name": 0}
	a := recAt("a", 0, "alice johnson", "acme")
	b := recAt("b", 8, "pete brown", "acme")
	if _, ok := m.Match(a, b); ok {
		t.Error("different names must not match even across long gaps")
	}
	clusters := m.Cluster([]*data.Record{a, b})
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestClusterDeterministic(t *testing.T) {
	recs, _ := evolvingCorpus()
	m := NewMatcher(cmp())
	a := m.Cluster(recs)
	b := m.Cluster(recs)
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic clusters")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}
