package temporal

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/similarity"
)

// LearnDecay estimates per-attribute decay rates from a labelled
// sample: records known to co-refer (e.g. linked by identifiers, or a
// training prefix with ground truth) whose attribute values differ
// across epochs reveal how fast each attribute legitimately evolves.
// The decay rate for an attribute is fitted so that the observed
// disagreement probability at the mean epoch gap matches
// 1-(1-decay)^gap. Attributes never observed disagreeing get decay 0
// (identity-stable); attributes with too little support (fewer than
// minSupport cross-epoch co-referring pairs) are omitted from the map.
func LearnDecay(d *data.Dataset, clusters data.Clustering, minSupport int) map[string]float64 {
	if minSupport <= 0 {
		minSupport = 5
	}
	type acc struct {
		pairs     float64
		disagrees float64
		gapSum    float64
	}
	stats := map[string]*acc{}
	for _, cl := range clusters {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				ra, rb := d.Record(cl[i]), d.Record(cl[j])
				if ra == nil || rb == nil {
					continue
				}
				gap := math.Abs(EpochOf(ra) - EpochOf(rb))
				if gap == 0 {
					continue // same-epoch disagreement is noise, not drift
				}
				for _, attr := range ra.Attrs() {
					if attr == EpochAttr {
						continue
					}
					va, vb := ra.Fields[attr], rb.Get(attr)
					if vb.IsNull() {
						continue
					}
					st := stats[attr]
					if st == nil {
						st = &acc{}
						stats[attr] = st
					}
					st.pairs++
					st.gapSum += gap
					if !va.Equal(vb) {
						st.disagrees++
					}
				}
			}
		}
	}
	out := map[string]float64{}
	attrs := make([]string, 0, len(stats))
	for a := range stats {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		st := stats[a]
		if int(st.pairs) < minSupport {
			continue
		}
		pDis := st.disagrees / st.pairs
		if pDis <= 0 {
			out[a] = 0
			continue
		}
		if pDis >= 1 {
			pDis = 0.99
		}
		meanGap := st.gapSum / st.pairs
		// Solve pDis = 1 - (1-decay)^meanGap for decay.
		decay := 1 - math.Pow(1-pDis, 1/meanGap)
		out[a] = clamp01(decay)
	}
	return out
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 0.95:
		return 0.95
	}
	return x
}

// FitMatcher builds a temporal matcher whose per-attribute decay rates
// are learned from the labelled clusters. Attributes without support
// fall back to defaultDecay.
func FitMatcher(d *data.Dataset, clusters data.Clustering,
	cmp *similarity.RecordComparator, defaultDecay float64) *Matcher {
	m := NewMatcher(cmp)
	m.Decay = defaultDecay
	m.AttrDecay = LearnDecay(d, clusters, 5)
	return m
}
