package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/similarity"
	"repro/internal/temporal"
)

// AlignmentF1 scores a mediated schema against the generator's dialect
// ground truth: two source attributes correspond iff they rename the
// same canonical attribute (cross-source pairs only; single-category
// worlds make this unambiguous).
func AlignmentF1(web *datagen.Web, ms *schema.MediatedSchema) float64 {
	canonical := map[string]string{}
	for _, gs := range web.Sources {
		for canon, local := range gs.Dialect.Rename {
			canonical[gs.ID+"/"+local] = canon
		}
	}
	type saPair [2]string
	pred := map[saPair]bool{}
	for _, ma := range ms.Attrs {
		var keys []string
		for sa := range ma.Members {
			keys = append(keys, sa.String())
		}
		sort.Strings(keys)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				pred[saPair{keys[i], keys[j]}] = true
			}
		}
	}
	universe := make([]string, 0, len(ms.Of))
	for sa := range ms.Of {
		universe = append(universe, sa.String())
	}
	sort.Strings(universe)
	truth := map[saPair]bool{}
	for i := 0; i < len(universe); i++ {
		for j := i + 1; j < len(universe); j++ {
			a, b := universe[i], universe[j]
			if srcOf(a) == srcOf(b) {
				continue // per-source schemas are consistent by assumption
			}
			ca, cb := canonical[a], canonical[b]
			if ca != "" && ca == cb {
				truth[saPair{a, b}] = true
			}
		}
	}
	tp := 0
	for p := range pred {
		if truth[p] {
			tp++
		}
	}
	if len(pred) == 0 || len(truth) == 0 {
		return 0
	}
	prec := float64(tp) / float64(len(pred))
	rec := float64(tp) / float64(len(truth))
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

func srcOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// E11Result is the structured output of E11.
type E11Result struct {
	// Accuracy[domain][fuser].
	Accuracy map[string]map[string]float64
}

// E11 — domain study: fusion-method accuracy on a high-copy "stock-like"
// domain vs a low-copy "flight-like" domain (shape of Li et al.
// VLDB'13: method choice matters where copying is rampant).
func E11(seed int64) (*Table, *E11Result, error) {
	domains := []struct {
		name string
		cfg  datagen.ClaimConfig
	}{
		{"stock-like (heavy copying)", datagen.ClaimConfig{
			Seed: seed, NumItems: 200, NumValues: 8,
			NumSources: 6, MinAccuracy: 0.5, MaxAccuracy: 0.85,
			NumCopiers: 8, CopyRate: 0.95, CopierSpread: 2,
		}},
		{"flight-like (independent)", datagen.ClaimConfig{
			Seed: seed + 1, NumItems: 200, NumValues: 8,
			NumSources: 14, MinAccuracy: 0.7, MaxAccuracy: 0.95,
		}},
	}
	res := &E11Result{Accuracy: map[string]map[string]float64{}}
	tab := &Table{ID: "E11", Title: "fusion methods across domain regimes", Columns: []string{"domain"}}
	for _, f := range standardFusers() {
		tab.Columns = append(tab.Columns, f.Name())
	}
	for _, dom := range domains {
		cw := datagen.BuildClaims(dom.cfg)
		row := []string{dom.name}
		res.Accuracy[dom.name] = map[string]float64{}
		for _, f := range standardFusers() {
			acc, err := fuserAccuracy(f, cw.Claims)
			if err != nil {
				return nil, nil, err
			}
			res.Accuracy[dom.name][f.Name()] = acc
			row = append(row, f3(acc))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = "the method spread should be wide under heavy copying and narrow when sources are independent and accurate"
	return tab, res, nil
}

// E12Result is the structured output of E12.
type E12Result struct {
	EvolvingTemporalF1 float64
	EvolvingStaticF1   float64
	StableTemporalF1   float64
	StableStaticF1     float64
}

// E12 — temporal linkage: time-decayed vs static matching on evolving
// and stable entity populations.
func E12(seed int64) (*Table, *E12Result, error) {
	run := func(evolving float64) (tf1, sf1 float64) {
		w := datagen.NewWorld(datagen.WorldConfig{
			Seed: seed, NumEntities: 30, Categories: []string{"camera"},
		})
		// Sources are near-perfect observers so that value disagreement
		// comes from entity drift, not source error — E12 isolates the
		// temporal effect; source error is E1/E11's subject.
		tw := datagen.BuildTemporal(w, datagen.SourceConfig{
			Seed: seed + 2, NumSources: 4, DirtLevel: 0,
			IdentifierRate: 0, HeadFraction: 0.8, HeadCoverage: 0.8,
			MinAccuracy: 0.97, MaxAccuracy: 0.99,
			Heterogeneity: -1, // schemas stay canonical: E12 is not about alignment
		}, datagen.TemporalConfig{
			Seed: seed + 3, Epochs: 6, DriftRate: 0.9, EvolvingFraction: evolving,
		})
		union := tw.Union()
		m := temporal.NewMatcher(pipelineComparator())
		m.Threshold = 0.82
		m.Decay = 0.35
		m.AttrDecay = map[string]float64{"title": 0}
		records := union.Records()
		truth := union.GroundTruthClusters()
		tf1 = eval.Clusters(m.Cluster(records), truth).F1
		sf1 = eval.Clusters(m.StaticCluster(records), truth).F1
		return
	}
	res := &E12Result{}
	res.EvolvingTemporalF1, res.EvolvingStaticF1 = run(0.9)
	res.StableTemporalF1, res.StableStaticF1 = run(0.0001)
	tab := &Table{
		ID: "E12", Title: "temporal vs static linkage",
		Columns: []string{"population", "temporal F1", "static F1"},
		Rows: [][]string{
			{"evolving entities", f4(res.EvolvingTemporalF1), f4(res.EvolvingStaticF1)},
			{"stable entities", f4(res.StableTemporalF1), f4(res.StableStaticF1)},
		},
		Notes: "decay should pay off on evolving entities and cost nothing on stable ones",
	}
	return tab, res, nil
}

// E13Result is the structured output of E13. MatchingUncached and
// MatchSpeedup compare the matching stage against a NoFeatureIndex
// ablation run; BlockingMaterialized and BlockingSpeedup compare the
// streaming interned blocking engine against the historical
// materialized map-based path (MaterializeCandidates); FusionSeq and
// FusionSpeedup re-fuse the pipeline's claims on one worker vs the
// default pool (byte-identical results either way).
type E13Result struct {
	Report               *core.Report
	LinkageF1            float64
	FusedItems           int
	MatchingCached       time.Duration
	MatchingUncached     time.Duration
	MatchSpeedup         float64
	BlockingStreamed     time.Duration
	BlockingMaterialized time.Duration
	BlockingSpeedup      float64
	FusionSeq            time.Duration
	FusionPar            time.Duration
	FusionSpeedup        float64
}

// E13 — end-to-end pipeline: stage timings and integration quality on a
// full heterogeneous multi-category web. The pipeline runs three times —
// default (feature cache on, streaming blocking engine), with
// NoFeatureIndex, and with MaterializeCandidates — to report the
// matching-stage speedup the cache buys and the blocking-stage speedup
// the interned engine buys.
func E13(seed int64) (*Table, *E13Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 60})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 14, DirtLevel: 1,
		IdentifierRate: 0.85, Heterogeneity: 0.5,
		HeadFraction: 0.4, TailCoverage: 0.3, CopierFraction: 0.2,
	})
	rep, err := core.New(core.Config{Fuser: "accucopy"}).Run(web.Dataset)
	if err != nil {
		return nil, nil, err
	}
	repU, err := core.New(core.Config{Fuser: "accucopy", NoFeatureIndex: true}).Run(web.Dataset)
	if err != nil {
		return nil, nil, err
	}
	repM, err := core.New(core.Config{Fuser: "accucopy", MaterializeCandidates: true}).Run(web.Dataset)
	if err != nil {
		return nil, nil, err
	}
	res := &E13Result{
		Report:               rep,
		LinkageF1:            eval.Clusters(rep.Clusters, web.Dataset.GroundTruthClusters()).F1,
		FusedItems:           len(rep.Fusion.Values),
		MatchingCached:       rep.StageTime["matching"],
		MatchingUncached:     repU.StageTime["matching"],
		BlockingStreamed:     rep.StageTime["blocking"],
		BlockingMaterialized: repM.StageTime["blocking"],
	}
	if res.MatchingCached > 0 {
		res.MatchSpeedup = float64(res.MatchingUncached) / float64(res.MatchingCached)
	}
	if res.BlockingStreamed > 0 {
		res.BlockingSpeedup = float64(res.BlockingMaterialized) / float64(res.BlockingStreamed)
	}
	fuserSeq, err := core.BuildFuserWith("accucopy", 1)
	if err != nil {
		return nil, nil, err
	}
	fuserPar, err := core.BuildFuserWith("accucopy", 0)
	if err != nil {
		return nil, nil, err
	}
	res.FusionSeq, res.FusionPar, res.FusionSpeedup, err = timeFuse(fuserSeq, fuserPar, rep.Claims)
	if err != nil {
		return nil, nil, err
	}
	tab := &Table{
		ID: "E13", Title: "end-to-end pipeline on a heterogeneous web",
		Columns: []string{"metric", "value"},
	}
	tab.Rows = append(tab.Rows,
		[]string{"records", d1(web.Dataset.NumRecords())},
		[]string{"sources", d1(web.Dataset.NumSources())},
		[]string{"candidates", d1(rep.Candidates)},
		[]string{"matched pairs", d1(len(rep.Matched))},
		[]string{"clusters", d1(len(rep.Clusters))},
		[]string{"linkage F1", f4(res.LinkageF1)},
		[]string{"mediated attrs", d1(len(rep.Schema.Attrs))},
		[]string{"transforms", d1(len(rep.Transforms))},
		[]string{"claims", d1(rep.Claims.Len())},
		[]string{"fused items", d1(res.FusedItems)},
	)
	for _, stage := range []string{"blocking", "matching", "clustering", "alignment", "fusion"} {
		tab.Rows = append(tab.Rows, []string{stage + " time", rep.StageTime[stage].String()})
	}
	tab.Rows = append(tab.Rows,
		[]string{"matching time (no feature cache)", res.MatchingUncached.String()},
		[]string{"matching cache speedup", f3(res.MatchSpeedup) + "x"},
		[]string{"blocking time (materialized path)", res.BlockingMaterialized.String()},
		[]string{"blocking engine speedup", f3(res.BlockingSpeedup) + "x"},
		[]string{"fusion time (1 worker)", res.FusionSeq.String()},
		[]string{"fusion time (parallel engine)", res.FusionPar.String()},
		[]string{"fusion parallel speedup", f3(res.FusionSpeedup) + "x"},
	)
	return tab, res, nil
}

// E14Result is the structured output of E14.
type E14Result struct {
	LinkageFirstAlignF1 float64
	SchemaFirstAlignF1  float64
	LinkageFirstLinkF1  float64
	SchemaFirstLinkF1   float64
}

// E14 — ordering ablation: linkage-before-alignment vs the traditional
// schema-first ordering on an identifier-rich single-category web.
func E14(seed int64) (*Table, *E14Result, error) {
	// Average over several generated webs: the orderings differ by a
	// few clustering decisions on any single world, so single-seed
	// comparisons are noisy.
	seeds := []int64{seed, seed + 101, seed + 202}
	res := &E14Result{}
	for _, s := range seeds {
		w := datagen.NewWorld(datagen.WorldConfig{
			Seed: s, NumEntities: 40, Categories: []string{"camera"},
		})
		web := datagen.BuildWeb(w, datagen.SourceConfig{
			Seed: s + 1, NumSources: 10, DirtLevel: 1,
			IdentifierRate: 0.95, Heterogeneity: 0.6,
			HeadFraction: 0.4, TailCoverage: 0.3,
		})
		truth := web.Dataset.GroundTruthClusters()
		for _, ord := range []core.Order{core.LinkageFirst, core.SchemaFirst} {
			rep, err := core.New(core.Config{Order: ord}).Run(web.Dataset)
			if err != nil {
				return nil, nil, err
			}
			af1 := AlignmentF1(web, rep.Schema)
			lf1 := eval.Clusters(rep.Clusters, truth).F1
			if ord == core.LinkageFirst {
				res.LinkageFirstAlignF1 += af1
				res.LinkageFirstLinkF1 += lf1
			} else {
				res.SchemaFirstAlignF1 += af1
				res.SchemaFirstLinkF1 += lf1
			}
		}
	}
	n := float64(len(seeds))
	res.LinkageFirstAlignF1 /= n
	res.LinkageFirstLinkF1 /= n
	res.SchemaFirstAlignF1 /= n
	res.SchemaFirstLinkF1 /= n
	tab := &Table{
		ID: "E14", Title: "pipeline ordering ablation (mean of 3 worlds)",
		Columns: []string{"order", "alignment F1", "linkage F1"},
		Rows: [][]string{
			{core.LinkageFirst.String(), f4(res.LinkageFirstAlignF1), f4(res.LinkageFirstLinkF1)},
			{core.SchemaFirst.String(), f4(res.SchemaFirstAlignF1), f4(res.SchemaFirstLinkF1)},
		},
		Notes: "with identifiers present, linking first should align attributes at least as well as aligning blind",
	}
	return tab, res, nil
}

// pipelineComparator is the record comparator used by the temporal
// experiment: title is identity-stable, the drifting attributes evolve.
func pipelineComparator() *similarity.RecordComparator {
	return similarity.NewRecordComparator(
		similarity.FieldWeight{Attr: "title", Weight: 2, Metric: similarity.Jaccard},
		similarity.FieldWeight{Attr: "camera_brand", Weight: 1},
		similarity.FieldWeight{Attr: "camera_color", Weight: 1},
		similarity.FieldWeight{Attr: "camera_weight_g", Weight: 1},
		similarity.FieldWeight{Attr: "camera_price_usd", Weight: 1},
	)
}

// Runner maps experiment IDs to their table-producing functions.
type Runner struct {
	Seed int64
}

// Run executes one experiment by ID ("E1".."E14") and returns its table.
func (r Runner) Run(id string) (*Table, error) {
	seed := r.Seed
	if seed == 0 {
		seed = 42
	}
	var tab *Table
	var err error
	switch id {
	case "E1":
		tab, _, err = E1(seed)
	case "E2":
		tab, _, err = E2(seed)
	case "E3":
		tab, _, err = E3(seed)
	case "E4":
		tab, _, err = E4(seed)
	case "E5":
		tab, _, err = E5(seed)
	case "E6":
		tab, _, err = E6(seed)
	case "E7":
		tab, _, err = E7(seed)
	case "E8":
		tab, _, err = E8(seed)
	case "E9":
		tab, _, err = E9(seed)
	case "E10":
		tab, _, err = E10(seed)
	case "E11":
		tab, _, err = E11(seed)
	case "E12":
		tab, _, err = E12(seed)
	case "E13":
		tab, _, err = E13(seed)
	case "E14":
		tab, _, err = E14(seed)
	case "E15":
		tab, _, err = E15(seed)
	case "E16":
		tab, _, err = E16(seed)
	case "E17":
		tab, _, err = E17(seed)
	case "E18":
		tab, _, err = E18(seed)
	case "E19":
		tab, _, err = E19(seed)
	case "E20":
		tab, _, err = E20(seed)
	case "E21":
		tab, _, err = E21(seed)
	case "E22":
		tab, _, err = E22(seed)
	case "E23":
		tab, _, err = E23(seed)
	case "E24":
		tab, _, err = E24(seed)
	case "E25":
		tab, _, err = E25(seed)
	case "E26":
		tab, _, err = E26(seed)
	case "E27":
		tab, _, err = E27(seed)
	case "E28":
		tab, _, err = E28(seed)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return tab, err
}

// All lists the experiment IDs in order. E1–E14 reproduce the surveyed
// result shapes; E15–E24 cover the extension features, ablations and
// the fault-injection chaos sweep; E24 is the sharded/spilled blocking
// scale-out sweep; E25 is the rank-fusion recall-vs-comparisons
// evaluation; E26 is the concurrent-serving latency benchmark; E27
// is the streaming-vs-batch-relink velocity cost comparison; E28 is
// the update/delete churn correctness and bounded-state evaluation.
func All() []string {
	return []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28",
	}
}
