package experiments

import (
	"fmt"
	"time"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/schema"
	"repro/internal/similarity"
	"repro/internal/sourcesel"
)

// E6Result is the structured output of E6.
type E6Result struct {
	// PRF[clusterer] over the noisy match graph.
	PRF map[string]eval.PRF
}

// E6 — clustering choice on a noisy match graph: connected components
// vs center vs merge-center vs correlation clustering.
func E6(seed int64) (*Table, *E6Result, error) {
	web := dirtyWeb(seed, 80, 12, 2)
	d := web.Dataset
	records := d.Records()
	truth := d.GroundTruthClusters()

	// A deliberately loose matcher creates the noisy graph clustering
	// must cope with.
	cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(records)
	m := linkage.ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.45,
	}
	edges := linkage.MatchPairs(d, cands, m, 4)
	var ids []string
	for _, r := range records {
		ids = append(ids, r.ID)
	}
	clusterers := []struct {
		name string
		c    linkage.Clusterer
	}{
		{"components", linkage.ConnectedComponents{}},
		{"center", linkage.Center{}},
		{"merge-center", linkage.MergeCenter{}},
		{"correlation", linkage.CorrelationClustering{MinScore: 0.45}},
	}
	res := &E6Result{PRF: map[string]eval.PRF{}}
	tab := &Table{
		ID: "E6", Title: "clustering algorithms on a noisy match graph",
		Columns: []string{"clusterer", "P", "R", "F1", "clusters"},
	}
	for _, c := range clusterers {
		got := c.c.Cluster(ids, edges)
		prf := eval.Clusters(got, truth)
		res.PRF[c.name] = prf
		tab.Rows = append(tab.Rows, []string{
			c.name, f4(prf.Precision), f4(prf.Recall), f4(prf.F1), d1(len(got)),
		})
	}
	tab.Notes = "connected components maximises recall; center-family trades recall for precision"
	return tab, res, nil
}

// E7Result is the structured output of E7.
type E7Result struct {
	BatchSizes         []int
	IncrementalPerRec  []time.Duration // mean per-record insert latency per batch
	BatchRelinkPerRec  []time.Duration // mean per-record cost of full re-linkage at that size
	IncComparisons     []int
	CorpusAfterBatch   []int
	FinalIncrementalF1 float64
	// Cumulative wall-clock over the whole stream: processing every batch
	// incrementally vs re-running full linkage at every checkpoint.
	CumulativeIncremental time.Duration
	CumulativeBatch       time.Duration
}

// E7 — incremental vs batch linkage under a record stream: per-record
// incremental cost stays flat, and processing the whole stream
// incrementally beats re-running full linkage at every checkpoint,
// whose cumulative cost grows quadratically with the stream.
func E7(seed int64) (*Table, *E7Result, error) {
	// Enough checkpoints that the batch path's redone work clearly
	// dominates, even with the parallel interned blocking engine
	// driving batch candidate generation.
	web := dirtyWeb(seed, 700, 24, 1)
	d := web.Dataset
	all := d.Records()

	// 0.72 sits above the Jaccard of same-brand-same-series titles of
	// *different* entities (3 of 5 tokens ≈ 0.6) and below true
	// duplicates with one token perturbed (4 of 5 = 0.8).
	matcher := linkage.ThresholdMatcher{
		Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
		Threshold:  0.72,
	}
	inc := linkage.NewIncremental(linkage.TitleTokenKey, matcher)
	inc.MaxBlock = 128
	res := &E7Result{}
	tab := &Table{
		ID: "E7", Title: "incremental vs batch linkage per record",
		Columns: []string{"corpus", "inc/rec", "batch/rec", "inc comparisons"},
	}
	const batch = 400
	prevComparisons := 0
	for start := 0; start < len(all); start += batch {
		end := start + batch
		if end > len(all) {
			end = len(all)
		}
		t0 := time.Now()
		for _, r := range all[start:end] {
			src := d.Source(r.SourceID)
			if _, err := inc.Insert(src, r.Clone()); err != nil {
				return nil, nil, err
			}
		}
		incElapsed := time.Since(t0)
		incPer := incElapsed / time.Duration(end-start)
		res.CumulativeIncremental += incElapsed

		// Full batch re-linkage over everything seen so far.
		t0 = time.Now()
		seen := all[:end]
		cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(seen)
		edges := linkage.MatchPairs(d, cands, matcher, 4)
		var ids []string
		for _, r := range seen {
			ids = append(ids, r.ID)
		}
		linkage.ConnectedComponents{}.Cluster(ids, edges)
		batchElapsed := time.Since(t0)
		batchPer := batchElapsed / time.Duration(end)
		res.CumulativeBatch += batchElapsed

		res.BatchSizes = append(res.BatchSizes, end)
		res.IncrementalPerRec = append(res.IncrementalPerRec, incPer)
		res.BatchRelinkPerRec = append(res.BatchRelinkPerRec, batchPer)
		res.IncComparisons = append(res.IncComparisons, inc.Comparisons()-prevComparisons)
		res.CorpusAfterBatch = append(res.CorpusAfterBatch, end)
		prevComparisons = inc.Comparisons()
		tab.Rows = append(tab.Rows, []string{
			d1(end), incPer.String(), batchPer.String(), d1(res.IncComparisons[len(res.IncComparisons)-1]),
		})
	}
	res.FinalIncrementalF1 = eval.Clusters(inc.Clusters(), d.GroundTruthClusters()).F1
	tab.Notes = fmt.Sprintf(
		"final incremental F1 = %.3f; whole stream: incremental %s vs batch-relink-at-every-checkpoint %s",
		res.FinalIncrementalF1, res.CumulativeIncremental, res.CumulativeBatch)
	return tab, res, nil
}

// E8Result is the structured output of E8.
type E8Result struct {
	Sources   []int
	LinkageF1 []float64 // alignment F1 with linkage evidence
	NameF1    []float64 // alignment F1 with name+instance evidence only
}

// E8 — mediated-schema quality vs number of sources, with and without
// linkage evidence.
func E8(seed int64) (*Table, *E8Result, error) {
	res := &E8Result{}
	tab := &Table{
		ID: "E8", Title: "schema alignment F1 vs number of sources",
		Columns: []string{"sources", "with-linkage", "name+instance"},
	}
	for _, n := range []int{4, 8, 12, 16} {
		w := datagen.NewWorld(datagen.WorldConfig{
			Seed: seed, NumEntities: 40, Categories: []string{"camera"},
		})
		web := datagen.BuildWeb(w, datagen.SourceConfig{
			Seed: seed + int64(n), NumSources: n, DirtLevel: 1,
			IdentifierRate: 0.95, Heterogeneity: 0.6,
			HeadFraction: 0.4, TailCoverage: 0.3,
		})
		d := web.Dataset
		// Identifier-based linkage for the evidence.
		records := d.Records()
		cands := blocking.Standard{Key: blocking.AttrExactKey("pid")}.Candidates(records)
		edges := linkage.MatchPairs(d, cands, linkage.RuleMatcher{Exact: []string{"pid"}}, 4)
		var ids []string
		for _, r := range records {
			ids = append(ids, r.ID)
		}
		clusters := linkage.ConnectedComponents{}.Cluster(ids, edges)

		profiles := schema.Profiler{}.Build(d)
		le := schema.NewLinkageEvidence(d, clusters)
		withLE, err := schema.Aligner{Evidence: le.Blend, Threshold: 0.5}.Align(profiles)
		if err != nil {
			return nil, nil, err
		}
		nameOnly, err := schema.Aligner{Threshold: 0.5}.Align(profiles)
		if err != nil {
			return nil, nil, err
		}
		lf1 := AlignmentF1(web, withLE)
		nf1 := AlignmentF1(web, nameOnly)
		res.Sources = append(res.Sources, n)
		res.LinkageF1 = append(res.LinkageF1, lf1)
		res.NameF1 = append(res.NameF1, nf1)
		tab.Rows = append(tab.Rows, []string{d1(n), f4(lf1), f4(nf1)})
	}
	tab.Notes = "linkage evidence should dominate as sources (and co-linked support) grow"
	return tab, res, nil
}

// E10Result is the structured output of E10.
type E10Result struct {
	Curve     []sourcesel.GainPoint
	Greedy    *sourcesel.Selection
	AllQ      float64
	BestEarly float64
}

// E10 — "less is more": fusion accuracy vs number of sources integrated
// best-first, and the greedy selection's stopping point.
func E10(seed int64) (*Table, *E10Result, error) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 200, NumValues: 3,
		NumSources: 14, MinAccuracy: 0.25, MaxAccuracy: 0.95,
	})
	q := sourcesel.FusionAccuracyQuality(fusion.MajorityVote{})
	order := sourcesel.ByEstimatedAccuracy(cw.TrueAccuracy)
	curve, err := sourcesel.GainCurve(cw.Claims, order, q, nil)
	if err != nil {
		return nil, nil, err
	}
	greedy, err := sourcesel.Greedy{Quality: q}.Select(cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	res := &E10Result{Curve: curve, Greedy: greedy}
	tab := &Table{
		ID: "E10", Title: "less is more: accuracy vs sources integrated (best-first)",
		Columns: []string{"k", "source", "accuracy", "marginal gain"},
	}
	for _, p := range curve {
		tab.Rows = append(tab.Rows, []string{d1(p.K), p.Source, f4(p.Quality), f4(p.Gain)})
		if p.Quality > res.BestEarly {
			res.BestEarly = p.Quality
		}
	}
	res.AllQ = curve[len(curve)-1].Quality
	tab.Notes = fmt.Sprintf(
		"greedy stops at %d of %d sources with accuracy %.4f (all-sources accuracy %.4f)",
		len(greedy.Sources), len(order), greedy.Quality, res.AllQ)
	return tab, res, nil
}
