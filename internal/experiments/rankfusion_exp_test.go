package experiments

import "testing"

// TestE25FusedDominanceShape runs the committed E25 configuration: the
// experiment itself errors unless the fused ordering matches or beats
// every single blocker and the plain union at every budget, the fused
// stream is byte-identical across the workers × shards grid, and the
// spilled stream replays the in-memory order — so a clean return is
// the acceptance check. The shape assertions below pin the table and
// baseline schema BENCH_progressive.json commits.
func TestE25FusedDominanceShape(t *testing.T) {
	tab, res, err := E25(42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical || !res.SpillIdentical {
		t.Fatalf("identity flags = %v/%v, want true/true", res.Identical, res.SpillIdentical)
	}
	if len(res.Budgets) == 0 || len(tab.Rows) != len(res.Budgets) {
		t.Fatalf("table has %d rows for %d budgets", len(tab.Rows), len(res.Budgets))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
		}
	}
	for i := 1; i < len(res.Budgets); i++ {
		if res.Budgets[i] <= res.Budgets[i-1] {
			t.Fatalf("budgets not increasing: %v", res.Budgets)
		}
		if res.Fused[i] < res.Fused[i-1] {
			t.Fatalf("fused recall not monotone: %v", res.Fused)
		}
	}
	if last := res.Fused[len(res.Fused)-1]; last != 1 {
		t.Errorf("full-budget fused recall = %v, want 1 (fused stream covers the union)", last)
	}
	if res.TotalPairs == 0 || res.TruthPairs == 0 || len(res.Names) != 5 {
		t.Fatalf("result underpopulated: %+v", res)
	}
	for _, name := range res.Names {
		if len(res.Singles[name]) != len(res.Budgets) {
			t.Fatalf("single %q curve has %d points for %d budgets",
				name, len(res.Singles[name]), len(res.Budgets))
		}
	}
}
