package experiments

import (
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/extract"
)

// E22Result is the structured output of E22.
type E22Result struct {
	InducedPrecision float64
	InducedRecall    float64
	// StaleRecall[renameFraction] after a redesign renaming that
	// fraction of labels — the wrapper-brittleness curve.
	StaleRecall map[float64]float64
	Fractions   []float64
	// ReinducedRecall after re-induction at the heaviest redesign.
	ReinducedRecall float64
}

// E22 — wrapper induction and the Velocity brittleness the tutorial
// reports (extraction rules break as pages change): induced-wrapper
// quality, recall decay as redesigns rename more labels, and recovery
// by re-induction.
func E22(seed int64) (*Table, *E22Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 50, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 2, DirtLevel: 0,
		HeadFraction: 1, HeadCoverage: 0.9, Heterogeneity: -1,
	})
	recs := web.Dataset.SourceRecords("src-000")
	attrs := recs[0].Attrs()
	tmpl := extract.NewTemplate(seed, attrs)
	pages := make([]extract.Page, len(recs))
	for i, r := range recs {
		pages[i] = tmpl.Render(r)
	}
	wrapper, err := extract.Induce(pages, tmpl.Sep)
	if err != nil {
		return nil, nil, err
	}
	extracted := make([]*data.Record, len(pages))
	for i, p := range pages {
		extracted[i] = wrapper.Extract(p, recs[i].ID, "src-000")
	}
	res := &E22Result{StaleRecall: map[float64]float64{}}
	res.InducedPrecision, res.InducedRecall = extract.ExtractionQuality(tmpl, recs, extracted)

	tab := &Table{
		ID: "E22", Title: "wrapper induction and redesign brittleness",
		Columns: []string{"condition", "precision", "recall"},
	}
	tab.Rows = append(tab.Rows, []string{"induced wrapper", f4(res.InducedPrecision), f4(res.InducedRecall)})

	res.Fractions = []float64{0.2, 0.4, 0.6, 0.8}
	var lastRedesign *extract.Template
	var lastPages []extract.Page
	for _, frac := range res.Fractions {
		// A fixed mutation seed makes the renamed-label sets nested
		// across fractions, so the brittleness curve is monotone.
		redesigned := tmpl.Mutate(seed+999, frac)
		newPages := make([]extract.Page, len(recs))
		for i, r := range recs {
			newPages[i] = redesigned.Render(r)
		}
		stale := make([]*data.Record, len(newPages))
		for i, p := range newPages {
			stale[i] = wrapper.Extract(p, recs[i].ID, "src-000")
		}
		_, rec := extract.ExtractionQuality(redesigned, recs, stale)
		res.StaleRecall[frac] = rec
		tab.Rows = append(tab.Rows, []string{
			"stale wrapper, " + f3(frac) + " labels renamed", "", f4(rec),
		})
		lastRedesign, lastPages = redesigned, newPages
	}

	// Recovery by re-induction at the heaviest redesign.
	w2, err := extract.Induce(lastPages, lastRedesign.Sep)
	if err != nil {
		return nil, nil, err
	}
	reextracted := make([]*data.Record, len(lastPages))
	for i, p := range lastPages {
		reextracted[i] = w2.Extract(p, recs[i].ID, "src-000")
	}
	_, res.ReinducedRecall = extract.ExtractionQuality(lastRedesign, recs, reextracted)
	tab.Rows = append(tab.Rows, []string{"re-induced wrapper", "", f4(res.ReinducedRecall)})
	tab.Notes = "recall decays roughly linearly with the fraction of renamed labels; re-induction restores it"
	return tab, res, nil
}
