package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/serve"
)

// E26Row is one load level of the serving experiment.
type E26Row struct {
	Clients  int
	Requests int
	Errors   int
	P50      time.Duration
	P99      time.Duration
	QPS      float64
}

// E26Result is the structured output of E26.
type E26Result struct {
	Rows []E26Row
	// IdenticalAfterReindex reports whether a search response was
	// byte-identical before and after a background reindex over the
	// same data — the snapshot-swap determinism contract.
	IdenticalAfterReindex bool
}

// E26 — serving latency under concurrency: the integration service
// handles 1/8/64 concurrent clients against one immutable snapshot,
// reporting p50/p99 latency and throughput, then verifies that a
// background reindex over identical data swaps in a snapshot whose
// search responses are byte-identical.
func E26(seed int64) (*Table, *E26Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 60})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 12, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	rep, err := core.New(core.Config{}).Run(web.Dataset)
	if err != nil {
		return nil, nil, err
	}
	snap, err := rep.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	rebuild := func(ctx context.Context) (*core.Snapshot, error) {
		return core.BuildSnapshot(rep)
	}
	srv, err := serve.New(snap, rebuild, serve.Config{})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var queries []string
	for i, e := range snap.Entities() {
		if i%7 == 0 && e.Title != "" {
			queries = append(queries, e.Title)
		}
	}
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("experiments: no entity titles to query")
	}

	res := &E26Result{}
	tab := &Table{
		ID: "E26", Title: "serving latency under concurrent load",
		Columns: []string{"clients", "requests", "errors", "p50", "p99", "qps"},
	}
	for _, clients := range []int{1, 8, 64} {
		lr, err := serve.LoadTest(ts.URL, serve.LoadConfig{
			Clients: clients, Requests: 50, Queries: queries,
		})
		if err != nil {
			return nil, nil, err
		}
		res.Rows = append(res.Rows, E26Row{
			Clients: lr.Clients, Requests: lr.Requests, Errors: lr.Errors,
			P50: lr.P50, P99: lr.P99, QPS: lr.QPS,
		})
		tab.Rows = append(tab.Rows, []string{
			d1(lr.Clients), d1(lr.Requests), d1(lr.Errors),
			lr.P50.String(), lr.P99.String(), f1(lr.QPS),
		})
	}

	// Determinism across a reindex: same data, byte-identical response.
	searchURL := ts.URL + "/search?q=" + url.QueryEscape(queries[0]) + "&limit=20"
	before, err := fetch(searchURL)
	if err != nil {
		return nil, nil, err
	}
	if queued, _ := srv.TryReindex(); !queued {
		return nil, nil, fmt.Errorf("experiments: reindex rejected on an idle queue")
	}
	deadline := time.Now().Add(30 * time.Second)
	for srv.Swaps() == 0 {
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("experiments: reindex never swapped")
		}
		time.Sleep(time.Millisecond)
	}
	after, err := fetch(searchURL)
	if err != nil {
		return nil, nil, err
	}
	res.IdenticalAfterReindex = bytes.Equal(before, after)
	tab.Notes = fmt.Sprintf(
		"lock-free snapshot reads: p99 should stay flat as clients grow; "+
			"search byte-identical across an identical-data reindex: %v",
		res.IdenticalAfterReindex)
	return tab, res, nil
}

func fetch(u string) ([]byte, error) {
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: GET %s: %s", u, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
