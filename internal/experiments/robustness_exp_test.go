package experiments

import "testing"

func TestE23IngestionUnderFaults(t *testing.T) {
	_, res, err := E23(seed)
	if err != nil {
		t.Fatal(err)
	}
	// The fault-free baseline keeps the whole fleet and integrates well.
	if res.Survived[0] != res.Total {
		t.Errorf("fault-free run dropped sources: %d/%d", res.Survived[0], res.Total)
	}
	if res.LinkF1[0] < 0.8 {
		t.Errorf("fault-free linkage F1 = %f, want >= 0.8", res.LinkF1[0])
	}
	// Faulted runs still complete (E23 itself errors otherwise) and the
	// heaviest rate actually exercises the degradation path.
	heaviest := res.Rates[len(res.Rates)-1]
	if res.Survived[heaviest] == res.Total {
		t.Errorf("rate %.2f dropped nothing; the chaos sweep is a no-op", heaviest)
	}
	for _, rate := range res.Rates {
		if res.Survived[rate]+len(res.Dropped[rate]) != res.Total {
			t.Errorf("rate %.2f does not balance: %d ok + %d dropped != %d",
				rate, res.Survived[rate], len(res.Dropped[rate]), res.Total)
		}
		// Linkage over whatever survived stays useful.
		if res.Survived[rate] > 0 && res.LinkF1[rate] < 0.6 {
			t.Errorf("rate %.2f linkage F1 = %f over surviving data", rate, res.LinkF1[rate])
		}
		// Retries show up as extra attempts once faults are on.
		if rate > 0 && res.Attempts[rate] <= res.Total && res.Survived[rate] < res.Total {
			t.Errorf("rate %.2f: %d attempts for %d sources — retry loop never engaged",
				rate, res.Attempts[rate], res.Total)
		}
	}
}
