package experiments

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/obs"
)

// E25Opts parameterises the rank-fusion evaluation. The zero value is
// the committed BENCH_progressive.json configuration.
type E25Opts struct {
	Entities int     // workload entities (default 300)
	Sources  int     // workload sources (default 14)
	Dirt     int     // workload dirt level (default 2)
	RRFK     float64 // RRF constant (0 = default 60)
}

// e25RRFK is the committed operating point for the fusion constant.
// It is deliberately larger than the API default (60): at web scale
// the junk in each stream's head is single-stream junk, so a large k
// flattens within-stream rank differences and lets cross-blocker
// consensus dominate the fused head — a pair found by three blockers
// mid-stream outranks a pair one blocker emitted early.
const e25RRFK = 600

func (o *E25Opts) defaults() {
	if o.Entities <= 0 {
		o.Entities = 300
	}
	if o.Sources <= 0 {
		o.Sources = 14
	}
	if o.Dirt <= 0 {
		o.Dirt = 2
	}
	if o.RRFK <= 0 {
		o.RRFK = e25RRFK
	}
}

// E25Result is the structured output of E25 — the
// BENCH_progressive.json baseline schema.
type E25Result struct {
	RRFK       float64 `json:"rrf_k"`
	TotalPairs int     `json:"total_pairs"` // fused stream length (= union universe)
	TruthPairs int     `json:"truth_pairs"`

	Budgets []int                `json:"budgets"`       // absolute comparison budgets
	Fused   []float64            `json:"fused_recall"`  // RRF-fused ordering
	Union   []float64            `json:"union_recall"`  // plain union, standard emission order
	Singles map[string][]float64 `json:"single_recall"` // each blocker's own ranked stream
	Names   []string             `json:"blockers"`

	// Byte-identity of the fused stream across the engine grid, plus
	// the spilled-vs-in-memory check.
	IdentityWorkers []int `json:"identity_workers"`
	IdentityShards  []int `json:"identity_shards"`
	Identical       bool  `json:"identical"`
	SpillIdentical  bool  `json:"spill_identical"`
}

// e25Blockers is the producer set under evaluation: the five blocker
// families in the pipeline-default shape. The signals are deliberately
// complementary — token, q-gram and phonetic read the noisy title;
// MinHash and sorted-neighborhood also see the manufacturer identifier
// ("pid", present on ~90% of records). No single stream has both the
// precision of identifier equality and the coverage of title
// similarity, which is exactly the regime rank fusion is for.
func e25Blockers() []blocking.RankedBlocker {
	return []blocking.RankedBlocker{
		blocking.RankedKey{Name: "token", Key: blocking.TokenKey("title"), MaxBlock: 200},
		blocking.RankedKey{Name: "qgram", Key: blocking.QGramKey("title", 3), MaxBlock: 200},
		blocking.RankedMinHash{Name: "minhash", MinHash: blocking.MinHashLSH{Attrs: []string{"title", "pid"}}},
		blocking.RankedSortedNeighborhood{
			Name: "sortedneighborhood",
			Keys: []blocking.KeyFunc{blocking.AttrExactKey("pid"), blocking.AttrExactKey("title")},
			Window: 5,
		},
		blocking.RankedKey{Name: "phonetic", Key: blocking.PhoneticKey("title", "soundex"), MaxBlock: 200},
	}
}

// e25Union is the non-progressive baseline: each blocker's candidates
// in its standard emission order, concatenated in producer order and
// deduplicated first-seen — exactly the ordering today's un-fused
// pipeline union feeds the matcher.
func e25Union(records []*data.Record) []data.Pair {
	singles := [][]data.Pair{
		blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(records),
		blocking.Standard{Key: blocking.QGramKey("title", 3), MaxBlock: 200}.Candidates(records),
		blocking.MinHashLSH{Attrs: []string{"title", "pid"}}.Candidates(records),
		blocking.SortedNeighborhood{
			Keys: []blocking.KeyFunc{blocking.AttrExactKey("pid"), blocking.AttrExactKey("title")},
			Window: 5,
		}.Candidates(records),
		blocking.Standard{Key: blocking.PhoneticKey("title", "soundex"), MaxBlock: 200}.Candidates(records),
	}
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for _, ps := range singles {
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// E25 — rank-fused candidate generation: recall-vs-comparisons curves
// for the RRF-fused multi-blocker stream against every single blocker
// (each in its own best progressive order) and the plain union, at
// equal comparison budgets; plus byte-identity of the fused stream
// across workers {1,2,8} × shards {1,4,16} and spilled vs in-memory.
func E25(seed int64) (*Table, *E25Result, error) {
	return E25RankFusion(seed, E25Opts{})
}

// E25RankFusion is E25 with explicit options.
func E25RankFusion(seed int64, o E25Opts) (*Table, *E25Result, error) {
	o.defaults()
	web := dirtyWeb(seed, o.Entities, o.Sources, o.Dirt)
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()
	blockers := e25Blockers()

	// Reference run: produce the ranked streams once, fuse, decode.
	eng := blocking.NewEngine(records, 0)
	streams := make([]blocking.RankedStream, len(blockers))
	for i, b := range blockers {
		streams[i] = b.Ranked(eng)
	}
	fusedSet := eng.FuseStreams(o.RRFK, streams...)
	fused := fusedSet.Pairs()
	wantHash := pairStreamHash(fusedSet)

	res := &E25Result{
		RRFK:       o.RRFK,
		TotalPairs: len(fused),
		TruthPairs: len(truth),
		Singles:    map[string][]float64{},
	}
	for _, f := range []float64{0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0} {
		b := int(f * float64(len(fused)))
		if b < 1 {
			b = 1
		}
		res.Budgets = append(res.Budgets, b)
	}
	res.Fused = blocking.RecallCurve(fused, truth, res.Budgets)
	res.Union = blocking.RecallCurve(e25Union(records), truth, res.Budgets)
	for i := range blockers {
		name := streams[i].Name
		res.Names = append(res.Names, name)
		res.Singles[name] = blocking.RecallCurve(eng.RankedPairs(streams[i]), truth, res.Budgets)
	}

	// Dominance: the fused ordering must match or beat every single
	// blocker and the plain union at every budget. The committed
	// baseline is only valid when this holds, so it is an error here,
	// not just a table note.
	const eps = 1e-12
	for bi := range res.Budgets {
		if res.Fused[bi]+eps < res.Union[bi] {
			return nil, nil, fmt.Errorf("E25: fused recall %.4f < union %.4f at budget %d",
				res.Fused[bi], res.Union[bi], res.Budgets[bi])
		}
		for _, name := range res.Names {
			if res.Fused[bi]+eps < res.Singles[name][bi] {
				return nil, nil, fmt.Errorf("E25: fused recall %.4f < %s %.4f at budget %d",
					res.Fused[bi], name, res.Singles[name][bi], res.Budgets[bi])
			}
		}
	}

	// Byte-identity across the engine grid: the fused stream must be
	// identical for every worker × shard combination.
	res.IdentityWorkers = []int{1, 2, 8}
	res.IdentityShards = []int{1, 4, 16}
	res.Identical = true
	for _, w := range res.IdentityWorkers {
		for _, s := range res.IdentityShards {
			e := blocking.NewEngineOpts(records, blocking.Opts{Workers: w, Shards: s})
			cs := e.FuseRanked(o.RRFK, blockers...)
			if pairStreamHash(cs) != wantHash || cs.Len() != len(fused) {
				return nil, nil, fmt.Errorf("E25: fused stream diverged at workers=%d shards=%d", w, s)
			}
		}
	}

	// Spill identity: a pair-memory budget far below the fused stream
	// forces the disk-backed path; the replayed stream must match too.
	reg := obs.NewRegistry()
	spillEng := blocking.NewEngineOpts(records, blocking.Opts{
		Workers: 2, Shards: 4, PairMemBudget: int64(len(fused)), Obs: reg,
	})
	spillSet := spillEng.FuseRanked(o.RRFK, blockers...)
	if !spillSet.Spilled() {
		return nil, nil, fmt.Errorf("E25: budget %d never spilled the fused stream", len(fused))
	}
	res.SpillIdentical = pairStreamHash(spillSet) == wantHash && spillSet.Len() == len(fused)
	if err := spillSet.Close(); err != nil {
		return nil, nil, fmt.Errorf("E25: close spilled set: %w", err)
	}
	if !res.SpillIdentical {
		return nil, nil, fmt.Errorf("E25: spilled fused stream diverged from the in-memory kernel")
	}

	tab := &Table{
		ID: "E25", Title: "rank fusion: truth-pair recall vs comparison budget",
		Columns: []string{"budget", "of total", "fused", "union", "token", "qgram", "minhash", "sortedngh", "phonetic"},
	}
	for bi, b := range res.Budgets {
		tab.Rows = append(tab.Rows, []string{
			d1(b), f3(float64(b) / float64(res.TotalPairs)),
			f4(res.Fused[bi]), f4(res.Union[bi]),
			f4(res.Singles["token"][bi]), f4(res.Singles["qgram"][bi]),
			f4(res.Singles["minhash"][bi]), f4(res.Singles["sortedneighborhood"][bi]),
			f4(res.Singles["phonetic"][bi]),
		})
	}
	tab.Notes = fmt.Sprintf(
		"RRF k=%.0f over %d blockers; fused ≥ every single blocker and the plain union at every budget; fused stream byte-identical for workers %v × shards %v and spilled vs in-memory",
		o.RRFK, len(blockers), res.IdentityWorkers, res.IdentityShards)
	return tab, res, nil
}
