package experiments

import "testing"

func TestE21Discovery(t *testing.T) {
	_, res, err := E21(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recall) == 0 {
		t.Fatal("no iterations")
	}
	final := len(res.Recall) - 1
	if res.Recall[final] < 0.8 {
		t.Errorf("final discovery recall = %f", res.Recall[final])
	}
	if res.Precision[final] < 0.95 {
		t.Errorf("final discovery precision = %f", res.Precision[final])
	}
	// Recall non-decreasing.
	for i := 1; i < len(res.Recall); i++ {
		if res.Recall[i] < res.Recall[i-1] {
			t.Error("recall must not decrease")
		}
	}
	// The ablation demonstrates the filter's value.
	if res.LooseNoiseAdmitted == 0 {
		t.Error("filterless crawler should admit noise (ablation inert otherwise)")
	}
	// Discovered corpus integrates well.
	if res.HandoffLinkageF1 < 0.7 {
		t.Errorf("hand-off linkage F1 = %f", res.HandoffLinkageF1)
	}
}
