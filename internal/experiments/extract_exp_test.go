package experiments

import "testing"

func TestE22WrapperBrittleness(t *testing.T) {
	_, res, err := E22(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.InducedPrecision < 0.95 || res.InducedRecall < 0.95 {
		t.Errorf("induced wrapper P=%f R=%f", res.InducedPrecision, res.InducedRecall)
	}
	// Recall decays monotonically with the renamed fraction.
	prev := res.InducedRecall
	for _, frac := range res.Fractions {
		cur := res.StaleRecall[frac]
		if cur > prev+1e-9 {
			t.Errorf("brittleness curve not monotone at %f: %f > %f", frac, cur, prev)
		}
		prev = cur
	}
	// The heaviest redesign breaks most extraction.
	if res.StaleRecall[res.Fractions[len(res.Fractions)-1]] > 0.5 {
		t.Errorf("heavy redesign recall = %f, want < 0.5", res.StaleRecall[0.8])
	}
	// Re-induction recovers.
	if res.ReinducedRecall < 0.95 {
		t.Errorf("re-induced recall = %f", res.ReinducedRecall)
	}
}
