package experiments

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discovery"
	"repro/internal/eval"
)

// E21Result is the structured output of E21.
type E21Result struct {
	// Per-iteration cumulative recall/precision of the standard crawler.
	Recall    []float64
	Precision []float64
	// LooseNoiseAdmitted counts noise sites the filterless crawler lets
	// in (the ablation).
	LooseNoiseAdmitted int
	// HandoffLinkageF1 is the pipeline's linkage quality over the
	// discovered dataset — discovery feeding integration end-to-end.
	HandoffLinkageF1 float64
}

// E21 — source discovery by identifier redundancy: recall/precision of
// the focused crawl per iteration, the redundancy-filter ablation, and
// the hand-off of the discovered corpus into the integration pipeline.
func E21(seed int64) (*Table, *E21Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 80, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 16, DirtLevel: 1,
		IdentifierRate: 1.0, HeadFraction: 0.3, TailCoverage: 0.25,
	})
	sw := discovery.BuildSimWeb(web, discovery.SimWebConfig{Seed: seed + 2, NumNoiseSites: 16, NoiseMentions: 3})

	c := discovery.NewCrawler(sw)
	res := &E21Result{}
	run, err := c.Run([]string{"src-000"})
	if err != nil {
		return nil, nil, err
	}
	tab := &Table{
		ID: "E21", Title: "source discovery by identifier redundancy",
		Columns: []string{"iteration", "new sites", "known ids", "cum precision", "cum recall"},
	}
	for _, st := range run.Iterations {
		res.Recall = append(res.Recall, st.CumRecall)
		res.Precision = append(res.Precision, st.CumPrecision)
		tab.Rows = append(tab.Rows, []string{
			d1(st.Iteration), d1(len(st.Discovered)), d1(st.KnownIDs),
			f4(st.CumPrecision), f4(st.CumRecall),
		})
	}

	// Ablation: no redundancy filter, no page check.
	loose := discovery.NewCrawler(sw)
	loose.MinSharedIDs = 1
	loose.RequirePages = false
	runLoose, err := loose.Run([]string{"src-000"})
	if err != nil {
		return nil, nil, err
	}
	for _, s := range runLoose.Admitted {
		if !sw.Sites[s].IsProduct {
			res.LooseNoiseAdmitted++
		}
	}

	// Hand-off: integrate the discovered corpus.
	d, err := c.Dataset(run)
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.New(core.Config{}).Run(d)
	if err != nil {
		return nil, nil, err
	}
	res.HandoffLinkageF1 = eval.Clusters(rep.Clusters, d.GroundTruthClusters()).F1
	tab.Rows = append(tab.Rows,
		[]string{"(ablation)", "no-filter noise admitted", d1(res.LooseNoiseAdmitted), "", ""},
		[]string{"(hand-off)", "pipeline linkage F1", f4(res.HandoffLinkageF1), "", ""},
	)
	tab.Notes = "redundancy filtering keeps precision ~1 while recall climbs; the filterless ablation admits noise sites"
	return tab, res, nil
}
