// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E24), each generating its
// workload, running the systems under test and returning a printable
// table plus structured results that the test suite asserts shape
// properties on. cmd/bdibench and the root-level benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d1(x int) string     { return fmt.Sprintf("%d", x) }

// fuserAccuracy runs a fuser over a claim set and returns truth-sample
// accuracy.
func fuserAccuracy(f fusion.Fuser, cs *data.ClaimSet) (float64, error) {
	res, err := f.Fuse(cs)
	if err != nil {
		return 0, err
	}
	acc, n := eval.FusionAccuracy(res.Values, cs)
	if n == 0 {
		return 0, fmt.Errorf("experiments: claim set has no truth sample")
	}
	return acc, nil
}

// standardFusers is the method line-up for fusion experiments.
func standardFusers() []fusion.Fuser {
	return []fusion.Fuser{
		fusion.MajorityVote{},
		fusion.TruthFinder{},
		fusion.ACCU{},
		fusion.ACCU{Popularity: true},
		fusion.ACCUCOPY{},
	}
}

// E1Result is the structured output of E1.
type E1Result struct {
	// Accuracy[copierFraction][fuserName] = truth-sample accuracy.
	Accuracy map[float64]map[string]float64
	Fracs    []float64
}

// E1 — fusion accuracy under copying: Vote vs TruthFinder vs ACCU vs
// POPACCU vs ACCUCOPY as the copier population grows (shape of Dong et
// al. VLDB'09).
func E1(seed int64) (*Table, *E1Result, error) {
	fracs := []float64{0, 0.25, 0.5, 0.75, 1.0} // copiers per independent source
	res := &E1Result{Accuracy: map[float64]map[string]float64{}, Fracs: fracs}
	const nIndep = 8
	tab := &Table{
		ID:      "E1",
		Title:   "fusion accuracy vs copier population",
		Columns: []string{"copiers/indep"},
	}
	for _, f := range standardFusers() {
		tab.Columns = append(tab.Columns, f.Name())
	}
	for _, frac := range fracs {
		cw := datagen.BuildClaims(datagen.ClaimConfig{
			Seed: seed + int64(frac*100), NumItems: 200, NumValues: 8,
			NumSources: nIndep, MinAccuracy: 0.55, MaxAccuracy: 0.9,
			NumCopiers: int(frac * nIndep), CopyRate: 0.95, CopierSpread: 1,
		})
		row := []string{f3(frac)}
		res.Accuracy[frac] = map[string]float64{}
		for _, f := range standardFusers() {
			acc, err := fuserAccuracy(f, cw.Claims)
			if err != nil {
				return nil, nil, err
			}
			res.Accuracy[frac][f.Name()] = acc
			row = append(row, f3(acc))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = "copy-aware fusion should hold accuracy as copiers grow; naive voting should degrade"
	return tab, res, nil
}

// E2Result is the structured output of E2. FuseSeq/FusePar time the
// full ACCU EM on one worker vs the default pool (same byte-identical
// result either way).
type E2Result struct {
	Iteration []int
	Accuracy  []float64
	MAE       []float64 // source-accuracy mean absolute error per iter

	FuseSeq     time.Duration
	FusePar     time.Duration
	FuseSpeedup float64
}

// E2 — ACCU EM convergence: accuracy and source-accuracy error per
// iteration, plus sequential-vs-parallel timing of the fusion engine.
func E2(seed int64) (*Table, *E2Result, error) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 250, NumValues: 5,
		NumSources: 12, MinAccuracy: 0.4, MaxAccuracy: 0.95,
	})
	trace, err := fusion.ACCU{}.FuseTrace(cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	res := &E2Result{}
	res.FuseSeq, res.FusePar, res.FuseSpeedup, err = timeFuse(fusion.ACCU{Workers: 1}, fusion.ACCU{}, cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	tab := &Table{
		ID: "E2", Title: "ACCU convergence over EM iterations",
		Columns: []string{"iter", "accuracy", "src-acc MAE"},
	}
	for i, step := range trace {
		acc, _ := eval.FusionAccuracy(step.Values, cw.Claims)
		var mae float64
		n := 0
		for s, trueAcc := range cw.TrueAccuracy {
			if est, ok := step.SourceAccuracy[s]; ok {
				mae += abs(est - trueAcc)
				n++
			}
		}
		if n > 0 {
			mae /= float64(n)
		}
		res.Iteration = append(res.Iteration, i+1)
		res.Accuracy = append(res.Accuracy, acc)
		res.MAE = append(res.MAE, mae)
		tab.Rows = append(tab.Rows, []string{d1(i + 1), f4(acc), f4(mae)})
	}
	tab.Notes = fmt.Sprintf(
		"accuracy should be non-decreasing and converge within ~10 iterations; "+
			"fuse time %v (1 worker) vs %v (parallel engine), %.2fx",
		res.FuseSeq, res.FusePar, res.FuseSpeedup)
	return tab, res, nil
}

// timeFuse times a sequential and a parallel configuration of the same
// fuser on the same claims (best of 3 runs each) and returns both
// durations plus the speedup.
func timeFuse(seq, par fusion.Fuser, cs *data.ClaimSet) (ts, tp time.Duration, speedup float64, err error) {
	best := func(f fusion.Fuser) (time.Duration, error) {
		var b time.Duration
		for r := 0; r < 3; r++ {
			start := time.Now()
			if _, ferr := f.Fuse(cs); ferr != nil {
				return 0, ferr
			}
			if el := time.Since(start); r == 0 || el < b {
				b = el
			}
		}
		return b, nil
	}
	if ts, err = best(seq); err != nil {
		return
	}
	if tp, err = best(par); err != nil {
		return
	}
	if tp > 0 {
		speedup = float64(ts) / float64(tp)
	}
	return
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
