package experiments

import (
	"time"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/linkage"
	"repro/internal/similarity"
)

// dirtyWeb builds the blocking/linkage workload: a single-category web
// with duplicate-rich sources and configurable dirt.
func dirtyWeb(seed int64, entities, sources, dirt int) *datagen.Web {
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: seed, NumEntities: entities, Categories: []string{"camera"},
	})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: sources, DirtLevel: dirt,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
}

// E3Result is the structured output of E3.
type E3Result struct {
	// Quality[method] holds the blocking quality metrics.
	Quality map[string]eval.BlockingQuality
	Methods []string
	// Candidate-generation throughput (candidates/sec) per method on a
	// scaled-up corpus, with the engine pinned to one worker vs all
	// cores. The candidate sets are byte-identical; only wall-clock
	// differs.
	SeqThroughput map[string]float64
	ParThroughput map[string]float64
}

// E3 — blocking method trade-off: pair completeness vs reduction ratio
// for the classic blocking family, plus sequential vs parallel
// candidate-generation throughput of the interned engine.
func E3(seed int64) (*Table, *E3Result, error) {
	web := dirtyWeb(seed, 80, 12, 2)
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()
	n := len(records)

	title := func(kf blocking.KeyFunc, workers int) blocking.Blocker {
		return blocking.Standard{Key: kf, MaxBlock: 200, Workers: workers}
	}
	sn := func(window, workers int) blocking.Blocker {
		return blocking.SortedNeighborhood{
			Keys: []blocking.KeyFunc{blocking.AttrExactKey("title")}, Window: window, Workers: workers,
		}
	}
	methods := []struct {
		name string
		b    func(workers int) blocking.Blocker
	}{
		{"exact(title)", func(w int) blocking.Blocker { return title(blocking.AttrExactKey("title"), w) }},
		{"prefix3(title)", func(w int) blocking.Blocker { return title(blocking.AttrPrefixKey("title", 3), w) }},
		{"prefix5(title)", func(w int) blocking.Blocker { return title(blocking.AttrPrefixKey("title", 5), w) }},
		{"token(title)", func(w int) blocking.Blocker { return title(blocking.TokenKey("title"), w) }},
		{"qgram3(title)", func(w int) blocking.Blocker { return title(blocking.QGramKey("title", 3), w) }},
		{"sn(w=3)", func(w int) blocking.Blocker { return sn(3, w) }},
		{"sn(w=5)", func(w int) blocking.Blocker { return sn(5, w) }},
		{"sn(w=9)", func(w int) blocking.Blocker { return sn(9, w) }},
	}
	res := &E3Result{
		Quality:       map[string]eval.BlockingQuality{},
		SeqThroughput: map[string]float64{},
		ParThroughput: map[string]float64{},
	}
	tab := &Table{
		ID: "E3", Title: "blocking: reduction ratio vs pair completeness",
		Columns: []string{"method", "candidates", "RR", "PC", "PQ", "seq cands/s", "par cands/s"},
	}
	// Quality is measured on the small corpus above; throughput on a
	// scaled-up one, where sharded block building and parallel dedup
	// have something to chew on.
	big := dirtyWeb(seed+5, 500, 20, 1).Dataset.Records()
	const reps = 3
	throughput := func(b blocking.Blocker) float64 {
		start := time.Now()
		c := 0
		for r := 0; r < reps; r++ {
			c = len(b.Candidates(big))
		}
		el := time.Since(start) / reps
		if el <= 0 {
			return 0
		}
		return float64(c) / el.Seconds()
	}
	for _, m := range methods {
		cands := m.b(1).Candidates(records)
		q := eval.Blocking(cands, truth, n)
		res.Quality[m.name] = q
		res.Methods = append(res.Methods, m.name)
		seqT := throughput(m.b(1))
		parT := throughput(m.b(0)) // 0 = NumCPU
		res.SeqThroughput[m.name] = seqT
		res.ParThroughput[m.name] = parT
		tab.Rows = append(tab.Rows, []string{
			m.name, d1(q.Candidates), f4(q.ReductionRatio), f4(q.PairCompleteness), f4(q.PairQuality),
			f1(seqT), f1(parT),
		})
	}
	tab.Notes = "token/q-gram blocking trade RR for PC; wider SN windows raise PC and lower RR; throughput columns (measured on a 500-entity corpus) compare the interned engine at 1 worker vs all cores on identical output"
	return tab, res, nil
}

// E4Result is the structured output of E4.
type E4Result struct {
	BaselineComparisons int
	BaselinePC          float64
	// Rows[scheme+prune] = (comparisons, PC).
	Meta map[string]eval.BlockingQuality
}

// E4 — meta-blocking vs raw token blocking: comparisons cut at small
// pair-completeness loss (shape of Papadakis et al.).
func E4(seed int64) (*Table, *E4Result, error) {
	web := dirtyWeb(seed, 80, 12, 2)
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()
	n := len(records)

	blocks := blocking.BuildBlocks(records, blocking.TokenKey("title"))
	base := eval.Blocking(blocks.Pairs(), truth, n)
	res := &E4Result{
		BaselineComparisons: blocks.Comparisons(),
		BaselinePC:          base.PairCompleteness,
		Meta:                map[string]eval.BlockingQuality{},
	}
	tab := &Table{
		ID: "E4", Title: "meta-blocking vs token blocking",
		Columns: []string{"config", "candidates", "PC", "PQ"},
	}
	tab.Rows = append(tab.Rows, []string{
		"token-blocking", d1(base.Candidates), f4(base.PairCompleteness), f4(base.PairQuality),
	})
	weights := map[string]blocking.WeightScheme{"cbs": blocking.CBS, "ecbs": blocking.ECBS, "js": blocking.JS}
	prunes := map[string]blocking.PruneScheme{"wep": blocking.WEP, "cep": blocking.CEP, "wnp": blocking.WNP}
	for _, wn := range []string{"cbs", "ecbs", "js"} {
		for _, pn := range []string{"wep", "cep", "wnp"} {
			mb := blocking.MetaBlocker{Weight: weights[wn], Prune: prunes[pn]}
			q := eval.Blocking(mb.Candidates(blocks), truth, n)
			key := wn + "+" + pn
			res.Meta[key] = q
			tab.Rows = append(tab.Rows, []string{key, d1(q.Candidates), f4(q.PairCompleteness), f4(q.PairQuality)})
		}
	}
	tab.Notes = "meta-blocking should cut candidates sharply while keeping most pair completeness"
	return tab, res, nil
}

// E5Result is the structured output of E5.
type E5Result struct {
	// F1[dirt][matcher] over dirt levels 1..3.
	F1 map[int]map[string]float64
}

// E5 — matcher quality across dirtiness: identifier rule vs similarity
// threshold vs unsupervised Fellegi-Sunter.
func E5(seed int64) (*Table, *E5Result, error) {
	res := &E5Result{F1: map[int]map[string]float64{}}
	tab := &Table{
		ID: "E5", Title: "matcher F1 across dirt levels",
		Columns: []string{"dirt", "rule(id)", "threshold", "fellegi-sunter"},
	}
	for dirt := 1; dirt <= 3; dirt++ {
		web := dirtyWeb(seed+int64(dirt)*37, 60, 10, dirt)
		d := web.Dataset
		records := d.Records()
		truth := d.GroundTruthClusters().Pairs()
		cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(records)
		cands = append(cands, blocking.Standard{Key: blocking.AttrExactKey("pid")}.Candidates(records)...)

		cmp := similarity.NewRecordComparator(
			similarity.FieldWeight{Attr: "title", Weight: 2, Metric: similarity.Jaccard},
			similarity.FieldWeight{Attr: "camera_brand", Weight: 1},
			similarity.FieldWeight{Attr: "camera_color", Weight: 1},
			similarity.FieldWeight{Attr: "camera_weight_g", Weight: 1},
			similarity.FieldWeight{Attr: "camera_price_usd", Weight: 1},
		)
		fs := linkage.NewFellegiSunter(cmp)
		fs.AgreeAt = 0.7
		fs.Threshold = 0.8
		if err := fs.Train(d, cands, 15); err != nil {
			return nil, nil, err
		}
		matchers := []struct {
			name string
			m    linkage.Matcher
		}{
			{"rule(id)", linkage.RuleMatcher{Exact: []string{"pid"}}},
			{"threshold", linkage.ThresholdMatcher{Comparator: cmp, Threshold: 0.65}},
			{"fellegi-sunter", fs},
		}
		res.F1[dirt] = map[string]float64{}
		row := []string{d1(dirt)}
		for _, m := range matchers {
			matched := linkage.MatchPairs(d, cands, m.m, 4)
			var pred []data.Pair
			for _, sp := range matched {
				pred = append(pred, sp.Pair)
			}
			prf := eval.Pairs(pred, truth)
			res.F1[dirt][m.name] = prf.F1
			row = append(row, f3(prf.F1))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = "all matchers degrade with dirt; the identifier rule is most robust when ids are published"
	return tab, res, nil
}

// E9Result is the structured output of E9. Throughput is the cached
// (feature-index) path; UncachedThroughput re-tokenises per pair.
type E9Result struct {
	Workers            []int
	Throughput         []float64 // matched pairs per second, cached
	Elapsed            []time.Duration
	UncachedThroughput []float64
	Speedup            []float64 // cached / uncached
}

// E9 — scale-out: pairwise matching throughput vs worker count, with
// and without the per-record feature cache.
func E9(seed int64) (*Table, *E9Result, error) {
	web := dirtyWeb(seed, 300, 20, 1)
	d := web.Dataset
	records := d.Records()
	cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 400}.Candidates(records)
	matcher := func() linkage.ThresholdMatcher {
		return linkage.ThresholdMatcher{
			Comparator: similarity.UniformComparator(similarity.Jaccard, "title"),
			Threshold:  0.6,
		}
	}
	const reps = 5
	run := func(m linkage.Matcher, w int) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			linkage.MatchPairs(d, cands, m, w)
		}
		return time.Since(start) / reps
	}
	res := &E9Result{}
	tab := &Table{
		ID: "E9", Title: "matching throughput vs workers (cached vs uncached)",
		Columns: []string{"workers", "candidates", "elapsed", "pairs/sec", "uncached pairs/sec", "speedup"},
	}
	for _, w := range []int{1, 2, 4, 8} {
		// The comparator must be fresh per variant: NoIndex only skips
		// index preparation, an already-attached index would still be used.
		el := run(matcher(), w)
		elU := run(linkage.NoIndex(matcher()), w)
		tput := float64(len(cands)) / el.Seconds()
		tputU := float64(len(cands)) / elU.Seconds()
		res.Workers = append(res.Workers, w)
		res.Elapsed = append(res.Elapsed, el)
		res.Throughput = append(res.Throughput, tput)
		res.UncachedThroughput = append(res.UncachedThroughput, tputU)
		res.Speedup = append(res.Speedup, tput/tputU)
		tab.Rows = append(tab.Rows, []string{
			d1(w), d1(len(cands)), el.String(), f3(tput), f3(tputU), f3(tput / tputU) + "x",
		})
	}
	tab.Notes = "feature cache tokenises each record once per batch instead of once per pair; throughput should also rise with workers until cores saturate"
	return tab, res, nil
}
