package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/similarity"
	"repro/internal/source"
)

// E27Result is the structured output of E27.
type E27Result struct {
	Checkpoints  []int           // corpus size after each epoch
	StreamPerRec []time.Duration // per-record cost of the stream path at that epoch
	BatchPerRec  []time.Duration // per-record cost of a full batch rebuild at that size
	// Cumulative wall-clock over the whole stream: the streaming velocity
	// path (incremental linkage + online fusion + snapshot publish every
	// epoch) vs redoing the batch path (relink + refuse + rebuild) at
	// every checkpoint.
	CumulativeStream time.Duration
	CumulativeBatch  time.Duration
	Publishes        int64
	FinalF1          float64
	// ResumeIdentical reports whether a second stream, killed mid-run and
	// restored from its persisted state, finished with observables
	// byte-identical to the uninterrupted run — the snapshot/restore
	// contract under the epoch-driven publish cadence.
	ResumeIdentical bool
}

// E27 — streaming vs batch-relink integration cost: the full velocity
// path (epoch stream → incremental linkage → online fusion → snapshot
// publish) against E7's baseline of re-running the batch path at every
// checkpoint. The stream's cumulative cost grows linearly with the
// stream; the batch baseline redoes all prior work at each checkpoint
// and grows quadratically. The run also exercises snapshot/restore:
// a crashed-and-resumed stream must reproduce the uninterrupted run's
// output byte for byte.
func E27(seed int64) (*Table, *E27Result, error) {
	web := dirtyWeb(seed, 500, 20, 1)
	d := web.Dataset
	fleet := source.FromDataset(d)
	totals := source.Totals(d)
	metas := map[string]*data.Source{}
	for _, s := range d.Sources() {
		metas[s.ID] = s
	}

	// Publish every epoch so both sides pay fusion + snapshot cost at
	// every checkpoint — the comparison is path shape, not cadence.
	// 0.72 is E7's calibration for this dirt profile: above the
	// Jaccard of same-brand-same-series titles of different entities,
	// below true duplicates with one perturbed token.
	cfg := core.StreamConfig{EpochSize: 5, PublishEvery: 1, Workers: 4, MatchThreshold: 0.72}
	st, err := core.NewStream(cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	// The batch side replays the stream matcher exactly (identifier
	// short-circuit, then weighted Jaccard on title at the same
	// threshold) so both paths make the same match decisions and differ
	// only in how much work they redo.
	matcher := linkage.RuleMatcher{
		Exact:      []string{"pid"},
		Comparator: similarity.NewRecordComparator(similarity.FieldWeight{Attr: "title", Weight: 2, Metric: similarity.Jaccard}),
		Threshold:  cfg.MatchThreshold,
	}

	res := &E27Result{}
	tab := &Table{
		ID: "E27", Title: "streaming vs batch-relink integration cost per epoch",
		Columns: []string{"corpus", "stream/rec", "batch/rec", "stream cmp"},
	}

	str, err := source.NewStreamer(context.Background(), fleet, source.StreamConfig{
		EpochSize: cfg.EpochSize, Totals: totals,
	})
	if err != nil {
		return nil, nil, err
	}
	defer str.Close()

	for ep := range str.C {
		n := len(ep.Records)
		if n == 0 {
			continue
		}
		// Stream side: fold the epoch in, republish the view.
		t0 := time.Now()
		if err := st.ApplyEpoch(metas, ep); err != nil {
			return nil, nil, err
		}
		if _, err := st.Publish(context.Background()); err != nil {
			return nil, nil, err
		}
		streamElapsed := time.Since(t0)
		res.CumulativeStream += streamElapsed

		// Batch side: redo blocking, matching, clustering, claims,
		// fusion and the snapshot over everything seen so far.
		seen := st.Dataset().Records()
		t0 = time.Now()
		cands := blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}.Candidates(seen)
		edges := linkage.MatchPairs(st.Dataset(), cands, matcher, 4)
		ids := make([]string, 0, len(seen))
		for _, r := range seen {
			ids = append(ids, r.ID)
		}
		clusters := linkage.ConnectedComponents{}.Cluster(ids, edges)
		attrs := make([]string, 0, 8)
		for _, ac := range st.Dataset().Attributes() {
			attrs = append(attrs, ac.Attr)
		}
		sort.Strings(attrs)
		claims := data.ClaimsFromClusters(st.Dataset(), clusters, attrs)
		fus, err := fusion.MajorityVote{}.Fuse(claims)
		if err != nil {
			return nil, nil, err
		}
		if _, err := core.BuildSnapshot(&core.Report{Normalized: st.Dataset(), Clusters: clusters, Fusion: fus}); err != nil {
			return nil, nil, err
		}
		batchElapsed := time.Since(t0)
		res.CumulativeBatch += batchElapsed

		corpus := int(st.Ingested())
		res.Checkpoints = append(res.Checkpoints, corpus)
		res.StreamPerRec = append(res.StreamPerRec, streamElapsed/time.Duration(n))
		res.BatchPerRec = append(res.BatchPerRec, batchElapsed/time.Duration(corpus))
		tab.Rows = append(tab.Rows, []string{
			d1(corpus),
			(streamElapsed / time.Duration(n)).String(),
			(batchElapsed / time.Duration(corpus)).String(),
			d1(st.Comparisons()),
		})
	}
	if err := str.Err(); err != nil {
		return nil, nil, err
	}
	res.Publishes = st.Publishes()
	res.FinalF1 = eval.Clusters(st.Clusters(), d.GroundTruthClusters()).F1

	identical, err := e27ResumeIdentical(cfg, d, fleet, totals, metas, st)
	if err != nil {
		return nil, nil, err
	}
	res.ResumeIdentical = identical

	tab.Notes = fmt.Sprintf(
		"whole stream: streaming %s vs batch-relink-at-every-checkpoint %s; final stream F1 = %.3f; crash/resume byte-identical = %v",
		res.CumulativeStream, res.CumulativeBatch, res.FinalF1, res.ResumeIdentical)
	return tab, res, nil
}

// e27ResumeIdentical replays the stream with persistence enabled, kills
// it at the midpoint, restores from the state file and finishes — then
// compares every observable against the uninterrupted run.
func e27ResumeIdentical(cfg core.StreamConfig, d *data.Dataset, fleet []source.Source,
	totals map[string]int, metas map[string]*data.Source, base *core.Stream) (bool, error) {
	dir, err := os.MkdirTemp("", "e27-state-")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "stream.state")

	pcfg := cfg
	pcfg.StatePath = path
	crashed, err := core.NewStream(pcfg, nil)
	if err != nil {
		return false, err
	}
	str, err := source.NewStreamer(context.Background(), fleet, source.StreamConfig{
		EpochSize: pcfg.EpochSize, Totals: totals,
	})
	if err != nil {
		return false, err
	}
	defer str.Close()
	crashAt := base.Epoch() / 2
	for ep := range str.C {
		if ep.Seq == crashAt {
			break // killed between save points; the state file holds epoch crashAt
		}
		if err := crashed.ApplyEpoch(metas, ep); err != nil {
			return false, err
		}
		if _, err := crashed.Publish(context.Background()); err != nil {
			return false, err
		}
		if err := crashed.Save(path); err != nil {
			return false, err
		}
	}

	resumed, err := core.LoadStream(path, pcfg, nil)
	if err != nil {
		return false, err
	}
	if err := resumed.Run(context.Background(), fleet, totals); err != nil {
		return false, err
	}
	a, err := e27Fingerprint(base)
	if err != nil {
		return false, err
	}
	b, err := e27Fingerprint(resumed)
	if err != nil {
		return false, err
	}
	return a == b, nil
}

// e27Fingerprint renders every output-relevant stream observable as one
// string, through exported API only.
func e27Fingerprint(st *core.Stream) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d ingested=%d publishes=%d comparisons=%d\n",
		st.Epoch(), st.Ingested(), st.Publishes(), st.Comparisons())
	fmt.Fprintf(&b, "clusters=%v\n", st.Clusters())
	cursors := st.Cursors()
	ids := make([]string, 0, len(cursors))
	for id := range cursors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "cursor %s=%d\n", id, cursors[id])
	}
	acc := st.Accuracy()
	ids = ids[:0]
	for id := range acc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "acc %s=%.17g\n", id, acc[id])
	}
	snap, err := st.Rebuild(context.Background())
	if err != nil {
		return "", err
	}
	for _, e := range snap.Entities() {
		fmt.Fprintf(&b, "entity %s title=%q records=%v sources=%v\n", e.ID, e.Title, e.Records, e.Sources)
		attrs := make([]string, 0, len(e.Values))
		for a := range e.Values {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			fmt.Fprintf(&b, "  %s=%s conf=%.17g\n", a, e.Values[a].Key(), e.Confidence[a])
		}
	}
	return b.String(), nil
}
