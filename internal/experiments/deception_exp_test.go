package experiments

import "testing"

func TestE19Deception(t *testing.T) {
	_, res, err := E19(seed)
	if err != nil {
		t.Fatal(err)
	}
	clean := res.Accuracy[0]
	heavy := res.Accuracy[res.Liars[len(res.Liars)-1]]
	// With no liars everything works.
	for name, acc := range clean {
		if acc < 0.9 {
			t.Errorf("clean regime: %s accuracy = %f", name, acc)
		}
	}
	// Voting collapses under a majority campaign.
	if heavy["vote"] > 0.5 {
		t.Errorf("vote under majority deception = %f, expected collapse", heavy["vote"])
	}
	// Accuracy-aware fusion without copy detection collapses at least
	// as hard (the corrupted-consensus amplification).
	if heavy["accu"] > heavy["vote"]+0.05 {
		t.Errorf("plain accu (%f) should not resist what vote (%f) cannot", heavy["accu"], heavy["vote"])
	}
	// Copy-aware fusion holds.
	if heavy["accucopy"] < 0.9 {
		t.Errorf("accucopy under deception = %f, want >= 0.9", heavy["accucopy"])
	}
	// Middle regime (minority campaign): accu beats vote by inverting
	// the liars' testimony.
	mid := res.Accuracy[4]
	if mid["accu"] <= mid["vote"] {
		t.Errorf("minority campaign: accu (%f) must beat vote (%f)", mid["accu"], mid["vote"])
	}
}
