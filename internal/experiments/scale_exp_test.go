package experiments

import "testing"

func TestE24ScaleShape(t *testing.T) {
	tab, res, err := E24Scale(seed, E24Opts{
		Sizes: []int{10_000}, Workers: []int{1, 2}, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("got %d/%d rows, want 2", len(res.Rows), len(tab.Rows))
	}
	for _, row := range res.Rows {
		if !row.Identical {
			t.Fatalf("row %+v: budgeted stream not identical", row)
		}
		if row.SpillRuns == 0 || row.Merges == 0 {
			t.Fatalf("row %+v: spill/merge counters empty", row)
		}
		// The acceptance criterion: the budget is ≤ 25% of the
		// unsharded pair-memory peak.
		if row.BudgetBytes > row.UnshardedPeakBytes/4 {
			t.Fatalf("budget %d exceeds 25%% of unsharded peak %d", row.BudgetBytes, row.UnshardedPeakBytes)
		}
		if row.PeakHeapBytes <= 0 {
			t.Fatalf("row %+v: no heap sample", row)
		}
		if row.Pairs <= 0 || row.RawPairs < row.Pairs {
			t.Fatalf("row %+v: implausible pair counts", row)
		}
	}
	// Both worker counts generated the same candidates.
	if res.Rows[0].Pairs != res.Rows[1].Pairs {
		t.Fatalf("worker counts disagree on pair count: %d vs %d", res.Rows[0].Pairs, res.Rows[1].Pairs)
	}
}
