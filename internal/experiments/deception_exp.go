package experiments

import (
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
)

// E19Result is the structured output of E19.
type E19Result struct {
	// Accuracy[numLiars][fuser].
	Accuracy map[int]map[string]float64
	Liars    []int
	// LearnedLiarWeightNegative reports whether ACCU assigned the liars
	// sub-random accuracy at the heaviest setting (the inversion that
	// lets it use lies as evidence).
	LearnedLiarAccuracy float64
}

// E19 — deceit (the Veracity dimension's adversarial face): a
// coordinated misinformation campaign pushes one fixed falsehood per
// item. Voting degrades with campaign size; accuracy-aware fusion
// learns the liars' sub-random accuracy and *inverts* their testimony;
// copy-aware fusion additionally discounts the campaign's internal
// agreement.
func E19(seed int64) (*Table, *E19Result, error) {
	fusers := []fusion.Fuser{fusion.MajorityVote{}, fusion.TruthFinder{}, fusion.ACCU{}, fusion.ACCUCOPY{}}
	res := &E19Result{Accuracy: map[int]map[string]float64{}}
	tab := &Table{
		ID:      "E19",
		Title:   "fusion under coordinated deception",
		Columns: []string{"liars (vs 6 honest)"},
	}
	for _, f := range fusers {
		tab.Columns = append(tab.Columns, f.Name())
	}
	liarCounts := []int{0, 2, 4, 6, 8}
	res.Liars = liarCounts
	for _, liars := range liarCounts {
		cw := datagen.BuildClaims(datagen.ClaimConfig{
			Seed: seed + int64(liars)*13, NumItems: 200, NumValues: 8,
			NumSources: 6, MinAccuracy: 0.7, MaxAccuracy: 0.95,
			NumDeceptive: liars, DeceptionRate: 0.95,
		})
		row := []string{d1(liars)}
		res.Accuracy[liars] = map[string]float64{}
		for _, f := range fusers {
			r, err := f.Fuse(cw.Claims)
			if err != nil {
				return nil, nil, err
			}
			acc, _ := eval.FusionAccuracy(r.Values, cw.Claims)
			res.Accuracy[liars][f.Name()] = acc
			row = append(row, f3(acc))
			// Record what ACCU learned about the liars at the heaviest
			// setting.
			if liars == liarCounts[len(liarCounts)-1] && f.Name() == "accu" {
				var sum float64
				n := 0
				for s, a := range r.SourceAccuracy {
					if len(s) >= 3 && s[:3] == "lie" {
						sum += a
						n++
					}
				}
				if n > 0 {
					res.LearnedLiarAccuracy = sum / float64(n)
				}
			}
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = "once the campaign outvotes honest sources, accuracy-aware fusion AMPLIFIES the lie (EM calibrates against the corrupted consensus); only copy-aware fusion, which spots the campaign's internal agreement, resists"
	return tab, res, nil
}
