package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/source"
	"repro/internal/source/faults"
)

// E23Result is the structured output of E23: per fault rate, how the
// ingestion degraded and what linkage quality survived.
type E23Result struct {
	Rates []float64
	// Survived[rate] = sources ingested out of Total.
	Survived map[float64]int
	Total    int
	// Dropped[rate] lists the dropped source IDs (sorted).
	Dropped map[float64][]string
	// Attempts[rate] = total fetch attempts the ingestor issued.
	Attempts map[float64]int
	// LinkF1[rate] = linkage F1 over the ingested dataset's own ground
	// truth (so quality is judged on the data that actually arrived).
	LinkF1 map[float64]float64
}

// E23 — ingestion under faults (Veracity): a fleet of sources is
// wrapped in a seeded fault injector (transient errors, dead sources,
// truncated payloads) at increasing rates, ingested through the
// resilient Ingestor (retry/backoff/circuit breaking), and the
// survivors run through the full integration pipeline. The pipeline
// completes at every rate; the report names exactly what was dropped,
// and linkage quality over the surviving data stays high — graceful
// degradation rather than collapse.
func E23(seed int64) (*Table, *E23Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 40})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 12, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	base := source.FromWeb(web)

	res := &E23Result{
		Rates:    []float64{0, 0.15, 0.3, 0.45, 0.6},
		Survived: map[float64]int{},
		Dropped:  map[float64][]string{},
		Attempts: map[float64]int{},
		LinkF1:   map[float64]float64{},
		Total:    len(base),
	}
	tab := &Table{
		ID: "E23", Title: "ingestion under faults (Veracity)",
		Columns: []string{"fault rate", "sources ok", "dropped", "records", "attempts", "link F1", "elapsed"},
	}

	ctx := context.Background()
	for _, rate := range res.Rates {
		// Re-wrap per rate: the injector's RNG state advances with each
		// fetch, so a fresh wrap anchors the schedule to the seed.
		fleet := base
		if rate > 0 {
			fleet = faults.WrapAll(base, faults.Config{
				Seed:          seed + 7,
				TransientRate: rate,
				DeadRate:      rate / 4,
				TruncateRate:  rate / 3,
			})
		}
		ing := source.NewIngestor(source.IngestConfig{
			Retries:     3,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  500 * time.Microsecond,
		})
		start := time.Now()
		d, rep, err := ing.Ingest(ctx, fleet)
		if err != nil && !errors.Is(err, source.ErrTooFewSources) {
			return nil, nil, err
		}
		res.Survived[rate] = rep.Succeeded
		res.Dropped[rate] = rep.Dropped
		res.Attempts[rate] = rep.Attempts

		f1 := 0.0
		if rep.Succeeded > 0 {
			prep, err := core.New(core.Config{}).RunCtx(ctx, d)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: E23 pipeline at rate %.2f: %w", rate, err)
			}
			f1 = eval.Clusters(prep.Clusters, d.GroundTruthClusters()).F1
		}
		res.LinkF1[rate] = f1
		elapsed := time.Since(start)

		dropped := "-"
		if len(rep.Dropped) > 0 {
			dropped = strings.Join(rep.Dropped, " ")
		}
		tab.Rows = append(tab.Rows, []string{
			f3(rate),
			fmt.Sprintf("%d/%d", rep.Succeeded, rep.Total),
			dropped,
			d1(rep.Records),
			d1(rep.Attempts),
			f4(f1),
			elapsed.Round(time.Millisecond).String(),
		})
	}
	tab.Notes = "the pipeline completes at every fault rate; drops are named exactly and linkage quality over the surviving data degrades gracefully"
	return tab, res, nil
}
