package experiments

import (
	"runtime"
	"strings"
	"testing"
)

const seed = 42

func TestE1CopyAwareFusionHolds(t *testing.T) {
	tab, res, err := E1(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(res.Fracs) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	noCopy := res.Accuracy[0]
	heavy := res.Accuracy[1.0]
	// With no copiers all methods are close.
	if diff := noCopy["accucopy"] - noCopy["accu"]; diff > 0.08 || diff < -0.08 {
		t.Errorf("no-copy regime: accucopy %f vs accu %f should be close", noCopy["accucopy"], noCopy["accu"])
	}
	// Under heavy copying, accucopy must beat vote clearly.
	if heavy["accucopy"] <= heavy["vote"] {
		t.Errorf("heavy copying: accucopy %f must beat vote %f", heavy["accucopy"], heavy["vote"])
	}
	// Vote must degrade from the no-copy regime.
	if heavy["vote"] >= noCopy["vote"] {
		t.Errorf("vote should degrade with copiers: %f -> %f", noCopy["vote"], heavy["vote"])
	}
	// ACCUCOPY holds accuracy: within 0.1 of its own no-copy level.
	if heavy["accucopy"] < noCopy["accucopy"]-0.1 {
		t.Errorf("accucopy collapsed under copying: %f -> %f", noCopy["accucopy"], heavy["accucopy"])
	}
}

func TestE2Converges(t *testing.T) {
	_, res, err := E2(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accuracy) < 2 || len(res.Accuracy) > 20 {
		t.Fatalf("iterations = %d", len(res.Accuracy))
	}
	first := res.Accuracy[0]
	last := res.Accuracy[len(res.Accuracy)-1]
	if last < first-0.02 {
		t.Errorf("accuracy degraded over EM: %f -> %f", first, last)
	}
	// Source-accuracy estimation error must not meaningfully worsen
	// from start to end (it typically converges within one iteration on
	// clean mixtures, so allow sub-1% jitter).
	if res.MAE[len(res.MAE)-1] > res.MAE[0]+0.01 {
		t.Errorf("MAE worsened: %f -> %f", res.MAE[0], res.MAE[len(res.MAE)-1])
	}
}

func TestE3BlockingTradeoffs(t *testing.T) {
	_, res, err := E3(seed)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quality
	// q-gram and token blocking must recall more than exact blocking.
	if q["qgram3(title)"].PairCompleteness <= q["exact(title)"].PairCompleteness {
		t.Error("qgram must beat exact on PC")
	}
	if q["token(title)"].PairCompleteness <= q["exact(title)"].PairCompleteness {
		t.Error("token must beat exact on PC")
	}
	// Wider SN windows: PC non-decreasing, RR non-increasing.
	if q["sn(w=9)"].PairCompleteness < q["sn(w=3)"].PairCompleteness {
		t.Error("wider window must not lose PC")
	}
	if q["sn(w=9)"].ReductionRatio > q["sn(w=3)"].ReductionRatio {
		t.Error("wider window must not gain RR")
	}
	// Key-per-record methods keep a high reduction ratio; token and
	// q-gram blocking legitimately trade RR away for completeness on
	// titles that share category words.
	for _, name := range []string{"exact(title)", "prefix3(title)", "prefix5(title)", "sn(w=3)", "sn(w=5)", "sn(w=9)"} {
		if q[name].ReductionRatio < 0.5 {
			t.Errorf("%s RR = %f, want >= 0.5", name, q[name].ReductionRatio)
		}
	}
}

func TestE4MetaBlockingCutsComparisons(t *testing.T) {
	_, res, err := E4(seed)
	if err != nil {
		t.Fatal(err)
	}
	base := float64(res.BaselineComparisons)
	for key, q := range res.Meta {
		if float64(q.Candidates) > 0.6*base {
			t.Errorf("%s kept %d of %d comparisons, want < 60%%", key, q.Candidates, res.BaselineComparisons)
		}
	}
	// The ECBS+WEP configuration must retain most pair completeness.
	if got := res.Meta["ecbs+wep"].PairCompleteness; got < 0.75*res.BaselinePC {
		t.Errorf("ecbs+wep PC = %f, baseline %f", got, res.BaselinePC)
	}
}

func TestE5MatchersDegradeWithDirt(t *testing.T) {
	_, res, err := E5(seed)
	if err != nil {
		t.Fatal(err)
	}
	// The identifier rule is the most robust matcher at every level.
	for dirt := 1; dirt <= 3; dirt++ {
		f1 := res.F1[dirt]
		if f1["rule(id)"] < f1["threshold"]-0.05 {
			t.Errorf("dirt %d: rule %f should not trail threshold %f badly", dirt, f1["rule(id)"], f1["threshold"])
		}
	}
	// Similarity matchers must degrade from dirt 1 to dirt 3.
	if res.F1[3]["threshold"] > res.F1[1]["threshold"] {
		t.Errorf("threshold matcher should degrade with dirt: %f -> %f",
			res.F1[1]["threshold"], res.F1[3]["threshold"])
	}
}

func TestE6ClusteringTradeoffs(t *testing.T) {
	_, res, err := E6(seed)
	if err != nil {
		t.Fatal(err)
	}
	cc := res.PRF["components"]
	for _, name := range []string{"center", "correlation"} {
		if res.PRF[name].Precision < cc.Precision {
			t.Errorf("%s precision %f must be >= components %f", name, res.PRF[name].Precision, cc.Precision)
		}
	}
	if cc.Recall < res.PRF["center"].Recall {
		t.Error("components must have the highest recall")
	}
}

func TestE7IncrementalStaysFlat(t *testing.T) {
	_, res, err := E7(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BatchSizes) < 3 {
		t.Fatalf("batches = %d", len(res.BatchSizes))
	}
	// Shape: the incremental per-record cost stays roughly flat as the
	// corpus grows, and processing the whole stream incrementally is
	// cheaper than re-running full linkage at every checkpoint — the
	// batch path redoes all prior work each time, so its cumulative cost
	// grows quadratically while incremental stays linear.
	last := len(res.BatchSizes) - 1
	if res.IncrementalPerRec[last] > 5*res.IncrementalPerRec[0] {
		t.Errorf("incremental per-record cost should stay flat: %v -> %v",
			res.IncrementalPerRec[0], res.IncrementalPerRec[last])
	}
	if res.CumulativeIncremental > res.CumulativeBatch {
		t.Errorf("incremental stream total %v must beat batch-relink-at-every-checkpoint total %v",
			res.CumulativeIncremental, res.CumulativeBatch)
	}
	if res.FinalIncrementalF1 < 0.5 {
		t.Errorf("incremental linkage F1 = %f", res.FinalIncrementalF1)
	}
}

func TestE8LinkageEvidenceHelps(t *testing.T) {
	_, res, err := E8(seed)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest source count, linkage-evidence alignment must be at
	// least as good as name+instance alignment.
	last := len(res.Sources) - 1
	if res.LinkageF1[last] < res.NameF1[last]-0.02 {
		t.Errorf("with %d sources: linkage %f vs name %f", res.Sources[last], res.LinkageF1[last], res.NameF1[last])
	}
	if res.LinkageF1[last] < 0.5 {
		t.Errorf("alignment F1 = %f at %d sources", res.LinkageF1[last], res.Sources[last])
	}
}

func TestE9ParallelSpeedsUp(t *testing.T) {
	_, res, err := E9(seed)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.NumCPU() >= 4 {
		// 4 workers must beat 1 worker (generous margin for CI noise).
		if res.Throughput[2] < res.Throughput[0]*1.2 {
			t.Errorf("4 workers (%f) should beat 1 worker (%f)", res.Throughput[2], res.Throughput[0])
		}
		return
	}
	// Single-core machine: no speedup is physically possible; assert
	// only that extra workers do not badly regress throughput.
	if res.Throughput[2] < res.Throughput[0]*0.5 {
		t.Errorf("4 workers (%f) badly regress 1 worker (%f) on a single core", res.Throughput[2], res.Throughput[0])
	}
}

func TestE10LessIsMore(t *testing.T) {
	_, res, err := E10(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEarly <= res.AllQ {
		t.Errorf("best early accuracy %f must exceed all-sources %f", res.BestEarly, res.AllQ)
	}
	if len(res.Greedy.Sources) >= len(res.Curve) {
		t.Error("greedy must stop before integrating everything")
	}
	if res.Greedy.Quality < res.AllQ {
		t.Errorf("greedy quality %f must be >= all-sources %f", res.Greedy.Quality, res.AllQ)
	}
}

func TestE11DomainRegimes(t *testing.T) {
	_, res, err := E11(seed)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(domain string) float64 {
		min, max := 2.0, -1.0
		for _, acc := range res.Accuracy[domain] {
			if acc < min {
				min = acc
			}
			if acc > max {
				max = acc
			}
		}
		return max - min
	}
	heavy := spread("stock-like (heavy copying)")
	indep := spread("flight-like (independent)")
	if heavy <= indep {
		t.Errorf("method spread under copying (%f) must exceed independent regime (%f)", heavy, indep)
	}
}

func TestE12TemporalShape(t *testing.T) {
	_, res, err := E12(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvolvingTemporalF1 <= res.EvolvingStaticF1 {
		t.Errorf("evolving: temporal %f must beat static %f", res.EvolvingTemporalF1, res.EvolvingStaticF1)
	}
	if res.StableTemporalF1 < res.StableStaticF1-0.05 {
		t.Errorf("stable: temporal %f must not trail static %f", res.StableTemporalF1, res.StableStaticF1)
	}
}

func TestE13EndToEnd(t *testing.T) {
	_, res, err := E13(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkageF1 < 0.75 {
		t.Errorf("end-to-end linkage F1 = %f", res.LinkageF1)
	}
	if res.FusedItems == 0 {
		t.Error("no fused items")
	}
}

func TestE14OrderingAblation(t *testing.T) {
	_, res, err := E14(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkageFirstAlignF1 < res.SchemaFirstAlignF1 {
		t.Errorf("linkage-first alignment %f must be >= schema-first %f",
			res.LinkageFirstAlignF1, res.SchemaFirstAlignF1)
	}
	if res.LinkageFirstLinkF1 < 0.8 {
		t.Errorf("linkage-first linkage F1 = %f", res.LinkageFirstLinkF1)
	}
}

func TestRunnerKnowsAllExperiments(t *testing.T) {
	r := Runner{Seed: seed}
	for _, id := range All() {
		if id == "E7" || id == "E9" || id == "E13" {
			continue // timing-heavy; covered by dedicated tests above
		}
		tab, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id || len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if !strings.Contains(tab.String(), id) {
			t.Errorf("%s: render missing ID", id)
		}
	}
	if _, err := r.Run("E99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"longer-cell", "2"}},
		Notes:   "note text",
	}
	out := tab.String()
	for _, want := range []string{"EX", "demo", "long-column", "longer-cell", "note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
