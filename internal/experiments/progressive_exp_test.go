package experiments

import "testing"

func TestE20ProgressiveER(t *testing.T) {
	_, res, err := E20(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) == 0 || res.TotalPairs == 0 {
		t.Fatal("empty result")
	}
	// Progressive dominates random at every partial budget.
	for i := range res.Budgets {
		if res.Budgets[i] >= res.TotalPairs {
			continue // full budget: identical by construction
		}
		if res.Progressive[i] <= res.Random[i] {
			t.Errorf("budget %d: progressive %f must beat random %f",
				res.Budgets[i], res.Progressive[i], res.Random[i])
		}
	}
	// Both curves are monotone non-decreasing.
	for i := 1; i < len(res.Budgets); i++ {
		if res.Progressive[i] < res.Progressive[i-1] || res.Random[i] < res.Random[i-1] {
			t.Error("recall curves must be monotone")
		}
	}
	// Progressive reaches most of its recall early: at the 10% budget it
	// should hold >= 70% of the full-budget recall.
	full := res.Progressive[len(res.Progressive)-1]
	var at10 float64
	for i, b := range res.Budgets {
		if float64(b) >= 0.1*float64(res.TotalPairs) {
			at10 = res.Progressive[i]
			break
		}
	}
	if at10 < 0.7*full {
		t.Errorf("10%% budget recall %f, full %f: early concentration missing", at10, full)
	}
}
