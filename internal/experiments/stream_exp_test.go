package experiments

import "testing"

func TestE27StreamingBeatsBatchRelink(t *testing.T) {
	tab, res, err := E27(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) < 3 {
		t.Fatalf("%d checkpoints, want ≥3", len(res.Checkpoints))
	}
	for i := 1; i < len(res.Checkpoints); i++ {
		if res.Checkpoints[i] <= res.Checkpoints[i-1] {
			t.Errorf("checkpoints not increasing: %v", res.Checkpoints)
			break
		}
	}
	// The headline claim: processing the whole stream through the
	// velocity path is cheaper than redoing the batch path at every
	// checkpoint.
	if res.CumulativeStream >= res.CumulativeBatch {
		t.Errorf("cumulative stream %v not below batch-relink %v",
			res.CumulativeStream, res.CumulativeBatch)
	}
	if res.Publishes != int64(len(res.Checkpoints)) {
		t.Errorf("publishes = %d, want one per checkpoint (%d)", res.Publishes, len(res.Checkpoints))
	}
	// Streaming must not cost linkage quality.
	if res.FinalF1 < 0.75 {
		t.Errorf("final stream F1 = %.3f, want ≥0.75", res.FinalF1)
	}
	if !res.ResumeIdentical {
		t.Error("crashed-and-resumed stream output differs from the uninterrupted run")
	}
	if len(tab.Rows) != len(res.Checkpoints) {
		t.Errorf("table rows %d != checkpoints %d", len(tab.Rows), len(res.Checkpoints))
	}
}
