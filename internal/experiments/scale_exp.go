package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// e24GroupSize is the scale corpus' block-group size: after purging
// the vocabulary blocks, raw pairs ≈ records/8 × C(8,2).
const e24GroupSize = 8

// E24Opts parameterises the scale-out sweep. The zero value runs a
// test-sized sweep; cmd/bdibench passes the paper-scale 1M/3M/10M
// sizes and a real spill directory.
type E24Opts struct {
	Sizes          []int   // record counts (default 20k/60k)
	Workers        []int   // worker counts (default 1/2/8)
	Shards         int     // pair-generation shards (default 8)
	BudgetFraction float64 // pair budget as a fraction of the unsharded pair peak (default 0.25)
	PairMemBudget  int64   // explicit budget in bytes; > 0 overrides BudgetFraction
	SpillDir       string  // spill directory ("" = os.TempDir())
}

func (o *E24Opts) defaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{20_000, 60_000}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 8}
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.BudgetFraction <= 0 {
		o.BudgetFraction = 0.25
	}
}

// E24Row is one (size, workers) cell of the scaling sweep. The JSON
// form is the BENCH_blocking.json baseline schema future PRs compare
// against.
type E24Row struct {
	Records int `json:"records"`
	Workers int `json:"workers"`

	RawPairs int `json:"raw_pairs"` // pre-dedup pair expansions
	Pairs    int `json:"pairs"`     // deduplicated candidates

	UnshardedPeakBytes int64 `json:"unsharded_peak_bytes"` // in-memory pair footprint: raw codes + dedup clone
	BudgetBytes        int64 `json:"budget_bytes"`         // pair-memory budget of the spilled run
	PeakHeapBytes      int64 `json:"peak_heap_bytes"`      // sampled heap high-water during the spilled run

	SpillRuns     int64 `json:"spill_runs"`      // phase-A run files
	SpillMergeRun int64 `json:"spill_merge_runs"` // phase-C emission runs
	Merges        int64 `json:"merges"`           // k-way merges performed

	Seconds     float64 `json:"seconds"` // spilled run: blocks + pair generation + full stream
	PairsPerSec float64 `json:"pairs_per_sec"`

	Identical bool `json:"identical"` // spilled stream hash == in-memory stream hash
}

// E24Result is the structured output of E24.
type E24Result struct {
	Shards int      `json:"shards"`
	Rows   []E24Row `json:"rows"`
}

// pairStreamHash fingerprints a candidate stream in emission order.
func pairStreamHash(cs *blocking.CandidateSet) uint64 {
	h := fnv.New64a()
	cs.EmitPairs(func(p data.Pair) bool {
		h.Write([]byte(p.A))
		h.Write([]byte{0})
		h.Write([]byte(p.B))
		h.Write([]byte{1})
		return true
	})
	return h.Sum64()
}

// E24 — sharded scale-out: pair generation under a memory budget ≤ 25%
// of the unsharded pair peak, across corpus sizes and worker counts,
// with spill-run/merge counters and the heap high-water mark reported
// via internal/obs. Every budgeted run's candidate stream is checked
// byte-identical (by stream hash) against the unsharded in-memory
// engine.
func E24(seed int64) (*Table, *E24Result, error) {
	return E24Scale(seed, E24Opts{})
}

// E24Scale is E24 with explicit sweep options.
func E24Scale(seed int64, o E24Opts) (*Table, *E24Result, error) {
	o.defaults()
	key := blocking.TokenKey("title")
	res := &E24Result{Shards: o.Shards}
	tab := &Table{
		ID: "E24", Title: "sharded blocking: memory-budgeted pair generation at scale",
		Columns: []string{
			"records", "workers", "raw pairs", "pairs", "unsharded MB",
			"budget MB", "peak heap MB", "runs", "merges", "sec", "pairs/s", "identical",
		},
		Notes: fmt.Sprintf("shards=%d, budget=%.0f%% of unsharded pair peak (raw codes + dedup clone); identical = spilled stream hash matches the in-memory engine",
			o.Shards, o.BudgetFraction*100),
	}
	mb := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
	for _, n := range o.Sizes {
		recs := datagen.ScaleRecords(datagen.ScaleConfig{Seed: seed, NumRecords: n, GroupSize: e24GroupSize})

		// Unsharded in-memory reference: raw pair count, the dedup
		// stream fingerprint, and the analytic pair-memory peak (the
		// raw code slice plus the sorted clone dedup makes of it).
		ref := blocking.NewEngine(recs, 0).Blocks(key).Purge(e24GroupSize)
		raw := ref.Comparisons()
		refSet := ref.CandidateSet()
		wantHash := pairStreamHash(refSet)
		wantPairs := refSet.Len()
		unshardedPeak := int64(raw) * 16
		budget := o.PairMemBudget
		if budget <= 0 {
			budget = int64(float64(unshardedPeak) * o.BudgetFraction)
		}

		for _, w := range o.Workers {
			reg := obs.NewRegistry()
			watch := obs.StartHeapWatch(reg, 0)
			start := time.Now()
			eng := blocking.NewEngineOpts(recs, blocking.Opts{
				Workers: w, Shards: o.Shards,
				PairMemBudget: budget, SpillDir: o.SpillDir, Obs: reg,
			})
			cs := eng.Blocks(key).Purge(e24GroupSize).CandidateSet()
			gotHash := pairStreamHash(cs)
			gotPairs := cs.Len()
			secs := time.Since(start).Seconds()
			peak := watch.Stop()
			if err := cs.Close(); err != nil {
				return nil, nil, fmt.Errorf("E24 n=%d w=%d: close: %w", n, w, err)
			}
			snap := reg.Snapshot()
			counters := map[string]int64{}
			for _, c := range snap.Counters {
				counters[c.Name] = c.Value
			}
			row := E24Row{
				Records: n, Workers: w,
				RawPairs: raw, Pairs: gotPairs,
				UnshardedPeakBytes: unshardedPeak, BudgetBytes: budget, PeakHeapBytes: peak,
				SpillRuns:     counters["blocking.spill_runs"],
				SpillMergeRun: counters["blocking.spill_merge_runs"],
				Merges:        counters["blocking.spill_merges"],
				Seconds:       secs,
				Identical:     gotHash == wantHash && gotPairs == wantPairs,
			}
			if secs > 0 {
				row.PairsPerSec = float64(row.Pairs) / secs
			}
			if !row.Identical {
				return nil, nil, fmt.Errorf("E24 n=%d w=%d: budgeted stream diverged from the in-memory engine", n, w)
			}
			if row.SpillRuns == 0 {
				return nil, nil, fmt.Errorf("E24 n=%d w=%d: budget %d never spilled (raw=%d)", n, w, budget, raw)
			}
			res.Rows = append(res.Rows, row)
			tab.Rows = append(tab.Rows, []string{
				d1(n), d1(w), d1(raw), d1(row.Pairs), mb(unshardedPeak),
				mb(budget), mb(peak), d1(int(row.SpillRuns)), d1(int(row.Merges)),
				fmt.Sprintf("%.2f", secs), fmt.Sprintf("%.0f", row.PairsPerSec),
				fmt.Sprintf("%v", row.Identical),
			})
		}
	}
	return tab, res, nil
}
