package experiments

import "testing"

func TestE26Serving(t *testing.T) {
	tab, res, err := E26(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d load levels, want 3", len(res.Rows))
	}
	wantClients := []int{1, 8, 64}
	for i, row := range res.Rows {
		if row.Clients != wantClients[i] {
			t.Errorf("row %d clients = %d, want %d", i, row.Clients, wantClients[i])
		}
		if row.Errors != 0 {
			t.Errorf("%d clients: %d request errors, want 0", row.Clients, row.Errors)
		}
		if row.Requests != row.Clients*50 {
			t.Errorf("%d clients: %d requests, want %d", row.Clients, row.Requests, row.Clients*50)
		}
		if row.P50 <= 0 || row.P99 < row.P50 {
			t.Errorf("%d clients: quantiles out of order (p50 %v, p99 %v)", row.Clients, row.P50, row.P99)
		}
		if row.QPS <= 0 {
			t.Errorf("%d clients: qps = %v", row.Clients, row.QPS)
		}
	}
	if !res.IdenticalAfterReindex {
		t.Error("search response changed across an identical-data reindex")
	}
	if len(tab.Rows) != len(res.Rows) {
		t.Errorf("table rows %d != result rows %d", len(tab.Rows), len(res.Rows))
	}
}
