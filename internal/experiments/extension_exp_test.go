package experiments

import "testing"

func TestE15OnlineFusion(t *testing.T) {
	_, res, err := E15(seed)
	if err != nil {
		t.Fatal(err)
	}
	// The anytime curve improves from its first point to its best.
	first := res.Accuracy[0]
	best := first
	for _, a := range res.Accuracy {
		if a > best {
			best = a
		}
	}
	if best <= first {
		t.Errorf("anytime curve flat: first %f best %f", first, best)
	}
	// The early-termination protocol saves probes at near-best accuracy.
	if res.MeanProbes >= float64(res.NumSources)*0.9 {
		t.Errorf("mean probes %.1f of %d: no early termination", res.MeanProbes, res.NumSources)
	}
	full := res.Accuracy[len(res.Accuracy)-1]
	if res.OnlineAcc < full-0.03 {
		t.Errorf("online accuracy %f must track full-prefix accuracy %f", res.OnlineAcc, full)
	}
}

func TestE16PayAsYouGo(t *testing.T) {
	_, res, err := E16(seed)
	if err != nil {
		t.Fatal(err)
	}
	// More questions never hurt, and the largest budget beats the
	// baseline.
	last := res.F1[len(res.F1)-1]
	if last < res.BaseF1 {
		t.Errorf("60 questions (%f) must beat baseline (%f)", last, res.BaseF1)
	}
	for i := 1; i < len(res.F1); i++ {
		if res.F1[i] < res.F1[i-1]-0.03 {
			t.Errorf("F1 dropped with budget: %v", res.F1)
		}
	}
}

func TestE17Ablations(t *testing.T) {
	_, res, err := E17(seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignFull < res.AlignNoRatio-0.02 {
		t.Errorf("ratio stability should help on unit-shifted webs: %f vs %f",
			res.AlignFull, res.AlignNoRatio)
	}
	if res.FuseBootstrap <= res.FuseNoBootstrap {
		t.Errorf("bootstrap should matter under collusion: %f vs %f",
			res.FuseBootstrap, res.FuseNoBootstrap)
	}
}

func TestE18LSHBlocking(t *testing.T) {
	_, res, err := E18(seed)
	if err != nil {
		t.Fatal(err)
	}
	// Lower LSH threshold (more bands, fewer rows) must not lose PC.
	if res.Quality["minhash(16x2)"].PairCompleteness < res.Quality["minhash(8x4)"].PairCompleteness {
		t.Error("lower LSH threshold must raise (or keep) pair completeness")
	}
	// At its loosest setting, LSH must reach high pair completeness
	// while still reducing far more than token blocking.
	lsh := res.Quality["minhash(16x2)"]
	tok := res.Quality["token(title)"]
	if lsh.PairCompleteness < 0.75 {
		t.Errorf("LSH PC = %f", lsh.PairCompleteness)
	}
	if lsh.ReductionRatio < tok.ReductionRatio {
		t.Errorf("LSH RR %f should beat token blocking %f", lsh.ReductionRatio, tok.ReductionRatio)
	}
}
