package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/source"
)

// E28Result is the structured output of E28.
type E28Result struct {
	Checkpoints []int     // live corpus size at each published checkpoint
	StreamF1    []float64 // churn stream's linkage F1 over the live records
	BatchF1     []float64 // from-scratch run over the same live records
	MaxGap      float64   // max |StreamF1 - BatchF1| over all checkpoints
	Deletes     int64     // effective deletes applied by the stream
	// Tombstones live at drain before any compaction ran, and the final
	// persisted state sizes with and without a compaction trigger. The
	// with/without runs must agree on every observable (CompactionNeutral).
	Tombstones        int
	UncompactedBytes  int64
	CompactedBytes    int64
	CompactionNeutral bool
}

// E28 — mutable-stream churn: a delta stream carrying 10% updates and
// 5% deletes drains through the incremental path, and at every publish
// checkpoint its linkage F1 over the live records is compared against a
// from-scratch run of the same engine over exactly those records. The
// gap stays within 0.01 at every checkpoint: retraction plus
// deterministic reclustering keeps the online partition equivalent to
// one that never saw the dead records. A second pair of runs persists
// state with and without a compaction trigger: outputs are identical
// and only the compacted file is bounded by the live corpus.
func E28(seed int64) (*Table, *E28Result, error) {
	web := dirtyWeb(seed, 300, 12, 1)
	d := web.Dataset
	fleet, totals, deleted := source.ChurnSources(d, source.ChurnConfig{
		Seed: seed, UpdateRate: 0.10, DeleteRate: 0.05,
	})
	if len(deleted) == 0 {
		return nil, nil, fmt.Errorf("E28: churn produced no deletions")
	}
	metas := map[string]*data.Source{}
	for _, s := range d.Sources() {
		metas[s.ID] = s
	}
	truth := d.GroundTruthClusters()

	// MaxBlock is unbounded so both sides compare every co-blocked pair:
	// the stop-token bound gates on block fill order, which would differ
	// between stream arrival order and the from-scratch replay and
	// confound the retraction measurement with (pre-existing, insert-only)
	// order sensitivity.
	cfg := core.StreamConfig{EpochSize: 40, PublishEvery: 1, Workers: 4, MatchThreshold: 0.72, MaxBlock: -1}
	st, err := core.NewStream(cfg, nil)
	if err != nil {
		return nil, nil, err
	}

	res := &E28Result{}
	tab := &Table{
		ID: "E28", Title: "churn stream vs from-scratch batch under updates and deletes",
		Columns: []string{"live corpus", "stream F1", "batch F1", "gap", "tombstones"},
	}

	str, err := source.NewDeltaStreamer(context.Background(), fleet, source.StreamConfig{
		EpochSize: cfg.EpochSize, Totals: totals,
	})
	if err != nil {
		return nil, nil, err
	}
	defer str.Close()

	for ep := range str.C {
		if len(ep.Deltas) == 0 {
			continue
		}
		if err := st.ApplyDeltas(metas, ep); err != nil {
			return nil, nil, err
		}
		if _, err := st.Publish(context.Background()); err != nil {
			return nil, nil, err
		}

		liveTruth := restrictTruth(truth, st.Dataset())
		streamF1 := eval.Clusters(st.Clusters(), liveTruth).F1
		batchF1, err := e28FromScratchF1(cfg, st.Dataset(), metas, liveTruth)
		if err != nil {
			return nil, nil, err
		}
		gap := math.Abs(streamF1 - batchF1)
		if gap > res.MaxGap {
			res.MaxGap = gap
		}
		res.Checkpoints = append(res.Checkpoints, st.Dataset().NumRecords())
		res.StreamF1 = append(res.StreamF1, streamF1)
		res.BatchF1 = append(res.BatchF1, batchF1)
		tab.Rows = append(tab.Rows, []string{
			d1(st.Dataset().NumRecords()),
			fmt.Sprintf("%.4f", streamF1),
			fmt.Sprintf("%.4f", batchF1),
			fmt.Sprintf("%.4f", gap),
			d1(st.Tombstones()),
		})
	}
	if err := str.Err(); err != nil {
		return nil, nil, err
	}
	res.Deletes = st.Deleted()
	res.Tombstones = st.Tombstones()

	// Bounded-state leg: the same churn through two persisted streams,
	// one never compacting and one with an aggressive garbage trigger.
	dir, err := os.MkdirTemp("", "e28-state-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	persist := func(ratio float64, name string) (*core.Stream, int64, error) {
		path := filepath.Join(dir, name)
		pcfg := cfg
		pcfg.StatePath = path
		pcfg.CompactRatio = ratio
		ps, err := core.NewStream(pcfg, nil)
		if err != nil {
			return nil, 0, err
		}
		if err := ps.RunDeltas(context.Background(), fleet, totals); err != nil {
			return nil, 0, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return nil, 0, err
		}
		return ps, fi.Size(), nil
	}
	plain, plainSize, err := persist(0, "plain.state")
	if err != nil {
		return nil, nil, err
	}
	compacted, compactSize, err := persist(0.01, "compact.state")
	if err != nil {
		return nil, nil, err
	}
	res.UncompactedBytes = plainSize
	res.CompactedBytes = compactSize
	fa, err := e27Fingerprint(plain)
	if err != nil {
		return nil, nil, err
	}
	fb, err := e27Fingerprint(compacted)
	if err != nil {
		return nil, nil, err
	}
	res.CompactionNeutral = fa == fb

	tab.Notes = fmt.Sprintf(
		"churn 10%% updates / 5%% deletes over %d records; %d deletes, max F1 gap vs from-scratch %.4f; state %dB uncompacted vs %dB compacted (neutral=%v)",
		d.NumRecords(), res.Deletes, res.MaxGap, res.UncompactedBytes, res.CompactedBytes, res.CompactionNeutral)
	return tab, res, nil
}

// restrictTruth drops dead records from the ground-truth partition so
// F1 is measured over exactly the live corpus.
func restrictTruth(truth data.Clustering, live *data.Dataset) data.Clustering {
	out := make(data.Clustering, 0, len(truth))
	for _, cl := range truth {
		keep := make([]string, 0, len(cl))
		for _, id := range cl {
			if live.Record(id) != nil {
				keep = append(keep, id)
			}
		}
		if len(keep) > 0 {
			out = append(out, keep)
		}
	}
	return out
}

// e28FromScratchF1 runs a fresh instance of the same incremental engine
// over the live records only — the "never saw the churn" baseline the
// stream's retraction path must match.
func e28FromScratchF1(cfg core.StreamConfig, live *data.Dataset,
	metas map[string]*data.Source, liveTruth data.Clustering) (float64, error) {
	fresh, err := core.NewStream(cfg, nil)
	if err != nil {
		return 0, err
	}
	var deltas []source.Delta
	for _, s := range live.Sources() {
		for _, r := range live.SourceRecords(s.ID) {
			deltas = append(deltas, source.Upsert(r))
		}
	}
	if err := fresh.ApplyDeltas(metas, source.DeltaEpoch{Seq: 0, Deltas: deltas}); err != nil {
		return 0, err
	}
	return eval.Clusters(fresh.Clusters(), liveTruth).F1, nil
}
