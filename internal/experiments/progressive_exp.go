package experiments

import (
	"math/rand"

	"repro/internal/blocking"
	"repro/internal/data"
)

// E20Result is the structured output of E20.
type E20Result struct {
	Budgets     []int     // comparison budgets (absolute)
	Progressive []float64 // recall of truth pairs within budget
	Random      []float64 // same pairs, shuffled order
	TotalPairs  int
}

// E20 — progressive entity resolution: recall of true matches within a
// comparison budget, progressive (small-blocks-first) order vs random
// order over the same candidate set.
func E20(seed int64) (*Table, *E20Result, error) {
	web := dirtyWeb(seed, 120, 14, 1)
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()

	prog := blocking.Progressive{Key: blocking.TokenKey("title"), MaxBlock: 200}
	ordered := prog.Stream(records)
	shuffled := append([]data.Pair(nil), ordered...)
	rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	res := &E20Result{TotalPairs: len(ordered)}
	fractions := []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}
	for _, f := range fractions {
		b := int(f * float64(len(ordered)))
		if b < 1 {
			b = 1
		}
		res.Budgets = append(res.Budgets, b)
	}
	res.Progressive = blocking.RecallCurve(ordered, truth, append([]int(nil), res.Budgets...))
	res.Random = blocking.RecallCurve(shuffled, truth, append([]int(nil), res.Budgets...))

	tab := &Table{
		ID: "E20", Title: "progressive ER: truth-pair recall vs comparison budget",
		Columns: []string{"budget", "of total", "progressive", "random order"},
	}
	for i, b := range res.Budgets {
		tab.Rows = append(tab.Rows, []string{
			d1(b), f3(float64(b) / float64(res.TotalPairs)),
			f4(res.Progressive[i]), f4(res.Random[i]),
		})
	}
	tab.Notes = "small-blocks-first ordering should dominate random order at every partial budget"
	return tab, res, nil
}
