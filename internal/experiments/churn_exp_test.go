package experiments

import "testing"

func TestE28ChurnStreamMatchesFromScratch(t *testing.T) {
	tab, res, err := E28(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) < 3 {
		t.Fatalf("%d checkpoints, want ≥3", len(res.Checkpoints))
	}
	if res.Deletes == 0 {
		t.Fatal("churn applied no deletes")
	}
	// The acceptance bar: the mutable stream's linkage quality tracks a
	// from-scratch run over the live records at every checkpoint.
	if res.MaxGap > 0.01 {
		t.Errorf("max stream-vs-batch F1 gap = %.4f, want ≤ 0.01", res.MaxGap)
	}
	for i, f1 := range res.StreamF1 {
		if f1 <= 0 || f1 > 1 {
			t.Errorf("checkpoint %d: stream F1 = %v out of range", i, f1)
		}
	}
	// Compaction bounds the persisted state without changing any
	// observable output.
	if !res.CompactionNeutral {
		t.Error("compacting run's observables differ from the never-compacting run")
	}
	if res.Tombstones > 0 && res.CompactedBytes >= res.UncompactedBytes {
		t.Errorf("compacted state %dB, want < uncompacted %dB",
			res.CompactedBytes, res.UncompactedBytes)
	}
	if len(tab.Rows) != len(res.Checkpoints) {
		t.Errorf("table rows %d != checkpoints %d", len(tab.Rows), len(res.Checkpoints))
	}
}
