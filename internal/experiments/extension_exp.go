package experiments

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/schema"
)

// E15Result is the structured output of E15.
type E15Result struct {
	K          []int     // sources consulted (anytime curve x-axis)
	Accuracy   []float64 // accuracy at each prefix
	MeanProbes float64   // online protocol's mean probes per item
	OnlineAcc  float64   // online protocol's final accuracy
	NumSources int
}

// E15 — online fusion: the anytime accuracy curve over the
// best-sources-first prefix, and the early-termination protocol's probe
// savings at (near-)full accuracy.
func E15(seed int64) (*Table, *E15Result, error) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 250, NumValues: 5,
		NumSources: 16, MinAccuracy: 0.4, MaxAccuracy: 0.95,
	})
	on := fusion.Online{Accuracy: cw.TrueAccuracy}
	res := &E15Result{NumSources: 16}
	tab := &Table{
		ID: "E15", Title: "online fusion: anytime accuracy and probe savings",
		Columns: []string{"sources consulted", "accuracy"},
	}
	for _, k := range []int{1, 2, 4, 8, 12, 16} {
		r, err := on.FuseWithPrefix(cw.Claims, k)
		if err != nil {
			return nil, nil, err
		}
		acc, _ := eval.FusionAccuracy(r.Values, cw.Claims)
		res.K = append(res.K, k)
		res.Accuracy = append(res.Accuracy, acc)
		tab.Rows = append(tab.Rows, []string{d1(k), f4(acc)})
	}
	or, err := on.FuseOnline(cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	res.OnlineAcc, _ = eval.FusionAccuracy(or.Values, cw.Claims)
	var sum float64
	for _, p := range or.Probes {
		sum += float64(p)
	}
	if len(or.Probes) > 0 {
		res.MeanProbes = sum / float64(len(or.Probes))
	}
	tab.Notes = fmt.Sprintf(
		"early-termination protocol: accuracy %.4f probing %.1f of %d sources on average",
		res.OnlineAcc, res.MeanProbes, res.NumSources)
	return tab, res, nil
}

// E16Result is the structured output of E16.
type E16Result struct {
	Budgets []int
	F1      []float64 // alignment F1 after each question budget
	BaseF1  float64   // no-feedback baseline
}

// E16 — pay-as-you-go alignment: attribute-correspondence F1 as the
// oracle question budget grows (the dataspace programme's core curve).
func E16(seed int64) (*Table, *E16Result, error) {
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: seed, NumEntities: 40, Categories: []string{"camera"},
	})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 8, DirtLevel: 1,
		IdentifierRate: 0.95, Heterogeneity: 0.7,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	profiles := schema.Profiler{}.Build(web.Dataset)

	// Oracle from the generator's dialect ground truth.
	canonical := map[schema.SourceAttr]string{}
	for _, gs := range web.Sources {
		for canon, local := range gs.Dialect.Rename {
			canonical[schema.SourceAttr{Source: gs.ID, Attr: local}] = canon
		}
	}
	oracle := func(a, b schema.SourceAttr) bool {
		ca, cb := canonical[a], canonical[b]
		return ca != "" && ca == cb
	}

	base, err := (schema.Aligner{Threshold: 0.5}).Align(profiles)
	if err != nil {
		return nil, nil, err
	}
	res := &E16Result{BaseF1: AlignmentF1(web, base)}
	tab := &Table{
		ID: "E16", Title: "pay-as-you-go alignment: F1 vs oracle questions",
		Columns: []string{"questions", "alignment F1"},
	}
	tab.Rows = append(tab.Rows, []string{"0 (baseline)", f4(res.BaseF1)})
	for _, budget := range []int{5, 15, 30, 60} {
		fb, err := (schema.Feedback{Threshold: 0.5, Budget: budget}).Run(profiles, oracle)
		if err != nil {
			return nil, nil, err
		}
		f1 := AlignmentF1(web, fb.Schema)
		res.Budgets = append(res.Budgets, budget)
		res.F1 = append(res.F1, f1)
		tab.Rows = append(tab.Rows, []string{d1(budget), f4(f1)})
	}
	tab.Notes = "confirming the most uncertain correspondences should lift F1 monotonically toward 1"
	return tab, res, nil
}

// E17Result is the structured output of E17.
type E17Result struct {
	// F1 per configuration of the ablation.
	AlignFull       float64 // linkage evidence with ratio stability
	AlignNoRatio    float64 // linkage evidence without ratio stability
	FuseBootstrap   float64 // accucopy with truth-free bootstrap pass
	FuseNoBootstrap float64 // accucopy detecting with converged estimates only
}

// E17 — design-choice ablations DESIGN.md calls out: (a) ratio-stability
// evidence inside linkage-aware alignment, (b) the truth-free bootstrap
// pass inside ACCUCOPY's copy detection.
func E17(seed int64) (*Table, *E17Result, error) {
	res := &E17Result{}

	// (a) Alignment with and without ratio stability: compare the full
	// Blend against agreement-rate-only evidence on unit-shifted webs,
	// averaged over three worlds (per-world clustering noise can mask
	// the channel on a single seed).
	alignSeeds := []int64{seed, seed + 35, seed + 58}
	for _, s := range alignSeeds {
		w := datagen.NewWorld(datagen.WorldConfig{
			Seed: s, NumEntities: 40, Categories: []string{"camera"},
		})
		web := datagen.BuildWeb(w, datagen.SourceConfig{
			Seed: s + 1, NumSources: 10, DirtLevel: 1,
			IdentifierRate: 0.95, Heterogeneity: 0.8, // heavy unit changes
			HeadFraction: 0.4, TailCoverage: 0.3,
		})
		rep, err := core.New(core.Config{}).Run(web.Dataset)
		if err != nil {
			return nil, nil, err
		}
		res.AlignFull += AlignmentF1(web, rep.Schema)

		profiles := schema.Profiler{}.Build(web.Dataset)
		le := schema.NewLinkageEvidence(web.Dataset, rep.Clusters)
		msNoRatio, err := (schema.Aligner{Evidence: le.BlendAgreementOnly, Threshold: 0.5}).Align(profiles)
		if err != nil {
			return nil, nil, err
		}
		res.AlignNoRatio += AlignmentF1(web, msNoRatio)
	}
	res.AlignFull /= float64(len(alignSeeds))
	res.AlignNoRatio /= float64(len(alignSeeds))

	// (b) ACCUCOPY with vs without the truth-free bootstrap, on the
	// colluding-majority workload where the bootstrap matters.
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed + 7, NumItems: 200, NumValues: 8,
		NumSources: 4, MinAccuracy: 0.8, MaxAccuracy: 0.95,
		NumCopiers: 6, CopyRate: 0.98, CopierSpread: 1,
	})
	full := fusion.ACCUCOPY{}
	r1, err := full.Fuse(cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	res.FuseBootstrap, _ = eval.FusionAccuracy(r1.Values, cw.Claims)
	noBoot := fusion.ACCUCOPY{DisableBootstrap: true}
	r2, err := noBoot.Fuse(cw.Claims)
	if err != nil {
		return nil, nil, err
	}
	res.FuseNoBootstrap, _ = eval.FusionAccuracy(r2.Values, cw.Claims)

	tab := &Table{
		ID: "E17", Title: "ablations: ratio-stability evidence and detection bootstrap",
		Columns: []string{"configuration", "metric", "value"},
		Rows: [][]string{
			{"alignment + ratio stability", "align F1", f4(res.AlignFull)},
			{"alignment, agreement only", "align F1", f4(res.AlignNoRatio)},
			{"accucopy + bootstrap", "fusion acc", f4(res.FuseBootstrap)},
			{"accucopy, no bootstrap", "fusion acc", f4(res.FuseNoBootstrap)},
		},
		Notes: "each removed design choice should cost quality on the workload it was designed for",
	}
	return tab, res, nil
}

// E18Result is the structured output of E18.
type E18Result struct {
	Quality map[string]eval.BlockingQuality
}

// E18 — LSH vs engineered blocking: MinHash banding against token and
// sorted-neighbourhood blocking on the standard dirty corpus.
func E18(seed int64) (*Table, *E18Result, error) {
	web := dirtyWeb(seed, 80, 12, 2)
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()
	n := len(records)
	methods := []struct {
		name string
		b    blocking.Blocker
	}{
		{"token(title)", blocking.Standard{Key: blocking.TokenKey("title"), MaxBlock: 200}},
		{"sn(w=5)", blocking.SortedNeighborhood{Keys: []blocking.KeyFunc{blocking.AttrExactKey("title")}, Window: 5}},
		{"phonetic(nysiis)", blocking.Standard{Key: blocking.PhoneticKey("title", "nysiis"), MaxBlock: 200}},
		{"minhash(8x4)", blocking.MinHashLSH{Bands: 8, Rows: 4, Seed: uint64(seed)}},
		{"minhash(12x3)", blocking.MinHashLSH{Bands: 12, Rows: 3, Seed: uint64(seed)}},
		{"minhash(16x2)", blocking.MinHashLSH{Bands: 16, Rows: 2, Seed: uint64(seed)}},
	}
	res := &E18Result{Quality: map[string]eval.BlockingQuality{}}
	tab := &Table{
		ID: "E18", Title: "LSH vs engineered blocking",
		Columns: []string{"method", "candidates", "RR", "PC", "PQ"},
	}
	for _, m := range methods {
		q := eval.Blocking(m.b.Candidates(records), truth, n)
		res.Quality[m.name] = q
		tab.Rows = append(tab.Rows, []string{m.name, d1(q.Candidates), f4(q.ReductionRatio), f4(q.PairCompleteness), f4(q.PairQuality)})
	}
	tab.Notes = "more bands / fewer rows lowers the LSH threshold: PC rises, RR falls"
	return tab, res, nil
}
