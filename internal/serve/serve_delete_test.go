package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/source"
)

// TestDeletedEntitiesDisappearAfterPublish is the serving-layer gate
// for mutable streams: a stream publishes into the server, records of
// one entity are deleted upstream, and after the next publish that
// entity is absent from /entities, /search and /resolve candidates.
// Entities are identified by title — snapshot entity IDs are
// positional and reshuffle when records disappear.
func TestDeletedEntitiesDisappearAfterPublish(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 81, NumEntities: 30})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 82, NumSources: 6, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
		HeadFraction: 0.5, TailCoverage: 0.4,
	})
	d := web.Dataset

	// Stream phase 1: upsert-only logs, published into a live server.
	logs := map[string][]source.Delta{}
	for _, s := range d.Sources() {
		logs[s.ID] = source.UpsertLog(d.SourceRecords(s.ID))
	}
	fleet := func() ([]source.DeltaSource, map[string]int) {
		out := make([]source.DeltaSource, 0, len(logs))
		totals := map[string]int{}
		for _, s := range d.Sources() {
			out = append(out, &source.DeltaStatic{Src: s, Log: logs[s.ID]})
			totals[s.ID] = len(logs[s.ID])
		}
		return out, totals
	}

	var srv *Server
	stream, err := core.NewStream(core.StreamConfig{EpochSize: 25, PublishEvery: 1},
		func(snap *core.Snapshot) {
			if srv == nil {
				var err error
				srv, err = New(snap, nil, Config{})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				srv.Publish(snap)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	f1, t1 := fleet()
	if err := stream.RunDeltas(context.Background(), f1, t1); err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("stream never published")
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	// Pick a victim entity whose title is unique in the snapshot, so
	// absence-by-title is unambiguous.
	titleCount := map[string]int{}
	for _, e := range srv.Snapshot().Entities() {
		titleCount[e.Title]++
	}
	var victim *core.Entity
	for _, e := range srv.Snapshot().Entities() {
		if e.Title != "" && titleCount[e.Title] == 1 && len(e.Records) >= 2 {
			victim = e
			break
		}
	}
	if victim == nil {
		t.Fatal("no unique-titled multi-record entity to delete")
	}
	victimRecords := map[string]bool{}
	for _, id := range victim.Records {
		victimRecords[id] = true
	}

	// Pre-delete presence, over HTTP.
	if code, _ := get(t, ts.URL+"/entities/"+victim.ID); code != http.StatusOK {
		t.Fatalf("victim %s not served before delete: %d", victim.ID, code)
	}
	if !titleHit(t, ts.URL, victim.Title) {
		t.Fatalf("victim title %q not searchable before delete", victim.Title)
	}

	// Stream phase 2: append a delete of every victim record to its
	// owning source's log and drain the suffix through the same stream
	// (cursors resume past the upserts already applied).
	for id := range victimRecords {
		r := d.Record(id)
		if r == nil {
			t.Fatalf("victim record %s not in dataset", id)
		}
		logs[r.SourceID] = append(logs[r.SourceID], source.Deletion(id))
	}
	f2, t2 := fleet()
	if err := stream.RunDeltas(context.Background(), f2, t2); err != nil {
		t.Fatal(err)
	}
	if stream.Deleted() != int64(len(victimRecords)) {
		t.Fatalf("stream deleted %d records, want %d", stream.Deleted(), len(victimRecords))
	}

	// Post-publish absence: /entities — no served entity carries the
	// victim's title or cites its records.
	for _, e := range srv.Snapshot().Entities() {
		code, body := get(t, ts.URL+"/entities/"+e.ID)
		if code != http.StatusOK {
			t.Fatalf("entities/%s: %d", e.ID, code)
		}
		var ej EntityJSON
		if err := json.Unmarshal(body, &ej); err != nil {
			t.Fatal(err)
		}
		if ej.Title == victim.Title {
			t.Errorf("deleted entity title %q still served as %s", victim.Title, e.ID)
		}
		for _, id := range ej.Records {
			if victimRecords[id] {
				t.Errorf("entity %s still cites deleted record %s", e.ID, id)
			}
		}
	}
	// /search.
	if titleHit(t, ts.URL, victim.Title) {
		t.Errorf("deleted entity still reachable via /search?q=%q", victim.Title)
	}
	// /resolve candidates.
	req := fmt.Sprintf(`{"values":{"title":%q},"k":5}`, victim.Title)
	code, body := post(t, ts.URL+"/resolve", req)
	if code != http.StatusOK {
		t.Fatalf("resolve: %d %s", code, body)
	}
	var r struct {
		Match      bool       `json:"match"`
		Best       EntityJSON `json:"best"`
		Candidates []HitJSON  `json:"candidates"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Candidates {
		if c.Title == victim.Title {
			t.Errorf("deleted entity %q still a /resolve candidate", victim.Title)
		}
	}
	if r.Match && r.Best.Title == victim.Title {
		t.Errorf("resolve still matches the deleted entity")
	}

	// The other entities kept serving: total records dropped by exactly
	// the deleted ones.
	total := 0
	for _, e := range srv.Snapshot().Entities() {
		total += len(e.Records)
	}
	if want := d.NumRecords() - len(victimRecords); total != want {
		t.Errorf("served records = %d, want %d", total, want)
	}
}

// titleHit reports whether /search returns a hit with exactly the
// given title.
func titleHit(t *testing.T, base, title string) bool {
	t.Helper()
	code, body := get(t, base+"/search?q="+strings.ReplaceAll(title, " ", "+")+"&limit=20")
	if code != http.StatusOK {
		t.Fatalf("search: %d %s", code, body)
	}
	var r struct {
		Hits []HitJSON `json:"hits"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hits {
		if h.Title == title {
			return true
		}
	}
	return false
}
