package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// Handler returns the server's HTTP API:
//
//	GET  /healthz            liveness + snapshot stats
//	GET  /entities/{id}      one integrated entity with fused values
//	GET  /search?q=&limit=   keyword search over titles + fused values
//	POST /resolve            score a new record against the entities
//	GET  /similar/{id}?k=    top-k similar entities
//	POST /reindex            admin: queue a background rebuild (429 when full)
//	GET  /metrics            obs snapshot as text
//
// Every handler reads one atomic snapshot load and runs lock-free on
// its immutable indexes, so the handler set is safe for unbounded
// concurrent use while reindexes swap snapshots underneath it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /entities/{id}", s.instrument("entity", s.handleEntity))
	mux.HandleFunc("GET /search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("POST /resolve", s.instrument("resolve", s.handleResolve))
	mux.HandleFunc("GET /similar/{id}", s.instrument("similar", s.handleSimilar))
	mux.HandleFunc("POST /reindex", s.instrument("reindex", s.handleReindex))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter records the response code for the instrumentation
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request/error counters and latency
// timers, per endpoint and in aggregate.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := s.reg()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		d := time.Since(t0)
		reg.Counter("serve.requests").Inc()
		reg.Counter("serve." + name + ".requests").Inc()
		if sw.code >= 400 {
			reg.Counter("serve." + name + ".errors").Inc()
		}
		reg.Timer("serve.latency").Observe(d)
		reg.Timer("serve." + name + ".latency").Observe(d)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// EntityJSON is the wire form of one integrated entity. Values are
// rendered through data.Value.String so the payload is stable and
// client-friendly regardless of the fused value kinds.
type EntityJSON struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Records    []string           `json:"records"`
	Sources    []string           `json:"sources"`
	Values     map[string]string  `json:"values,omitempty"`
	Confidence map[string]float64 `json:"confidence,omitempty"`
}

func entityJSON(e *core.Entity) EntityJSON {
	out := EntityJSON{
		ID:      e.ID,
		Title:   e.Title,
		Records: e.Records,
		Sources: e.Sources,
	}
	if len(e.Values) > 0 {
		out.Values = make(map[string]string, len(e.Values))
		for attr, v := range e.Values {
			out.Values[attr] = v.String()
		}
		out.Confidence = e.Confidence
	}
	return out
}

// HitJSON is the wire form of one scored hit.
type HitJSON struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Score   float64 `json:"score"`
	Records int     `json:"records"`
	Sources int     `json:"sources"`
}

func hitsJSON(hits []core.Hit) []HitJSON {
	out := make([]HitJSON, len(hits))
	for i, h := range hits {
		out[i] = HitJSON{
			ID:      h.Entity.ID,
			Title:   h.Entity.Title,
			Score:   h.Score,
			Records: len(h.Entity.Records),
			Sources: len(h.Entity.Sources),
		}
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"entities":    snap.Len(),
		"swaps":       s.Swaps(),
		"queue_depth": len(s.jobs),
		"uptime_s":    int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	e, ok := s.Snapshot().Entity(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such entity %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, entityJSON(e))
}

// limitParam parses an integer query parameter with the shared limit
// contract: absent means 0 (the core default applies), junk is a 400,
// and values above MaxLimit clamp rather than error.
func (s *Server) limitParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: want an integer", name, raw)
	}
	if n > s.cfg.MaxLimit {
		n = s.cfg.MaxLimit
	}
	return n, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	limit, err := s.limitParam(r, "limit")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hits, err := s.Snapshot().Search(q, limit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q, "hits": hitsJSON(hits)})
}

// resolveRequest is the /resolve body: raw attribute values (parsed
// with data.Parse, so "42" resolves as a number) plus an optional
// candidate count.
type resolveRequest struct {
	Values map[string]string `json:"values"`
	K      int               `json:"k,omitempty"`
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req resolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Values) == 0 {
		writeErr(w, http.StatusBadRequest, "empty record: provide values")
		return
	}
	if req.K > s.cfg.MaxLimit {
		req.K = s.cfg.MaxLimit
	}
	rec := data.NewRecord("__query__", "__client__")
	for attr, raw := range req.Values {
		rec.Set(attr, data.Parse(raw))
	}
	hits, err := s.Snapshot().Resolve(rec, req.K)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := map[string]any{
		"match":      false,
		"candidates": hitsJSON(hits),
	}
	if len(hits) > 0 {
		resp["best"] = entityJSON(hits[0].Entity)
		resp["score"] = hits[0].Score
		resp["match"] = hits[0].Score >= s.cfg.MatchThreshold
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	k, err := s.limitParam(r, "k")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := r.PathValue("id")
	hits, err := s.Snapshot().Similar(id, k)
	switch {
	case errors.Is(err, core.ErrNoSuchEntity):
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "hits": hitsJSON(hits)})
}

func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	if s.rebuild == nil {
		writeErr(w, http.StatusServiceUnavailable, "reindex is not configured")
		return
	}
	queued, depth := s.TryReindex()
	if !queued {
		writeErr(w, http.StatusTooManyRequests, "reindex queue full (depth %d)", depth)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "queue_depth": depth})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.reg().Snapshot().Text())
}
