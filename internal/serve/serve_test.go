package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

func testReport(t *testing.T) *core.Report {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 71, NumEntities: 40})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 72, NumSources: 10, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	rep, err := core.New(core.Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// newTestServer builds a server over the deterministic test dataset
// whose rebuild re-snapshots the same report — so every swap serves
// identical data, which the byte-identity test relies on.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rebuild := func(ctx context.Context) (*core.Snapshot, error) {
		return core.BuildSnapshot(rep)
	}
	srv, err := New(snap, rebuild, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		Status   string `json:"status"`
		Entities int    `json:"entities"`
		Swaps    int64  `json:"swaps"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Entities != srv.Snapshot().Len() || h.Swaps != 0 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestEntityEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	want := srv.Snapshot().Entities()[0]
	code, body := get(t, ts.URL+"/entities/"+want.ID)
	if code != http.StatusOK {
		t.Fatalf("entity: %d %s", code, body)
	}
	var e EntityJSON
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.ID != want.ID || e.Title != want.Title || len(e.Records) != len(want.Records) {
		t.Errorf("entity = %+v, want %s %q", e, want.ID, want.Title)
	}
	for attr, v := range want.Values {
		if e.Values[attr] != v.String() {
			t.Errorf("value %s = %q, want %q", attr, e.Values[attr], v.String())
		}
	}
	for _, id := range []string{"nope", "e01", "e999999"} {
		if code, _ := get(t, ts.URL+"/entities/"+id); code != http.StatusNotFound {
			t.Errorf("entities/%s: %d, want 404", id, code)
		}
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxLimit: 5})
	q := srv.Snapshot().Entities()[0].Title
	code, body := get(t, ts.URL+"/search?q="+strings.ReplaceAll(q, " ", "+"))
	if code != http.StatusOK {
		t.Fatalf("search: %d %s", code, body)
	}
	var r struct {
		Query string    `json:"query"`
		Hits  []HitJSON `json:"hits"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Query != q || len(r.Hits) == 0 {
		t.Fatalf("search %q: %d hits", q, len(r.Hits))
	}
	if r.Hits[0].Score <= 0 || r.Hits[0].Title == "" {
		t.Errorf("degenerate top hit %+v", r.Hits[0])
	}
	// Validation and clamping.
	for _, bad := range []string{"/search", "/search?q=" + q + "&limit=-3", "/search?q=x&limit=zzz"} {
		if code, _ := get(t, ts.URL+bad); code != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", bad, code)
		}
	}
	code, body = get(t, ts.URL+"/search?q="+strings.ReplaceAll(q, " ", "+")+"&limit=1000")
	if code != http.StatusOK {
		t.Fatalf("clamped search: %d", code)
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) > 5 {
		t.Errorf("limit=1000 returned %d hits, want clamp to MaxLimit 5", len(r.Hits))
	}
}

func TestResolveEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	target := srv.Snapshot().Entities()[0]
	req := fmt.Sprintf(`{"values":{"title":%q},"k":3}`, target.Title)
	code, body := post(t, ts.URL+"/resolve", req)
	if code != http.StatusOK {
		t.Fatalf("resolve: %d %s", code, body)
	}
	var r struct {
		Match      bool       `json:"match"`
		Score      float64    `json:"score"`
		Best       EntityJSON `json:"best"`
		Candidates []HitJSON  `json:"candidates"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) == 0 {
		t.Fatal("no resolve candidates for an exact title copy")
	}
	found := false
	for _, c := range r.Candidates {
		if c.ID == target.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("target %s missing from candidates for its own title", target.ID)
	}
	// Validation.
	for _, bad := range []string{`{"values":{}}`, `{`, `{"k":3}`} {
		if code, _ := post(t, ts.URL+"/resolve", bad); code != http.StatusBadRequest {
			t.Errorf("resolve %s: %d, want 400", bad, code)
		}
	}
}

func TestSimilarEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	id := srv.Snapshot().Entities()[0].ID
	code, body := get(t, ts.URL+"/similar/"+id+"?k=3")
	if code != http.StatusOK {
		t.Fatalf("similar: %d %s", code, body)
	}
	var r struct {
		ID   string    `json:"id"`
		Hits []HitJSON `json:"hits"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.ID != id || len(r.Hits) > 3 {
		t.Errorf("similar = id %s, %d hits", r.ID, len(r.Hits))
	}
	for _, h := range r.Hits {
		if h.ID == id {
			t.Error("similar returned the entity itself")
		}
	}
	if code, _ := get(t, ts.URL+"/similar/nope"); code != http.StatusNotFound {
		t.Errorf("similar/nope: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/similar/"+id+"?k=-1"); code != http.StatusBadRequest {
		t.Errorf("similar k=-1: %d, want 400", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Obs: reg})
	get(t, ts.URL+"/healthz")
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !bytes.Contains(body, []byte("serve.requests")) {
		t.Errorf("metrics missing serve.requests:\n%s", body)
	}
}

func TestReindexNotConfigured(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(snap, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := post(t, ts.URL+"/reindex", ""); code != http.StatusServiceUnavailable {
		t.Errorf("reindex without rebuild: %d, want 503", code)
	}
}

// TestReindexQueueFull429 pins the backpressure contract: with the
// worker parked inside a rebuild and the depth-1 queue already holding
// one pending job, a third reindex must be rejected with 429.
func TestReindexQueueFull429(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	rebuild := func(ctx context.Context) (*core.Snapshot, error) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return core.BuildSnapshot(rep)
	}
	srv, err := New(snap, rebuild, Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// #1: accepted; wait until the worker has dequeued it and is
	// parked inside the rebuild, so the queue is empty again.
	if code, body := post(t, ts.URL+"/reindex", ""); code != http.StatusAccepted {
		t.Fatalf("reindex #1: %d %s", code, body)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the rebuild")
	}
	// #2: fills the depth-1 queue.
	if code, body := post(t, ts.URL+"/reindex", ""); code != http.StatusAccepted {
		t.Fatalf("reindex #2: %d %s", code, body)
	}
	// #3: queue full — the backpressure path.
	code, body := post(t, ts.URL+"/reindex", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("reindex #3: %d %s, want 429", code, body)
	}
	if !bytes.Contains(body, []byte("queue full")) {
		t.Errorf("429 body %s lacks explanation", body)
	}

	close(release)
	waitSwaps(t, srv, 2)
}

func waitSwaps(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Swaps() < want {
		if time.Now().After(deadline) {
			t.Fatalf("swaps stuck at %d, want %d", srv.Swaps(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSearchIdenticalAfterReindex pins the determinism contract:
// reindexing over identical data must produce byte-identical search
// responses.
func TestSearchIdenticalAfterReindex(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	q := srv.Snapshot().Entities()[0].Title
	url := ts.URL + "/search?q=" + strings.ReplaceAll(q, " ", "+") + "&limit=20"
	code, before := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("search before: %d", code)
	}
	if code, _ := post(t, ts.URL+"/reindex", ""); code != http.StatusAccepted {
		t.Fatal("reindex not accepted")
	}
	waitSwaps(t, srv, 1)
	code, after := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("search after: %d", code)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("search response changed across an identical-data reindex:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestConcurrentSearchDuringSwap is the race test: N goroutines read
// through the handlers while reindexes swap snapshots underneath them.
// Run with -race; any locking mistake in the snapshot swap shows up
// here.
func TestConcurrentSearchDuringSwap(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueDepth: 4})
	ents := srv.Snapshot().Entities()
	queries := []string{ents[0].Title, ents[1].Title, "camera", "pro"}

	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0:
					q := queries[(g+i)%len(queries)]
					code, body := get(t, ts.URL+"/search?q="+strings.ReplaceAll(q, " ", "+"))
					if code != http.StatusOK {
						t.Errorf("search: %d %s", code, body)
					}
				case 1:
					code, _ := get(t, ts.URL+"/entities/"+ents[(g+i)%len(ents)].ID)
					if code != http.StatusOK {
						t.Errorf("entity: %d", code)
					}
				case 2:
					code, _ := get(t, ts.URL+"/similar/"+ents[(g+i)%len(ents)].ID+"?k=3")
					if code != http.StatusOK {
						t.Errorf("similar: %d", code)
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			post(t, ts.URL+"/reindex", "")
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if srv.Swaps() == 0 {
		t.Error("no snapshot swap happened during the concurrent run")
	}
}

func TestLoadTestDriver(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	res, err := LoadTest(ts.URL, LoadConfig{
		Clients:  4,
		Requests: 10,
		Queries:  []string{srv.Snapshot().Entities()[0].Title, "camera"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 || res.Errors != 0 {
		t.Fatalf("load test: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("latency quantiles out of order: %+v", res)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %v", res.QPS)
	}
	if _, err := LoadTest(ts.URL, LoadConfig{}); err == nil {
		t.Error("load test without queries must error")
	}
}

func TestPublishSwapsSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Obs: reg})

	rep := testReport(t)
	next, err := core.BuildSnapshot(rep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Publish(next)
	if srv.Snapshot() != next {
		t.Error("Publish did not swap the served snapshot")
	}
	if srv.Swaps() != 1 {
		t.Errorf("swaps = %d, want 1", srv.Swaps())
	}
	// A nil publish is ignored: the last good snapshot keeps serving.
	srv.Publish(nil)
	if srv.Snapshot() != next || srv.Swaps() != 1 {
		t.Error("nil Publish must be a no-op")
	}
	// Readers see the published view immediately.
	code, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz after publish = %d", code)
	}
}
