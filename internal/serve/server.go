// Package serve turns a completed integration pipeline into a
// long-lived service: concurrent HTTP/JSON traffic over an immutable
// core.Snapshot (entity lookup, keyword search, record resolution,
// similar-entity queries) with an admin reindex path that rebuilds the
// snapshot in the background behind a bounded work queue and swaps it
// in atomically.
//
// The concurrency contract is the whole point: read handlers never
// take a lock — they load the current snapshot through an
// atomic.Pointer and run entirely on its immutable indexes — while at
// most one background rebuild runs at a time. Reindex requests beyond
// the queue's capacity are rejected with 429 (backpressure, not
// unbounded buffering), mirroring the api/queue/indexing split the
// system-building agenda papers advocate.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// RebuildFunc produces a fresh serving snapshot — typically by
// re-running the integration pipeline over the current dataset and
// calling core.BuildSnapshot on the report. It runs on the single
// background worker goroutine; the context is cancelled when the
// server closes.
type RebuildFunc func(ctx context.Context) (*core.Snapshot, error)

// Config controls a Server. The zero value is usable.
type Config struct {
	// QueueDepth bounds the reindex work queue; requests that arrive
	// while the queue is full are rejected with 429. Default 2.
	QueueDepth int
	// MatchThreshold is the resolve decision threshold: a /resolve
	// response reports match=true when the best candidate scores at or
	// above it. Default 0.6 (the pipeline's default match threshold).
	MatchThreshold float64
	// MaxLimit caps the limit/k query parameters. Default 100.
	MaxLimit int
	// Obs records request counters, per-endpoint latency timers and
	// queue/swap metrics (nil falls back to obs.Default(); a nil
	// default disables recording).
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2
	}
	if c.MatchThreshold == 0 {
		c.MatchThreshold = 0.6
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 100
	}
}

// Server serves integration queries over an atomically swappable
// snapshot. Construct with New, serve Handler(), and Close when done.
type Server struct {
	cfg     Config
	snap    atomic.Pointer[core.Snapshot]
	rebuild RebuildFunc

	jobs   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	swaps  atomic.Int64

	started time.Time
}

// New builds a server around an initial snapshot. rebuild may be nil,
// in which case POST /reindex reports 503; otherwise one worker
// goroutine drains the bounded reindex queue until Close.
func New(snap *core.Snapshot, rebuild RebuildFunc, cfg Config) (*Server, error) {
	if snap == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	cfg.defaults()
	s := &Server{
		cfg:     cfg,
		rebuild: rebuild,
		jobs:    make(chan struct{}, cfg.QueueDepth),
		started: time.Now(),
	}
	s.snap.Store(snap)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if rebuild != nil {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// reg resolves the server's metrics registry per call, so a process
// default installed after construction is still picked up.
func (s *Server) reg() *obs.Registry { return obs.OrDefault(s.cfg.Obs) }

// Snapshot returns the snapshot currently being served. Lock-free.
func (s *Server) Snapshot() *core.Snapshot { return s.snap.Load() }

// Swaps reports how many background rebuilds have been swapped in.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// TryReindex enqueues one background rebuild, reporting false when the
// bounded queue is full (the 429 path) and the current queue depth.
func (s *Server) TryReindex() (queued bool, depth int) {
	reg := s.reg()
	select {
	case s.jobs <- struct{}{}:
		depth = len(s.jobs)
		reg.Counter("serve.reindex_queued").Inc()
		reg.Gauge("serve.queue_depth").Set(float64(depth))
		return true, depth
	default:
		reg.Counter("serve.reindex_rejected").Inc()
		return false, len(s.jobs)
	}
}

// worker drains the reindex queue one rebuild at a time; a successful
// rebuild is swapped in atomically, a failed one keeps the old
// snapshot serving and counts serve.reindex_errors.
func (s *Server) worker() {
	defer s.wg.Done()
	reg := s.reg()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.jobs:
			reg.Gauge("serve.queue_depth").Set(float64(len(s.jobs)))
			sp := reg.StartSpan("reindex")
			t0 := time.Now()
			snap, err := s.rebuild(s.ctx)
			sp.End()
			if err != nil || snap == nil {
				if s.ctx.Err() == nil {
					reg.Counter("serve.reindex_errors").Inc()
				}
				continue
			}
			s.snap.Store(snap)
			s.swaps.Add(1)
			reg.Counter("serve.snapshot_swaps").Inc()
			reg.Timer("serve.reindex_time").Observe(time.Since(t0))
		}
	}
}

// Publish atomically swaps in an externally built snapshot — the
// streaming ingestion path, where a stream processor pushes updated
// fused entities instead of the reindex queue pulling a rebuild. It
// counts as a swap like a background rebuild would; nil snapshots are
// ignored. Safe to call concurrently with reads and with the reindex
// worker (last store wins, readers always see a complete snapshot).
func (s *Server) Publish(snap *core.Snapshot) {
	if snap == nil {
		return
	}
	s.snap.Store(snap)
	s.swaps.Add(1)
	s.reg().Counter("serve.snapshot_swaps").Inc()
}

// Close stops the background worker (cancelling any in-flight rebuild)
// and waits for it to exit. Read handlers keep working on the last
// snapshot; Close only shuts the write path down.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}
