package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives LoadTest: Clients concurrent workers each issue
// Requests search calls, rotating through Queries.
type LoadConfig struct {
	// Clients is the number of concurrent workers. Default 1.
	Clients int
	// Requests is the number of requests per client. Default 100.
	Requests int
	// Queries are the search strings to rotate through. Required.
	Queries []string
	// Obs receives the loadtest.latency timer (nil: a private registry,
	// so concurrent load tests don't pollute the process default).
	Obs *obs.Registry
}

// LoadResult summarises one load-test run. Latency quantiles come from
// the obs log₂ histogram, so they are 2x-bounded estimates.
type LoadResult struct {
	Clients  int
	Requests int
	Errors   int
	Elapsed  time.Duration
	P50      time.Duration
	P99      time.Duration
	Max      time.Duration
	QPS      float64
}

func (r LoadResult) String() string {
	return fmt.Sprintf("clients=%d requests=%d errors=%d p50=%v p99=%v max=%v qps=%.0f",
		r.Clients, r.Requests, r.Errors, r.P50, r.P99, r.Max, r.QPS)
}

// LoadTest hammers baseURL's /search endpoint with cfg.Clients
// concurrent workers and reports latency quantiles. Any non-200
// response or transport error counts as an error; the run never
// aborts early, so the error count is the full picture.
func LoadTest(baseURL string, cfg LoadConfig) (LoadResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if len(cfg.Queries) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load test needs at least one query")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	baseURL = strings.TrimSuffix(baseURL, "/")

	errs := make(chan int, cfg.Clients)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		go func(offset int) {
			nerr := 0
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < cfg.Requests; i++ {
				q := cfg.Queries[(offset+i)%len(cfg.Queries)]
				u := baseURL + "/search?q=" + url.QueryEscape(q)
				t0 := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					nerr++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reg.Timer("loadtest.latency").Observe(time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					nerr++
				}
			}
			errs <- nerr
		}(c)
	}
	res := LoadResult{Clients: cfg.Clients, Requests: cfg.Clients * cfg.Requests}
	for c := 0; c < cfg.Clients; c++ {
		res.Errors += <-errs
	}
	res.Elapsed = time.Since(start)
	if ts, ok := reg.Snapshot().Timer("loadtest.latency"); ok {
		res.P50 = ts.Quantile(0.5)
		res.P99 = ts.Quantile(0.99)
		res.Max = ts.Max
	}
	if res.Elapsed > 0 {
		res.QPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	return res, nil
}
