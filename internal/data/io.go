package data

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonDataset is the wire form of a Dataset.
type jsonDataset struct {
	Sources []jsonSource `json:"sources"`
	Records []jsonRecord `json:"records"`
}

type jsonSource struct {
	ID           string   `json:"id"`
	Name         string   `json:"name,omitempty"`
	TrueAccuracy float64  `json:"true_accuracy,omitempty"`
	CopiesFrom   []string `json:"copies_from,omitempty"`
}

type jsonRecord struct {
	ID       string            `json:"id"`
	SourceID string            `json:"source_id"`
	EntityID string            `json:"entity_id,omitempty"`
	Fields   map[string]string `json:"fields"`
}

// WriteJSON serialises the dataset as a single JSON document. Values are
// written in their Parse-able string form.
func (d *Dataset) WriteJSON(w io.Writer) error {
	doc := jsonDataset{}
	for _, s := range d.Sources() {
		doc.Sources = append(doc.Sources, jsonSource{
			ID: s.ID, Name: s.Name, TrueAccuracy: s.TrueAccuracy, CopiesFrom: s.CopiesFrom,
		})
	}
	for _, r := range d.Records() {
		jr := jsonRecord{ID: r.ID, SourceID: r.SourceID, EntityID: r.EntityID,
			Fields: make(map[string]string, len(r.Fields))}
		for a, v := range r.Fields {
			jr.Fields[a] = v.String()
		}
		doc.Records = append(doc.Records, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a dataset previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var doc jsonDataset
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("data: decoding dataset JSON: %w", err)
	}
	d := NewDataset()
	for _, s := range doc.Sources {
		if err := d.AddSource(&Source{ID: s.ID, Name: s.Name,
			TrueAccuracy: s.TrueAccuracy, CopiesFrom: s.CopiesFrom}); err != nil {
			return nil, err
		}
	}
	for _, jr := range doc.Records {
		rec := NewRecord(jr.ID, jr.SourceID)
		rec.EntityID = jr.EntityID
		for a, raw := range jr.Fields {
			rec.Set(a, Parse(raw))
		}
		if err := d.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// WriteCSV writes the records as a flat CSV table with columns
// record_id, source_id, entity_id followed by the union of attribute
// names in sorted order. Missing values are empty cells.
func (d *Dataset) WriteCSV(w io.Writer) error {
	attrSet := map[string]bool{}
	for _, r := range d.Records() {
		for a := range r.Fields {
			attrSet[a] = true
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	header := append([]string{"record_id", "source_id", "entity_id"}, attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing CSV header: %w", err)
	}
	for _, r := range d.Records() {
		row := []string{r.ID, r.SourceID, r.EntityID}
		for _, a := range attrs {
			row = append(row, r.Get(a).String())
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing CSV row for %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV. Sources are synthesised
// from the distinct source_id values.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: CSV has no header row")
	}
	header := rows[0]
	if len(header) < 3 || header[0] != "record_id" || header[1] != "source_id" || header[2] != "entity_id" {
		return nil, fmt.Errorf("data: CSV header must start with record_id,source_id,entity_id")
	}
	d := NewDataset()
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("data: CSV row has %d cells, want %d", len(row), len(header))
		}
		srcID := row[1]
		if d.Source(srcID) == nil {
			if err := d.AddSource(&Source{ID: srcID, Name: srcID}); err != nil {
				return nil, err
			}
		}
		rec := NewRecord(row[0], srcID)
		rec.EntityID = row[2]
		for i := 3; i < len(row); i++ {
			rec.Set(header[i], Parse(row[i]))
		}
		if err := d.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	return d, nil
}
