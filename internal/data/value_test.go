package data

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsNormaliseMissing(t *testing.T) {
	if !String("").IsNull() {
		t.Error("String(\"\") should be null")
	}
	if !Number(math.NaN()).IsNull() {
		t.Error("Number(NaN) should be null")
	}
	if !Time(time.Time{}).IsNull() {
		t.Error("Time(zero) should be null")
	}
	if Null().Kind != KindNull {
		t.Error("Null() must have KindNull")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Number(1.5), Number(1.5), true},
		{Number(1.5), Number(2.5), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Null(), Null(), true},
		{String("1"), Number(1), false},
		{Time(time.Unix(10, 0)), Time(time.Unix(10, 0).UTC()), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v,%v)=%v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueStringRoundTripThroughParse(t *testing.T) {
	vals := []Value{
		String("hello world"),
		Number(42),
		Number(-3.25),
		Bool(true),
		Bool(false),
		Time(time.Date(2020, 5, 4, 3, 2, 1, 0, time.UTC)),
		Null(),
	}
	for _, v := range vals {
		got := Parse(v.String())
		if !got.Equal(v) {
			t.Errorf("Parse(%q) = %v, want %v", v.String(), got, v)
		}
	}
}

func TestParseClassifiesKinds(t *testing.T) {
	cases := []struct {
		in   string
		kind ValueKind
	}{
		{"", KindNull},
		{"   ", KindNull},
		{"3.14", KindNumber},
		{"-7", KindNumber},
		{"true", KindBool},
		{"FALSE", KindBool},
		{"2021-01-02T03:04:05Z", KindTime},
		{"galaxy s21", KindString},
		{"NaN", KindString}, // NaN must not become a number
	}
	for _, c := range cases {
		if got := Parse(c.in).Kind; got != c.kind {
			t.Errorf("Parse(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	a, b := String("true"), Bool(true)
	if a.Key() == b.Key() {
		t.Error("string \"true\" and bool true must have distinct keys")
	}
	if String("1").Key() == Number(1).Key() {
		t.Error("string \"1\" and number 1 must have distinct keys")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry and consistency with Equal, property-checked over
	// number values.
	f := func(x, y float64) bool {
		a, b := Number(x), Number(y)
		if a.IsNull() || b.IsNull() { // NaN inputs
			return true
		}
		c1, c2 := Compare(a, b), Compare(b, a)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareOrdersKinds(t *testing.T) {
	if Compare(Null(), String("a")) >= 0 {
		t.Error("null must sort before strings")
	}
	if Compare(String("a"), String("b")) >= 0 {
		t.Error("a < b")
	}
	if Compare(Time(time.Unix(1, 0)), Time(time.Unix(2, 0))) >= 0 {
		t.Error("earlier time must sort first")
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("false < true")
	}
}
