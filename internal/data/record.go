package data

import (
	"fmt"
	"sort"
	"strings"
)

// Record is one source's description of one real-world entity: a bag of
// attribute → value fields plus provenance. EntityID carries the
// generator's ground truth when known and is never consulted by the
// pipeline itself — only by evaluation code.
type Record struct {
	ID       string           // globally unique record identifier
	SourceID string           // owning source
	EntityID string           // ground-truth entity id ("" if unknown)
	Fields   map[string]Value // attribute name → value
}

// NewRecord allocates a record with an empty field map.
func NewRecord(id, sourceID string) *Record {
	return &Record{ID: id, SourceID: sourceID, Fields: map[string]Value{}}
}

// Set stores a field, dropping null values so that "absent" and "null"
// coincide. It returns the record for chaining.
func (r *Record) Set(attr string, v Value) *Record {
	if r.Fields == nil {
		r.Fields = map[string]Value{}
	}
	if v.IsNull() {
		delete(r.Fields, attr)
		return r
	}
	r.Fields[attr] = v
	return r
}

// Get returns the value of attr, or null if absent.
func (r *Record) Get(attr string) Value {
	if r.Fields == nil {
		return Null()
	}
	return r.Fields[attr]
}

// Has reports whether the record carries a non-null value for attr.
func (r *Record) Has(attr string) bool { return !r.Get(attr).IsNull() }

// Attrs returns the record's attribute names in sorted order.
func (r *Record) Attrs() []string {
	attrs := make([]string, 0, len(r.Fields))
	for a := range r.Fields {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := &Record{ID: r.ID, SourceID: r.SourceID, EntityID: r.EntityID,
		Fields: make(map[string]Value, len(r.Fields))}
	for a, v := range r.Fields {
		c.Fields[a] = v
	}
	return c
}

// String renders the record compactly for debugging.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s{", r.ID, r.SourceID)
	for i, a := range r.Attrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", a, r.Fields[a])
	}
	b.WriteByte('}')
	return b.String()
}

// Source describes one data source. TrueAccuracy and CopiesFrom are
// generator ground truth used only by evaluation and by the generator
// itself; integration code must not read them.
type Source struct {
	ID           string
	Name         string
	TrueAccuracy float64  // ground truth; 0 if unknown
	CopiesFrom   []string // ground-truth copying edges (source IDs)
}

// Pair is an unordered pair of record IDs in canonical (A < B) order.
type Pair struct{ A, B string }

// NewPair canonicalises the order of its arguments.
func NewPair(a, b string) Pair {
	if b < a {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Other returns the element of the pair that is not id ("" if id is not
// a member).
func (p Pair) Other(id string) string {
	switch id {
	case p.A:
		return p.B
	case p.B:
		return p.A
	}
	return ""
}

// ScoredPair attaches a match score to a pair.
type ScoredPair struct {
	Pair
	Score float64
}

// Cluster is a set of record IDs believed to describe one entity.
type Cluster []string

// Clustering is a partition of record IDs into clusters.
type Clustering []Cluster

// Normalize sorts members within each cluster and clusters by first
// member, yielding a canonical form for comparison and display.
func (c Clustering) Normalize() Clustering {
	out := make(Clustering, 0, len(c))
	for _, cl := range c {
		if len(cl) == 0 {
			continue
		}
		cp := append(Cluster(nil), cl...)
		sort.Strings(cp)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Pairs enumerates every intra-cluster pair in the clustering.
func (c Clustering) Pairs() []Pair {
	var out []Pair
	for _, cl := range c {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				out = append(out, NewPair(cl[i], cl[j]))
			}
		}
	}
	return out
}

// Assignment inverts the clustering into record-ID → cluster-index form.
func (c Clustering) Assignment() map[string]int {
	m := map[string]int{}
	for i, cl := range c {
		for _, id := range cl {
			m[id] = i
		}
	}
	return m
}
