package data

import (
	"fmt"
	"sort"
)

// Item identifies a data item in the fusion sense: one attribute of one
// (linked) entity, e.g. "the capacity of battery X".
type Item struct {
	Entity string // entity or cluster identifier
	Attr   string // attribute name (in the aligned/mediated schema)
}

// String renders the item as "entity.attr".
func (it Item) String() string { return it.Entity + "." + it.Attr }

// Claim is a single (item, source, value) observation: source claims
// that item has the given value.
type Claim struct {
	Item   Item
	Source string
	Value  Value
}

// ClaimSet is a collection of claims with indexes by item and by source.
// Fusion algorithms operate on ClaimSets.
type ClaimSet struct {
	claims  []Claim
	byItem  map[Item][]int
	bySrc   map[string][]int
	truth   map[Item]Value // optional ground truth for evaluation
	itemSet []Item         // deterministic item order (first appearance)
}

// NewClaimSet returns an empty claim set.
func NewClaimSet() *ClaimSet {
	return &ClaimSet{
		byItem: map[Item][]int{},
		bySrc:  map[string][]int{},
		truth:  map[Item]Value{},
	}
}

// Add appends a claim. Null values are ignored (a source that says
// nothing about an item makes no claim).
func (cs *ClaimSet) Add(c Claim) {
	if c.Value.IsNull() {
		return
	}
	idx := len(cs.claims)
	cs.claims = append(cs.claims, c)
	if _, seen := cs.byItem[c.Item]; !seen {
		cs.itemSet = append(cs.itemSet, c.Item)
	}
	cs.byItem[c.Item] = append(cs.byItem[c.Item], idx)
	cs.bySrc[c.Source] = append(cs.bySrc[c.Source], idx)
}

// SetTruth records the ground-truth value of an item (evaluation only).
func (cs *ClaimSet) SetTruth(it Item, v Value) { cs.truth[it] = v }

// Truth returns the ground-truth value of an item and whether one is known.
func (cs *ClaimSet) Truth(it Item) (Value, bool) {
	v, ok := cs.truth[it]
	return v, ok
}

// Len returns the number of claims.
func (cs *ClaimSet) Len() int { return len(cs.claims) }

// NumItems returns the number of distinct data items.
func (cs *ClaimSet) NumItems() int { return len(cs.itemSet) }

// Items returns the distinct items in first-appearance order.
func (cs *ClaimSet) Items() []Item {
	return append([]Item(nil), cs.itemSet...)
}

// Sources returns the distinct claiming source IDs, sorted.
func (cs *ClaimSet) Sources() []string {
	out := make([]string, 0, len(cs.bySrc))
	for s := range cs.bySrc {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ItemClaims returns the claims about one item, in insertion order.
func (cs *ClaimSet) ItemClaims(it Item) []Claim {
	idxs := cs.byItem[it]
	out := make([]Claim, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, cs.claims[i])
	}
	return out
}

// SourceClaims returns the claims made by one source, in insertion order.
func (cs *ClaimSet) SourceClaims(src string) []Claim {
	idxs := cs.bySrc[src]
	out := make([]Claim, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, cs.claims[i])
	}
	return out
}

// All returns a copy of every claim in insertion order.
func (cs *ClaimSet) All() []Claim { return append([]Claim(nil), cs.claims...) }

// Validate checks internal invariants; it is used by tests.
func (cs *ClaimSet) Validate() error {
	n := 0
	for it, idxs := range cs.byItem {
		for _, i := range idxs {
			if cs.claims[i].Item != it {
				return fmt.Errorf("data: claim %d indexed under wrong item", i)
			}
		}
		n += len(idxs)
	}
	if n != len(cs.claims) {
		return fmt.Errorf("data: item index covers %d of %d claims", n, len(cs.claims))
	}
	return nil
}

// ClaimsFromClusters converts linked records into a claim set: each
// cluster becomes an entity whose ID is the cluster index rendered as
// "e<i>" (or the majority ground-truth EntityID when carry is true —
// used when building evaluation claim sets).
func ClaimsFromClusters(d *Dataset, clusters Clustering, attrs []string) *ClaimSet {
	cs := NewClaimSet()
	norm := clusters.Normalize()
	for ci, cl := range norm {
		ent := fmt.Sprintf("e%d", ci)
		for _, rid := range cl {
			r := d.Record(rid)
			if r == nil {
				continue
			}
			for _, a := range attrs {
				if v := r.Get(a); !v.IsNull() {
					cs.Add(Claim{Item: Item{Entity: ent, Attr: a}, Source: r.SourceID, Value: v})
				}
			}
		}
	}
	return cs
}
