package data

import (
	"bytes"
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	for _, sid := range []string{"s1", "s2"} {
		if err := d.AddSource(&Source{ID: sid, Name: "source " + sid}); err != nil {
			t.Fatal(err)
		}
	}
	recs := []*Record{
		NewRecord("r1", "s1").Set("title", String("iphone 12")).Set("price", Number(799)),
		NewRecord("r2", "s1").Set("title", String("galaxy s21")).Set("price", Number(699)),
		NewRecord("r3", "s2").Set("title", String("iPhone-12")).Set("color", String("black")),
	}
	recs[0].EntityID = "e1"
	recs[1].EntityID = "e2"
	recs[2].EntityID = "e1"
	for _, r := range recs {
		if err := d.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDatasetIndexes(t *testing.T) {
	d := buildSample(t)
	if d.NumSources() != 2 || d.NumRecords() != 3 {
		t.Fatalf("got %d sources, %d records", d.NumSources(), d.NumRecords())
	}
	if got := len(d.SourceRecords("s1")); got != 2 {
		t.Errorf("s1 should own 2 records, got %d", got)
	}
	if d.Record("r3").Get("color").Str != "black" {
		t.Error("r3 color lookup failed")
	}
	if d.Record("nope") != nil {
		t.Error("missing record should be nil")
	}
}

func TestDatasetRejectsBadInput(t *testing.T) {
	d := NewDataset()
	if err := d.AddSource(&Source{}); err == nil {
		t.Error("empty source ID must be rejected")
	}
	if err := d.AddRecord(NewRecord("r", "ghost")); err == nil {
		t.Error("record with unknown source must be rejected")
	}
	_ = d.AddSource(&Source{ID: "s"})
	_ = d.AddRecord(NewRecord("r", "s"))
	if err := d.AddRecord(NewRecord("r", "s")); err == nil {
		t.Error("duplicate record ID must be rejected")
	}
}

func TestDatasetRemoveRecord(t *testing.T) {
	d := buildSample(t)
	if !d.RemoveRecord("r1") {
		t.Fatal("r1 should be removable")
	}
	if d.RemoveRecord("r1") {
		t.Error("second removal should report absence")
	}
	if d.NumRecords() != 2 {
		t.Errorf("want 2 records after removal, got %d", d.NumRecords())
	}
	for _, r := range d.SourceRecords("s1") {
		if r.ID == "r1" {
			t.Error("r1 still indexed under s1")
		}
	}
}

func TestDatasetAttributes(t *testing.T) {
	d := buildSample(t)
	attrs := d.Attributes()
	want := map[string]int{"color": 1, "price": 2, "title": 3}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs, want %d", len(attrs), len(want))
	}
	for _, ac := range attrs {
		if want[ac.Attr] != ac.Count {
			t.Errorf("attr %s count = %d, want %d", ac.Attr, ac.Count, want[ac.Attr])
		}
	}
}

func TestGroundTruthClusters(t *testing.T) {
	d := buildSample(t)
	gt := d.GroundTruthClusters()
	if len(gt) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(gt))
	}
	// r1 and r3 share e1.
	found := false
	for _, cl := range gt {
		if len(cl) == 2 && cl[0] == "r1" && cl[1] == "r3" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected {r1,r3} cluster, got %v", gt)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRecords() != d.NumRecords() || d2.NumSources() != d.NumSources() {
		t.Fatalf("round trip lost data: %d/%d records, %d/%d sources",
			d2.NumRecords(), d.NumRecords(), d2.NumSources(), d.NumSources())
	}
	if got := d2.Record("r1").Get("price"); !got.Equal(Number(799)) {
		t.Errorf("r1 price after round trip = %v", got)
	}
	if d2.Record("r3").EntityID != "e1" {
		t.Error("entity ID lost in round trip")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := buildSample(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRecords() != 3 {
		t.Fatalf("want 3 records, got %d", d2.NumRecords())
	}
	if got := d2.Record("r2").Get("price"); !got.Equal(Number(699)) {
		t.Errorf("r2 price = %v", got)
	}
	if d2.Record("r3").Has("price") {
		t.Error("r3 must not gain a price from the empty cell")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n"))
	if err == nil {
		t.Error("bad header must be rejected")
	}
}

func TestPairCanonicalisation(t *testing.T) {
	if NewPair("b", "a") != NewPair("a", "b") {
		t.Error("pairs must be order-insensitive")
	}
	p := NewPair("x", "y")
	if p.Other("x") != "y" || p.Other("y") != "x" || p.Other("z") != "" {
		t.Error("Other misbehaves")
	}
}

func TestClusteringNormalizeAndPairs(t *testing.T) {
	c := Clustering{{"b", "a"}, {}, {"c"}}
	n := c.Normalize()
	if len(n) != 2 {
		t.Fatalf("empty cluster should be dropped, got %v", n)
	}
	if n[0][0] != "a" || n[0][1] != "b" {
		t.Errorf("cluster not sorted: %v", n[0])
	}
	pairs := n.Pairs()
	if len(pairs) != 1 || pairs[0] != NewPair("a", "b") {
		t.Errorf("pairs = %v", pairs)
	}
	asg := n.Assignment()
	if asg["a"] != asg["b"] || asg["a"] == asg["c"] {
		t.Error("assignment inconsistent with clusters")
	}
}

func TestClaimSet(t *testing.T) {
	cs := NewClaimSet()
	it := Item{Entity: "e1", Attr: "price"}
	cs.Add(Claim{Item: it, Source: "s1", Value: Number(10)})
	cs.Add(Claim{Item: it, Source: "s2", Value: Number(12)})
	cs.Add(Claim{Item: Item{Entity: "e1", Attr: "color"}, Source: "s1", Value: String("red")})
	cs.Add(Claim{Item: it, Source: "s3", Value: Null()}) // ignored

	if cs.Len() != 3 {
		t.Fatalf("want 3 claims, got %d", cs.Len())
	}
	if cs.NumItems() != 2 {
		t.Fatalf("want 2 items, got %d", cs.NumItems())
	}
	if got := len(cs.ItemClaims(it)); got != 2 {
		t.Errorf("item claims = %d, want 2", got)
	}
	if got := len(cs.SourceClaims("s1")); got != 2 {
		t.Errorf("s1 claims = %d, want 2", got)
	}
	if err := cs.Validate(); err != nil {
		t.Error(err)
	}
	cs.SetTruth(it, Number(10))
	if v, ok := cs.Truth(it); !ok || !v.Equal(Number(10)) {
		t.Error("truth lookup failed")
	}
}

func TestClaimsFromClusters(t *testing.T) {
	d := buildSample(t)
	clusters := Clustering{{"r1", "r3"}, {"r2"}}
	cs := ClaimsFromClusters(d, clusters, []string{"title", "price", "color"})
	// r1 contributes title+price, r3 title+color, r2 title+price: 6 claims.
	if cs.Len() != 6 {
		t.Fatalf("want 6 claims, got %d", cs.Len())
	}
	if err := cs.Validate(); err != nil {
		t.Error(err)
	}
}
