package data

import (
	"fmt"
	"sort"
)

// Dataset is the unit of work for the pipeline: a set of sources and the
// records they contribute, with fast lookup indexes. A Dataset is built
// once and treated as immutable by pipeline stages; incremental
// operation appends via AddRecord/AddSource.
type Dataset struct {
	sources map[string]*Source
	records map[string]*Record
	bySrc   map[string][]string // source ID → record IDs, insertion order
	order   []string            // record IDs in insertion order
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		sources: map[string]*Source{},
		records: map[string]*Record{},
		bySrc:   map[string][]string{},
	}
}

// AddSource registers a source. Re-adding an existing ID replaces its
// metadata but keeps its records.
func (d *Dataset) AddSource(s *Source) error {
	if s == nil || s.ID == "" {
		return fmt.Errorf("data: source must have a non-empty ID")
	}
	d.sources[s.ID] = s
	return nil
}

// AddRecord inserts a record. The record's source must already exist and
// the record ID must be fresh.
func (d *Dataset) AddRecord(r *Record) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("data: record must have a non-empty ID")
	}
	if _, ok := d.sources[r.SourceID]; !ok {
		return fmt.Errorf("data: record %q references unknown source %q", r.ID, r.SourceID)
	}
	if _, dup := d.records[r.ID]; dup {
		return fmt.Errorf("data: duplicate record ID %q", r.ID)
	}
	d.records[r.ID] = r
	d.bySrc[r.SourceID] = append(d.bySrc[r.SourceID], r.ID)
	d.order = append(d.order, r.ID)
	return nil
}

// RemoveRecord deletes a record by ID; it reports whether it was present.
func (d *Dataset) RemoveRecord(id string) bool {
	r, ok := d.records[id]
	if !ok {
		return false
	}
	delete(d.records, id)
	d.bySrc[r.SourceID] = deleteString(d.bySrc[r.SourceID], id)
	d.order = deleteString(d.order, id)
	return true
}

func deleteString(s []string, v string) []string {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Source returns the source with the given ID, or nil.
func (d *Dataset) Source(id string) *Source { return d.sources[id] }

// Record returns the record with the given ID, or nil.
func (d *Dataset) Record(id string) *Record { return d.records[id] }

// NumSources returns the number of registered sources.
func (d *Dataset) NumSources() int { return len(d.sources) }

// NumRecords returns the number of records.
func (d *Dataset) NumRecords() int { return len(d.records) }

// Sources returns all sources sorted by ID.
func (d *Dataset) Sources() []*Source {
	out := make([]*Source, 0, len(d.sources))
	for _, s := range d.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Records returns all records in insertion order.
func (d *Dataset) Records() []*Record {
	out := make([]*Record, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.records[id])
	}
	return out
}

// SourceRecords returns the records of one source in insertion order.
func (d *Dataset) SourceRecords(sourceID string) []*Record {
	ids := d.bySrc[sourceID]
	out := make([]*Record, 0, len(ids))
	for _, id := range ids {
		out = append(out, d.records[id])
	}
	return out
}

// Attributes returns every attribute name appearing in any record,
// sorted, with its occurrence count.
func (d *Dataset) Attributes() []AttrCount {
	counts := map[string]int{}
	for _, id := range d.order {
		for a := range d.records[id].Fields {
			counts[a]++
		}
	}
	out := make([]AttrCount, 0, len(counts))
	for a, n := range counts {
		out = append(out, AttrCount{Attr: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// AttrCount pairs an attribute name with its record-occurrence count.
type AttrCount struct {
	Attr  string
	Count int
}

// GroundTruthClusters groups record IDs by ground-truth EntityID.
// Records with empty EntityID are skipped. Used only by evaluation.
func (d *Dataset) GroundTruthClusters() Clustering {
	byEnt := map[string][]string{}
	for _, id := range d.order {
		r := d.records[id]
		if r.EntityID == "" {
			continue
		}
		byEnt[r.EntityID] = append(byEnt[r.EntityID], id)
	}
	out := make(Clustering, 0, len(byEnt))
	for _, ids := range byEnt {
		out = append(out, ids)
	}
	return out.Normalize()
}

// Merge copies every source and record of other into d. Record-ID
// collisions are an error.
func (d *Dataset) Merge(other *Dataset) error {
	for _, s := range other.Sources() {
		if err := d.AddSource(s); err != nil {
			return err
		}
	}
	for _, r := range other.Records() {
		if err := d.AddRecord(r); err != nil {
			return err
		}
	}
	return nil
}
