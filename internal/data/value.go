// Package data defines the shared data model for the big-data-integration
// pipeline: typed values, records, sources, datasets, claims, match pairs
// and clusterings. Every other package in the module builds on these types.
//
// The model follows the ICDE 2013 "Big Data Integration" tutorial framing:
// a dataset is a collection of sources, each source contributes records,
// each record describes one real-world entity through attribute/value
// fields, and fusion reasons over claims — (data item, source, value)
// triples where a data item is a particular attribute of a particular
// entity.
package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ValueKind enumerates the dynamic type of a Value.
type ValueKind int

// The supported value kinds.
const (
	KindNull ValueKind = iota
	KindString
	KindNumber
	KindBool
	KindTime
)

// String returns the lower-case kind name ("null", "string", ...).
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is null.
// Values are small and intended to be passed by value.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool
	Time time.Time
}

// Null returns the null value.
func Null() Value { return Value{} }

// String wraps a string. Empty strings are normalised to null so that
// "missing" has a single representation throughout the pipeline.
func String(s string) Value {
	if s == "" {
		return Null()
	}
	return Value{Kind: KindString, Str: s}
}

// Number wraps a float64. NaN is normalised to null.
func Number(f float64) Value {
	if math.IsNaN(f) {
		return Null()
	}
	return Value{Kind: KindNumber, Num: f}
}

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Time wraps a time.Time. The zero time is normalised to null.
func Time(t time.Time) Value {
	if t.IsZero() {
		return Null()
	}
	return Value{Kind: KindTime, Time: t}
}

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Equal reports whether two values have the same kind and payload.
// Numbers compare exactly; use similarity metrics for fuzzy comparison.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindString:
		return v.Str == w.Str
	case KindNumber:
		return v.Num == w.Num
	case KindBool:
		return v.Bool == w.Bool
	case KindTime:
		return v.Time.Equal(w.Time)
	}
	return false
}

// String renders the value as a human-readable string. Null renders as "".
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.Str
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindTime:
		return v.Time.Format(time.RFC3339)
	}
	return ""
}

// Key renders the value as a canonical, kind-prefixed string usable as a
// map key. Distinct values of different kinds never collide.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "∅"
	case KindString:
		return "s:" + v.Str
	case KindNumber:
		return "n:" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.Bool)
	case KindTime:
		return "t:" + v.Time.UTC().Format(time.RFC3339Nano)
	}
	return "?"
}

// Parse converts a raw string to the most specific Value it can:
// number, bool, RFC3339 time, else string. Empty input parses to null.
func Parse(raw string) Value {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Null()
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return Number(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return Time(t)
	}
	return String(s)
}

// Compare orders values: nulls first, then by kind, then by payload.
// It returns -1, 0 or +1 and induces a total order usable for sorting.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(a.Str, b.Str)
	case KindNumber:
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !a.Bool && b.Bool:
			return -1
		case a.Bool && !b.Bool:
			return 1
		}
		return 0
	case KindTime:
		switch {
		case a.Time.Before(b.Time):
			return -1
		case a.Time.After(b.Time):
			return 1
		}
		return 0
	}
	return 0
}
