package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
)

func testWeb(t *testing.T, dirt int, identRate float64) *datagen.Web {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 71, NumEntities: 40})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 72, NumSources: 10, DirtLevel: dirt,
		IdentifierRate: identRate, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
}

func TestPipelineLinkageFirstEndToEnd(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates == 0 || len(rep.Matched) == 0 {
		t.Fatalf("no candidates/matches: %d/%d", rep.Candidates, len(rep.Matched))
	}
	// Linkage quality against ground truth.
	prf := eval.Clusters(rep.Clusters, web.Dataset.GroundTruthClusters())
	if prf.F1 < 0.8 {
		t.Errorf("linkage F1 = %f, want >= 0.8 (%v)", prf.F1, prf)
	}
	if rep.Schema == nil || len(rep.Schema.Attrs) == 0 {
		t.Fatal("no mediated schema")
	}
	if rep.Normalized.NumRecords() != web.Dataset.NumRecords() {
		t.Error("normalisation must preserve record count")
	}
	if rep.Claims.Len() == 0 || rep.Fusion == nil || len(rep.Fusion.Values) == 0 {
		t.Fatal("fusion produced nothing")
	}
	for _, stage := range []string{"blocking", "matching", "clustering", "alignment", "fusion"} {
		if _, ok := rep.StageTime[stage]; !ok {
			t.Errorf("missing stage timing %q", stage)
		}
	}
}

func TestPipelineSchemaFirstRuns(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{Order: SchemaFirst}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) == 0 || rep.Fusion == nil {
		t.Fatal("schema-first pipeline incomplete")
	}
	if Order(0).String() != "linkage-first" || SchemaFirst.String() != "schema-first" {
		t.Error("order names")
	}
}

func TestLinkageFirstBeatsSchemaFirstAlignment(t *testing.T) {
	// The tutorial's E14 claim: with identifiers present, linking first
	// yields better attribute alignment than aligning blind. Evaluated
	// on a single-category world so that the generator's canonical
	// schema is an unambiguous alignment ground truth (across
	// categories one source legitimately renames camera_color and
	// tv_color to different local names, which has no single correct
	// clustering).
	w := datagen.NewWorld(datagen.WorldConfig{
		Seed: 71, NumEntities: 40, Categories: []string{"camera"}, AttrsPerCat: 6,
	})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 72, NumSources: 10, DirtLevel: 1,
		IdentifierRate: 0.95, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	lf, err := New(Config{Order: LinkageFirst}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := New(Config{Order: SchemaFirst}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	lfF1 := alignmentF1(web, lf)
	sfF1 := alignmentF1(web, sf)
	if lfF1 < sfF1 {
		t.Errorf("linkage-first alignment F1 %f must be >= schema-first %f", lfF1, sfF1)
	}
	if lfF1 < 0.5 {
		t.Errorf("linkage-first alignment F1 = %f, too low", lfF1)
	}
}

// alignmentF1 scores the mediated schema against the generator's
// ground-truth dialect: two source attributes truly correspond iff they
// rename the same canonical concept. Canonical names are compared by
// suffix ("camera_color" and "tv_color" are both the concept "color":
// they share synonym pools and value domains, so clustering them is
// semantically correct).
func alignmentF1(web *datagen.Web, rep *Report) float64 {
	canonical := map[string]string{} // "src/localAttr" → canonical concept
	for _, gs := range web.Sources {
		for canon, local := range gs.Dialect.Rename {
			concept := canon
			if i := indexByte(canon, '_'); i >= 0 {
				concept = canon[i+1:]
			}
			canonical[gs.ID+"/"+local] = concept
		}
	}
	type saPair [2]string
	pred := map[saPair]bool{}
	for _, ma := range rep.Schema.Attrs {
		var keys []string
		for sa := range ma.Members {
			keys = append(keys, sa.String())
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := keys[i], keys[j]
				if b < a {
					a, b = b, a
				}
				pred[saPair{a, b}] = true
			}
		}
	}
	// Truth pairs: all cross-source attr pairs sharing a canonical name,
	// restricted to attrs that actually appear in the schema's universe.
	universe := map[string]bool{}
	for sa := range rep.Schema.Of {
		universe[sa.String()] = true
	}
	var keys []string
	for k := range universe {
		keys = append(keys, k)
	}
	truth := map[saPair]bool{}
	for i := 0; i < len(keys); i++ {
		for j := 0; j < len(keys); j++ {
			if i == j {
				continue
			}
			a, b := keys[i], keys[j]
			if b < a {
				continue
			}
			// Same-source pairs are excluded: per-source schemas are
			// consistent by assumption, so the aligner never merges
			// them and they are not part of the correspondence task.
			if a[:indexByte(a, '/')] == b[:indexByte(b, '/')] {
				continue
			}
			ca, cb := canonical[a], canonical[b]
			if ca != "" && ca == cb {
				truth[saPair{a, b}] = true
			}
		}
	}
	tp := 0
	for p := range pred {
		if truth[p] {
			tp++
		}
	}
	if len(pred) == 0 || len(truth) == 0 {
		return 0
	}
	prec := float64(tp) / float64(len(pred))
	rec := float64(tp) / float64(len(truth))
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

func TestPipelineFuserVariants(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	for _, f := range []string{"vote", "truthfinder", "accu", "popaccu", "accucopy"} {
		rep, err := New(Config{Fuser: f}).Run(web.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(rep.Fusion.Values) == 0 {
			t.Errorf("%s: no fused values", f)
		}
	}
	if _, err := BuildFuser("bogus"); err == nil {
		t.Error("unknown fuser must error")
	}
}

func TestPipelineClustererVariants(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	for _, c := range []string{"components", "center", "merge", "correlation", "swoosh"} {
		rep, err := New(Config{Clusterer: c}).Run(web.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if len(rep.Clusters) == 0 {
			t.Errorf("%s: no clusters", c)
		}
	}
}

func TestPipelineMetaBlockingReducesCandidates(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	plain, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := New(Config{MetaBlock: true}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Candidates >= plain.Candidates {
		t.Errorf("meta-blocking candidates %d must be < plain %d", meta.Candidates, plain.Candidates)
	}
	// Quality must not collapse.
	prf := eval.Clusters(meta.Clusters, web.Dataset.GroundTruthClusters())
	if prf.F1 < 0.7 {
		t.Errorf("meta-blocked linkage F1 = %f", prf.F1)
	}
}

func TestPipelineFellegiSunterMode(t *testing.T) {
	// Unsupervised Fellegi-Sunter over heterogeneous multi-category
	// sources is deliberately conservative: it stays high-precision but
	// recalls less than identifier-rule matching — which is the
	// tutorial's point about identifiers being the strongest linkage
	// signal in the product domain. Assert the precision property and a
	// sane F1 floor rather than parity with the rule matcher.
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{FellegiSunter: true}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	prf := eval.Clusters(rep.Clusters, web.Dataset.GroundTruthClusters())
	if prf.Precision < 0.85 {
		t.Errorf("FS pipeline precision = %f, want >= 0.85", prf.Precision)
	}
	if prf.F1 < 0.45 {
		t.Errorf("FS pipeline F1 = %f, want >= 0.45", prf.F1)
	}
	rule, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	rulePrf := eval.Clusters(rule.Clusters, web.Dataset.GroundTruthClusters())
	if rulePrf.F1 <= prf.F1 {
		t.Errorf("identifier rule (%f) should beat unsupervised FS (%f) here", rulePrf.F1, prf.F1)
	}
}

func TestPipelineEmptyDataset(t *testing.T) {
	if _, err := New(Config{}).Run(data.NewDataset()); err == nil {
		t.Error("empty dataset must error")
	}
	if _, err := New(Config{}).Run(nil); err == nil {
		t.Error("nil dataset must error")
	}
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func TestConfigValidate(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	// Note: a zero threshold means "use the default" and resolves before
	// validation; explicit zero is spelled ZeroThreshold. Over-range
	// values, other negatives, unknown component names and unknown stage
	// orders must all fail.
	cases := []Config{
		{Clusterer: "bogus"},
		{Fuser: "bogus"},
		{MatchThreshold: 1.5},
		{AlignThreshold: 1.7},
		{MatchThreshold: -0.2},
		{AlignThreshold: -0.2},
		{Order: Order(7)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg).Run(web.Dataset); err == nil {
			t.Errorf("case %d: invalid config must error", i)
		}
	}
	if err := (Config{Clusterer: "center", Fuser: "accu"}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{MatchThreshold: ZeroThreshold, AlignThreshold: ZeroThreshold}).Validate(); err != nil {
		t.Errorf("ZeroThreshold rejected: %v", err)
	}
}

func TestConfigThresholdSentinel(t *testing.T) {
	// Zero value resolves to the documented defaults...
	def := New(Config{}).Config()
	if def.MatchThreshold != 0.6 || def.AlignThreshold != 0.5 {
		t.Errorf("zero-value thresholds resolved to %v/%v, want 0.6/0.5",
			def.MatchThreshold, def.AlignThreshold)
	}
	// ...while ZeroThreshold pins a literal 0, which defaults() used to
	// clobber back to the default.
	zero := New(Config{MatchThreshold: ZeroThreshold, AlignThreshold: ZeroThreshold}).Config()
	if zero.MatchThreshold != 0 || zero.AlignThreshold != 0 {
		t.Errorf("ZeroThreshold resolved to %v/%v, want 0/0",
			zero.MatchThreshold, zero.AlignThreshold)
	}
	// Explicit in-range values pass through untouched.
	set := New(Config{MatchThreshold: 0.72, AlignThreshold: 0.3}).Config()
	if set.MatchThreshold != 0.72 || set.AlignThreshold != 0.3 {
		t.Errorf("explicit thresholds resolved to %v/%v, want 0.72/0.3",
			set.MatchThreshold, set.AlignThreshold)
	}
}

func TestOrderStringUnknown(t *testing.T) {
	if got := LinkageFirst.String(); got != "linkage-first" {
		t.Errorf("LinkageFirst = %q", got)
	}
	if got := SchemaFirst.String(); got != "schema-first" {
		t.Errorf("SchemaFirst = %q", got)
	}
	if got := Order(7).String(); got != "order(7)" {
		t.Errorf("Order(7) = %q, must not masquerade as a valid ordering", got)
	}
}
