package core

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// legacySearch is the pre-snapshot reference implementation: it
// re-materialises every entity and re-tokenises its text per query,
// exactly as Report.Search did before the serving snapshot. The
// snapshot path must reproduce its hits bit-for-bit.
func legacySearch(t *testing.T, rep *Report, query string, limit int) []Hit {
	t.Helper()
	ents, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if limit <= 0 {
		limit = 10
	}
	hits := make([]Hit, 0, len(ents))
	for _, e := range ents {
		text := e.Title
		for _, attr := range sortedAttrs(e.Values) {
			if v := e.Values[attr]; v.Kind == data.KindString {
				text += " " + v.Str
			}
		}
		s := 0.7*similarity.Overlap(query, text) + 0.3*similarity.Jaccard(query, text)
		if s > 0 {
			hits = append(hits, Hit{Entity: e, Score: s})
		}
	}
	sortHits := func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Entity.ID < hits[j].Entity.ID
	}
	for i := range hits {
		for j := i + 1; j < len(hits); j++ {
			if sortHits(j, i) {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

func testReport(t *testing.T) *Report {
	t.Helper()
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSnapshotSearchMatchesLegacy(t *testing.T) {
	rep := testReport(t)
	ents, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"camera", "nova", "pro 4", "zzz nothing"}
	// Every entity title is a query too: the owner must surface.
	for i, e := range ents {
		if i%5 == 0 && e.Title != "" {
			queries = append(queries, e.Title)
		}
	}
	for _, q := range queries {
		for _, limit := range []int{1, 3, 10, 1000} {
			want := legacySearch(t, rep, q, limit)
			got, err := rep.Search(q, limit)
			if err != nil {
				t.Fatalf("Search(%q, %d): %v", q, limit, err)
			}
			if len(got) != len(want) {
				t.Fatalf("Search(%q, %d): %d hits, legacy %d", q, limit, len(got), len(want))
			}
			for i := range got {
				if got[i].Entity.ID != want[i].Entity.ID || got[i].Score != want[i].Score {
					t.Fatalf("Search(%q, %d) hit %d: got (%s, %v), legacy (%s, %v)",
						q, limit, i, got[i].Entity.ID, got[i].Score, want[i].Entity.ID, want[i].Score)
				}
			}
		}
	}
}

// TestEntitiesMemoized pins the tentpole bugfix: repeated Entities and
// Search calls share one materialisation instead of rebuilding every
// entity per call.
func TestEntitiesMemoized(t *testing.T) {
	rep := testReport(t)
	a, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("Entities() re-materialised: backing arrays differ")
	}
	hits, err := rep.Search(a[0].Title, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Entity != a[int(mustEntityIndex(t, h.Entity.ID))] {
			t.Fatalf("Search returned a re-materialised entity %s", h.Entity.ID)
		}
	}
	// The warm path allocates no entities at all: returning the cached
	// slice is allocation-free.
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := rep.Entities(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Entities() allocates %v objects per call, want 0", allocs)
	}
}

func mustEntityIndex(t *testing.T, id string) int {
	t.Helper()
	i := entityIndex(id)
	if i < 0 {
		t.Fatalf("bad entity ID %q", id)
	}
	return i
}

func TestSearchLimitValidation(t *testing.T) {
	rep := testReport(t)
	if _, err := rep.Search("camera", -1); err == nil {
		t.Error("negative limit must be a validation error")
	}
	hits, err := rep.Search("camera", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > DefaultSearchLimit {
		t.Errorf("limit 0 returned %d hits, want <= default %d", len(hits), DefaultSearchLimit)
	}
}

func TestEntityIndexStrict(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"e0", 0},
		{"e1", 1},
		{"e12", 12},
		{"e9073", 9073},
		{"", -1},
		{"e", -1},
		{"x1", -1},
		{"e1x", -1},
		{"e-1", -1},
		{"1", -1},
		// Leading zeros would alias other entities ("e01" vs "e1").
		{"e01", -1},
		{"e00", -1},
		{"e0123", -1},
		// Overflowing digit strings must not wrap into valid indexes.
		{"e9223372036854775807", 9223372036854775807},
		{"e9223372036854775808", -1},
		{"e92233720368547758070", -1},
		{"e99999999999999999999999999", -1},
	}
	for _, c := range cases {
		if got := entityIndex(c.in); got != c.want {
			t.Errorf("entityIndex(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSnapshotEntityLookup(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	e, ok := snap.Entity("e0")
	if !ok || e.ID != "e0" {
		t.Fatalf("Entity(e0) = %v, %v", e, ok)
	}
	for _, id := range []string{"e01", "nope", fmt.Sprintf("e%d", snap.Len()), ""} {
		if _, ok := snap.Entity(id); ok {
			t.Errorf("Entity(%q) unexpectedly found", id)
		}
	}
}

func TestSnapshotSimilar(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	hits, err := snap.Similar("e0", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 5 {
		t.Fatalf("k violated: %d hits", len(hits))
	}
	for _, h := range hits {
		if h.Entity.ID == "e0" {
			t.Error("Similar returned the entity itself")
		}
		if h.Score <= 0 {
			t.Errorf("non-positive similarity %v for %s", h.Score, h.Entity.ID)
		}
	}
	if _, err := snap.Similar("zzz", 5); err == nil {
		t.Error("unknown ID must error")
	}
	if _, err := snap.Similar("e0", -2); err == nil {
		t.Error("negative k must be a validation error")
	}
}

func TestSnapshotResolve(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// A record copying an existing entity's title must resolve to it
	// (or at worst rank it in the top 3 among perturbed duplicates).
	var target *Entity
	for _, e := range snap.Entities() {
		if len(e.Records) > 1 && e.Title != "" {
			target = e
			break
		}
	}
	if target == nil {
		t.Skip("no multi-record entity in sample")
	}
	rec := data.NewRecord("q1", "client").Set("title", data.String(target.Title))
	hits, err := snap.Resolve(rec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no resolution candidates")
	}
	found := false
	for _, h := range hits {
		if h.Entity.ID == target.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("target %s not in top candidates for its own title %q", target.ID, target.Title)
	}
	// Validation.
	if _, err := snap.Resolve(nil, 3); err == nil {
		t.Error("nil record must error")
	}
	if _, err := snap.Resolve(data.NewRecord("q2", "client"), 3); err == nil {
		t.Error("empty record must error")
	}
	if _, err := snap.Resolve(rec, -1); err == nil {
		t.Error("negative k must be a validation error")
	}
}

// TestSnapshotResolveExactValue pins the exact value-key probe: a
// record sharing only a non-text fused value with an entity still
// surfaces that entity as a candidate.
func TestSnapshotResolveExactValue(t *testing.T) {
	rep := testReport(t)
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var attr string
	var val data.Value
	var target *Entity
	for _, e := range snap.Entities() {
		for _, a := range sortedAttrs(e.Values) {
			if v := e.Values[a]; v.Kind == data.KindNumber {
				attr, val, target = a, v, e
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Skip("no numeric fused value in sample")
	}
	rec := data.NewRecord("q1", "client").Set(attr, val)
	hits, err := snap.Resolve(rec, snap.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Entity.ID == target.ID {
			return
		}
	}
	t.Errorf("entity %s with exact %s=%s not in resolve candidates", target.ID, attr, val)
}

func benchWeb() *datagen.Web {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 71, NumEntities: 40})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 72, NumSources: 10, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.6,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
}

func BenchmarkSearchWarm(b *testing.B) {
	web := benchWeb()
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rep.Search("camera pro", 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.Search("camera pro", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchColdRebuild is the pre-snapshot behaviour for
// comparison: a fresh report per iteration pays the full
// materialisation every query.
func BenchmarkSearchColdRebuild(b *testing.B) {
	web := benchWeb()
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := &Report{
			Clusters:   rep.Clusters,
			Normalized: rep.Normalized,
			Fusion:     rep.Fusion,
			Schema:     rep.Schema,
		}
		if _, err := fresh.Search("camera pro", 10); err != nil {
			b.Fatal(err)
		}
	}
}
