package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/datagen"
)

// bigWeb builds a workload heavy enough that a full pipeline run takes
// a comfortably measurable amount of wall time.
func bigWeb(t testing.TB) *datagen.Web {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 171, NumEntities: 400})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 172, NumSources: 30, DirtLevel: 2,
		IdentifierRate: 0.9, Heterogeneity: 0.6,
		HeadFraction: 0.5, TailCoverage: 0.4,
	})
}

func TestRunCtxPreCancelled(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := New(Config{}).RunCtx(ctx, web.Dataset)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled run still took %v", elapsed)
	}
}

// TestRunCtxCancelMidRun pins the tentpole cancellation contract: a
// context cancelled early in the run stops the pipeline at the next
// chunk boundary, returning context.Canceled well before the
// uncancelled wall time.
func TestRunCtxCancelMidRun(t *testing.T) {
	web := bigWeb(t)
	cfg := Config{Workers: 2}

	start := time.Now()
	if _, err := New(cfg).Run(web.Dataset); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Fire while blocking/matching is still chewing.
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	_, err := New(cfg).RunCtx(ctx, web.Dataset)
	cancelled := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cancelled >= full/2 {
		t.Fatalf("cancelled run took %v, uncancelled %v — cancellation is not cutting work short", cancelled, full)
	}
}

func TestRunCtxStageTimeout(t *testing.T) {
	web := bigWeb(t)
	_, err := New(Config{Workers: 2, StageTimeout: time.Millisecond}).RunCtx(context.Background(), web.Dataset)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestRunCtxNilIsBackground(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	//nolint:staticcheck // the nil-tolerance contract is the point
	rep, err := New(Config{}).RunCtx(nil, web.Dataset)
	if err != nil || rep.Fusion == nil {
		t.Fatalf("nil-ctx run: %v", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := BuildFuser("bogus"); !errors.Is(err, ErrUnknownFuser) {
		t.Errorf("BuildFuser(bogus) = %v, want ErrUnknownFuser", err)
	}
	if err := (Config{Clusterer: "bogus"}).Validate(); !errors.Is(err, ErrUnknownClusterer) {
		t.Errorf("Validate clusterer = %v, want ErrUnknownClusterer", err)
	}
	if err := (Config{Order: Order(9)}).Validate(); !errors.Is(err, ErrUnknownOrder) {
		t.Errorf("Validate order = %v, want ErrUnknownOrder", err)
	}
	if err := (Config{Fuser: "bogus"}).Validate(); !errors.Is(err, ErrUnknownFuser) {
		t.Errorf("Validate fuser = %v, want ErrUnknownFuser", err)
	}
}
