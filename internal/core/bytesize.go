package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-friendly byte count for the pair-memory
// budget flags: a plain integer is bytes, and a k/m/g (or kb/mb/gb)
// suffix scales by binary units, case-insensitively — "256mb", "1G",
// "65536". The empty string is 0 (no budget).
func ParseByteSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "kb"), strings.HasSuffix(t, "k"):
		mult = 1 << 10
	case strings.HasSuffix(t, "mb"), strings.HasSuffix(t, "m"):
		mult = 1 << 20
	case strings.HasSuffix(t, "gb"), strings.HasSuffix(t, "g"):
		mult = 1 << 30
	}
	if mult > 1 {
		t = strings.TrimRight(t, "kmgb")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: byte size %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("core: negative byte size %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("core: byte size %q overflows", s)
	}
	return n * mult, nil
}
