package core

import (
	"strings"
	"testing"
)

func TestEntitiesMaterialisation(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(rep.Clusters) {
		t.Fatalf("entities %d != clusters %d", len(ents), len(rep.Clusters))
	}
	totalRecords := 0
	for _, e := range ents {
		totalRecords += len(e.Records)
		if e.ID == "" || e.Title == "" {
			t.Fatalf("entity incomplete: %+v", e)
		}
		if len(e.Sources) == 0 {
			t.Fatalf("entity %s has no sources", e.ID)
		}
		for attr, c := range e.Confidence {
			if c < 0 || c > 1 {
				t.Errorf("entity %s attr %s confidence %f", e.ID, attr, c)
			}
		}
	}
	if totalRecords != web.Dataset.NumRecords() {
		t.Errorf("entities cover %d records of %d", totalRecords, web.Dataset.NumRecords())
	}
	// Multi-source entities must carry fused values.
	found := false
	for _, e := range ents {
		if len(e.Sources) > 1 && len(e.Values) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no multi-source entity carries fused values")
	}
}

func TestSearchFindsEntityByTitle(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := rep.Entities()
	if err != nil {
		t.Fatal(err)
	}
	// Query with the first multi-record entity's title words.
	var target *Entity
	for _, e := range ents {
		if len(e.Records) > 1 {
			target = e
			break
		}
	}
	if target == nil {
		t.Skip("no multi-record entity in sample")
	}
	hits, err := rep.Search(target.Title, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Entity.ID != target.ID {
		// The exact title should rank its own entity first, or at least
		// in the top 3 (perturbed duplicates may tie).
		top3 := false
		for _, h := range hits[:min(3, len(hits))] {
			if h.Entity.ID == target.ID {
				top3 = true
			}
		}
		if !top3 {
			t.Errorf("target %s not in top hits for its own title %q", target.ID, target.Title)
		}
	}
	// Scores are sorted descending.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted")
		}
	}
}

func TestSearchValidation(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Search("   ", 5); err == nil {
		t.Error("blank query must error")
	}
	hits, err := rep.Search("zzz-no-such-tokens-qqq", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("nonsense query matched %d entities", len(hits))
	}
	incomplete := &Report{}
	if _, err := incomplete.Entities(); err == nil {
		t.Error("incomplete report must error")
	}
}

func TestSearchLimit(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// A broad query (category word appears in many titles).
	hits, err := rep.Search("camera", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 3 {
		t.Errorf("limit violated: %d hits", len(hits))
	}
}

func TestEntityIndexParsing(t *testing.T) {
	cases := map[string]int{"e0": 0, "e12": 12, "x1": -1, "e": -1, "e1x": -1}
	for in, want := range cases {
		if got := entityIndex(in); got != want {
			t.Errorf("entityIndex(%q) = %d, want %d", in, got, want)
		}
	}
	if !strings.HasPrefix("e0", "e") {
		t.Fatal("unreachable")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
