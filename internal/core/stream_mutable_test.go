package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/source"
	"repro/internal/source/faults"
)

func churnFleet(d *data.Dataset, seed int64) ([]source.DeltaSource, map[string]int, map[string]bool) {
	return source.ChurnSources(d, source.ChurnConfig{Seed: seed, UpdateRate: 0.15, DeleteRate: 0.1})
}

// TestStreamDeltasRetractDeletedRecords is the ghost-claims gate: after
// a churn stream drains, no deleted record may appear in the dataset,
// the clustering, or any published entity — online fusion only ever
// sees claims from live records.
func TestStreamDeltasRetractDeletedRecords(t *testing.T) {
	d := streamTestWeb(41, 50, 6)
	fleet, totals, deleted := churnFleet(d, 5)
	if len(deleted) == 0 {
		t.Fatal("churn produced no deletions")
	}

	var last *Snapshot
	s, err := NewStream(StreamConfig{EpochSize: 10, PublishEvery: 1},
		func(snap *Snapshot) { last = snap })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDeltas(context.Background(), fleet, totals); err != nil {
		t.Fatal(err)
	}

	if s.Deleted() != int64(len(deleted)) {
		t.Errorf("Deleted() = %d, want %d", s.Deleted(), len(deleted))
	}
	for id := range deleted {
		if s.Dataset().Record(id) != nil {
			t.Errorf("deleted record %s still in dataset", id)
		}
	}
	for _, cl := range s.Clusters() {
		for _, id := range cl {
			if deleted[id] {
				t.Errorf("deleted record %s still clustered", id)
			}
		}
	}
	if last == nil {
		t.Fatal("no snapshot published")
	}
	for _, e := range last.Entities() {
		for _, id := range e.Records {
			if deleted[id] {
				t.Errorf("deleted record %s still cited by entity %s", id, e.ID)
			}
		}
	}
	// Accuracy feedback ran over live claims only: every estimate is a
	// valid Laplace-smoothed rate.
	for src, a := range s.Accuracy() {
		if a <= 0 || a >= 1 {
			t.Errorf("accuracy[%s] = %v outside (0,1)", src, a)
		}
	}
	if s.Tombstones() == 0 {
		t.Log("note: all tombstones were exhumed by reinserts")
	}
}

// TestStreamDeltasDeterministicAcrossWorkers pins that the mutable
// path's output — including reclustering after deletes and online
// fusion over the churned claims — is byte-identical for any fusion
// worker count, with and without mangled delta faults.
func TestStreamDeltasDeterministicAcrossWorkers(t *testing.T) {
	d := streamTestWeb(42, 40, 6)
	cleanFleet, cleanTotals, _ := churnFleet(d, 6)
	mcfg := faults.DeltaConfig{Seed: 11, DupDeleteRate: 0.3, EarlyDeleteRate: 0.2, UpdateStormRate: 0.2}
	mangledTotals := map[string]int{}
	for _, s := range cleanFleet {
		st := s.(*source.DeltaStatic)
		mangledTotals[st.Src.ID] = faults.MangledTotal(st.Src.ID, st.Log, mcfg)
	}

	run := func(workers int, mangled bool) string {
		s, err := NewStream(StreamConfig{EpochSize: 9, PublishEvery: 2, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fleet, totals := cleanFleet, cleanTotals
		if mangled {
			fleet, totals = faults.WrapDeltasAll(cleanFleet, mcfg), mangledTotals
		}
		if err := s.RunDeltas(context.Background(), fleet, totals); err != nil {
			t.Fatal(err)
		}
		return streamFingerprint(t, s)
	}

	cleanWant := run(1, false)
	mangledWant := run(1, true)
	for _, workers := range []int{2, 8} {
		if got := run(workers, false); got != cleanWant {
			t.Errorf("clean run at workers=%d differs from workers=1", workers)
		}
		if got := run(workers, true); got != mangledWant {
			t.Errorf("mangled run at workers=%d differs from workers=1", workers)
		}
	}
	// Mangling is semantics-preserving noise: the live entities agree
	// even though epoch boundaries and comparison counts differ.
	if cleanWant == mangledWant {
		t.Log("note: mangled fingerprint identical to clean (no boundary drift)")
	}
}

// TestStreamCompactionNeutral pins that a compaction pass changes no
// observable output: fingerprints before/after agree, and a stream
// with an aggressive garbage trigger drains to the same fingerprint as
// one that never compacts — only the state file shrinks.
func TestStreamCompactionNeutral(t *testing.T) {
	d := streamTestWeb(43, 40, 6)
	fleet, totals, deleted := churnFleet(d, 7)
	if len(deleted) == 0 {
		t.Fatal("churn produced no deletions")
	}

	run := func(ratio float64, path string) *Stream {
		s, err := NewStream(StreamConfig{
			EpochSize: 8, PublishEvery: 2, CompactRatio: ratio, StatePath: path,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunDeltas(context.Background(), fleet, totals); err != nil {
			t.Fatal(err)
		}
		return s
	}

	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.state")
	compactPath := filepath.Join(dir, "compact.state")
	plain := run(0, plainPath)
	compacted := run(0.01, compactPath)

	if compacted.Compactions() == 0 {
		t.Fatal("aggressive trigger never compacted")
	}
	if a, b := streamFingerprint(t, plain), streamFingerprint(t, compacted); a != b {
		t.Errorf("compaction changed observable output:\n--- plain\n%s--- compacted\n%s", a, b)
	}
	ps, err := os.Stat(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := os.Stat(compactPath)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tombstones() > 0 && cs.Size() >= ps.Size() {
		t.Errorf("compacted state %d bytes, want < uncompacted %d", cs.Size(), ps.Size())
	}
}

// TestStreamKillMidCompactionChaos is the crash gate for compaction:
// at workers {1,2,8}, kill the process at every interesting point of a
// compaction pass and require (a) the on-disk state is byte-identical
// to the pre- or the post-compaction state — never a torn hybrid — and
// (b) a stream resumed from whichever bytes survived drains to the
// same final fingerprint as an uninterrupted run.
func TestStreamKillMidCompactionChaos(t *testing.T) {
	d := streamTestWeb(44, 60, 8)
	fleet, totals, deleted := churnFleet(d, 8)
	if len(deleted) == 0 {
		t.Fatal("churn produced no deletions")
	}
	metas := map[string]*data.Source{}
	for _, s := range d.Sources() {
		metas[s.ID] = s
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := StreamConfig{EpochSize: 9, PublishEvery: 2, Workers: workers}

			// Uninterrupted baseline (no compaction; compaction must not
			// change the final output anyway).
			base, err := NewStream(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := base.RunDeltas(context.Background(), fleet, totals); err != nil {
				t.Fatal(err)
			}
			want := streamFingerprint(t, base)

			// Crashing run: drive epochs by hand with Run's cadence until
			// the stream has accumulated garbage, then snapshot the state
			// file right before and right after a compaction's save.
			path := filepath.Join(t.TempDir(), "stream.state")
			ccfg := cfg
			ccfg.StatePath = path
			crashed, err := NewStream(ccfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			str, err := source.NewDeltaStreamer(context.Background(), fleet,
				source.StreamConfig{EpochSize: ccfg.EpochSize, Totals: totals})
			if err != nil {
				t.Fatal(err)
			}
			defer str.Close()
			const crashAfter = 1
			for ep := range str.C {
				if err := crashed.ApplyDeltas(metas, ep); err != nil {
					t.Fatal(err)
				}
				if crashed.shouldPublish() {
					if _, err := crashed.Publish(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
				if err := crashed.Save(path); err != nil {
					t.Fatal(err)
				}
				if ep.Seq == crashAfter {
					break
				}
			}
			crashEpoch := crashed.Epoch()
			if crashEpoch != crashAfter+1 {
				t.Fatalf("stream drained at epoch %d before the crash point", crashEpoch)
			}
			if crashed.Tombstones() == 0 {
				t.Fatalf("no tombstones by epoch %d; churn too weak for the test", crashAfter)
			}
			preBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			slots, _, tombs := crashed.Compact()
			if slots == 0 || tombs == 0 {
				t.Fatalf("compaction reclaimed nothing (slots=%d tombs=%d)", slots, tombs)
			}
			if err := crashed.Save(path); err != nil {
				t.Fatal(err)
			}
			postBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(preBytes) == string(postBytes) {
				t.Fatal("compaction did not change the encoded state")
			}
			if len(postBytes) >= len(preBytes) {
				t.Errorf("post-compaction state %d bytes, want < pre %d", len(postBytes), len(preBytes))
			}

			// Three kill points: before the compaction save committed
			// (old bytes), mid-save with a stray temp file (old bytes +
			// junk temp), and after (new bytes). Each must restore to
			// exactly pre- or post-compaction bytes and drain to the
			// uninterrupted fingerprint.
			scenarios := []struct {
				name  string
				bytes []byte
				junk  bool
			}{
				{"killed-before-save", preBytes, false},
				{"killed-mid-save", preBytes, true},
				{"killed-after-save", postBytes, false},
			}
			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) {
					dir := t.TempDir()
					p := filepath.Join(dir, "stream.state")
					if err := os.WriteFile(p, sc.bytes, 0o644); err != nil {
						t.Fatal(err)
					}
					if sc.junk {
						// A crash between temp-write and rename leaves an
						// orphan temp file; it must be invisible to restore.
						if err := os.WriteFile(filepath.Join(dir, ".bdistate-junk"), []byte("torn"), 0o644); err != nil {
							t.Fatal(err)
						}
					}
					onDisk, err := os.ReadFile(p)
					if err != nil {
						t.Fatal(err)
					}
					if string(onDisk) != string(preBytes) && string(onDisk) != string(postBytes) {
						t.Fatal("state file is neither pre- nor post-compaction bytes")
					}
					resumed, err := LoadStream(p, ccfg, nil)
					if err != nil {
						t.Fatal(err)
					}
					if resumed.Epoch() != crashEpoch {
						t.Fatalf("restored at epoch %d, want %d", resumed.Epoch(), crashEpoch)
					}
					if err := resumed.RunDeltas(context.Background(), fleet, totals); err != nil {
						t.Fatal(err)
					}
					if got := streamFingerprint(t, resumed); got != want {
						t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
					}
				})
			}
		})
	}
}
