package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

// Serving snapshot: the read-optimized, immutable view of a completed
// pipeline run. A Snapshot materialises every integrated entity ONCE,
// builds an inverted token index over titles and fused string values
// for keyword search, and a title/value feature index for record
// resolution — after which every read (Entity, Search, Similar,
// Resolve) is lock-free and safe for unbounded concurrency. This is
// the structure a long-lived service (cmd/bdiserve) swaps atomically
// when a background rebuild completes.

// ErrNoSuchEntity is returned by Snapshot lookups for IDs the snapshot
// does not contain (including non-canonical spellings like "e01").
var ErrNoSuchEntity = errors.New("core: no such entity")

// DefaultSearchLimit is the hit cap applied when Search or Similar is
// called with limit 0.
const DefaultSearchLimit = 10

// Snapshot is an immutable serving view over a pipeline Report. All
// methods are safe for concurrent use by any number of readers; none
// take locks or mutate state after Build.
type Snapshot struct {
	entities []*Entity
	byID     map[string]int

	// Inverted keyword index: tokenIDs interns every distinct word of
	// every entity's title + fused string values; postings[tok] lists
	// the entities containing that word in ascending index order;
	// entTokens[i] holds entity i's distinct token IDs (its length is
	// the |E| in the overlap/Jaccard blend Search computes).
	tokenIDs  map[string]uint32
	postings  [][]int32
	entTokens [][]uint32

	// Resolution index: one pseudo-record per entity (title + fused
	// values) scored by a weighted per-field comparator with a
	// prebuilt feature index, plus an exact value-key index so
	// identifier-style equality always surfaces its entity as a
	// candidate even when text overlap is zero.
	pseudo   []*data.Record
	cmp      *similarity.RecordComparator
	valueIdx map[string][]int32
}

// BuildSnapshot materialises the serving snapshot for a completed
// report: every entity with its fused values, the inverted keyword
// index and the resolution feature index are built here, once, so the
// read methods never materialise anything per query.
func BuildSnapshot(r *Report) (*Snapshot, error) {
	ents, err := materializeEntities(r)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		entities:  ents,
		byID:      make(map[string]int, len(ents)),
		tokenIDs:  map[string]uint32{},
		entTokens: make([][]uint32, len(ents)),
		pseudo:    make([]*data.Record, len(ents)),
		valueIdx:  map[string][]int32{},
	}
	attrSet := map[string]bool{}
	for i, e := range ents {
		s.byID[e.ID] = i
		// Index the entity's searchable text: distinct words of the
		// title plus every fused string value, interned in
		// first-encounter order so the build is deterministic.
		s.indexWords(i, e.Title)
		p := data.NewRecord(e.ID, "__snapshot__")
		if e.Title != "" {
			p.Set("title", data.String(e.Title))
		}
		for _, attr := range sortedAttrs(e.Values) {
			v := e.Values[attr]
			if v.Kind == data.KindString {
				s.indexWords(i, v.Str)
			}
			if attr != "title" {
				p.Set(attr, v)
			}
			attrSet[attr] = true
			s.valueIdx[attr+"\x00"+v.Key()] = append(s.valueIdx[attr+"\x00"+v.Key()], int32(i))
		}
		s.pseudo[i] = p
	}
	// The resolution comparator mirrors the pipeline matcher's shape:
	// title double-weighted, every fused attribute contributing, word
	// Jaccard throughout. The feature index over the pseudo-records
	// precomputes the entity-side token sets.
	fields := []similarity.FieldWeight{{Attr: "title", Weight: 2, Metric: similarity.Jaccard}}
	for _, attr := range sortedKeySet(attrSet) {
		if attr != "title" {
			fields = append(fields, similarity.FieldWeight{Attr: attr, Weight: 1, Metric: similarity.Jaccard})
		}
	}
	s.cmp = similarity.NewRecordComparator(fields...)
	s.cmp.AttachIndex(similarity.BuildFeatureIndex(s.pseudo, s.cmp))
	return s, nil
}

// indexWords interns the distinct normalised words of text, appends
// entity ent to each new word's posting list and records the token on
// the entity's own token list, skipping words already indexed for this
// entity. A word is "already indexed" exactly when the tail of the
// word's posting list is ent — entities are indexed in ascending
// order, so no per-entity seen-set is needed.
func (s *Snapshot) indexWords(ent int, text string) {
	for _, w := range tokenize.Words(text) {
		id, ok := s.tokenIDs[w]
		if !ok {
			id = uint32(len(s.postings))
			s.tokenIDs[w] = id
			s.postings = append(s.postings, nil)
		}
		if pl := s.postings[id]; len(pl) > 0 && pl[len(pl)-1] == int32(ent) {
			continue
		}
		s.postings[id] = append(s.postings[id], int32(ent))
		s.entTokens[ent] = append(s.entTokens[ent], id)
	}
}

// materializeEntities builds the entity list from the raw report — the
// one-time cost BuildSnapshot pays so the read path never does.
func materializeEntities(r *Report) ([]*Entity, error) {
	if r == nil || r.Normalized == nil || r.Clusters == nil || r.Fusion == nil {
		return nil, fmt.Errorf("core: report is incomplete (run the pipeline first)")
	}
	norm := r.Clusters.Normalize()
	out := make([]*Entity, 0, len(norm))
	for ci, cl := range norm {
		e := &Entity{
			ID:         fmt.Sprintf("e%d", ci),
			Records:    append([]string(nil), cl...),
			Values:     map[string]data.Value{},
			Confidence: map[string]float64{},
		}
		srcSet := map[string]bool{}
		for _, rid := range cl {
			rec := r.Normalized.Record(rid)
			if rec == nil {
				continue
			}
			srcSet[rec.SourceID] = true
			if t := rec.Get("title"); !t.IsNull() && len(t.Str) > len(e.Title) {
				e.Title = t.Str
			}
		}
		for s := range srcSet {
			e.Sources = append(e.Sources, s)
		}
		sort.Strings(e.Sources)
		out = append(out, e)
	}
	// Attach fused values.
	for it, v := range r.Fusion.Values {
		idx := entityIndex(it.Entity)
		if idx < 0 || idx >= len(out) {
			continue
		}
		out[idx].Values[it.Attr] = v
		out[idx].Confidence[it.Attr] = r.Fusion.Confidence[it]
	}
	return out, nil
}

// Len returns the number of integrated entities.
func (s *Snapshot) Len() int { return len(s.entities) }

// Entities returns every integrated entity ordered by entity ID. The
// slice and the entities are shared, immutable views — callers must
// not modify them.
func (s *Snapshot) Entities() []*Entity { return s.entities }

// Entity looks one entity up by its canonical ID ("e<i>"). The second
// return is false for unknown or non-canonical IDs.
func (s *Snapshot) Entity(id string) (*Entity, bool) {
	i, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.entities[i], true
}

// Search ranks integrated entities against a keyword query by the
// blended overlap/Jaccard similarity between the query's words and
// each entity's title plus fused string values, returning up to limit
// hits with score > 0. limit 0 means DefaultSearchLimit; negative
// limits are a validation error. The whole operation is an index
// probe: no entity is materialised or re-tokenised per call.
func (s *Snapshot) Search(query string, limit int) ([]Hit, error) {
	limit, err := searchLimit(limit)
	if err != nil {
		return nil, err
	}
	qNorm := tokenize.Normalize(query)
	if qNorm == "" {
		return nil, fmt.Errorf("core: empty query")
	}
	qset := tokenize.WordSet(qNorm)
	toks := make([]uint32, 0, len(qset))
	for w := range qset {
		if id, ok := s.tokenIDs[w]; ok {
			toks = append(toks, id)
		}
	}
	return s.probe(toks, len(qset), -1, limit), nil
}

// Similar returns the k entities most similar to the given entity,
// scored with the same blended text metric Search uses over the
// precomputed token index. k 0 means DefaultSearchLimit; negative k is
// a validation error; unknown IDs return ErrNoSuchEntity.
func (s *Snapshot) Similar(id string, k int) ([]Hit, error) {
	k, err := searchLimit(k)
	if err != nil {
		return nil, err
	}
	self, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchEntity, id)
	}
	toks := s.entTokens[self]
	return s.probe(toks, len(toks), self, k), nil
}

// probe accumulates posting-list hits for the given token IDs and
// blends overlap and Jaccard exactly as the legacy per-query scan did:
// score = 0.7·|Q∩E|/min(|Q|,|E|) + 0.3·|Q∩E|/|Q∪E| with |Q| = nq
// distinct query words. exclude ≥ 0 drops that entity (Similar's
// self). Hits are sorted by score descending, entity ID ascending.
func (s *Snapshot) probe(toks []uint32, nq, exclude, limit int) []Hit {
	if nq == 0 {
		return nil
	}
	counts := make(map[int32]int, 64)
	for _, tok := range toks {
		for _, e := range s.postings[tok] {
			counts[e]++
		}
	}
	touched := make([]int32, 0, len(counts))
	for e := range counts {
		touched = append(touched, e)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	hits := make([]Hit, 0, len(touched))
	for _, e := range touched {
		if int(e) == exclude {
			continue
		}
		inter := counts[e]
		ne := len(s.entTokens[e])
		m := nq
		if ne < m {
			m = ne
		}
		overlap := float64(inter) / float64(m)
		jaccard := float64(inter) / float64(nq+ne-inter)
		if sc := 0.7*overlap + 0.3*jaccard; sc > 0 {
			hits = append(hits, Hit{Entity: s.entities[e], Score: sc})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Entity.ID < hits[j].Entity.ID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// searchLimit resolves the shared limit contract: 0 means the default,
// negatives are rejected loudly instead of being silently rewritten.
func searchLimit(limit int) (int, error) {
	switch {
	case limit < 0:
		return 0, fmt.Errorf("core: negative limit %d (0 means the default %d)", limit, DefaultSearchLimit)
	case limit == 0:
		return DefaultSearchLimit, nil
	}
	return limit, nil
}

// Resolve scores a new record against the integrated entities — the
// serving form of record-resolution ("which entity does this record
// describe?"). Candidates come from two probes over the prebuilt
// indexes: the keyword index over the record's string values, and
// exact value-key equality on any attribute (so identifier matches
// surface even with zero text overlap). Each candidate is then scored
// by the snapshot's weighted per-field comparator, and the top k are
// returned sorted by score descending, entity ID ascending. k 0 means
// DefaultSearchLimit; negative k is a validation error.
func (s *Snapshot) Resolve(rec *data.Record, k int) ([]Hit, error) {
	k, err := searchLimit(k)
	if err != nil {
		return nil, err
	}
	if rec == nil || len(rec.Attrs()) == 0 {
		return nil, fmt.Errorf("core: empty record")
	}
	// Text probe: distinct words across every string value.
	qset := map[string]bool{}
	cand := map[int32]bool{}
	for _, attr := range rec.Attrs() {
		v := rec.Get(attr)
		if v.Kind == data.KindString {
			for _, w := range tokenize.Words(v.Str) {
				qset[w] = true
			}
		}
		for _, e := range s.valueIdx[attr+"\x00"+v.Key()] {
			cand[e] = true
		}
	}
	toks := make([]uint32, 0, len(qset))
	for w := range qset {
		if id, ok := s.tokenIDs[w]; ok {
			toks = append(toks, id)
		}
	}
	// A shortlist bounded well above k keeps the comparator pass cheap
	// while leaving room for the exact-value candidates to rerank.
	shortlist := 4 * k
	if shortlist < 32 {
		shortlist = 32
	}
	for _, h := range s.probe(toks, len(qset), -1, shortlist) {
		cand[int32(s.byID[h.Entity.ID])] = true
	}
	ordered := make([]int32, 0, len(cand))
	for e := range cand {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	hits := make([]Hit, 0, len(ordered))
	for _, e := range ordered {
		if sc := s.cmp.Compare(rec, s.pseudo[e]); sc > 0 {
			hits = append(hits, Hit{Entity: s.entities[e], Score: sc})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Entity.ID < hits[j].Entity.ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

func sortedKeySet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
