package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/linkage"
)

// Stream state codec: a versioned binary format holding everything a
// resumed stream needs to replay byte-identically — epoch counter,
// per-source cursors, fusion accuracy estimates, and the incremental
// linker's dictionaries (sources, records), posting lists (insertion
// order — the probe order) and union-find partition (canonical form).
//
// Layout: 8-byte magic, uvarint version, the sections in fixed order,
// then a CRC32 (IEEE) of everything before it. Strings are
// uvarint-length-prefixed; floats are IEEE-754 bits little-endian;
// section maps are written in sorted key order so the same state
// always encodes to the same bytes. Save writes to a temp file in the
// target directory, syncs and renames — a crash never leaves a torn
// state file behind — and rotates the previous good state to a .bak
// the loader falls back to when the primary is corrupt.
//
// Version history: v1 (PR 9) ends after the comparisons counter; v2
// appends a delete counter and a tombstone section (deleted IDs still
// occupying posting slots, with their keys). Encoding always writes
// v2; decoding accepts both, giving v1 files an empty tombstone set.
const (
	streamStateMagic     = "BDISTATE"
	streamStateVersion   = 2
	streamStateVersionV1 = 1
)

// ErrBadState reports a stream state file that is corrupt, truncated
// or of an incompatible version.
var ErrBadState = errors.New("core: stream state corrupt or incompatible")

// Save atomically persists the stream state to path, rotating the
// previous good state to path+".bak" first. The rotation hard-links
// the primary (falling back to a copy), so there is no instant at
// which neither a primary nor a backup exists.
func (s *Stream) Save(path string) error {
	buf := s.encodeState()
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".bdistate-*")
	if err != nil {
		return fmt.Errorf("core: stream save: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: stream save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: stream save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: stream save: %w", err)
	}
	rotateBackup(path)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: stream save: %w", err)
	}
	reg := s.reg()
	reg.Counter("stream.saves").Inc()
	reg.Gauge("stream.state_bytes").Set(float64(len(buf)))
	return nil
}

// rotateBackup points path+".bak" at the current primary, best-effort:
// a first save (no primary yet) or an exotic filesystem without hard
// links must not fail the save itself.
func rotateBackup(path string) {
	if _, err := os.Stat(path); err != nil {
		return // no primary to rotate
	}
	bak := path + ".bak"
	os.Remove(bak)
	if err := os.Link(path, bak); err == nil {
		return
	}
	if buf, err := os.ReadFile(path); err == nil {
		os.WriteFile(bak, buf, 0o644)
	}
}

// LoadStream restores a stream from a state file written by Save. cfg
// must describe the same linkage configuration (key attributes,
// matcher, thresholds) the state was built under — functions can't be
// serialized, so the codec persists state, not configuration. A
// corrupt primary falls back to the rotated path+".bak" with a logged
// warning; only when both are unusable does the load fail.
func LoadStream(path string, cfg StreamConfig, publish func(*Snapshot)) (*Stream, error) {
	s, err := loadStreamFile(path, cfg, publish)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, ErrBadState) {
		return nil, err
	}
	bak := path + ".bak"
	s2, err2 := loadStreamFile(bak, cfg, publish)
	if err2 != nil {
		return nil, err // report the primary's corruption
	}
	log.Printf("core: stream state %s unusable (%v); recovered from backup %s", path, err, bak)
	s2.reg().Counter("stream.state_recoveries").Inc()
	return s2, nil
}

// loadStreamFile restores from exactly one file, no fallback.
func loadStreamFile(path string, cfg StreamConfig, publish func(*Snapshot)) (*Stream, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(cfg, publish)
	if err != nil {
		return nil, err
	}
	if err := s.decodeState(buf); err != nil {
		return nil, err
	}
	return s, nil
}

// ResumeStream restores from cfg.StatePath when a state file exists
// there (falling back to the .bak on corruption — and when the primary
// itself is missing but a backup survives, restoring from that) and
// starts fresh otherwise — the entry point both -stream commands use.
func ResumeStream(cfg StreamConfig, publish func(*Snapshot)) (*Stream, error) {
	if cfg.StatePath != "" {
		if _, err := os.Stat(cfg.StatePath); err == nil {
			return LoadStream(cfg.StatePath, cfg, publish)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		bak := cfg.StatePath + ".bak"
		if _, err := os.Stat(bak); err == nil {
			s, err := loadStreamFile(bak, cfg, publish)
			if err == nil {
				log.Printf("core: stream state %s missing; resumed from backup %s", cfg.StatePath, bak)
				s.reg().Counter("stream.state_recoveries").Inc()
				return s, nil
			}
			if !errors.Is(err, ErrBadState) {
				return nil, err
			}
		}
	}
	return NewStream(cfg, publish)
}

func (s *Stream) encodeState() []byte {
	b := make([]byte, 0, 1<<16)
	b = append(b, streamStateMagic...)
	b = binary.AppendUvarint(b, streamStateVersion)

	b = binary.AppendUvarint(b, uint64(s.epoch))
	b = binary.AppendUvarint(b, uint64(s.ingested))
	b = binary.AppendUvarint(b, uint64(s.publishes))

	b = binary.AppendUvarint(b, uint64(len(s.cursors)))
	for _, id := range sortedKeysInt(s.cursors) {
		b = appendString(b, id)
		b = binary.AppendUvarint(b, uint64(s.cursors[id]))
	}
	b = binary.AppendUvarint(b, uint64(len(s.acc)))
	for _, id := range sortedKeysFloat(s.acc) {
		b = appendString(b, id)
		b = appendFloat(b, s.acc[id])
	}

	st := s.inc.State()
	b = binary.AppendUvarint(b, uint64(len(st.Sources)))
	for _, src := range st.Sources {
		b = appendString(b, src.ID)
		b = appendString(b, src.Name)
		b = appendFloat(b, src.TrueAccuracy)
		b = binary.AppendUvarint(b, uint64(len(src.CopiesFrom)))
		for _, c := range src.CopiesFrom {
			b = appendString(b, c)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Records)))
	for _, r := range st.Records {
		b = appendString(b, r.ID)
		b = appendString(b, r.SourceID)
		b = appendString(b, r.EntityID)
		attrs := r.Attrs() // sorted
		b = binary.AppendUvarint(b, uint64(len(attrs)))
		for _, a := range attrs {
			b = appendString(b, a)
			b = appendValue(b, r.Get(a))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Postings)))
	for _, k := range sortedKeysSlice(st.Postings) {
		b = appendString(b, k)
		ids := st.Postings[k]
		b = binary.AppendUvarint(b, uint64(len(ids)))
		for _, id := range ids {
			b = appendString(b, id)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Partition)))
	for _, set := range st.Partition {
		b = binary.AppendUvarint(b, uint64(len(set)))
		for _, id := range set {
			b = appendString(b, id)
		}
	}
	b = binary.AppendUvarint(b, uint64(st.Comparisons))

	// v2 sections: delete counter, then tombstones sorted by ID (each
	// ID with its posting keys in stored — death — order).
	b = binary.AppendUvarint(b, uint64(s.deleted))
	b = binary.AppendUvarint(b, uint64(len(st.Tombstones)))
	for _, id := range sortedKeysSlice(st.Tombstones) {
		b = appendString(b, id)
		keys := st.Tombstones[id]
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
		}
	}

	crc := crc32.ChecksumIEEE(b)
	return binary.LittleEndian.AppendUint32(b, crc)
}

func (s *Stream) decodeState(buf []byte) error {
	if len(buf) < len(streamStateMagic)+4 {
		return fmt.Errorf("%w: %d bytes", ErrBadState, len(buf))
	}
	payload, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("%w: checksum mismatch", ErrBadState)
	}
	if string(payload[:len(streamStateMagic)]) != streamStateMagic {
		return fmt.Errorf("%w: bad magic", ErrBadState)
	}
	d := &stateDecoder{buf: payload[len(streamStateMagic):]}
	version := d.uvarint()
	if version != streamStateVersion && version != streamStateVersionV1 {
		return fmt.Errorf("%w: version %d, want ≤%d", ErrBadState, version, streamStateVersion)
	}

	s.epoch = int(d.uvarint())
	s.ingested = int64(d.uvarint())
	s.publishes = int64(d.uvarint())

	s.cursors = map[string]int{}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		id := d.string()
		s.cursors[id] = int(d.uvarint())
	}
	s.acc = map[string]float64{}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		id := d.string()
		s.acc[id] = d.float()
	}

	st := &linkage.IncrementalState{Postings: map[string][]string{}}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		src := &data.Source{ID: d.string(), Name: d.string(), TrueAccuracy: d.float()}
		for m := d.uvarint(); m > 0 && d.err == nil; m-- {
			src.CopiesFrom = append(src.CopiesFrom, d.string())
		}
		st.Sources = append(st.Sources, src)
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		id := d.string()
		srcID := d.string()
		r := data.NewRecord(id, srcID)
		r.EntityID = d.string()
		for m := d.uvarint(); m > 0 && d.err == nil; m-- {
			a := d.string()
			r.Set(a, d.value())
		}
		st.Records = append(st.Records, r)
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		k := d.string()
		ids := make([]string, 0, 4)
		for m := d.uvarint(); m > 0 && d.err == nil; m-- {
			ids = append(ids, d.string())
		}
		st.Postings[k] = ids
	}
	for n := d.uvarint(); n > 0 && d.err == nil; n-- {
		set := make([]string, 0, 4)
		for m := d.uvarint(); m > 0 && d.err == nil; m-- {
			set = append(set, d.string())
		}
		st.Partition = append(st.Partition, set)
	}
	st.Comparisons = int(d.uvarint())
	st.Tombstones = map[string][]string{}
	s.deleted = 0
	if version >= 2 {
		s.deleted = int64(d.uvarint())
		for n := d.uvarint(); n > 0 && d.err == nil; n-- {
			id := d.string()
			keys := make([]string, 0, 4)
			for m := d.uvarint(); m > 0 && d.err == nil; m-- {
				keys = append(keys, d.string())
			}
			st.Tombstones[id] = keys
		}
	}
	if d.err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadState, len(d.buf))
	}

	inc, err := linkage.FromState(st, s.keyFn, s.matcher)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	inc.MaxBlock = s.cfg.MaxBlock
	s.inc = inc
	return nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendValue(b []byte, v data.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case data.KindString:
		b = appendString(b, v.Str)
	case data.KindNumber:
		b = appendFloat(b, v.Num)
	case data.KindBool:
		if v.Bool {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case data.KindTime:
		b = binary.AppendVarint(b, v.Time.UTC().UnixNano())
	}
	return b
}

// stateDecoder consumes the payload front to back, latching the first
// error: every accessor returns a zero value once err is set, so the
// section loops above can read unconditionally.
type stateDecoder struct {
	buf []byte
	err error
}

func (d *stateDecoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
	}
}

func (d *stateDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *stateDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *stateDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *stateDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return f
}

func (d *stateDecoder) value() data.Value {
	if d.err != nil {
		return data.Value{}
	}
	if len(d.buf) < 1 {
		d.fail("truncated value kind")
		return data.Value{}
	}
	kind := data.ValueKind(d.buf[0])
	d.buf = d.buf[1:]
	switch kind {
	case data.KindNull:
		return data.Value{}
	case data.KindString:
		return data.Value{Kind: data.KindString, Str: d.string()}
	case data.KindNumber:
		return data.Value{Kind: data.KindNumber, Num: d.float()}
	case data.KindBool:
		if len(d.buf) < 1 {
			d.fail("truncated bool")
			return data.Value{}
		}
		b := d.buf[0] != 0
		d.buf = d.buf[1:]
		return data.Value{Kind: data.KindBool, Bool: b}
	case data.KindTime:
		return data.Value{Kind: data.KindTime, Time: time.Unix(0, d.varint()).UTC()}
	default:
		d.fail(fmt.Sprintf("unknown value kind %d", kind))
		return data.Value{}
	}
}

func sortedKeysInt(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysFloat(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysSlice(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
