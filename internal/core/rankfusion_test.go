package core

import (
	"fmt"
	"testing"

	"repro/internal/eval"
)

func TestConfigValidateRankFusion(t *testing.T) {
	cases := []Config{
		{RRFK: -1},
		{ComparisonBudget: -5},
		{RankFusion: true, MaterializeCandidates: true},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config must error", i)
		}
	}
	if err := (Config{RankFusion: true, RRFK: 120, ComparisonBudget: 1000}).Validate(); err != nil {
		t.Errorf("valid rank-fusion config rejected: %v", err)
	}
}

func TestPipelineRankFusionEndToEnd(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{RankFusion: true}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates == 0 || len(rep.Matched) == 0 {
		t.Fatalf("no candidates/matches: %d/%d", rep.Candidates, len(rep.Matched))
	}
	if rep.Comparisons != rep.Candidates {
		t.Errorf("unbudgeted run: Comparisons = %d, want Candidates = %d",
			rep.Comparisons, rep.Candidates)
	}
	prf := eval.Clusters(rep.Clusters, web.Dataset.GroundTruthClusters())
	if prf.F1 < 0.8 {
		t.Errorf("rank-fused linkage F1 = %f, want >= 0.8 (%v)", prf.F1, prf)
	}
}

func TestPipelineRankFusionDeterministicAcrossWorkers(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	var want string
	for i, cfg := range []Config{
		{RankFusion: true, Workers: 1, Shards: 1},
		{RankFusion: true, Workers: 2, Shards: 4},
		{RankFusion: true, Workers: 8, Shards: 16},
	} {
		rep, err := New(cfg).Run(web.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%d/%v/%v", rep.Candidates, rep.Matched, rep.Clusters)
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d shards=%d: pipeline output diverged", cfg.Workers, cfg.Shards)
		}
	}
}

func TestPipelineComparisonBudget(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	full, err := New(Config{RankFusion: true}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Candidates / 4
	if budget == 0 {
		t.Fatal("workload too small for a budget test")
	}
	rep, err := New(Config{RankFusion: true, ComparisonBudget: budget}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != budget {
		t.Errorf("Comparisons = %d, want the budget %d", rep.Comparisons, budget)
	}
	if len(rep.Matched) == 0 || len(rep.Matched) > len(full.Matched) {
		t.Errorf("budgeted matches = %d, full = %d", len(rep.Matched), len(full.Matched))
	}
	// The budgeted path applies to the plain union stream too.
	rep, err = New(Config{ComparisonBudget: budget}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != budget {
		t.Errorf("union path: Comparisons = %d, want %d", rep.Comparisons, budget)
	}
}
