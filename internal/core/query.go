package core

import (
	"math"
	"sort"

	"repro/internal/data"
)

// Query layer over a completed pipeline Report: look integrated
// entities up by keyword and read their fused, mediated-schema records
// — the user-facing payoff of the integration. Both entry points
// delegate to a memoized serving Snapshot (see snapshot.go), so
// entities are materialised exactly once per report no matter how many
// queries run.

// Entity is one integrated entity: its cluster, provenance and fused
// values.
type Entity struct {
	// ID is the fusion entity id ("e<i>" over the normalised clusters).
	ID string
	// Records lists the contributing record IDs.
	Records []string
	// Sources lists the distinct contributing source IDs, sorted.
	Sources []string
	// Title is a representative title (the longest contributed one).
	Title string
	// Values holds the fused value per mediated attribute.
	Values map[string]data.Value
	// Confidence per mediated attribute.
	Confidence map[string]float64
}

// Snapshot returns the report's serving snapshot, building it on first
// use and memoizing it for every later call (concurrent callers share
// one build). The snapshot — and the entities it exposes — are
// immutable shared views; mutating the report after the first call has
// no effect on query results.
func (r *Report) Snapshot() (*Snapshot, error) {
	r.snapOnce.Do(func() {
		r.snap, r.snapErr = BuildSnapshot(r)
	})
	return r.snap, r.snapErr
}

// Entities returns every integrated entity from the report, ordered by
// entity ID. The result is the snapshot's shared, immutable entity
// list — materialised once per report, not per call — so callers must
// treat entities as read-only.
func (r *Report) Entities() ([]*Entity, error) {
	s, err := r.Snapshot()
	if err != nil {
		return nil, err
	}
	return s.Entities(), nil
}

// entityIndex parses a canonical fusion entity ID ("e<i>", no leading
// zeros except "e0" itself) into its index, returning -1 for anything
// else — malformed prefixes, non-digits, leading zeros ("e01" would
// alias "e1") and digit strings that overflow int.
func entityIndex(id string) int {
	if len(id) < 2 || id[0] != 'e' {
		return -1
	}
	if id[1] == '0' && len(id) > 2 {
		return -1
	}
	n := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return -1
		}
		d := int(c - '0')
		if n > (math.MaxInt-d)/10 {
			return -1
		}
		n = n*10 + d
	}
	return n
}

// Hit is one query result with its relevance score.
type Hit struct {
	Entity *Entity
	Score  float64
}

// Search ranks integrated entities against a keyword query by blended
// overlap/Jaccard similarity between the query and each entity's title
// plus fused string values, returning up to limit hits with score > 0.
// limit 0 applies the default DefaultSearchLimit; negative limits
// return a validation error. Repeated searches share the memoized
// snapshot, so the warm path is an index probe with no per-query
// entity materialisation.
func (r *Report) Search(query string, limit int) ([]Hit, error) {
	s, err := r.Snapshot()
	if err != nil {
		return nil, err
	}
	return s.Search(query, limit)
}

func sortedAttrs(m map[string]data.Value) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
