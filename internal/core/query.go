package core

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

// Query layer over a completed pipeline Report: look integrated
// entities up by keyword and read their fused, mediated-schema records
// — the user-facing payoff of the integration.

// Entity is one integrated entity: its cluster, provenance and fused
// values.
type Entity struct {
	// ID is the fusion entity id ("e<i>" over the normalised clusters).
	ID string
	// Records lists the contributing record IDs.
	Records []string
	// Sources lists the distinct contributing source IDs, sorted.
	Sources []string
	// Title is a representative title (the longest contributed one).
	Title string
	// Values holds the fused value per mediated attribute.
	Values map[string]data.Value
	// Confidence per mediated attribute.
	Confidence map[string]float64
}

// Entities materialises every integrated entity from the report,
// ordered by entity ID.
func (r *Report) Entities() ([]*Entity, error) {
	if r.Normalized == nil || r.Clusters == nil || r.Fusion == nil {
		return nil, fmt.Errorf("core: report is incomplete (run the pipeline first)")
	}
	norm := r.Clusters.Normalize()
	out := make([]*Entity, 0, len(norm))
	for ci, cl := range norm {
		e := &Entity{
			ID:         fmt.Sprintf("e%d", ci),
			Records:    append([]string(nil), cl...),
			Values:     map[string]data.Value{},
			Confidence: map[string]float64{},
		}
		srcSet := map[string]bool{}
		for _, rid := range cl {
			rec := r.Normalized.Record(rid)
			if rec == nil {
				continue
			}
			srcSet[rec.SourceID] = true
			if t := rec.Get("title"); !t.IsNull() && len(t.Str) > len(e.Title) {
				e.Title = t.Str
			}
		}
		for s := range srcSet {
			e.Sources = append(e.Sources, s)
		}
		sort.Strings(e.Sources)
		out = append(out, e)
	}
	// Attach fused values.
	for it, v := range r.Fusion.Values {
		idx := entityIndex(it.Entity)
		if idx < 0 || idx >= len(out) {
			continue
		}
		out[idx].Values[it.Attr] = v
		out[idx].Confidence[it.Attr] = r.Fusion.Confidence[it]
	}
	return out, nil
}

func entityIndex(id string) int {
	if len(id) < 2 || id[0] != 'e' {
		return -1
	}
	n := 0
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Hit is one query result with its relevance score.
type Hit struct {
	Entity *Entity
	Score  float64
}

// Search ranks integrated entities against a keyword query by Jaccard
// similarity between the query and each entity's title plus fused
// string values, returning up to limit hits with score > 0.
func (r *Report) Search(query string, limit int) ([]Hit, error) {
	ents, err := r.Entities()
	if err != nil {
		return nil, err
	}
	if limit <= 0 {
		limit = 10
	}
	qNorm := tokenize.Normalize(query)
	if qNorm == "" {
		return nil, fmt.Errorf("core: empty query")
	}
	hits := make([]Hit, 0, len(ents))
	for _, e := range ents {
		text := e.Title
		for _, attr := range sortedAttrs(e.Values) {
			if v := e.Values[attr]; v.Kind == data.KindString {
				text += " " + v.Str
			}
		}
		// Overlap rewards queries that are sub-descriptions of the
		// entity; blend with Jaccard so longer entity texts still rank
		// sanely.
		s := 0.7*similarity.Overlap(qNorm, text) + 0.3*similarity.Jaccard(qNorm, text)
		if s > 0 {
			hits = append(hits, Hit{Entity: e, Score: s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Entity.ID < hits[j].Entity.ID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, nil
}

func sortedAttrs(m map[string]data.Value) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
