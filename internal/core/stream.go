package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/similarity"
	"repro/internal/source"
	"repro/internal/tokenize"
)

// StreamConfig controls a streaming integration run — the Velocity
// path: arriving records flow through online blocking-key maintenance
// and incremental linkage into online fusion, and the updated fused
// entities are republished into the serving snapshot without ever
// re-running the batch pipeline. The zero value is usable.
type StreamConfig struct {
	// Stream shape (see source.StreamConfig).
	EpochSize int // records per source per epoch; default 100
	Buffer    int // bounded epoch buffer; default 4
	Retries   int // refetch budget per poll; default 8, negative = none

	// Incremental linkage. Defaults mirror the batch pipeline's:
	// identifier equality short-circuits, otherwise a weighted Jaccard
	// over the match attributes against MatchThreshold.
	IdentifierAttrs []string // exact-match attributes; nil = {"pid"}
	MatchAttrs      []string // comparator attributes; empty = {"title"}
	MatchThreshold  float64  // 0 = default 0.6, ZeroThreshold = literally 0
	MaxBlock        int      // online stop-token bound; 0 = default 64, negative = unlimited

	// FusionN is fusion.Online's assumed number of false values
	// (0 = its default 10).
	FusionN float64

	// CompactRatio enables automatic state compaction: when the
	// incremental linker's garbage ratio (posting slots owned by
	// tombstoned IDs) reaches this threshold after an epoch, the
	// posting lists are rewritten dropping dead entries before the next
	// save. 0 disables automatic compaction (Compact can still be
	// called explicitly); compaction never changes match behaviour,
	// only the size of the in-memory index and the state file.
	CompactRatio float64

	// Publishing cadence. PublishEvery > 0 republishes every that many
	// epochs — deterministic, the cadence replay tests use. Otherwise
	// the staleness window drives it: the view is republished once it
	// has been dirty for Staleness (default 2s).
	Staleness    time.Duration
	PublishEvery int

	// Persistence. StatePath enables snapshot/restore: the stream state
	// (cursors, dictionaries, posting lists, union-find partition,
	// fusion accuracy state) is written there atomically every
	// SaveEvery epochs (default 1) and on drain.
	StatePath string
	SaveEvery int

	// Workers bounds the fusion worker pool (0 = NumCPU); output is
	// identical for any value.
	Workers int
	// Obs records stream counters, gauges and timers (nil falls back to
	// obs.Default()).
	Obs *obs.Registry
}

func (c *StreamConfig) defaults() {
	if c.EpochSize <= 0 {
		c.EpochSize = 100
	}
	if c.Buffer <= 0 {
		c.Buffer = 4
	}
	if c.IdentifierAttrs == nil {
		c.IdentifierAttrs = []string{"pid"}
	}
	if len(c.MatchAttrs) == 0 {
		c.MatchAttrs = []string{"title"}
	}
	switch c.MatchThreshold {
	case 0:
		c.MatchThreshold = 0.6
	case ZeroThreshold:
		c.MatchThreshold = 0
	}
	if c.MaxBlock == 0 {
		c.MaxBlock = 64
	}
	if c.Staleness <= 0 {
		c.Staleness = 2 * time.Second
	}
	if c.SaveEvery <= 0 {
		c.SaveEvery = 1
	}
}

// Validate rejects unusable configurations.
func (c StreamConfig) Validate() error {
	if t := c.MatchThreshold; t != ZeroThreshold && (t < 0 || t > 1) {
		return fmt.Errorf("core: stream match threshold %v outside [0,1]", t)
	}
	if c.FusionN < 0 {
		return fmt.Errorf("core: stream fusion N %v is negative", c.FusionN)
	}
	if c.PublishEvery < 0 {
		return fmt.Errorf("core: stream publish-every %d is negative", c.PublishEvery)
	}
	if c.CompactRatio < 0 || c.CompactRatio > 1 {
		return fmt.Errorf("core: stream compact ratio %v outside [0,1]", c.CompactRatio)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: stream workers %d is negative", c.Workers)
	}
	return nil
}

// Stream is the long-lived streaming integration processor. It is not
// safe for concurrent use; one goroutine owns it (Run is that loop).
// All state that decides future behaviour — cursors, the incremental
// linker, the fusion accuracy estimates, the epoch counter — is
// persisted by Save and restored by LoadStream, so a resumed stream
// replays byte-identically (under an epoch-driven publish cadence;
// wall-clock staleness publishing is inherently schedule-dependent).
type Stream struct {
	cfg     StreamConfig
	keyFn   func(r *data.Record) []string
	matcher linkage.Matcher
	inc     *linkage.Incremental
	publish func(*Snapshot)

	// acc holds the online accuracy estimates fed back into the probe
	// order: after each publish, every source's estimate becomes its
	// Laplace-smoothed agreement rate with the fused values.
	acc     map[string]float64
	cursors map[string]int

	epoch       int // completed epochs (also the next epoch's sequence)
	ingested    int64
	deleted     int64
	compactions int64
	publishes   int64
	lastPub     time.Time
	dirty       bool
}

// NewStream builds a fresh stream processor. publish, when non-nil, is
// called with every republished snapshot (serve.Server.Publish is the
// intended target); it runs on the stream's goroutine.
func NewStream(cfg StreamConfig, publish func(*Snapshot)) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	s := &Stream{
		cfg:     cfg,
		keyFn:   streamKeyFunc(cfg.MatchAttrs, cfg.IdentifierAttrs),
		matcher: streamMatcher(cfg),
		publish: publish,
		acc:     map[string]float64{},
		cursors: map[string]int{},
		lastPub: time.Now(),
	}
	s.inc = linkage.NewIncremental(s.keyFn, s.matcher)
	s.inc.MaxBlock = cfg.MaxBlock
	return s, nil
}

// streamMatcher mirrors the batch pipeline's default rule matcher:
// identifier equality short-circuits, otherwise weighted Jaccard over
// the match attributes (title weighted up, like buildMatcher).
func streamMatcher(cfg StreamConfig) linkage.Matcher {
	fields := make([]similarity.FieldWeight, 0, len(cfg.MatchAttrs))
	for _, a := range cfg.MatchAttrs {
		w := 1.0
		if a == "title" {
			w = 2
		}
		fields = append(fields, similarity.FieldWeight{Attr: a, Weight: w, Metric: similarity.Jaccard})
	}
	return linkage.RuleMatcher{
		Exact:      cfg.IdentifierAttrs,
		Comparator: similarity.NewRecordComparator(fields...),
		Threshold:  cfg.MatchThreshold,
	}
}

// streamKeyFunc is the online blocking key: sorted distinct tokens of
// the match attributes (the posting-list probe order must not inherit
// map iteration order) plus one exact key per present identifier
// attribute, NUL-prefixed so identifier keys can't collide with word
// tokens.
func streamKeyFunc(matchAttrs, idAttrs []string) func(r *data.Record) []string {
	return func(r *data.Record) []string {
		set := map[string]bool{}
		for _, a := range matchAttrs {
			for w := range tokenize.WordSet(r.Get(a).String()) {
				set[w] = true
			}
		}
		keys := make([]string, 0, len(set)+len(idAttrs))
		for w := range set {
			keys = append(keys, w)
		}
		sort.Strings(keys)
		for _, a := range idAttrs {
			if v := r.Get(a); !v.IsNull() {
				keys = append(keys, "\x00"+a+"\x00"+v.Key())
			}
		}
		return keys
	}
}

func (s *Stream) reg() *obs.Registry { return obs.OrDefault(s.cfg.Obs) }

// ApplyEpoch folds one epoch of insert-only arrivals into the
// incremental state — the PR-9 record path, now a thin wrapper over
// ApplyDeltas with every record lifted to an upsert.
func (s *Stream) ApplyEpoch(metas map[string]*data.Source, ep source.Epoch) error {
	return s.ApplyDeltas(metas, source.DeltaEpoch{
		Seq: ep.Seq, Deltas: source.UpsertLog(ep.Records), Cursors: ep.Cursors,
	})
}

// ApplyDeltas folds one epoch of changes into the incremental state:
// upserts (re)insert into the online linker — a live record with the
// same ID is retracted first — and deletes tombstone the record,
// recluster its component and drop it from the dataset, so the next
// publish rebuilds claims from live records only and online fusion
// never credits a ghost. Duplicate deletes and deletes of unknown IDs
// are no-ops (a dirty upstream must not corrupt state). Cursors
// advance to the epoch's resume points and the view becomes dirty.
func (s *Stream) ApplyDeltas(metas map[string]*data.Source, ep source.DeltaEpoch) error {
	reg := s.reg()
	t0 := time.Now()
	applied := false
	for _, dl := range ep.Deltas {
		switch dl.Op {
		case source.OpUpsert:
			r := dl.Record
			if r == nil {
				return fmt.Errorf("core: stream epoch %d: upsert of %s carries no record", ep.Seq, dl.ID)
			}
			meta := metas[r.SourceID]
			if meta == nil {
				return fmt.Errorf("core: stream record %s from unknown source %q", r.ID, r.SourceID)
			}
			_, updated, err := s.inc.Upsert(meta, r)
			if err != nil {
				return fmt.Errorf("core: stream apply epoch %d: %w", ep.Seq, err)
			}
			if updated {
				reg.Counter("stream.updates").Inc()
			} else {
				s.ingested++
				reg.Counter("stream.records_ingested").Inc()
			}
			applied = true
		case source.OpDelete:
			if s.inc.Delete(dl.ID) {
				s.deleted++
				reg.Counter("stream.deletes").Inc()
				applied = true
			}
		default:
			return fmt.Errorf("core: stream epoch %d: unknown delta op %v", ep.Seq, dl.Op)
		}
	}
	for id, c := range ep.Cursors {
		s.cursors[id] = c
	}
	s.epoch = ep.Seq + 1
	if applied {
		s.dirty = true
	}
	reg.Counter("stream.epochs").Inc()
	reg.Timer("stream.apply_time").Observe(time.Since(t0))
	reg.Gauge("stream.staleness_seconds").Set(s.StalenessNow().Seconds())
	reg.Gauge("stream.tombstones_live").Set(float64(s.inc.Tombstones()))
	return nil
}

// Compact rewrites the linker's posting lists dropping tombstoned
// slots. Match behaviour is unchanged (probes already skip the dead);
// only the in-memory index and the next saved state shrink. It reports
// the reclaimed posting slots, emptied keys and cleared tombstones.
func (s *Stream) Compact() (slots, keys, tombstones int) {
	reg := s.reg()
	t0 := time.Now()
	slots, keys, tombstones = s.inc.Compact()
	if tombstones > 0 {
		s.compactions++
		reg.Counter("stream.compactions").Inc()
		reg.Counter("stream.compacted_slots").Add(int64(slots))
	}
	reg.Timer("stream.compact_time").Observe(time.Since(t0))
	reg.Gauge("stream.tombstones_live").Set(float64(s.inc.Tombstones()))
	return slots, keys, tombstones
}

// maybeCompact runs Compact when the configured garbage-ratio trigger
// fires.
func (s *Stream) maybeCompact() {
	if s.cfg.CompactRatio > 0 && s.inc.GarbageRatio() >= s.cfg.CompactRatio {
		s.Compact()
	}
}

// StalenessNow reports how long the published view has been behind the
// ingested state: zero when clean, time since the last publish while
// dirty.
func (s *Stream) StalenessNow() time.Duration {
	if !s.dirty {
		return 0
	}
	return time.Since(s.lastPub)
}

// shouldPublish decides the republish cadence: epoch-driven when
// PublishEvery is set, staleness-window-driven otherwise.
func (s *Stream) shouldPublish() bool {
	if !s.dirty {
		return false
	}
	if s.cfg.PublishEvery > 0 {
		return s.epoch%s.cfg.PublishEvery == 0
	}
	return time.Since(s.lastPub) >= s.cfg.Staleness
}

// buildView materializes the current integrated view: claims from the
// current clusters over every observed attribute, fused by
// fusion.Online under the current accuracy estimates, packaged as a
// serving snapshot.
func (s *Stream) buildView(ctx context.Context) (*Snapshot, *fusion.OnlineResult, *data.ClaimSet, error) {
	d := s.inc.Dataset()
	clusters := s.inc.Clusters()
	attrs := make([]string, 0, 8)
	for _, ac := range d.Attributes() {
		attrs = append(attrs, ac.Attr)
	}
	sort.Strings(attrs)
	claims := data.ClaimsFromClusters(d, clusters, attrs)
	onl := fusion.Online{Accuracy: s.acc, N: s.cfg.FusionN, Workers: s.cfg.Workers, Ctx: ctx}
	res, err := onl.FuseOnline(claims)
	if err != nil {
		return nil, nil, nil, err
	}
	snap, err := BuildSnapshot(&Report{Normalized: d, Clusters: clusters, Fusion: &res.Result})
	if err != nil {
		return nil, nil, nil, err
	}
	return snap, res, claims, nil
}

// Rebuild builds the current serving snapshot without publishing it or
// touching any stream state — the side-effect-free read used to seed a
// server after a restore.
func (s *Stream) Rebuild(ctx context.Context) (*Snapshot, error) {
	snap, _, _, err := s.buildView(ctx)
	return snap, err
}

// Publish rebuilds the view, feeds the fusion outcome back into the
// accuracy estimates and pushes the snapshot to the publish sink. It
// returns the published snapshot.
func (s *Stream) Publish(ctx context.Context) (*Snapshot, error) {
	reg := s.reg()
	t0 := time.Now()
	snap, res, claims, err := s.buildView(ctx)
	if err != nil {
		return nil, err
	}
	s.updateAccuracy(claims, res)
	if s.publish != nil {
		s.publish(snap)
	}
	s.publishes++
	s.dirty = false
	s.lastPub = time.Now()
	reg.Counter("stream.publishes").Inc()
	reg.Timer("stream.republish_time").Observe(time.Since(t0))
	reg.Gauge("stream.staleness_seconds").Set(0)
	reg.Gauge("stream.entities").Set(float64(snap.Len()))
	return snap, nil
}

// updateAccuracy folds the fused outcome back into the per-source
// accuracy estimates: Laplace-smoothed agreement with the published
// values. The estimates steer fusion.Online's probe order on the next
// publish — the online analogue of ACCU's accuracy iteration.
func (s *Stream) updateAccuracy(cs *data.ClaimSet, res *fusion.OnlineResult) {
	for _, src := range cs.Sources() {
		agree, total := 0, 0
		for _, c := range cs.SourceClaims(src) {
			v, ok := res.Values[c.Item]
			if !ok {
				continue
			}
			total++
			if v.Key() == c.Value.Key() {
				agree++
			}
		}
		if total > 0 {
			s.acc[src] = (float64(agree) + 1) / (float64(total) + 2)
		}
	}
}

// Run drains the fleet as a stream: watch → epoch batches → incremental
// linkage → online fusion → snapshot publishing within the staleness
// window, persisting state every SaveEvery epochs when StatePath is
// set. It returns after every source is drained (with a final publish
// and save) or on the first error.
func (s *Stream) Run(ctx context.Context, fleet []source.Source, totals map[string]int) error {
	metas := make(map[string]*data.Source, len(fleet))
	for _, src := range fleet {
		metas[src.Meta().ID] = src.Meta()
	}
	cursors := make(map[string]int, len(s.cursors))
	for id, c := range s.cursors {
		cursors[id] = c
	}
	str, err := source.NewStreamer(ctx, fleet, source.StreamConfig{
		EpochSize: s.cfg.EpochSize,
		Buffer:    s.cfg.Buffer,
		Retries:   s.cfg.Retries,
		Totals:    totals,
		Cursors:   cursors,
		StartSeq:  s.epoch,
	})
	if err != nil {
		return err
	}
	defer str.Close()

	for ep := range str.C {
		if err := s.ApplyEpoch(metas, ep); err != nil {
			return err
		}
		if err := s.afterEpoch(ctx); err != nil {
			return err
		}
	}
	if err := str.Err(); err != nil {
		return err
	}
	return s.finish(ctx)
}

// RunDeltas drains a mutable fleet: delta watch → epoch batches →
// upsert/delete application → online fusion → snapshot publishing,
// with the same persistence and compaction cadence as Run. totals
// declares each source's canonical log length (mandatory for wrapped
// sources; see StreamConfig.Totals).
func (s *Stream) RunDeltas(ctx context.Context, fleet []source.DeltaSource, totals map[string]int) error {
	metas := make(map[string]*data.Source, len(fleet))
	for _, src := range fleet {
		metas[src.Meta().ID] = src.Meta()
	}
	cursors := make(map[string]int, len(s.cursors))
	for id, c := range s.cursors {
		cursors[id] = c
	}
	str, err := source.NewDeltaStreamer(ctx, fleet, source.StreamConfig{
		EpochSize: s.cfg.EpochSize,
		Buffer:    s.cfg.Buffer,
		Retries:   s.cfg.Retries,
		Totals:    totals,
		Cursors:   cursors,
		StartSeq:  s.epoch,
	})
	if err != nil {
		return err
	}
	defer str.Close()

	for ep := range str.C {
		if err := s.ApplyDeltas(metas, ep); err != nil {
			return err
		}
		if err := s.afterEpoch(ctx); err != nil {
			return err
		}
	}
	if err := str.Err(); err != nil {
		return err
	}
	return s.finish(ctx)
}

// afterEpoch runs the shared per-epoch tail: publish cadence, garbage
// trigger, save cadence.
func (s *Stream) afterEpoch(ctx context.Context) error {
	if s.shouldPublish() {
		if _, err := s.Publish(ctx); err != nil {
			return err
		}
	}
	s.maybeCompact()
	if s.cfg.StatePath != "" && s.epoch%s.cfg.SaveEvery == 0 {
		if err := s.Save(s.cfg.StatePath); err != nil {
			return err
		}
	}
	return nil
}

// finish publishes any dirty tail and persists the final state.
func (s *Stream) finish(ctx context.Context) error {
	if s.dirty {
		if _, err := s.Publish(ctx); err != nil {
			return err
		}
	}
	s.maybeCompact()
	if s.cfg.StatePath != "" {
		return s.Save(s.cfg.StatePath)
	}
	return nil
}

// Epoch reports how many epochs have been applied.
func (s *Stream) Epoch() int { return s.epoch }

// Ingested reports how many distinct record insertions have been
// applied (updates of a live record are counted once, at first
// insert).
func (s *Stream) Ingested() int64 { return s.ingested }

// Deleted reports how many record deletions have been applied
// (no-op deletes excluded).
func (s *Stream) Deleted() int64 { return s.deleted }

// Compactions reports how many compaction passes actually reclaimed
// tombstones.
func (s *Stream) Compactions() int64 { return s.compactions }

// Tombstones reports how many deleted IDs still occupy posting slots.
func (s *Stream) Tombstones() int { return s.inc.Tombstones() }

// GarbageRatio reports the fraction of posting slots owned by
// tombstoned IDs.
func (s *Stream) GarbageRatio() float64 { return s.inc.GarbageRatio() }

// Publishes reports how many snapshots have been published.
func (s *Stream) Publishes() int64 { return s.publishes }

// Comparisons reports the cumulative pairwise match calls — the
// stream-side cost metric E27 compares against batch relinking.
func (s *Stream) Comparisons() int { return s.inc.Comparisons() }

// Clusters returns the current clustering.
func (s *Stream) Clusters() data.Clustering { return s.inc.Clusters() }

// Dataset exposes the accumulated records (read-only use).
func (s *Stream) Dataset() *data.Dataset { return s.inc.Dataset() }

// Cursors returns a copy of the per-source resume positions.
func (s *Stream) Cursors() map[string]int {
	out := make(map[string]int, len(s.cursors))
	for id, c := range s.cursors {
		out[id] = c
	}
	return out
}

// Accuracy returns a copy of the current per-source accuracy estimates.
func (s *Stream) Accuracy() map[string]float64 {
	out := make(map[string]float64, len(s.acc))
	for id, a := range s.acc {
		out[id] = a
	}
	return out
}
