package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// runWithMetrics runs one pipeline over the shared test web with the
// given worker count and returns the stable snapshot renderings.
func runWithMetrics(t *testing.T, workers int, mutate func(*Config)) (text string, jsonb []byte) {
	t.Helper()
	web := testWeb(t, 1, 0.9)
	reg := obs.NewRegistry()
	cfg := Config{Workers: workers, Obs: reg, Fuser: "accu"}
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := New(cfg).Run(web.Dataset); err != nil {
		t.Fatal(err)
	}
	stable := reg.Snapshot().Stable()
	js, err := stable.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return stable.Text(), js
}

// TestPipelineMetricsDeterministic pins the observability acceptance
// criterion: the stable snapshot — text and JSON — is byte-identical
// for workers ∈ {1, 2, 8} and covers all four stages.
func TestPipelineMetricsDeterministic(t *testing.T) {
	baseText, baseJSON := runWithMetrics(t, 1, nil)
	for _, want := range []string{
		"blocking.candidates", "blocking.blocks_built", "blocking.pairs_emitted",
		"matching.comparisons", "matching.matched", "matching.cached_compares",
		"clustering.clusters",
		"alignment.mediated_attrs",
		"fusion.items", "fusion.em_iterations",
		"pipeline",
	} {
		if !strings.Contains(baseText, want) {
			t.Errorf("stable snapshot missing %q:\n%s", want, baseText)
		}
	}
	if strings.Contains(baseText, "parallel.") {
		t.Errorf("stable snapshot leaked worker-dependent metrics:\n%s", baseText)
	}
	for _, workers := range []int{2, 8} {
		text, js := runWithMetrics(t, workers, nil)
		if text != baseText {
			t.Errorf("workers=%d: stable text differs from workers=1:\n--- w=1\n%s\n--- w=%d\n%s",
				workers, baseText, workers, text)
		}
		if string(js) != string(baseJSON) {
			t.Errorf("workers=%d: stable JSON differs from workers=1", workers)
		}
	}
}

// TestPipelineMetricsFellegiSunter checks the span tree gains the train
// sub-stage and the full snapshot records scheduling metrics.
func TestPipelineMetricsFellegiSunter(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	reg := obs.NewRegistry()
	cfg := Config{Obs: reg, FellegiSunter: true}
	if _, err := New(cfg).Run(web.Dataset); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var sawTrain bool
	for _, sp := range snap.Spans {
		if sp.Path == "pipeline/matching/train" {
			sawTrain = true
		}
	}
	if !sawTrain {
		t.Errorf("span tree missing pipeline/matching/train: %+v", snap.Spans)
	}
	full := snap.Text()
	if !strings.Contains(full, "parallel.tasks") {
		t.Errorf("full snapshot missing parallel scheduling metrics:\n%s", full)
	}
}

// TestPipelineStageTimeFromSpans checks StageTime stays populated with
// the historical keys when no registry is attached (detached spans).
func TestPipelineStageTimeFromSpans(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	rep, err := New(Config{}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"blocking", "matching", "clustering", "alignment", "fusion"} {
		if _, ok := rep.StageTime[stage]; !ok {
			t.Errorf("StageTime missing %q: %v", stage, rep.StageTime)
		}
	}
}
