package core

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/source"
)

// encodeStateV1 replicates the PR-9 v1 state layout byte for byte:
// everything encodeState writes up to and including the comparisons
// counter, under version 1, with no tombstone sections. It exists so
// the v1-compatibility tests pin the historical format independently
// of the live encoder.
func encodeStateV1(s *Stream) []byte {
	b := make([]byte, 0, 1<<16)
	b = append(b, streamStateMagic...)
	b = binary.AppendUvarint(b, streamStateVersionV1)

	b = binary.AppendUvarint(b, uint64(s.epoch))
	b = binary.AppendUvarint(b, uint64(s.ingested))
	b = binary.AppendUvarint(b, uint64(s.publishes))

	b = binary.AppendUvarint(b, uint64(len(s.cursors)))
	for _, id := range sortedKeysInt(s.cursors) {
		b = appendString(b, id)
		b = binary.AppendUvarint(b, uint64(s.cursors[id]))
	}
	b = binary.AppendUvarint(b, uint64(len(s.acc)))
	for _, id := range sortedKeysFloat(s.acc) {
		b = appendString(b, id)
		b = appendFloat(b, s.acc[id])
	}

	st := s.inc.State()
	b = binary.AppendUvarint(b, uint64(len(st.Sources)))
	for _, src := range st.Sources {
		b = appendString(b, src.ID)
		b = appendString(b, src.Name)
		b = appendFloat(b, src.TrueAccuracy)
		b = binary.AppendUvarint(b, uint64(len(src.CopiesFrom)))
		for _, c := range src.CopiesFrom {
			b = appendString(b, c)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Records)))
	for _, r := range st.Records {
		b = appendString(b, r.ID)
		b = appendString(b, r.SourceID)
		b = appendString(b, r.EntityID)
		attrs := r.Attrs()
		b = binary.AppendUvarint(b, uint64(len(attrs)))
		for _, a := range attrs {
			b = appendString(b, a)
			b = appendValue(b, r.Get(a))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Postings)))
	for _, k := range sortedKeysSlice(st.Postings) {
		b = appendString(b, k)
		ids := st.Postings[k]
		b = binary.AppendUvarint(b, uint64(len(ids)))
		for _, id := range ids {
			b = appendString(b, id)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(st.Partition)))
	for _, set := range st.Partition {
		b = binary.AppendUvarint(b, uint64(len(set)))
		for _, id := range set {
			b = appendString(b, id)
		}
	}
	b = binary.AppendUvarint(b, uint64(st.Comparisons))

	crc := crc32.ChecksumIEEE(b)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// v1FixtureStream builds the deterministic insert-only stream the
// committed v1 fixture encodes.
func v1FixtureStream(t *testing.T) *Stream {
	t.Helper()
	d := streamTestWeb(51, 12, 3)
	s, err := NewStream(StreamConfig{EpochSize: 7, PublishEvery: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), source.FromDataset(d), source.Totals(d)); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestV1StateLoadsThroughV2Codec is the compatibility gate: a v1
// (pre-tombstone) state file — both freshly encoded and the committed
// fixture — must load through the v2 codec with an empty tombstone
// set, behave identically, and round-trip through a v2 save.
func TestV1StateLoadsThroughV2Codec(t *testing.T) {
	orig := v1FixtureStream(t)
	cfg := StreamConfig{EpochSize: 7, PublishEvery: 2}
	v1 := encodeStateV1(orig)

	dir := t.TempDir()
	path := filepath.Join(dir, "stream.state")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStream(path, cfg, nil)
	if err != nil {
		t.Fatalf("v1 state failed to load through v2 codec: %v", err)
	}
	if loaded.Tombstones() != 0 || loaded.Deleted() != 0 {
		t.Errorf("v1 load: tombstones=%d deleted=%d, want 0/0", loaded.Tombstones(), loaded.Deleted())
	}
	if a, b := streamFingerprint(t, orig), streamFingerprint(t, loaded); a != b {
		t.Errorf("v1-loaded stream fingerprint differs:\n--- original\n%s--- loaded\n%s", a, b)
	}

	// Round trip: saving rewrites as v2; the reload is still identical.
	v2path := filepath.Join(dir, "upgraded.state")
	if err := loaded.Save(v2path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadStream(v2path, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := streamFingerprint(t, orig), streamFingerprint(t, again); a != b {
		t.Error("v1→v2 round trip changed the stream")
	}
}

// TestV1CommittedFixtureStillLoads guards old -stream-state files in
// the wild: the committed v1 fixture must keep loading through every
// future codec revision, with an empty tombstone set, and survive a
// save/reload round trip under the current version. (The fixture is
// self-seeding on first run so it can be committed from a clean tree.)
func TestV1CommittedFixtureStillLoads(t *testing.T) {
	fixture := filepath.Join("testdata", "streamstate_v1.bin")
	committed, err := os.ReadFile(fixture)
	if errors.Is(err, os.ErrNotExist) {
		orig := v1FixtureStream(t)
		committed = encodeStateV1(orig)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, committed, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote v1 fixture %s (%d bytes); commit it", fixture, len(committed))
	} else if err != nil {
		t.Fatal(err)
	}

	cfg := StreamConfig{EpochSize: 7, PublishEvery: 2}
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.state")
	if err := os.WriteFile(path, committed, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStream(path, cfg, nil)
	if err != nil {
		t.Fatalf("committed v1 fixture failed to load: %v", err)
	}
	if loaded.Tombstones() != 0 || loaded.Deleted() != 0 {
		t.Errorf("fixture load: tombstones=%d deleted=%d, want 0/0", loaded.Tombstones(), loaded.Deleted())
	}
	if loaded.Epoch() == 0 || loaded.Ingested() == 0 {
		t.Errorf("fixture load looks empty: epoch=%d ingested=%d", loaded.Epoch(), loaded.Ingested())
	}
	v2path := filepath.Join(dir, "upgraded.state")
	if err := loaded.Save(v2path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadStream(v2path, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := streamFingerprint(t, loaded), streamFingerprint(t, again); a != b {
		t.Error("fixture v1→v2 round trip changed the stream")
	}
}

// TestStreamStateBackupRecovery is the .bak satellite: Save rotates a
// backup of the last good state, a corrupted primary falls back to it,
// and ResumeStream recovers even when the primary vanished entirely.
func TestStreamStateBackupRecovery(t *testing.T) {
	d := streamTestWeb(52, 20, 4)
	fleet := source.FromDataset(d)
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.state")
	cfg := StreamConfig{EpochSize: 5, PublishEvery: 2, StatePath: path}

	s, err := NewStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}
	bak := path + ".bak"
	if _, err := os.Stat(bak); err != nil {
		t.Fatalf("Save rotated no backup: %v", err)
	}

	// Corrupt the primary: LoadStream must recover from the backup.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), buf...)
	corrupted[len(corrupted)/3] ^= 0xff
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := LoadStream(path, cfg, nil)
	if err != nil {
		t.Fatalf("load with good backup failed: %v", err)
	}
	// The backup is one save older than the final state: it must be a
	// valid resumable state (epoch within one of the final).
	if got := recovered.Epoch(); got != s.Epoch() && got != s.Epoch()-1 {
		t.Errorf("recovered epoch %d, want %d or %d", got, s.Epoch(), s.Epoch()-1)
	}

	// ResumeStream with the primary gone entirely also recovers.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeStream(cfg, nil)
	if err != nil {
		t.Fatalf("resume from backup failed: %v", err)
	}
	if resumed.Epoch() == 0 {
		t.Error("resume ignored the surviving backup and started fresh")
	}

	// With both primary and backup corrupt, the load fails loudly.
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bak, corrupted[:len(corrupted)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStream(path, cfg, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("load with both copies corrupt: err = %v, want ErrBadState", err)
	}
}

// TestStreamStateDecodeRobust pins CRC coverage: every truncation and
// every single-byte corruption of a valid state file must surface as
// ErrBadState — the checksum trailer covers the entire payload, so no
// torn or flipped state can silently half-load.
func TestStreamStateDecodeRobust(t *testing.T) {
	d := streamTestWeb(53, 8, 3)
	s, err := NewStream(StreamConfig{EpochSize: 5, PublishEvery: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), source.FromDataset(d), source.Totals(d)); err != nil {
		t.Fatal(err)
	}
	valid := s.encodeState()
	cfg := StreamConfig{EpochSize: 5, PublishEvery: 2}

	decode := func(buf []byte) error {
		fresh, err := NewStream(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fresh.decodeState(buf)
	}
	if err := decode(valid); err != nil {
		t.Fatalf("valid state failed to decode: %v", err)
	}
	for n := 0; n < len(valid); n++ {
		if err := decode(valid[:n]); !errors.Is(err, ErrBadState) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrBadState", n, err)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x41
		if err := decode(mut); !errors.Is(err, ErrBadState) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadState", i, err)
		}
	}
}

// FuzzStreamStateDecode hammers the codec with arbitrary mutations of
// valid v1/v2 states: any input must either decode cleanly or return
// ErrBadState — never panic, never return an unclassified error.
func FuzzStreamStateDecode(f *testing.F) {
	d := streamTestWeb(54, 8, 3)
	s, err := NewStream(StreamConfig{EpochSize: 5, PublishEvery: 2}, nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Run(context.Background(), source.FromDataset(d), source.Totals(d)); err != nil {
		f.Fatal(err)
	}
	valid := s.encodeState()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(streamStateMagic))
	f.Add([]byte{})

	cfg := StreamConfig{EpochSize: 5, PublishEvery: 2}
	f.Fuzz(func(t *testing.T, buf []byte) {
		fresh, err := NewStream(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.decodeState(buf); err != nil && !errors.Is(err, ErrBadState) {
			t.Fatalf("decode returned unclassified error %v", err)
		}
	})
}
