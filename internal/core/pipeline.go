// Package core orchestrates the end-to-end big-data-integration
// pipeline the ICDE 2013 tutorial describes: blocking → record linkage
// → schema alignment → data fusion, with the linkage-before-alignment
// ordering the tutorial advocates for identifier-rich domains (and the
// traditional schema-first ordering available for the ablation).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/similarity"
)

// Order selects the pipeline stage ordering.
type Order int

const (
	// LinkageFirst links records on identifiers/text first and uses the
	// clusters as instance evidence for schema alignment — the
	// tutorial's recommended ordering at web scale.
	LinkageFirst Order = iota
	// SchemaFirst aligns schemas from names and value distributions
	// only, normalises, then links — the traditional ordering.
	SchemaFirst
)

// String names the ordering. Unknown values are reported as such, not
// passed off as linkage-first — Validate rejects them anyway.
func (o Order) String() string {
	switch o {
	case LinkageFirst:
		return "linkage-first"
	case SchemaFirst:
		return "schema-first"
	}
	return fmt.Sprintf("order(%d)", int(o))
}

// Sentinel errors for constructor-time misconfigurations. Validate and
// the Build* helpers wrap these with the offending name, so callers can
// branch with errors.Is while still seeing the typo in the message.
var (
	// ErrUnknownOrder is returned for stage orders outside the enum.
	ErrUnknownOrder = errors.New("core: unknown stage order")
	// ErrUnknownClusterer is returned for unrecognised clusterer names.
	ErrUnknownClusterer = errors.New("core: unknown clusterer")
	// ErrUnknownFuser is returned for unrecognised fuser names.
	ErrUnknownFuser = errors.New("core: unknown fuser")
)

// ZeroThreshold is the sentinel meaning "explicitly zero" for the
// threshold fields, whose literal zero value means "use the default"
// (a plain float64 cannot distinguish unset from 0).
const ZeroThreshold = -1.0

// Config controls a pipeline run. The zero value is usable.
type Config struct {
	Order Order

	// Blocking.
	BlockAttrs []string // token-blocking attributes; default {"title"}
	MaxBlock   int      // purge blocks larger than this; default 100
	MetaBlock  bool     // apply meta-blocking (ECBS/WEP) after token blocking

	// RankFusion replaces single-blocker candidate generation with
	// rank-fused multi-blocker generation: token, q-gram, MinHash LSH,
	// sorted-neighbourhood, phonetic and identifier blocking each
	// produce a ranked candidate stream (progressive emission order),
	// and the streams are fused with reciprocal-rank fusion so
	// consensus candidates come first — the ordering a ComparisonBudget
	// consumes. Requires the engine path (incompatible with
	// MaterializeCandidates).
	RankFusion bool
	// RRFK is the reciprocal-rank-fusion constant (score contribution
	// is 1/(RRFK+rank+1)); 0 means the default 60.
	RRFK float64

	// ComparisonBudget, when > 0, caps how many candidate pairs the
	// matcher scores: the candidate stream is consumed front-first and
	// matching stops at the budget — pay-as-you-go resolution, most
	// effective over a progressively ordered (rank-fused) stream.
	// Report.Comparisons records how many comparisons actually ran.
	ComparisonBudget int

	// Matching.
	IdentifierAttrs []string // exact-match attributes; default {"pid"}
	MatchAttrs      []string // comparator attributes; default {"title"}
	// MatchThreshold is the match decision threshold in [0,1]; zero
	// value means the default 0.6, ZeroThreshold means literally 0.
	MatchThreshold float64
	FellegiSunter  bool // train an FS matcher instead of threshold

	// Clustering: "components" (default), "center", "merge",
	// "correlation", or "swoosh" (merge-based resolution inside blocks:
	// accumulated evidence can link records no pair of originals
	// matches directly).
	Clusterer string

	// Schema alignment. Zero value means the default 0.5, ZeroThreshold
	// means literally 0.
	AlignThreshold float64

	// Fusion: "vote" (default), "weighted", "truthfinder", "accu",
	// "popaccu", "accucopy".
	Fuser string

	// Workers bounds every parallel stage (blocking, matching, fusion);
	// default NumCPU via parallel pkg. Results are identical for any
	// value.
	Workers int

	// Shards splits blocking's block building and pair generation into
	// this many data shards (0 or 1 = one shard per worker for block
	// building, unsharded pair generation). The shard plan depends only
	// on the data and this count, so output is identical for any value.
	Shards int

	// PairMemBudget, when > 0, bounds the bytes of packed pair codes
	// blocking holds in RAM. A pass whose raw pair codes exceed it
	// spills sorted runs to SpillDir and streams the deduplicated
	// candidates into matching through bounded batches instead of
	// materialising them. Output is identical either way.
	PairMemBudget int64

	// SpillDir is the directory for blocking spill runs ("" =
	// os.TempDir()).
	SpillDir string

	// StageTimeout, when positive, bounds each top-level stage (linkage,
	// alignment, fusion) with its own deadline. A stage that overruns is
	// cancelled at the next chunk boundary and RunCtx returns an error
	// satisfying errors.Is(err, context.DeadlineExceeded).
	StageTimeout time.Duration

	// NoFeatureIndex disables the per-record feature cache in matching
	// (each pair re-tokenises its records). Matching output is identical
	// either way; the knob exists for ablations and benchmark baselines.
	NoFeatureIndex bool

	// MaterializeCandidates forces the historical blocking path: map-form
	// blocks, a fully materialised []data.Pair candidate slice and
	// map-based dedup. The default (false) runs the interned parallel
	// blocking engine and streams packed candidates straight into the
	// matcher. Candidates and matches are identical either way; the knob
	// exists for ablations and benchmark baselines.
	MaterializeCandidates bool

	// Obs, when set, records per-stage metrics and the stage span tree
	// into the registry (falling back to obs.Default() when nil). A nil
	// registry with no process default disables recording at ~zero cost.
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if len(c.BlockAttrs) == 0 {
		c.BlockAttrs = []string{"title"}
	}
	if c.MaxBlock <= 0 {
		c.MaxBlock = 100
	}
	if c.IdentifierAttrs == nil {
		c.IdentifierAttrs = []string{"pid"}
	}
	if len(c.MatchAttrs) == 0 {
		c.MatchAttrs = []string{"title"}
	}
	switch c.MatchThreshold {
	case 0:
		c.MatchThreshold = 0.6
	case ZeroThreshold:
		c.MatchThreshold = 0
	}
	if c.Clusterer == "" {
		c.Clusterer = "components"
	}
	switch c.AlignThreshold {
	case 0:
		c.AlignThreshold = 0.5
	case ZeroThreshold:
		c.AlignThreshold = 0
	}
	if c.Fuser == "" {
		c.Fuser = "vote"
	}
	if c.RRFK == 0 {
		c.RRFK = blocking.DefaultRRFK
	}
}

// Report is the full output of a pipeline run.
type Report struct {
	Candidates  int               // candidate pairs after blocking
	Comparisons int               // pairs the matcher actually scored (≤ Candidates under a budget)
	Matched     []data.ScoredPair // pairs the matcher accepted
	Clusters    data.Clustering   // linkage result

	Schema     *schema.MediatedSchema
	Transforms []schema.Transform
	Normalized *data.Dataset // records rewritten into the mediated schema

	Claims *data.ClaimSet // claims over (cluster, mediated attr)
	Fusion *fusion.Result

	StageTime map[string]time.Duration

	// Memoized serving snapshot (see Snapshot): built once on first
	// query, shared by every later Entities/Search call. Reports are
	// passed by pointer; the Once makes concurrent first queries safe.
	snapOnce sync.Once
	snap     *Snapshot
	snapErr  error
}

// Pipeline runs the configured integration flow.
type Pipeline struct {
	cfg Config
}

// New builds a pipeline, resolving config defaults.
func New(cfg Config) *Pipeline {
	cfg.defaults()
	return &Pipeline{cfg: cfg}
}

// Config returns the resolved configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Validate rejects configurations naming unknown components, so typos
// fail loudly instead of silently running defaults.
func (c Config) Validate() error {
	switch c.Order {
	case LinkageFirst, SchemaFirst:
	default:
		return fmt.Errorf("%w %v (want linkage-first or schema-first)", ErrUnknownOrder, c.Order)
	}
	switch c.Clusterer {
	case "", "components", "center", "merge", "correlation", "swoosh":
	default:
		return fmt.Errorf("%w %q (want components, center, merge, correlation or swoosh)", ErrUnknownClusterer, c.Clusterer)
	}
	if _, err := BuildFuser(c.Fuser); err != nil {
		return err
	}
	if t := c.MatchThreshold; t != ZeroThreshold && (t < 0 || t > 1) {
		return fmt.Errorf("core: match threshold %f out of [0,1]", t)
	}
	if t := c.AlignThreshold; t != ZeroThreshold && (t < 0 || t > 1) {
		return fmt.Errorf("core: align threshold %f out of [0,1]", t)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if c.PairMemBudget < 0 {
		return fmt.Errorf("core: negative pair-memory budget %d", c.PairMemBudget)
	}
	if c.RRFK < 0 {
		return fmt.Errorf("core: negative RRF constant %f", c.RRFK)
	}
	if c.ComparisonBudget < 0 {
		return fmt.Errorf("core: negative comparison budget %d", c.ComparisonBudget)
	}
	if c.RankFusion && c.MaterializeCandidates {
		return fmt.Errorf("core: rank fusion requires the engine path (disable MaterializeCandidates)")
	}
	return nil
}

// reg resolves the pipeline's metrics registry (explicit config beats
// the process default; nil disables).
func (p *Pipeline) reg() *obs.Registry { return obs.OrDefault(p.cfg.Obs) }

// Run executes the pipeline over a dataset with no cancellation. Stage
// timings are recorded as a span tree rooted at "pipeline" (visible in
// metric snapshots when a registry is attached); Report.StageTime is
// derived from that tree, so its keys and values match the historical
// ad-hoc bookkeeping.
func (p *Pipeline) Run(d *data.Dataset) (*Report, error) {
	return p.RunCtx(context.Background(), d)
}

// RunCtx is Run under a context: cancelling ctx stops the pipeline at
// the next parallel chunk boundary and returns an error satisfying
// errors.Is(err, ctx.Err()). Config.StageTimeout additionally bounds
// each top-level stage with its own deadline.
func (p *Pipeline) RunCtx(ctx context.Context, d *data.Dataset) (*Report, error) {
	if err := p.cfg.Validate(); err != nil {
		return nil, err
	}
	if d == nil || d.NumRecords() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &Report{StageTime: map[string]time.Duration{}}
	// StartSpan returns a live span even on a nil registry, so the
	// StageTime derivation below never depends on observability being on.
	root := p.reg().StartSpan("pipeline")
	var err error
	switch p.cfg.Order {
	case SchemaFirst:
		rep, err = p.runSchemaFirst(ctx, d, rep, root)
	default:
		rep, err = p.runLinkageFirst(ctx, d, rep, root)
	}
	root.End()
	if err != nil {
		return nil, err
	}
	for _, sp := range root.Children() {
		rep.StageTime[sp.Name()] += sp.Duration()
	}
	return rep, nil
}

// stageCtx derives the per-stage context: the run context, further
// bounded by StageTimeout when configured. The returned cancel must be
// called when the stage ends to release the timer.
func (p *Pipeline) stageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.StageTimeout > 0 {
		return context.WithTimeout(ctx, p.cfg.StageTimeout)
	}
	return context.WithCancel(ctx)
}

// runStage runs one top-level stage under its derived context, mapping
// a stage-deadline overrun back to context.DeadlineExceeded even when
// the stage surfaced it through a wrapped parallel error.
func (p *Pipeline) runStage(ctx context.Context, name string, f func(context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s stage: %w", name, err)
	}
	sctx, cancel := p.stageCtx(ctx)
	defer cancel()
	if err := f(sctx); err != nil {
		return fmt.Errorf("core: %s stage: %w", name, err)
	}
	return nil
}

func (p *Pipeline) runLinkageFirst(ctx context.Context, d *data.Dataset, rep *Report, root *obs.Span) (*Report, error) {
	if err := p.runStage(ctx, "linkage", func(sctx context.Context) error {
		return p.linkStage(sctx, d, rep, root)
	}); err != nil {
		return nil, err
	}
	if err := p.runStage(ctx, "alignment", func(sctx context.Context) error {
		return p.alignStage(sctx, d, rep, rep.Clusters, root)
	}); err != nil {
		return nil, err
	}
	if err := p.runStage(ctx, "fusion", func(sctx context.Context) error {
		return p.fuseStage(sctx, rep, root)
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

func (p *Pipeline) runSchemaFirst(ctx context.Context, d *data.Dataset, rep *Report, root *obs.Span) (*Report, error) {
	// Align with name+instance evidence only (no clusters yet).
	if err := p.runStage(ctx, "alignment", func(sctx context.Context) error {
		return p.alignStage(sctx, d, rep, nil, root)
	}); err != nil {
		return nil, err
	}
	// Link over the normalised dataset.
	if err := p.runStage(ctx, "linkage", func(sctx context.Context) error {
		return p.linkStage(sctx, rep.Normalized, rep, root)
	}); err != nil {
		return nil, err
	}
	// Rebuild claims with the final clusters.
	if err := p.runStage(ctx, "fusion", func(sctx context.Context) error {
		return p.fuseStage(sctx, rep, root)
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// linkStage: blocking → matching → clustering. The default path keeps
// candidates packed inside the blocking engine's CandidateSet all the
// way to the matcher; MaterializeCandidates restores the historical
// pair-slice path for ablations.
func (p *Pipeline) linkStage(ctx context.Context, d *data.Dataset, rep *Report, root *obs.Span) error {
	reg := p.reg()
	records := d.Records()

	sp := root.Child("blocking")
	keyFn := blocking.TokenKey(p.cfg.BlockAttrs...)
	var (
		candidates []data.Pair            // materialised path
		cs         *blocking.CandidateSet // streaming path
	)
	if p.cfg.MaterializeCandidates {
		if err := ctx.Err(); err != nil {
			sp.End()
			return err
		}
		blocks := blocking.BuildBlocks(records, keyFn).Purge(p.cfg.MaxBlock)
		if p.cfg.MetaBlock {
			candidates = blocking.MetaBlocker{
				Weight: blocking.ECBS, Prune: blocking.WEP,
			}.Candidates(blocks)
		} else {
			candidates = blocks.Pairs()
		}
		// Identifier blocking always contributes candidates: records
		// sharing an identifier must be compared no matter what.
		for _, attr := range p.cfg.IdentifierAttrs {
			idPairs := blocking.Standard{Key: blocking.AttrExactKey(attr)}.Candidates(records)
			candidates = append(candidates, idPairs...)
		}
		candidates = dedupePairs(candidates)
		rep.Candidates = len(candidates)
	} else {
		eng := blocking.NewEngineOpts(records, blocking.Opts{
			Workers:       p.cfg.Workers,
			Shards:        p.cfg.Shards,
			PairMemBudget: p.cfg.PairMemBudget,
			SpillDir:      p.cfg.SpillDir,
			Obs:           reg,
			Ctx:           ctx,
		})
		if p.cfg.RankFusion {
			// Multi-blocker rank fusion: every blocker contributes a
			// ranked stream, RRF orders consensus candidates first, and
			// the fused stream feeds matching front-first (the order a
			// ComparisonBudget pays for).
			cs = eng.FuseRanked(p.cfg.RRFK, p.rankedBlockers()...)
		} else {
			idx := eng.Blocks(keyFn).Purge(p.cfg.MaxBlock)
			var base *blocking.CandidateSet
			if p.cfg.MetaBlock {
				base = blocking.MetaBlocker{
					Weight: blocking.ECBS, Prune: blocking.WEP, Workers: p.cfg.Workers, Obs: reg,
				}.Pruned(idx)
			} else {
				base = idx.CandidateSet()
			}
			// Identifier blocking shares the engine's interning, so the union
			// dedups on packed codes without leaving rank space.
			sets := []*blocking.CandidateSet{base}
			for _, attr := range p.cfg.IdentifierAttrs {
				sets = append(sets, eng.Blocks(blocking.AttrExactKey(attr)).CandidateSet())
			}
			cs = blocking.UnionCandidates(sets...)
			// The union retains any spill runs it shares with its inputs, so
			// the inputs release their references now and the union's Close
			// (deferred to stage end) drops the last one. Close is a no-op on
			// in-memory sets, and UnionCandidates may return an input
			// unchanged — that one keeps its reference.
			for _, s := range sets {
				if s != cs {
					s.Close()
				}
			}
		}
		// Err surfaces any cancellation or worker panic the engine's sink
		// recorded; the recorded error already names the failing pass.
		if err := eng.Err(); err != nil {
			cs.Close()
			sp.End()
			return err
		}
		defer cs.Close()
		rep.Candidates = cs.Len()
	}
	reg.Counter("blocking.candidates").Add(int64(rep.Candidates))
	sp.End()

	sp = root.Child("matching")
	// Only Fellegi–Sunter training needs a pair slice; everything else
	// consumes the packed set directly.
	matcher, err := p.buildMatcher(d, func() []data.Pair {
		if p.cfg.MaterializeCandidates {
			return candidates
		}
		return cs.Pairs()
	}, sp)
	if err != nil {
		sp.End()
		return err
	}
	scorer := matcher
	if p.cfg.NoFeatureIndex {
		scorer = linkage.NoIndex(matcher)
	}
	rep.Comparisons = rep.Candidates
	switch {
	case p.cfg.MaterializeCandidates && p.cfg.ComparisonBudget > 0:
		rep.Matched, rep.Comparisons, err = linkage.MatchBudgetedCtx(ctx, d, linkage.PairSlice(candidates), scorer, p.cfg.ComparisonBudget, p.cfg.Workers, reg)
	case p.cfg.MaterializeCandidates:
		rep.Matched, err = linkage.MatchPairsCtx(ctx, d, candidates, scorer, p.cfg.Workers, reg)
	case p.cfg.ComparisonBudget > 0:
		// Budgeted progressive matching: consume the stream front-first
		// and stop at the comparison budget.
		rep.Matched, rep.Comparisons, err = linkage.MatchBudgetedCtx(ctx, d, cs, scorer, p.cfg.ComparisonBudget, p.cfg.Workers, reg)
	case cs.Spilled():
		// Spill-backed sets have no random access: stream them through
		// the batched matcher (identical output, bounded pair memory).
		rep.Matched, err = linkage.MatchStreamCtx(ctx, d, cs, scorer, p.cfg.Workers, reg)
	default:
		rep.Matched, err = linkage.MatchPairsFromCtx(ctx, d, cs, scorer, p.cfg.Workers, reg)
	}
	if err != nil {
		sp.End()
		return fmt.Errorf("matching: %w", err)
	}
	sp.End()

	sp = root.Child("clustering")
	if p.cfg.Clusterer == "swoosh" {
		clusters, err := p.swooshCluster(ctx, d, records, rep.Matched, matcher)
		if err != nil {
			sp.End()
			return err
		}
		rep.Clusters = clusters
	} else {
		var ids []string
		for _, r := range records {
			ids = append(ids, r.ID)
		}
		rep.Clusters = p.buildClusterer().Cluster(ids, rep.Matched)
	}
	sp.End()
	reg.Counter("clustering.clusters").Add(int64(len(rep.Clusters)))
	multi := 0
	for _, cl := range rep.Clusters {
		if len(cl) > 1 {
			multi++
		}
	}
	reg.Counter("clustering.multi_record_clusters").Add(int64(multi))
	return nil
}

// rankedBlockers assembles the multi-blocker producer set for rank
// fusion: identifier blocking (the strongest signal, so its streams
// rank their pairs at the very front), token blocking over the
// configured attributes, q-gram and phonetic blocking tolerating typos
// and misspellings, sorted neighbourhood for near-sorted corruption,
// and MinHash LSH for set similarity without key engineering. Key
// blockers purge at MaxBlock like the single-blocker path.
func (p *Pipeline) rankedBlockers() []blocking.RankedBlocker {
	var bs []blocking.RankedBlocker
	for _, attr := range p.cfg.IdentifierAttrs {
		bs = append(bs, blocking.RankedKey{Name: "id:" + attr, Key: blocking.AttrExactKey(attr)})
	}
	bs = append(bs, blocking.RankedKey{
		Name: "token", Key: blocking.TokenKey(p.cfg.BlockAttrs...), MaxBlock: p.cfg.MaxBlock,
	})
	lead := p.cfg.BlockAttrs[0]
	bs = append(bs,
		blocking.RankedKey{Name: "qgram", Key: blocking.QGramKey(lead, 3), MaxBlock: p.cfg.MaxBlock},
		blocking.RankedKey{Name: "phonetic", Key: blocking.PhoneticKey(lead, "soundex"), MaxBlock: p.cfg.MaxBlock},
	)
	var snKeys []blocking.KeyFunc
	for _, attr := range p.cfg.BlockAttrs {
		snKeys = append(snKeys, blocking.AttrExactKey(attr))
	}
	bs = append(bs,
		blocking.RankedSortedNeighborhood{Name: "sortedneighborhood", Keys: snKeys, Window: 5},
		blocking.RankedMinHash{Name: "minhash", MinHash: blocking.MinHashLSH{Attrs: p.cfg.BlockAttrs}},
	)
	return bs
}

// swooshCluster runs R-Swoosh within each connected component of the
// match graph (the candidate groups), so merged evidence can recruit
// records the pairwise matcher missed, without paying O(n²) over the
// whole corpus.
func (p *Pipeline) swooshCluster(ctx context.Context, d *data.Dataset, records []*data.Record,
	matched []data.ScoredPair, matcher linkage.Matcher) (data.Clustering, error) {
	var ids []string
	for _, r := range records {
		ids = append(ids, r.ID)
	}
	coarse := (linkage.ConnectedComponents{}).Cluster(ids, matched)
	uf := linkage.NewUnionFind()
	for _, id := range ids {
		uf.Add(id)
	}
	sw := linkage.Swoosh{Matcher: matcher}
	for _, group := range coarse {
		if len(group) < 2 {
			continue
		}
		// Groups resolve sequentially, so the group boundary is the
		// cancellation granularity for this clusterer.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("swoosh clustering: %w", err)
		}
		recs := make([]*data.Record, 0, len(group))
		for _, id := range group {
			if r := d.Record(id); r != nil {
				recs = append(recs, r)
			}
		}
		resolved, _, err := sw.Resolve(recs)
		if err != nil {
			return nil, fmt.Errorf("swoosh clustering: %w", err)
		}
		for _, cl := range resolved {
			for i := 1; i < len(cl); i++ {
				uf.Union(cl[0], cl[i])
			}
		}
	}
	var out data.Clustering
	for _, set := range uf.Sets() {
		out = append(out, set)
	}
	return out.Normalize(), nil
}

func (p *Pipeline) buildMatcher(d *data.Dataset, candidates func() []data.Pair, sp *obs.Span) (linkage.Matcher, error) {
	attrs := append([]string(nil), p.cfg.MatchAttrs...)
	if p.cfg.FellegiSunter {
		// A probabilistic matcher needs several comparison fields to
		// separate the classes; widen with the most frequent attributes
		// (the ones many sources kept under their canonical names).
		attrs = append(attrs, topAttrs(d, 5, attrs)...)
	}
	fields := make([]similarity.FieldWeight, 0, len(attrs))
	for _, a := range attrs {
		w := 1.0
		if a == "title" {
			w = 2
		}
		fields = append(fields, similarity.FieldWeight{Attr: a, Weight: w, Metric: similarity.Jaccard})
	}
	cmp := similarity.NewRecordComparator(fields...)
	cmp.AttachObs(p.reg())
	if p.cfg.FellegiSunter {
		fs := linkage.NewFellegiSunter(cmp)
		fs.Threshold = 0.9
		fs.AgreeAt = 0.7
		train := sp.Child("train")
		err := fs.Train(d, candidates(), 15)
		train.End()
		if err != nil {
			return nil, fmt.Errorf("core: training matcher: %w", err)
		}
		if p.cfg.NoFeatureIndex {
			// Train attaches a feature index for its own EM passes; drop
			// it so scoring goes through the uncached path.
			cmp.AttachIndex(nil)
		}
		return &fsWithIdentifier{fs: fs, exact: p.cfg.IdentifierAttrs}, nil
	}
	return linkage.RuleMatcher{
		Exact:      p.cfg.IdentifierAttrs,
		Comparator: cmp,
		Threshold:  p.cfg.MatchThreshold,
	}, nil
}

// fsWithIdentifier short-circuits identifier equality ahead of the
// probabilistic model, mirroring RuleMatcher's behaviour.
type fsWithIdentifier struct {
	fs    *linkage.FellegiSunter
	exact []string
}

// PrepareIndex implements linkage.IndexPreparer.
func (m *fsWithIdentifier) PrepareIndex(d *data.Dataset, candidates []data.Pair) {
	m.fs.PrepareIndex(d, candidates)
}

// PrepareIndexIDs implements linkage.IDIndexPreparer.
func (m *fsWithIdentifier) PrepareIndexIDs(d *data.Dataset, ids []string) {
	m.fs.PrepareIndexIDs(d, ids)
}

// Match implements linkage.Matcher.
func (m *fsWithIdentifier) Match(a, b *data.Record) (float64, bool) {
	for _, attr := range m.exact {
		va, vb := a.Get(attr), b.Get(attr)
		if !va.IsNull() && !vb.IsNull() && va.Key() == vb.Key() {
			return 1, true
		}
	}
	return m.fs.Match(a, b)
}

func (p *Pipeline) buildClusterer() linkage.Clusterer {
	switch p.cfg.Clusterer {
	case "center":
		return linkage.Center{}
	case "merge":
		return linkage.MergeCenter{}
	case "correlation":
		return linkage.CorrelationClustering{MinScore: p.cfg.MatchThreshold}
	default:
		return linkage.ConnectedComponents{}
	}
}

// alignStage: profiling → (optional linkage evidence) → mediated schema
// → transforms → normalisation.
func (p *Pipeline) alignStage(ctx context.Context, d *data.Dataset, rep *Report, clusters data.Clustering, root *obs.Span) error {
	reg := p.reg()
	sp := root.Child("alignment")
	defer sp.End()
	// Alignment's phases are sequential and cheap relative to linkage and
	// fusion, so cancellation is checked at phase boundaries rather than
	// threaded into the profiler.
	if err := ctx.Err(); err != nil {
		return err
	}
	sub := sp.Child("align")
	profiles := schema.Profiler{}.Build(d)
	aligner := schema.Aligner{Threshold: p.cfg.AlignThreshold, Ctx: ctx}
	if clusters != nil {
		le := schema.NewLinkageEvidence(d, clusters)
		aligner.Evidence = le.Blend
	}
	ms, err := aligner.Align(profiles)
	sub.End()
	if err != nil {
		return fmt.Errorf("schema alignment: %w", err)
	}
	rep.Schema = ms
	if clusters != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		sub = sp.Child("transforms")
		rep.Transforms, err = schema.DiscoverTransformsCtx(ctx, d, clusters, ms, 3)
		sub.End()
		if err != nil {
			return fmt.Errorf("transform discovery: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sub = sp.Child("normalize")
	norm := schema.NewNormalizer(ms, rep.Transforms)
	rep.Normalized = norm.ApplyAll(d)
	sub.End()
	reg.Counter("alignment.mediated_attrs").Add(int64(len(ms.Attrs)))
	reg.Counter("alignment.transforms").Add(int64(len(rep.Transforms)))
	return nil
}

// fuseStage: claims over (cluster, mediated attribute) → fusion.
func (p *Pipeline) fuseStage(ctx context.Context, rep *Report, root *obs.Span) error {
	if rep.Normalized == nil || rep.Clusters == nil {
		return fmt.Errorf("fusion requires alignment and linkage results")
	}
	sp := root.Child("fusion")
	defer sp.End()
	sub := sp.Child("claims")
	var attrs []string
	for _, ma := range rep.Schema.Attrs {
		attrs = append(attrs, ma.Name)
	}
	attrs = dedupeStrings(attrs)
	rep.Claims = data.ClaimsFromClusters(rep.Normalized, rep.Clusters, attrs)
	sub.End()
	fuser, err := BuildFuserCtx(ctx, p.cfg.Fuser, p.cfg.Workers, p.reg())
	if err != nil {
		return err
	}
	res, err := fuser.Fuse(rep.Claims)
	if err != nil {
		return fmt.Errorf("fusion: %w", err)
	}
	rep.Fusion = res
	return nil
}

// BuildFuser resolves a fuser by name with the default worker pool.
func BuildFuser(name string) (fusion.Fuser, error) {
	return BuildFuserWith(name, 0)
}

// BuildFuserWith resolves a fuser by name with an explicit worker
// bound (0 = NumCPU). Fusion output is identical for any worker count.
func BuildFuserWith(name string, workers int) (fusion.Fuser, error) {
	return BuildFuserObs(name, workers, nil)
}

// BuildFuserObs is BuildFuserWith with an attached metrics registry:
// the fuser records "fusion." index sizes and EM convergence metrics.
func BuildFuserObs(name string, workers int, reg *obs.Registry) (fusion.Fuser, error) {
	return BuildFuserCtx(nil, name, workers, reg)
}

// BuildFuserCtx is BuildFuserObs with a cancellation context wired into
// the fuser's parallel passes (nil never cancels). Unknown names return
// an error wrapping ErrUnknownFuser.
func BuildFuserCtx(ctx context.Context, name string, workers int, reg *obs.Registry) (fusion.Fuser, error) {
	switch name {
	case "", "vote":
		return fusion.MajorityVote{Workers: workers, Obs: reg, Ctx: ctx}, nil
	case "truthfinder":
		return fusion.TruthFinder{Workers: workers, Obs: reg, Ctx: ctx}, nil
	case "accu":
		return fusion.ACCU{Workers: workers, Obs: reg, Ctx: ctx}, nil
	case "popaccu":
		return fusion.ACCU{Popularity: true, Workers: workers, Obs: reg, Ctx: ctx}, nil
	case "accucopy":
		return fusion.ACCUCOPY{Accu: fusion.ACCU{Workers: workers, Obs: reg, Ctx: ctx}}, nil
	case "numeric":
		return fusion.NumericFusion{}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownFuser, name)
	}
}

// topAttrs returns the k most frequent attributes in the dataset,
// excluding identifiers, bookkeeping fields and already-chosen attrs.
func topAttrs(d *data.Dataset, k int, exclude []string) []string {
	skip := map[string]bool{"title": true, "pid": true, "epoch": true}
	for _, a := range exclude {
		skip[a] = true
	}
	counts := d.Attributes()
	// Sort by count desc, name asc for determinism.
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0; j-- {
			a, b := counts[j-1], counts[j]
			if b.Count > a.Count || (b.Count == a.Count && b.Attr < a.Attr) {
				counts[j-1], counts[j] = b, a
			} else {
				break
			}
		}
	}
	var out []string
	for _, ac := range counts {
		if skip[ac.Attr] {
			continue
		}
		out = append(out, ac.Attr)
		if len(out) == k {
			break
		}
	}
	return out
}

func dedupePairs(ps []data.Pair) []data.Pair {
	seen := map[data.Pair]bool{}
	out := ps[:0:0]
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func dedupeStrings(ss []string) []string {
	seen := map[string]bool{}
	out := ss[:0:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
