package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/source"
)

func streamTestWeb(seed int64, entities, sources int) *data.Dataset {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: entities})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: sources, DirtLevel: 1,
		IdentifierRate: 0.9, Heterogeneity: 0.3,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	return web.Dataset
}

// streamFingerprint renders every output-relevant piece of stream state
// as one string; byte equality of fingerprints is the resume contract
// the chaos tests assert.
func streamFingerprint(t *testing.T, s *Stream) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d ingested=%d publishes=%d comparisons=%d\n",
		s.Epoch(), s.Ingested(), s.Publishes(), s.Comparisons())
	fmt.Fprintf(&b, "clusters=%v\n", s.Clusters())
	cursors := s.Cursors()
	for _, id := range sortedKeysInt(cursors) {
		fmt.Fprintf(&b, "cursor %s=%d\n", id, cursors[id])
	}
	acc := s.Accuracy()
	for _, id := range sortedKeysFloat(acc) {
		fmt.Fprintf(&b, "acc %s=%.17g\n", id, acc[id])
	}
	snap, err := s.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range snap.Entities() {
		fmt.Fprintf(&b, "entity %s title=%q records=%v sources=%v\n", e.ID, e.Title, e.Records, e.Sources)
		attrs := make([]string, 0, len(e.Values))
		for a := range e.Values {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			fmt.Fprintf(&b, "  %s=%s conf=%.17g\n", a, e.Values[a].Key(), e.Confidence[a])
		}
	}
	return b.String()
}

func TestStreamPublishesIncrementally(t *testing.T) {
	d := streamTestWeb(11, 60, 8)
	fleet := source.FromDataset(d)

	var published []*Snapshot
	s, err := NewStream(StreamConfig{EpochSize: 10, PublishEvery: 2},
		func(snap *Snapshot) { published = append(published, snap) })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}

	if s.Ingested() != int64(d.NumRecords()) {
		t.Errorf("ingested %d, want %d", s.Ingested(), d.NumRecords())
	}
	if int64(len(published)) != s.Publishes() || len(published) == 0 {
		t.Fatalf("publish callback saw %d snapshots, stream counted %d", len(published), s.Publishes())
	}
	// Entity counts grow (weakly) as the stream drains, and the final
	// published view covers every ingested record.
	for i := 1; i < len(published); i++ {
		if published[i].Len() < published[i-1].Len() {
			t.Errorf("published entity count shrank: %d then %d", published[i-1].Len(), published[i].Len())
		}
	}
	final := published[len(published)-1]
	got := 0
	for _, e := range final.Entities() {
		got += len(e.Records)
	}
	if got != d.NumRecords() {
		t.Errorf("final snapshot covers %d records, want %d", got, d.NumRecords())
	}
	// The stream never left a dirty view unpublished at drain.
	if s.StalenessNow() != 0 {
		t.Errorf("staleness after drain = %v, want 0", s.StalenessNow())
	}
}

func TestStreamStalenessWindowDrivesPublishing(t *testing.T) {
	d := streamTestWeb(12, 30, 6)
	fleet := source.FromDataset(d)

	// A 1ns window means "publish on every dirty epoch": each applied
	// epoch exceeds the window by the time the cadence check runs.
	s, err := NewStream(StreamConfig{EpochSize: 8, Staleness: time.Nanosecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}
	if s.Publishes() != int64(s.Epoch()) {
		t.Errorf("publishes %d, want one per epoch (%d)", s.Publishes(), s.Epoch())
	}
}

func TestStreamMatchesBatchEntityCount(t *testing.T) {
	d := streamTestWeb(13, 50, 8)
	fleet := source.FromDataset(d)

	s, err := NewStream(StreamConfig{EpochSize: 25, PublishEvery: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}

	truth := d.GroundTruthClusters()
	if len(truth) == 0 {
		t.Fatal("web carries no ground truth")
	}
	got := len(s.Clusters())
	// Identifier-driven matching keeps the online clustering close to
	// the truth partition; a gross mismatch means the stream path lost
	// records or never linked.
	if got < len(truth)/2 || got > len(truth)*2 {
		t.Errorf("stream clusters = %d, truth = %d", got, len(truth))
	}
}

func TestStreamStateRoundTripByteIdentical(t *testing.T) {
	d := streamTestWeb(14, 40, 6)
	fleet := source.FromDataset(d)
	path := filepath.Join(t.TempDir(), "stream.state")

	cfg := StreamConfig{EpochSize: 7, PublishEvery: 2, StatePath: path}
	s, err := NewStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}

	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStream(path, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The restored stream re-encodes to the exact bytes on disk, and
	// every observable matches the original.
	if string(restored.encodeState()) != string(onDisk) {
		t.Error("re-encoded state differs from the persisted bytes")
	}
	if a, b := streamFingerprint(t, s), streamFingerprint(t, restored); a != b {
		t.Errorf("restored stream fingerprint differs:\n--- original\n%s--- restored\n%s", a, b)
	}
}

func TestStreamStateRejectsCorruption(t *testing.T) {
	d := streamTestWeb(15, 20, 4)
	fleet := source.FromDataset(d)
	path := filepath.Join(t.TempDir(), "stream.state")
	cfg := StreamConfig{EpochSize: 10, StatePath: path}
	s, err := NewStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the rotated backup: with no fallback available, corruption
	// must surface as ErrBadState (recovery through the backup has its
	// own test).
	os.Remove(path + ".bak")
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStream(path, cfg, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("corrupted state load err = %v, want ErrBadState", err)
	}
	if err := os.WriteFile(path, buf[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStream(path, cfg, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("truncated state load err = %v, want ErrBadState", err)
	}

	// ResumeStream with no file starts fresh rather than failing.
	fresh, err := ResumeStream(StreamConfig{StatePath: filepath.Join(t.TempDir(), "none")}, nil)
	if err != nil || fresh.Epoch() != 0 {
		t.Errorf("fresh resume: %v epoch=%d", err, fresh.Epoch())
	}
}

func TestStreamConfigValidation(t *testing.T) {
	cases := []StreamConfig{
		{MatchThreshold: 1.5},
		{MatchThreshold: -0.2},
		{FusionN: -1},
		{PublishEvery: -1},
		{Workers: -1},
	}
	for i, cfg := range cases {
		if _, err := NewStream(cfg, nil); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func BenchmarkStreamApplyEpoch(b *testing.B) {
	d := streamTestWeb(20, 200, 12)
	fleet := source.FromDataset(d)
	metas := map[string]*data.Source{}
	for _, src := range fleet {
		metas[src.Meta().ID] = src.Meta()
	}
	str, err := source.NewStreamer(context.Background(), fleet, source.StreamConfig{EpochSize: 50})
	if err != nil {
		b.Fatal(err)
	}
	defer str.Close()
	var epochs []source.Epoch
	for ep := range str.C {
		epochs = append(epochs, ep)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewStream(StreamConfig{EpochSize: 50}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ep := range epochs {
			if err := s.ApplyEpoch(metas, ep); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStreamPublish(b *testing.B) {
	d := streamTestWeb(21, 200, 12)
	fleet := source.FromDataset(d)
	s, err := NewStream(StreamConfig{EpochSize: 100, PublishEvery: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(context.Background(), fleet, source.Totals(d)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Publish(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
