package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/source"
	"repro/internal/source/faults"
)

// chaosFaults is the fault mix the crash/resume tests stream through:
// transient flakes and truncated payloads are content-preserving (the
// watch refetches until the cursor window is covered), so replay stays
// byte-identical. Corruption is deliberately absent — it rewrites
// record content per fetch, which no resume protocol can make
// replay-identical.
func chaosFaults(seed int64) faults.Config {
	return faults.Config{Seed: seed, TransientRate: 0.25, TruncateRate: 0.25, TruncateFraction: 0.6}
}

// TestStreamCrashResumeByteIdentical is the chaos gate for stream
// persistence: run a fault-injected stream, kill it mid-epoch (torn
// in-memory work, state file still at the last epoch boundary),
// restore from disk with a freshly fault-wrapped fleet, finish — and
// require the final clustering/fusion output byte-identical to an
// uninterrupted run, at every worker count.
func TestStreamCrashResumeByteIdentical(t *testing.T) {
	d := streamTestWeb(31, 80, 8)
	totals := source.Totals(d)
	metas := map[string]*data.Source{}
	for _, s := range d.Sources() {
		metas[s.ID] = s
	}
	// Retries sized so a poll failing through the whole budget is
	// effectively impossible under the 25%/25% fault mix.
	const retries = 16

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := StreamConfig{
				EpochSize: 9, PublishEvery: 2, Retries: retries, Workers: workers,
			}

			// Uninterrupted baseline, itself streaming through the fault
			// injector.
			base, err := NewStream(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			fleet := faults.WrapAll(source.FromDataset(d), chaosFaults(7))
			if err := base.Run(context.Background(), fleet, totals); err != nil {
				t.Fatal(err)
			}
			want := streamFingerprint(t, base)

			// Crashing run: drive epochs by hand with Run's exact
			// publish/save cadence, then "crash" mid-epoch — half of the
			// next epoch applied in memory, nothing saved.
			path := filepath.Join(t.TempDir(), "stream.state")
			ccfg := cfg
			ccfg.StatePath = path
			crashed, err := NewStream(ccfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			str, err := source.NewStreamer(context.Background(),
				faults.WrapAll(source.FromDataset(d), chaosFaults(7)),
				source.StreamConfig{EpochSize: ccfg.EpochSize, Retries: retries, Totals: totals})
			if err != nil {
				t.Fatal(err)
			}
			defer str.Close()
			const crashAfter = 3
			for ep := range str.C {
				if ep.Seq == crashAfter {
					torn := ep
					torn.Records = ep.Records[:len(ep.Records)/2]
					if err := crashed.ApplyEpoch(metas, torn); err != nil {
						t.Fatal(err)
					}
					break // killed: the torn epoch never reaches the state file
				}
				if err := crashed.ApplyEpoch(metas, ep); err != nil {
					t.Fatal(err)
				}
				if crashed.shouldPublish() {
					if _, err := crashed.Publish(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
				if err := crashed.Save(path); err != nil {
					t.Fatal(err)
				}
			}

			// Restore from the persisted state with a freshly wrapped
			// fleet (fault schedules restart, content does not) and let
			// Run finish the stream.
			resumed, err := LoadStream(path, ccfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Epoch() != crashAfter {
				t.Fatalf("restored at epoch %d, want %d (torn epoch must not persist)", resumed.Epoch(), crashAfter)
			}
			if err := resumed.Run(context.Background(),
				faults.WrapAll(source.FromDataset(d), chaosFaults(7)), totals); err != nil {
				t.Fatal(err)
			}

			if got := streamFingerprint(t, resumed); got != want {
				t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
			}
		})
	}
}
