package core

import (
	"testing"
)

// TestPipelineShardedSpilledIdentical: the scale-out knobs (Shards,
// PairMemBudget) must not change a single byte of the pipeline output —
// they only trade memory and parallelism.
func TestPipelineShardedSpilledIdentical(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	base, err := New(Config{Workers: 2}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Workers: 2, Shards: 4},
		{Workers: 2, Shards: 16},
		{Workers: 2, Shards: 4, PairMemBudget: 1 << 10, SpillDir: t.TempDir()},
		{Workers: 8, Shards: 16, PairMemBudget: 1 << 10, SpillDir: t.TempDir()},
	} {
		rep, err := New(cfg).Run(web.Dataset)
		if err != nil {
			t.Fatalf("shards=%d budget=%d: %v", cfg.Shards, cfg.PairMemBudget, err)
		}
		if rep.Candidates != base.Candidates {
			t.Fatalf("shards=%d budget=%d: candidates %d, want %d",
				cfg.Shards, cfg.PairMemBudget, rep.Candidates, base.Candidates)
		}
		if len(rep.Matched) != len(base.Matched) {
			t.Fatalf("shards=%d budget=%d: %d matches, want %d",
				cfg.Shards, cfg.PairMemBudget, len(rep.Matched), len(base.Matched))
		}
		for i := range base.Matched {
			if rep.Matched[i] != base.Matched[i] {
				t.Fatalf("shards=%d budget=%d: match %d = %v, want %v",
					cfg.Shards, cfg.PairMemBudget, i, rep.Matched[i], base.Matched[i])
			}
		}
		if len(rep.Clusters) != len(base.Clusters) {
			t.Fatalf("shards=%d budget=%d: %d clusters, want %d",
				cfg.Shards, cfg.PairMemBudget, len(rep.Clusters), len(base.Clusters))
		}
	}
}

// TestPipelineSpilledFellegiSunter: the FS training path materialises
// candidates from the spilled stream; the run must still complete and
// match the unbudgeted run.
func TestPipelineSpilledFellegiSunter(t *testing.T) {
	web := testWeb(t, 1, 0.9)
	base, err := New(Config{Workers: 2, FellegiSunter: true}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Config{
		Workers: 2, FellegiSunter: true,
		Shards: 4, PairMemBudget: 1 << 10, SpillDir: t.TempDir(),
	}).Run(web.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Matched) != len(base.Matched) {
		t.Fatalf("spilled FS run: %d matches, want %d", len(rep.Matched), len(base.Matched))
	}
}

func TestConfigValidateScaleKnobs(t *testing.T) {
	if err := (Config{Shards: -1}).Validate(); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if err := (Config{PairMemBudget: -1}).Validate(); err == nil {
		t.Fatal("negative pair-memory budget accepted")
	}
	if err := (Config{Shards: 8, PairMemBudget: 1 << 20}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"4096", 4096, false},
		{"64k", 64 << 10, false},
		{"64kb", 64 << 10, false},
		{"256mb", 256 << 20, false},
		{"256M", 256 << 20, false},
		{"2g", 2 << 30, false},
		{"1GB", 1 << 30, false},
		{" 8 mb ", 8 << 20, false},
		{"-1", 0, true},
		{"12q", 0, true},
		{"mb", 0, true},
		{"9999999999g", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseByteSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}
