package similarity

import (
	"math"

	"repro/internal/tokenize"
)

// setOverlap counts the intersection size of two string sets.
func setOverlap(a, b map[string]bool) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for x := range a {
		if b[x] {
			n++
		}
	}
	return n
}

// Jaccard returns |A∩B| / |A∪B| over the word sets of a and b.
// Two empty strings are perfectly similar.
func Jaccard(a, b string) float64 {
	return jaccardSets(tokenize.WordSet(a), tokenize.WordSet(b))
}

// QGramJaccard returns the Jaccard similarity over padded q-gram sets.
func QGramJaccard(a, b string, q int) float64 {
	return jaccardSets(tokenize.QGramSet(a, q), tokenize.QGramSet(b, q))
}

func jaccardSets(sa, sb map[string]bool) float64 {
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := setOverlap(sa, sb)
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|A∩B| / (|A|+|B|) over word sets.
func Dice(a, b string) float64 {
	sa, sb := tokenize.WordSet(a), tokenize.WordSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	return 2 * float64(setOverlap(sa, sb)) / float64(len(sa)+len(sb))
}

// Overlap returns |A∩B| / min(|A|,|B|) over word sets — the overlap
// coefficient, robust to one string being a sub-description of the other.
func Overlap(a, b string) float64 {
	sa, sb := tokenize.WordSet(a), tokenize.WordSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	m := len(sa)
	if len(sb) < m {
		m = len(sb)
	}
	return float64(setOverlap(sa, sb)) / float64(m)
}

// CosineSet returns the set-cosine similarity |A∩B| / sqrt(|A||B|)
// over word sets.
func CosineSet(a, b string) float64 {
	sa, sb := tokenize.WordSet(a), tokenize.WordSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	return float64(setOverlap(sa, sb)) / math.Sqrt(float64(len(sa))*float64(len(sb)))
}

// TFIDFCosine computes corpus-weighted cosine similarity between a and b
// using TF-IDF vectors from the supplied corpus.
func TFIDFCosine(c *tokenize.Corpus, a, b string) float64 {
	va, vb := c.Vector(a), c.Vector(b)
	if va == nil && vb == nil {
		return 1
	}
	return clamp01(tokenize.Dot(va, vb))
}

// TFIDF wraps TFIDFCosine as a field Metric over the supplied corpus.
// When the comparator has a FeatureIndex attached, fields using this
// metric are scored from the index's precomputed interned vectors —
// weighted by the corpus the index was built with (see
// BuildFeatureIndexCorpus to control it) — instead of re-vectorising
// both strings per pair.
func TFIDF(c *tokenize.Corpus) Metric {
	return func(a, b string) float64 { return TFIDFCosine(c, a, b) }
}

// MongeElkan computes the asymmetric Monge-Elkan similarity: for each
// token of a, the best inner similarity against tokens of b, averaged.
// The inner metric defaults to JaroWinkler when nil.
func MongeElkan(a, b string, inner func(x, y string) float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	ta, tb := tokenize.Words(a), tokenize.Words(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// SoftTFIDF combines TF-IDF weighting with a fuzzy inner metric: tokens
// of a and b count as matching when inner similarity ≥ theta, weighted
// by their TF-IDF weights (Cohen et al.). The inner metric defaults to
// JaroWinkler; theta defaults to 0.9 when <= 0.
func SoftTFIDF(c *tokenize.Corpus, a, b string, inner func(x, y string) float64, theta float64) float64 {
	if inner == nil {
		inner = JaroWinkler
	}
	if theta <= 0 {
		theta = 0.9
	}
	va, vb := c.Vector(a), c.Vector(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	var sum float64
	for _, wa := range va {
		best, bestSim := -1, 0.0
		for j, wb := range vb {
			if s := inner(wa.Term, wb.Term); s >= theta && s > bestSim {
				best, bestSim = j, s
			}
		}
		if best >= 0 {
			sum += wa.W * vb[best].W * bestSim
		}
	}
	return clamp01(sum)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
