// Package similarity implements the string-, token- and value-similarity
// metrics surveyed for record linkage in the Big Data Integration
// tutorial: edit-distance family (Levenshtein, Damerau, Jaro,
// Jaro-Winkler), token family (Jaccard, Dice, overlap, cosine, q-gram),
// hybrid family (Monge-Elkan, Soft-TF-IDF), typed value similarity and
// composite record similarity. All metrics return scores in [0,1] where
// 1 means identical.
package similarity

import "unicode/utf8"

// Levenshtein returns the unit-cost edit distance between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalises Levenshtein distance into a similarity:
// 1 - dist/maxLen. Two empty strings are perfectly similar.
func LevenshteinSim(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la == 0 && lb == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(d)/float64(m)
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions (optimal string alignment variant).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[n][m]
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	k := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[k] {
			k++
		}
		if ra[i] != rb[k] {
			trans++
		}
		k++
	}
	mf := float64(matches)
	return (mf/float64(la) + mf/float64(lb) + (mf-float64(trans)/2)/mf) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common
// prefix (up to 4 runes) with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
