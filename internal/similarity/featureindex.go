package similarity

import (
	"math"
	"reflect"
	"sort"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// FeatureIndex caches everything pairwise matching needs about a
// record so each record is tokenized and normalised exactly once, no
// matter how many candidate pairs it appears in (O(window · #blocks)
// under blocking). Per compared field it stores the raw value, the
// sorted slice of interned word-token IDs, and — when the field uses
// the TF-IDF metric — the precomputed L2-normalised TF-IDF vector.
// With an index attached, RecordComparator scores token-metric fields
// through allocation-free kernels that linearly merge the sorted ID
// slices instead of rebuilding hash sets per pair.
//
// A FeatureIndex has a build-then-read life-cycle: BuildFeatureIndex
// constructs it in one goroutine; afterwards it is safe for concurrent
// readers (the parallel matching workers). Kernel results are exactly
// equal to the uncached metrics, so attaching an index never changes
// match decisions for the built-in token metrics.
type FeatureIndex struct {
	fields   []FieldWeight
	kernels  []kernel
	interner *tokenize.Interner
	corpus   *tokenize.Corpus
	feats    map[string][]fieldFeature
}

// fieldFeature caches one record's comparison features for one field.
type fieldFeature struct {
	val    data.Value   // copy of the record's value (null when absent)
	tokens []uint32     // sorted distinct word-token IDs (string values)
	tfidf  []WeightedID // L2-normalised TF-IDF vector, sorted by ID
}

// WeightedID is one component of an interned TF-IDF vector.
type WeightedID struct {
	ID uint32
	W  float64
}

// kernel identifies the allocation-free scoring routine for a field.
type kernel uint8

const (
	kernelNone kernel = iota // unknown metric: fall back to Values
	kernelJaccard
	kernelDice
	kernelOverlap
	kernelCosine
	kernelTFIDF
)

// kernelOf resolves a field metric to its cached kernel by comparing
// function code pointers against the built-in token metrics. Closures
// returned by TFIDF share one code pointer regardless of corpus, which
// is exactly the granularity needed: the kernel recomputes from the
// index's own vectors.
func kernelOf(m Metric) kernel {
	if m == nil {
		return kernelNone
	}
	switch reflect.ValueOf(m).Pointer() {
	case jaccardPtr:
		return kernelJaccard
	case dicePtr:
		return kernelDice
	case overlapPtr:
		return kernelOverlap
	case cosinePtr:
		return kernelCosine
	case tfidfPtr:
		return kernelTFIDF
	}
	return kernelNone
}

var (
	jaccardPtr = reflect.ValueOf(Metric(Jaccard)).Pointer()
	dicePtr    = reflect.ValueOf(Metric(Dice)).Pointer()
	overlapPtr = reflect.ValueOf(Metric(Overlap)).Pointer()
	cosinePtr  = reflect.ValueOf(Metric(CosineSet)).Pointer()
	tfidfPtr   = reflect.ValueOf(TFIDF(nil)).Pointer()
)

// BuildFeatureIndex tokenizes every record's compared attributes once
// and returns the resulting index. When the comparator uses the TFIDF
// metric, a corpus is built from the indexed field values (one document
// per non-null string value) and frozen; use BuildFeatureIndexCorpus to
// supply document-frequency statistics from a wider collection.
func BuildFeatureIndex(records []*data.Record, rc *RecordComparator) *FeatureIndex {
	return BuildFeatureIndexCorpus(records, rc, nil)
}

// BuildFeatureIndexCorpus is BuildFeatureIndex with an explicit TF-IDF
// corpus. The corpus is frozen (see tokenize.Corpus.Freeze) so the
// cached vectors can be read concurrently. A nil corpus is built from
// the indexed values when the comparator needs one.
func BuildFeatureIndexCorpus(records []*data.Record, rc *RecordComparator, corpus *tokenize.Corpus) *FeatureIndex {
	idx := &FeatureIndex{
		fields:   rc.fields,
		kernels:  make([]kernel, len(rc.fields)),
		interner: tokenize.NewInterner(),
		feats:    make(map[string][]fieldFeature, len(records)),
	}
	needTFIDF := false
	for i, f := range rc.fields {
		idx.kernels[i] = kernelOf(f.Metric)
		if idx.kernels[i] == kernelTFIDF {
			needTFIDF = true
		}
	}
	if needTFIDF && corpus == nil {
		corpus = tokenize.NewCorpus()
		for _, r := range records {
			if r == nil {
				continue
			}
			for _, f := range rc.fields {
				if v := r.Get(f.Attr); v.Kind == data.KindString {
					corpus.Add(v.Str)
				}
			}
		}
	}
	if corpus != nil {
		corpus.Freeze()
		idx.corpus = corpus
	}

	for _, r := range records {
		if r == nil {
			continue
		}
		if _, dup := idx.feats[r.ID]; dup {
			continue
		}
		ff := make([]fieldFeature, len(rc.fields))
		for i, f := range rc.fields {
			v := r.Get(f.Attr)
			ff[i].val = v
			if v.Kind != data.KindString {
				continue
			}
			ff[i].tokens = idx.internTokens(v.Str)
			if needTFIDF && idx.kernels[i] == kernelTFIDF {
				ff[i].tfidf = idx.internVector(corpus.Vector(v.Str))
			}
		}
		idx.feats[r.ID] = ff
	}
	return idx
}

// internTokens interns the distinct normalised words of s and returns
// their IDs sorted ascending.
func (idx *FeatureIndex) internTokens(s string) []uint32 {
	words := tokenize.Words(s)
	if len(words) == 0 {
		return nil
	}
	ids := make([]uint32, 0, len(words))
	for _, w := range words {
		ids = append(ids, idx.interner.Intern(w))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Dedupe in place: WordSet semantics over sorted IDs.
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// internVector converts a term-sorted TF-IDF vector to interned IDs
// sorted by ID.
func (idx *FeatureIndex) internVector(vec []tokenize.Weight) []WeightedID {
	if len(vec) == 0 {
		return nil
	}
	out := make([]WeightedID, len(vec))
	for i, w := range vec {
		out[i] = WeightedID{ID: idx.interner.Intern(w.Term), W: w.W}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Has reports whether the index carries features for the record ID.
func (idx *FeatureIndex) Has(id string) bool {
	_, ok := idx.feats[id]
	return ok
}

// Len returns the number of indexed records.
func (idx *FeatureIndex) Len() int { return len(idx.feats) }

// Corpus returns the TF-IDF corpus backing the index (nil when no
// field uses the TFIDF metric and none was supplied).
func (idx *FeatureIndex) Corpus() *tokenize.Corpus { return idx.corpus }

// Tokens returns the sorted interned token IDs cached for one record's
// attribute (nil when the record or a string value is absent). Exposed
// for blocking and diagnostics; the slice must not be mutated.
func (idx *FeatureIndex) Tokens(id, attr string) []uint32 {
	ff, ok := idx.feats[id]
	if !ok {
		return nil
	}
	for i, f := range idx.fields {
		if f.Attr == attr {
			return ff[i].tokens
		}
	}
	return nil
}

// intersectSize counts common IDs of two sorted slices by linear merge.
func intersectSize(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// setKernel scores two sorted token-ID sets with the given set metric.
// Results are exactly equal to the map-based metrics over the same
// token sets, including the empty-set conventions.
func setKernel(k kernel, a, b []uint32) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	inter := intersectSize(a, b)
	switch k {
	case kernelJaccard:
		return float64(inter) / float64(la+lb-inter)
	case kernelDice:
		return 2 * float64(inter) / float64(la+lb)
	case kernelOverlap:
		m := la
		if lb < m {
			m = lb
		}
		return float64(inter) / float64(m)
	case kernelCosine:
		return float64(inter) / math.Sqrt(float64(la)*float64(lb))
	}
	return 0
}

// dotKernel computes the clamped inner product of two ID-sorted TF-IDF
// vectors; two empty vectors are perfectly similar, mirroring
// TFIDFCosine.
func dotKernel(a, b []WeightedID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID < b[j].ID:
			i++
		case a[i].ID > b[j].ID:
			j++
		default:
			dot += a[i].W * b[j].W
			i++
			j++
		}
	}
	return clamp01(dot)
}
