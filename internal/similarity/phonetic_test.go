package similarity

import (
	"testing"
	"testing/quick"
)

func TestSoundexKnownCodes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A226"}, // simplified variant (h breaks runs)
		{"Tymczak", "T522"},
		{"Pfister", "P236"}, // simplified variant (no special pf rule)
		{"Jackson", "J250"},
		{"", ""},
		{"12345", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexGroupsSoundalikes(t *testing.T) {
	groups := [][2]string{
		{"smith", "smyth"},
		{"robert", "rupert"},
		{"jonson", "johnson"},
	}
	for _, g := range groups {
		if Soundex(g[0]) != Soundex(g[1]) {
			t.Errorf("%q and %q should share a soundex code (%q vs %q)",
				g[0], g[1], Soundex(g[0]), Soundex(g[1]))
		}
	}
	if Soundex("smith") == Soundex("johnson") {
		t.Error("unrelated names must not share a code")
	}
}

func TestSoundexShape(t *testing.T) {
	f := func(s string) bool {
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNYSIIS(t *testing.T) {
	if NYSIIS("") != "" || NYSIIS("99") != "" {
		t.Error("letterless inputs must code to empty")
	}
	// Sound-alike surnames share codes.
	pairs := [][2]string{
		{"knight", "night"},
		{"philip", "filip"},
	}
	for _, p := range pairs {
		a, b := NYSIIS(p[0]), NYSIIS(p[1])
		if a == "" || a != b {
			t.Errorf("NYSIIS(%q)=%q vs NYSIIS(%q)=%q, want equal", p[0], a, p[1], b)
		}
	}
	if NYSIIS("smith") == NYSIIS("jones") {
		t.Error("unrelated names must not collide")
	}
	// Deterministic and non-empty on letters.
	if NYSIIS("macdonald") != NYSIIS("macdonald") {
		t.Error("must be deterministic")
	}
}
