package similarity

import (
	"math"
	"testing"

	"repro/internal/tokenize"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccardKnownValues(t *testing.T) {
	if got := Jaccard("red shoe", "red boot"); !almostEq(got, 1.0/3) {
		t.Errorf("Jaccard = %f, want 1/3", got)
	}
	if Jaccard("", "") != 1 {
		t.Error("empty-empty must be 1")
	}
	if Jaccard("a", "") != 0 {
		t.Error("one empty must be 0")
	}
	if Jaccard("A b C", "c B a") != 1 {
		t.Error("case/order-insensitive equality must score 1")
	}
}

func TestDiceAndOverlap(t *testing.T) {
	if got := Dice("red shoe", "red boot"); !almostEq(got, 0.5) {
		t.Errorf("Dice = %f, want 0.5", got)
	}
	// "red" ⊂ "red shoe": overlap coefficient sees containment as 1.
	if got := Overlap("red", "red shoe"); got != 1 {
		t.Errorf("Overlap(subset) = %f, want 1", got)
	}
	if got := CosineSet("red shoe", "red boot"); !almostEq(got, 0.5) {
		t.Errorf("CosineSet = %f, want 0.5", got)
	}
}

func TestQGramJaccard(t *testing.T) {
	if QGramJaccard("night", "night", 3) != 1 {
		t.Error("identical strings must score 1")
	}
	s := QGramJaccard("night", "nacht", 3)
	if s <= 0 || s >= 1 {
		t.Errorf("night/nacht trigram similarity = %f, want strictly between 0 and 1", s)
	}
}

func TestTFIDFCosineDownweightsCommonTerms(t *testing.T) {
	c := tokenize.NewCorpus()
	// "the" appears everywhere; brand terms are rare.
	docs := []string{
		"the canon camera", "the nikon camera", "the sony tv",
		"the lg tv", "the apple phone",
	}
	for _, d := range docs {
		c.Add(d)
	}
	shareRare := TFIDFCosine(c, "canon camera", "canon slr")
	shareCommon := TFIDFCosine(c, "the canon", "the nikon")
	if shareRare <= shareCommon {
		t.Errorf("sharing rare term (%.3f) must beat sharing common term (%.3f)", shareRare, shareCommon)
	}
	if got := TFIDFCosine(c, "canon camera", "canon camera"); got < 0.999 {
		t.Errorf("self similarity = %f", got)
	}
}

func TestMongeElkan(t *testing.T) {
	if got := MongeElkan("peter christen", "christen peter", nil); got < 0.99 {
		t.Errorf("token-swapped names should score ~1, got %f", got)
	}
	if MongeElkan("", "", nil) != 1 {
		t.Error("empty-empty must be 1")
	}
	if MongeElkan("abc", "", nil) != 0 {
		t.Error("one empty must be 0")
	}
	// Asymmetric by construction: sub-description scores high one way.
	ab := MongeElkan("canon", "canon eos 5d", nil)
	if ab < 0.99 {
		t.Errorf("subset direction = %f, want ~1", ab)
	}
}

func TestSoftTFIDFToleratesTypos(t *testing.T) {
	c := tokenize.NewCorpus()
	for _, d := range []string{"canon powershot", "nikon coolpix", "sony cybershot", "fuji finepix"} {
		c.Add(d)
	}
	exact := TFIDFCosine(c, "canon powershot", "cannon powershot")
	soft := SoftTFIDF(c, "canon powershot", "cannon powershot", nil, 0.85)
	if soft <= exact {
		t.Errorf("soft (%f) must beat exact (%f) on typo'd token", soft, exact)
	}
	if got := SoftTFIDF(c, "canon powershot", "canon powershot", nil, 0); got < 0.99 {
		t.Errorf("identical strings = %f, want ~1", got)
	}
}
