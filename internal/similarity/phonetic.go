package similarity

import (
	"strings"

	"repro/internal/tokenize"
)

// Phonetic encodings — classic blocking-key transforms for
// person/product names: records whose names sound alike land in the
// same block even when spelled differently.

// Soundex returns the classic 4-character Soundex code of the first
// word of s ("" for inputs without letters). Digits and non-ASCII
// letters are skipped.
func Soundex(s string) string {
	words := tokenize.Words(s)
	if len(words) == 0 {
		return ""
	}
	w := words[0]
	var first byte
	var rest []byte
	var prev byte
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c < 'a' || c > 'z' {
			continue
		}
		code := soundexCode(c)
		if first == 0 {
			first = c - 'a' + 'A'
			prev = code
			continue
		}
		if code == 0 {
			// Vowels and h/w/y reset adjacency differently: vowels
			// break runs, h/w do not (simplified: both reset here).
			prev = 0
			continue
		}
		if code != prev {
			rest = append(rest, '0'+code)
			prev = code
		}
	}
	if first == 0 {
		return ""
	}
	out := string(first) + string(rest)
	for len(out) < 4 {
		out += "0"
	}
	return out[:4]
}

func soundexCode(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	}
	return 0
}

// NYSIIS computes a simplified NYSIIS phonetic code of the first word
// of s — longer and more discriminative than Soundex, the usual choice
// for sorted-neighbourhood sorting keys.
func NYSIIS(s string) string {
	words := tokenize.Words(s)
	if len(words) == 0 {
		return ""
	}
	w := []byte(words[0])
	letters := w[:0]
	for _, c := range w {
		if c >= 'a' && c <= 'z' {
			letters = append(letters, c)
		}
	}
	if len(letters) == 0 {
		return ""
	}
	name := string(letters)

	// Leading transformations.
	for _, t := range [][2]string{
		{"mac", "mcc"}, {"kn", "nn"}, {"k", "c"}, {"ph", "ff"}, {"pf", "ff"}, {"sch", "sss"},
	} {
		if strings.HasPrefix(name, t[0]) {
			name = t[1] + name[len(t[0]):]
			break
		}
	}
	// Trailing transformations.
	for _, t := range [][2]string{
		{"ee", "y"}, {"ie", "y"}, {"dt", "d"}, {"rt", "d"}, {"rd", "d"}, {"nt", "d"}, {"nd", "d"},
	} {
		if strings.HasSuffix(name, t[0]) {
			name = name[:len(name)-len(t[0])] + t[1]
			break
		}
	}

	out := []byte{name[0]}
	body := name[1:]
	// Body substitutions (simplified NYSIIS rules).
	body = strings.ReplaceAll(body, "ev", "af")
	for _, v := range []string{"a", "e", "i", "o", "u"} {
		body = strings.ReplaceAll(body, v, "a")
	}
	body = strings.ReplaceAll(body, "q", "g")
	body = strings.ReplaceAll(body, "z", "s")
	body = strings.ReplaceAll(body, "m", "n")
	body = strings.ReplaceAll(body, "kn", "n")
	body = strings.ReplaceAll(body, "k", "c")
	body = strings.ReplaceAll(body, "sch", "sss")
	body = strings.ReplaceAll(body, "ph", "ff")

	// Append, collapsing repeats.
	for i := 0; i < len(body); i++ {
		if out[len(out)-1] != body[i] {
			out = append(out, body[i])
		}
	}
	// Strip trailing s / a; terminal "ay" → "y".
	res := string(out)
	res = strings.TrimRight(res, "s")
	if strings.HasSuffix(res, "ay") {
		res = res[:len(res)-2] + "y"
	}
	res = strings.TrimRight(res, "a")
	if res == "" {
		res = string(name[0])
	}
	return res
}
