package similarity

import (
	"testing"
	"time"

	"repro/internal/data"
)

func TestNumeric(t *testing.T) {
	if Numeric(100, 100, 0) != 1 {
		t.Error("equal numbers must be 1")
	}
	if Numeric(0, 0, 0) != 1 {
		t.Error("two zeros must be 1")
	}
	if got := Numeric(100, 200, 0); got != 0 {
		t.Errorf("100 vs 200 at default scale = %f, want 0", got)
	}
	near := Numeric(100, 101, 0)
	far := Numeric(100, 140, 0)
	if !(near > far && far > 0) {
		t.Errorf("decay broken: near=%f far=%f", near, far)
	}
}

func TestValuesTyped(t *testing.T) {
	if got := Values(data.Number(10), data.Number(10), nil); got != 1 {
		t.Errorf("equal numbers = %f", got)
	}
	if got := Values(data.Bool(true), data.Bool(false), nil); got != 0 {
		t.Errorf("bool mismatch = %f", got)
	}
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	near := Values(data.Time(t0), data.Time(t0.AddDate(0, 0, 30)), nil)
	far := Values(data.Time(t0), data.Time(t0.AddDate(3, 0, 0)), nil)
	if !(near > 0.9 && far == 0) {
		t.Errorf("time decay: near=%f far=%f", near, far)
	}
	if got := Values(data.Null(), data.String("x"), nil); got != 0.5 {
		t.Errorf("null vs value should be neutral 0.5, got %f", got)
	}
	// Cross-kind falls back to half-weight string comparison.
	got := Values(data.Number(12), data.String("12"), nil)
	if got != 0.5 {
		t.Errorf("cross-kind exact render = %f, want 0.5", got)
	}
}

func testRecords() (*data.Record, *data.Record) {
	a := data.NewRecord("a", "s1").
		Set("title", data.String("Canon EOS 5D Mark III")).
		Set("price", data.Number(2999)).
		Set("brand", data.String("Canon"))
	b := data.NewRecord("b", "s2").
		Set("title", data.String("canon eos 5d mk iii")).
		Set("price", data.Number(2950)).
		Set("brand", data.String("Canon"))
	return a, b
}

func TestRecordComparator(t *testing.T) {
	a, b := testRecords()
	rc := NewRecordComparator(
		FieldWeight{Attr: "title", Weight: 2, Metric: Jaccard},
		FieldWeight{Attr: "price", Weight: 1},
		FieldWeight{Attr: "brand", Weight: 1},
	)
	s := rc.Compare(a, b)
	if s <= 0.5 || s > 1 {
		t.Errorf("near-duplicate records score = %f, want in (0.5,1]", s)
	}
	c := data.NewRecord("c", "s3").
		Set("title", data.String("LG 55 inch OLED TV")).
		Set("price", data.Number(1200))
	if rc.Compare(a, c) >= s {
		t.Error("unrelated record must score below near-duplicate")
	}
}

func TestRecordComparatorSkipsDoubleMissing(t *testing.T) {
	rc := UniformComparator(nil, "x", "y")
	a := data.NewRecord("a", "s").Set("x", data.String("foo"))
	b := data.NewRecord("b", "s").Set("x", data.String("foo"))
	// y missing from both: only x counts, so score is 1.
	if got := rc.Compare(a, b); got != 1 {
		t.Errorf("score = %f, want 1", got)
	}
}

func TestRecordComparatorNoComparableFields(t *testing.T) {
	rc := UniformComparator(nil, "z")
	a := data.NewRecord("a", "s")
	b := data.NewRecord("b", "s")
	if got := rc.Compare(a, b); got != 0 {
		t.Errorf("no fields score = %f, want 0", got)
	}
}

func TestFieldScores(t *testing.T) {
	a, b := testRecords()
	rc := UniformComparator(nil, "brand", "missing", "title")
	scores := rc.FieldScores(a, b)
	if len(scores) != 3 {
		t.Fatalf("want 3 scores, got %d", len(scores))
	}
	// Fields are sorted: brand, missing, title.
	if scores[0] < 0.999 {
		t.Errorf("brand score = %f, want 1", scores[0])
	}
	if scores[1] != -1 {
		t.Errorf("missing-from-both marker = %f, want -1", scores[1])
	}
	if scores[2] <= 0 {
		t.Errorf("title score = %f, want > 0", scores[2])
	}
}

func TestNewRecordComparatorDropsNonPositiveWeights(t *testing.T) {
	rc := NewRecordComparator(
		FieldWeight{Attr: "a", Weight: 0},
		FieldWeight{Attr: "b", Weight: -1},
		FieldWeight{Attr: "c", Weight: 1},
	)
	if n := len(rc.Fields()); n != 1 {
		t.Errorf("kept %d fields, want 1", n)
	}
}
