package similarity

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"café", "cafe", 1}, // rune-aware
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	cfg := &quick.Config{MaxCount: 50}
	for name, f := range map[string]interface{}{
		"symmetric": symmetric, "identity": identity, "triangle": triangle,
	} {
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDamerauTransposition(t *testing.T) {
	if got := DamerauLevenshtein("ab", "ba"); got != 1 {
		t.Errorf("transposition cost = %d, want 1", got)
	}
	if got := Levenshtein("ab", "ba"); got != 2 {
		t.Errorf("plain Levenshtein transposition = %d, want 2", got)
	}
	if got := DamerauLevenshtein("ca", "abc"); got != 3 {
		t.Errorf("OSA(ca,abc) = %d, want 3", got)
	}
}

func TestJaroKnownValues(t *testing.T) {
	approx := func(got, want float64) bool { d := got - want; return d < 1e-3 && d > -1e-3 }
	if got := Jaro("martha", "marhta"); !approx(got, 0.9444) {
		t.Errorf("Jaro(martha,marhta) = %f", got)
	}
	if got := Jaro("dixon", "dicksonx"); !approx(got, 0.7667) {
		t.Errorf("Jaro(dixon,dicksonx) = %f", got)
	}
	if Jaro("", "") != 1 {
		t.Error("empty-empty must be 1")
	}
	if Jaro("a", "") != 0 {
		t.Error("one empty must be 0")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint must be 0")
	}
}

func TestJaroWinklerBoostsPrefix(t *testing.T) {
	if JaroWinkler("martha", "marhta") <= Jaro("martha", "marhta") {
		t.Error("JW must boost shared-prefix pairs")
	}
	if JaroWinkler("abcdef", "abcdef") != 1 {
		t.Error("identical strings must score 1")
	}
}

func TestSimilarityRange(t *testing.T) {
	metrics := map[string]Metric{
		"levenshtein": LevenshteinSim, "jaro": Jaro, "jarowinkler": JaroWinkler,
		"jaccard": Jaccard, "dice": Dice, "overlap": Overlap, "cosine": CosineSet,
	}
	for name, m := range metrics {
		m := m
		f := func(a, b string) bool {
			s := m(a, b)
			return s >= 0 && s <= 1 && m(a, a) >= 0.999
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s out of range or not reflexive: %v", name, err)
		}
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	metrics := []Metric{LevenshteinSim, Jaro, Jaccard, Dice, Overlap, CosineSet}
	f := func(a, b string) bool {
		for _, m := range metrics {
			sa, sb := m(a, b), m(b, a)
			if d := sa - sb; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNamedMetricLookup(t *testing.T) {
	for _, n := range []string{"levenshtein", "jaro", "jarowinkler", "jaccard", "dice", "overlap", "cosine", "qgram3"} {
		if Named(n) == nil {
			t.Errorf("Named(%q) = nil", n)
		}
	}
	if Named("bogus") != nil {
		t.Error("unknown name must return nil")
	}
}
