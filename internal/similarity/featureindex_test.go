package similarity

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// indexWorkload builds a small dirty corpus covering every value kind
// and tokenisation edge case the cached path must reproduce.
func indexWorkload() []*data.Record {
	titles := []string{
		"Nova Camera Pro 300 Deluxe", "nova camera pro 300", "NOVA-CAMERA pro-300",
		"Orbit Lens Kit 50mm", "orbit lens 50mm kit", "!!!", "单反 相机 Pro",
		"the a an of camera", "camera", "Nova Nova Nova camera",
	}
	recs := make([]*data.Record, 0, len(titles)+2)
	for i, t := range titles {
		r := data.NewRecord(fmt.Sprintf("r%02d", i), "s1")
		r.Set("title", data.String(t))
		if i%2 == 0 {
			r.Set("brand", data.String([]string{"Nova", "Orbit", "nova"}[i%3]))
		}
		if i%3 != 0 {
			r.Set("price", data.Number(float64(100+i*7)))
		}
		if i%4 == 0 {
			r.Set("instock", data.Bool(i%8 == 0))
		}
		if i%5 == 0 {
			r.Set("seen", data.Time(time.Date(2020+i, 1, 1, 0, 0, 0, 0, time.UTC)))
		}
		if i == 3 {
			r.Set("price", data.String("149 usd")) // kind mismatch vs numbers
		}
		recs = append(recs, r)
	}
	// A record with no compared fields at all.
	empty := data.NewRecord("r98", "s1")
	empty.Set("unrelated", data.String("x"))
	recs = append(recs, empty)
	return recs
}

func indexComparator() *RecordComparator {
	return NewRecordComparator(
		FieldWeight{Attr: "title", Weight: 2, Metric: Jaccard},
		FieldWeight{Attr: "brand", Weight: 1, Metric: Dice},
		FieldWeight{Attr: "price", Weight: 1}, // numbers + JaroWinkler fallback
		FieldWeight{Attr: "instock", Weight: 0.5, Metric: Overlap},
		FieldWeight{Attr: "seen", Weight: 0.5, Metric: CosineSet},
	)
}

// TestCachedCompareMatchesUncached is the core correctness contract:
// attaching a feature index must not change any score, for any metric
// kind, on any pair.
func TestCachedCompareMatchesUncached(t *testing.T) {
	recs := indexWorkload()
	cached := indexComparator()
	uncached := indexComparator()
	cached.AttachIndex(BuildFeatureIndex(recs, cached))
	for i := 0; i < len(recs); i++ {
		for j := i; j < len(recs); j++ {
			a, b := recs[i], recs[j]
			if got, want := cached.Compare(a, b), uncached.Compare(a, b); got != want {
				t.Errorf("Compare(%s,%s): cached %v != uncached %v", a.ID, b.ID, got, want)
			}
			gs, ws := cached.FieldScores(a, b), uncached.FieldScores(a, b)
			for k := range gs {
				if gs[k] != ws[k] {
					t.Errorf("FieldScores(%s,%s)[%d]: cached %v != uncached %v", a.ID, b.ID, k, gs[k], ws[k])
				}
			}
		}
	}
}

// TestCachedSetKernels pins each set kernel against its map-based
// metric directly on the raw strings.
func TestCachedSetKernels(t *testing.T) {
	pairs := [][2]string{
		{"nova camera pro 300", "nova camera pro 300 deluxe"},
		{"a b c", "d e f"},
		{"", ""},
		{"!!!", "???"},
		{"x", "x"},
		{"one two two three", "two three four"},
	}
	metrics := []struct {
		name string
		m    Metric
	}{
		{"jaccard", Jaccard}, {"dice", Dice}, {"overlap", Overlap}, {"cosine", CosineSet},
	}
	for _, mt := range metrics {
		rc := NewRecordComparator(FieldWeight{Attr: "v", Weight: 1, Metric: mt.m})
		for pi, p := range pairs {
			a := data.NewRecord("a", "s").Set("v", data.String(p[0]))
			b := data.NewRecord("b", "s").Set("v", data.String(p[1]))
			rc.AttachIndex(BuildFeatureIndex([]*data.Record{a, b}, rc))
			got := rc.Compare(a, b)
			want := mt.m(p[0], p[1])
			if p[0] == "" && p[1] == "" {
				want = 0 // both null: no comparable fields
			}
			if got != want {
				t.Errorf("%s pair %d: cached %v, direct %v", mt.name, pi, got, want)
			}
		}
	}
}

// TestCachedTFIDF verifies the precomputed-vector path against the
// direct TFIDFCosine computation over the same corpus.
func TestCachedTFIDF(t *testing.T) {
	recs := indexWorkload()
	corpus := tokenize.NewCorpus()
	for _, r := range recs {
		if v := r.Get("title"); v.Kind == data.KindString {
			corpus.Add(v.Str)
		}
	}
	rc := NewRecordComparator(FieldWeight{Attr: "title", Weight: 1, Metric: TFIDF(corpus)})
	rc.AttachIndex(BuildFeatureIndexCorpus(recs, rc, corpus))
	if !corpus.Frozen() {
		t.Fatal("index build must freeze the corpus")
	}
	for i := 0; i < len(recs); i++ {
		for j := i; j < len(recs); j++ {
			a, b := recs[i], recs[j]
			va, vb := a.Get("title"), b.Get("title")
			if va.IsNull() || vb.IsNull() {
				continue
			}
			got := rc.Compare(a, b)
			want := TFIDFCosine(corpus, va.Str, vb.Str)
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("tfidf(%s,%s): cached %v, direct %v", a.ID, b.ID, got, want)
			}
		}
	}
}

// TestCachedCompareZeroAllocs is the allocation assertion: with an
// index attached, scoring a pair on token metrics does zero heap
// allocations.
func TestCachedCompareZeroAllocs(t *testing.T) {
	a := data.NewRecord("a", "s").
		Set("title", data.String("nova camera pro 300 deluxe edition")).
		Set("brand", data.String("nova imaging")).
		Set("price", data.Number(299))
	b := data.NewRecord("b", "s").
		Set("title", data.String("nova camera pro 300")).
		Set("brand", data.String("nova")).
		Set("price", data.Number(305))
	rc := NewRecordComparator(
		FieldWeight{Attr: "title", Weight: 2, Metric: Jaccard},
		FieldWeight{Attr: "brand", Weight: 1, Metric: Dice},
		FieldWeight{Attr: "price", Weight: 1},
	)
	rc.AttachIndex(BuildFeatureIndex([]*data.Record{a, b}, rc))
	if allocs := testing.AllocsPerRun(200, func() { rc.Compare(a, b) }); allocs != 0 {
		t.Errorf("cached Compare allocates %v per pair, want 0", allocs)
	}
	scores := make([]float64, len(rc.Fields()))
	if allocs := testing.AllocsPerRun(200, func() { rc.FieldScoresInto(scores, a, b) }); allocs != 0 {
		t.Errorf("cached FieldScoresInto allocates %v per pair, want 0", allocs)
	}
}

// TestUnindexedRecordsFallBack: records outside the index must still
// score correctly through the direct path.
func TestUnindexedRecordsFallBack(t *testing.T) {
	recs := indexWorkload()
	rc := indexComparator()
	rc.AttachIndex(BuildFeatureIndex(recs[:3], rc))
	fresh := data.NewRecord("fresh", "s2").Set("title", data.String("nova camera pro 300"))
	want := indexComparator().Compare(recs[0], fresh)
	if got := rc.Compare(recs[0], fresh); got != want {
		t.Errorf("fallback Compare = %v, want %v", got, want)
	}
	if !rc.Index().Has(recs[0].ID) || rc.Index().Has("fresh") {
		t.Error("index coverage misreported by Has")
	}
}

// TestIndexTokensAccessor sanity-checks the exposed token sets.
func TestIndexTokensAccessor(t *testing.T) {
	a := data.NewRecord("a", "s").Set("title", data.String("beta alpha beta"))
	rc := NewRecordComparator(FieldWeight{Attr: "title", Weight: 1, Metric: Jaccard})
	idx := BuildFeatureIndex([]*data.Record{a}, rc)
	toks := idx.Tokens("a", "title")
	if len(toks) != 2 {
		t.Fatalf("want 2 distinct tokens, got %v", toks)
	}
	for i := 1; i < len(toks); i++ {
		if toks[i-1] >= toks[i] {
			t.Errorf("token IDs not strictly sorted: %v", toks)
		}
	}
	if idx.Tokens("a", "missing") != nil || idx.Tokens("zzz", "title") != nil {
		t.Error("Tokens must return nil for unknown attr/record")
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d", idx.Len())
	}
}
