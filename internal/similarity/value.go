package similarity

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
)

// Metric is a string similarity function in [0,1].
type Metric func(a, b string) float64

// Named returns the built-in metric with the given name, or nil. The
// names are the ones accepted by the bench harness's flags:
// levenshtein, jaro, jarowinkler, jaccard, dice, overlap, cosine, qgram3.
func Named(name string) Metric {
	switch name {
	case "levenshtein":
		return LevenshteinSim
	case "jaro":
		return Jaro
	case "jarowinkler":
		return JaroWinkler
	case "jaccard":
		return Jaccard
	case "dice":
		return Dice
	case "overlap":
		return Overlap
	case "cosine":
		return CosineSet
	case "qgram3":
		return func(a, b string) float64 { return QGramJaccard(a, b, 3) }
	default:
		return nil
	}
}

// Numeric compares two numbers with relative tolerance: similarity
// decays linearly from 1 at equality to 0 at a relative difference of
// scale (default 0.5 when scale <= 0).
func Numeric(a, b, scale float64) float64 {
	if scale <= 0 {
		scale = 0.5
	}
	if a == b {
		return 1
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 1
	}
	rel := math.Abs(a-b) / denom
	if rel >= scale {
		return 0
	}
	return 1 - rel/scale
}

// Values compares two typed values. Strings use the supplied metric
// (JaroWinkler when nil), numbers use Numeric, bools and times use
// equality, mismatched kinds fall back to comparing string renderings
// with the metric at half weight, and two nulls are incomparable (0.5,
// "no evidence").
func Values(a, b data.Value, m Metric) float64 {
	if m == nil {
		m = JaroWinkler
	}
	if a.IsNull() && b.IsNull() {
		return 0.5
	}
	if a.IsNull() || b.IsNull() {
		return 0.5
	}
	if a.Kind != b.Kind {
		return 0.5 * m(a.String(), b.String())
	}
	switch a.Kind {
	case data.KindString:
		return m(a.Str, b.Str)
	case data.KindNumber:
		return Numeric(a.Num, b.Num, 0)
	case data.KindBool:
		if a.Bool == b.Bool {
			return 1
		}
		return 0
	case data.KindTime:
		if a.Time.Equal(b.Time) {
			return 1
		}
		// Decay over a year.
		d := math.Abs(a.Time.Sub(b.Time).Hours()) / (24 * 365)
		if d >= 1 {
			return 0
		}
		return 1 - d
	}
	return 0
}

// FieldWeight assigns a comparison weight to an attribute.
type FieldWeight struct {
	Attr   string
	Weight float64
	Metric Metric // nil → JaroWinkler for strings
}

// RecordComparator scores record pairs as a weighted average of
// per-field value similarities. Fields missing from both records are
// skipped; fields missing from one contribute the neutral 0.5.
//
// Attaching a FeatureIndex (AttachIndex) switches Compare and
// FieldScores to allocation-free cached kernels for every indexed
// record pair; unindexed records fall back to the direct path, so a
// stale or partial index degrades performance, never correctness.
type RecordComparator struct {
	fields []FieldWeight
	idx    *FeatureIndex

	// Resolved by AttachObs; nil handles no-op, so the untracked
	// comparator pays one branch per Compare.
	obsCached   *obs.Counter
	obsUncached *obs.Counter
}

// NewRecordComparator builds a comparator over the given weighted
// fields. Non-positive weights are dropped.
func NewRecordComparator(fields ...FieldWeight) *RecordComparator {
	kept := make([]FieldWeight, 0, len(fields))
	for _, f := range fields {
		if f.Weight > 0 {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Attr < kept[j].Attr })
	return &RecordComparator{fields: kept}
}

// UniformComparator weights the given attributes equally with the given
// metric.
func UniformComparator(m Metric, attrs ...string) *RecordComparator {
	fields := make([]FieldWeight, len(attrs))
	for i, a := range attrs {
		fields[i] = FieldWeight{Attr: a, Weight: 1, Metric: m}
	}
	return NewRecordComparator(fields...)
}

// Fields returns the comparator's weighted fields.
func (rc *RecordComparator) Fields() []FieldWeight { return rc.fields }

// AttachIndex attaches a feature index built from this comparator (see
// BuildFeatureIndex); nil detaches. Attach before sharing the
// comparator across matching workers — the workers only read it.
func (rc *RecordComparator) AttachIndex(idx *FeatureIndex) { rc.idx = idx }

// Index returns the attached feature index, or nil.
func (rc *RecordComparator) Index() *FeatureIndex { return rc.idx }

// AttachObs resolves the comparator's cache-hit counters
// ("matching.cached_compares" / "matching.uncached_compares") against
// reg; nil detaches. Like AttachIndex, attach before sharing across
// workers.
func (rc *RecordComparator) AttachObs(reg *obs.Registry) {
	rc.obsCached = reg.Counter("matching.cached_compares")
	rc.obsUncached = reg.Counter("matching.uncached_compares")
}

// cachedFeatures returns both records' cached field features when the
// attached index covers them.
func (rc *RecordComparator) cachedFeatures(a, b *data.Record) (fa, fb []fieldFeature, ok bool) {
	idx := rc.idx
	if idx == nil || len(idx.fields) != len(rc.fields) {
		return nil, nil, false
	}
	if fa, ok = idx.feats[a.ID]; !ok {
		return nil, nil, false
	}
	if fb, ok = idx.feats[b.ID]; !ok {
		return nil, nil, false
	}
	return fa, fb, true
}

// fieldSim scores one field from cached features, dispatching to the
// allocation-free kernel when one applies and falling back to Values
// (on the cached value copies) otherwise.
func (rc *RecordComparator) fieldSim(i int, fa, fb []fieldFeature) float64 {
	va, vb := fa[i].val, fb[i].val
	if k := rc.idx.kernels[i]; k != kernelNone &&
		va.Kind == data.KindString && vb.Kind == data.KindString {
		if k == kernelTFIDF {
			if rc.idx.corpus != nil {
				return dotKernel(fa[i].tfidf, fb[i].tfidf)
			}
		} else {
			return setKernel(k, fa[i].tokens, fb[i].tokens)
		}
	}
	return Values(va, vb, rc.fields[i].Metric)
}

// Compare returns the weighted-average similarity of two records in
// [0,1]. With no comparable fields it returns 0.
func (rc *RecordComparator) Compare(a, b *data.Record) float64 {
	if fa, fb, ok := rc.cachedFeatures(a, b); ok {
		rc.obsCached.Inc()
		var sum, wsum float64
		for i, f := range rc.fields {
			if fa[i].val.IsNull() && fb[i].val.IsNull() {
				continue
			}
			sum += f.Weight * rc.fieldSim(i, fa, fb)
			wsum += f.Weight
		}
		if wsum == 0 {
			return 0
		}
		return sum / wsum
	}
	rc.obsUncached.Inc()
	var sum, wsum float64
	for _, f := range rc.fields {
		va, vb := a.Get(f.Attr), b.Get(f.Attr)
		if va.IsNull() && vb.IsNull() {
			continue
		}
		sum += f.Weight * Values(va, vb, f.Metric)
		wsum += f.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// FieldScores returns the per-field similarity vector used by
// Fellegi-Sunter style matchers: one score per comparator field, with
// -1 marking fields absent from both records.
func (rc *RecordComparator) FieldScores(a, b *data.Record) []float64 {
	out := make([]float64, len(rc.fields))
	rc.FieldScoresInto(out, a, b)
	return out
}

// FieldScoresInto is FieldScores writing into a caller-supplied slice
// of length len(Fields()), letting hot loops reuse one buffer.
func (rc *RecordComparator) FieldScoresInto(out []float64, a, b *data.Record) {
	if fa, fb, ok := rc.cachedFeatures(a, b); ok {
		rc.obsCached.Inc()
		for i := range rc.fields {
			if fa[i].val.IsNull() && fb[i].val.IsNull() {
				out[i] = -1
				continue
			}
			out[i] = rc.fieldSim(i, fa, fb)
		}
		return
	}
	rc.obsUncached.Inc()
	for i, f := range rc.fields {
		va, vb := a.Get(f.Attr), b.Get(f.Attr)
		if va.IsNull() && vb.IsNull() {
			out[i] = -1
			continue
		}
		out[i] = Values(va, vb, f.Metric)
	}
}
