package extract

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

// siteRecords produces clean records for one site of a generated web.
func siteRecords(t *testing.T, seed int64) []*data.Record {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 40, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 2, DirtLevel: 0,
		HeadFraction: 1, HeadCoverage: 0.9, Heterogeneity: -1,
	})
	recs := web.Dataset.SourceRecords("src-000")
	if len(recs) < 10 {
		t.Fatalf("only %d records", len(recs))
	}
	return recs
}

func TestRenderAndInduceRoundTrip(t *testing.T) {
	recs := siteRecords(t, 41)
	attrs := recs[0].Attrs()
	tmpl := NewTemplate(7, attrs)
	pages := make([]Page, len(recs))
	for i, r := range recs {
		pages[i] = tmpl.Render(r)
	}
	w, err := Induce(pages, tmpl.Sep)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Fields) == 0 {
		t.Fatal("no fields induced")
	}
	extracted := make([]*data.Record, len(pages))
	for i, p := range pages {
		extracted[i] = w.Extract(p, recs[i].ID, "src-000")
	}
	prec, rec := ExtractionQuality(tmpl, recs, extracted)
	if prec < 0.95 {
		t.Errorf("extraction precision = %f", prec)
	}
	if rec < 0.9 {
		t.Errorf("extraction recall = %f", rec)
	}
	// Boilerplate never leaks into records.
	for _, e := range extracted {
		for _, a := range e.Attrs() {
			if strings.Contains(a, "shipping") || strings.Contains(a, "copyright") {
				t.Fatalf("boilerplate extracted as field %q", a)
			}
		}
	}
}

func TestInduceNeedsPages(t *testing.T) {
	if _, err := Induce(nil, ": "); err == nil {
		t.Error("no pages must error")
	}
	if _, err := Induce([]Page{{Lines: []string{"x: 1"}}}, ": "); err == nil {
		t.Error("one page must error")
	}
}

func TestWrapperBreaksOnRedesignAndRecovers(t *testing.T) {
	recs := siteRecords(t, 43)
	attrs := recs[0].Attrs()
	tmpl := NewTemplate(9, attrs)
	oldPages := make([]Page, len(recs))
	for i, r := range recs {
		oldPages[i] = tmpl.Render(r)
	}
	w, err := Induce(oldPages, tmpl.Sep)
	if err != nil {
		t.Fatal(err)
	}

	// The redesign renames 60% of labels.
	redesigned := tmpl.Mutate(10, 0.6)
	newPages := make([]Page, len(recs))
	for i, r := range recs {
		newPages[i] = redesigned.Render(r)
	}
	// Old wrapper on new pages: recall collapses on renamed labels.
	extractedOld := make([]*data.Record, len(newPages))
	for i, p := range newPages {
		extractedOld[i] = w.Extract(p, recs[i].ID, "src-000")
	}
	_, recOld := ExtractionQuality(redesigned, recs, extractedOld)
	if recOld > 0.7 {
		t.Errorf("stale wrapper recall = %f; the redesign should break it", recOld)
	}

	// Re-induction restores extraction.
	w2, err := Induce(newPages, redesigned.Sep)
	if err != nil {
		t.Fatal(err)
	}
	extractedNew := make([]*data.Record, len(newPages))
	for i, p := range newPages {
		extractedNew[i] = w2.Extract(p, recs[i].ID, "src-000")
	}
	precNew, recNew := ExtractionQuality(redesigned, recs, extractedNew)
	if recNew < 0.9 || precNew < 0.95 {
		t.Errorf("re-induced wrapper P=%f R=%f", precNew, recNew)
	}
	if recNew <= recOld {
		t.Error("re-induction must recover recall")
	}
}

func TestMutatePreservesAttrs(t *testing.T) {
	tmpl := NewTemplate(1, []string{"a", "b", "c"})
	mut := tmpl.Mutate(2, 1.0)
	if len(mut.LabelOf) != 3 || len(mut.Order) != 3 {
		t.Fatal("mutation lost attributes")
	}
	renamed := 0
	for a, l := range mut.LabelOf {
		if l != tmpl.LabelOf[a] {
			renamed++
		}
	}
	if renamed != 3 {
		t.Errorf("renameFraction 1.0 renamed %d of 3", renamed)
	}
}

func TestExtractParsesTypedValues(t *testing.T) {
	rec := data.NewRecord("r", "s").
		Set("price", data.Number(99.5)).
		Set("wireless", data.Bool(true)).
		Set("name", data.String("acme thing"))
	rec2 := data.NewRecord("r2", "s").
		Set("price", data.Number(120)).
		Set("wireless", data.Bool(false)).
		Set("name", data.String("zenix thing"))
	tmpl := NewTemplate(3, []string{"price", "wireless", "name"})
	pages := []Page{tmpl.Render(rec), tmpl.Render(rec2)}
	w, err := Induce(pages, tmpl.Sep)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Extract(pages[0], "x", "s")
	if got.Get(tmpl.LabelOf["price"]).Kind != data.KindNumber {
		t.Error("price must extract as a number")
	}
	if got.Get(tmpl.LabelOf["wireless"]).Kind != data.KindBool {
		t.Error("wireless must extract as a bool")
	}
}
