// Package extract implements the wrapper-induction substrate upstream
// of the integration pipeline: sources publish records through
// site-specific page templates (label dialects, fixed field order,
// boilerplate), and a wrapper — induced from a handful of a site's
// pages by exploiting local structural homogeneity — turns pages back
// into records. The velocity phenomenon the tutorial highlights
// (extraction rules are brittle over time) is modelled by template
// changes that break induced wrappers until they are re-induced.
package extract

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/data"
)

// Template is one site's page layout: a label per attribute, a fixed
// field order, boilerplate lines and a label/value separator.
type Template struct {
	// LabelOf maps record attribute → the label printed on the page.
	LabelOf map[string]string
	// Order fixes the attribute order on every page (local homogeneity).
	Order []string
	// Boilerplate lines are printed on every page (nav, footer, ads).
	Boilerplate []string
	// Sep separates label from value. Default ": ".
	Sep string
}

func (t *Template) sep() string {
	if t.Sep == "" {
		return ": "
	}
	return t.Sep
}

// NewTemplate derives a deterministic template for a site: labels come
// from the attribute names with a site-specific decoration, order is a
// seeded shuffle, boilerplate is generic.
func NewTemplate(seed int64, attrs []string) *Template {
	r := rand.New(rand.NewSource(seed))
	t := &Template{LabelOf: map[string]string{}, Sep: ": "}
	decorations := []string{"%s", "product %s", "%s info", "item %s"}
	deco := decorations[r.Intn(len(decorations))]
	for _, a := range attrs {
		label := strings.ReplaceAll(a, "_", " ")
		t.LabelOf[a] = fmt.Sprintf(deco, label)
	}
	t.Order = append([]string(nil), attrs...)
	sort.Strings(t.Order)
	r.Shuffle(len(t.Order), func(i, j int) { t.Order[i], t.Order[j] = t.Order[j], t.Order[i] })
	t.Boilerplate = []string{
		fmt.Sprintf("welcome to store %d", r.Intn(1000)),
		"free shipping on orders over 50",
		fmt.Sprintf("copyright %d", 2000+r.Intn(25)),
	}
	return t
}

// Mutate returns a changed template — the page redesign that breaks
// wrappers: exactly round(renameFraction × #labels) labels are renamed
// (chosen by seeded shuffle) and the field order reshuffled.
func (t *Template) Mutate(seed int64, renameFraction float64) *Template {
	r := rand.New(rand.NewSource(seed))
	nt := &Template{LabelOf: map[string]string{}, Sep: t.Sep}
	attrs := make([]string, 0, len(t.LabelOf))
	for a := range t.LabelOf {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	shuffled := append([]string(nil), attrs...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	renameCount := int(renameFraction*float64(len(attrs)) + 0.5)
	renamed := map[string]bool{}
	for i := 0; i < renameCount && i < len(shuffled); i++ {
		renamed[shuffled[i]] = true
	}
	for _, a := range attrs {
		label := t.LabelOf[a]
		if renamed[a] {
			label = "new " + label
		}
		nt.LabelOf[a] = label
	}
	nt.Order = append([]string(nil), t.Order...)
	r.Shuffle(len(nt.Order), func(i, j int) { nt.Order[i], nt.Order[j] = nt.Order[j], nt.Order[i] })
	nt.Boilerplate = append([]string(nil), t.Boilerplate...)
	nt.Boilerplate[0] = "redesigned " + nt.Boilerplate[0]
	return nt
}

// Page is one rendered product page.
type Page struct {
	// RecordID carries ground truth for evaluation (never used by the
	// extractor).
	RecordID string
	Lines    []string
}

// Render produces the page for one record under the template:
// boilerplate header, one "label<sep>value" line per present attribute
// in template order, boilerplate footer.
func (t *Template) Render(rec *data.Record) Page {
	p := Page{RecordID: rec.ID}
	p.Lines = append(p.Lines, t.Boilerplate[0])
	for _, a := range t.Order {
		v := rec.Get(a)
		if v.IsNull() {
			continue
		}
		label := t.LabelOf[a]
		if label == "" {
			label = a
		}
		p.Lines = append(p.Lines, label+t.sep()+v.String())
	}
	p.Lines = append(p.Lines, t.Boilerplate[1:]...)
	return p
}

// Wrapper is an induced extraction rule for one site: the labels whose
// lines carry data, and the separator.
type Wrapper struct {
	Sep    string
	Fields []string // data-carrying labels, sorted
	// boiler lines observed constant across training pages.
	boiler map[string]bool
}

// Induce learns a wrapper from a site's pages by local homogeneity:
// lines constant across all pages are boilerplate; lines sharing a
// "label<sep>" prefix whose suffix varies (or repeats across pages
// under the same label) are data fields. At least 2 pages are required.
func Induce(pages []Page, sep string) (*Wrapper, error) {
	if len(pages) < 2 {
		return nil, fmt.Errorf("extract: wrapper induction needs >= 2 pages, got %d", len(pages))
	}
	if sep == "" {
		sep = ": "
	}
	// Count how often each full line and each label appears.
	lineCount := map[string]int{}
	labelCount := map[string]int{}
	labelValues := map[string]map[string]bool{}
	for _, p := range pages {
		seenLabel := map[string]bool{}
		for _, line := range p.Lines {
			lineCount[line]++
			if i := strings.Index(line, sep); i > 0 {
				label := line[:i]
				if !seenLabel[label] {
					seenLabel[label] = true
					labelCount[label]++
					if labelValues[label] == nil {
						labelValues[label] = map[string]bool{}
					}
					labelValues[label][line[i+len(sep):]] = true
				}
			}
		}
	}
	w := &Wrapper{Sep: sep, boiler: map[string]bool{}}
	for line, n := range lineCount {
		if n == len(pages) {
			// Constant on every page. If it parses as a label line whose
			// value never varies, it is boilerplate, not data.
			if i := strings.Index(line, sep); i > 0 {
				if len(labelValues[line[:i]]) > 1 {
					continue // same line everywhere but label also varies elsewhere
				}
			}
			w.boiler[line] = true
		}
	}
	for label, n := range labelCount {
		// A data label appears on most pages and its values vary (or the
		// label appears on several pages — constant-valued fields like a
		// shared brand are still fields if the full line is not globally
		// constant).
		if n >= (len(pages)+1)/2 && len(labelValues[label]) >= 1 {
			sample := label + sep + firstKey(labelValues[label])
			if len(labelValues[label]) == 1 && w.boiler[sample] {
				continue
			}
			w.Fields = append(w.Fields, label)
		}
	}
	sort.Strings(w.Fields)
	if len(w.Fields) == 0 {
		return nil, fmt.Errorf("extract: no data fields induced from %d pages", len(pages))
	}
	return w, nil
}

func firstKey(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

// Extract parses one page into a record with the given ID and source.
// Only lines matching induced field labels are extracted; values are
// parsed into typed values.
func (w *Wrapper) Extract(p Page, recID, sourceID string) *data.Record {
	fieldSet := map[string]bool{}
	for _, f := range w.Fields {
		fieldSet[f] = true
	}
	rec := data.NewRecord(recID, sourceID)
	for _, line := range p.Lines {
		if w.boiler[line] {
			continue
		}
		i := strings.Index(line, w.Sep)
		if i <= 0 {
			continue
		}
		label := line[:i]
		if !fieldSet[label] {
			continue
		}
		rec.Set(label, data.Parse(line[i+len(w.Sep):]))
	}
	return rec
}

// ExtractionQuality scores extracted records against the originals:
// per-field precision/recall over (attribute-label, value) slots. The
// mapping from template labels back to attributes comes from the
// template (evaluation only).
func ExtractionQuality(t *Template, originals []*data.Record, extracted []*data.Record) (precision, recall float64) {
	// originals[i] corresponds to extracted[i].
	var tp, fp, fn float64
	for i, orig := range originals {
		if i >= len(extracted) {
			break
		}
		got := extracted[i]
		for _, a := range orig.Attrs() {
			label := t.LabelOf[a]
			if label == "" {
				label = a
			}
			want := orig.Fields[a]
			gv := got.Get(label)
			switch {
			case gv.IsNull():
				fn++
			case gv.Equal(want) || gv.String() == want.String():
				tp++
			default:
				fp++
				fn++
			}
		}
		// Extracted fields not in the original are spurious.
		for _, l := range got.Attrs() {
			found := false
			for _, a := range orig.Attrs() {
				lbl := t.LabelOf[a]
				if lbl == "" {
					lbl = a
				}
				if lbl == l {
					found = true
					break
				}
			}
			if !found {
				fp++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	return precision, recall
}
