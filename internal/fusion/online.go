package fusion

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
)

// Online implements online data fusion (Liu, Dong & Srivastava,
// surveyed under the tutorial's Velocity/Veracity discussion): sources
// are probed one at a time in decreasing estimated-accuracy order, and
// a data item's answer is finalised early once the accumulated vote
// lead of its current top value exceeds the maximum weight the
// remaining sources could contribute — returning correct answers after
// consulting only a fraction of the sources.
type Online struct {
	// Accuracy estimates per source (e.g. from a prior ACCU run).
	// Sources absent from the map default to 0.7.
	Accuracy map[string]float64
	// N is the assumed number of false values (ACCU vote weighting).
	// Only N == 0 means "unset" and takes the default 10; any positive
	// value — including fractional values and N = 1, which reduces the
	// weight to the plain log-odds ln(a/(1-a)) — is honoured as given.
	// Negative N is rejected by Fuse/FuseOnline/FuseWithPrefix.
	N float64
	// Workers bounds the per-item probing worker pool (0 = NumCPU);
	// output is identical for any value.
	Workers int
	// Ctx cancels the probing fan-out at chunk boundaries; nil never
	// cancels.
	Ctx context.Context
}

// OnlineResult extends Result with probing statistics.
type OnlineResult struct {
	Result
	// Probes[item] = number of sources consulted before finalising.
	Probes map[data.Item]int
	// Order is the probe order used (descending estimated accuracy).
	Order []string
}

// Name implements Fuser.
func (Online) Name() string { return "online" }

// Fuse implements Fuser (discarding probing statistics).
func (o Online) Fuse(cs *data.ClaimSet) (*Result, error) {
	or, err := o.FuseOnline(cs)
	if err != nil {
		return nil, err
	}
	return &or.Result, nil
}

// validate rejects unusable configurations. Only N == 0 is "unset";
// negative N has no interpretation under the ACCU weight model (the
// log argument n·a/(1-a) would flip sign).
func (o Online) validate() error {
	if o.N < 0 {
		return fmt.Errorf("fusion: online N = %v is negative (0 means the default 10)", o.N)
	}
	return nil
}

// weightOf is the ACCU log-odds vote weight of a source. Note the
// weight is negative when n·a/(1-a) < 1 — a source so unreliable its
// vote counts against its own claim — which is why early termination
// reasons about absolute remaining weight, not the signed sum.
func (o Online) weightOf(src string) float64 {
	n := o.N
	if n == 0 {
		n = 10
	}
	a := 0.7
	if v, ok := o.Accuracy[src]; ok {
		a = v
	}
	a = clampF(a, 0.05, 0.95)
	return math.Log(n * a / (1 - a))
}

// FuseOnline runs the full online protocol and reports probe counts.
// Items are probed independently, so the per-item loop fans out on the
// worker pool; each item writes only its own slot and the result maps
// assemble sequentially in item order.
func (o Online) FuseOnline(cs *data.ClaimSet) (*OnlineResult, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := append([]string(nil), cs.Sources()...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := o.weightOf(order[i]), o.weightOf(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	// Per-source claim lookup (read-only once built).
	claimOf := map[string]map[data.Item]data.Value{}
	for _, s := range order {
		m := map[data.Item]data.Value{}
		for _, c := range cs.SourceClaims(s) {
			m[c.Item] = c.Value
		}
		claimOf[s] = m
	}
	// Remaining-influence suffix sums: absRemaining[i] = sum of |weight|
	// over order[i:]. A not-yet-probed source with weight w can move the
	// lead-vs-rival gap by at most |w|: a positive-weight source can add
	// w to a rival, and a negative-weight source can *subtract* |w| from
	// the leader by claiming it. Summing signed weights here (the old
	// bound) let a negative-weight tail shrink the bar below zero and
	// finalise answers those very sources would have overturned.
	absRemaining := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		absRemaining[i] = absRemaining[i+1] + math.Abs(o.weightOf(order[i]))
	}

	res := &OnlineResult{
		Result: Result{
			Values:         map[data.Item]data.Value{},
			Confidence:     map[data.Item]float64{},
			SourceAccuracy: map[string]float64{},
		},
		Probes: map[data.Item]int{},
		Order:  order,
	}
	for _, s := range order {
		res.SourceAccuracy[s] = clampF(accOrDefault(o.Accuracy, s), 0.05, 0.95)
	}

	items := cs.Items()
	type probed struct {
		value  data.Value
		conf   float64
		probes int
		found  bool
	}
	outs := make([]probed, len(items))
	if err := parallel.ForEach(parallel.Config{Workers: o.Workers, Ctx: o.Ctx}, len(items), func(idx int) {
		it := items[idx]
		scores := map[string]float64{}
		values := map[string]data.Value{}
		probes := 0
		for i, s := range order {
			// Probes counts sources *consulted*, whether or not they hold
			// a claim for this item: an item that never terminates early
			// reports len(order), not its last claiming source's index.
			probes = i + 1
			if v, ok := claimOf[s][it]; ok {
				k := v.Key()
				scores[k] += o.weightOf(s)
				values[k] = v
			}
			// Early termination: the leader cannot be overtaken even in
			// the worst case over the remaining sources. The rival score
			// floors at 0 because an as-yet-unclaimed value starts there,
			// and remaining influence is the absolute-weight suffix sum
			// (see absRemaining above).
			lead, second := topTwo(scores)
			if lead != "" && scores[lead]-math.Max(second, 0) > absRemaining[i+1] {
				outs[idx] = probed{value: values[lead], conf: confidenceOf(scores, lead), probes: probes, found: true}
				return
			}
		}
		if lead, _ := topTwo(scores); lead != "" {
			outs[idx] = probed{value: values[lead], conf: confidenceOf(scores, lead), probes: probes, found: true}
		}
	}); err != nil {
		return nil, err
	}
	for idx, it := range items {
		if !outs[idx].found {
			continue
		}
		res.Values[it] = outs[idx].value
		res.Probes[it] = outs[idx].probes
		res.Confidence[it] = outs[idx].conf
	}
	res.Iterations = 1
	return res, nil
}

// FuseWithPrefix fuses consulting only the first k sources of the
// accuracy order — the anytime curve's x-axis.
func (o Online) FuseWithPrefix(cs *data.ClaimSet, k int) (*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := append([]string(nil), cs.Sources()...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := o.weightOf(order[i]), o.weightOf(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	if k > len(order) {
		k = len(order)
	}
	allowed := map[string]bool{}
	for _, s := range order[:k] {
		allowed[s] = true
	}
	sub := data.NewClaimSet()
	for _, c := range cs.All() {
		if allowed[c.Source] {
			sub.Add(c)
		}
	}
	for _, it := range cs.Items() {
		if v, ok := cs.Truth(it); ok {
			sub.SetTruth(it, v)
		}
	}
	return WeightedVote{Weights: weightsFor(o, order[:k]), Workers: o.Workers}.Fuse(sub)
}

func weightsFor(o Online, sources []string) map[string]float64 {
	w := map[string]float64{}
	for _, s := range sources {
		w[s] = o.weightOf(s)
	}
	return w
}

func accOrDefault(m map[string]float64, s string) float64 {
	if v, ok := m[s]; ok {
		return v
	}
	return 0.7
}

// topTwo returns the leading value key and the runner-up's score.
func topTwo(scores map[string]float64) (lead string, second float64) {
	best := math.Inf(-1)
	second = 0
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := scores[k]
		if s > best {
			second = best
			best, lead = s, k
		} else if s > second {
			second = s
		}
	}
	if math.IsInf(second, -1) {
		second = 0
	}
	return lead, second
}

// confidenceOf normalises the leader's exponentiated score. The
// normalizer accumulates in sorted key order — like softmax, this was a
// map-iteration accumulation whose low bits depended on Go's randomised
// map order.
func confidenceOf(scores map[string]float64, lead string) float64 {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var z, l float64
	for _, k := range keys {
		e := math.Exp(scores[k])
		z += e
		if k == lead {
			l = e
		}
	}
	if z == 0 {
		return 0
	}
	return l / z
}
