package fusion

import (
	"sort"

	"repro/internal/data"
)

// Copy-direction inference: once a pair is believed dependent, decide
// who copies whom. Following the VLDB'09 analysis, the robust
// asymmetry is a *consistency* one: the original's accuracy is the same
// on shared items and on items it alone covers, whereas the copier's
// shared-item accuracy is inherited from the original and so diverges
// from the accuracy of its own independent remainder. A secondary
// signal applies when one side's claims are (nearly) a subset of the
// other's — the lazy-copier case — where the original covers more.

// DirectedCopy is an inferred copy edge with confidence.
type DirectedCopy struct {
	From string // the copier
	To   string // the original
	P    float64
	// Evidence components, exposed for inspection.
	CoverageSignal    float64 // positive when To covers more (subset copier)
	DiscrepancySignal float64 // positive when From's shared/own accuracy diverges more
}

// InferDirections decides a direction for every source pair whose copy
// posterior is at least minP. truth supplies the current fused
// estimates (for accuracy signals); accuracy the per-source estimates.
func InferDirections(cs *data.ClaimSet, copies map[SourcePair]float64,
	truth *Result, accuracy map[string]float64, minP float64) []DirectedCopy {
	if minP <= 0 {
		minP = 0.5
	}
	claimOf := map[string]map[data.Item]string{}
	for _, s := range cs.Sources() {
		m := map[data.Item]string{}
		for _, cl := range cs.SourceClaims(s) {
			m[cl.Item] = cl.Value.Key()
		}
		claimOf[s] = m
	}
	correctRate := func(src string, only map[data.Item]bool) float64 {
		hit, n := 0, 0
		for it, v := range claimOf[src] {
			if only != nil && !only[it] {
				continue
			}
			tv, ok := truth.Values[it]
			if !ok {
				continue
			}
			n++
			if tv.Key() == v {
				hit++
			}
		}
		if n == 0 {
			return accOrDefault(accuracy, src)
		}
		return float64(hit) / float64(n)
	}

	var out []DirectedCopy
	pairs := make([]SourcePair, 0, len(copies))
	for p := range copies {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pair := range pairs {
		p := copies[pair]
		if p < minP {
			continue
		}
		a, b := pair.A, pair.B
		shared := map[data.Item]bool{}
		onlyA := map[data.Item]bool{}
		for it := range claimOf[a] {
			if _, ok := claimOf[b][it]; ok {
				shared[it] = true
			} else {
				onlyA[it] = true
			}
		}
		onlyB := map[data.Item]bool{}
		for it := range claimOf[b] {
			if !shared[it] {
				onlyB[it] = true
			}
		}
		// Consistency discrepancy: |acc(shared) − acc(own)| per side.
		// The side whose shared-item accuracy diverges from its own-item
		// accuracy inherited those shared values — the copier.
		dA := absF(correctRate(a, shared) - correctRate(a, onlyA))
		dB := absF(correctRate(b, shared) - correctRate(b, onlyB))
		discSignal := dA - dB // positive ⇒ a is the copier

		// Subset-coverage signal, only meaningful when one side has
		// (almost) no independent remainder.
		covA, covB := float64(len(claimOf[a])), float64(len(claimOf[b]))
		covSignal := 0.0
		if covA+covB > 0 && (len(onlyA) == 0 || len(onlyB) == 0) {
			covSignal = (covB - covA) / (covA + covB) // positive ⇒ b is the original
		}

		// Positive combined ⇒ a is the copier.
		combined := discSignal + covSignal
		from, to := a, b
		if combined < 0 {
			from, to = b, a
		}
		out = append(out, DirectedCopy{
			From: from, To: to, P: p,
			CoverageSignal: covSignal, DiscrepancySignal: discSignal,
		})
	}
	return out
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
