package fusion

import (
	"context"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ACCU is the Bayesian source-accuracy model (AccuVote): assuming each
// item has one true value and N uniformly-likely false values, a source
// with accuracy A contributes vote weight ln(N·A/(1−A)) to the values
// it claims; value posteriors follow from normalising the exponentiated
// vote sums; source accuracies are re-estimated as the mean posterior
// of their claims; iterate to a fixpoint. POPACCU replaces the uniform
// false-value assumption with the observed value popularity.
//
// The EM runs on the interned claimIndex: the E-step parallelises over
// items (each writes its own posterior range), the M-step over sources
// (each writes its own accuracy slot), and every float accumulation
// walks a fixed slice order, so results are bit-identical for any
// worker count.
type ACCU struct {
	// N is the assumed number of false values per item. Default 10.
	N float64
	// InitialAccuracy for all sources. Default 0.8.
	InitialAccuracy float64
	// MaxIterations (default 20) and Epsilon (default 1e-4).
	MaxIterations int
	Epsilon       float64
	// Popularity switches to POPACCU false-value modelling: the
	// effective N per item is its observed number of distinct values.
	Popularity bool
	// Workers bounds the EM worker pool (0 = NumCPU). Output is
	// identical for any value.
	Workers int
	// Obs records "fusion." metrics (index sizes, EM iterations and
	// per-iteration convergence deltas) when set.
	Obs *obs.Registry
	// Ctx cancels the EM at chunk boundaries; nil never cancels.
	Ctx context.Context

	// Similarity, when set, enables the AccuSim variant: a value's vote
	// score is boosted by the scores of *similar* values, so "2999" and
	// "2998.5" reinforce each other instead of splitting the vote.
	// SimInfluence (ρ, default 0.5) scales the boost.
	Similarity   func(a, b data.Value) float64
	SimInfluence float64

	// copyDiscount, when set by ACCUCOPY, down-weights dependent votes:
	// it maps (item, value key, source) to the source's independence
	// probability in [0,1].
	copyDiscount func(it data.Item, valueKey, source string) float64
}

// Name implements Fuser.
func (a ACCU) Name() string {
	if a.Similarity != nil {
		return "accusim"
	}
	if a.Popularity {
		return "popaccu"
	}
	return "accu"
}

// accuParams resolves defaults.
func (a ACCU) params() (n, acc0 float64, maxIter int, eps float64) {
	n = a.N
	if n <= 1 {
		n = 10
	}
	acc0 = a.InitialAccuracy
	if acc0 <= 0 || acc0 >= 1 {
		acc0 = 0.8
	}
	maxIter = a.MaxIterations
	if maxIter <= 0 {
		maxIter = 20
	}
	eps = a.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}
	return
}

// Fuse implements Fuser.
func (a ACCU) Fuse(cs *data.ClaimSet) (*Result, error) {
	ci, err := buildIndex(cs, parallel.Config{Workers: a.Workers, Obs: a.Obs, Ctx: a.Ctx})
	if err != nil {
		return nil, err
	}
	return a.fuseOn(ci, nil)
}

// fuseOn runs the EM over a prebuilt index (ACCUCOPY reuses one index
// across its outer passes). When snap is non-nil it receives a Result
// snapshot after every iteration — the FuseTrace hook.
func (a ACCU) fuseOn(ci *claimIndex, snap func(*Result)) (*Result, error) {
	n, acc0, maxIter, eps := a.params()
	cfg := ci.cfg
	reg := obs.OrDefault(a.Obs)

	acc := make([]float64, len(ci.sources))
	for s := range acc {
		acc[s] = acc0
	}

	// Copy discounts are constant across iterations (they depend only on
	// the claim set and the detector's last pass), so resolve the
	// closure once into a slice aligned with the support lists.
	var disc []float64
	if a.copyDiscount != nil {
		disc = make([]float64, len(ci.supSrc))
		if err := parallel.ForEach(cfg, ci.numValues(), func(v int) {
			it := ci.items[ci.valItem[v]]
			k := ci.valKeys[v]
			for e := ci.supOff[v]; e < ci.supOff[v+1]; e++ {
				disc[e] = a.copyDiscount(it, k, ci.sources[ci.supSrc[e]])
			}
		}); err != nil {
			return nil, err
		}
	}

	rho := a.SimInfluence
	if rho <= 0 {
		rho = 0.5
	}

	const minAcc, maxAcc = 0.01, 0.99
	nv := ci.numValues()
	scores := make([]float64, nv)
	post := make([]float64, nv)
	var adj []float64
	if a.Similarity != nil {
		adj = make([]float64, nv)
	}
	clamped := make([]float64, len(ci.sources))
	delta := make([]float64, len(ci.sources))

	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// E: value posteriors from accuracies. Items are independent;
		// each writes only its own [valOff[i], valOff[i+1]) range.
		for s := range acc {
			clamped[s] = clampF(acc[s], minAcc, maxAcc)
		}
		if err := parallel.ForEach(cfg, len(ci.items), func(i int) {
			lo, hi := ci.valOff[i], ci.valOff[i+1]
			effN := n
			if a.Popularity {
				if d := float64(hi - lo); d > 1 {
					effN = d
				} else {
					effN = 2
				}
			}
			for v := lo; v < hi; v++ {
				var sum float64
				for e := ci.supOff[v]; e < ci.supOff[v+1]; e++ {
					ca := clamped[ci.supSrc[e]]
					w := math.Log(effN * ca / (1 - ca))
					if disc != nil {
						w *= disc[e]
					}
					sum += w
				}
				scores[v] = sum
			}
			src := scores
			if a.Similarity != nil {
				// AccuSim: each value's score absorbs a ρ-scaled share
				// of the scores of similar values, accumulated in
				// sorted-key order.
				for v := lo; v < hi; v++ {
					boost := 0.0
					for v2 := lo; v2 < hi; v2++ {
						if v2 == v {
							continue
						}
						if sim := a.Similarity(ci.valVals[v], ci.valVals[v2]); sim > 0 {
							boost += sim * scores[v2]
						}
					}
					adj[v] = scores[v] + rho*boost
				}
				src = adj
			}
			softmaxRange(src, post, lo, hi)
		}); err != nil {
			return nil, err
		}
		// M: accuracies from posteriors. Sources are independent; each
		// writes only its own slot, summing its claims' posteriors in
		// claim insertion order.
		if err := parallel.ForEach(cfg, len(ci.sources), func(s int) {
			lo, hi := ci.srcOff[s], ci.srcOff[s+1]
			if lo == hi {
				delta[s] = 0
				return
			}
			var sum float64
			for c := lo; c < hi; c++ {
				sum += post[ci.srcVal[c]]
			}
			next := clampF(sum/float64(hi-lo), minAcc, maxAcc)
			delta[s] = math.Abs(next - acc[s])
			acc[s] = next
		}); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for _, d := range delta {
			if d > maxDelta {
				maxDelta = d
			}
		}
		// The delta reduction runs sequentially on the driver goroutine,
		// so the Dist's running sum is bit-deterministic.
		reg.Dist("fusion.em_delta").Observe(maxDelta)
		reg.Gauge("fusion.em_final_delta").Set(maxDelta)
		if snap != nil {
			snap(ci.buildResult(post, ci.accuracyMap(acc), iters))
		}
		if maxDelta < eps {
			break
		}
	}
	reg.Counter("fusion.em_iterations").Add(int64(iters))
	reg.Counter("fusion.em_runs").Inc()
	return ci.buildResult(post, ci.accuracyMap(acc), iters), nil
}

// FuseTrace runs Fuse while recording, after each EM iteration, the
// value produced for every item — used by the convergence experiment
// (E2). The trace's last entry equals the final result. Snapshots are
// captured inside a single EM run, so the cost is one Fuse plus
// O(items) per iteration — not the quadratic re-run-per-prefix the
// first implementation paid.
func (a ACCU) FuseTrace(cs *data.ClaimSet) ([]*Result, error) {
	ci, err := buildIndex(cs, parallel.Config{Workers: a.Workers, Obs: a.Obs, Ctx: a.Ctx})
	if err != nil {
		return nil, err
	}
	var trace []*Result
	if _, err := a.fuseOn(ci, func(r *Result) { trace = append(trace, r) }); err != nil {
		return nil, err
	}
	return trace, nil
}

// softmax normalises a score map into a probability map, accumulating
// the normalizer in sorted key order so the result is bit-deterministic
// (Go map iteration order is randomised). The engine path uses
// softmaxRange over the interned layout; this helper remains for
// reference implementations in tests.
func softmax(scores map[string]float64) map[string]float64 {
	if len(scores) == 0 {
		return scores
	}
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	maxS := math.Inf(-1)
	for _, k := range keys {
		if s := scores[k]; s > maxS {
			maxS = s
		}
	}
	out := make(map[string]float64, len(scores))
	var z float64
	for _, k := range keys {
		e := math.Exp(scores[k] - maxS)
		out[k] = e
		z += e
	}
	for _, k := range keys {
		out[k] /= z
	}
	return out
}

func clampF(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}
