package fusion

import (
	"math"
	"sort"

	"repro/internal/data"
)

// ACCU is the Bayesian source-accuracy model (AccuVote): assuming each
// item has one true value and N uniformly-likely false values, a source
// with accuracy A contributes vote weight ln(N·A/(1−A)) to the values
// it claims; value posteriors follow from normalising the exponentiated
// vote sums; source accuracies are re-estimated as the mean posterior
// of their claims; iterate to a fixpoint. POPACCU replaces the uniform
// false-value assumption with the observed value popularity.
type ACCU struct {
	// N is the assumed number of false values per item. Default 10.
	N float64
	// InitialAccuracy for all sources. Default 0.8.
	InitialAccuracy float64
	// MaxIterations (default 20) and Epsilon (default 1e-4).
	MaxIterations int
	Epsilon       float64
	// Popularity switches to POPACCU false-value modelling: the
	// effective N per item is its observed number of distinct values.
	Popularity bool

	// Similarity, when set, enables the AccuSim variant: a value's vote
	// score is boosted by the scores of *similar* values, so "2999" and
	// "2998.5" reinforce each other instead of splitting the vote.
	// SimInfluence (ρ, default 0.5) scales the boost.
	Similarity   func(a, b data.Value) float64
	SimInfluence float64

	// copyDiscount, when set by ACCUCOPY, down-weights dependent votes:
	// it maps (item, value key, source) to the source's independence
	// probability in [0,1].
	copyDiscount func(it data.Item, valueKey, source string) float64
}

// Name implements Fuser.
func (a ACCU) Name() string {
	if a.Similarity != nil {
		return "accusim"
	}
	if a.Popularity {
		return "popaccu"
	}
	return "accu"
}

// accuParams resolves defaults.
func (a ACCU) params() (n, acc0 float64, maxIter int, eps float64) {
	n = a.N
	if n <= 1 {
		n = 10
	}
	acc0 = a.InitialAccuracy
	if acc0 <= 0 || acc0 >= 1 {
		acc0 = 0.8
	}
	maxIter = a.MaxIterations
	if maxIter <= 0 {
		maxIter = 20
	}
	eps = a.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}
	return
}

// Fuse implements Fuser.
func (a ACCU) Fuse(cs *data.ClaimSet) (*Result, error) {
	n, acc0, maxIter, eps := a.params()

	accuracy := map[string]float64{}
	for _, s := range cs.Sources() {
		accuracy[s] = acc0
	}
	items := cs.Items()
	tallies := make([]*voteCounts, len(items))
	for i, it := range items {
		tallies[i] = tally(cs.ItemClaims(it))
	}

	const minAcc, maxAcc = 0.01, 0.99
	post := make([]map[string]float64, len(items)) // per item: value key → P
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// E: value posteriors from accuracies.
		for i, it := range items {
			vc := tallies[i]
			effN := n
			if a.Popularity {
				if d := float64(len(vc.keyOrder)); d > 1 {
					effN = d
				} else {
					effN = 2
				}
			}
			scores := map[string]float64{}
			for _, k := range vc.keyOrder {
				var sum float64
				for _, s := range vc.sources[k] {
					acc := clampF(accuracy[s], minAcc, maxAcc)
					w := math.Log(effN * acc / (1 - acc))
					if a.copyDiscount != nil {
						w *= a.copyDiscount(it, k, s)
					}
					sum += w
				}
				scores[k] = sum
			}
			if a.Similarity != nil {
				scores = a.simAdjust(vc, scores)
			}
			post[i] = softmax(scores)
		}
		// M: accuracies from posteriors.
		itemIndex := map[data.Item]int{}
		for i, it := range items {
			itemIndex[it] = i
		}
		maxDelta := 0.0
		for _, s := range cs.Sources() {
			claims := cs.SourceClaims(s)
			if len(claims) == 0 {
				continue
			}
			var sum float64
			for _, c := range claims {
				sum += post[itemIndex[c.Item]][c.Value.Key()]
			}
			next := clampF(sum/float64(len(claims)), minAcc, maxAcc)
			if d := math.Abs(next - accuracy[s]); d > maxDelta {
				maxDelta = d
			}
			accuracy[s] = next
		}
		if maxDelta < eps {
			break
		}
	}

	res := &Result{
		Values:         map[data.Item]data.Value{},
		Confidence:     map[data.Item]float64{},
		SourceAccuracy: accuracy,
		Iterations:     iters,
	}
	for i, it := range items {
		vc := tallies[i]
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		bestKey, best := "", -1.0
		for _, k := range keys {
			if p := post[i][k]; p > best {
				best, bestKey = p, k
			}
		}
		if bestKey != "" {
			res.Values[it] = vc.values[bestKey]
			res.Confidence[it] = best
		}
	}
	return res, nil
}

// FuseTrace runs Fuse while recording, after each EM iteration, the
// value produced for every item — used by the convergence experiment
// (E2). The trace's last entry equals the final result.
func (a ACCU) FuseTrace(cs *data.ClaimSet) ([]*Result, error) {
	_, _, maxIter, _ := a.params()
	var trace []*Result
	for i := 1; i <= maxIter; i++ {
		step := a
		step.MaxIterations = i
		r, err := step.Fuse(cs)
		if err != nil {
			return nil, err
		}
		trace = append(trace, r)
		if r.Iterations < i {
			break // converged earlier
		}
	}
	return trace, nil
}

// simAdjust applies the AccuSim boost: each value's score absorbs a
// ρ-scaled share of the scores of similar values.
func (a ACCU) simAdjust(vc *voteCounts, scores map[string]float64) map[string]float64 {
	rho := a.SimInfluence
	if rho <= 0 {
		rho = 0.5
	}
	adj := make(map[string]float64, len(scores))
	for _, k := range vc.keyOrder {
		boost := 0.0
		for _, k2 := range vc.keyOrder {
			if k == k2 {
				continue
			}
			if sim := a.Similarity(vc.values[k], vc.values[k2]); sim > 0 {
				boost += sim * scores[k2]
			}
		}
		adj[k] = scores[k] + rho*boost
	}
	return adj
}

func softmax(scores map[string]float64) map[string]float64 {
	if len(scores) == 0 {
		return scores
	}
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	out := make(map[string]float64, len(scores))
	var z float64
	for k, s := range scores {
		e := math.Exp(s - maxS)
		out[k] = e
		z += e
	}
	for k := range out {
		out[k] /= z
	}
	return out
}

func clampF(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}
