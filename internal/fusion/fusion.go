// Package fusion implements the data-fusion (truth-discovery) stage for
// the Veracity dimension: majority and weighted voting, TruthFinder,
// the Bayesian source-accuracy model ACCU and its POPACCU variant,
// pairwise copy detection between sources, and the copy-aware ACCUCOPY
// fuser — the method family of Dong, Berti-Équille & Srivastava that
// the Big Data Integration tutorial surveys.
//
// Every fuser runs on the interned claimIndex (engine.go): source IDs,
// items and value keys are interned to dense uint32 ranks, the
// iterative state lives in flat slices, and all float accumulations
// walk fixed slice orders, so each fuser is bit-deterministic and
// produces identical output for any worker count.
package fusion

import (
	"context"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Result is the outcome of fusing a claim set.
type Result struct {
	// Values holds the fused (believed-true) value per item.
	Values map[data.Item]data.Value
	// Confidence holds the fuser's probability for the chosen value.
	Confidence map[data.Item]float64
	// SourceAccuracy holds estimated accuracies for fusers that model
	// them (nil otherwise).
	SourceAccuracy map[string]float64
	// Iterations the fuser ran before convergence (1 for one-shot).
	Iterations int
}

// Fuser decides the true value of every item in a claim set.
type Fuser interface {
	Fuse(cs *data.ClaimSet) (*Result, error)
	Name() string
}

// voteCounts tallies, per item, the supporting sources of each distinct
// value key. The canonical value for a key is the first one observed.
// The engine path replaces this with the claimIndex layout; the tally
// remains as the reference implementation tests pin against.
type voteCounts struct {
	values   map[string]data.Value
	sources  map[string][]string
	keyOrder []string
}

func tally(claims []data.Claim) *voteCounts {
	vc := &voteCounts{values: map[string]data.Value{}, sources: map[string][]string{}}
	for _, c := range claims {
		k := c.Value.Key()
		if _, seen := vc.values[k]; !seen {
			vc.values[k] = c.Value
			vc.keyOrder = append(vc.keyOrder, k)
		}
		vc.sources[k] = append(vc.sources[k], c.Source)
	}
	return vc
}

// MajorityVote picks the most-claimed value per item, breaking ties by
// value key for determinism.
type MajorityVote struct {
	// Workers bounds the worker pool (0 = NumCPU); output is identical
	// for any value.
	Workers int
	// Obs records "fusion." index metrics when set.
	Obs *obs.Registry
	// Ctx cancels the fuse at chunk boundaries; nil never cancels.
	Ctx context.Context
}

// Name implements Fuser.
func (MajorityVote) Name() string { return "vote" }

// Fuse implements Fuser.
func (mv MajorityVote) Fuse(cs *data.ClaimSet) (*Result, error) {
	return weightedVote(cs, parallel.Config{Workers: mv.Workers, Obs: mv.Obs, Ctx: mv.Ctx}, func(string) float64 { return 1 })
}

// WeightedVote votes with per-source weights (e.g. externally known
// trust levels). Unknown sources weigh DefaultWeight (1 when zero).
type WeightedVote struct {
	Weights       map[string]float64
	DefaultWeight float64
	// Workers bounds the worker pool (0 = NumCPU); output is identical
	// for any value.
	Workers int
	// Obs records "fusion." index metrics when set.
	Obs *obs.Registry
	// Ctx cancels the fuse at chunk boundaries; nil never cancels.
	Ctx context.Context
}

// Name implements Fuser.
func (WeightedVote) Name() string { return "weighted-vote" }

// Fuse implements Fuser.
func (wv WeightedVote) Fuse(cs *data.ClaimSet) (*Result, error) {
	def := wv.DefaultWeight
	if def == 0 {
		def = 1
	}
	return weightedVote(cs, parallel.Config{Workers: wv.Workers, Obs: wv.Obs, Ctx: wv.Ctx}, func(s string) float64 {
		if w, ok := wv.Weights[s]; ok {
			return w
		}
		return def
	})
}

// weightedVote runs one voting round on the interned index: weights are
// resolved once per source rank, items score in parallel (per-key sums
// in claim insertion order, totals in sorted-key order), and each item
// writes only its own slots — identical output for any worker count.
func weightedVote(cs *data.ClaimSet, cfg parallel.Config, weight func(string) float64) (*Result, error) {
	ci, err := buildIndex(cs, cfg)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(ci.sources))
	for s, src := range ci.sources {
		w[s] = weight(src)
	}

	bestV := make([]int, len(ci.items))
	bestW := make([]float64, len(ci.items))
	totalW := make([]float64, len(ci.items))
	if err := parallel.ForEach(cfg, len(ci.items), func(i int) {
		best, bw, tw := -1, 0.0, 0.0
		for v := ci.valOff[i]; v < ci.valOff[i+1]; v++ {
			var vw float64
			for e := ci.supOff[v]; e < ci.supOff[v+1]; e++ {
				vw += w[ci.supSrc[e]]
			}
			tw += vw
			if vw > bw {
				bw, best = vw, v
			}
		}
		bestV[i], bestW[i], totalW[i] = best, bw, tw
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Values:     make(map[data.Item]data.Value, len(ci.items)),
		Confidence: make(map[data.Item]float64, len(ci.items)),
		Iterations: 1,
	}
	for i, it := range ci.items {
		if bestV[i] < 0 {
			continue
		}
		res.Values[it] = ci.valVals[bestV[i]]
		if totalW[i] > 0 {
			res.Confidence[it] = bestW[i] / totalW[i]
		}
	}
	return res, nil
}

// TruthToResult is a helper for tests: extract only the fused values.
func TruthToResult(r *Result) map[data.Item]data.Value { return r.Values }
