// Package fusion implements the data-fusion (truth-discovery) stage for
// the Veracity dimension: majority and weighted voting, TruthFinder,
// the Bayesian source-accuracy model ACCU and its POPACCU variant,
// pairwise copy detection between sources, and the copy-aware ACCUCOPY
// fuser — the method family of Dong, Berti-Équille & Srivastava that
// the Big Data Integration tutorial surveys.
package fusion

import (
	"sort"

	"repro/internal/data"
)

// Result is the outcome of fusing a claim set.
type Result struct {
	// Values holds the fused (believed-true) value per item.
	Values map[data.Item]data.Value
	// Confidence holds the fuser's probability for the chosen value.
	Confidence map[data.Item]float64
	// SourceAccuracy holds estimated accuracies for fusers that model
	// them (nil otherwise).
	SourceAccuracy map[string]float64
	// Iterations the fuser ran before convergence (1 for one-shot).
	Iterations int
}

// Fuser decides the true value of every item in a claim set.
type Fuser interface {
	Fuse(cs *data.ClaimSet) (*Result, error)
	Name() string
}

// voteCounts tallies, per item, the supporting sources of each distinct
// value key. The canonical value for a key is the first one observed.
type voteCounts struct {
	values   map[string]data.Value
	sources  map[string][]string
	keyOrder []string
}

func tally(claims []data.Claim) *voteCounts {
	vc := &voteCounts{values: map[string]data.Value{}, sources: map[string][]string{}}
	for _, c := range claims {
		k := c.Value.Key()
		if _, seen := vc.values[k]; !seen {
			vc.values[k] = c.Value
			vc.keyOrder = append(vc.keyOrder, k)
		}
		vc.sources[k] = append(vc.sources[k], c.Source)
	}
	return vc
}

// MajorityVote picks the most-claimed value per item, breaking ties by
// value key for determinism.
type MajorityVote struct{}

// Name implements Fuser.
func (MajorityVote) Name() string { return "vote" }

// Fuse implements Fuser.
func (MajorityVote) Fuse(cs *data.ClaimSet) (*Result, error) {
	return weightedVote(cs, func(string) float64 { return 1 })
}

// WeightedVote votes with per-source weights (e.g. externally known
// trust levels). Unknown sources weigh DefaultWeight (1 when zero).
type WeightedVote struct {
	Weights       map[string]float64
	DefaultWeight float64
}

// Name implements Fuser.
func (WeightedVote) Name() string { return "weighted-vote" }

// Fuse implements Fuser.
func (wv WeightedVote) Fuse(cs *data.ClaimSet) (*Result, error) {
	def := wv.DefaultWeight
	if def == 0 {
		def = 1
	}
	return weightedVote(cs, func(s string) float64 {
		if w, ok := wv.Weights[s]; ok {
			return w
		}
		return def
	})
}

func weightedVote(cs *data.ClaimSet, weight func(string) float64) (*Result, error) {
	res := &Result{
		Values:     map[data.Item]data.Value{},
		Confidence: map[data.Item]float64{},
		Iterations: 1,
	}
	for _, it := range cs.Items() {
		vc := tally(cs.ItemClaims(it))
		var bestKey string
		var bestW, totalW float64
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		for _, k := range keys {
			var w float64
			for _, s := range vc.sources[k] {
				w += weight(s)
			}
			totalW += w
			if w > bestW {
				bestW, bestKey = w, k
			}
		}
		if bestKey == "" {
			continue
		}
		res.Values[it] = vc.values[bestKey]
		if totalW > 0 {
			res.Confidence[it] = bestW / totalW
		}
	}
	return res, nil
}

// TruthToResult is a helper for tests: extract only the fused values.
func TruthToResult(r *Result) map[data.Item]data.Value { return r.Values }
