package fusion

import (
	"repro/internal/data"
	"testing"

	"repro/internal/datagen"
	"repro/internal/eval"
)

// copierWorld builds a claim world where many copiers replicate one
// mediocre source, so naive voting is dominated by replicated mistakes.
func copierWorld(seed int64, copiers int) *datagen.ClaimWorld {
	return datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 200, NumValues: 8,
		NumSources: 6, MinAccuracy: 0.55, MaxAccuracy: 0.9,
		NumCopiers: copiers, CopyRate: 0.95, CopierSpread: 1,
	})
}

func TestCopyDetectorFindsCopiers(t *testing.T) {
	// Unit-test the Bayesian core in isolation: feed ground-truth
	// values and accuracies. (The full loop's bootstrap behaviour is
	// covered by TestACCUCOPY* below.)
	cw := copierWorld(11, 4)
	truthRes := &Result{Values: map[data.Item]data.Value{}}
	for _, it := range cw.Items {
		v, _ := cw.Claims.Truth(it)
		truthRes.Values[it] = v
	}
	det := CopyDetector{}
	copies := det.Detect(cw.Claims, truthRes, cw.TrueAccuracy)
	if len(copies) == 0 {
		t.Fatal("no pairs scored")
	}
	// True copier pairs must carry high posterior; a sample of
	// independent pairs must carry lower.
	var copierSum, copierN, indepSum, indepN float64
	truePairs := map[SourcePair]bool{}
	for cop, target := range cw.CopiesFrom {
		truePairs[NewSourcePair(cop, target)] = true
	}
	for pair, p := range copies {
		if truePairs[pair] {
			copierSum += p
			copierN++
		} else if pair.A[:3] == "src" && pair.B[:3] == "src" {
			indepSum += p
			indepN++
		}
	}
	if copierN == 0 || indepN == 0 {
		t.Fatalf("pair coverage: %f copier, %f indep", copierN, indepN)
	}
	if copierSum/copierN < 0.8 {
		t.Errorf("mean copier posterior = %f, want >= 0.8", copierSum/copierN)
	}
	if indepSum/indepN > 0.4 {
		t.Errorf("mean independent posterior = %f, want <= 0.4", indepSum/indepN)
	}
}

func TestACCUCOPYBeatsACCUUnderCopying(t *testing.T) {
	sumVote, sumAccu, sumCopy := 0.0, 0.0, 0.0
	seeds := []int64{11, 17, 23}
	for _, seed := range seeds {
		cw := copierWorld(seed, 8)
		vote := mustAcc(t, MajorityVote{}, cw)
		accu := mustAcc(t, ACCU{}, cw)
		accucopy := mustAcc(t, ACCUCOPY{}, cw)
		sumVote += vote
		sumAccu += accu
		sumCopy += accucopy
	}
	n := float64(len(seeds))
	if sumCopy/n < sumVote/n {
		t.Errorf("accucopy (%f) must beat vote (%f) under heavy copying", sumCopy/n, sumVote/n)
	}
	if sumCopy/n+0.02 < sumAccu/n {
		t.Errorf("accucopy (%f) must not trail accu (%f)", sumCopy/n, sumAccu/n)
	}
}

func TestNoCopiersACCUCOPYMatchesACCU(t *testing.T) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: 31, NumItems: 200, NumSources: 10,
	})
	accu := mustAcc(t, ACCU{}, cw)
	accucopy := mustAcc(t, ACCUCOPY{}, cw)
	if diff := accu - accucopy; diff > 0.05 || diff < -0.05 {
		t.Errorf("without copiers accu=%f and accucopy=%f should agree", accu, accucopy)
	}
}

func mustAcc(t *testing.T, f Fuser, cw *datagen.ClaimWorld) float64 {
	t.Helper()
	res, err := f.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	acc, n := eval.FusionAccuracy(res.Values, cw.Claims)
	if n == 0 {
		t.Fatal("nothing evaluated")
	}
	return acc
}

func TestCopyProbabilitiesAPI(t *testing.T) {
	cw := copierWorld(41, 3)
	res, copies, err := (ACCUCOPY{}).CopyProbabilities(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 || len(copies) == 0 {
		t.Fatal("empty outputs")
	}
	for pair, p := range copies {
		if p < 0 || p > 1 {
			t.Errorf("pair %v posterior %f out of range", pair, p)
		}
	}
}

func TestSourcePairCanonical(t *testing.T) {
	if NewSourcePair("b", "a") != NewSourcePair("a", "b") {
		t.Error("source pairs must be unordered")
	}
}

func TestCopyDetectorMinOverlap(t *testing.T) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: 51, NumItems: 3, NumSources: 4, // tiny overlap
	})
	base, err := ACCU{}.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	copies := CopyDetector{MinOverlap: 10}.Detect(cw.Claims, base, base.SourceAccuracy)
	if len(copies) != 0 {
		t.Errorf("pairs below overlap floor must be skipped, got %d", len(copies))
	}
}
