package fusion

import (
	"fmt"
	"repro/internal/eval"
	"testing"
)

func TestCopyDebug(t *testing.T) {
	cw := copierWorld(11, 4)
	base, _ := ACCU{}.Fuse(cw.Claims)
	acc, _ := eval.FusionAccuracy(base.Values, cw.Claims)
	fmt.Println("base accu accuracy:", acc)
	for s, a := range base.SourceAccuracy {
		fmt.Printf("%s est=%.3f true=%.3f\n", s, a, cw.TrueAccuracy[s])
	}
	fmt.Println("copiesFrom:", cw.CopiesFrom)
	copies := CopyDetector{}.Detect(cw.Claims, base, base.SourceAccuracy)
	for p, v := range copies {
		fmt.Printf("%s-%s: %.3f\n", p.A, p.B, v)
	}
	// also goodbad scenario
	cs, _ := goodBadClaims(t)
	for _, f := range []Fuser{MajorityVote{}, ACCU{}, ACCUCOPY{}} {
		r, _ := f.Fuse(cs)
		a, _ := eval.FusionAccuracy(r.Values, cs)
		fmt.Println(f.Name(), "goodbad acc:", a)
	}
}
