package fusion

import (
	"math"
	"sort"

	"repro/internal/data"
)

// TruthFinder implements Yin, Han & Yu's iterative trust model: a
// source's trustworthiness is the average confidence of the values it
// claims; a value's confidence aggregates the trust of its claimants
// through a log-odds combination. Iterate until source trust
// stabilises.
type TruthFinder struct {
	// Gamma dampens the confidence logistic. Default 0.3.
	Gamma float64
	// InitialTrust of every source. Default 0.8.
	InitialTrust float64
	// MaxIterations (default 20) and Epsilon (default 1e-4) bound the
	// fixpoint loop.
	MaxIterations int
	Epsilon       float64
}

// Name implements Fuser.
func (TruthFinder) Name() string { return "truthfinder" }

// Fuse implements Fuser.
func (tf TruthFinder) Fuse(cs *data.ClaimSet) (*Result, error) {
	gamma := tf.Gamma
	if gamma <= 0 {
		gamma = 0.3
	}
	trust0 := tf.InitialTrust
	if trust0 <= 0 || trust0 >= 1 {
		trust0 = 0.8
	}
	maxIter := tf.MaxIterations
	if maxIter <= 0 {
		maxIter = 20
	}
	eps := tf.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}

	trust := map[string]float64{}
	for _, s := range cs.Sources() {
		trust[s] = trust0
	}
	items := cs.Items()
	tallies := make([]*voteCounts, len(items))
	for i, it := range items {
		tallies[i] = tally(cs.ItemClaims(it))
	}

	const maxTrust = 0.999999
	conf := map[data.Item]map[string]float64{} // item → value key → confidence
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// Value confidences from source trust.
		for i, it := range items {
			vc := tallies[i]
			m := map[string]float64{}
			for _, k := range vc.keyOrder {
				var sigma float64
				for _, s := range vc.sources[k] {
					t := trust[s]
					if t > maxTrust {
						t = maxTrust
					}
					sigma += -math.Log(1 - t) // tau(s)
				}
				m[k] = 1 / (1 + math.Exp(-gamma*sigma))
			}
			conf[it] = m
		}
		// Source trust from value confidences.
		maxDelta := 0.0
		for _, s := range cs.Sources() {
			claims := cs.SourceClaims(s)
			if len(claims) == 0 {
				continue
			}
			var sum float64
			for _, c := range claims {
				sum += conf[c.Item][c.Value.Key()]
			}
			next := sum / float64(len(claims))
			if d := math.Abs(next - trust[s]); d > maxDelta {
				maxDelta = d
			}
			trust[s] = next
		}
		if maxDelta < eps {
			break
		}
	}

	res := &Result{
		Values:         map[data.Item]data.Value{},
		Confidence:     map[data.Item]float64{},
		SourceAccuracy: trust,
		Iterations:     iters,
	}
	for i, it := range items {
		vc := tallies[i]
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		bestKey, best := "", -1.0
		for _, k := range keys {
			if c := conf[it][k]; c > best {
				best, bestKey = c, k
			}
		}
		if bestKey != "" {
			res.Values[it] = vc.values[bestKey]
			res.Confidence[it] = best
		}
	}
	return res, nil
}
