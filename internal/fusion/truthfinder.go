package fusion

import (
	"context"
	"math"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// TruthFinder implements Yin, Han & Yu's iterative trust model: a
// source's trustworthiness is the average confidence of the values it
// claims; a value's confidence aggregates the trust of its claimants
// through a log-odds combination. Iterate until source trust
// stabilises. Runs on the interned claimIndex with the same
// parallel-E/parallel-M layout as ACCU.
type TruthFinder struct {
	// Gamma dampens the confidence logistic. Default 0.3.
	Gamma float64
	// InitialTrust of every source. Default 0.8.
	InitialTrust float64
	// MaxIterations (default 20) and Epsilon (default 1e-4) bound the
	// fixpoint loop.
	MaxIterations int
	Epsilon       float64
	// Workers bounds the worker pool (0 = NumCPU); output is identical
	// for any value.
	Workers int
	// Obs records "fusion." metrics when set.
	Obs *obs.Registry
	// Ctx cancels the fixpoint loop at chunk boundaries; nil never
	// cancels.
	Ctx context.Context
}

// Name implements Fuser.
func (TruthFinder) Name() string { return "truthfinder" }

// Fuse implements Fuser.
func (tf TruthFinder) Fuse(cs *data.ClaimSet) (*Result, error) {
	gamma := tf.Gamma
	if gamma <= 0 {
		gamma = 0.3
	}
	trust0 := tf.InitialTrust
	if trust0 <= 0 || trust0 >= 1 {
		trust0 = 0.8
	}
	maxIter := tf.MaxIterations
	if maxIter <= 0 {
		maxIter = 20
	}
	eps := tf.Epsilon
	if eps <= 0 {
		eps = 1e-4
	}

	ci, err := buildIndex(cs, parallel.Config{Workers: tf.Workers, Obs: tf.Obs, Ctx: tf.Ctx})
	if err != nil {
		return nil, err
	}
	cfg := ci.cfg
	reg := obs.OrDefault(tf.Obs)

	trust := make([]float64, len(ci.sources))
	for s := range trust {
		trust[s] = trust0
	}

	const maxTrust = 0.999999
	conf := make([]float64, ci.numValues())
	delta := make([]float64, len(ci.sources))
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// Value confidences from source trust: each value sums its
		// claimants' tau in claim insertion order.
		if err := parallel.ForEach(cfg, ci.numValues(), func(v int) {
			var sigma float64
			for e := ci.supOff[v]; e < ci.supOff[v+1]; e++ {
				t := trust[ci.supSrc[e]]
				if t > maxTrust {
					t = maxTrust
				}
				sigma += -math.Log(1 - t) // tau(s)
			}
			conf[v] = 1 / (1 + math.Exp(-gamma*sigma))
		}); err != nil {
			return nil, err
		}
		// Source trust from value confidences.
		if err := parallel.ForEach(cfg, len(ci.sources), func(s int) {
			lo, hi := ci.srcOff[s], ci.srcOff[s+1]
			if lo == hi {
				delta[s] = 0
				return
			}
			var sum float64
			for c := lo; c < hi; c++ {
				sum += conf[ci.srcVal[c]]
			}
			next := sum / float64(hi-lo)
			delta[s] = math.Abs(next - trust[s])
			trust[s] = next
		}); err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for _, d := range delta {
			if d > maxDelta {
				maxDelta = d
			}
		}
		reg.Dist("fusion.em_delta").Observe(maxDelta)
		reg.Gauge("fusion.em_final_delta").Set(maxDelta)
		if maxDelta < eps {
			break
		}
	}
	reg.Counter("fusion.em_iterations").Add(int64(iters))
	reg.Counter("fusion.em_runs").Inc()
	return ci.buildResult(conf, ci.accuracyMap(trust), iters), nil
}
