package fusion

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/data"
)

// nearTieClaims builds a claim set engineered to expose accumulation-
// order nondeterminism: every item carries many distinct values with
// nearly balanced support, so the softmax normalizer z sums many
// distinct exp terms and near-tie posteriors feed back through the EM
// accuracy estimates. Any map-order accumulation shows up as run-to-run
// ULP drift in posteriors (and, for the closest ties, flipped values).
func nearTieClaims() *data.ClaimSet {
	cs := data.NewClaimSet()
	const nItems, nSources = 24, 10
	for i := 0; i < nItems; i++ {
		it := data.Item{Entity: fmt.Sprintf("e%02d", i), Attr: "v"}
		for s := 0; s < nSources; s++ {
			// Spread the sources over ~6 values per item with slight,
			// item-dependent asymmetries so no two values tie exactly.
			v := (s + i*3) % 6
			if (i+s)%7 == 0 {
				v = (v + 1) % 6
			}
			cs.Add(data.Claim{
				Item:   it,
				Source: fmt.Sprintf("s%02d", s),
				Value:  data.String(fmt.Sprintf("val-%d", v)),
			})
		}
	}
	return cs
}

// sameBits reports whether two results are bit-identical: same fused
// values, bit-equal confidences and source accuracies, same iteration
// count.
func sameBits(a, b *Result) (string, bool) {
	if a.Iterations != b.Iterations {
		return fmt.Sprintf("iterations %d vs %d", a.Iterations, b.Iterations), false
	}
	if len(a.Values) != len(b.Values) {
		return fmt.Sprintf("%d vs %d values", len(a.Values), len(b.Values)), false
	}
	for it, v := range a.Values {
		w, ok := b.Values[it]
		if !ok || v.Key() != w.Key() {
			return fmt.Sprintf("value at %v: %q vs %q", it, v.Key(), w.Key()), false
		}
		if math.Float64bits(a.Confidence[it]) != math.Float64bits(b.Confidence[it]) {
			return fmt.Sprintf("confidence bits at %v: %x vs %x", it,
				math.Float64bits(a.Confidence[it]), math.Float64bits(b.Confidence[it])), false
		}
	}
	if len(a.SourceAccuracy) != len(b.SourceAccuracy) {
		return "source accuracy cardinality", false
	}
	for s, acc := range a.SourceAccuracy {
		if math.Float64bits(acc) != math.Float64bits(b.SourceAccuracy[s]) {
			return fmt.Sprintf("accuracy bits for %s: %x vs %x", s,
				math.Float64bits(acc), math.Float64bits(b.SourceAccuracy[s])), false
		}
	}
	return "", true
}

// TestACCURunToRunBitDeterminism is the regression test for the softmax
// map-order bug: the normalizer z must be accumulated in sorted key
// order, so repeated runs over the same claims produce bit-identical
// posteriors. Against the unfixed code (z summed in Go map iteration
// order) this fails within a handful of the 20 repeats.
func TestACCURunToRunBitDeterminism(t *testing.T) {
	cs := nearTieClaims()
	for _, fuser := range []Fuser{ACCU{}, ACCU{Popularity: true}} {
		base, err := fuser.Fuse(cs)
		if err != nil {
			t.Fatal(err)
		}
		for run := 1; run <= 20; run++ {
			res, err := fuser.Fuse(cs)
			if err != nil {
				t.Fatal(err)
			}
			if diff, ok := sameBits(base, res); !ok {
				t.Fatalf("%s: run %d diverged from run 0: %s", fuser.Name(), run, diff)
			}
		}
	}
}
