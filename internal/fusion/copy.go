package fusion

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
)

// CopyDetector estimates, for every pair of overlapping sources, the
// posterior probability that one copies the other, following the
// Bayesian analysis of Dong, Berti-Équille & Srivastava (VLDB'09): the
// tell-tale signal is agreement on *false* values — independent sources
// agree on the truth often but on any particular false value rarely.
type CopyDetector struct {
	// Alpha is the prior probability of copying. Default 0.1.
	Alpha float64
	// C is the per-item copy rate of a copier. Default 0.8.
	C float64
	// N is the number of false values per item. Default 10.
	N float64
	// MinOverlap: pairs sharing fewer items are not scored. Default 5.
	MinOverlap int
	// IgnoreTruth collapses the agree-on-true / agree-on-false
	// distinction into plain agreement. Used for the bootstrap pass:
	// when the current truth estimate may itself be corrupted by a
	// colluding majority, truth-conditioned counting mislabels honest
	// agreement as false-value collusion, whereas pure
	// agreement/disagreement still separates perfect duplicators (no
	// disagreements at all) from independent sources (independent
	// mistakes force disagreements).
	IgnoreTruth bool
	// Workers bounds the pair-scoring worker pool (0 = NumCPU); output
	// is identical for any value.
	Workers int
}

func (cd CopyDetector) params() (alpha, c, n float64, minOv int) {
	alpha = cd.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.1
	}
	c = cd.C
	if c <= 0 || c >= 1 {
		c = 0.8
	}
	n = cd.N
	if n <= 1 {
		n = 10
	}
	minOv = cd.MinOverlap
	if minOv <= 0 {
		minOv = 5
	}
	return
}

// SourcePair is an unordered pair of source IDs (A < B).
type SourcePair struct{ A, B string }

// NewSourcePair canonicalises order.
func NewSourcePair(a, b string) SourcePair {
	if b < a {
		a, b = b, a
	}
	return SourcePair{A: a, B: b}
}

// Truth sentinels for the interned detection pass.
const (
	noTruth        = ^uint32(0)     // no ground estimate for the item
	truthUnclaimed = ^uint32(0) - 1 // estimate exists but matches no claimed value
)

// Detect returns the posterior copy probability per overlapping source
// pair, given the current fused truth estimate and source accuracies.
// The O(S²·overlap) pair loop runs on parallel.ForEachPair over the
// interned index; per-pair agreement counts are integers, so the
// posteriors are deterministic for any worker count.
func (cd CopyDetector) Detect(cs *data.ClaimSet, truth *Result, accuracy map[string]float64) map[SourcePair]float64 {
	ci := parallel.Must(buildIndex(cs, parallel.Config{Workers: cd.Workers}))
	return parallel.Must(cd.detectOn(ci, truth, accuracy))
}

// srcClaim is one deduplicated claim of a source: the item rank and the
// global value index claimed.
type srcClaim struct{ item, val uint32 }

func (cd CopyDetector) detectOn(ci *claimIndex, truth *Result, accuracy map[string]float64) (map[SourcePair]float64, error) {
	alpha, c, n, minOv := cd.params()
	cfg := ci.cfg
	nSrc := len(ci.sources)

	// Interned truth per item. A map-based claim lookup kept only the
	// last claim a source made about an item; the sorted lists below
	// preserve that by keeping the last entry of each item run.
	truthIdx := make([]uint32, len(ci.items))
	if err := parallel.ForEach(cfg, len(ci.items), func(i int) {
		truthIdx[i] = noTruth
		if cd.IgnoreTruth || truth == nil {
			return
		}
		tv, ok := truth.Values[ci.items[i]]
		if !ok {
			return
		}
		if v, found := ci.findVal(uint32(i), tv.Key()); found {
			truthIdx[i] = v
		} else {
			truthIdx[i] = truthUnclaimed
		}
	}); err != nil {
		return nil, err
	}

	// Per-source claim lists sorted by item, last claim wins.
	lists := make([][]srcClaim, nSrc)
	if err := parallel.ForEach(cfg, nSrc, func(s int) {
		lo, hi := ci.srcOff[s], ci.srcOff[s+1]
		lst := make([]srcClaim, 0, hi-lo)
		for c := lo; c < hi; c++ {
			v := ci.srcVal[c]
			lst = append(lst, srcClaim{item: ci.valItem[v], val: v})
		}
		sort.SliceStable(lst, func(a, b int) bool { return lst[a].item < lst[b].item })
		ded := lst[:0]
		for i, sc := range lst {
			if i+1 < len(lst) && lst[i+1].item == sc.item {
				continue
			}
			ded = append(ded, sc)
		}
		lists[s] = ded
	}); err != nil {
		return nil, err
	}

	// Score every pair; each writes only its own slot.
	nPairs := nSrc * (nSrc - 1) / 2
	post := make([]float64, nPairs)
	scored := make([]bool, nPairs)
	if err := parallel.ForEachPair(cfg, nSrc, func(k, i, j int) {
		kt, kf, kd := 0, 0, 0
		li, lj := lists[i], lists[j]
		for a, b := 0, 0; a < len(li) && b < len(lj); {
			switch {
			case li[a].item < lj[b].item:
				a++
			case li[a].item > lj[b].item:
				b++
			default:
				v1, v2 := li[a].val, lj[b].val
				switch {
				case v1 != v2:
					kd++
				case truthIdx[li[a].item] == noTruth:
					kt++ // truth-free: count as generic agreement
				case v1 == truthIdx[li[a].item]:
					kt++
				default:
					kf++
				}
				a++
				b++
			}
		}
		if kt+kf+kd < minOv {
			return
		}
		a1 := defaultAcc(accuracy, ci.sources[i])
		a2 := defaultAcc(accuracy, ci.sources[j])
		// Independent-agreement probabilities.
		pt := a1 * a2
		pf := (1 - a1) * (1 - a2) / n
		if cd.IgnoreTruth {
			pt += pf // generic agreement combines both channels
		}
		pd := 1 - pt - pf
		if pd < 1e-9 {
			pd = 1e-9
		}
		// Copier-agreement probabilities (copy with rate c, else
		// behave independently).
		ct := c + (1-c)*pt
		cf := c + (1-c)*pf
		cdiff := (1 - c) * pd

		logIndep := float64(kt)*math.Log(pt) + float64(kf)*math.Log(pf) + float64(kd)*math.Log(pd)
		logCopy := float64(kt)*math.Log(ct) + float64(kf)*math.Log(cf) + float64(kd)*math.Log(cdiff)
		// Posterior via log-sum-exp.
		lc := math.Log(alpha) + logCopy
		li2 := math.Log(1-alpha) + logIndep
		m := math.Max(lc, li2)
		post[k] = math.Exp(lc-m) / (math.Exp(lc-m) + math.Exp(li2-m))
		scored[k] = true
	}); err != nil {
		return nil, err
	}

	out := map[SourcePair]float64{}
	k := 0
	for i := 0; i < nSrc; i++ {
		for j := i + 1; j < nSrc; j++ {
			if scored[k] {
				out[NewSourcePair(ci.sources[i], ci.sources[j])] = post[k]
			}
			k++
		}
	}
	return out, nil
}

func defaultAcc(accuracy map[string]float64, s string) float64 {
	if a, ok := accuracy[s]; ok {
		return clampF(a, 0.05, 0.95)
	}
	return 0.7
}

// ACCUCOPY interleaves ACCU fusion with copy detection: fuse, detect
// copying from agreement-on-false-values, down-weight dependent votes,
// and re-fuse — the full AccuCopy loop. The claim set is interned once
// and the same index backs every fuse and detect pass.
type ACCUCOPY struct {
	Accu     ACCU
	Detector CopyDetector
	// OuterIterations of the fuse→detect loop. Default 3.
	OuterIterations int
	// DisableBootstrap skips the truth-free uniform-prior first
	// detection pass and detects against converged ACCU estimates from
	// the start — the E17 ablation arm. Colluding majorities then evade
	// detection (their agreement is rated unsurprising by the corrupted
	// accuracy estimates).
	DisableBootstrap bool
}

// Name implements Fuser.
func (ACCUCOPY) Name() string { return "accucopy" }

// Fuse implements Fuser.
func (ac ACCUCOPY) Fuse(cs *data.ClaimSet) (*Result, error) {
	ci, err := buildIndex(cs, parallel.Config{Workers: ac.Accu.Workers, Obs: ac.Accu.Obs, Ctx: ac.Accu.Ctx})
	if err != nil {
		return nil, err
	}
	res, _, err := ac.fuse(ci)
	return res, err
}

func (ac ACCUCOPY) fuse(ci *claimIndex) (*Result, map[SourcePair]float64, error) {
	outer := ac.OuterIterations
	if outer <= 0 {
		outer = 3
	}
	_, c, _, _ := ac.Detector.params()

	accu := ac.Accu
	res, err := accu.fuseOn(ci, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("fusion: accucopy initial pass: %w", err)
	}
	var copies map[SourcePair]float64
	for iter := 0; iter < outer; iter++ {
		// The first detection pass uses uniform prior accuracies: when
		// a colluding bloc dominates the consensus, accuracy estimates
		// calibrated against that consensus rate the bloc as
		// near-perfect and its total agreement stops looking
		// suspicious. Uncalibrated priors keep the agreement signal.
		accIn := res.SourceAccuracy
		det := ac.Detector
		if iter == 0 && !ac.DisableBootstrap {
			_, acc0, _, _ := accu.params()
			accIn = map[string]float64{}
			for _, s := range ci.sources {
				accIn[s] = acc0
			}
			det.IgnoreTruth = true
		}
		copies, err = det.detectOn(ci, res, accIn)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion: accucopy detect pass %d: %w", iter+1, err)
		}
		discounts, err := buildDiscounts(ci, copies, res.SourceAccuracy, c)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion: accucopy discount pass %d: %w", iter+1, err)
		}
		withDiscount := accu
		withDiscount.copyDiscount = func(it data.Item, valueKey, source string) float64 {
			if d, ok := discounts[discountKey{it, valueKey, source}]; ok {
				return d
			}
			return 1
		}
		res, err = withDiscount.fuseOn(ci, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion: accucopy pass %d: %w", iter+1, err)
		}
	}
	res.Iterations = outer
	return res, copies, nil
}

// CopyProbabilities runs the full loop and returns the final pairwise
// copy posteriors alongside the fused result.
func (ac ACCUCOPY) CopyProbabilities(cs *data.ClaimSet) (*Result, map[SourcePair]float64, error) {
	ci, err := buildIndex(cs, parallel.Config{Workers: ac.Accu.Workers, Obs: ac.Accu.Obs, Ctx: ac.Accu.Ctx})
	if err != nil {
		return nil, nil, err
	}
	res, _, err := ac.fuse(ci)
	if err != nil {
		return nil, nil, err
	}
	copies, err := ac.Detector.detectOn(ci, res, res.SourceAccuracy)
	if err != nil {
		return nil, nil, err
	}
	return res, copies, nil
}

type discountKey struct {
	it       data.Item
	valueKey string
	source   string
}

// buildDiscounts computes, per (item, value, source), the probability
// that the source's claim is independent: among the claimants of the
// same value, ordered by descending accuracy (the presumed copy
// direction), each source's vote is discounted by the probability that
// it copied from any preceding claimant. Per-item entries compute in
// parallel; the map assembles sequentially in item order.
func buildDiscounts(ci *claimIndex, copies map[SourcePair]float64,
	accuracy map[string]float64, copyRate float64) (map[discountKey]float64, error) {
	type entry struct {
		key discountKey
		d   float64
	}
	perItem := make([][]entry, len(ci.items))
	if err := parallel.ForEach(ci.cfg, len(ci.items), func(i int) {
		var ents []entry
		it := ci.items[i]
		for v := ci.valOff[i]; v < ci.valOff[i+1]; v++ {
			k := ci.valKeys[v]
			claimants := make([]string, 0, ci.supOff[v+1]-ci.supOff[v])
			for e := ci.supOff[v]; e < ci.supOff[v+1]; e++ {
				claimants = append(claimants, ci.sources[ci.supSrc[e]])
			}
			sort.Slice(claimants, func(a, b int) bool {
				aa, ab := defaultAcc(accuracy, claimants[a]), defaultAcc(accuracy, claimants[b])
				if aa != ab {
					return aa > ab
				}
				return claimants[a] < claimants[b]
			})
			for idx, s := range claimants {
				indep := 1.0
				for j := 0; j < idx; j++ {
					p := copies[NewSourcePair(s, claimants[j])]
					indep *= 1 - copyRate*p
				}
				ents = append(ents, entry{key: discountKey{it, k, s}, d: indep})
			}
		}
		perItem[i] = ents
	}); err != nil {
		return nil, err
	}
	out := map[discountKey]float64{}
	for _, ents := range perItem {
		for _, e := range ents {
			out[e.key] = e.d
		}
	}
	return out, nil
}
