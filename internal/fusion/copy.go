package fusion

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// CopyDetector estimates, for every pair of overlapping sources, the
// posterior probability that one copies the other, following the
// Bayesian analysis of Dong, Berti-Équille & Srivastava (VLDB'09): the
// tell-tale signal is agreement on *false* values — independent sources
// agree on the truth often but on any particular false value rarely.
type CopyDetector struct {
	// Alpha is the prior probability of copying. Default 0.1.
	Alpha float64
	// C is the per-item copy rate of a copier. Default 0.8.
	C float64
	// N is the number of false values per item. Default 10.
	N float64
	// MinOverlap: pairs sharing fewer items are not scored. Default 5.
	MinOverlap int
	// IgnoreTruth collapses the agree-on-true / agree-on-false
	// distinction into plain agreement. Used for the bootstrap pass:
	// when the current truth estimate may itself be corrupted by a
	// colluding majority, truth-conditioned counting mislabels honest
	// agreement as false-value collusion, whereas pure
	// agreement/disagreement still separates perfect duplicators (no
	// disagreements at all) from independent sources (independent
	// mistakes force disagreements).
	IgnoreTruth bool
}

func (cd CopyDetector) params() (alpha, c, n float64, minOv int) {
	alpha = cd.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.1
	}
	c = cd.C
	if c <= 0 || c >= 1 {
		c = 0.8
	}
	n = cd.N
	if n <= 1 {
		n = 10
	}
	minOv = cd.MinOverlap
	if minOv <= 0 {
		minOv = 5
	}
	return
}

// SourcePair is an unordered pair of source IDs (A < B).
type SourcePair struct{ A, B string }

// NewSourcePair canonicalises order.
func NewSourcePair(a, b string) SourcePair {
	if b < a {
		a, b = b, a
	}
	return SourcePair{A: a, B: b}
}

// Detect returns the posterior copy probability per overlapping source
// pair, given the current fused truth estimate and source accuracies.
func (cd CopyDetector) Detect(cs *data.ClaimSet, truth *Result, accuracy map[string]float64) map[SourcePair]float64 {
	alpha, c, n, minOv := cd.params()

	// Index claims: source → item → value key.
	claimOf := map[string]map[data.Item]string{}
	for _, s := range cs.Sources() {
		m := map[data.Item]string{}
		for _, cl := range cs.SourceClaims(s) {
			m[cl.Item] = cl.Value.Key()
		}
		claimOf[s] = m
	}
	sources := cs.Sources()

	out := map[SourcePair]float64{}
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			s1, s2 := sources[i], sources[j]
			kt, kf, kd := 0, 0, 0
			for it, v1 := range claimOf[s1] {
				v2, ok := claimOf[s2][it]
				if !ok {
					continue
				}
				var truthVal data.Value
				hasTruth := false
				if !cd.IgnoreTruth && truth != nil {
					truthVal, hasTruth = truth.Values[it]
				}
				switch {
				case v1 != v2:
					kd++
				case hasTruth && v1 == truthVal.Key():
					kt++
				case hasTruth:
					kf++
				default:
					kt++ // truth-free: count as generic agreement
				}
			}
			if kt+kf+kd < minOv {
				continue
			}
			a1 := defaultAcc(accuracy, s1)
			a2 := defaultAcc(accuracy, s2)
			// Independent-agreement probabilities.
			pt := a1 * a2
			pf := (1 - a1) * (1 - a2) / n
			if cd.IgnoreTruth {
				pt += pf // generic agreement combines both channels
			}
			pd := 1 - pt - pf
			if pd < 1e-9 {
				pd = 1e-9
			}
			// Copier-agreement probabilities (copy with rate c, else
			// behave independently).
			ct := c + (1-c)*pt
			cf := c + (1-c)*pf
			cdiff := (1 - c) * pd

			logIndep := float64(kt)*math.Log(pt) + float64(kf)*math.Log(pf) + float64(kd)*math.Log(pd)
			logCopy := float64(kt)*math.Log(ct) + float64(kf)*math.Log(cf) + float64(kd)*math.Log(cdiff)
			// Posterior via log-sum-exp.
			lc := math.Log(alpha) + logCopy
			li := math.Log(1-alpha) + logIndep
			m := math.Max(lc, li)
			p := math.Exp(lc-m) / (math.Exp(lc-m) + math.Exp(li-m))
			out[NewSourcePair(s1, s2)] = p
		}
	}
	return out
}

func defaultAcc(accuracy map[string]float64, s string) float64 {
	if a, ok := accuracy[s]; ok {
		return clampF(a, 0.05, 0.95)
	}
	return 0.7
}

// ACCUCOPY interleaves ACCU fusion with copy detection: fuse, detect
// copying from agreement-on-false-values, down-weight dependent votes,
// and re-fuse — the full AccuCopy loop.
type ACCUCOPY struct {
	Accu     ACCU
	Detector CopyDetector
	// OuterIterations of the fuse→detect loop. Default 3.
	OuterIterations int
	// DisableBootstrap skips the truth-free uniform-prior first
	// detection pass and detects against converged ACCU estimates from
	// the start — the E17 ablation arm. Colluding majorities then evade
	// detection (their agreement is rated unsurprising by the corrupted
	// accuracy estimates).
	DisableBootstrap bool
}

// Name implements Fuser.
func (ACCUCOPY) Name() string { return "accucopy" }

// Fuse implements Fuser.
func (ac ACCUCOPY) Fuse(cs *data.ClaimSet) (*Result, error) {
	outer := ac.OuterIterations
	if outer <= 0 {
		outer = 3
	}
	_, c, _, _ := ac.Detector.params()

	accu := ac.Accu
	res, err := accu.Fuse(cs)
	if err != nil {
		return nil, fmt.Errorf("fusion: accucopy initial pass: %w", err)
	}
	var copies map[SourcePair]float64
	for iter := 0; iter < outer; iter++ {
		// The first detection pass uses uniform prior accuracies: when
		// a colluding bloc dominates the consensus, accuracy estimates
		// calibrated against that consensus rate the bloc as
		// near-perfect and its total agreement stops looking
		// suspicious. Uncalibrated priors keep the agreement signal.
		accIn := res.SourceAccuracy
		det := ac.Detector
		if iter == 0 && !ac.DisableBootstrap {
			_, acc0, _, _ := accu.params()
			accIn = map[string]float64{}
			for _, s := range cs.Sources() {
				accIn[s] = acc0
			}
			det.IgnoreTruth = true
		}
		copies = det.Detect(cs, res, accIn)
		discounts := buildDiscounts(cs, copies, res.SourceAccuracy, c)
		withDiscount := accu
		withDiscount.copyDiscount = func(it data.Item, valueKey, source string) float64 {
			if d, ok := discounts[discountKey{it, valueKey, source}]; ok {
				return d
			}
			return 1
		}
		res, err = withDiscount.Fuse(cs)
		if err != nil {
			return nil, fmt.Errorf("fusion: accucopy pass %d: %w", iter+1, err)
		}
	}
	res.Iterations = outer
	return res, nil
}

// CopyProbabilities runs the full loop and returns the final pairwise
// copy posteriors alongside the fused result.
func (ac ACCUCOPY) CopyProbabilities(cs *data.ClaimSet) (*Result, map[SourcePair]float64, error) {
	res, err := ac.Fuse(cs)
	if err != nil {
		return nil, nil, err
	}
	copies := ac.Detector.Detect(cs, res, res.SourceAccuracy)
	return res, copies, nil
}

type discountKey struct {
	it       data.Item
	valueKey string
	source   string
}

// buildDiscounts computes, per (item, value, source), the probability
// that the source's claim is independent: among the claimants of the
// same value, ordered by descending accuracy (the presumed copy
// direction), each source's vote is discounted by the probability that
// it copied from any preceding claimant.
func buildDiscounts(cs *data.ClaimSet, copies map[SourcePair]float64,
	accuracy map[string]float64, copyRate float64) map[discountKey]float64 {
	out := map[discountKey]float64{}
	for _, it := range cs.Items() {
		vc := tally(cs.ItemClaims(it))
		for _, k := range vc.keyOrder {
			claimants := append([]string(nil), vc.sources[k]...)
			sort.Slice(claimants, func(i, j int) bool {
				ai, aj := defaultAcc(accuracy, claimants[i]), defaultAcc(accuracy, claimants[j])
				if ai != aj {
					return ai > aj
				}
				return claimants[i] < claimants[j]
			})
			for i, s := range claimants {
				indep := 1.0
				for j := 0; j < i; j++ {
					p := copies[NewSourcePair(s, claimants[j])]
					indep *= 1 - copyRate*p
				}
				out[discountKey{it, k, s}] = indep
			}
		}
	}
	return out
}
