package fusion

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
)

func onlineWorld(seed int64) *datagen.ClaimWorld {
	return datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 200, NumValues: 5,
		NumSources: 14, MinAccuracy: 0.4, MaxAccuracy: 0.95,
	})
}

func TestOnlineMatchesOfflineAccuracy(t *testing.T) {
	cw := onlineWorld(3)
	on := Online{Accuracy: cw.TrueAccuracy}
	or, err := on.FuseOnline(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	onAcc, _ := eval.FusionAccuracy(or.Values, cw.Claims)
	// Offline reference: weighted vote with the same weights over all
	// sources.
	off, err := WeightedVote{Weights: weightsFor(on, cw.Claims.Sources())}.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	offAcc, _ := eval.FusionAccuracy(off.Values, cw.Claims)
	if onAcc < offAcc-0.02 {
		t.Errorf("online accuracy %f must match offline %f", onAcc, offAcc)
	}
}

func TestOnlineProbesFewerSources(t *testing.T) {
	cw := onlineWorld(4)
	on := Online{Accuracy: cw.TrueAccuracy}
	or, err := on.FuseOnline(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	total := len(cw.Claims.Sources())
	var sum float64
	n := 0
	for _, probes := range or.Probes {
		sum += float64(probes)
		n++
		if probes > total {
			t.Fatalf("probes %d exceeds source count %d", probes, total)
		}
	}
	if n == 0 {
		t.Fatal("no items finalised")
	}
	mean := sum / float64(n)
	if mean >= float64(total)*0.9 {
		t.Errorf("mean probes %.2f of %d sources; early termination never fired", mean, total)
	}
}

func TestOnlineAnytimeCurveImproves(t *testing.T) {
	cw := onlineWorld(5)
	on := Online{Accuracy: cw.TrueAccuracy}
	accAt := func(k int) float64 {
		res, err := on.FuseWithPrefix(cw.Claims, k)
		if err != nil {
			t.Fatal(err)
		}
		acc, _ := eval.FusionAccuracy(res.Values, cw.Claims)
		return acc
	}
	a2, a6, aAll := accAt(2), accAt(6), accAt(14)
	if a6 < a2-0.05 {
		t.Errorf("anytime curve should improve: k=2 %f, k=6 %f", a2, a6)
	}
	if aAll < 0.85 {
		t.Errorf("full-prefix accuracy = %f", aAll)
	}
}

func TestOnlineEmptyAndName(t *testing.T) {
	on := Online{}
	res, err := on.Fuse(data.NewClaimSet())
	if err != nil || len(res.Values) != 0 {
		t.Errorf("empty claims: %v %v", res.Values, err)
	}
	if on.Name() != "online" {
		t.Error("name")
	}
}

// TestOnlineNegativeWeightTermination is the regression for the
// unsound early-termination bound: a clamped low-accuracy source has a
// *negative* vote weight (N=10, a=0.05 → ln(0.526) < 0), and the old
// signed suffix sum let the loop finalise before consulting it — on a
// value that source's own claim overturns.
func TestOnlineNegativeWeightTermination(t *testing.T) {
	cs := data.NewClaimSet()
	it := data.Item{Entity: "e", Attr: "a"}
	cs.Add(data.Claim{Item: it, Source: "s1", Value: data.String("A")})
	cs.Add(data.Claim{Item: it, Source: "s2", Value: data.String("B")})
	cs.Add(data.Claim{Item: it, Source: "s3", Value: data.String("A")})
	on := Online{Accuracy: map[string]float64{"s1": 0.5, "s2": 0.4, "s3": 0.05}}

	// Probe order s1 (+2.303, A), s2 (+1.897, B), s3 (−0.642, A).
	// After s2 the lead margin is 0.406 — above the signed remaining
	// weight (−0.642) the old bound used, but below the 0.642 the
	// negative-weight s3 can strip from the leader: its claim drops A
	// to 1.661, under B's 1.897. B must win, after all three probes.
	or, err := on.FuseOnline(cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := or.Values[it]; got.Str != "B" {
		t.Errorf("fused value = %v, want B (negative-weight source must be consulted)", got)
	}
	if or.Probes[it] != 3 {
		t.Errorf("probes = %d, want 3", or.Probes[it])
	}
}

func TestOnlineNSemantics(t *testing.T) {
	// N = 1 is a legitimate value (plain log-odds), not "unset": the old
	// code silently replaced any N <= 1 with 10.
	on1 := Online{N: 1, Accuracy: map[string]float64{"s": 0.8}}
	if w := on1.weightOf("s"); math.Abs(w-math.Log(4)) > 1e-12 {
		t.Errorf("N=1 weight = %v, want ln(4)=%v", w, math.Log(4))
	}
	// Only N == 0 means "unset" and takes the default 10.
	on0 := Online{Accuracy: map[string]float64{"s": 0.8}}
	if w := on0.weightOf("s"); math.Abs(w-math.Log(40)) > 1e-12 {
		t.Errorf("N=0 weight = %v, want ln(40)=%v", w, math.Log(40))
	}
	// Negative N is rejected on every entry point.
	if _, err := (Online{N: -1}).Fuse(data.NewClaimSet()); err == nil {
		t.Error("Fuse accepted negative N")
	}
	if _, err := (Online{N: -1}).FuseOnline(data.NewClaimSet()); err == nil {
		t.Error("FuseOnline accepted negative N")
	}
	if _, err := (Online{N: -1}).FuseWithPrefix(data.NewClaimSet(), 1); err == nil {
		t.Error("FuseWithPrefix accepted negative N")
	}
}

// TestOnlineProbesCountConsulted pins the probe statistic: an item that
// never early-terminates reports the number of sources consulted
// (len(order)), even when trailing sources hold no claim for it.
func TestOnlineProbesCountConsulted(t *testing.T) {
	cs := data.NewClaimSet()
	it := data.Item{Entity: "e", Attr: "a"}
	other := data.Item{Entity: "e2", Attr: "a"}
	cs.Add(data.Claim{Item: it, Source: "s1", Value: data.String("A")})
	cs.Add(data.Claim{Item: it, Source: "s2", Value: data.String("B")})
	cs.Add(data.Claim{Item: other, Source: "s3", Value: data.String("C")})
	on := Online{Accuracy: map[string]float64{"s1": 0.7, "s2": 0.7, "s3": 0.7}}

	// s1 and s2 tie on conflicting values, so "e"/"a" can never finalise
	// early; s3 is consulted (it holds no claim for the item) and the
	// loop falls through. The old counter reported 2 — the last claiming
	// source — instead of the 3 sources consulted.
	or, err := on.FuseOnline(cs)
	if err != nil {
		t.Fatal(err)
	}
	if or.Probes[it] != 3 {
		t.Errorf("probes = %d, want 3 (all sources consulted)", or.Probes[it])
	}
	if or.Probes[other] != 3 {
		t.Errorf("probes(other) = %d, want 3", or.Probes[other])
	}
}

func TestACCUSIMMergesNearNumericValues(t *testing.T) {
	// 2 sources claim 100.0, 2 claim 100.5 (same underlying truth,
	// jittered), 3 claim 250 (wrong). Plain vote/ACCU sees 2-2-3 and
	// picks 250; AccuSim lets the two near values reinforce each other.
	cs := data.NewClaimSet()
	it := data.Item{Entity: "e", Attr: "weight"}
	add := func(src string, v float64) {
		cs.Add(data.Claim{Item: it, Source: src, Value: data.Number(v)})
	}
	add("s1", 100.0)
	add("s2", 100.0)
	add("s3", 100.5)
	add("s4", 100.5)
	add("s5", 250)
	add("s6", 250)
	add("s7", 250)
	cs.SetTruth(it, data.Number(100.0))

	plain, err := ACCU{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Values[it].Num != 250 {
		t.Fatalf("plain accu should be fooled by the 3-way block, got %v", plain.Values[it])
	}

	// Relative-tolerance similarity: values within 2% are near-certainly
	// the same underlying quantity, so they lend (almost) full support.
	relSim := func(a, b data.Value) float64 {
		if a.Kind != data.KindNumber || b.Kind != data.KindNumber {
			return 0
		}
		diff := a.Num - b.Num
		if diff < 0 {
			diff = -diff
		}
		denom := a.Num
		if b.Num > denom {
			denom = b.Num
		}
		if denom == 0 {
			return 1
		}
		rel := diff / denom
		if rel > 0.02 {
			return 0
		}
		return 1 - rel/0.02
	}
	sim := ACCU{Similarity: relSim, SimInfluence: 1}
	if sim.Name() != "accusim" {
		t.Error("name")
	}
	res, err := sim.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[it].Num != 100.0 && res.Values[it].Num != 100.5 {
		t.Errorf("accusim should pick the reinforced cluster, got %v", res.Values[it])
	}
}

func TestACCUSIMNeutralWithoutSimilarPairs(t *testing.T) {
	cw := onlineWorld(6)
	plain, err := ACCU{}.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	zeroSim := ACCU{Similarity: func(a, b data.Value) float64 { return 0 }}
	res, err := zeroSim.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	pAcc, _ := eval.FusionAccuracy(plain.Values, cw.Claims)
	sAcc, _ := eval.FusionAccuracy(res.Values, cw.Claims)
	if diff := pAcc - sAcc; diff > 0.01 || diff < -0.01 {
		t.Errorf("zero similarity must reduce to plain accu: %f vs %f", pAcc, sAcc)
	}
}
