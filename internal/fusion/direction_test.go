package fusion

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

func TestInferDirectionsOnGeneratedCopiers(t *testing.T) {
	// Copiers here have partial coverage of the target's items plus an
	// independent remainder drawn at their own (lower-quality) accuracy,
	// so coverage and accuracy signals both point at the original.
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: 61, NumItems: 300, NumValues: 8,
		NumSources: 6, MinAccuracy: 0.85, MaxAccuracy: 0.95,
		NumCopiers: 3, CopyRate: 0.9, CopierSpread: 3,
		Coverage:          0.6,
		CopierMinAccuracy: 0.45, CopierMaxAccuracy: 0.6,
	})
	res, copies, err := (ACCUCOPY{}).CopyProbabilities(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	directed := InferDirections(cw.Claims, copies, res, res.SourceAccuracy, 0.5)
	if len(directed) == 0 {
		t.Fatal("no directed edges inferred")
	}
	// Score direction accuracy on the true copier→target edges.
	correct, total := 0, 0
	for _, dc := range directed {
		target, isTrueEdge := cw.CopiesFrom[dc.From]
		reverse, isReversed := cw.CopiesFrom[dc.To]
		switch {
		case isTrueEdge && target == dc.To:
			correct++
			total++
		case isReversed && reverse == dc.From:
			total++ // direction flipped: counted wrong
		}
	}
	if total == 0 {
		t.Fatal("no true copy edges among directed output")
	}
	if frac := float64(correct) / float64(total); frac < 0.6 {
		t.Errorf("direction accuracy = %d/%d, want >= 0.6", correct, total)
	}
}

func TestInferDirectionsThreshold(t *testing.T) {
	cs := data.NewClaimSet()
	cs.Add(data.Claim{Item: data.Item{Entity: "e", Attr: "v"}, Source: "a", Value: data.String("x")})
	cs.Add(data.Claim{Item: data.Item{Entity: "e", Attr: "v"}, Source: "b", Value: data.String("x")})
	copies := map[SourcePair]float64{NewSourcePair("a", "b"): 0.2}
	res := &Result{Values: map[data.Item]data.Value{}}
	if got := InferDirections(cs, copies, res, nil, 0.5); len(got) != 0 {
		t.Errorf("below-threshold pairs must be skipped, got %v", got)
	}
}

func TestInferDirectionsCoverageSignal(t *testing.T) {
	// Hand-built: "orig" covers 10 items correctly; "cop" covers 4 of
	// them identically and nothing else. Direction must be cop → orig.
	cs := data.NewClaimSet()
	res := &Result{Values: map[data.Item]data.Value{}}
	for i := 0; i < 10; i++ {
		it := data.Item{Entity: itoa(i), Attr: "v"}
		v := data.String("val" + itoa(i))
		cs.Add(data.Claim{Item: it, Source: "orig", Value: v})
		if i < 4 {
			cs.Add(data.Claim{Item: it, Source: "cop", Value: v})
		}
		res.Values[it] = v
	}
	copies := map[SourcePair]float64{NewSourcePair("cop", "orig"): 0.99}
	directed := InferDirections(cs, copies, res, map[string]float64{"orig": 0.9, "cop": 0.9}, 0.5)
	if len(directed) != 1 {
		t.Fatalf("directed = %v", directed)
	}
	if directed[0].From != "cop" || directed[0].To != "orig" {
		t.Errorf("direction = %s -> %s, want cop -> orig", directed[0].From, directed[0].To)
	}
	if directed[0].CoverageSignal <= 0 {
		t.Errorf("coverage signal = %f, want positive toward orig", directed[0].CoverageSignal)
	}
}
