package fusion

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
)

func item(i string) data.Item { return data.Item{Entity: i, Attr: "v"} }

func claims(t *testing.T, rows [][3]string) *data.ClaimSet {
	t.Helper()
	cs := data.NewClaimSet()
	for _, r := range rows {
		cs.Add(data.Claim{Item: item(r[0]), Source: r[1], Value: data.String(r[2])})
	}
	return cs
}

func TestMajorityVote(t *testing.T) {
	cs := claims(t, [][3]string{
		{"e1", "s1", "x"}, {"e1", "s2", "x"}, {"e1", "s3", "y"},
		{"e2", "s1", "a"},
	})
	res, err := MajorityVote{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[item("e1")]; !got.Equal(data.String("x")) {
		t.Errorf("e1 = %v", got)
	}
	if got := res.Confidence[item("e1")]; math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("e1 confidence = %f", got)
	}
	if got := res.Values[item("e2")]; !got.Equal(data.String("a")) {
		t.Errorf("e2 = %v", got)
	}
}

func TestMajorityVoteTieDeterministic(t *testing.T) {
	cs := claims(t, [][3]string{{"e", "s1", "b"}, {"e", "s2", "a"}})
	r1, _ := MajorityVote{}.Fuse(cs)
	r2, _ := MajorityVote{}.Fuse(cs)
	if !r1.Values[item("e")].Equal(r2.Values[item("e")]) {
		t.Error("tie break must be deterministic")
	}
}

func TestWeightedVote(t *testing.T) {
	cs := claims(t, [][3]string{
		{"e", "trusted", "x"}, {"e", "s1", "y"}, {"e", "s2", "y"},
	})
	res, err := WeightedVote{Weights: map[string]float64{"trusted": 5}}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[item("e")]; !got.Equal(data.String("x")) {
		t.Errorf("weighted vote = %v, want trusted source to win", got)
	}
}

// goodBadClaims: 3 accurate sources and 5 inaccurate ones that all make
// the same mistakes (the inaccurate block outvotes the accurate one).
func goodBadClaims(t *testing.T) (*data.ClaimSet, int) {
	t.Helper()
	cs := data.NewClaimSet()
	nItems := 40
	for i := 0; i < nItems; i++ {
		it := data.Item{Entity: itoa(i), Attr: "v"}
		truth := data.String("true-" + itoa(i))
		wrong := data.String("wrong-" + itoa(i))
		cs.SetTruth(it, truth)
		// Good sources: right on ~90% of items (wrong on i%10==0).
		for s := 0; s < 3; s++ {
			v := truth
			if (i+s)%10 == 0 {
				v = data.String("noise-" + itoa(i) + itoa(s))
			}
			cs.Add(data.Claim{Item: it, Source: "good" + itoa(s), Value: v})
		}
		// Bad sources: all claim the same wrong value on 60% of items.
		for s := 0; s < 5; s++ {
			v := truth
			if i%5 != 0 { // wrong on 80% of items
				v = wrong
			}
			cs.Add(data.Claim{Item: it, Source: "bad" + itoa(s), Value: v})
		}
	}
	return cs, nItems
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

func accuracyOf(t *testing.T, f Fuser, cs *data.ClaimSet) float64 {
	t.Helper()
	res, err := f.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	acc, n := eval.FusionAccuracy(res.Values, cs)
	if n == 0 {
		t.Fatal("no items evaluated")
	}
	return acc
}

func TestACCUBeatsVoteOnIndependentErrors(t *testing.T) {
	// Wide accuracy spread and a small false-value domain: bad sources
	// coincide on wrong values by chance often enough to mislead naive
	// voting, while accuracy-aware fusers learn to discount them.
	var vote, tf, accu float64
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		cw := datagen.BuildClaims(datagen.ClaimConfig{
			Seed: seed, NumItems: 300, NumValues: 3, NumSources: 12,
			MinAccuracy: 0.3, MaxAccuracy: 0.95,
		})
		vote += accuracyOf(t, MajorityVote{}, cw.Claims)
		tf += accuracyOf(t, TruthFinder{}, cw.Claims)
		accu += accuracyOf(t, ACCU{}, cw.Claims)
	}
	n := float64(len(seeds))
	vote, tf, accu = vote/n, tf/n, accu/n
	if accu <= vote {
		t.Errorf("accu (%f) must beat vote (%f) on average", accu, vote)
	}
	if tf < vote-0.01 {
		t.Errorf("truthfinder (%f) must be at least competitive with vote (%f)", tf, vote)
	}
	if accu < 0.85 {
		t.Errorf("accu mean accuracy = %f, want >= 0.85", accu)
	}
}

func TestACCUCOPYRecoversFromCollusion(t *testing.T) {
	// A perfectly colluding majority bloc defeats voting, TruthFinder
	// AND plain ACCU (all calibrate against the corrupted consensus);
	// only the copy-aware fuser discounts the bloc and recovers — the
	// tutorial's core Veracity argument.
	cs, _ := goodBadClaims(t)
	vote := accuracyOf(t, MajorityVote{}, cs)
	accu := accuracyOf(t, ACCU{}, cs)
	accucopy := accuracyOf(t, ACCUCOPY{}, cs)
	if vote > 0.3 {
		t.Errorf("vote accuracy = %f; the colluding bloc should sink it", vote)
	}
	if accu > 0.3 {
		t.Errorf("plain accu accuracy = %f; it cannot resist collusion", accu)
	}
	if accucopy < 0.9 {
		t.Errorf("accucopy accuracy = %f, want >= 0.9", accucopy)
	}
}

func TestACCUEstimatesSourceAccuracy(t *testing.T) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: 5, NumItems: 300, NumSources: 10,
		MinAccuracy: 0.55, MaxAccuracy: 0.95,
	})
	res, err := ACCU{}.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	// Estimated accuracies must correlate with ground truth: check mean
	// absolute error and rank agreement on extremes.
	var mae float64
	n := 0
	bestSrc, worstSrc := "", ""
	bestAcc, worstAcc := -1.0, 2.0
	for s, trueAcc := range cw.TrueAccuracy {
		est, ok := res.SourceAccuracy[s]
		if !ok {
			t.Fatalf("no accuracy estimate for %s", s)
		}
		mae += math.Abs(est - trueAcc)
		n++
		if trueAcc > bestAcc {
			bestAcc, bestSrc = trueAcc, s
		}
		if trueAcc < worstAcc {
			worstAcc, worstSrc = trueAcc, s
		}
	}
	mae /= float64(n)
	if mae > 0.12 {
		t.Errorf("accuracy MAE = %f, want <= 0.12", mae)
	}
	if res.SourceAccuracy[bestSrc] <= res.SourceAccuracy[worstSrc] {
		t.Error("estimated accuracy must rank best source above worst")
	}
}

func TestACCUConvergence(t *testing.T) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{Seed: 6, NumItems: 150, NumSources: 8})
	trace, err := ACCU{}.FuseTrace(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	first, _ := eval.FusionAccuracy(trace[0].Values, cw.Claims)
	last, _ := eval.FusionAccuracy(trace[len(trace)-1].Values, cw.Claims)
	if last < first-0.02 {
		t.Errorf("accuracy must not degrade over iterations: %f -> %f", first, last)
	}
	if trace[len(trace)-1].Iterations > 20 {
		t.Error("must converge within iteration cap")
	}
}

func TestPOPACCU(t *testing.T) {
	cw := datagen.BuildClaims(datagen.ClaimConfig{
		Seed: 7, NumItems: 300, NumValues: 3, NumSources: 12,
		MinAccuracy: 0.3, MaxAccuracy: 0.95,
	})
	pop := accuracyOf(t, ACCU{Popularity: true}, cw.Claims)
	vote := accuracyOf(t, MajorityVote{}, cw.Claims)
	if pop < vote-0.02 {
		t.Errorf("popaccu (%f) must be at least competitive with vote (%f)", pop, vote)
	}
	if pop < 0.85 {
		t.Errorf("popaccu accuracy = %f, want >= 0.85", pop)
	}
	if (ACCU{Popularity: true}).Name() != "popaccu" {
		t.Error("name mismatch")
	}
}

func TestFusersHandleEmptyClaimSet(t *testing.T) {
	cs := data.NewClaimSet()
	for _, f := range []Fuser{MajorityVote{}, TruthFinder{}, ACCU{}, ACCUCOPY{}} {
		res, err := f.Fuse(cs)
		if err != nil {
			t.Errorf("%s: %v", f.Name(), err)
			continue
		}
		if len(res.Values) != 0 {
			t.Errorf("%s: values from empty claims", f.Name())
		}
	}
}

func TestFusersSingleClaim(t *testing.T) {
	cs := claims(t, [][3]string{{"e", "s", "only"}})
	for _, f := range []Fuser{MajorityVote{}, TruthFinder{}, ACCU{}, ACCUCOPY{}} {
		res, err := f.Fuse(cs)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if got := res.Values[item("e")]; !got.Equal(data.String("only")) {
			t.Errorf("%s: single claim = %v", f.Name(), got)
		}
	}
}
