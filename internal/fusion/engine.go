package fusion

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// claimIndex is the interned claim-set representation every fuser runs
// on — the fusion-stage analogue of blocking.Engine and
// similarity.FeatureIndex. Items keep their first-appearance order,
// source IDs are interned to their sorted rank, and each item's
// distinct value keys are laid out contiguously in sorted-key order, so
// the EM state (vote scores, posteriors, accuracies) lives in flat
// slices indexed by dense uint32 ranks instead of map-of-map lookups.
// Every accumulation an algorithm performs over the index walks a slice
// whose order is fixed at build time, which is what makes the parallel
// E/M steps bit-deterministic for any worker count.
type claimIndex struct {
	cfg parallel.Config

	items   []data.Item // item rank → item, first-appearance order
	sources []string    // source rank → source ID, sorted

	// Value columns: item i's distinct values occupy the global index
	// range [valOff[i], valOff[i+1]), sorted by value key within the
	// item. valVals holds the canonical Value (first one claimed).
	valOff  []int
	valKeys []string
	valVals []data.Value
	valItem []uint32 // global value index → owning item rank

	// Support lists: value v's claiming sources occupy
	// supSrc[supOff[v]:supOff[v+1]] in claim insertion order (a source
	// appears once per claim, exactly as the map-based tally did).
	supOff []int
	supSrc []uint32

	// Per-source claim lists: source s's claims occupy
	// srcVal[srcOff[s]:srcOff[s+1]] as global value indices, in claim
	// insertion order — the M-step accumulation order.
	srcOff []int
	srcVal []uint32
}

// buildIndex interns a claim set. The per-item value tallies build in
// parallel (each item is independent); the flat layout is concatenated
// sequentially so offsets are identical for any worker count. The error
// is a cfg.Ctx cancellation or a recovered worker panic.
func buildIndex(cs *data.ClaimSet, cfg parallel.Config) (*claimIndex, error) {
	ci := &claimIndex{cfg: cfg, items: cs.Items(), sources: cs.Sources()}

	srcRank := make(map[string]uint32, len(ci.sources))
	for r, s := range ci.sources {
		srcRank[s] = uint32(r)
	}
	// Item ranks are resolved once here — never rebuilt per iteration.
	itemRank := make(map[data.Item]uint32, len(ci.items))
	for r, it := range ci.items {
		itemRank[it] = uint32(r)
	}

	type itemCols struct {
		keys []string
		vals []data.Value
		sup  [][]uint32
	}
	cols := make([]itemCols, len(ci.items))
	err := parallel.ForEach(cfg, len(ci.items), func(i int) {
		claims := cs.ItemClaims(ci.items[i])
		canon := make(map[string]data.Value, 4)
		keys := make([]string, 0, 4)
		for _, cl := range claims {
			k := cl.Value.Key()
			if _, seen := canon[k]; !seen {
				canon[k] = cl.Value
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		pos := make(map[string]int, len(keys))
		vals := make([]data.Value, len(keys))
		for j, k := range keys {
			pos[k] = j
			vals[j] = canon[k]
		}
		sup := make([][]uint32, len(keys))
		for _, cl := range claims {
			j := pos[cl.Value.Key()]
			sup[j] = append(sup[j], srcRank[cl.Source])
		}
		cols[i] = itemCols{keys: keys, vals: vals, sup: sup}
	})
	if err != nil {
		return nil, err
	}

	nVals, nSup := 0, 0
	for i := range cols {
		nVals += len(cols[i].keys)
		for _, s := range cols[i].sup {
			nSup += len(s)
		}
	}
	ci.valOff = make([]int, len(ci.items)+1)
	ci.valKeys = make([]string, 0, nVals)
	ci.valVals = make([]data.Value, 0, nVals)
	ci.valItem = make([]uint32, 0, nVals)
	ci.supOff = make([]int, 1, nVals+1)
	ci.supSrc = make([]uint32, 0, nSup)
	for i := range cols {
		ci.valOff[i] = len(ci.valKeys)
		ci.valKeys = append(ci.valKeys, cols[i].keys...)
		ci.valVals = append(ci.valVals, cols[i].vals...)
		for range cols[i].keys {
			ci.valItem = append(ci.valItem, uint32(i))
		}
		for _, s := range cols[i].sup {
			ci.supSrc = append(ci.supSrc, s...)
			ci.supOff = append(ci.supOff, len(ci.supSrc))
		}
	}
	ci.valOff[len(ci.items)] = len(ci.valKeys)

	// Per-source claim lists: resolve each claim's global value index by
	// binary search inside its item's sorted key range.
	srcCols := make([][]uint32, len(ci.sources))
	if err := parallel.ForEach(cfg, len(ci.sources), func(s int) {
		claims := cs.SourceClaims(ci.sources[s])
		lst := make([]uint32, 0, len(claims))
		for _, cl := range claims {
			lst = append(lst, ci.valIdx(itemRank[cl.Item], cl.Value.Key()))
		}
		srcCols[s] = lst
	}); err != nil {
		return nil, err
	}
	ci.srcOff = make([]int, len(ci.sources)+1)
	ci.srcVal = make([]uint32, 0, nSup)
	for s := range srcCols {
		ci.srcOff[s] = len(ci.srcVal)
		ci.srcVal = append(ci.srcVal, srcCols[s]...)
	}
	ci.srcOff[len(ci.sources)] = len(ci.srcVal)
	if reg := obs.OrDefault(cfg.Obs); reg != nil {
		reg.Counter("fusion.items").Add(int64(len(ci.items)))
		reg.Counter("fusion.sources").Add(int64(len(ci.sources)))
		reg.Counter("fusion.values").Add(int64(ci.numValues()))
	}
	return ci, nil
}

// valIdx locates the global value index of (item rank, value key); the
// key must be one of the item's claimed keys.
func (ci *claimIndex) valIdx(item uint32, key string) uint32 {
	lo, hi := ci.valOff[item], ci.valOff[item+1]
	return uint32(lo + sort.SearchStrings(ci.valKeys[lo:hi], key))
}

// findVal is valIdx for keys that may not be claimed (e.g. an external
// truth estimate): the second return reports whether the key exists.
func (ci *claimIndex) findVal(item uint32, key string) (uint32, bool) {
	lo, hi := ci.valOff[item], ci.valOff[item+1]
	p := lo + sort.SearchStrings(ci.valKeys[lo:hi], key)
	if p < hi && ci.valKeys[p] == key {
		return uint32(p), true
	}
	return 0, false
}

// numValues returns the total distinct (item, value) count.
func (ci *claimIndex) numValues() int { return len(ci.valKeys) }

// softmaxRange normalises scores[lo:hi] into post[lo:hi]. The
// normalizer z accumulates in index order — within an item that is
// sorted value-key order — so posteriors are bit-deterministic (the fix
// for the map-iteration softmax the engine replaced).
func softmaxRange(scores, post []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	maxS := scores[lo]
	for v := lo + 1; v < hi; v++ {
		if scores[v] > maxS {
			maxS = scores[v]
		}
	}
	var z float64
	for v := lo; v < hi; v++ {
		e := math.Exp(scores[v] - maxS)
		post[v] = e
		z += e
	}
	for v := lo; v < hi; v++ {
		post[v] /= z
	}
}

// accuracyMap expands a rank-indexed accuracy slice into the map form
// Result exposes.
func (ci *claimIndex) accuracyMap(acc []float64) map[string]float64 {
	m := make(map[string]float64, len(ci.sources))
	for s, a := range acc {
		m[ci.sources[s]] = a
	}
	return m
}

// buildResult assembles a Result from per-value posteriors: for each
// item, the arg-max over its sorted value range with strict > — the
// same lowest-key tie-break the map-based fusers used.
func (ci *claimIndex) buildResult(post []float64, accuracy map[string]float64, iters int) *Result {
	res := &Result{
		Values:         make(map[data.Item]data.Value, len(ci.items)),
		Confidence:     make(map[data.Item]float64, len(ci.items)),
		SourceAccuracy: accuracy,
		Iterations:     iters,
	}
	for i, it := range ci.items {
		bestV, best := -1, -1.0
		for v := ci.valOff[i]; v < ci.valOff[i+1]; v++ {
			if post[v] > best {
				best, bestV = post[v], v
			}
		}
		if bestV >= 0 {
			res.Values[it] = ci.valVals[bestV]
			res.Confidence[it] = best
		}
	}
	return res
}
