package fusion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/datagen"
)

// randomClaims builds a claim world from quick-generated knobs.
func randomClaims(seed int64, items, sources uint8) *datagen.ClaimWorld {
	return datagen.BuildClaims(datagen.ClaimConfig{
		Seed:     seed,
		NumItems: int(items%40) + 5, NumValues: 4,
		NumSources: int(sources%8) + 2,
	})
}

// TestFusersOnlyChooseClaimedValues: every fused value must have been
// claimed by some source for that item, for every fuser.
func TestFusersOnlyChooseClaimedValues(t *testing.T) {
	fusers := []Fuser{MajorityVote{}, TruthFinder{}, ACCU{}, ACCU{Popularity: true}, ACCUCOPY{}}
	f := func(seed int64, items, sources uint8) bool {
		cw := randomClaims(seed, items, sources)
		claimed := map[data.Item]map[string]bool{}
		for _, c := range cw.Claims.All() {
			if claimed[c.Item] == nil {
				claimed[c.Item] = map[string]bool{}
			}
			claimed[c.Item][c.Value.Key()] = true
		}
		for _, fu := range fusers {
			res, err := fu.Fuse(cw.Claims)
			if err != nil {
				return false
			}
			for it, v := range res.Values {
				if !claimed[it][v.Key()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestFuserConfidencesInRange: confidences and accuracies live in [0,1].
func TestFuserConfidencesInRange(t *testing.T) {
	fusers := []Fuser{MajorityVote{}, TruthFinder{}, ACCU{}, ACCUCOPY{}}
	f := func(seed int64) bool {
		cw := randomClaims(seed, uint8(seed%37), uint8(seed%11))
		for _, fu := range fusers {
			res, err := fu.Fuse(cw.Claims)
			if err != nil {
				return false
			}
			for _, c := range res.Confidence {
				if c < 0 || c > 1 {
					return false
				}
			}
			for _, a := range res.SourceAccuracy {
				if a < 0 || a > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestVoteClaimOrderInvariance: majority vote must not depend on claim
// insertion order.
func TestVoteClaimOrderInvariance(t *testing.T) {
	cw := randomClaims(99, 20, 6)
	base, err := MajorityVote{}.Fuse(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	claims := cw.Claims.All()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(claims), func(i, j int) { claims[i], claims[j] = claims[j], claims[i] })
		cs := data.NewClaimSet()
		for _, c := range claims {
			cs.Add(c)
		}
		res, err := MajorityVote{}.Fuse(cs)
		if err != nil {
			t.Fatal(err)
		}
		for it, v := range base.Values {
			if !res.Values[it].Equal(v) {
				t.Fatalf("vote order-dependent at %v: %v vs %v", it, v, res.Values[it])
			}
		}
	}
}

// TestOnlineAgreesWithWeightedVoteAtFullBudget: the online protocol's
// answers must equal offline weighted voting with the same weights.
func TestOnlineAgreesWithWeightedVoteAtFullBudget(t *testing.T) {
	f := func(seed int64) bool {
		cw := randomClaims(seed, 30, 7)
		on := Online{Accuracy: cw.TrueAccuracy}
		or, err := on.FuseOnline(cw.Claims)
		if err != nil {
			return false
		}
		off, err := WeightedVote{Weights: weightsFor(on, cw.Claims.Sources())}.Fuse(cw.Claims)
		if err != nil {
			return false
		}
		agree, total := 0, 0
		for it, v := range off.Values {
			total++
			if or.Values[it].Equal(v) {
				agree++
			}
		}
		// Tie-breaks may differ (the online protocol finalises on
		// arrival order); demand ≥95% agreement.
		return total == 0 || float64(agree)/float64(total) >= 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
