package fusion

import (
	"sort"

	"repro/internal/data"
)

// NumericFusion resolves conflicting *numeric* claims, where majority
// voting is the wrong model: independent measurements of a continuous
// quantity rarely agree exactly, so the fused value should be a robust
// location estimate rather than the most frequent exact number. Items
// whose claims are not predominantly numeric fall back to the Fallback
// fuser (majority vote when nil).
type NumericFusion struct {
	// Method selects the estimator: "median" (default, robust to
	// outliers), "mean", or "weighted" (accuracy-weighted mean).
	Method string
	// Weights holds per-source weights for the "weighted" method
	// (e.g. estimated accuracies); missing sources weigh 1.
	Weights map[string]float64
	// Fallback fuses non-numeric items. Default MajorityVote.
	Fallback Fuser
}

// Name implements Fuser.
func (nf NumericFusion) Name() string { return "numeric-" + nf.method() }

func (nf NumericFusion) method() string {
	switch nf.Method {
	case "mean", "weighted":
		return nf.Method
	default:
		return "median"
	}
}

// Fuse implements Fuser.
func (nf NumericFusion) Fuse(cs *data.ClaimSet) (*Result, error) {
	fallback := nf.Fallback
	if fallback == nil {
		fallback = MajorityVote{}
	}
	res := &Result{
		Values:     map[data.Item]data.Value{},
		Confidence: map[data.Item]float64{},
		Iterations: 1,
	}
	// Split items by kind; batch the non-numeric ones for the fallback.
	nonNumeric := data.NewClaimSet()
	for _, it := range cs.Items() {
		claims := cs.ItemClaims(it)
		numeric := 0
		for _, c := range claims {
			if c.Value.Kind == data.KindNumber {
				numeric++
			}
		}
		if numeric*2 <= len(claims) { // not predominantly numeric
			for _, c := range claims {
				nonNumeric.Add(c)
			}
			continue
		}
		v, conf := nf.fuseNumeric(claims)
		res.Values[it] = v
		res.Confidence[it] = conf
	}
	if nonNumeric.Len() > 0 {
		fb, err := fallback.Fuse(nonNumeric)
		if err != nil {
			return nil, err
		}
		for it, v := range fb.Values {
			res.Values[it] = v
			res.Confidence[it] = fb.Confidence[it]
		}
	}
	return res, nil
}

// fuseNumeric estimates the item's value from its numeric claims.
// Confidence reflects concentration: 1 when all claims agree, decaying
// with relative spread (median absolute deviation / |estimate|).
func (nf NumericFusion) fuseNumeric(claims []data.Claim) (data.Value, float64) {
	type wv struct {
		v, w float64
	}
	var xs []wv
	for _, c := range claims {
		if c.Value.Kind != data.KindNumber {
			continue
		}
		w := 1.0
		if nf.method() == "weighted" {
			if got, ok := nf.Weights[c.Source]; ok && got > 0 {
				w = got
			}
		}
		xs = append(xs, wv{v: c.Value.Num, w: w})
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].v < xs[j].v })

	var est float64
	switch nf.method() {
	case "mean", "weighted":
		var sum, wsum float64
		for _, x := range xs {
			sum += x.v * x.w
			wsum += x.w
		}
		est = sum / wsum
	default: // median (weighted by claim multiplicity implicitly)
		est = xs[len(xs)/2].v
		if len(xs)%2 == 0 {
			est = (xs[len(xs)/2-1].v + xs[len(xs)/2].v) / 2
		}
	}

	// Spread-based confidence.
	devs := make([]float64, len(xs))
	for i, x := range xs {
		d := x.v - est
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	sort.Float64s(devs)
	mad := devs[len(devs)/2]
	scale := est
	if scale < 0 {
		scale = -scale
	}
	conf := 1.0
	if scale > 0 {
		rel := mad / scale
		conf = 1 / (1 + 10*rel)
	} else if mad > 0 {
		conf = 0.5
	}
	return data.Number(est), conf
}
