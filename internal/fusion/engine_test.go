package fusion

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/data"
)

// ---------------------------------------------------------------------
// Reference implementations: the pre-engine map-based fusers, verbatim
// except for the two deliberate determinism fixes (softmax and
// simAdjust accumulate in sorted key order). Every engine fuser is
// pinned byte-identical to these for workers ∈ {1, 2, 8} — the fusion
// counterpart of blocking's engine_test.go.
// ---------------------------------------------------------------------

func refWeightedVote(cs *data.ClaimSet, weight func(string) float64) *Result {
	res := &Result{
		Values:     map[data.Item]data.Value{},
		Confidence: map[data.Item]float64{},
		Iterations: 1,
	}
	for _, it := range cs.Items() {
		vc := tally(cs.ItemClaims(it))
		var bestKey string
		var bestW, totalW float64
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		for _, k := range keys {
			var w float64
			for _, s := range vc.sources[k] {
				w += weight(s)
			}
			totalW += w
			if w > bestW {
				bestW, bestKey = w, k
			}
		}
		if bestKey == "" {
			continue
		}
		res.Values[it] = vc.values[bestKey]
		if totalW > 0 {
			res.Confidence[it] = bestW / totalW
		}
	}
	return res
}

func refTruthFinder(tf TruthFinder, cs *data.ClaimSet) *Result {
	gamma, trust0, maxIter, eps := 0.3, 0.8, 20, 1e-4
	trust := map[string]float64{}
	for _, s := range cs.Sources() {
		trust[s] = trust0
	}
	items := cs.Items()
	tallies := make([]*voteCounts, len(items))
	for i, it := range items {
		tallies[i] = tally(cs.ItemClaims(it))
	}
	const maxTrust = 0.999999
	conf := map[data.Item]map[string]float64{}
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		for i, it := range items {
			vc := tallies[i]
			m := map[string]float64{}
			for _, k := range vc.keyOrder {
				var sigma float64
				for _, s := range vc.sources[k] {
					t := trust[s]
					if t > maxTrust {
						t = maxTrust
					}
					sigma += -math.Log(1 - t)
				}
				m[k] = 1 / (1 + math.Exp(-gamma*sigma))
			}
			conf[it] = m
		}
		maxDelta := 0.0
		for _, s := range cs.Sources() {
			claims := cs.SourceClaims(s)
			if len(claims) == 0 {
				continue
			}
			var sum float64
			for _, c := range claims {
				sum += conf[c.Item][c.Value.Key()]
			}
			next := sum / float64(len(claims))
			if d := math.Abs(next - trust[s]); d > maxDelta {
				maxDelta = d
			}
			trust[s] = next
		}
		if maxDelta < eps {
			break
		}
	}
	res := &Result{
		Values:         map[data.Item]data.Value{},
		Confidence:     map[data.Item]float64{},
		SourceAccuracy: trust,
		Iterations:     iters,
	}
	for i, it := range items {
		vc := tallies[i]
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		bestKey, best := "", -1.0
		for _, k := range keys {
			if c := conf[it][k]; c > best {
				best, bestKey = c, k
			}
		}
		if bestKey != "" {
			res.Values[it] = vc.values[bestKey]
			res.Confidence[it] = best
		}
	}
	return res
}

func refSimAdjust(a ACCU, vc *voteCounts, scores map[string]float64) map[string]float64 {
	rho := a.SimInfluence
	if rho <= 0 {
		rho = 0.5
	}
	keys := append([]string(nil), vc.keyOrder...)
	sort.Strings(keys) // determinism fix: boost accumulates in sorted key order
	adj := make(map[string]float64, len(scores))
	for _, k := range keys {
		boost := 0.0
		for _, k2 := range keys {
			if k == k2 {
				continue
			}
			if sim := a.Similarity(vc.values[k], vc.values[k2]); sim > 0 {
				boost += sim * scores[k2]
			}
		}
		adj[k] = scores[k] + rho*boost
	}
	return adj
}

func refACCU(a ACCU, cs *data.ClaimSet) *Result {
	n, acc0, maxIter, eps := a.params()
	accuracy := map[string]float64{}
	for _, s := range cs.Sources() {
		accuracy[s] = acc0
	}
	items := cs.Items()
	tallies := make([]*voteCounts, len(items))
	for i, it := range items {
		tallies[i] = tally(cs.ItemClaims(it))
	}
	const minAcc, maxAcc = 0.01, 0.99
	post := make([]map[string]float64, len(items))
	itemIndex := map[data.Item]int{}
	for i, it := range items {
		itemIndex[it] = i
	}
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		for i, it := range items {
			vc := tallies[i]
			effN := n
			if a.Popularity {
				if d := float64(len(vc.keyOrder)); d > 1 {
					effN = d
				} else {
					effN = 2
				}
			}
			scores := map[string]float64{}
			for _, k := range vc.keyOrder {
				var sum float64
				for _, s := range vc.sources[k] {
					acc := clampF(accuracy[s], minAcc, maxAcc)
					w := math.Log(effN * acc / (1 - acc))
					if a.copyDiscount != nil {
						w *= a.copyDiscount(it, k, s)
					}
					sum += w
				}
				scores[k] = sum
			}
			if a.Similarity != nil {
				scores = refSimAdjust(a, vc, scores)
			}
			post[i] = softmax(scores)
		}
		maxDelta := 0.0
		for _, s := range cs.Sources() {
			claims := cs.SourceClaims(s)
			if len(claims) == 0 {
				continue
			}
			var sum float64
			for _, c := range claims {
				sum += post[itemIndex[c.Item]][c.Value.Key()]
			}
			next := clampF(sum/float64(len(claims)), minAcc, maxAcc)
			if d := math.Abs(next - accuracy[s]); d > maxDelta {
				maxDelta = d
			}
			accuracy[s] = next
		}
		if maxDelta < eps {
			break
		}
	}
	res := &Result{
		Values:         map[data.Item]data.Value{},
		Confidence:     map[data.Item]float64{},
		SourceAccuracy: accuracy,
		Iterations:     iters,
	}
	for i, it := range items {
		vc := tallies[i]
		keys := append([]string(nil), vc.keyOrder...)
		sort.Strings(keys)
		bestKey, best := "", -1.0
		for _, k := range keys {
			if p := post[i][k]; p > best {
				best, bestKey = p, k
			}
		}
		if bestKey != "" {
			res.Values[it] = vc.values[bestKey]
			res.Confidence[it] = best
		}
	}
	return res
}

func refDetect(cd CopyDetector, cs *data.ClaimSet, truth *Result, accuracy map[string]float64) map[SourcePair]float64 {
	alpha, c, n, minOv := cd.params()
	claimOf := map[string]map[data.Item]string{}
	for _, s := range cs.Sources() {
		m := map[data.Item]string{}
		for _, cl := range cs.SourceClaims(s) {
			m[cl.Item] = cl.Value.Key()
		}
		claimOf[s] = m
	}
	sources := cs.Sources()
	out := map[SourcePair]float64{}
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			s1, s2 := sources[i], sources[j]
			kt, kf, kd := 0, 0, 0
			for it, v1 := range claimOf[s1] {
				v2, ok := claimOf[s2][it]
				if !ok {
					continue
				}
				var truthVal data.Value
				hasTruth := false
				if !cd.IgnoreTruth && truth != nil {
					truthVal, hasTruth = truth.Values[it]
				}
				switch {
				case v1 != v2:
					kd++
				case hasTruth && v1 == truthVal.Key():
					kt++
				case hasTruth:
					kf++
				default:
					kt++
				}
			}
			if kt+kf+kd < minOv {
				continue
			}
			a1 := defaultAcc(accuracy, s1)
			a2 := defaultAcc(accuracy, s2)
			pt := a1 * a2
			pf := (1 - a1) * (1 - a2) / n
			if cd.IgnoreTruth {
				pt += pf
			}
			pd := 1 - pt - pf
			if pd < 1e-9 {
				pd = 1e-9
			}
			ct := c + (1-c)*pt
			cf := c + (1-c)*pf
			cdiff := (1 - c) * pd
			logIndep := float64(kt)*math.Log(pt) + float64(kf)*math.Log(pf) + float64(kd)*math.Log(pd)
			logCopy := float64(kt)*math.Log(ct) + float64(kf)*math.Log(cf) + float64(kd)*math.Log(cdiff)
			lc := math.Log(alpha) + logCopy
			li := math.Log(1-alpha) + logIndep
			m := math.Max(lc, li)
			out[NewSourcePair(s1, s2)] = math.Exp(lc-m) / (math.Exp(lc-m) + math.Exp(li-m))
		}
	}
	return out
}

func refBuildDiscounts(cs *data.ClaimSet, copies map[SourcePair]float64,
	accuracy map[string]float64, copyRate float64) map[discountKey]float64 {
	out := map[discountKey]float64{}
	for _, it := range cs.Items() {
		vc := tally(cs.ItemClaims(it))
		for _, k := range vc.keyOrder {
			claimants := append([]string(nil), vc.sources[k]...)
			sort.Slice(claimants, func(i, j int) bool {
				ai, aj := defaultAcc(accuracy, claimants[i]), defaultAcc(accuracy, claimants[j])
				if ai != aj {
					return ai > aj
				}
				return claimants[i] < claimants[j]
			})
			for i, s := range claimants {
				indep := 1.0
				for j := 0; j < i; j++ {
					p := copies[NewSourcePair(s, claimants[j])]
					indep *= 1 - copyRate*p
				}
				out[discountKey{it, k, s}] = indep
			}
		}
	}
	return out
}

func refACCUCOPY(ac ACCUCOPY, cs *data.ClaimSet) *Result {
	outer := ac.OuterIterations
	if outer <= 0 {
		outer = 3
	}
	_, c, _, _ := ac.Detector.params()
	accu := ac.Accu
	res := refACCU(accu, cs)
	for iter := 0; iter < outer; iter++ {
		accIn := res.SourceAccuracy
		det := ac.Detector
		if iter == 0 && !ac.DisableBootstrap {
			_, acc0, _, _ := accu.params()
			accIn = map[string]float64{}
			for _, s := range cs.Sources() {
				accIn[s] = acc0
			}
			det.IgnoreTruth = true
		}
		copies := refDetect(det, cs, res, accIn)
		discounts := refBuildDiscounts(cs, copies, res.SourceAccuracy, c)
		withDiscount := accu
		withDiscount.copyDiscount = func(it data.Item, valueKey, source string) float64 {
			if d, ok := discounts[discountKey{it, valueKey, source}]; ok {
				return d
			}
			return 1
		}
		res = refACCU(withDiscount, cs)
	}
	res.Iterations = outer
	return res
}

func refOnline(o Online, cs *data.ClaimSet) *Result {
	order := append([]string(nil), cs.Sources()...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := o.weightOf(order[i]), o.weightOf(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	claimOf := map[string]map[data.Item]data.Value{}
	for _, s := range order {
		m := map[data.Item]data.Value{}
		for _, c := range cs.SourceClaims(s) {
			m[c.Item] = c.Value
		}
		claimOf[s] = m
	}
	remaining := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		remaining[i] = remaining[i+1] + o.weightOf(order[i])
	}
	res := &Result{
		Values:         map[data.Item]data.Value{},
		Confidence:     map[data.Item]float64{},
		SourceAccuracy: map[string]float64{},
		Iterations:     1,
	}
	for _, s := range order {
		res.SourceAccuracy[s] = clampF(accOrDefault(o.Accuracy, s), 0.05, 0.95)
	}
	for _, it := range cs.Items() {
		scores := map[string]float64{}
		values := map[string]data.Value{}
		finalised := false
		for i, s := range order {
			if v, ok := claimOf[s][it]; ok {
				k := v.Key()
				scores[k] += o.weightOf(s)
				values[k] = v
			}
			lead, second := topTwo(scores)
			if lead != "" && scores[lead]-second > remaining[i+1] {
				res.Values[it] = values[lead]
				res.Confidence[it] = confidenceOf(scores, lead)
				finalised = true
				break
			}
		}
		if !finalised {
			if lead, _ := topTwo(scores); lead != "" {
				res.Values[it] = values[lead]
				res.Confidence[it] = confidenceOf(scores, lead)
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------

// detClaims builds a seeded claim workload via an LCG: items with
// varying numbers of distinct values, sources that skip items, a
// perfect copier pair, duplicate claims by one source on one item
// (exercising the detector's last-claim-wins indexing), and ground
// truth on every item.
func detClaims(nItems, nSources int, seed uint64) *data.ClaimSet {
	cs := data.NewClaimSet()
	state := seed
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < nItems; i++ {
		it := data.Item{Entity: fmt.Sprintf("e%03d", i), Attr: "v"}
		truthV := next(4)
		cs.SetTruth(it, data.String(fmt.Sprintf("val-%d", truthV)))
		var copied data.Value
		hasCopied := false
		for s := 0; s < nSources; s++ {
			if next(10) == 0 && s != nSources-1 {
				continue // this source skips the item
			}
			v := truthV
			if next(10) < 3 {
				v = next(8) // error: one of 8 wrong-ish values
			}
			val := data.String(fmt.Sprintf("val-%d", v))
			src := fmt.Sprintf("s%02d", s)
			cs.Add(data.Claim{Item: it, Source: src, Value: val})
			if s == 0 {
				copied, hasCopied = val, true
			}
			// s01 copies s00 wholesale: first claims its own value, then
			// re-claims s00's (duplicate claims, last wins in detection).
			if s == 1 && hasCopied {
				cs.Add(data.Claim{Item: it, Source: src, Value: copied})
			}
		}
	}
	return cs
}

var workerCounts = []int{1, 2, 8}

// ---------------------------------------------------------------------
// Parity pins
// ---------------------------------------------------------------------

// TestEngineMatchesReference pins every engine fuser byte-identical to
// its pre-engine reference implementation, at every worker count.
func TestEngineMatchesReference(t *testing.T) {
	cs := detClaims(60, 12, 42)
	sim := func(a, b data.Value) float64 {
		if a.Key()[:4] == b.Key()[:4] {
			return 0.3
		}
		return 0
	}
	weights := map[string]float64{"s00": 2.5, "s03": 0.5, "s07": 1.5}

	cases := []struct {
		name string
		mk   func(workers int) Fuser
		ref  func() *Result
	}{
		{"vote", func(w int) Fuser { return MajorityVote{Workers: w} },
			func() *Result { return refWeightedVote(cs, func(string) float64 { return 1 }) }},
		{"weighted-vote", func(w int) Fuser { return WeightedVote{Weights: weights, Workers: w} },
			func() *Result {
				return refWeightedVote(cs, func(s string) float64 {
					if wt, ok := weights[s]; ok {
						return wt
					}
					return 1
				})
			}},
		{"truthfinder", func(w int) Fuser { return TruthFinder{Workers: w} },
			func() *Result { return refTruthFinder(TruthFinder{}, cs) }},
		{"accu", func(w int) Fuser { return ACCU{Workers: w} },
			func() *Result { return refACCU(ACCU{}, cs) }},
		{"popaccu", func(w int) Fuser { return ACCU{Popularity: true, Workers: w} },
			func() *Result { return refACCU(ACCU{Popularity: true}, cs) }},
		{"accusim", func(w int) Fuser { return ACCU{Similarity: sim, Workers: w} },
			func() *Result { return refACCU(ACCU{Similarity: sim}, cs) }},
		{"accucopy", func(w int) Fuser { return ACCUCOPY{Accu: ACCU{Workers: w}} },
			func() *Result { return refACCUCOPY(ACCUCOPY{}, cs) }},
		{"online", func(w int) Fuser { return Online{Workers: w} },
			func() *Result { return refOnline(Online{}, cs) }},
	}
	for _, tc := range cases {
		ref := tc.ref()
		for _, w := range workerCounts {
			res, err := tc.mk(w).Fuse(cs)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if diff, ok := sameBits(ref, res); !ok {
				t.Errorf("%s workers=%d diverges from reference: %s", tc.name, w, diff)
			}
		}
	}
}

// TestDetectMatchesReference pins the parallel pairwise copy detector
// to the sequential map-based reference, with and without truth
// conditioning, at every worker count.
func TestDetectMatchesReference(t *testing.T) {
	cs := detClaims(80, 10, 7)
	truth, err := ACCU{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ignore := range []bool{false, true} {
		cd := CopyDetector{IgnoreTruth: ignore}
		ref := refDetect(cd, cs, truth, truth.SourceAccuracy)
		for _, w := range workerCounts {
			cdw := cd
			cdw.Workers = w
			got := cdw.Detect(cs, truth, truth.SourceAccuracy)
			if len(got) != len(ref) {
				t.Fatalf("ignoreTruth=%v workers=%d: %d pairs vs %d", ignore, w, len(got), len(ref))
			}
			for pair, p := range ref {
				if math.Float64bits(got[pair]) != math.Float64bits(p) {
					t.Errorf("ignoreTruth=%v workers=%d pair %v: %x vs %x",
						ignore, w, pair, math.Float64bits(got[pair]), math.Float64bits(p))
				}
			}
		}
	}
	// The engineered copier pair must stand out.
	p := CopyDetector{}.Detect(cs, truth, truth.SourceAccuracy)[SourcePair{A: "s00", B: "s01"}]
	if p < 0.9 {
		t.Errorf("copier pair s00/s01 scored %.3f, want > 0.9", p)
	}
}

// TestFuseTraceLastEqualsFuse pins the single-run trace: its final
// snapshot must be bit-identical to what Fuse returns.
func TestFuseTraceLastEqualsFuse(t *testing.T) {
	cs := detClaims(50, 9, 3)
	for _, a := range []ACCU{{}, {Popularity: true}} {
		res, err := a.Fuse(cs)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := a.FuseTrace(cs)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
		if len(trace) != res.Iterations {
			t.Errorf("%s: trace has %d entries, Fuse ran %d iterations", a.Name(), len(trace), res.Iterations)
		}
		if diff, ok := sameBits(res, trace[len(trace)-1]); !ok {
			t.Errorf("%s: trace last entry differs from Fuse: %s", a.Name(), diff)
		}
	}
}

// TestEngineWorkerParityOnNearTies re-runs the near-tie determinism
// workload across worker counts: parallelism must not reintroduce what
// the softmax fix removed.
func TestEngineWorkerParityOnNearTies(t *testing.T) {
	cs := nearTieClaims()
	for _, fuser := range []Fuser{ACCU{Workers: 1}, TruthFinder{Workers: 1}} {
		base, err := fuser.Fuse(cs)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts[1:] {
			var f Fuser
			switch fuser.(type) {
			case ACCU:
				f = ACCU{Workers: w}
			case TruthFinder:
				f = TruthFinder{Workers: w}
			}
			res, err := f.Fuse(cs)
			if err != nil {
				t.Fatal(err)
			}
			if diff, ok := sameBits(base, res); !ok {
				t.Errorf("%s workers=%d vs 1: %s", fuser.Name(), w, diff)
			}
		}
	}
}

// BenchmarkEngineVsReference compares the interned flat-slice EM
// against the pre-engine map-of-maps implementation on the same
// workload — the sequential win of the rewrite, independent of worker
// count.
func BenchmarkEngineVsReference(b *testing.B) {
	cs := detClaims(2000, 30, 11)
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (ACCU{}).Fuse(cs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refACCU(ACCU{}, cs)
		}
	})
}
