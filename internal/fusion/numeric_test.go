package fusion

import (
	"math"
	"testing"

	"repro/internal/data"
)

func numClaims(t *testing.T, vals map[string]float64) (*data.ClaimSet, data.Item) {
	t.Helper()
	cs := data.NewClaimSet()
	it := data.Item{Entity: "e", Attr: "weight"}
	for src, v := range vals {
		cs.Add(data.Claim{Item: it, Source: src, Value: data.Number(v)})
	}
	return cs, it
}

func TestNumericMedianRobustToOutliers(t *testing.T) {
	cs, it := numClaims(t, map[string]float64{
		"s1": 100, "s2": 101, "s3": 99, "s4": 100.5, "s5": 9999, // outlier
	})
	res, err := NumericFusion{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Values[it].Num
	if got < 99 || got > 101 {
		t.Errorf("median estimate = %f, outlier leaked", got)
	}
	// Mean is pulled by the outlier — that is the point of the contrast.
	mean, err := NumericFusion{Method: "mean"}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Values[it].Num < 1000 {
		t.Errorf("mean = %f, expected outlier pull", mean.Values[it].Num)
	}
}

func TestNumericWeighted(t *testing.T) {
	cs, it := numClaims(t, map[string]float64{"good": 100, "bad": 200})
	res, err := NumericFusion{
		Method:  "weighted",
		Weights: map[string]float64{"good": 9, "bad": 1},
	}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[it].Num; math.Abs(got-110) > 1e-9 {
		t.Errorf("weighted mean = %f, want 110", got)
	}
}

func TestNumericConfidenceReflectsSpread(t *testing.T) {
	tight, it := numClaims(t, map[string]float64{"a": 100, "b": 100, "c": 100})
	loose, _ := numClaims(t, map[string]float64{"a": 50, "b": 100, "c": 180})
	rTight, _ := NumericFusion{}.Fuse(tight)
	rLoose, _ := NumericFusion{}.Fuse(loose)
	if rTight.Confidence[it] <= rLoose.Confidence[it] {
		t.Errorf("tight claims confidence %f must exceed loose %f",
			rTight.Confidence[it], rLoose.Confidence[it])
	}
	if rTight.Confidence[it] < 0.99 {
		t.Errorf("unanimous claims confidence = %f", rTight.Confidence[it])
	}
}

func TestNumericFallsBackForStrings(t *testing.T) {
	cs := data.NewClaimSet()
	it := data.Item{Entity: "e", Attr: "color"}
	cs.Add(data.Claim{Item: it, Source: "s1", Value: data.String("red")})
	cs.Add(data.Claim{Item: it, Source: "s2", Value: data.String("red")})
	cs.Add(data.Claim{Item: it, Source: "s3", Value: data.String("blue")})
	res, err := NumericFusion{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Values[it].Equal(data.String("red")) {
		t.Errorf("string item must fall back to vote, got %v", res.Values[it])
	}
}

func TestNumericMixedItems(t *testing.T) {
	cs := data.NewClaimSet()
	num := data.Item{Entity: "e", Attr: "weight"}
	str := data.Item{Entity: "e", Attr: "color"}
	cs.Add(data.Claim{Item: num, Source: "s1", Value: data.Number(10)})
	cs.Add(data.Claim{Item: num, Source: "s2", Value: data.Number(12)})
	cs.Add(data.Claim{Item: str, Source: "s1", Value: data.String("red")})
	cs.Add(data.Claim{Item: str, Source: "s2", Value: data.String("red")})
	res, err := NumericFusion{}.Fuse(cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[num].Kind != data.KindNumber || res.Values[str].Kind != data.KindString {
		t.Errorf("mixed items fused to %v / %v", res.Values[num], res.Values[str])
	}
	if res.Values[num].Num != 11 {
		t.Errorf("even-count median = %f, want 11", res.Values[num].Num)
	}
}
