package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/data"
)

// ClaimConfig controls direct claim-set generation for fusion
// experiments (E1, E2, E10, E11): a set of data items with known truth,
// a population of independent sources with drawn accuracies, and an
// optional population of copiers that replicate a target source's
// claims — mistakes included.
type ClaimConfig struct {
	Seed      int64
	NumItems  int
	NumValues int // size of each item's value domain (>= 2); default 10

	NumSources  int
	MinAccuracy float64 // default 0.5
	MaxAccuracy float64 // default 0.95
	Coverage    float64 // per-source probability of claiming each item; default 0.8

	// NumCopiers sources are appended that copy CopyRate of their claims
	// from a designated independent source and answer independently
	// otherwise (with accuracy drawn like any source).
	NumCopiers int
	CopyRate   float64 // default 0.9
	// CopierSpread: number of distinct targets the copiers share.
	// Default 1 (all copiers copy the same source — worst case for
	// naive voting).
	CopierSpread int
	// CopierMinAccuracy/CopierMaxAccuracy bound the copiers' OWN
	// accuracy on the claims they answer independently. Default: the
	// general Min/MaxAccuracy range. Setting these apart from the
	// independents creates the shared-vs-own accuracy discrepancy that
	// copy-direction inference exploits.
	CopierMinAccuracy float64
	CopierMaxAccuracy float64

	// NumDeceptive sources are appended that lie systematically: for
	// DeceptionRate of the items they cover they claim a fixed wrong
	// value (the same one every time — a deliberate misinformation
	// campaign, the tutorial's "deceit" face of Veracity), answering
	// truthfully otherwise. Their effective accuracy is far below
	// random guessing, which accuracy-aware fusers can exploit by
	// *inverting* their testimony.
	NumDeceptive  int
	DeceptionRate float64 // default 0.95
}

func (c *ClaimConfig) defaults() {
	if c.NumItems <= 0 {
		c.NumItems = 100
	}
	if c.NumValues < 2 {
		c.NumValues = 10
	}
	if c.NumSources <= 0 {
		c.NumSources = 10
	}
	if c.MinAccuracy <= 0 {
		c.MinAccuracy = 0.5
	}
	if c.MaxAccuracy <= 0 {
		c.MaxAccuracy = 0.95
	}
	if c.Coverage <= 0 {
		c.Coverage = 0.8
	}
	if c.CopyRate <= 0 {
		c.CopyRate = 0.9
	}
	if c.CopierSpread <= 0 {
		c.CopierSpread = 1
	}
	if c.DeceptionRate <= 0 {
		c.DeceptionRate = 0.95
	}
	if c.CopierMinAccuracy <= 0 {
		c.CopierMinAccuracy = c.MinAccuracy
	}
	if c.CopierMaxAccuracy <= 0 {
		c.CopierMaxAccuracy = c.MaxAccuracy
	}
}

// ClaimWorld is a generated claim set plus its ground truth metadata.
type ClaimWorld struct {
	Claims *data.ClaimSet
	// TrueAccuracy per source ID (independent and copier alike).
	TrueAccuracy map[string]float64
	// CopiesFrom maps copier source ID → target source ID.
	CopiesFrom map[string]string
	Items      []data.Item
}

// BuildClaims generates the claim world.
func BuildClaims(cfg ClaimConfig) *ClaimWorld {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	cw := &ClaimWorld{
		Claims:       data.NewClaimSet(),
		TrueAccuracy: map[string]float64{},
		CopiesFrom:   map[string]string{},
	}

	// Items with truth at value index 0; wrong values are indices 1..n-1.
	type itemSpec struct {
		item  data.Item
		truth data.Value
		wrong []data.Value
	}
	items := make([]itemSpec, cfg.NumItems)
	for i := range items {
		it := data.Item{Entity: fmt.Sprintf("e%04d", i), Attr: "value"}
		truth := data.String(fmt.Sprintf("v%d-0", i))
		wrong := make([]data.Value, cfg.NumValues-1)
		for j := range wrong {
			wrong[j] = data.String(fmt.Sprintf("v%d-%d", i, j+1))
		}
		items[i] = itemSpec{item: it, truth: truth, wrong: wrong}
		cw.Claims.SetTruth(it, truth)
		cw.Items = append(cw.Items, it)
	}

	// Independent sources.
	independent := make([]string, cfg.NumSources)
	claimsBySrc := map[string]map[data.Item]data.Value{}
	for s := 0; s < cfg.NumSources; s++ {
		id := fmt.Sprintf("src-%03d", s)
		independent[s] = id
		acc := cfg.MinAccuracy + r.Float64()*(cfg.MaxAccuracy-cfg.MinAccuracy)
		cw.TrueAccuracy[id] = acc
		claimsBySrc[id] = map[data.Item]data.Value{}
		for _, spec := range items {
			if r.Float64() >= cfg.Coverage {
				continue
			}
			v := spec.truth
			if r.Float64() >= acc {
				v = spec.wrong[r.Intn(len(spec.wrong))]
			}
			claimsBySrc[id][spec.item] = v
		}
	}

	// Copiers: replicate a target's claim with probability CopyRate,
	// else answer independently.
	targets := make([]string, cfg.CopierSpread)
	for i := range targets {
		targets[i] = independent[r.Intn(len(independent))]
	}
	for c := 0; c < cfg.NumCopiers; c++ {
		id := fmt.Sprintf("cop-%03d", c)
		target := targets[c%len(targets)]
		cw.CopiesFrom[id] = target
		acc := cfg.CopierMinAccuracy + r.Float64()*(cfg.CopierMaxAccuracy-cfg.CopierMinAccuracy)
		cw.TrueAccuracy[id] = acc
		claimsBySrc[id] = map[data.Item]data.Value{}
		for _, spec := range items {
			tv, covered := claimsBySrc[target][spec.item]
			if covered && r.Float64() < cfg.CopyRate {
				claimsBySrc[id][spec.item] = tv
				continue
			}
			if r.Float64() >= cfg.Coverage {
				continue
			}
			v := spec.truth
			if r.Float64() >= acc {
				v = spec.wrong[r.Intn(len(spec.wrong))]
			}
			claimsBySrc[id][spec.item] = v
		}
	}

	// Deceptive sources: pick one fixed wrong value per item and push it
	// relentlessly.
	for dcp := 0; dcp < cfg.NumDeceptive; dcp++ {
		id := fmt.Sprintf("lie-%03d", dcp)
		cw.TrueAccuracy[id] = 1 - cfg.DeceptionRate // truthful remainder
		claimsBySrc[id] = map[data.Item]data.Value{}
		for _, spec := range items {
			if r.Float64() >= cfg.Coverage {
				continue
			}
			if r.Float64() < cfg.DeceptionRate {
				// The campaign's fixed falsehood for this item: all
				// deceptive sources push the same one (a coordinated
				// misinformation campaign).
				claimsBySrc[id][spec.item] = spec.wrong[0]
			} else {
				claimsBySrc[id][spec.item] = spec.truth
			}
		}
	}

	// Emit claims in deterministic order: sources sorted, items in
	// generation order.
	srcIDs := make([]string, 0, len(claimsBySrc))
	for id := range claimsBySrc {
		srcIDs = append(srcIDs, id)
	}
	sort.Strings(srcIDs)
	for _, id := range srcIDs {
		for _, spec := range items {
			if v, ok := claimsBySrc[id][spec.item]; ok {
				cw.Claims.Add(data.Claim{Item: spec.item, Source: id, Value: v})
			}
		}
	}
	return cw
}
