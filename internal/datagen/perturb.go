package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// Dirt controls record-level perturbation, modelling extraction noise
// and source formatting idiosyncrasies (the Variety dimension at the
// instance level).
type Dirt struct {
	TypoRate     float64 // per-string probability of one character typo
	TokenDrop    float64 // probability of dropping one token from titles
	TokenSwap    float64 // probability of swapping two adjacent tokens
	AbbrevRate   float64 // probability of abbreviating a token
	MissingRate  float64 // per-field probability of omitting the value
	NumberJitter float64 // relative jitter applied to numeric values
	CaseNoise    float64 // probability of random casing on strings
}

// DirtLevel returns a preset: 0 = clean, 1 = light, 2 = moderate,
// 3 = heavy. Levels beyond 3 are clamped.
func DirtLevel(level int) Dirt {
	switch {
	case level <= 0:
		return Dirt{}
	case level == 1:
		return Dirt{TypoRate: 0.05, TokenDrop: 0.05, TokenSwap: 0.05,
			AbbrevRate: 0.05, MissingRate: 0.05, NumberJitter: 0.01, CaseNoise: 0.2}
	case level == 2:
		return Dirt{TypoRate: 0.15, TokenDrop: 0.12, TokenSwap: 0.10,
			AbbrevRate: 0.12, MissingRate: 0.15, NumberJitter: 0.03, CaseNoise: 0.4}
	default:
		return Dirt{TypoRate: 0.30, TokenDrop: 0.25, TokenSwap: 0.20,
			AbbrevRate: 0.25, MissingRate: 0.30, NumberJitter: 0.08, CaseNoise: 0.6}
	}
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz"

// typo applies one random character edit (substitute, delete, insert,
// transpose) to s.
func typo(r *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return s
	}
	i := r.Intn(len(runes))
	switch r.Intn(4) {
	case 0: // substitute
		runes[i] = rune(typoAlphabet[r.Intn(len(typoAlphabet))])
	case 1: // delete
		runes = append(runes[:i], runes[i+1:]...)
	case 2: // insert
		c := rune(typoAlphabet[r.Intn(len(typoAlphabet))])
		runes = append(runes[:i], append([]rune{c}, runes[i:]...)...)
	default: // transpose
		if i+1 < len(runes) {
			runes[i], runes[i+1] = runes[i+1], runes[i]
		}
	}
	return string(runes)
}

// PerturbString applies the Dirt's string noise to s.
func (d Dirt) PerturbString(r *rand.Rand, s string) string {
	tokens := tokenize.Words(s)
	if len(tokens) == 0 {
		return s
	}
	if len(tokens) > 1 && r.Float64() < d.TokenDrop {
		i := r.Intn(len(tokens))
		tokens = append(tokens[:i], tokens[i+1:]...)
	}
	if len(tokens) > 1 && r.Float64() < d.TokenSwap {
		i := r.Intn(len(tokens) - 1)
		tokens[i], tokens[i+1] = tokens[i+1], tokens[i]
	}
	for i, tok := range tokens {
		if len(tok) > 3 && r.Float64() < d.AbbrevRate {
			tokens[i] = tok[:3] // crude abbreviation: prefix truncation
			continue
		}
		if r.Float64() < d.TypoRate {
			tokens[i] = typo(r, tok)
		}
	}
	out := strings.Join(tokens, " ")
	if r.Float64() < d.CaseNoise {
		out = strings.ToUpper(out[:1]) + out[1:]
	}
	return out
}

// PerturbValue applies kind-appropriate noise: strings get PerturbString,
// numbers get relative jitter, other kinds pass through.
func (d Dirt) PerturbValue(r *rand.Rand, v data.Value) data.Value {
	switch v.Kind {
	case data.KindString:
		return data.String(d.PerturbString(r, v.Str))
	case data.KindNumber:
		if d.NumberJitter > 0 && r.Float64() < 0.5 {
			jit := 1 + (r.Float64()*2-1)*d.NumberJitter
			return data.Number(roundTo(v.Num*jit, 2))
		}
		return v
	default:
		return v
	}
}

func roundTo(x float64, digits int) float64 {
	p := 1.0
	for i := 0; i < digits; i++ {
		p *= 10
	}
	return float64(int64(x*p+0.5)) / p
}

// SchemaDialect renames canonical attributes and rescales numeric units
// — the Variety dimension at the schema level. Each source gets its own
// dialect.
type SchemaDialect struct {
	// Rename maps canonical attribute name → source-local name.
	Rename map[string]string
	// UnitScale maps canonical attribute name → multiplicative factor
	// applied to numeric values (e.g. grams → ounces).
	UnitScale map[string]float64
}

// attrSynonyms provides per-suffix local-name pools for dialects.
var attrSynonyms = map[string][]string{
	"brand":           {"brand", "manufacturer", "maker", "brand name", "mfr"},
	"color":           {"color", "colour", "finish", "shade"},
	"weight_g":        {"weight", "item weight", "wt", "weight grams", "net weight"},
	"price_usd":       {"price", "list price", "cost", "msrp", "price usd"},
	"material":        {"material", "build material", "construction", "body material"},
	"warranty_months": {"warranty", "warranty period", "guarantee", "warranty months"},
	"width_cm":        {"width", "item width", "w", "width cm"},
	"battery_mah":     {"battery", "battery capacity", "batt mah", "battery size"},
	"wireless":        {"wireless", "wifi", "cordless", "is wireless"},
	"screen_in":       {"screen size", "display", "screen", "display size"},
}

// unitScales lists plausible per-suffix unit conversions a source might
// adopt (value 1 means canonical units).
var unitScales = map[string][]float64{
	"weight_g":  {1, 1, 0.001 /*kg*/, 0.03527 /*oz*/},
	"width_cm":  {1, 1, 0.3937 /*in*/, 10 /*mm*/},
	"screen_in": {1, 1, 2.54 /*cm*/},
}

// NewSchemaDialect draws a dialect for the given canonical attributes.
// heterogeneity in [0,1] controls how often a non-canonical local name
// or unit is chosen.
func NewSchemaDialect(r *rand.Rand, attrs []string, heterogeneity float64) SchemaDialect {
	d := SchemaDialect{Rename: map[string]string{}, UnitScale: map[string]float64{}}
	for _, a := range attrs {
		suffix := a
		if i := strings.Index(a, "_"); i >= 0 {
			suffix = a[i+1:]
		}
		pool := attrSynonyms[suffix]
		if len(pool) == 0 || r.Float64() >= heterogeneity {
			d.Rename[a] = a
		} else {
			d.Rename[a] = pool[r.Intn(len(pool))]
		}
		if scales := unitScales[suffix]; len(scales) > 0 && r.Float64() < heterogeneity {
			d.UnitScale[a] = scales[r.Intn(len(scales))]
		} else {
			d.UnitScale[a] = 1
		}
	}
	return d
}

// Apply maps a canonical (attr, value) through the dialect, returning
// the source-local attribute name and value.
func (d SchemaDialect) Apply(attr string, v data.Value) (string, data.Value) {
	name, ok := d.Rename[attr]
	if !ok {
		name = attr
	}
	if v.Kind == data.KindNumber {
		if s := d.UnitScale[attr]; s != 0 && s != 1 {
			v = data.Number(roundTo(v.Num*s, 3))
		}
	}
	return name, v
}

// wrongValueFor draws a plausible-but-wrong value of the same kind as
// the truth, distinct from it. domain supplies alternative true values
// observed for the attribute (other entities' values), making errors
// realistic confusions rather than random noise.
func wrongValueFor(r *rand.Rand, truth data.Value, domain []data.Value) data.Value {
	for attempt := 0; attempt < 8; attempt++ {
		if len(domain) > 0 {
			cand := domain[r.Intn(len(domain))]
			if !cand.Equal(truth) && !cand.IsNull() {
				return cand
			}
		}
	}
	// Fabricate when the domain is degenerate.
	switch truth.Kind {
	case data.KindNumber:
		delta := 1 + float64(r.Intn(9))
		if r.Intn(2) == 0 {
			delta = -delta
		}
		return data.Number(truth.Num + delta)
	case data.KindBool:
		return data.Bool(!truth.Bool)
	case data.KindString:
		return data.String(truth.Str + fmt.Sprintf(" %c", 'a'+rune(r.Intn(26))))
	default:
		return data.String("unknown")
	}
}
