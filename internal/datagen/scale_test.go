package datagen

import (
	"sort"
	"testing"

	"repro/internal/blocking"
)

func TestScaleRecordsDeterministicAndShaped(t *testing.T) {
	cfg := ScaleConfig{Seed: 7, NumRecords: 1000, GroupSize: 8}
	a, b := ScaleRecords(cfg), ScaleRecords(cfg)
	if len(a) != 1000 {
		t.Fatalf("got %d records, want 1000", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].String() != b[i].String() {
			t.Fatalf("record %d differs between identical-config runs", i)
		}
	}
	if c := ScaleRecords(ScaleConfig{Seed: 8, NumRecords: 1000, GroupSize: 8}); c[0].String() == a[0].String() && c[5].String() == a[5].String() {
		t.Fatal("different seeds produced identical records")
	}
	// IDs must not arrive in sorted order (the corpus exercises the
	// engine's rank/ID-order distinction).
	ids := make([]string, len(a))
	for i, r := range a {
		ids[i] = r.ID
	}
	if sort.StringsAreSorted(ids) {
		t.Fatal("record IDs are sorted in input order")
	}
	// After purging the vocabulary blocks, pairs come from the unique
	// group tokens alone: NumRecords/GroupSize groups of C(8,2) pairs.
	idx := blocking.NewEngine(a, 2).Blocks(blocking.TokenKey("title")).Purge(cfg.GroupSize)
	want := (1000 / 8) * (8 * 7 / 2)
	if got := idx.CandidateSet().Len(); got != want {
		t.Fatalf("purged pair count = %d, want %d", got, want)
	}
}
