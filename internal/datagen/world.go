// Package datagen generates the synthetic "web of sources" that stands
// in for the proprietary web corpora used by the works the Big Data
// Integration tutorial surveys. A generated world has a ground-truth
// entity universe (products with typed attributes, Zipf popularity),
// a population of sources (head and tail, with per-source accuracy,
// coverage, schema dialect, format dialect and optional copying), and
// emits datasets, claim sets and temporal snapshot sequences. All
// randomness flows from an explicit seed, so every experiment is
// reproducible bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/data"
)

// Entity is a ground-truth real-world entity: a product with a stable
// identifier, a category, a display name and canonical attribute values.
type Entity struct {
	ID         string
	Category   string
	Name       string // canonical display title
	Identifier string // manufacturer-style product id (UPC-like)
	Values     map[string]data.Value
	Popularity float64 // Zipf weight; higher = appears in more sources
}

// World is a generated entity universe plus its attribute schema.
type World struct {
	Entities   []*Entity
	Categories []string
	// Attrs maps category → canonical attribute names.
	Attrs map[string][]string
}

// WorldConfig controls universe generation.
type WorldConfig struct {
	Seed         int64
	NumEntities  int
	Categories   []string // default: camera, phone, tv
	AttrsPerCat  int      // canonical attributes per category (default 6)
	ZipfExponent float64  // popularity skew (default 1.0)
}

func (c *WorldConfig) defaults() {
	if len(c.Categories) == 0 {
		c.Categories = []string{"camera", "phone", "tv"}
	}
	if c.AttrsPerCat <= 0 {
		c.AttrsPerCat = 6
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.0
	}
	if c.NumEntities <= 0 {
		c.NumEntities = 100
	}
}

var (
	brandVocab = []string{"acme", "zenix", "orion", "nova", "kestrel", "atlas",
		"lumen", "vertex", "solaris", "quanta", "helio", "boreal"}
	seriesVocab = []string{"pro", "max", "ultra", "lite", "plus", "neo",
		"prime", "air", "mini", "core"}
	colorVocab    = []string{"black", "white", "silver", "red", "blue", "gray"}
	materialVocab = []string{"aluminum", "plastic", "steel", "glass", "carbon"}
)

// attrSpec describes how one canonical attribute draws its values.
type attrSpec struct {
	name string
	gen  func(r *rand.Rand) data.Value
}

// categoryAttrs builds the attribute specs for a category. The first
// AttrsPerCat specs are used; the list mixes categorical strings and
// numeric measures so every value kind is exercised downstream.
func categoryAttrs(cat string, n int, r *rand.Rand) []attrSpec {
	specs := []attrSpec{
		{"brand", func(r *rand.Rand) data.Value { return data.String(brandVocab[r.Intn(len(brandVocab))]) }},
		{"color", func(r *rand.Rand) data.Value { return data.String(colorVocab[r.Intn(len(colorVocab))]) }},
		{"weight_g", func(r *rand.Rand) data.Value { return data.Number(float64(100 + r.Intn(3000))) }},
		{"price_usd", func(r *rand.Rand) data.Value { return data.Number(float64(50 + r.Intn(2000))) }},
		{"material", func(r *rand.Rand) data.Value { return data.String(materialVocab[r.Intn(len(materialVocab))]) }},
		{"warranty_months", func(r *rand.Rand) data.Value { return data.Number(float64((1 + r.Intn(4)) * 12)) }},
		{"width_cm", func(r *rand.Rand) data.Value {
			return data.Number(math.Round(float64(5+r.Intn(120)) + r.Float64()*0.9))
		}},
		{"battery_mah", func(r *rand.Rand) data.Value { return data.Number(float64(1000 + 500*r.Intn(9))) }},
		{"wireless", func(r *rand.Rand) data.Value { return data.Bool(r.Intn(2) == 0) }},
		{"screen_in", func(r *rand.Rand) data.Value { return data.Number(float64(4 + r.Intn(60))) }},
	}
	// Prefix attribute names with the category so that categories have
	// disjoint canonical schemas, like real vertical domains do.
	out := make([]attrSpec, 0, n)
	for i := 0; i < n && i < len(specs); i++ {
		s := specs[i]
		out = append(out, attrSpec{name: cat + "_" + s.name, gen: s.gen})
	}
	return out
}

// NewWorld generates an entity universe from the config.
func NewWorld(cfg WorldConfig) *World {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Categories: append([]string(nil), cfg.Categories...),
		Attrs:      map[string][]string{},
	}
	specsByCat := map[string][]attrSpec{}
	for _, cat := range w.Categories {
		specs := categoryAttrs(cat, cfg.AttrsPerCat, r)
		specsByCat[cat] = specs
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.name
		}
		w.Attrs[cat] = names
	}
	for i := 0; i < cfg.NumEntities; i++ {
		cat := w.Categories[i%len(w.Categories)]
		e := &Entity{
			ID:       fmt.Sprintf("ent-%04d", i),
			Category: cat,
			Values:   map[string]data.Value{},
			// rank-based Zipf popularity
			Popularity: 1 / math.Pow(float64(i/len(w.Categories)+1), cfg.ZipfExponent),
		}
		brand := brandVocab[r.Intn(len(brandVocab))]
		series := seriesVocab[r.Intn(len(seriesVocab))]
		model := 100 + r.Intn(900)
		e.Name = fmt.Sprintf("%s %s %s %d", brand, cat, series, model)
		e.Identifier = fmt.Sprintf("%s-%s%d-%04d", strings.ToUpper(brand[:3]), strings.ToUpper(series[:2]), model, r.Intn(10000))
		for _, s := range specsByCat[cat] {
			e.Values[s.name] = s.gen(r)
		}
		// Brand attribute should agree with the name for realism.
		if _, ok := e.Values[cat+"_brand"]; ok {
			e.Values[cat+"_brand"] = data.String(brand)
		}
		w.Entities = append(w.Entities, e)
	}
	return w
}

// EntitiesByCategory returns the entities of one category in ID order.
func (w *World) EntitiesByCategory(cat string) []*Entity {
	var out []*Entity
	for _, e := range w.Entities {
		if e.Category == cat {
			out = append(out, e)
		}
	}
	return out
}
