package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
)

// SourceConfig controls the population of sources laid over a World.
type SourceConfig struct {
	Seed       int64
	NumSources int

	// HeadFraction of sources are "head" sources with large coverage;
	// the rest are tail sources covering few entities. Default 0.2.
	HeadFraction float64
	// HeadCoverage / TailCoverage are the expected fractions of the
	// entity universe a head/tail source publishes. Defaults 0.6 / 0.05.
	HeadCoverage float64
	TailCoverage float64

	// MinAccuracy..MaxAccuracy bounds the per-source probability of
	// publishing the true value for an attribute. Defaults 0.55..0.95.
	MinAccuracy float64
	MaxAccuracy float64

	// Heterogeneity in [0,1]: how aggressively sources rename attributes
	// and change units. Default 0.5.
	Heterogeneity float64

	// Dirt level 0..3 for record noise. See DirtLevel.
	DirtLevel int

	// IdentifierRate is the probability a source publishes the
	// manufacturer identifier field ("pid"). Default 0.8.
	IdentifierRate float64

	// CopierFraction of sources copy from a randomly chosen independent
	// source instead of observing the world, with CopyRate probability
	// per record. Defaults 0 / 0.9.
	CopierFraction float64
	CopyRate       float64

	// MissingAttrRate is the probability a source simply does not carry
	// an attribute at all (tail attributes live in few sources).
	MissingAttrRate float64
}

func (c *SourceConfig) defaults() {
	if c.NumSources <= 0 {
		c.NumSources = 20
	}
	if c.HeadFraction <= 0 {
		c.HeadFraction = 0.2
	}
	if c.HeadCoverage <= 0 {
		c.HeadCoverage = 0.6
	}
	if c.TailCoverage <= 0 {
		c.TailCoverage = 0.05
	}
	if c.MinAccuracy <= 0 {
		c.MinAccuracy = 0.55
	}
	if c.MaxAccuracy <= 0 {
		c.MaxAccuracy = 0.95
	}
	if c.Heterogeneity < 0 {
		c.Heterogeneity = 0
	} else if c.Heterogeneity == 0 {
		c.Heterogeneity = 0.5
	}
	if c.IdentifierRate == 0 {
		c.IdentifierRate = 0.8
	}
	if c.CopyRate == 0 {
		c.CopyRate = 0.9
	}
	if c.MissingAttrRate < 0 {
		c.MissingAttrRate = 0
	}
}

// GenSource is a generated source profile (generator-internal view; the
// pipeline only sees the resulting data.Source and records).
type GenSource struct {
	ID         string
	Head       bool
	Accuracy   float64
	Coverage   float64
	Dialect    SchemaDialect
	CopiesFrom string // copier target source ID, "" if independent
	PublishID  bool   // whether the source publishes the "pid" field
}

// Web is a generated world + sources + emitted dataset.
type Web struct {
	World   *World
	Sources []*GenSource
	Dataset *data.Dataset
}

// worldAttrs returns every canonical attribute across categories, sorted.
func worldAttrs(w *World) []string {
	var all []string
	for _, cat := range w.Categories {
		all = append(all, w.Attrs[cat]...)
	}
	sort.Strings(all)
	return all
}

// BuildWeb lays a source population over the world and emits the full
// dataset: every source publishes one record per covered entity,
// filtered through its accuracy, schema dialect and dirt.
func BuildWeb(w *World, cfg SourceConfig) *Web {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	web := &Web{World: w, Dataset: data.NewDataset()}

	allAttrs := worldAttrs(w)
	// Per-attribute value domains for realistic wrong values.
	domains := map[string][]data.Value{}
	for _, e := range w.Entities {
		for a, v := range e.Values {
			domains[a] = append(domains[a], v)
		}
	}

	numHead := int(math.Round(cfg.HeadFraction * float64(cfg.NumSources)))
	for i := 0; i < cfg.NumSources; i++ {
		gs := &GenSource{
			ID:        fmt.Sprintf("src-%03d", i),
			Head:      i < numHead,
			Accuracy:  cfg.MinAccuracy + r.Float64()*(cfg.MaxAccuracy-cfg.MinAccuracy),
			Dialect:   NewSchemaDialect(r, allAttrs, cfg.Heterogeneity),
			PublishID: r.Float64() < cfg.IdentifierRate,
		}
		if gs.Head {
			gs.Coverage = cfg.HeadCoverage * (0.75 + r.Float64()*0.5)
		} else {
			gs.Coverage = cfg.TailCoverage * (0.5 + r.Float64())
		}
		if gs.Coverage > 1 {
			gs.Coverage = 1
		}
		web.Sources = append(web.Sources, gs)
	}
	// Copiers copy from earlier (independent) sources only, keeping the
	// copy graph acyclic.
	numCopiers := int(math.Round(cfg.CopierFraction * float64(cfg.NumSources)))
	for i := 0; i < numCopiers && cfg.NumSources > 1; i++ {
		idx := cfg.NumSources - 1 - i // tail sources become copiers
		if idx <= 0 {
			break
		}
		target := r.Intn(idx)
		web.Sources[idx].CopiesFrom = web.Sources[target].ID
	}

	// Register sources.
	for _, gs := range web.Sources {
		src := &data.Source{ID: gs.ID, Name: gs.ID, TrueAccuracy: gs.Accuracy}
		if gs.CopiesFrom != "" {
			src.CopiesFrom = []string{gs.CopiesFrom}
		}
		if err := web.Dataset.AddSource(src); err != nil {
			panic(err) // generated IDs are unique by construction
		}
	}

	dirt := DirtLevel(cfg.DirtLevel)
	// Per-source attribute carriage: which canonical attributes the
	// source publishes at all.
	carried := map[string]map[string]bool{}
	for _, gs := range web.Sources {
		m := map[string]bool{}
		for _, a := range allAttrs {
			m[a] = r.Float64() >= cfg.MissingAttrRate
		}
		carried[gs.ID] = m
	}

	// Emission: independent sources observe the world; copiers copy
	// their target's published record when they have one, else observe.
	// We therefore emit in source order (copiers come after targets).
	published := map[string]map[string]*data.Record{} // srcID → entID → record
	recSeq := 0
	for _, gs := range web.Sources {
		published[gs.ID] = map[string]*data.Record{}
		for _, e := range w.Entities {
			// Popular entities are more likely to be covered by any
			// source: scale coverage by (popularity rank factor).
			p := gs.Coverage * (0.5 + e.Popularity)
			if p > 1 {
				p = 1
			}
			if r.Float64() >= p {
				continue
			}
			recID := fmt.Sprintf("r-%05d", recSeq)
			recSeq++
			var rec *data.Record
			if gs.CopiesFrom != "" {
				if orig, ok := published[gs.CopiesFrom][e.ID]; ok && r.Float64() < cfg.CopyRate {
					rec = copyRecord(r, recID, gs, orig, dirt)
				}
			}
			if rec == nil {
				rec = observeRecord(r, recID, gs, e, domains, carried[gs.ID], dirt)
			}
			published[gs.ID][e.ID] = rec
			if err := web.Dataset.AddRecord(rec); err != nil {
				panic(err)
			}
		}
	}
	return web
}

// observeRecord emits a source's independent observation of an entity.
func observeRecord(r *rand.Rand, recID string, gs *GenSource, e *Entity,
	domains map[string][]data.Value, carried map[string]bool, dirt Dirt) *data.Record {
	rec := data.NewRecord(recID, gs.ID)
	rec.EntityID = e.ID
	rec.Set("title", data.String(dirt.PerturbString(r, e.Name)))
	if gs.PublishID {
		rec.Set("pid", data.String(e.Identifier))
	}
	attrs := make([]string, 0, len(e.Values))
	for a := range e.Values {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		truth := e.Values[a]
		if !carried[a] {
			continue
		}
		if r.Float64() < dirt.MissingRate {
			continue
		}
		v := truth
		if r.Float64() >= gs.Accuracy {
			v = wrongValueFor(r, truth, domains[a])
		}
		name, dialectVal := gs.Dialect.Apply(a, v)
		rec.Set(name, dirt.PerturbValue(r, dialectVal))
	}
	return rec
}

// copyRecord emits a copier's version of an already-published record:
// same values (including the target's mistakes), re-expressed in the
// copier's dialect is skipped — copiers republish nearly verbatim with only
// light formatting noise, which is what makes copying detectable.
func copyRecord(r *rand.Rand, recID string, gs *GenSource, orig *data.Record, dirt Dirt) *data.Record {
	rec := data.NewRecord(recID, gs.ID)
	rec.EntityID = orig.EntityID
	for a, v := range orig.Fields {
		if a == "title" && v.Kind == data.KindString {
			rec.Set(a, data.String(dirt.PerturbString(r, v.Str)))
			continue
		}
		rec.Set(a, v)
	}
	if !gs.PublishID {
		rec.Set("pid", data.Null())
	}
	return rec
}
