package datagen

// Lean record generation for the 10M-record scale-out experiments. The
// full BuildWeb world carries per-source dialects, typed attribute
// maps and claim machinery — hundreds of bytes per record beyond what
// pair-generation benchmarking needs. ScaleRecords emits records with
// a single shared-title field shaped so token blocking yields a
// controlled pair count: every group of GroupSize records shares one
// unique group token (the surviving block), plus brand/series tokens
// whose giant blocks a Purge pass removes. Titles are interned one
// string per group, so a 10M-record corpus stays a few GB.

import (
	"strconv"

	"repro/internal/data"
)

// ScaleConfig controls the lean scale corpus.
type ScaleConfig struct {
	Seed       int64
	NumRecords int
	// GroupSize is the number of records sharing one unique blocking
	// token (default 8): after purging the vocabulary blocks, raw pairs
	// ≈ NumRecords/GroupSize × C(GroupSize, 2).
	GroupSize int
	// Sources is the source-ID fan-out (default 16).
	Sources int
}

func (c *ScaleConfig) defaults() {
	if c.NumRecords <= 0 {
		c.NumRecords = 1000
	}
	if c.GroupSize < 2 {
		c.GroupSize = 8
	}
	if c.Sources <= 0 {
		c.Sources = 16
	}
}

// ScaleRecords generates the corpus. Output is a pure function of the
// config; record IDs are deliberately not in input order (the source
// prefix varies first), exercising the blocking engine's rank/ID-order
// distinction exactly like real multi-source ingestion does.
func ScaleRecords(cfg ScaleConfig) []*data.Record {
	cfg.defaults()
	lcg := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	next := func(m int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(m))
	}
	recs := make([]*data.Record, 0, cfg.NumRecords)
	groups := (cfg.NumRecords + cfg.GroupSize - 1) / cfg.GroupSize
	num := make([]byte, 0, 12)
	for g := 0; g < groups; g++ {
		brand := brandVocab[next(len(brandVocab))]
		series := seriesVocab[next(len(seriesVocab))]
		title := data.String(brand + " g" + strconv.Itoa(g) + " " + series)
		for j := 0; j < cfg.GroupSize && len(recs) < cfg.NumRecords; j++ {
			i := len(recs)
			src := next(cfg.Sources)
			num = strconv.AppendInt(num[:0], int64(i), 10)
			id := "s" + strconv.Itoa(src) + "-r" + string(num)
			recs = append(recs, data.NewRecord(id, "src"+strconv.Itoa(src)).Set("title", title))
		}
	}
	return recs
}
