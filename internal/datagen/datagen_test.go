package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestNewWorldDeterministic(t *testing.T) {
	cfg := WorldConfig{Seed: 42, NumEntities: 30}
	w1, w2 := NewWorld(cfg), NewWorld(cfg)
	if len(w1.Entities) != 30 || len(w2.Entities) != 30 {
		t.Fatalf("entity counts: %d, %d", len(w1.Entities), len(w2.Entities))
	}
	for i := range w1.Entities {
		a, b := w1.Entities[i], w2.Entities[i]
		if a.Name != b.Name || a.Identifier != b.Identifier {
			t.Fatalf("entity %d differs across identical seeds: %q vs %q", i, a.Name, b.Name)
		}
		for attr, v := range a.Values {
			if !b.Values[attr].Equal(v) {
				t.Fatalf("entity %d value %s differs", i, attr)
			}
		}
	}
}

func TestWorldStructure(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 1, NumEntities: 60, AttrsPerCat: 5})
	if len(w.Categories) != 3 {
		t.Fatalf("default categories = %v", w.Categories)
	}
	for _, cat := range w.Categories {
		if got := len(w.Attrs[cat]); got != 5 {
			t.Errorf("category %s has %d attrs, want 5", cat, got)
		}
		if len(w.EntitiesByCategory(cat)) == 0 {
			t.Errorf("category %s has no entities", cat)
		}
	}
	for _, e := range w.Entities {
		if e.Name == "" || e.Identifier == "" {
			t.Fatalf("entity %s missing name or identifier", e.ID)
		}
		if len(e.Values) != 5 {
			t.Fatalf("entity %s has %d values, want 5", e.ID, len(e.Values))
		}
	}
	// Popularity is non-increasing per category rank.
	ents := w.EntitiesByCategory("camera")
	for i := 1; i < len(ents); i++ {
		if ents[i].Popularity > ents[i-1].Popularity+1e-12 {
			t.Fatal("popularity must be non-increasing within category")
		}
	}
}

func TestBuildWebDeterministic(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 7, NumEntities: 40})
	cfg := SourceConfig{Seed: 11, NumSources: 10, DirtLevel: 2, CopierFraction: 0.3}
	d1 := BuildWeb(w, cfg).Dataset
	d2 := BuildWeb(w, cfg).Dataset
	if d1.NumRecords() != d2.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", d1.NumRecords(), d2.NumRecords())
	}
	r1, r2 := d1.Records(), d2.Records()
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Fatalf("record %d differs:\n%s\n%s", i, r1[i], r2[i])
		}
	}
}

func TestBuildWebShape(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 3, NumEntities: 50})
	web := BuildWeb(w, SourceConfig{Seed: 5, NumSources: 15, CopierFraction: 0.2})
	d := web.Dataset
	if d.NumSources() != 15 {
		t.Fatalf("sources = %d", d.NumSources())
	}
	if d.NumRecords() == 0 {
		t.Fatal("no records emitted")
	}
	// Head sources must publish more than tail sources on average.
	var headSum, headN, tailSum, tailN float64
	for _, gs := range web.Sources {
		n := float64(len(d.SourceRecords(gs.ID)))
		if gs.Head {
			headSum += n
			headN++
		} else {
			tailSum += n
			tailN++
		}
	}
	if headN == 0 || tailN == 0 {
		t.Fatal("want both head and tail sources")
	}
	if headSum/headN <= tailSum/tailN {
		t.Errorf("head avg %.1f must exceed tail avg %.1f", headSum/headN, tailSum/tailN)
	}
	// Every record has a title and ground-truth entity.
	for _, r := range d.Records() {
		if !r.Has("title") {
			t.Fatalf("record %s lacks title", r.ID)
		}
		if r.EntityID == "" {
			t.Fatalf("record %s lacks ground truth", r.ID)
		}
	}
	// Copier ground truth recorded on sources.
	copiers := 0
	for _, s := range d.Sources() {
		copiers += len(s.CopiesFrom)
	}
	if copiers != 3 {
		t.Errorf("want 3 copier edges, got %d", copiers)
	}
}

func TestDirtPerturbation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	heavy := DirtLevel(3)
	changed := 0
	for i := 0; i < 200; i++ {
		if heavy.PerturbString(r, "acme camera pro 300") != "acme camera pro 300" {
			changed++
		}
	}
	if changed < 100 {
		t.Errorf("heavy dirt changed only %d/200 strings", changed)
	}
	clean := DirtLevel(0)
	for i := 0; i < 50; i++ {
		if got := clean.PerturbString(r, "acme camera pro 300"); got != "acme camera pro 300" {
			t.Fatalf("clean dirt must not perturb, got %q", got)
		}
	}
}

func TestSchemaDialect(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	attrs := []string{"camera_brand", "camera_weight_g", "camera_price_usd"}
	seenRename, seenScale := false, false
	for i := 0; i < 50; i++ {
		d := NewSchemaDialect(r, attrs, 1.0)
		name, _ := d.Apply("camera_brand", data.String("acme"))
		if name != "camera_brand" {
			seenRename = true
		}
		_, v := d.Apply("camera_weight_g", data.Number(1000))
		if v.Num != 1000 {
			seenScale = true
		}
	}
	if !seenRename || !seenScale {
		t.Errorf("full heterogeneity must rename (%v) and rescale (%v)", seenRename, seenScale)
	}
	d0 := NewSchemaDialect(r, attrs, 0)
	for _, a := range attrs {
		if name, v := d0.Apply(a, data.Number(5)); name != a || v.Num != 5 {
			t.Errorf("zero heterogeneity must be identity, got %s %v", name, v)
		}
	}
}

func TestWrongValueForIsDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	truth := data.String("x")
	domain := []data.Value{data.String("x"), data.String("y"), data.String("z")}
	for i := 0; i < 100; i++ {
		if wrongValueFor(r, truth, domain).Equal(truth) {
			t.Fatal("wrong value equals truth")
		}
	}
	// Degenerate domain still yields a distinct value.
	if wrongValueFor(r, data.Number(5), []data.Value{data.Number(5)}).Equal(data.Number(5)) {
		t.Fatal("degenerate domain must fabricate a distinct value")
	}
	if wrongValueFor(r, data.Bool(true), nil).Bool {
		t.Fatal("bool wrong value must flip")
	}
}

func TestBuildClaims(t *testing.T) {
	cw := BuildClaims(ClaimConfig{Seed: 9, NumItems: 50, NumSources: 8, NumCopiers: 4})
	if cw.Claims.Len() == 0 {
		t.Fatal("no claims")
	}
	if len(cw.CopiesFrom) != 4 {
		t.Fatalf("copier edges = %d", len(cw.CopiesFrom))
	}
	if got := len(cw.Claims.Sources()); got != 12 {
		t.Fatalf("claiming sources = %d, want 12", got)
	}
	for _, it := range cw.Items {
		if _, ok := cw.Claims.Truth(it); !ok {
			t.Fatalf("item %v lacks truth", it)
		}
	}
	if err := cw.Claims.Validate(); err != nil {
		t.Fatal(err)
	}
	// Accuracy sanity: a source's empirical accuracy tracks its true
	// accuracy within a loose tolerance.
	for src, acc := range cw.TrueAccuracy {
		if cw.CopiesFrom[src] != "" {
			continue
		}
		claims := cw.Claims.SourceClaims(src)
		if len(claims) < 20 {
			continue
		}
		correct := 0
		for _, c := range claims {
			truth, _ := cw.Claims.Truth(c.Item)
			if c.Value.Equal(truth) {
				correct++
			}
		}
		emp := float64(correct) / float64(len(claims))
		if emp < acc-0.25 || emp > acc+0.25 {
			t.Errorf("source %s empirical accuracy %.2f far from true %.2f", src, emp, acc)
		}
	}
}

func TestCopiersShareErrors(t *testing.T) {
	cw := BuildClaims(ClaimConfig{Seed: 4, NumItems: 200, NumSources: 5,
		NumCopiers: 5, CopyRate: 1.0, MinAccuracy: 0.6, MaxAccuracy: 0.7})
	for cop, target := range cw.CopiesFrom {
		agree, total := 0, 0
		targetClaims := map[data.Item]data.Value{}
		for _, c := range cw.Claims.SourceClaims(target) {
			targetClaims[c.Item] = c.Value
		}
		for _, c := range cw.Claims.SourceClaims(cop) {
			if tv, ok := targetClaims[c.Item]; ok {
				total++
				if c.Value.Equal(tv) {
					agree++
				}
			}
		}
		if total == 0 || float64(agree)/float64(total) < 0.95 {
			t.Errorf("copier %s agrees with target on %d/%d, want ~all", cop, agree, total)
		}
	}
}

func TestBuildTemporal(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 6, NumEntities: 30})
	tw := BuildTemporal(w, SourceConfig{Seed: 2, NumSources: 6}, TemporalConfig{Seed: 8, Epochs: 4, DriftRate: 0.8})
	if len(tw.Snapshots) != 4 {
		t.Fatalf("snapshots = %d", len(tw.Snapshots))
	}
	if len(tw.Evolving) == 0 {
		t.Fatal("no evolving entities")
	}
	union := tw.Union()
	if union.NumRecords() == 0 {
		t.Fatal("union empty")
	}
	// Epoch field present and correct.
	for _, snap := range tw.Snapshots {
		for _, r := range snap.Dataset.Records() {
			if got := r.Get("epoch"); int(got.Num) != snap.Epoch {
				t.Fatalf("record %s epoch field = %v, want %d", r.ID, got, snap.Epoch)
			}
		}
	}
	// Drift actually happened: some evolving entity has differing values
	// across epochs for the same attribute within the same source.
	if !driftObserved(tw) {
		t.Error("no drift observed across epochs")
	}
}

func driftObserved(tw *TemporalWorld) bool {
	type key struct{ src, ent, attr string }
	first := map[key]data.Value{}
	for _, snap := range tw.Snapshots {
		for _, r := range snap.Dataset.Records() {
			if !tw.Evolving[r.EntityID] {
				continue
			}
			for a, v := range r.Fields {
				if a == "epoch" || a == "title" || a == "pid" {
					continue
				}
				k := key{r.SourceID, r.EntityID, a}
				if prev, ok := first[k]; ok {
					if !prev.Equal(v) {
						return true
					}
				} else {
					first[k] = v
				}
			}
		}
	}
	return false
}
