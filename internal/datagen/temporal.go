package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/data"
)

// TemporalConfig controls the velocity substrate: a sequence of epoch
// snapshots in which entities evolve (attribute drift), sources churn
// (pages appear and disappear) and new records arrive — the workload
// for incremental linkage (E7) and temporal linkage (E12).
type TemporalConfig struct {
	Seed   int64
	Epochs int // number of snapshots; default 5

	// DriftRate: per-epoch probability that an evolving entity changes
	// one attribute value (e.g. a price update or a person moving
	// affiliation). Default 0.3.
	DriftRate float64
	// EvolvingFraction of entities are subject to drift; the rest are
	// stable. Default 0.5.
	EvolvingFraction float64
	// ChurnRate: per-epoch probability that a given source/entity page
	// disappears, and equal probability mass of fresh appearances.
	// Default 0.1.
	ChurnRate float64
}

func (c *TemporalConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.DriftRate <= 0 {
		c.DriftRate = 0.3
	}
	if c.EvolvingFraction <= 0 {
		c.EvolvingFraction = 0.5
	}
	if c.ChurnRate <= 0 {
		c.ChurnRate = 0.1
	}
}

// Snapshot is one epoch's view of the web: the records visible at that
// epoch. Records carry an "epoch" numeric field.
type Snapshot struct {
	Epoch   int
	Dataset *data.Dataset
}

// TemporalWorld is an evolving world: per-epoch snapshots plus the
// drift log for evaluation.
type TemporalWorld struct {
	Snapshots []Snapshot
	// Evolving lists the entity IDs subject to drift.
	Evolving map[string]bool
}

// BuildTemporal evolves a generated web over cfg.Epochs epochs. Each
// snapshot is an independent Dataset (records get epoch-suffixed IDs);
// evolving entities change drifting attribute values between epochs, so
// late-epoch records of an evolving entity disagree with early ones.
func BuildTemporal(w *World, scfg SourceConfig, cfg TemporalConfig) *TemporalWorld {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	tw := &TemporalWorld{Evolving: map[string]bool{}}

	for i, e := range w.Entities {
		// Deterministic choice independent of map order.
		if float64(i%100)/100 < cfg.EvolvingFraction {
			tw.Evolving[e.ID] = true
		}
	}

	// The evolving state: a deep copy of entity values that drifts.
	state := map[string]map[string]data.Value{}
	for _, e := range w.Entities {
		vals := make(map[string]data.Value, len(e.Values))
		for a, v := range e.Values {
			vals[a] = v
		}
		state[e.ID] = vals
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch > 0 {
			driftEntities(r, w, state, tw.Evolving, cfg.DriftRate)
		}
		// Install the drifted values into a cloned world and re-emit.
		wc := *w
		wc.Entities = make([]*Entity, len(w.Entities))
		for i, e := range w.Entities {
			ec := *e
			ec.Values = state[e.ID]
			wc.Entities[i] = &ec
		}
		ecfg := scfg
		ecfg.Seed = scfg.Seed + int64(epoch)*7919 // stable per-epoch churn
		web := BuildWeb(&wc, ecfg)
		snap := Snapshot{Epoch: epoch, Dataset: data.NewDataset()}
		for _, s := range web.Dataset.Sources() {
			if err := snap.Dataset.AddSource(s); err != nil {
				panic(err)
			}
		}
		for _, rec := range web.Dataset.Records() {
			rc := rec.Clone()
			rc.ID = fmt.Sprintf("%s-t%d", rec.ID, epoch)
			rc.Set("epoch", data.Number(float64(epoch)))
			if err := snap.Dataset.AddRecord(rc); err != nil {
				panic(err)
			}
		}
		tw.Snapshots = append(tw.Snapshots, snap)
	}
	return tw
}

// driftEntities mutates one random drifting attribute of each evolving
// entity with probability driftRate.
func driftEntities(r *rand.Rand, w *World, state map[string]map[string]data.Value,
	evolving map[string]bool, driftRate float64) {
	// Domains for realistic drifted values.
	domains := map[string][]data.Value{}
	for _, e := range w.Entities {
		for a, v := range e.Values {
			domains[a] = append(domains[a], v)
		}
	}
	for _, e := range w.Entities {
		if !evolving[e.ID] || r.Float64() >= driftRate {
			continue
		}
		vals := state[e.ID]
		attrs := make([]string, 0, len(vals))
		for a := range vals {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		if len(attrs) == 0 {
			continue
		}
		a := attrs[r.Intn(len(attrs))]
		vals[a] = wrongValueFor(r, vals[a], domains[a]) // "wrong" = new distinct value
	}
}

// Union merges every snapshot into one dataset (records keep their
// epoch-suffixed IDs), the input for temporal linkage.
func (tw *TemporalWorld) Union() *data.Dataset {
	out := data.NewDataset()
	for _, snap := range tw.Snapshots {
		for _, s := range snap.Dataset.Sources() {
			_ = out.AddSource(s) // same sources across epochs
		}
		for _, rec := range snap.Dataset.Records() {
			if err := out.AddRecord(rec); err != nil {
				panic(err)
			}
		}
	}
	return out
}
