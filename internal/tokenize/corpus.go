package tokenize

import (
	"math"
	"sort"
)

// Corpus accumulates document-frequency statistics over a collection of
// texts and computes TF-IDF weight vectors. It backs cosine-TF-IDF and
// soft-TF-IDF similarity as well as IDF-weighted meta-blocking.
//
// A Corpus has a build-then-read life-cycle: Add documents from one
// goroutine, call Freeze, then share it freely — every read method
// (NumDocs, DocFreq, IDF, Vector) is safe for concurrent use once the
// corpus is frozen, because nothing mutates after the freeze point.
// Add panics after Freeze so an accidental late write fails loudly
// instead of racing readers.
type Corpus struct {
	docFreq map[string]int
	numDocs int
	frozen  bool
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: map[string]int{}}
}

// Add registers one document's text. Each distinct word counts once
// toward document frequency. Add panics on a frozen corpus.
func (c *Corpus) Add(text string) {
	if c.frozen {
		panic("tokenize: Corpus.Add after Freeze")
	}
	c.numDocs++
	for w := range WordSet(text) {
		c.docFreq[w]++
	}
}

// Freeze marks the corpus complete. After Freeze, Add panics and all
// read methods are safe for concurrent use from any number of
// goroutines. Freezing an already-frozen corpus is a no-op.
func (c *Corpus) Freeze() { c.frozen = true }

// Frozen reports whether the corpus has been frozen.
func (c *Corpus) Frozen() bool { return c.frozen }

// NumDocs returns the number of documents added.
func (c *Corpus) NumDocs() int { return c.numDocs }

// DocFreq returns the document frequency of a (normalised) word.
func (c *Corpus) DocFreq(word string) int { return c.docFreq[word] }

// IDF returns the smoothed inverse document frequency
// log(1 + N/(1+df)). Unseen words get the maximum IDF.
func (c *Corpus) IDF(word string) float64 {
	return math.Log(1 + float64(c.numDocs)/float64(1+c.docFreq[word]))
}

// Weight is one component of a TF-IDF vector.
type Weight struct {
	Term string
	W    float64
}

// Vector computes the L2-normalised TF-IDF vector of text against the
// corpus, sorted by term for deterministic iteration. Empty text yields
// a nil vector.
func (c *Corpus) Vector(text string) []Weight {
	tf := map[string]int{}
	for _, w := range Words(text) {
		tf[w]++
	}
	if len(tf) == 0 {
		return nil
	}
	vec := make([]Weight, 0, len(tf))
	var norm float64
	for term, n := range tf {
		w := (1 + math.Log(float64(n))) * c.IDF(term)
		vec = append(vec, Weight{Term: term, W: w})
		norm += w * w
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range vec {
			vec[i].W /= norm
		}
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].Term < vec[j].Term })
	return vec
}

// Dot computes the inner product of two term-sorted weight vectors.
func Dot(a, b []Weight) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Term < b[j].Term:
			i++
		case a[i].Term > b[j].Term:
			j++
		default:
			dot += a[i].W * b[j].W
			i++
			j++
		}
	}
	return dot
}
