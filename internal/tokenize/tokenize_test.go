package tokenize

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Hello,   World! ", "hello world"},
		{"iPhone-12 (Pro)", "iphone 12 pro"},
		{"", ""},
		{"---", ""},
		{"ÀÉÎ", "àéî"},
		{"a1B2", "a1b2"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool { return Normalize(Normalize(s)) == Normalize(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	if got := Words("The quick, brown fox!"); !reflect.DeepEqual(got, []string{"the", "quick", "brown", "fox"}) {
		t.Errorf("Words = %v", got)
	}
	if Words("   ") != nil {
		t.Error("blank input should give nil")
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(ab,2) = %v, want %v", got, want)
	}
	if QGrams("x", 0) != nil {
		t.Error("q<=0 must return nil")
	}
	if got := QGrams("abc", 1); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("unigrams = %v", got)
	}
}

func TestQGramCountProperty(t *testing.T) {
	// For non-empty normalised strings, #grams = len + q - 1.
	f := func(s string) bool {
		const q = 3
		n := Normalize(s)
		grams := QGrams(s, q)
		if n == "" {
			return grams == nil
		}
		return len(grams) == len([]rune(n))+q-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripStopWords(t *testing.T) {
	got := StripStopWords([]string{"the", "lord", "of", "rings"})
	if !reflect.DeepEqual(got, []string{"lord", "rings"}) {
		t.Errorf("StripStopWords = %v", got)
	}
}

func TestPrefixAndFingerprint(t *testing.T) {
	if got := Prefix("Hello World", 3); got != "hel" {
		t.Errorf("Prefix = %q", got)
	}
	if got := Prefix("hi", 10); got != "hi" {
		t.Errorf("short Prefix = %q", got)
	}
	if Fingerprint("smith, John") != Fingerprint("John SMITH") {
		t.Error("fingerprint must be order- and case-insensitive")
	}
	if Fingerprint("a b") == Fingerprint("a c") {
		t.Error("different token sets must differ")
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	docs := []string{"apple banana", "apple cherry", "apple banana date"}
	for _, d := range docs {
		c.Add(d)
	}
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.DocFreq("apple") != 3 || c.DocFreq("banana") != 2 || c.DocFreq("date") != 1 {
		t.Error("document frequencies wrong")
	}
	if !(c.IDF("date") > c.IDF("banana") && c.IDF("banana") > c.IDF("apple")) {
		t.Error("rarer words must have higher IDF")
	}
	if c.IDF("unseen") < c.IDF("date") {
		t.Error("unseen words must have max IDF")
	}
}

func TestVectorIsUnitNorm(t *testing.T) {
	c := NewCorpus()
	c.Add("red shoe")
	c.Add("blue shoe")
	v := c.Vector("red shoe red")
	var norm float64
	for _, w := range v {
		norm += w.W * w.W
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector norm² = %f, want 1", norm)
	}
	if Dot(v, v) < 0.999 {
		t.Error("self-dot of unit vector must be ~1")
	}
}

func TestDotDisjoint(t *testing.T) {
	c := NewCorpus()
	c.Add("aa bb")
	c.Add("cc dd")
	if got := Dot(c.Vector("aa bb"), c.Vector("cc dd")); got != 0 {
		t.Errorf("disjoint dot = %f, want 0", got)
	}
}

func TestVectorDeterministicOrder(t *testing.T) {
	c := NewCorpus()
	c.Add("z a m")
	v := c.Vector("z a m")
	for i := 1; i < len(v); i++ {
		if strings.Compare(v[i-1].Term, v[i].Term) >= 0 {
			t.Fatalf("vector terms not sorted: %v", v)
		}
	}
}
