// Package tokenize provides the text-normalisation and tokenisation
// substrate used by similarity metrics, blocking keys and schema
// matching: Unicode-aware normalisation, word and q-gram tokenizers,
// stop-word filtering and TF-IDF corpus statistics.
package tokenize

import (
	"sort"
	"strings"
	"unicode"
)

// Normalize lower-cases s, maps punctuation to spaces, collapses runs of
// whitespace and trims. It is the canonical pre-processing step applied
// before any string comparison in the pipeline.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // leading spaces are trimmed
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Words splits s into normalised word tokens.
func Words(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// WordSet returns the distinct normalised words of s.
func WordSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, w := range Words(s) {
		set[w] = true
	}
	return set
}

// QGrams returns the padded character q-grams of the normalised form of
// s. Padding with q-1 leading and trailing '#'/'$' markers gives edge
// characters the same weight as interior ones, the standard construction
// for q-gram blocking and similarity. q must be >= 1; q <= 0 returns nil.
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	n := Normalize(s)
	if n == "" {
		return nil
	}
	if q == 1 {
		out := make([]string, 0, len(n))
		for _, r := range n {
			out = append(out, string(r))
		}
		return out
	}
	runes := []rune(n)
	padded := make([]rune, 0, len(runes)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, '#')
	}
	padded = append(padded, runes...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, '$')
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// QGramSet returns the distinct q-grams of s.
func QGramSet(s string, q int) map[string]bool {
	set := map[string]bool{}
	for _, g := range QGrams(s, q) {
		set[g] = true
	}
	return set
}

// defaultStopWords is a small English stop-word list adequate for
// product-style titles and attribute names.
var defaultStopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "in": true, "is": true,
	"it": true, "of": true, "on": true, "or": true, "the": true, "to": true,
	"with": true,
}

// StripStopWords removes default English stop words from tokens,
// preserving order.
func StripStopWords(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !defaultStopWords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Prefix returns the first n runes of the normalised form of s — the
// classic blocking-key transform. Shorter strings are returned whole.
func Prefix(s string, n int) string {
	norm := Normalize(s)
	runes := []rune(norm)
	if len(runes) <= n {
		return norm
	}
	return string(runes[:n])
}

// Fingerprint returns the sorted, deduplicated words of s joined by
// spaces: identical fingerprints group token-permuted variants
// ("john smith" vs "smith john").
func Fingerprint(s string) string {
	set := WordSet(s)
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)
	return strings.Join(words, " ")
}
