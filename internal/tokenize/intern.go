package tokenize

// Interner maps token strings to dense uint32 IDs so set-similarity
// kernels can compare integer slices instead of hashing strings. IDs
// are assigned in first-Intern order, which makes an index built by a
// single goroutine fully deterministic.
//
// An Interner is not safe for concurrent mutation. The intended
// life-cycle is build-then-read: intern every token while constructing
// a feature index, then share the interner freely across goroutines —
// all read methods (ID, Token, Len) are safe once no more Intern calls
// are made.
type Interner struct {
	ids  map[string]uint32
	toks []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: map[string]uint32{}}
}

// Intern returns the ID of tok, assigning the next free ID on first
// sight.
func (in *Interner) Intern(tok string) uint32 {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := uint32(len(in.toks))
	in.ids[tok] = id
	in.toks = append(in.toks, tok)
	return id
}

// ID returns the ID of tok and whether it has been interned.
func (in *Interner) ID(tok string) (uint32, bool) {
	id, ok := in.ids[tok]
	return id, ok
}

// Token returns the token with the given ID ("" if out of range).
func (in *Interner) Token(id uint32) string {
	if int(id) >= len(in.toks) {
		return ""
	}
	return in.toks[id]
}

// Len returns the number of distinct tokens interned.
func (in *Interner) Len() int { return len(in.toks) }
