package schema

import (
	"fmt"
	"sort"
)

// Pay-as-you-go feedback (the dataspace programme the tutorial surveys
// for Variety at scale): rather than perfecting the mediated schema up
// front, the system asks a human (or crowd) to confirm or reject its
// most *uncertain* attribute correspondences, folds the answers back in
// as hard constraints, and re-aligns — converging to a correct schema
// with far fewer questions than labelling every pair.

// Oracle answers correspondence questions; true means the two source
// attributes denote the same concept. Tests and experiments implement
// it from generator ground truth; deployments from crowdsourcing.
type Oracle func(a, b SourceAttr) bool

// Feedback runs the ask-and-realign loop.
type Feedback struct {
	Evidence  MatchEvidence
	Threshold float64 // alignment threshold; default 0.5
	// Budget is the maximum number of oracle questions. Default 20.
	Budget int
}

// FeedbackResult reports the loop's outcome.
type FeedbackResult struct {
	Schema    *MediatedSchema
	Questions int
	// Asked lists the question pairs in order with the oracle's answers.
	Asked []QuestionRecord
}

// QuestionRecord is one oracle interaction.
type QuestionRecord struct {
	A, B   SourceAttr
	Answer bool
}

// Run aligns, asks the Budget most uncertain pairs (evidence closest to
// the decision threshold), pins the answers as hard constraints and
// re-aligns. It returns the constrained schema.
func (fb Feedback) Run(profiles []*Profile, oracle Oracle) (*FeedbackResult, error) {
	if err := validateProfiles(profiles); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, fmt.Errorf("schema: feedback requires an oracle")
	}
	evidence := fb.Evidence
	if evidence == nil {
		evidence = Combined
	}
	threshold := fb.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	budget := fb.Budget
	if budget <= 0 {
		budget = 20
	}

	// Rank candidate questions by uncertainty: |evidence − threshold|,
	// cross-source pairs only.
	type q struct {
		i, j int
		dist float64
	}
	var qs []q
	for i := 0; i < len(profiles); i++ {
		for j := i + 1; j < len(profiles); j++ {
			if profiles[i].Source == profiles[j].Source {
				continue
			}
			e := evidence(profiles[i], profiles[j])
			d := e - threshold
			if d < 0 {
				d = -d
			}
			qs = append(qs, q{i: i, j: j, dist: d})
		}
	}
	sort.Slice(qs, func(a, b int) bool {
		if qs[a].dist != qs[b].dist {
			return qs[a].dist < qs[b].dist
		}
		if qs[a].i != qs[b].i {
			return qs[a].i < qs[b].i
		}
		return qs[a].j < qs[b].j
	})

	must := map[[2]SourceAttr]bool{}    // confirmed correspondences
	mustNot := map[[2]SourceAttr]bool{} // rejected correspondences
	res := &FeedbackResult{}
	for _, question := range qs {
		if res.Questions >= budget {
			break
		}
		a, b := profiles[question.i].SourceAttr, profiles[question.j].SourceAttr
		ans := oracle(a, b)
		res.Questions++
		res.Asked = append(res.Asked, QuestionRecord{A: a, B: b, Answer: ans})
		k := pairKey(a, b)
		if ans {
			must[k] = true
		} else {
			mustNot[k] = true
		}
	}

	// Constrained evidence: confirmed pairs score 1, rejected pairs 0.
	constrained := func(a, b *Profile) float64 {
		k := pairKey(a.SourceAttr, b.SourceAttr)
		if must[k] {
			return 1
		}
		if mustNot[k] {
			return 0
		}
		return evidence(a, b)
	}
	ms, err := (Aligner{Evidence: constrained, Threshold: threshold}).Align(profiles)
	if err != nil {
		return nil, err
	}
	res.Schema = ms
	return res, nil
}
