package schema

import (
	"math"
	"testing"

	"repro/internal/data"
)

// alignedSample builds two sources describing the same 6 entities with
// renamed attributes and a unit conversion (grams vs kilograms).
func alignedSample(t *testing.T) (*data.Dataset, data.Clustering) {
	t.Helper()
	d := data.NewDataset()
	_ = d.AddSource(&data.Source{ID: "s1"})
	_ = d.AddSource(&data.Source{ID: "s2"})
	colors := []string{"black", "white", "red", "blue", "silver", "gray"}
	var clusters data.Clustering
	for i := 0; i < 6; i++ {
		w := float64(500 + 100*i)
		a := data.NewRecord(idOf("a", i), "s1").
			Set("color", data.String(colors[i])).
			Set("weight", data.Number(w)).
			Set("brand", data.String("acme"))
		b := data.NewRecord(idOf("b", i), "s2").
			Set("colour", data.String(colors[i])).
			Set("item weight", data.Number(w/1000)). // kilograms
			Set("maker", data.String("acme"))
		a.EntityID = idOf("e", i)
		b.EntityID = idOf("e", i)
		if err := d.AddRecord(a); err != nil {
			t.Fatal(err)
		}
		if err := d.AddRecord(b); err != nil {
			t.Fatal(err)
		}
		clusters = append(clusters, data.Cluster{a.ID, b.ID})
	}
	return d, clusters.Normalize()
}

func idOf(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestProfilerBuild(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	if len(profiles) != 6 { // 3 attrs × 2 sources
		t.Fatalf("profiles = %d, want 6", len(profiles))
	}
	var weight *Profile
	for _, p := range profiles {
		if p.Source == "s1" && p.Attr == "weight" {
			weight = p
		}
	}
	if weight == nil {
		t.Fatal("missing s1/weight profile")
	}
	if weight.Count != 6 || weight.NumCount != 6 {
		t.Errorf("weight counts = %d/%d", weight.Count, weight.NumCount)
	}
	if weight.DominantKind() != data.KindNumber {
		t.Error("weight must profile as numeric")
	}
	if math.Abs(weight.NumMean-750) > 1e-9 {
		t.Errorf("weight mean = %f", weight.NumMean)
	}
	if weight.NumStd() <= 0 {
		t.Error("weight std must be positive")
	}
}

func TestProfilerSkipsBookkeepingAttrs(t *testing.T) {
	d := data.NewDataset()
	_ = d.AddSource(&data.Source{ID: "s"})
	r := data.NewRecord("r", "s").
		Set("title", data.String("x")).
		Set("pid", data.String("p")).
		Set("real", data.String("v"))
	_ = d.AddRecord(r)
	profiles := Profiler{}.Build(d)
	if len(profiles) != 1 || profiles[0].Attr != "real" {
		t.Errorf("profiles = %v", profiles)
	}
}

func TestNameSimilarity(t *testing.T) {
	p := func(attr string) *Profile {
		return &Profile{SourceAttr: SourceAttr{Source: "s", Attr: attr}}
	}
	if NameSimilarity(p("weight"), p("item weight")) <= NameSimilarity(p("weight"), p("price")) {
		t.Error("related names must outscore unrelated")
	}
	if NameSimilarity(p("color"), p("colour")) < 0.7 {
		t.Error("colour/color must be similar")
	}
}

func TestValueOverlap(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	get := func(src, attr string) *Profile {
		for _, p := range profiles {
			if p.Source == src && p.Attr == attr {
				return p
			}
		}
		t.Fatalf("missing %s/%s", src, attr)
		return nil
	}
	// Same categorical values: high overlap.
	if got := ValueOverlap(get("s1", "color"), get("s2", "colour")); got < 0.9 {
		t.Errorf("color overlap = %f", got)
	}
	// Kind mismatch: zero.
	if got := ValueOverlap(get("s1", "weight"), get("s2", "colour")); got != 0 {
		t.Errorf("kind mismatch overlap = %f", got)
	}
	// Unit-shifted numerics have distant means: low overlap (this is
	// exactly why linkage evidence and transforms are needed).
	if got := ValueOverlap(get("s1", "weight"), get("s2", "item weight")); got > 0.5 {
		t.Errorf("g-vs-kg numeric overlap = %f, want low", got)
	}
}

func TestAlignWithCombinedEvidence(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ms, err := Aligner{Threshold: 0.45}.Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	// color+colour and brand+maker must cluster; weight may or may not
	// without linkage evidence (units differ).
	assertTogether(t, ms, SourceAttr{"s1", "color"}, SourceAttr{"s2", "colour"})
	assertTogether(t, ms, SourceAttr{"s1", "brand"}, SourceAttr{"s2", "maker"})
	assertApart(t, ms, SourceAttr{"s1", "color"}, SourceAttr{"s1", "brand"})
}

func TestAlignNeverMergesSameSource(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ms, err := Aligner{Threshold: 0.01}.Align(profiles) // aggressive merging
	if err != nil {
		t.Fatal(err)
	}
	for _, ma := range ms.Attrs {
		seen := map[string]bool{}
		for sa := range ma.Members {
			if seen[sa.Source] {
				t.Fatalf("cluster %q holds two attrs of source %s", ma.Name, sa.Source)
			}
			seen[sa.Source] = true
		}
	}
}

func TestAlignEmptyErrors(t *testing.T) {
	if _, err := (Aligner{}).Align(nil); err == nil {
		t.Error("empty profiles must error")
	}
}

func TestLinkageEvidenceRescuesUnitShiftedPair(t *testing.T) {
	d, clusters := alignedSample(t)
	profiles := Profiler{}.Build(d)
	le := NewLinkageEvidence(d, clusters)
	ms, err := Aligner{Evidence: le.Blend, Threshold: 0.45}.Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	assertTogether(t, ms, SourceAttr{"s1", "color"}, SourceAttr{"s2", "colour"})
	assertTogether(t, ms, SourceAttr{"s1", "brand"}, SourceAttr{"s2", "maker"})
	// weight/item-weight disagree numerically (g vs kg), so linkage
	// agreement is 0 for them; they still must not be merged with color.
	assertApart(t, ms, SourceAttr{"s1", "weight"}, SourceAttr{"s2", "colour"})
}

func TestMappingProbabilities(t *testing.T) {
	d, clusters := alignedSample(t)
	profiles := Profiler{}.Build(d)
	le := NewLinkageEvidence(d, clusters)
	ms, err := Aligner{Evidence: le.Blend, Threshold: 0.45}.Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	mp := ms.Mapping("s2")
	if len(mp) != 3 {
		t.Fatalf("s2 mapping = %v", mp)
	}
	for attr, am := range mp {
		if am.P <= 0 || am.P > 1 {
			t.Errorf("mapping %s P = %f out of range", attr, am.P)
		}
	}
	if mp["colour"].Mediated != mp["colour"].Mediated {
		t.Fatal("unreachable")
	}
}

func TestDiscoverTransforms(t *testing.T) {
	d, clusters := alignedSample(t)
	profiles := Profiler{}.Build(d)
	// Force weight attrs into one cluster via linkage+name evidence
	// with a permissive threshold on name similarity only for the test.
	le := NewLinkageEvidence(d, clusters)
	ms, err := Aligner{Evidence: func(a, b *Profile) float64 {
		if a.Source == b.Source {
			return 0
		}
		if a.DominantKind() == data.KindNumber && b.DominantKind() == data.KindNumber {
			return 0.9 // both weights: merge
		}
		return le.Blend(a, b)
	}, Threshold: 0.45}.Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	ts := DiscoverTransforms(d, clusters, ms, 3)
	// Expect s1/weight → s2/item weight with scale 0.001 and inverse.
	var fwd, rev *Transform
	for i := range ts {
		tr := &ts[i]
		if tr.From == (SourceAttr{"s1", "weight"}) {
			fwd = tr
		}
		if tr.From == (SourceAttr{"s2", "item weight"}) {
			rev = tr
		}
	}
	if fwd == nil || rev == nil {
		t.Fatalf("transforms missing: %+v", ts)
	}
	if math.Abs(fwd.Scale-0.001) > 1e-9 {
		t.Errorf("forward scale = %f, want 0.001", fwd.Scale)
	}
	if math.Abs(rev.Scale-1000) > 1e-6 {
		t.Errorf("reverse scale = %f, want 1000", rev.Scale)
	}

	// Normalizer brings both sources into the same units and names.
	norm := NewNormalizer(ms, ts)
	nd := norm.ApplyAll(d)
	a0, b0 := nd.Record("a0"), nd.Record("b0")
	attrs := map[string]bool{}
	for _, at := range a0.Attrs() {
		attrs[at] = true
	}
	for _, at := range b0.Attrs() {
		if !attrs[at] {
			t.Errorf("normalised records disagree on attr %q", at)
		}
	}
	// Weight values must now agree numerically.
	var wAttr string
	for _, at := range a0.Attrs() {
		if a0.Fields[at].Kind == data.KindNumber {
			wAttr = at
		}
	}
	va, vb := a0.Get(wAttr), b0.Get(wAttr)
	if va.IsNull() || vb.IsNull() {
		t.Fatalf("weight attr %q missing after normalisation", wAttr)
	}
	if math.Abs(va.Num-vb.Num)/math.Max(va.Num, vb.Num) > 0.01 {
		t.Errorf("normalised weights disagree: %v vs %v", va, vb)
	}
}

func assertTogether(t *testing.T, ms *MediatedSchema, a, b SourceAttr) {
	t.Helper()
	ia, oka := ms.Of[a]
	ib, okb := ms.Of[b]
	if !oka || !okb || ia != ib {
		t.Errorf("%v and %v should share a mediated attr\n%s", a, b, ms)
	}
}

func assertApart(t *testing.T, ms *MediatedSchema, a, b SourceAttr) {
	t.Helper()
	ia, oka := ms.Of[a]
	ib, okb := ms.Of[b]
	if oka && okb && ia == ib {
		t.Errorf("%v and %v must not share a mediated attr\n%s", a, b, ms)
	}
}
