package schema

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// MediatedAttr is one attribute of the mediated (global) schema: a
// cluster of corresponding source attributes with a membership
// probability per member — the probabilistic mediated schema of the
// dataspace line of work the tutorial surveys.
type MediatedAttr struct {
	// Name is the cluster's display name: the most common member
	// attribute name.
	Name string
	// Members maps source attributes to membership probability (0,1].
	Members map[SourceAttr]float64
}

// MediatedSchema is the full set of mediated attributes plus the
// mapping from every source attribute to its cluster.
type MediatedSchema struct {
	Attrs []*MediatedAttr
	// Of maps each source attribute to the index in Attrs.
	Of map[SourceAttr]int
}

// Mapping returns the probabilistic mapping for one source: local
// attribute name → (mediated attribute name, probability).
func (ms *MediatedSchema) Mapping(source string) map[string]AttrMapping {
	out := map[string]AttrMapping{}
	for sa, idx := range ms.Of {
		if sa.Source != source {
			continue
		}
		ma := ms.Attrs[idx]
		out[sa.Attr] = AttrMapping{Mediated: ma.Name, P: ma.Members[sa]}
	}
	return out
}

// AttrMapping is one probabilistic source→mediated correspondence.
type AttrMapping struct {
	Mediated string
	P        float64
}

// Aligner clusters source-attribute profiles into a mediated schema by
// greedy agglomerative clustering under a match-evidence function.
type Aligner struct {
	// Evidence scores profile pairs; default Combined.
	Evidence MatchEvidence
	// Threshold: minimum evidence to merge two clusters (average
	// linkage). Default 0.5.
	Threshold float64
	// Ctx cancels the alignment between matrix rows and agglomeration
	// rounds; nil never cancels.
	Ctx context.Context
}

// Align builds the mediated schema from profiles.
func (al Aligner) Align(profiles []*Profile) (*MediatedSchema, error) {
	if err := validateProfiles(profiles); err != nil {
		return nil, err
	}
	ctx := al.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	evidence := al.Evidence
	if evidence == nil {
		evidence = Combined
	}
	threshold := al.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}

	n := len(profiles)
	// Pairwise evidence matrix (symmetric).
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		// The evidence matrix and the agglomeration below dominate
		// alignment wall time, so the row and the round are the
		// cancellation granularity for this stage.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := i + 1; j < n; j++ {
			s := evidence(profiles[i], profiles[j])
			sim[i][j], sim[j][i] = s, s
		}
	}

	// Greedy average-linkage agglomeration.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	avgLink := func(a, b []int) float64 {
		var sum float64
		cnt := 0
		for _, i := range a {
			for _, j := range b {
				// Attributes of the same source must not merge.
				if profiles[i].Source == profiles[j].Source {
					return -1
				}
				sum += sim[i][j]
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestI, bestJ, bestS := -1, -1, threshold
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if s := avgLink(clusters[i], clusters[j]); s >= bestS {
					bestI, bestJ, bestS = i, j, s
				}
			}
		}
		if bestI < 0 {
			break
		}
		clusters[bestI] = append(clusters[bestI], clusters[bestJ]...)
		active[bestJ] = false
	}

	ms := &MediatedSchema{Of: map[SourceAttr]int{}}
	for ci := 0; ci < n; ci++ {
		if !active[ci] {
			continue
		}
		members := clusters[ci]
		ma := &MediatedAttr{Members: map[SourceAttr]float64{}}
		// Membership probability: each member's mean evidence toward the
		// rest of the cluster (1 for singletons).
		for _, i := range members {
			p := 1.0
			if len(members) > 1 {
				var sum float64
				for _, j := range members {
					if i != j {
						sum += sim[i][j]
					}
				}
				p = sum / float64(len(members)-1)
				if p > 1 {
					p = 1
				}
				if p <= 0 {
					p = 0.01
				}
			}
			ma.Members[profiles[i].SourceAttr] = p
		}
		ma.Name = clusterName(profiles, members)
		ms.Attrs = append(ms.Attrs, ma)
	}
	// Deterministic attr order: by name then first member.
	sort.Slice(ms.Attrs, func(i, j int) bool {
		if ms.Attrs[i].Name != ms.Attrs[j].Name {
			return ms.Attrs[i].Name < ms.Attrs[j].Name
		}
		return firstMember(ms.Attrs[i]).String() < firstMember(ms.Attrs[j]).String()
	})
	for idx, ma := range ms.Attrs {
		for sa := range ma.Members {
			ms.Of[sa] = idx
		}
	}
	return ms, nil
}

func firstMember(ma *MediatedAttr) SourceAttr {
	var keys []string
	back := map[string]SourceAttr{}
	for sa := range ma.Members {
		k := sa.String()
		keys = append(keys, k)
		back[k] = sa
	}
	sort.Strings(keys)
	return back[keys[0]]
}

// clusterName picks the most frequent attribute name among members,
// ties broken lexicographically.
func clusterName(profiles []*Profile, members []int) string {
	freq := map[string]int{}
	for _, i := range members {
		freq[profiles[i].Attr]++
	}
	names := make([]string, 0, len(freq))
	for nm := range freq {
		names = append(names, nm)
	}
	sort.Slice(names, func(i, j int) bool {
		if freq[names[i]] != freq[names[j]] {
			return freq[names[i]] > freq[names[j]]
		}
		return names[i] < names[j]
	})
	return names[0]
}

// String renders the mediated schema for inspection.
func (ms *MediatedSchema) String() string {
	var b strings.Builder
	for i, ma := range ms.Attrs {
		fmt.Fprintf(&b, "[%d] %s:", i, ma.Name)
		var keys []string
		for sa := range ma.Members {
			keys = append(keys, sa.String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s", k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
