package schema

import (
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

func propWeb(seed int64) *datagen.Web {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 25, Categories: []string{"camera"}})
	return datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 6, DirtLevel: 1, Heterogeneity: 0.6,
		HeadFraction: 0.5, TailCoverage: 0.3,
	})
}

// TestNormalizerPreservesRecords: normalisation keeps record identity,
// provenance, ground truth and count.
func TestNormalizerPreservesRecords(t *testing.T) {
	f := func(seed int64) bool {
		web := propWeb(seed % 1000)
		d := web.Dataset
		profiles := Profiler{}.Build(d)
		if len(profiles) == 0 {
			return true
		}
		ms, err := (Aligner{Threshold: 0.5}).Align(profiles)
		if err != nil {
			return false
		}
		nd := NewNormalizer(ms, nil).ApplyAll(d)
		if nd.NumRecords() != d.NumRecords() || nd.NumSources() != d.NumSources() {
			return false
		}
		for _, r := range d.Records() {
			nr := nd.Record(r.ID)
			if nr == nil || nr.SourceID != r.SourceID || nr.EntityID != r.EntityID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestAlignerPartitionsAllProfiles: the mediated schema assigns every
// profiled source attribute to exactly one cluster.
func TestAlignerPartitionsAllProfiles(t *testing.T) {
	web := propWeb(3)
	profiles := Profiler{}.Build(web.Dataset)
	ms, err := (Aligner{Threshold: 0.5}).Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Of) != len(profiles) {
		t.Fatalf("Of covers %d of %d profiles", len(ms.Of), len(profiles))
	}
	counted := 0
	for _, ma := range ms.Attrs {
		counted += len(ma.Members)
		for sa, p := range ma.Members {
			if p <= 0 || p > 1 {
				t.Errorf("membership P(%v) = %f", sa, p)
			}
			if idx, ok := ms.Of[sa]; !ok || ms.Attrs[idx] != ma {
				t.Errorf("Of inconsistent for %v", sa)
			}
		}
	}
	if counted != len(profiles) {
		t.Errorf("clusters hold %d members, want %d", counted, len(profiles))
	}
}

// TestEvidenceFunctionsBounded: every evidence function stays in [0,1]
// and is symmetric.
func TestEvidenceFunctionsBounded(t *testing.T) {
	web := propWeb(5)
	d := web.Dataset
	profiles := Profiler{}.Build(d)
	le := NewLinkageEvidence(d, d.GroundTruthClusters())
	evidences := map[string]MatchEvidence{
		"name":      NameSimilarity,
		"value":     ValueOverlap,
		"token":     TokenOverlap,
		"combined":  Combined,
		"blend":     le.Blend,
		"agreeOnly": le.BlendAgreementOnly,
	}
	for name, ev := range evidences {
		for i := 0; i < len(profiles); i++ {
			for j := 0; j < len(profiles); j++ {
				s := ev(profiles[i], profiles[j])
				if s < 0 || s > 1 {
					t.Fatalf("%s(%v,%v) = %f out of range", name, profiles[i].SourceAttr, profiles[j].SourceAttr, s)
				}
				if r := ev(profiles[j], profiles[i]); r != s {
					t.Fatalf("%s asymmetric: %f vs %f", name, s, r)
				}
			}
		}
	}
}

// TestTransformsHaveInverses: when A→B with scale s is discovered on
// well-supported numeric pairs, B→A appears with scale ≈ 1/s.
func TestTransformsHaveInverses(t *testing.T) {
	d, clusters := alignedSample(t)
	profiles := Profiler{}.Build(d)
	le := NewLinkageEvidence(d, clusters)
	ms, err := (Aligner{Evidence: le.Blend, Threshold: 0.45}).Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	ts := DiscoverTransforms(d, clusters, ms, 3)
	index := map[[2]SourceAttr]float64{}
	for _, tr := range ts {
		index[[2]SourceAttr{tr.From, tr.To}] = tr.Scale
	}
	for _, tr := range ts {
		inv, ok := index[[2]SourceAttr{tr.To, tr.From}]
		if !ok {
			t.Fatalf("missing inverse for %v -> %v", tr.From, tr.To)
		}
		prod := tr.Scale * inv
		if prod < 0.9 || prod > 1.1 {
			t.Errorf("scale product %f for %v<->%v, want ~1", prod, tr.From, tr.To)
		}
	}
}
