package schema

import (
	"context"
	"math"
	"sort"

	"repro/internal/data"
)

// Transform is a discovered value transformation between two source
// attributes: target ≈ Scale × source. Scale 1 means same units.
type Transform struct {
	From, To SourceAttr
	Scale    float64
	Support  int // co-linked record pairs the estimate is based on
}

// DiscoverTransforms inspects co-linked record pairs and, for every
// cross-source numeric attribute pair within the same mediated
// attribute, estimates the multiplicative unit conversion as the median
// value ratio. Pairs with a stable ratio far from 1 are unit
// conversions; ratio ≈ 1 confirms same units. minSupport defaults to 3.
func DiscoverTransforms(d *data.Dataset, clusters data.Clustering, ms *MediatedSchema, minSupport int) []Transform {
	// A background context never cancels, so the error is impossible.
	out, _ := DiscoverTransformsCtx(context.Background(), d, clusters, ms, minSupport)
	return out
}

// DiscoverTransformsCtx is DiscoverTransforms under a context:
// cancellation is observed between entity clusters.
func DiscoverTransformsCtx(ctx context.Context, d *data.Dataset, clusters data.Clustering, ms *MediatedSchema, minSupport int) ([]Transform, error) {
	if minSupport <= 0 {
		minSupport = 3
	}
	// One ratio per (pair, entity cluster): see NewLinkageEvidence for
	// why per-record-pair samples would overweight popular entities.
	ratios := map[[2]SourceAttr]map[int]float64{}
	for ci, cl := range clusters {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < len(cl); i++ {
			for j := 0; j < len(cl); j++ {
				if i == j {
					continue
				}
				ra, rb := d.Record(cl[i]), d.Record(cl[j])
				if ra == nil || rb == nil || ra.SourceID == rb.SourceID {
					continue
				}
				for _, aa := range ra.Attrs() {
					va := ra.Fields[aa]
					if va.Kind != data.KindNumber || va.Num == 0 {
						continue
					}
					saA := SourceAttr{ra.SourceID, aa}
					idxA, okA := ms.Of[saA]
					if !okA {
						continue
					}
					for _, ab := range rb.Attrs() {
						vb := rb.Fields[ab]
						if vb.Kind != data.KindNumber || vb.Num == 0 {
							continue
						}
						saB := SourceAttr{rb.SourceID, ab}
						if idxB, okB := ms.Of[saB]; !okB || idxB != idxA {
							continue
						}
						k := [2]SourceAttr{saA, saB}
						if ratios[k] == nil {
							ratios[k] = map[int]float64{}
						}
						if _, seen := ratios[k][ci]; !seen {
							ratios[k][ci] = vb.Num / va.Num
						}
					}
				}
			}
		}
	}
	var out []Transform
	for k, byCluster := range ratios {
		if len(byCluster) < minSupport {
			continue
		}
		rs := make([]float64, 0, len(byCluster))
		for _, r := range byCluster {
			rs = append(rs, r)
		}
		sort.Float64s(rs)
		med := rs[len(rs)/2]
		// Require ratio stability: median absolute deviation small
		// relative to the median.
		mad := medianAbsDev(rs, med)
		if med <= 0 || mad/math.Abs(med) > 0.1 {
			continue
		}
		out = append(out, Transform{From: k[0], To: k[1], Scale: med, Support: len(rs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From.String() < out[j].From.String()
		}
		return out[i].To.String() < out[j].To.String()
	})
	return out, nil
}

func medianAbsDev(rs []float64, med float64) float64 {
	devs := make([]float64, len(rs))
	for i, r := range rs {
		devs[i] = math.Abs(r - med)
	}
	sort.Float64s(devs)
	return devs[len(devs)/2]
}

// Normalizer rewrites records into the mediated schema: local attribute
// names become mediated names, and numeric values are rescaled into the
// cluster's canonical units (the units of the cluster's reference
// attribute — the member with the largest support).
type Normalizer struct {
	ms    *MediatedSchema
	scale map[SourceAttr]float64 // multiplicative factor into canonical units
}

// NewNormalizer picks, per mediated attribute, the reference member (the
// one with the most co-linked ratio support toward others, falling back
// to the lexicographically first member) and inverts the discovered
// transforms to rescale every member into the reference's units.
func NewNormalizer(ms *MediatedSchema, transforms []Transform) *Normalizer {
	n := &Normalizer{ms: ms, scale: map[SourceAttr]float64{}}
	// Reference member per cluster: lexicographically first (stable and
	// simple; transforms make the choice immaterial).
	refs := make([]SourceAttr, len(ms.Attrs))
	for i, ma := range ms.Attrs {
		refs[i] = firstMember(ma)
	}
	// scale[sa] converts sa's units into its cluster reference's units.
	for _, t := range transforms {
		idx, ok := ms.Of[t.From]
		if !ok {
			continue
		}
		// t: To ≈ Scale × From  ⇒  From-units → To-units factor = Scale.
		if refs[idx] == t.To {
			n.scale[t.From] = t.Scale
		}
	}
	return n
}

// Apply rewrites one record into the mediated schema. Unmapped
// attributes (including skip attributes like title/pid) pass through
// unchanged.
func (n *Normalizer) Apply(r *data.Record) *data.Record {
	out := data.NewRecord(r.ID, r.SourceID)
	out.EntityID = r.EntityID
	for _, a := range r.Attrs() {
		v := r.Fields[a]
		sa := SourceAttr{r.SourceID, a}
		idx, ok := n.ms.Of[sa]
		if !ok {
			out.Set(a, v)
			continue
		}
		if v.Kind == data.KindNumber {
			if s, ok := n.scale[sa]; ok && s != 0 {
				v = data.Number(v.Num * s)
			}
		}
		out.Set(n.ms.Attrs[idx].Name, v)
	}
	return out
}

// ApplyAll rewrites a whole dataset, preserving sources.
func (n *Normalizer) ApplyAll(d *data.Dataset) *data.Dataset {
	out := data.NewDataset()
	for _, s := range d.Sources() {
		_ = out.AddSource(s)
	}
	for _, r := range d.Records() {
		if err := out.AddRecord(n.Apply(r)); err != nil {
			// IDs are preserved from a valid dataset, so this cannot
			// happen; guard loudly in case of misuse.
			panic(err)
		}
	}
	return out
}
