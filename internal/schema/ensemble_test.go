package schema

import (
	"math"
	"strings"
	"testing"
)

func TestBuildEnsemble(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ens, err := BuildEnsemble(profiles, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	var sum float64
	for _, c := range ens.Candidates {
		if c.P < 0 || c.P > 1 {
			t.Errorf("candidate P = %f out of range", c.P)
		}
		sum += c.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
	// Candidates are distinct schemas sorted by probability.
	for i := 1; i < len(ens.Candidates); i++ {
		if ens.Candidates[i].P > ens.Candidates[i-1].P {
			t.Error("candidates must be sorted by P")
		}
	}
	if ens.Top() == nil {
		t.Error("Top must return the best candidate")
	}
}

func TestEnsembleMapAttr(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ens, err := BuildEnsemble(profiles, nil, []float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	answers := ens.MapAttr(SourceAttr{"s2", "colour"})
	if len(answers) == 0 {
		t.Fatal("no mapping answers")
	}
	var sum float64
	for _, a := range answers {
		sum += a.P
	}
	if sum > 1+1e-9 {
		t.Errorf("answer mass %f exceeds 1", sum)
	}
	// Unknown attribute maps nowhere.
	if got := ens.MapAttr(SourceAttr{"s9", "ghost"}); len(got) != 0 {
		t.Errorf("unknown attr mapped to %v", got)
	}
}

func TestEnsembleCorrespondenceP(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ens, err := BuildEnsemble(profiles, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := ens.CorrespondenceP(SourceAttr{"s1", "color"}, SourceAttr{"s2", "colour"})
	diff := ens.CorrespondenceP(SourceAttr{"s1", "color"}, SourceAttr{"s2", "maker"})
	if same <= diff {
		t.Errorf("color~colour P=%f must exceed color~maker P=%f", same, diff)
	}
	if same <= 0.5 {
		t.Errorf("true correspondence P = %f, want > 0.5", same)
	}
}

func TestEnsembleEmptyErrors(t *testing.T) {
	if _, err := BuildEnsemble(nil, nil, nil); err == nil {
		t.Error("empty profiles must error")
	}
}

func TestFeedbackImprovesAlignment(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)

	// Ground truth: attributes correspond iff they are the same concept.
	concept := map[SourceAttr]string{
		{"s1", "color"}: "color", {"s2", "colour"}: "color",
		{"s1", "weight"}: "weight", {"s2", "item weight"}: "weight",
		{"s1", "brand"}: "brand", {"s2", "maker"}: "brand",
	}
	oracle := func(a, b SourceAttr) bool { return concept[a] != "" && concept[a] == concept[b] }

	baseline, err := (Aligner{Threshold: 0.5}).Align(profiles)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := (Feedback{Threshold: 0.5, Budget: 10}).Run(profiles, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Questions == 0 || fb.Questions > 10 {
		t.Fatalf("questions = %d", fb.Questions)
	}
	if len(fb.Asked) != fb.Questions {
		t.Error("question log inconsistent")
	}
	baseF1 := conceptF1(baseline, concept)
	fbF1 := conceptF1(fb.Schema, concept)
	if fbF1 < baseF1 {
		t.Errorf("feedback F1 %f must be >= baseline %f", fbF1, baseF1)
	}
	// With 10 questions over 6 attributes, the unit-shifted weight pair
	// (invisible to instance evidence) must be recovered.
	wIdx, ok1 := fb.Schema.Of[SourceAttr{"s1", "weight"}]
	iwIdx, ok2 := fb.Schema.Of[SourceAttr{"s2", "item weight"}]
	if !ok1 || !ok2 || wIdx != iwIdx {
		t.Errorf("feedback must pin weight~item-weight together:\n%s", fb.Schema)
	}
}

func TestFeedbackValidation(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	if _, err := (Feedback{}).Run(profiles, nil); err == nil {
		t.Error("nil oracle must error")
	}
	if _, err := (Feedback{}).Run(nil, func(a, b SourceAttr) bool { return false }); err == nil {
		t.Error("empty profiles must error")
	}
}

// conceptF1 scores a schema against a concept labelling over the
// labelled attributes only.
func conceptF1(ms *MediatedSchema, concept map[SourceAttr]string) float64 {
	tp, fp, fn := 0, 0, 0
	attrs := make([]SourceAttr, 0, len(concept))
	for sa := range concept {
		attrs = append(attrs, sa)
	}
	// Deterministic order (not strictly needed for counting).
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			a, b := attrs[i], attrs[j]
			if a.Source == b.Source {
				continue
			}
			truth := concept[a] == concept[b]
			ia, oka := ms.Of[a]
			ib, okb := ms.Of[b]
			pred := oka && okb && ia == ib
			switch {
			case pred && truth:
				tp++
			case pred && !truth:
				fp++
			case !pred && truth:
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

func TestEnsembleRenderedSchemasDiffer(t *testing.T) {
	d, _ := alignedSample(t)
	profiles := Profiler{}.Build(d)
	ens, err := BuildEnsemble(profiles, nil, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Candidates) >= 2 {
		a := ens.Candidates[0].Schema.String()
		b := ens.Candidates[1].Schema.String()
		if strings.TrimSpace(a) == strings.TrimSpace(b) {
			t.Error("distinct candidates must render distinct schemas")
		}
	}
}
