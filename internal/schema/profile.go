// Package schema implements the schema-alignment stage for the Variety
// dimension: per-source attribute profiling, name- and instance-based
// attribute matching, linkage-aware matching (using record-linkage
// results as alignment evidence, the tutorial's pipeline reordering for
// identifier-rich domains), construction of a probabilistic mediated
// schema, probabilistic source-to-mediated mappings, and discovery of
// numeric value transformations (unit conversions).
package schema

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// SourceAttr identifies one attribute of one source.
type SourceAttr struct {
	Source string
	Attr   string
}

// String renders "source/attr".
func (sa SourceAttr) String() string { return sa.Source + "/" + sa.Attr }

// Profile summarises one source attribute's observed values.
type Profile struct {
	SourceAttr
	Count     int // records carrying the attribute
	Kinds     map[data.ValueKind]int
	Values    map[string]int // value key → frequency (capped)
	NumCount  int
	NumMean   float64
	NumM2     float64        // Welford accumulator
	TokenFreq map[string]int // tokens across string values
	maxValues int
}

// NumStd returns the standard deviation of numeric values.
func (p *Profile) NumStd() float64 {
	if p.NumCount < 2 {
		return 0
	}
	return math.Sqrt(p.NumM2 / float64(p.NumCount-1))
}

// DominantKind returns the most frequent value kind.
func (p *Profile) DominantKind() data.ValueKind {
	best, bestN := data.KindNull, -1
	// Deterministic: iterate kinds in fixed order.
	for _, k := range []data.ValueKind{data.KindString, data.KindNumber, data.KindBool, data.KindTime} {
		if n := p.Kinds[k]; n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// observe folds one value into the profile.
func (p *Profile) observe(v data.Value) {
	p.Count++
	p.Kinds[v.Kind]++
	if len(p.Values) < p.maxValues {
		p.Values[v.Key()]++
	} else if _, seen := p.Values[v.Key()]; seen {
		p.Values[v.Key()]++
	}
	switch v.Kind {
	case data.KindNumber:
		p.NumCount++
		delta := v.Num - p.NumMean
		p.NumMean += delta / float64(p.NumCount)
		p.NumM2 += delta * (v.Num - p.NumMean)
	case data.KindString:
		for _, tok := range tokenize.Words(v.Str) {
			p.TokenFreq[tok]++
		}
	}
}

// Profiler builds profiles for every (source, attribute) in a dataset.
type Profiler struct {
	// MaxValuesPerAttr caps the per-attribute distinct-value histogram.
	// Default 512.
	MaxValuesPerAttr int
	// SkipAttrs lists attribute names excluded from alignment (e.g. the
	// generator's bookkeeping fields). Defaults to {"title","pid","epoch"}.
	SkipAttrs []string
}

// DefaultSkipAttrs are attributes never aligned: record-level text and
// identifiers handled by linkage, not schema alignment.
var DefaultSkipAttrs = []string{"title", "pid", "epoch"}

// Build profiles the dataset and returns profiles sorted by source then
// attribute.
func (pf Profiler) Build(d *data.Dataset) []*Profile {
	maxV := pf.MaxValuesPerAttr
	if maxV <= 0 {
		maxV = 512
	}
	skip := map[string]bool{}
	skipList := pf.SkipAttrs
	if skipList == nil {
		skipList = DefaultSkipAttrs
	}
	for _, a := range skipList {
		skip[a] = true
	}
	byKey := map[SourceAttr]*Profile{}
	for _, r := range d.Records() {
		for _, a := range r.Attrs() {
			if skip[a] {
				continue
			}
			key := SourceAttr{Source: r.SourceID, Attr: a}
			p := byKey[key]
			if p == nil {
				p = &Profile{
					SourceAttr: key,
					Kinds:      map[data.ValueKind]int{},
					Values:     map[string]int{},
					TokenFreq:  map[string]int{},
					maxValues:  maxV,
				}
				byKey[key] = p
			}
			p.observe(r.Fields[a])
		}
	}
	out := make([]*Profile, 0, len(byKey))
	for _, p := range byKey {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// validateProfiles guards the matchers against empty input.
func validateProfiles(ps []*Profile) error {
	if len(ps) == 0 {
		return fmt.Errorf("schema: no attribute profiles (empty dataset?)")
	}
	return nil
}
