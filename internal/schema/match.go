package schema

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/similarity"
)

// MatchEvidence scores the correspondence between two source attributes
// from one kind of evidence; scores live in [0,1].
type MatchEvidence func(a, b *Profile) float64

// NameSimilarity compares attribute names with token Jaccard softened
// by Jaro-Winkler (handles "weight" vs "item weight" vs "wt").
func NameSimilarity(a, b *Profile) float64 {
	j := similarity.Jaccard(a.Attr, b.Attr)
	jw := similarity.JaroWinkler(a.Attr, b.Attr)
	// Monge-Elkan is directional ("weight" ⊂ "item weight" scores high
	// one way only); symmetrise with max so evidence is order-free.
	me := math.Max(
		similarity.MongeElkan(a.Attr, b.Attr, nil),
		similarity.MongeElkan(b.Attr, a.Attr, nil),
	)
	return math.Max(j, math.Max(0.8*jw, 0.9*me))
}

// ValueOverlap compares the observed value distributions: Jaccard over
// distinct value keys for categorical attributes, distribution overlap
// for numeric ones, kind mismatch scores 0.
func ValueOverlap(a, b *Profile) float64 {
	ka, kb := a.DominantKind(), b.DominantKind()
	if ka != kb {
		return 0
	}
	if ka == data.KindNumber {
		return numericOverlap(a, b)
	}
	inter, union := 0, 0
	for v := range a.Values {
		if _, ok := b.Values[v]; ok {
			inter++
		}
	}
	union = len(a.Values) + len(b.Values) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// numericOverlap measures how much two numeric attributes' ranges
// overlap, via a Gaussian approximation: 1 when means coincide relative
// to pooled spread, decaying to 0.
func numericOverlap(a, b *Profile) float64 {
	if a.NumCount == 0 || b.NumCount == 0 {
		return 0
	}
	sa, sb := a.NumStd(), b.NumStd()
	spread := math.Max(sa+sb, 1e-9)
	z := math.Abs(a.NumMean-b.NumMean) / spread
	return math.Exp(-z * z / 2)
}

// TokenOverlap compares the token distributions of string values —
// complementary to exact value overlap when formats differ slightly.
func TokenOverlap(a, b *Profile) float64 {
	if len(a.TokenFreq) == 0 || len(b.TokenFreq) == 0 {
		return 0
	}
	inter := 0
	for tok := range a.TokenFreq {
		if _, ok := b.TokenFreq[tok]; ok {
			inter++
		}
	}
	union := len(a.TokenFreq) + len(b.TokenFreq) - inter
	return float64(inter) / float64(union)
}

// Combined blends the evidence functions with fixed weights: names are
// suggestive, instances decisive. Attributes from the same source never
// match (within-source schemas are assumed consistent, as in the
// tutorial's local-homogeneity observation).
func Combined(a, b *Profile) float64 {
	if a.Source == b.Source {
		return 0
	}
	name := NameSimilarity(a, b)
	val := ValueOverlap(a, b)
	tok := TokenOverlap(a, b)
	inst := math.Max(val, tok)
	return 0.4*name + 0.6*inst
}

// LinkageEvidence builds an instance-level evidence function from a
// record clustering: two attributes correspond when, on records linked
// to the same entity, they frequently carry equal (or numerically
// proportional — handled by transform discovery) values. This is the
// "linkage before alignment" move the tutorial advocates for
// identifier-rich domains.
type LinkageEvidence struct {
	// agree[pairKey] / total[pairKey] over co-linked record pairs.
	agree map[[2]SourceAttr]float64
	total map[[2]SourceAttr]float64
	// stability[pairKey] ∈ [0,1]: for numeric attribute pairs, how
	// consistent the value ratio is across co-linked records. A stable
	// ratio far from 1 is a unit conversion — still a correspondence.
	stability map[[2]SourceAttr]float64
}

// NewLinkageEvidence scans intra-cluster record pairs and accumulates
// cross-source attribute agreement statistics.
func NewLinkageEvidence(d *data.Dataset, clusters data.Clustering) *LinkageEvidence {
	le := &LinkageEvidence{
		agree:     map[[2]SourceAttr]float64{},
		total:     map[[2]SourceAttr]float64{},
		stability: map[[2]SourceAttr]float64{},
	}
	// One ratio sample per (attribute pair, entity cluster): multiple
	// record pairs about the same entity share the same true ratio, so
	// counting them separately would let a single popular entity fake
	// cross-entity ratio stability between unrelated attributes.
	ratios := map[[2]SourceAttr]map[int]float64{}
	skip := map[string]bool{}
	for _, a := range DefaultSkipAttrs {
		skip[a] = true
	}
	for ci, cl := range clusters {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				ra, rb := d.Record(cl[i]), d.Record(cl[j])
				if ra == nil || rb == nil || ra.SourceID == rb.SourceID {
					continue
				}
				for _, aa := range ra.Attrs() {
					if skip[aa] {
						continue
					}
					va := ra.Fields[aa]
					for _, ab := range rb.Attrs() {
						if skip[ab] {
							continue
						}
						vb := rb.Fields[ab]
						if va.Kind != vb.Kind {
							continue
						}
						k := pairKey(
							SourceAttr{ra.SourceID, aa},
							SourceAttr{rb.SourceID, ab},
						)
						le.total[k]++
						if valuesAgree(va, vb) {
							le.agree[k]++
						}
						if va.Kind == data.KindNumber && va.Num != 0 && vb.Num != 0 {
							r := vb.Num / va.Num
							if k[0] != (SourceAttr{ra.SourceID, aa}) {
								r = 1 / r // keep ratio oriented k[0]→k[1]
							}
							if ratios[k] == nil {
								ratios[k] = map[int]float64{}
							}
							if _, seen := ratios[k][ci]; !seen && len(ratios[k]) < 64 {
								ratios[k][ci] = r
							}
						}
					}
				}
			}
		}
	}
	for k, byCluster := range ratios {
		if len(byCluster) < 3 {
			continue
		}
		rs := make([]float64, 0, len(byCluster))
		for _, r := range byCluster {
			rs = append(rs, r)
		}
		sort.Float64s(rs)
		med := rs[len(rs)/2]
		if med <= 0 {
			continue
		}
		devs := make([]float64, len(rs))
		for i, r := range rs {
			devs[i] = math.Abs(r-med) / med
		}
		sort.Float64s(devs)
		mad := devs[len(devs)/2]
		// Fully stable (mad 0) → 1; dissolving to 0 at 20% spread.
		s := 1 - mad/0.2
		if s < 0 {
			s = 0
		}
		le.stability[k] = s
	}
	return le
}

// valuesAgree is a tolerant equality: exact for non-numbers, 2% relative
// tolerance for numbers (absorbing jitter but not unit changes).
func valuesAgree(a, b data.Value) bool {
	if a.Kind == data.KindNumber && b.Kind == data.KindNumber {
		denom := math.Max(math.Abs(a.Num), math.Abs(b.Num))
		if denom == 0 {
			return true
		}
		return math.Abs(a.Num-b.Num)/denom <= 0.02
	}
	if a.Kind == data.KindString && b.Kind == data.KindString {
		return similarity.JaroWinkler(a.Str, b.Str) >= 0.93
	}
	return a.Equal(b)
}

func pairKey(a, b SourceAttr) [2]SourceAttr {
	if b.Source < a.Source || (b.Source == a.Source && b.Attr < a.Attr) {
		a, b = b, a
	}
	return [2]SourceAttr{a, b}
}

// Score implements MatchEvidence semantics over profiles: the observed
// agreement rate on co-linked records, 0 when below the support floor.
func (le *LinkageEvidence) Score(a, b *Profile) float64 {
	k := pairKey(a.SourceAttr, b.SourceAttr)
	tot := le.total[k]
	if tot < 3 { // insufficient support
		return 0
	}
	s := le.agree[k] / tot
	// Ratio-stable numeric pairs correspond even when raw values never
	// agree (unit conversions).
	if st := le.stability[k]; st > s {
		s = st
	}
	return s
}

// Blend combines linkage evidence with the name+instance Combined
// evidence. The two are complementary rather than averaged: strong
// linkage agreement (or ratio stability) lifts the score even when
// names and distributions look unrelated (unit conversions, opaque
// renames), while strong linkage *disagreement* on well-supported pairs
// vetoes correspondences that names and distributions suggest
// spuriously (distinct numeric attributes with similar ranges).
func (le *LinkageEvidence) Blend(a, b *Profile) float64 {
	if a.Source == b.Source {
		return 0
	}
	c := Combined(a, b)
	k := pairKey(a.SourceAttr, b.SourceAttr)
	tot := le.total[k]
	if tot < 5 {
		return c // insufficient co-linked support: fall back
	}
	l := le.agree[k] / tot
	if st := le.stability[k]; st > l {
		l = st
	}
	return le.blendWith(l, c)
}

// BlendAgreementOnly is Blend without the ratio-stability channel —
// the ablation arm of experiment E17.
func (le *LinkageEvidence) BlendAgreementOnly(a, b *Profile) float64 {
	if a.Source == b.Source {
		return 0
	}
	c := Combined(a, b)
	k := pairKey(a.SourceAttr, b.SourceAttr)
	tot := le.total[k]
	if tot < 5 {
		return c
	}
	return le.blendWith(le.agree[k]/tot, c)
}

// blendWith applies the boost/veto policy to a linkage-evidence level l
// and a Combined fallback c.
func (le *LinkageEvidence) blendWith(l, c float64) float64 {
	switch {
	case l >= 0.4:
		// Mid-accuracy sources agree on a true correspondence well
		// below 100% of the time, so already 40% agreement on
		// co-linked records is strong evidence (chance agreement
		// between unrelated attributes is far lower).
		boosted := 0.45 + 0.55*l
		if boosted > c {
			return boosted
		}
		return c
	case l < 0.15:
		if c > 0.3 {
			return 0.3
		}
		return c
	default:
		return c
	}
}
