package sourcesel

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/fusion"
)

// gainWorld: a few excellent sources and a long tail of bad ones, so
// the gain curve rises then falls — the paper's headline shape.
func gainWorld(seed int64) *datagen.ClaimWorld {
	return datagen.BuildClaims(datagen.ClaimConfig{
		Seed: seed, NumItems: 200, NumValues: 3,
		NumSources: 14, MinAccuracy: 0.25, MaxAccuracy: 0.95,
	})
}

func TestRestrict(t *testing.T) {
	cw := gainWorld(1)
	one := cw.Claims.Sources()[0]
	sub := Restrict(cw.Claims, map[string]bool{one: true})
	if len(sub.Sources()) != 1 || sub.Sources()[0] != one {
		t.Fatalf("restricted sources = %v", sub.Sources())
	}
	if sub.Len() == 0 || sub.Len() >= cw.Claims.Len() {
		t.Errorf("restricted claims = %d of %d", sub.Len(), cw.Claims.Len())
	}
	// Truth preserved.
	it := cw.Items[0]
	if _, ok := sub.Truth(it); !ok {
		t.Error("truth must survive restriction")
	}
}

func TestGainCurveShape(t *testing.T) {
	cw := gainWorld(2)
	q := FusionAccuracyQuality(fusion.MajorityVote{})
	order := ByEstimatedAccuracy(cw.TrueAccuracy) // best-first
	curve, err := GainCurve(cw.Claims, order, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 14 {
		t.Fatalf("curve length = %d", len(curve))
	}
	// Quality early in the curve (top-5 sources) must beat quality with
	// everything integrated: less is more.
	bestEarly := 0.0
	for _, p := range curve[:5] {
		if p.Quality > bestEarly {
			bestEarly = p.Quality
		}
	}
	final := curve[len(curve)-1].Quality
	if bestEarly <= final {
		t.Errorf("best early quality %f must exceed all-sources quality %f", bestEarly, final)
	}
	// Cumulative cost is monotone.
	for i := 1; i < len(curve); i++ {
		if curve[i].Cost <= curve[i-1].Cost {
			t.Fatal("cost must increase")
		}
		if curve[i].K != i+1 {
			t.Fatal("K must count up")
		}
	}
}

func TestGreedySelectsFewGoodSources(t *testing.T) {
	cw := gainWorld(3)
	g := Greedy{Quality: FusionAccuracyQuality(fusion.MajorityVote{})}
	sel, err := g.Select(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) == 0 {
		t.Fatal("nothing selected")
	}
	if len(sel.Sources) >= 14 {
		t.Errorf("greedy selected all %d sources; diminishing returns should stop it", len(sel.Sources))
	}
	// Greedy quality must beat integrating everything.
	all := map[string]bool{}
	for _, s := range cw.Claims.Sources() {
		all[s] = true
	}
	q := FusionAccuracyQuality(fusion.MajorityVote{})
	allQ, err := q(Restrict(cw.Claims, all))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Quality < allQ {
		t.Errorf("greedy quality %f must be >= all-sources quality %f", sel.Quality, allQ)
	}
	// Curve gains must match quality deltas.
	prev := 0.0
	for _, p := range sel.Curve {
		if diff := p.Quality - prev - p.Gain; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("gain bookkeeping broken at K=%d", p.K)
		}
		prev = p.Quality
	}
}

func TestGreedyBudget(t *testing.T) {
	cw := gainWorld(4)
	g := Greedy{
		Quality: FusionAccuracyQuality(fusion.MajorityVote{}),
		Budget:  3, // at cost 1 each: at most 3 sources
	}
	sel, err := g.Select(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Sources) > 3 {
		t.Errorf("budget violated: %d sources", len(sel.Sources))
	}
	if sel.Cost > 3 {
		t.Errorf("cost %f over budget", sel.Cost)
	}
}

func TestGreedyRequiresQuality(t *testing.T) {
	if _, err := (Greedy{}).Select(data.NewClaimSet()); err == nil {
		t.Error("missing quality function must error")
	}
}

func TestByEstimatedAccuracyOrder(t *testing.T) {
	acc := map[string]float64{"a": 0.5, "b": 0.9, "c": 0.7}
	got := ByEstimatedAccuracy(acc)
	if got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Errorf("order = %v", got)
	}
}

func TestFusionAccuracyQualityErrors(t *testing.T) {
	q := FusionAccuracyQuality(fusion.MajorityVote{})
	// No truth: error.
	cs := data.NewClaimSet()
	cs.Add(data.Claim{Item: data.Item{Entity: "e", Attr: "v"}, Source: "s", Value: data.String("x")})
	if _, err := q(cs); err == nil {
		t.Error("claim set without truth must error")
	}
	// Empty: quality 0, no error.
	if got, err := q(data.NewClaimSet()); err != nil || got != 0 {
		t.Errorf("empty claim set: %f, %v", got, err)
	}
}

func TestGreedyPerCostPrefersCheapGains(t *testing.T) {
	cw := gainWorld(6)
	// Price one top source absurdly; per-cost selection should prefer
	// cheap sources of similar quality first.
	order := ByEstimatedAccuracy(cw.TrueAccuracy)
	expensive := order[0]
	cost := func(s string) float64 {
		if s == expensive {
			return 50
		}
		return 1
	}
	q := FusionAccuracyQuality(fusion.MajorityVote{})
	plain, err := Greedy{Quality: q, Cost: cost}.Select(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	perCost, err := Greedy{Quality: q, Cost: cost, PerCost: true}.Select(cw.Claims)
	if err != nil {
		t.Fatal(err)
	}
	// The per-cost run must achieve its quality at no more cost than the
	// raw-gain run when both reach comparable quality.
	if perCost.Quality >= plain.Quality-0.02 && perCost.Cost > plain.Cost {
		t.Errorf("per-cost selection spent %f for %f; plain spent %f for %f",
			perCost.Cost, perCost.Quality, plain.Cost, plain.Quality)
	}
	// If the expensive source was picked first by plain greedy, per-cost
	// must defer or skip it.
	if len(plain.Sources) > 0 && plain.Sources[0] == expensive {
		if len(perCost.Sources) > 0 && perCost.Sources[0] == expensive {
			t.Error("per-cost selection must not lead with the overpriced source")
		}
	}
}
