// Package sourcesel implements "less is more" source selection (Dong,
// Saha & Srivastava, VLDB'13, surveyed by the Big Data Integration
// tutorial): integrating more sources has diminishing — and eventually
// negative — returns once low-quality tail sources start outvoting good
// ones, so sources should be selected by marginal gain of fusion
// quality against integration cost.
package sourcesel

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/fusion"
)

// Quality measures the fusion quality of a claim subset; higher is
// better. The standard instance is truth-sample accuracy (the paper
// assumes a labelled sample for gain estimation).
type Quality func(cs *data.ClaimSet) (float64, error)

// FusionAccuracyQuality evaluates a fuser's accuracy against the claim
// set's embedded truth sample.
func FusionAccuracyQuality(f fusion.Fuser) Quality {
	return func(cs *data.ClaimSet) (float64, error) {
		if cs.Len() == 0 {
			return 0, nil
		}
		res, err := f.Fuse(cs)
		if err != nil {
			return 0, fmt.Errorf("sourcesel: quality fusion: %w", err)
		}
		acc, n := eval.FusionAccuracy(res.Values, cs)
		if n == 0 {
			return 0, fmt.Errorf("sourcesel: claim set has no truth sample")
		}
		return acc, nil
	}
}

// Restrict returns a claim set containing only claims from the allowed
// sources (truth is preserved for all items).
func Restrict(cs *data.ClaimSet, allowed map[string]bool) *data.ClaimSet {
	out := data.NewClaimSet()
	for _, c := range cs.All() {
		if allowed[c.Source] {
			out.Add(c)
		}
	}
	for _, it := range cs.Items() {
		if v, ok := cs.Truth(it); ok {
			out.SetTruth(it, v)
		}
	}
	return out
}

// GainPoint is one step on the marginal-gain curve.
type GainPoint struct {
	Source  string  // source integrated at this step
	K       int     // number of sources integrated so far
	Quality float64 // fusion quality after integrating K sources
	Gain    float64 // marginal gain vs previous step
	Cost    float64 // cumulative cost
}

// CostFunc prices integrating one source. Uniform(1) when nil.
type CostFunc func(source string) float64

// GainCurve integrates sources in the given order and reports quality
// after each step — the raw material of the paper's Figure-1-style
// diminishing-returns plot.
func GainCurve(cs *data.ClaimSet, order []string, q Quality, cost CostFunc) ([]GainPoint, error) {
	if cost == nil {
		cost = func(string) float64 { return 1 }
	}
	allowed := map[string]bool{}
	var curve []GainPoint
	prev := 0.0
	cum := 0.0
	for k, s := range order {
		allowed[s] = true
		cum += cost(s)
		qual, err := q(Restrict(cs, allowed))
		if err != nil {
			return nil, err
		}
		curve = append(curve, GainPoint{
			Source: s, K: k + 1, Quality: qual, Gain: qual - prev, Cost: cum,
		})
		prev = qual
	}
	return curve, nil
}

// Selection is the result of greedy source selection.
type Selection struct {
	Sources []string    // selected sources in selection order
	Curve   []GainPoint // quality trajectory of the greedy path
	Quality float64     // final quality
	Cost    float64     // final cumulative cost
}

// Greedy selects sources one at a time, each step adding the source
// with the highest marginal quality gain, stopping when the best gain
// drops below MinGain or the budget would be exceeded.
type Greedy struct {
	Quality Quality
	Cost    CostFunc
	// MinGain: stop when the best marginal gain is below this (may be
	// negative to allow plateau walking). Default 0.001.
	MinGain float64
	// Budget caps cumulative cost; 0 means unlimited.
	Budget float64
	// PerCost selects sources by marginal gain *per unit cost* instead
	// of raw gain — the right criterion when sources price differently
	// (the paper's cost-aware variant).
	PerCost bool
}

// Select runs the greedy algorithm over the claim set's sources.
func (g Greedy) Select(cs *data.ClaimSet) (*Selection, error) {
	if g.Quality == nil {
		return nil, fmt.Errorf("sourcesel: Greedy requires a Quality function")
	}
	cost := g.Cost
	if cost == nil {
		cost = func(string) float64 { return 1 }
	}
	minGain := g.MinGain
	if minGain == 0 {
		minGain = 0.001
	}

	remaining := cs.Sources()
	allowed := map[string]bool{}
	sel := &Selection{}
	current := 0.0
	for len(remaining) > 0 {
		bestIdx, bestQ := -1, 0.0
		bestCriterion := 0.0
		for i, s := range remaining {
			c := cost(s)
			if g.Budget > 0 && sel.Cost+c > g.Budget {
				continue
			}
			allowed[s] = true
			q, err := g.Quality(Restrict(cs, allowed))
			delete(allowed, s)
			if err != nil {
				return nil, err
			}
			gain := q - current
			if gain < minGain {
				continue
			}
			criterion := gain
			if g.PerCost && c > 0 {
				criterion = gain / c
			}
			if bestIdx < 0 || criterion > bestCriterion {
				bestIdx, bestQ, bestCriterion = i, q, criterion
			}
		}
		if bestIdx < 0 {
			break
		}
		s := remaining[bestIdx]
		allowed[s] = true
		sel.Cost += cost(s)
		sel.Sources = append(sel.Sources, s)
		sel.Curve = append(sel.Curve, GainPoint{
			Source: s, K: len(sel.Sources), Quality: bestQ,
			Gain: bestQ - current, Cost: sel.Cost,
		})
		current = bestQ
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sel.Quality = current
	return sel, nil
}

// ByEstimatedAccuracy orders sources by descending estimated accuracy —
// the paper's natural integration order for the gain curve.
func ByEstimatedAccuracy(accuracy map[string]float64) []string {
	out := make([]string, 0, len(accuracy))
	for s := range accuracy {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if accuracy[out[i]] != accuracy[out[j]] {
			return accuracy[out[i]] > accuracy[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
