// Package discovery implements the source-discovery stage that feeds
// the integration pipeline: starting from a handful of seed sources,
// exploit the "redundancy as a friend" observation — head products
// appear in many sources, and sources expose product identifiers for
// search engines — to iteratively find tail sources by searching for
// known identifiers and admitting sites that share enough of them. The
// web itself is simulated (a SimWeb of product sites and noise sites
// with a keyword index), standing in for live search-engine access.
package discovery

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/datagen"
)

// Site is one website in the simulated web: product sites host product
// pages (records); noise sites merely mention identifiers (forums,
// spam, review aggregators) and are the precision hazard.
type Site struct {
	ID        string
	IsProduct bool
	// Pages are the product records the site hosts (product sites only).
	Pages []*data.Record
	// Mentions are the identifiers appearing anywhere on the site —
	// hosted products for product sites, scraped chatter for noise.
	Mentions []string
}

// SimWeb is the simulated web: sites plus an inverted identifier index
// (the stand-in for a search engine).
type SimWeb struct {
	Sites map[string]*Site
	index map[string][]string // identifier → site IDs, sorted
}

// Search returns the sites mentioning an identifier (sorted).
func (sw *SimWeb) Search(identifier string) []string {
	return sw.index[identifier]
}

// ProductSites lists the ground-truth product site IDs, sorted.
func (sw *SimWeb) ProductSites() []string {
	var out []string
	for id, s := range sw.Sites {
		if s.IsProduct {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SimWebConfig controls simulated-web construction around a generated
// source web.
type SimWebConfig struct {
	Seed int64
	// NumNoiseSites of identifier-mentioning non-product sites. Default
	// equal to the number of product sites.
	NumNoiseSites int
	// NoiseMentions is how many (random, real) identifiers each noise
	// site mentions. Default 3.
	NoiseMentions int
}

// BuildSimWeb wraps each source of a generated web as a product site
// and adds noise sites that mention random real identifiers.
func BuildSimWeb(web *datagen.Web, cfg SimWebConfig) *SimWeb {
	r := rand.New(rand.NewSource(cfg.Seed))
	numNoise := cfg.NumNoiseSites
	if numNoise <= 0 {
		numNoise = len(web.Sources)
	}
	mentions := cfg.NoiseMentions
	if mentions <= 0 {
		mentions = 3
	}

	sw := &SimWeb{Sites: map[string]*Site{}, index: map[string][]string{}}
	var allIDs []string
	for _, gs := range web.Sources {
		site := &Site{ID: gs.ID, IsProduct: true}
		for _, rec := range web.Dataset.SourceRecords(gs.ID) {
			site.Pages = append(site.Pages, rec)
			if v := rec.Get("pid"); !v.IsNull() {
				site.Mentions = append(site.Mentions, v.Str)
				allIDs = append(allIDs, v.Str)
			}
		}
		sw.Sites[site.ID] = site
	}
	sort.Strings(allIDs)
	allIDs = dedupeSorted(allIDs)
	for i := 0; i < numNoise && len(allIDs) > 0; i++ {
		site := &Site{ID: fmt.Sprintf("noise-%03d", i)}
		for m := 0; m < mentions; m++ {
			site.Mentions = append(site.Mentions, allIDs[r.Intn(len(allIDs))])
		}
		sw.Sites[site.ID] = site
	}
	// Build the inverted index.
	for _, site := range sw.Sites {
		seen := map[string]bool{}
		for _, id := range site.Mentions {
			if !seen[id] {
				seen[id] = true
				sw.index[id] = append(sw.index[id], site.ID)
			}
		}
	}
	for id := range sw.index {
		sort.Strings(sw.index[id])
	}
	return sw
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Crawler runs the iterative discovery loop.
type Crawler struct {
	Web *SimWeb
	// MinSharedIDs a candidate site must mention, out of the known
	// identifier pool, to be admitted as a product source. Default 2 —
	// the redundancy filter that keeps noise sites out.
	MinSharedIDs int
	// SearchBudget caps how many known identifiers are searched per
	// iteration (head identifiers first — the most redundant ones).
	// Default 50.
	SearchBudget int
	// MaxIterations bounds the loop. Default 10.
	MaxIterations int
	// RequirePages additionally demands an admitted site host product
	// pages (a crawl-time check). Default true via NewCrawler.
	RequirePages bool
}

// NewCrawler returns a crawler with the standard settings.
func NewCrawler(web *SimWeb) *Crawler {
	return &Crawler{Web: web, MinSharedIDs: 2, SearchBudget: 50, MaxIterations: 10, RequirePages: true}
}

// IterStats records one discovery iteration.
type IterStats struct {
	Iteration      int
	Discovered     []string // newly admitted sites this iteration
	KnownIDs       int      // identifier pool size at iteration start
	CumPrecision   float64  // product fraction of everything admitted so far
	CumRecall      float64  // fraction of product sites found so far
	SearchesIssued int
}

// Result is the outcome of a discovery run.
type Result struct {
	Admitted   []string // all admitted sites in admission order (incl. seeds)
	Iterations []IterStats
}

// Run discovers sources starting from seed site IDs.
func (c *Crawler) Run(seeds []string) (*Result, error) {
	if c.Web == nil {
		return nil, fmt.Errorf("discovery: crawler needs a web")
	}
	minShared := c.MinSharedIDs
	if minShared <= 0 {
		minShared = 2
	}
	budget := c.SearchBudget
	if budget <= 0 {
		budget = 50
	}
	maxIter := c.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}

	known := map[string]bool{}
	res := &Result{}
	for _, s := range seeds {
		if c.Web.Sites[s] == nil {
			return nil, fmt.Errorf("discovery: unknown seed site %q", s)
		}
		if !known[s] {
			known[s] = true
			res.Admitted = append(res.Admitted, s)
		}
	}

	productTotal := len(c.Web.ProductSites())
	searched := map[string]bool{}
	for iter := 0; iter < maxIter; iter++ {
		// Identifier pool: frequency-ranked over known sites' pages —
		// head identifiers (present in many known sources) first.
		freq := map[string]int{}
		for s := range known {
			site := c.Web.Sites[s]
			seen := map[string]bool{}
			for _, id := range site.Mentions {
				if !seen[id] {
					seen[id] = true
					freq[id]++
				}
			}
		}
		ids := make([]string, 0, len(freq))
		for id := range freq {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if freq[ids[i]] != freq[ids[j]] {
				return freq[ids[i]] > freq[ids[j]]
			}
			return ids[i] < ids[j]
		})

		st := IterStats{Iteration: iter, KnownIDs: len(ids)}
		// Search head identifiers; score candidate sites by distinct
		// known identifiers they mention.
		candScore := map[string]map[string]bool{}
		for _, id := range ids {
			if st.SearchesIssued >= budget {
				break
			}
			if searched[id] {
				continue
			}
			searched[id] = true
			st.SearchesIssued++
			for _, siteID := range c.Web.Search(id) {
				if known[siteID] {
					continue
				}
				if candScore[siteID] == nil {
					candScore[siteID] = map[string]bool{}
				}
				candScore[siteID][id] = true
			}
		}
		// Admit candidates passing the redundancy filter.
		cands := make([]string, 0, len(candScore))
		for siteID := range candScore {
			cands = append(cands, siteID)
		}
		sort.Strings(cands)
		for _, siteID := range cands {
			if len(candScore[siteID]) < minShared {
				continue
			}
			if c.RequirePages && len(c.Web.Sites[siteID].Pages) == 0 {
				continue
			}
			known[siteID] = true
			res.Admitted = append(res.Admitted, siteID)
			st.Discovered = append(st.Discovered, siteID)
		}
		// Cumulative quality.
		product := 0
		for _, s := range res.Admitted {
			if c.Web.Sites[s].IsProduct {
				product++
			}
		}
		if len(res.Admitted) > 0 {
			st.CumPrecision = float64(product) / float64(len(res.Admitted))
		}
		if productTotal > 0 {
			st.CumRecall = float64(product) / float64(productTotal)
		}
		res.Iterations = append(res.Iterations, st)
		if len(st.Discovered) == 0 {
			break
		}
	}
	return res, nil
}

// Dataset assembles the pages of every admitted product site into a
// dataset ready for the integration pipeline — discovery's hand-off.
func (c *Crawler) Dataset(res *Result) (*data.Dataset, error) {
	d := data.NewDataset()
	for _, siteID := range res.Admitted {
		site := c.Web.Sites[siteID]
		if site == nil || len(site.Pages) == 0 {
			continue
		}
		if err := d.AddSource(&data.Source{ID: site.ID, Name: site.ID}); err != nil {
			return nil, err
		}
		for _, rec := range site.Pages {
			if err := d.AddRecord(rec.Clone()); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}
