package discovery

import (
	"testing"

	"repro/internal/datagen"
)

// simWorld builds a web with many sources (head + tail) and a noisy
// simulated search index.
func simWorld(seed int64, sources, noise int) (*datagen.Web, *SimWeb) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: 80, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: sources, DirtLevel: 1,
		IdentifierRate: 1.0, // discovery is about identifier redundancy
		HeadFraction:   0.3, TailCoverage: 0.25,
	})
	sw := BuildSimWeb(web, SimWebConfig{Seed: seed + 2, NumNoiseSites: noise, NoiseMentions: 3})
	return web, sw
}

func TestBuildSimWebStructure(t *testing.T) {
	web, sw := simWorld(1, 10, 6)
	if got := len(sw.ProductSites()); got != 10 {
		t.Fatalf("product sites = %d", got)
	}
	if got := len(sw.Sites); got != 16 {
		t.Fatalf("total sites = %d", got)
	}
	// Index answers: a known identifier resolves to at least its host.
	var anyID string
	for _, rec := range web.Dataset.Records() {
		if v := rec.Get("pid"); !v.IsNull() {
			anyID = v.Str
			break
		}
	}
	if anyID == "" {
		t.Fatal("no identifiers in web")
	}
	if len(sw.Search(anyID)) == 0 {
		t.Error("index must resolve hosted identifiers")
	}
	if len(sw.Search("no-such-id")) != 0 {
		t.Error("unknown identifiers resolve to nothing")
	}
}

func TestCrawlerDiscoversTailSources(t *testing.T) {
	_, sw := simWorld(2, 14, 10)
	c := NewCrawler(sw)
	// Seed with one head source.
	res, err := c.Run([]string{"src-000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations ran")
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.CumRecall < 0.7 {
		t.Errorf("discovery recall = %f, want >= 0.7", last.CumRecall)
	}
	if last.CumPrecision < 0.95 {
		t.Errorf("discovery precision = %f, want >= 0.95 (noise filtered)", last.CumPrecision)
	}
	// Recall grows (weakly) over iterations.
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].CumRecall < res.Iterations[i-1].CumRecall {
			t.Error("recall must be non-decreasing")
		}
	}
}

func TestCrawlerRedundancyFilterBlocksNoise(t *testing.T) {
	_, sw := simWorld(3, 10, 20)
	strict := NewCrawler(sw) // MinSharedIDs 2, RequirePages true
	res, err := strict.Run([]string{"src-000"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Admitted {
		if !sw.Sites[s].IsProduct {
			t.Errorf("noise site %s admitted by strict crawler", s)
		}
	}
	// With the page check off AND threshold 1, noise can slip in —
	// demonstrating why the redundancy filter matters.
	loose := NewCrawler(sw)
	loose.MinSharedIDs = 1
	loose.RequirePages = false
	res2, err := loose.Run([]string{"src-000"})
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, s := range res2.Admitted {
		if !sw.Sites[s].IsProduct {
			noise++
		}
	}
	if noise == 0 {
		t.Error("loose crawler should admit some noise (otherwise the filter is untested)")
	}
}

func TestCrawlerValidation(t *testing.T) {
	if _, err := (&Crawler{}).Run([]string{"x"}); err == nil {
		t.Error("missing web must error")
	}
	_, sw := simWorld(4, 6, 2)
	c := NewCrawler(sw)
	if _, err := c.Run([]string{"ghost"}); err == nil {
		t.Error("unknown seed must error")
	}
}

func TestCrawlerDatasetHandoff(t *testing.T) {
	_, sw := simWorld(5, 12, 8)
	c := NewCrawler(sw)
	res, err := c.Run([]string{"src-000"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Dataset(res)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSources() == 0 || d.NumRecords() == 0 {
		t.Fatal("empty hand-off dataset")
	}
	// Every record belongs to an admitted product site.
	admitted := map[string]bool{}
	for _, s := range res.Admitted {
		admitted[s] = true
	}
	for _, r := range d.Records() {
		if !admitted[r.SourceID] {
			t.Fatalf("record %s from un-admitted source %s", r.ID, r.SourceID)
		}
	}
}
