package blocking

import (
	"slices"
	"sort"

	"repro/internal/data"
	"repro/internal/obs"
)

// Progressive blocking for budget-limited (anytime) entity resolution:
// instead of emitting all candidate pairs at once, emit them in
// decreasing expected-match-likelihood order, so that a resolution run
// cut off after any comparison budget has found as many true matches
// as possible. The heuristic ordering follows the progressive-ER
// literature: pairs from *smaller* blocks first (rare keys are more
// discriminative), and within a block in insertion order; pairs
// co-occurring in several blocks are promoted by their best (smallest)
// block.
type Progressive struct {
	Key KeyFunc
	// MaxBlock skips blocks larger than this entirely (0 = no limit).
	MaxBlock int
	// Workers bounds the block-building workers (0 = NumCPU). Output
	// is identical for any value.
	Workers int
	// Shards fixes the pair-generation shard count (see Opts.Shards).
	Shards int
	// PairMemBudget, when > 0, bounds the bytes of packed pair codes
	// held in RAM: a stream whose raw codes would exceed it spills
	// sorted runs to disk and StreamSet returns a spill-backed set
	// (see Opts.PairMemBudget).
	PairMemBudget int64
	// SpillDir is the directory for spill runs ("" = os.TempDir()).
	SpillDir string
	// Obs records "blocking." metrics (nil falls back to obs.Default).
	Obs *obs.Registry
}

// ProgressiveOrder reorders the collection's blocks into progressive
// emission order — smaller blocks first, ties by key — and drops
// singleton blocks (they emit no pairs). The derived collection is for
// pair emission only: its keys are no longer sorted, so it must not
// feed key-ordered consumers like meta-blocking. Because candidate
// generation dedups to first emission, CandidateSet on the result
// yields the progressive candidate stream through whichever strategy
// the budget selects (in-memory, sharded, or spilled) — all
// byte-identical.
func (x *Indexed) ProgressiveOrder() *Indexed {
	if x.sink.failed() {
		return x
	}
	order := make([]int, 0, len(x.rows))
	for i, row := range x.rows {
		if len(row) >= 2 {
			order = append(order, i)
		}
	}
	slices.SortFunc(order, func(a, b int) int {
		if la, lb := len(x.rows[a]), len(x.rows[b]); la != lb {
			return la - lb
		}
		if x.keys[a] < x.keys[b] {
			return -1
		}
		return 1
	})
	out := &Indexed{cfg: x.cfg, sink: x.sink, ids: x.ids, shards: x.shards, budget: x.budget, dir: x.dir}
	out.keys = make([]string, len(order))
	out.rows = make([][]uint32, len(order))
	for i, bi := range order {
		out.keys[i] = x.keys[bi]
		out.rows[i] = x.rows[bi]
	}
	return out
}

// StreamSet builds the progressive candidate stream as a packed
// candidate set: blocks ordered smallest-first (ties by key),
// deduplicated to first emission. Under PairMemBudget the set is
// spill-backed — pair state lives in sorted disk runs, EmitPairs
// replays the identical order, and the caller must Close it — so
// progressive ordering works at scales where the materialized stream
// would not fit in RAM.
func (p Progressive) StreamSet(records []*data.Record) *CandidateSet {
	e := NewEngineOpts(records, Opts{
		Workers:       p.Workers,
		Shards:        p.Shards,
		PairMemBudget: p.PairMemBudget,
		SpillDir:      p.SpillDir,
		Obs:           p.Obs,
	})
	return e.Blocks(p.Key).Purge(p.MaxBlock).ProgressiveOrder().CandidateSet()
}

// Stream returns candidate pairs in progressive order, deduplicated.
// Blocks are built by the interned parallel engine; dedup runs on
// packed pair codes preserving the emission order. The pair slice is
// materialized by construction — set PairMemBudget and use StreamSet
// to keep the stream on disk instead.
func (p Progressive) Stream(records []*data.Record) []data.Pair {
	cs := p.StreamSet(records)
	defer cs.Close()
	return cs.Pairs()
}

// Candidates implements Blocker (the full stream).
func (p Progressive) Candidates(records []*data.Record) []data.Pair {
	return p.Stream(records)
}

// RecallCurve measures, for each budget (number of comparisons), the
// fraction of truth pairs found within the first `budget` pairs of the
// given candidate order — the progressive-ER evaluation curve. The
// budgets slice is not modified and the result is aligned to it
// position-for-position (out[i] is the recall at budgets[i], whatever
// order the caller listed them in). Pair orientation is normalized on
// both sides, so a stream emitting (B, A) still credits a truth pair
// (A, B).
func RecallCurve(ordered []data.Pair, truth []data.Pair, budgets []int) []float64 {
	truthSet := make(map[data.Pair]bool, len(truth))
	for _, p := range truth {
		truthSet[data.NewPair(p.A, p.B)] = true
	}
	if len(truthSet) == 0 {
		return make([]float64, len(budgets))
	}
	// Walk the stream once against an ascending view of the budgets;
	// write each recall through the sort permutation so the output
	// matches the caller's original budget order.
	order := make([]int, len(budgets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return budgets[order[i]] < budgets[order[j]] })
	out := make([]float64, len(budgets))
	found := 0
	bi := 0
	for bi < len(order) && budgets[order[bi]] <= 0 {
		bi++ // non-positive budgets see no pairs
	}
	for i, p := range ordered {
		if truthSet[data.NewPair(p.A, p.B)] {
			found++
		}
		for bi < len(order) && i+1 == budgets[order[bi]] {
			out[order[bi]] = float64(found) / float64(len(truthSet))
			bi++
		}
	}
	// Budgets beyond the stream length get the final recall.
	final := float64(found) / float64(len(truthSet))
	for ; bi < len(order); bi++ {
		out[order[bi]] = final
	}
	return out
}
