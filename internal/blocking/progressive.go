package blocking

import (
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
)

// Progressive blocking for budget-limited (anytime) entity resolution:
// instead of emitting all candidate pairs at once, emit them in
// decreasing expected-match-likelihood order, so that a resolution run
// cut off after any comparison budget has found as many true matches
// as possible. The heuristic ordering follows the progressive-ER
// literature: pairs from *smaller* blocks first (rare keys are more
// discriminative), and within a block in insertion order; pairs
// co-occurring in several blocks are promoted by their best (smallest)
// block.
type Progressive struct {
	Key KeyFunc
	// MaxBlock skips blocks larger than this entirely (0 = no limit).
	MaxBlock int
	// Workers bounds the block-building workers (0 = NumCPU). Output
	// is identical for any value.
	Workers int
}

// Stream returns candidate pairs in progressive order, deduplicated.
// Blocks are built by the interned parallel engine; dedup runs on
// packed pair codes preserving the sequential emission order.
func (p Progressive) Stream(records []*data.Record) []data.Pair {
	x := BuildIndexed(parallel.Config{Workers: p.Workers}, records, p.Key)
	type blockEntry struct {
		key string
		row []uint32
	}
	entries := make([]blockEntry, 0, len(x.keys))
	for i, row := range x.rows {
		if len(row) < 2 {
			continue
		}
		if p.MaxBlock > 0 && len(row) > p.MaxBlock {
			continue
		}
		entries = append(entries, blockEntry{key: x.keys[i], row: row})
	}
	// Smaller blocks first; ties by key for determinism.
	sort.Slice(entries, func(i, j int) bool {
		if len(entries[i].row) != len(entries[j].row) {
			return len(entries[i].row) < len(entries[j].row)
		}
		return entries[i].key < entries[j].key
	})
	total := 0
	for _, e := range entries {
		total += len(e.row) * (len(e.row) - 1) / 2
	}
	codes := make([]uint64, 0, total)
	for _, e := range entries {
		for i := 0; i < len(e.row); i++ {
			for j := i + 1; j < len(e.row); j++ {
				codes = append(codes, pairCode(e.row[i], e.row[j]))
			}
		}
	}
	return (&CandidateSet{ids: x.ids, codes: dedupCodesStable(codes)}).Pairs()
}

// Candidates implements Blocker (the full stream).
func (p Progressive) Candidates(records []*data.Record) []data.Pair {
	return p.Stream(records)
}

// RecallCurve measures, for each budget (number of comparisons), the
// fraction of truth pairs found within the first `budget` pairs of the
// given candidate order — the progressive-ER evaluation curve.
func RecallCurve(ordered []data.Pair, truth []data.Pair, budgets []int) []float64 {
	truthSet := make(map[data.Pair]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	if len(truthSet) == 0 {
		return make([]float64, len(budgets))
	}
	sort.Ints(budgets)
	out := make([]float64, len(budgets))
	found := 0
	bi := 0
	for i, p := range ordered {
		if truthSet[p] {
			found++
		}
		for bi < len(budgets) && i+1 == budgets[bi] {
			out[bi] = float64(found) / float64(len(truthSet))
			bi++
		}
	}
	// Budgets beyond the stream length get the final recall.
	final := float64(found) / float64(len(truthSet))
	for ; bi < len(budgets); bi++ {
		out[bi] = final
	}
	return out
}
