package blocking

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
)

func TestMinHashLSHFindsSimilarPairs(t *testing.T) {
	recs := []*data.Record{
		rec("m1", "nova camera pro 300 deluxe edition"),
		rec("m2", "nova camera pro 300 deluxe"),
		rec("m3", "completely different kitchen blender appliance"),
		rec("m4", "unrelated garden hose fitting set"),
	}
	lsh := MinHashLSH{Bands: 16, Rows: 2, Seed: 1} // low threshold
	got := pairSet(lsh.Candidates(recs))
	if !got[data.NewPair("m1", "m2")] {
		t.Error("near-duplicate titles must collide in some band")
	}
	if got[data.NewPair("m3", "m4")] {
		t.Error("dissimilar titles should not collide (w.h.p.)")
	}
}

func TestMinHashDeterministic(t *testing.T) {
	recs := sampleRecords()
	lsh := MinHashLSH{Seed: 7}
	a := pairSet(lsh.Candidates(recs))
	b := pairSet(lsh.Candidates(recs))
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for p := range a {
		if !b[p] {
			t.Fatalf("pair %v missing on rerun", p)
		}
	}
}

func TestMinHashEstimateJaccard(t *testing.T) {
	lsh := MinHashLSH{Bands: 32, Rows: 4, Seed: 3}
	same := lsh.EstimateJaccard(rec("a", "one two three four"), rec("b", "one two three four"))
	if same < 0.99 {
		t.Errorf("identical sets estimate = %f, want ~1", same)
	}
	disjoint := lsh.EstimateJaccard(rec("c", "alpha beta gamma"), rec("d", "delta epsilon zeta"))
	if disjoint > 0.1 {
		t.Errorf("disjoint sets estimate = %f, want ~0", disjoint)
	}
	half := lsh.EstimateJaccard(rec("e", "one two three four"), rec("f", "one two five six"))
	if half < 0.1 || half > 0.65 {
		t.Errorf("overlapping sets estimate = %f, want mid-range", half)
	}
	if lsh.EstimateJaccard(rec("g", ""), rec("h", "x")) != 0 {
		t.Error("empty record estimates 0")
	}
}

func TestMinHashOnGeneratedCorpus(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 91, NumEntities: 60, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 92, NumSources: 10, DirtLevel: 1, HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()
	lsh := MinHashLSH{Bands: 12, Rows: 3, Seed: 5}
	q := eval.Blocking(lsh.Candidates(records), truth, len(records))
	if q.PairCompleteness < 0.8 {
		t.Errorf("LSH pair completeness = %f, want >= 0.8", q.PairCompleteness)
	}
	if q.ReductionRatio < 0.3 {
		t.Errorf("LSH reduction ratio = %f, want >= 0.3", q.ReductionRatio)
	}
}

func TestPhoneticKeyBlocksSoundalikes(t *testing.T) {
	recs := []*data.Record{
		rec("p1", "smith turbo blender"),
		rec("p2", "smyth turbo blender"),
		rec("p3", "johnson mixer"),
	}
	for _, scheme := range []string{"soundex", "nysiis"} {
		got := pairSet(Standard{Key: PhoneticKey("title", scheme)}.Candidates(recs))
		if !got[data.NewPair("p1", "p2")] {
			t.Errorf("%s: smith/smyth must share a block", scheme)
		}
	}
}

func BenchmarkMinHashLSH(b *testing.B) {
	recs := make([]*data.Record, 500)
	for i := range recs {
		recs[i] = rec(fmt.Sprintf("b%03d", i), fmt.Sprintf("brand%d model %d series alpha", i%20, i))
	}
	lsh := MinHashLSH{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsh.Candidates(recs)
	}
}
