package blocking

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/datagen"
)

func propRecords(seed int64, n int) []*data.Record {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: seed, NumEntities: n, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: seed + 1, NumSources: 6, DirtLevel: 1, HeadFraction: 0.5, TailCoverage: 0.3,
	})
	return web.Dataset.Records()
}

// TestBlockersEmitValidPairs: every blocker yields canonical pairs of
// existing record IDs, no self-pairs, no duplicates.
func TestBlockersEmitValidPairs(t *testing.T) {
	records := propRecords(7, 30)
	known := map[string]bool{}
	for _, r := range records {
		known[r.ID] = true
	}
	blockers := map[string]Blocker{
		"token":    Standard{Key: TokenKey("title")},
		"exact":    Standard{Key: AttrExactKey("title")},
		"qgram":    Standard{Key: QGramKey("title", 3)},
		"sn":       SortedNeighborhood{Keys: []KeyFunc{AttrExactKey("title")}, Window: 4},
		"minhash":  MinHashLSH{Seed: 3},
		"phonetic": Standard{Key: PhoneticKey("title", "soundex")},
		"progress": Progressive{Key: TokenKey("title")},
	}
	for name, b := range blockers {
		seen := map[data.Pair]bool{}
		for _, p := range b.Candidates(records) {
			if p.A >= p.B {
				t.Fatalf("%s: non-canonical pair %v", name, p)
			}
			if !known[p.A] || !known[p.B] {
				t.Fatalf("%s: pair references unknown record %v", name, p)
			}
			if seen[p] {
				t.Fatalf("%s: duplicate pair %v", name, p)
			}
			seen[p] = true
		}
	}
}

// TestSortedNeighborhoodWindowMonotone: a wider window's candidate set
// contains the narrower window's.
func TestSortedNeighborhoodWindowMonotone(t *testing.T) {
	records := propRecords(11, 25)
	f := func(w uint8) bool {
		win := int(w%6) + 2
		small := SortedNeighborhood{Keys: []KeyFunc{AttrExactKey("title")}, Window: win}
		large := SortedNeighborhood{Keys: []KeyFunc{AttrExactKey("title")}, Window: win + 3}
		smallSet := pairSet(small.Candidates(records))
		largeSet := pairSet(large.Candidates(records))
		for p := range smallSet {
			if !largeSet[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPurgeMonotone: purging with a smaller cap never yields more
// blocks, and purged blocks are a subset.
func TestPurgeMonotone(t *testing.T) {
	records := propRecords(13, 40)
	blocks := BuildBlocks(records, TokenKey("title"))
	f := func(a, b uint8) bool {
		lo, hi := int(a%20)+1, int(a%20)+1+int(b%20)
		pl := blocks.Purge(lo)
		ph := blocks.Purge(hi)
		if len(pl) > len(ph) {
			return false
		}
		for k := range pl {
			if _, ok := ph[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestProgressiveStreamIsPermutationOfCandidates: the progressive
// stream contains exactly the standard candidate set, reordered.
func TestProgressiveStreamIsPermutationOfCandidates(t *testing.T) {
	records := propRecords(17, 30)
	prog := Progressive{Key: TokenKey("title")}.Stream(records)
	std := Standard{Key: TokenKey("title")}.Candidates(records)
	if len(prog) != len(std) {
		t.Fatalf("stream %d pairs vs standard %d", len(prog), len(std))
	}
	ps := pairSet(prog)
	for _, p := range std {
		if !ps[p] {
			t.Fatalf("standard pair %v missing from stream", p)
		}
	}
}

// TestMetaBlockingOutputSubset: meta-blocking only ever prunes — its
// candidates are a subset of the raw block pairs.
func TestMetaBlockingOutputSubset(t *testing.T) {
	records := propRecords(19, 30)
	blocks := BuildBlocks(records, TokenKey("title"))
	raw := pairSet(blocks.Pairs())
	for _, weight := range []WeightScheme{CBS, ECBS, JS} {
		for _, prune := range []PruneScheme{WEP, CEP, WNP} {
			got := MetaBlocker{Weight: weight, Prune: prune}.Candidates(blocks)
			for _, p := range got {
				if !raw[p] {
					t.Fatalf("%v/%v emitted pair %v outside raw candidates", weight, prune, p)
				}
			}
		}
	}
}
