package blocking

// The interned, parallel blocking engine. Record IDs are interned to
// dense uint32 ranks assigned in lexicographic order, blocks become
// []uint32 rows, and candidate pairs travel as packed uint64 codes
// (the smaller rank in the high word, so code order is pair order and
// code equality is pair equality). Deduplication sorts and compacts
// the code slice instead of probing a map[data.Pair]bool — no per-pair
// heap allocations — while a position tag preserves the sequential
// implementation's first-seen emission order, keeping every candidate
// list byte-identical to the seed path at any worker count.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrNilKey reports a blocking pass configured without a key function.
var ErrNilKey = errors.New("blocking: nil key function")

// errSink collects the first error raised along an engine's chain of
// derived operations (Blocks → Purge → CandidateSet → meta-blocking).
// Those methods return values, not errors — bufio.Writer-style, the
// chain keeps running as cheap no-ops once poisoned and the caller
// reads the sticky error from Engine.Err at the end.
type errSink struct{ err error }

func (s *errSink) set(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *errSink) failed() bool { return s != nil && s.err != nil }

// ranker maps record IDs to dense uint32 ranks in lexicographic order,
// so rank comparisons agree with data.Pair's canonical ID ordering.
type ranker struct {
	ids []string // rank → ID, sorted ascending, distinct
}

func newRanker(ids []string) *ranker {
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	return &ranker{ids: slices.Compact(sorted)}
}

// rank returns the dense rank of id (which must be present).
func (rk *ranker) rank(id string) uint32 {
	i, _ := slices.BinarySearch(rk.ids, id)
	return uint32(i)
}

// pairCode packs two record ranks into one uint64 with the smaller
// rank in the high word: equal codes are equal pairs, and ascending
// codes are pairs in ascending (A, B) order.
func pairCode(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// dedupCodesStable removes duplicate codes preserving first-occurrence
// order: it sorts a copy to learn the distinct code set, then sweeps
// the original once, keeping each code the first time its slot in the
// sorted set is hit. One clone, one uint64 sort, one bool slice — the
// inner loop never touches the heap per pair. When deduplication
// shrinks the slice past 2× its backing array, the result is
// right-sized: long-lived candidate sets and spilled runs must not pin
// an oversized raw-code array for their whole lifetime.
func dedupCodesStable(codes []uint64) []uint64 {
	if len(codes) < 2 {
		return codes
	}
	uniq := slices.Clone(codes)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)
	if len(uniq) == len(codes) {
		return codes // already distinct
	}
	seen := make([]bool, len(uniq))
	out := codes[:0]
	for _, c := range codes {
		i, _ := slices.BinarySearch(uniq, c)
		if !seen[i] {
			seen[i] = true
			out = append(out, c)
		}
	}
	if cap(out) >= 2*len(out) {
		out = slices.Clone(out)
	}
	return out
}

// Opts configures an engine beyond the worker count: the shard count
// for block building and pair generation, and the pair-memory budget
// past which pair generation spills sorted runs to temp files. Every
// combination produces byte-identical candidate output; the knobs only
// trade memory and parallelism.
type Opts struct {
	// Workers bounds the parallel passes (0 = NumCPU).
	Workers int
	// Shards splits block building and pair generation into this many
	// data shards (<= 1 means one shard per worker for block building
	// and unsharded pair generation). The shard plan depends only on
	// the data and this count, never on Workers.
	Shards int
	// PairMemBudget, when > 0, bounds the bytes of packed pair codes
	// held in RAM during candidate generation. A pass whose raw pair
	// codes would exceed it spills sorted runs of (code, position)
	// entries to temp files and streams the deduplicated result back
	// through a k-way loser-tree merge.
	PairMemBudget int64
	// SpillDir is the directory for spill runs ("" = os.TempDir()).
	SpillDir string
	// Obs records "blocking." metrics (nil falls back to obs.Default).
	Obs *obs.Registry
	// Ctx, when set, makes errors stick to the engine instead of
	// panicking (see NewEngineCtx).
	Ctx context.Context
}

// Engine shares one record-ID interning across several blocking passes
// over the same records, so the resulting candidate sets live in one
// rank space and can be unioned on packed codes.
type Engine struct {
	cfg    parallel.Config
	recs   []*data.Record
	rk     *ranker
	ranks  []uint32 // record position → rank
	sink   *errSink // nil on the legacy constructors: errors panic instead
	shards int      // pair-generation shard count (<=1 = unsharded)
	budget int64    // pair-memory budget in bytes (0 = unlimited)
	dir    string   // spill directory ("" = os.TempDir())
}

// NewEngine interns the record IDs once (in parallel) and returns an
// engine bound to the records. workers <= 0 means NumCPU.
func NewEngine(records []*data.Record, workers int) *Engine {
	return NewEngineObs(records, workers, nil)
}

// NewEngineOpts is the fully-configurable constructor: sharded block
// building and pair generation, an optional pair-memory budget with
// disk spill, metrics and cancellation. With Opts.Ctx set, errors stick
// to the engine (read Err after the chain); without it they panic,
// matching NewEngine.
func NewEngineOpts(records []*data.Record, o Opts) *Engine {
	var sink *errSink
	if o.Ctx != nil {
		sink = &errSink{}
	}
	e := newEngine(parallel.Config{Workers: o.Workers, Obs: obs.OrDefault(o.Obs), Ctx: o.Ctx}, sink, records)
	e.shards = o.Shards
	e.budget = o.PairMemBudget
	e.dir = o.SpillDir
	return e
}

// NewEngineObs is NewEngine with an attached metrics registry: the
// engine and every Indexed/CandidateSet derived from it record
// "blocking." counters (blocks built/purged, raw vs emitted pairs,
// dedup ratio). A nil registry falls back to the process-wide
// obs.Default registry (usually unset, which disables recording at no
// cost).
func NewEngineObs(records []*data.Record, workers int, reg *obs.Registry) *Engine {
	return newEngine(parallel.Config{Workers: workers, Obs: obs.OrDefault(reg)}, nil, records)
}

// NewEngineCtx is NewEngineObs bound to a context: the parallel passes
// observe ctx at chunk boundaries, and instead of panicking, any error
// (cancellation, worker panic, nil key) sticks to the engine — derived
// operations degrade to cheap no-ops and the caller reads the first
// error from Err after the chain. This is the constructor the pipeline
// uses for cancellable runs.
func NewEngineCtx(ctx context.Context, records []*data.Record, workers int, reg *obs.Registry) *Engine {
	return newEngine(parallel.Config{Workers: workers, Obs: obs.OrDefault(reg), Ctx: ctx}, &errSink{}, records)
}

func newEngine(cfg parallel.Config, sink *errSink, records []*data.Record) *Engine {
	e := &Engine{cfg: cfg, recs: records, sink: sink}
	ids := make([]string, len(records))
	for i, r := range records {
		ids[i] = r.ID
	}
	e.rk = newRanker(ids)
	var err error
	e.ranks, err = parallel.MapSlice(e.cfg, records, func(r *data.Record) uint32 {
		return e.rk.rank(r.ID)
	})
	e.check(err)
	return e
}

// Err returns the first error recorded by this engine or anything
// derived from it. Always nil for engines built without a context.
func (e *Engine) Err() error {
	if e.sink == nil {
		return nil
	}
	return e.sink.err
}

// check records err on the sink; without a sink (legacy constructors)
// a non-nil error is a programming fault and panics, preserving the
// historical crash semantics.
func (e *Engine) check(err error) bool {
	if err == nil {
		return false
	}
	if e.sink != nil {
		e.sink.set(err)
		return true
	}
	panic(err)
}

// empty returns the poisoned/empty index carrying the engine's
// configuration, the return value of every failed derivation.
func (e *Engine) empty() *Indexed {
	return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids, shards: e.shards, budget: e.budget, dir: e.dir}
}

// Blocks applies key to every record — the expensive tokenisation runs
// sharded over contiguous input ranges — and merges the shard maps
// deterministically into an interned block collection. Concatenating a
// key's shard rows in shard order preserves record input order within
// every block; keys are sorted, exactly matching the sequential
// BuildBlocks semantics, so the result is byte-identical for any
// worker or shard count. The shard count defaults to the worker count;
// Opts.Shards fixes it independently of the pool size.
func (e *Engine) Blocks(key KeyFunc) *Indexed {
	if e.sink.failed() {
		return e.empty()
	}
	if key == nil {
		e.check(fmt.Errorf("blocking: engine pass: %w", ErrNilKey))
		return e.empty()
	}
	n := len(e.recs)
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	s := e.shards
	if s <= 1 {
		s = w
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	shards := make([]map[string][]uint32, s)
	err := parallel.ForEach(parallel.Config{Workers: w, Ctx: e.cfg.Ctx}, s, func(si int) {
		lo, hi := n*si/s, n*(si+1)/s
		m := make(map[string][]uint32)
		var ks keySet
		for i := lo; i < hi; i++ {
			ks.reset()
			for _, k := range key(e.recs[i]) {
				if k == "" || !ks.add(k) {
					continue
				}
				m[k] = append(m[k], e.ranks[i])
			}
		}
		shards[si] = m
	})
	if e.check(err) {
		return e.empty()
	}
	total := 0
	for _, m := range shards {
		total += len(m)
	}
	keys := make([]string, 0, total)
	for _, m := range shards {
		for k := range m {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	rows := make([][]uint32, len(keys))
	if s == 1 {
		for i, k := range keys {
			rows[i] = shards[0][k]
		}
	} else {
		err := parallel.ForEach(e.cfg, len(keys), func(i int) {
			k := keys[i]
			sz := 0
			for _, m := range shards {
				sz += len(m[k])
			}
			row := make([]uint32, 0, sz)
			for _, m := range shards {
				row = append(row, m[k]...)
			}
			rows[i] = row
		})
		if e.check(err) {
			return e.empty()
		}
	}
	e.cfg.Obs.Counter("blocking.blocks_built").Add(int64(len(keys)))
	x := e.empty()
	x.keys, x.rows = keys, rows
	return x
}

// BuildIndexed is the one-shot form of NewEngine(...).Blocks(key): it
// builds an interned block collection from records in parallel.
func BuildIndexed(cfg parallel.Config, records []*data.Record, key KeyFunc) *Indexed {
	return NewEngine(records, cfg.Workers).Blocks(key)
}

// Indexed is the interned form of a block collection: record IDs are
// dense lexicographic ranks, block keys are sorted, and each row holds
// the member ranks in record input order.
type Indexed struct {
	cfg    parallel.Config
	sink   *errSink   // shared with the engine; nil on standalone indexes
	ids    []string   // rank → record ID, sorted ascending
	keys   []string   // sorted block keys
	rows   [][]uint32 // rows[i] = member ranks of keys[i], input order
	shards int        // pair-generation shard count (<=1 = unsharded)
	budget int64      // pair-memory budget in bytes (0 = unlimited)
	dir    string     // spill directory ("" = os.TempDir())
}

// check mirrors Engine.check for operations derived from the index.
func (x *Indexed) check(err error) bool {
	if err == nil {
		return false
	}
	if x.sink != nil {
		x.sink.set(err)
		return true
	}
	panic(err)
}

// Index interns a map-form block collection. Within-block order is
// preserved; keys are sorted once (meta-blocking reuses this ordering
// instead of re-sorting the key set per pass).
func (b Blocks) Index() *Indexed {
	keys := b.sortedKeys()
	total := 0
	for _, ids := range b {
		total += len(ids)
	}
	all := make([]string, 0, total)
	for _, ids := range b {
		all = append(all, ids...)
	}
	rk := newRanker(all)
	x := &Indexed{ids: rk.ids, keys: keys, rows: make([][]uint32, len(keys))}
	for i, k := range keys {
		src := b[k]
		row := make([]uint32, len(src))
		for j, id := range src {
			row[j] = rk.rank(id)
		}
		x.rows[i] = row
	}
	return x
}

// NumBlocks returns the number of blocks.
func (x *Indexed) NumBlocks() int { return len(x.keys) }

// NumRecords returns the size of the interned ID table.
func (x *Indexed) NumRecords() int { return len(x.ids) }

// Comparisons counts the total pairwise comparisons implied by the
// blocks, duplicates across blocks included (the meta-blocking cost
// measure).
func (x *Indexed) Comparisons() int {
	n := 0
	for _, row := range x.rows {
		n += len(row) * (len(row) - 1) / 2
	}
	return n
}

// Purge drops blocks larger than maxSize, sharing the ID table with
// the receiver. maxSize <= 0 is a no-op.
func (x *Indexed) Purge(maxSize int) *Indexed {
	if maxSize <= 0 {
		return x
	}
	out := &Indexed{cfg: x.cfg, sink: x.sink, ids: x.ids, shards: x.shards, budget: x.budget, dir: x.dir}
	for i, row := range x.rows {
		if len(row) <= maxSize {
			out.keys = append(out.keys, x.keys[i])
			out.rows = append(out.rows, row)
		}
	}
	x.cfg.Obs.Counter("blocking.blocks_purged").Add(int64(len(x.keys) - len(out.keys)))
	return out
}

// Blocks materialises the map form of the collection.
func (x *Indexed) Blocks() Blocks {
	b := make(Blocks, len(x.keys))
	for i, k := range x.keys {
		ids := make([]string, len(x.rows[i]))
		for j, r := range x.rows[i] {
			ids[j] = x.ids[r]
		}
		b[k] = ids
	}
	return b
}

// pairOffsets prefix-sums the per-block pair counts: offs[i] is the
// raw emission position of block i's first pair in the sequential
// order (sorted keys, in-block input order). The offsets are the shard
// plan for pair generation and the position tags that keep sharded and
// spilled dedup byte-identical to the in-memory sweep.
func (x *Indexed) pairOffsets() []int {
	offs := make([]int, len(x.rows)+1)
	for i, row := range x.rows {
		offs[i+1] = offs[i] + len(row)*(len(row)-1)/2
	}
	return offs
}

// rawCodes packs every in-block pair into one flat code slice in the
// sequential emission order (sorted keys, in-block input order),
// duplicates across blocks retained. Per-block offsets are prefix-
// summed so the fill parallelises with deterministic placement.
func (x *Indexed) rawCodes() []uint64 {
	offs := x.pairOffsets()
	codes := make([]uint64, offs[len(x.rows)])
	err := parallel.ForEach(x.cfg, len(x.rows), func(i int) {
		row := x.rows[i]
		w := offs[i]
		for a := 0; a < len(row); a++ {
			for b := a + 1; b < len(row); b++ {
				codes[w] = pairCode(row[a], row[b])
				w++
			}
		}
	})
	if x.check(err) {
		return nil
	}
	return codes
}

// CandidateSet expands the blocks into the deduplicated packed
// candidate collection, in the exact order Blocks.Pairs emits. Three
// execution strategies produce that byte-identical order: the plain
// in-memory sweep, the sharded in-memory path (Opts.Shards > 1), and —
// when the raw pair codes would exceed Opts.PairMemBudget — external
// generation that spills sorted runs to temp files and streams the
// deduplicated result through k-way loser-tree merges. Spill-backed
// sets must be released with Close.
func (x *Indexed) CandidateSet() *CandidateSet {
	if x.sink.failed() {
		return &CandidateSet{ids: x.ids}
	}
	offs := x.pairOffsets()
	nraw := offs[len(x.rows)]
	var cs *CandidateSet
	switch {
	case x.budget > 0 && int64(nraw)*8 > x.budget:
		cs = x.spillCandidates(offs)
	case x.shards > 1:
		cs = &CandidateSet{ids: x.ids, codes: x.shardedCodes(offs)}
	default:
		raw := x.rawCodes()
		if x.sink.failed() {
			return &CandidateSet{ids: x.ids}
		}
		cs = &CandidateSet{ids: x.ids, codes: dedupCodesStable(raw)}
	}
	if x.sink.failed() {
		return &CandidateSet{ids: x.ids}
	}
	if reg := x.cfg.Obs; reg != nil {
		rawC := reg.Counter("blocking.pairs_raw")
		rawC.Add(int64(nraw))
		emitC := reg.Counter("blocking.pairs_emitted")
		emitC.Add(int64(cs.Len()))
		// Cumulative ratio across all passes on this registry, so the
		// gauge stays meaningful when a pipeline unions several blockers.
		if tot := rawC.Value(); tot > 0 {
			reg.Gauge("blocking.dedup_ratio").Set(float64(emitC.Value()) / float64(tot))
		}
	}
	return cs
}

// Pairs expands the blocks into deduplicated candidate pairs,
// byte-identical to the sequential map-based implementation.
func (x *Indexed) Pairs() []data.Pair { return x.CandidateSet().Pairs() }

// EmitPairs streams the deduplicated pairs to emit in Pairs order,
// stopping early when emit returns false.
func (x *Indexed) EmitPairs(emit func(data.Pair) bool) { x.CandidateSet().EmitPairs(emit) }

// CandidateSet is a deduplicated candidate-pair collection packed as
// uint64 rank codes over a shared ID table. It supports random access
// (for the parallel matcher) and streaming emission without ever
// materialising a []data.Pair.
//
// A set built under a pair-memory budget is spill-backed: its codes
// live in sorted run files on disk (ext != nil) and only stream
// through EmitPairs/emitCodes; random access via Pair is unavailable
// and Close must be called to release the run files. The codes slice
// then holds the in-memory tail a union appended after the spilled
// stream.
type CandidateSet struct {
	ids   []string
	codes []uint64  // deduplicated pair codes, first-emission order
	ext   *spillSet // non-nil: codes stream from disk, c.codes is the union tail
	sink  *errSink  // error sink for streaming reads; nil panics (legacy semantics)
}

// Len returns the number of candidate pairs.
func (c *CandidateSet) Len() int {
	if c.ext != nil {
		return c.ext.n + len(c.codes)
	}
	return len(c.codes)
}

// Spilled reports whether the set streams from disk. Spilled sets do
// not support random access via Pair; consume them with EmitPairs (or
// a streaming matcher) and release them with Close.
func (c *CandidateSet) Spilled() bool { return c.ext != nil }

// Close releases the spill run files of a spill-backed set (shared
// files are reference-counted across unions). In-memory sets need no
// Close; calling it is a no-op.
func (c *CandidateSet) Close() error {
	if c.ext == nil {
		return nil
	}
	return c.ext.release()
}

// decode unpacks a code into its pair. The high word holds the smaller
// rank, so A < B lexicographically without a comparison.
func (c *CandidateSet) decode(code uint64) data.Pair {
	return data.Pair{A: c.ids[code>>32], B: c.ids[code&0xffffffff]}
}

// Pair decodes the i-th candidate. Spilled sets have no random access:
// Pair panics on them — use EmitPairs.
func (c *CandidateSet) Pair(i int) data.Pair {
	if c.ext != nil {
		panic("blocking: random access on a spilled candidate set (use EmitPairs)")
	}
	return c.decode(c.codes[i])
}

// check records a streaming error on the engine's sink, panicking when
// the set has none (the legacy crash semantics).
func (c *CandidateSet) check(err error) bool {
	if err == nil {
		return false
	}
	if c.sink != nil {
		c.sink.set(err)
		return true
	}
	panic(err)
}

// emitCodes streams the packed codes in emission order: the spilled
// stream (when present) followed by the in-memory tail.
func (c *CandidateSet) emitCodes(emit func(code uint64) bool) {
	if c.ext != nil {
		stop := false
		err := c.ext.emit(func(code uint64) bool {
			if !emit(code) {
				stop = true
				return false
			}
			return true
		})
		if c.check(err) || stop {
			return
		}
	}
	for _, code := range c.codes {
		if !emit(code) {
			return
		}
	}
}

// Pairs materialises the full pair slice (nil when empty).
func (c *CandidateSet) Pairs() []data.Pair {
	n := c.Len()
	if n == 0 {
		return nil
	}
	out := make([]data.Pair, 0, n)
	c.emitCodes(func(code uint64) bool {
		out = append(out, c.decode(code))
		return true
	})
	return out
}

// EmitPairs streams the candidates to emit in order, stopping early
// when emit returns false.
func (c *CandidateSet) EmitPairs(emit func(data.Pair) bool) {
	c.emitCodes(func(code uint64) bool { return emit(c.decode(code)) })
}

// RecordIDs returns the distinct record IDs referenced by the
// candidates, ascending.
func (c *CandidateSet) RecordIDs() []string {
	seen := make([]bool, len(c.ids))
	c.emitCodes(func(code uint64) bool {
		seen[code>>32] = true
		seen[code&0xffffffff] = true
		return true
	})
	var out []string
	for rank, ok := range seen {
		if ok {
			out = append(out, c.ids[rank])
		}
	}
	return out
}

// UnionCandidates unions candidate sets, deduplicating while
// preserving first-seen order across the concatenation — the packed
// equivalent of appending pair slices and deduplicating through a
// map[data.Pair]bool. Sets built over the same Engine share an ID
// table and merge on codes; mixed tables fall back to re-ranking.
//
// A spilled set in the first position stays on disk: the union keeps
// its streamed prefix and appends only the genuinely new codes of the
// later (in-memory) sets as a tail, so unioning identifier blocking
// into a budgeted token-blocking pass never materialises the spilled
// stream. A spilled set in any later position must be materialised to
// preserve first-seen order and loses its disk backing.
func UnionCandidates(sets ...*CandidateSet) *CandidateSet {
	var nonEmpty []*CandidateSet
	for _, s := range sets {
		if s != nil && s.Len() > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		return &CandidateSet{}
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	shared := true
	for _, s := range nonEmpty[1:] {
		if !sameIDs(nonEmpty[0].ids, s.ids) {
			shared = false
			break
		}
	}
	if !shared {
		return rerankUnion(nonEmpty)
	}
	if base := nonEmpty[0]; base.ext != nil {
		return unionOntoSpilled(base, nonEmpty[1:])
	}
	total := 0
	for _, s := range nonEmpty {
		total += s.Len()
	}
	codes := make([]uint64, 0, total)
	for _, s := range nonEmpty {
		s.emitCodes(func(code uint64) bool {
			codes = append(codes, code)
			return true
		})
	}
	return &CandidateSet{ids: nonEmpty[0].ids, codes: dedupCodesStable(codes)}
}

// unionOntoSpilled unions in-memory sets onto a spill-backed base that
// leads the concatenation: every base code precedes every later code,
// so the result is the untouched spilled stream plus a deduplicated
// in-memory tail of the codes the base does not already contain.
// Membership is decided by one sorted-merge sweep over the base's
// by-code spill stream — the tail never needs the spilled codes in RAM.
func unionOntoSpilled(base *CandidateSet, rest []*CandidateSet) *CandidateSet {
	total := len(base.codes)
	for _, s := range rest {
		total += s.Len()
	}
	tail := make([]uint64, 0, total)
	tail = append(tail, base.codes...)
	for _, s := range rest {
		s.emitCodes(func(code uint64) bool {
			tail = append(tail, code)
			return true
		})
	}
	tail = dedupCodesStable(tail)
	sorted := slices.Clone(tail)
	slices.Sort(sorted)
	inBase := make(map[uint64]bool, len(sorted))
	if err := base.ext.filterSorted(sorted, func(code uint64) { inBase[code] = true }); err != nil {
		out := &CandidateSet{ids: base.ids}
		out.sink = base.sink
		out.check(err)
		return out
	}
	kept := tail[:0]
	for _, code := range tail {
		if !inBase[code] {
			kept = append(kept, code)
		}
	}
	return &CandidateSet{ids: base.ids, codes: kept, ext: base.ext.retain(), sink: base.sink}
}

// sameIDs reports whether two ID tables are the same slice (the common
// case: both sets came from one Engine).
func sameIDs(a, b []string) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// rerankUnion merges candidate sets with differing ID tables by
// building a combined ranker and re-encoding every pair.
func rerankUnion(sets []*CandidateSet) *CandidateSet {
	var all []string
	for _, s := range sets {
		all = append(all, s.ids...)
	}
	rk := newRanker(all)
	total := 0
	for _, s := range sets {
		total += s.Len()
	}
	codes := make([]uint64, 0, total)
	for _, s := range sets {
		s.EmitPairs(func(p data.Pair) bool {
			codes = append(codes, pairCode(rk.rank(p.A), rk.rank(p.B)))
			return true
		})
	}
	return &CandidateSet{ids: rk.ids, codes: dedupCodesStable(codes)}
}
