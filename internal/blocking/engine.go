package blocking

// The interned, parallel blocking engine. Record IDs are interned to
// dense uint32 ranks assigned in lexicographic order, blocks become
// []uint32 rows, and candidate pairs travel as packed uint64 codes
// (the smaller rank in the high word, so code order is pair order and
// code equality is pair equality). Deduplication sorts and compacts
// the code slice instead of probing a map[data.Pair]bool — no per-pair
// heap allocations — while a position tag preserves the sequential
// implementation's first-seen emission order, keeping every candidate
// list byte-identical to the seed path at any worker count.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrNilKey reports a blocking pass configured without a key function.
var ErrNilKey = errors.New("blocking: nil key function")

// errSink collects the first error raised along an engine's chain of
// derived operations (Blocks → Purge → CandidateSet → meta-blocking).
// Those methods return values, not errors — bufio.Writer-style, the
// chain keeps running as cheap no-ops once poisoned and the caller
// reads the sticky error from Engine.Err at the end.
type errSink struct{ err error }

func (s *errSink) set(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *errSink) failed() bool { return s != nil && s.err != nil }

// ranker maps record IDs to dense uint32 ranks in lexicographic order,
// so rank comparisons agree with data.Pair's canonical ID ordering.
type ranker struct {
	ids []string // rank → ID, sorted ascending, distinct
}

func newRanker(ids []string) *ranker {
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	return &ranker{ids: slices.Compact(sorted)}
}

// rank returns the dense rank of id (which must be present).
func (rk *ranker) rank(id string) uint32 {
	i, _ := slices.BinarySearch(rk.ids, id)
	return uint32(i)
}

// pairCode packs two record ranks into one uint64 with the smaller
// rank in the high word: equal codes are equal pairs, and ascending
// codes are pairs in ascending (A, B) order.
func pairCode(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// dedupCodesStable removes duplicate codes preserving first-occurrence
// order: it sorts a copy to learn the distinct code set, then sweeps
// the original once, keeping each code the first time its slot in the
// sorted set is hit. One clone, one uint64 sort, one bool slice — the
// inner loop never touches the heap per pair.
func dedupCodesStable(codes []uint64) []uint64 {
	if len(codes) < 2 {
		return codes
	}
	uniq := slices.Clone(codes)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)
	if len(uniq) == len(codes) {
		return codes // already distinct
	}
	seen := make([]bool, len(uniq))
	out := codes[:0]
	for _, c := range codes {
		i, _ := slices.BinarySearch(uniq, c)
		if !seen[i] {
			seen[i] = true
			out = append(out, c)
		}
	}
	return out
}

// Engine shares one record-ID interning across several blocking passes
// over the same records, so the resulting candidate sets live in one
// rank space and can be unioned on packed codes.
type Engine struct {
	cfg   parallel.Config
	recs  []*data.Record
	rk    *ranker
	ranks []uint32 // record position → rank
	sink  *errSink // nil on the legacy constructors: errors panic instead
}

// NewEngine interns the record IDs once (in parallel) and returns an
// engine bound to the records. workers <= 0 means NumCPU.
func NewEngine(records []*data.Record, workers int) *Engine {
	return NewEngineObs(records, workers, nil)
}

// NewEngineObs is NewEngine with an attached metrics registry: the
// engine and every Indexed/CandidateSet derived from it record
// "blocking." counters (blocks built/purged, raw vs emitted pairs,
// dedup ratio). A nil registry falls back to the process-wide
// obs.Default registry (usually unset, which disables recording at no
// cost).
func NewEngineObs(records []*data.Record, workers int, reg *obs.Registry) *Engine {
	return newEngine(parallel.Config{Workers: workers, Obs: obs.OrDefault(reg)}, nil, records)
}

// NewEngineCtx is NewEngineObs bound to a context: the parallel passes
// observe ctx at chunk boundaries, and instead of panicking, any error
// (cancellation, worker panic, nil key) sticks to the engine — derived
// operations degrade to cheap no-ops and the caller reads the first
// error from Err after the chain. This is the constructor the pipeline
// uses for cancellable runs.
func NewEngineCtx(ctx context.Context, records []*data.Record, workers int, reg *obs.Registry) *Engine {
	return newEngine(parallel.Config{Workers: workers, Obs: obs.OrDefault(reg), Ctx: ctx}, &errSink{}, records)
}

func newEngine(cfg parallel.Config, sink *errSink, records []*data.Record) *Engine {
	e := &Engine{cfg: cfg, recs: records, sink: sink}
	ids := make([]string, len(records))
	for i, r := range records {
		ids[i] = r.ID
	}
	e.rk = newRanker(ids)
	var err error
	e.ranks, err = parallel.MapSlice(e.cfg, records, func(r *data.Record) uint32 {
		return e.rk.rank(r.ID)
	})
	e.check(err)
	return e
}

// Err returns the first error recorded by this engine or anything
// derived from it. Always nil for engines built without a context.
func (e *Engine) Err() error {
	if e.sink == nil {
		return nil
	}
	return e.sink.err
}

// check records err on the sink; without a sink (legacy constructors)
// a non-nil error is a programming fault and panics, preserving the
// historical crash semantics.
func (e *Engine) check(err error) bool {
	if err == nil {
		return false
	}
	if e.sink != nil {
		e.sink.set(err)
		return true
	}
	panic(err)
}

// Blocks applies key to every record — the expensive tokenisation runs
// sharded across workers — and merges the shard maps deterministically
// into an interned block collection. Shards are contiguous input
// ranges, so concatenating a key's shard rows in shard order preserves
// record input order within every block; keys are sorted, exactly
// matching the sequential BuildBlocks semantics.
func (e *Engine) Blocks(key KeyFunc) *Indexed {
	if e.sink.failed() {
		return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids}
	}
	if key == nil {
		e.check(fmt.Errorf("blocking: engine pass: %w", ErrNilKey))
		return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids}
	}
	n := len(e.recs)
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	shards := make([]map[string][]uint32, w)
	err := parallel.ForEach(parallel.Config{Workers: w, Ctx: e.cfg.Ctx}, w, func(s int) {
		lo, hi := n*s/w, n*(s+1)/w
		m := make(map[string][]uint32)
		var ks keySet
		for i := lo; i < hi; i++ {
			ks.reset()
			for _, k := range key(e.recs[i]) {
				if k == "" || !ks.add(k) {
					continue
				}
				m[k] = append(m[k], e.ranks[i])
			}
		}
		shards[s] = m
	})
	if e.check(err) {
		return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids}
	}
	total := 0
	for _, m := range shards {
		total += len(m)
	}
	keys := make([]string, 0, total)
	for _, m := range shards {
		for k := range m {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	rows := make([][]uint32, len(keys))
	if w == 1 {
		for i, k := range keys {
			rows[i] = shards[0][k]
		}
	} else {
		err := parallel.ForEach(e.cfg, len(keys), func(i int) {
			k := keys[i]
			sz := 0
			for _, m := range shards {
				sz += len(m[k])
			}
			row := make([]uint32, 0, sz)
			for _, m := range shards {
				row = append(row, m[k]...)
			}
			rows[i] = row
		})
		if e.check(err) {
			return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids}
		}
	}
	e.cfg.Obs.Counter("blocking.blocks_built").Add(int64(len(keys)))
	return &Indexed{cfg: e.cfg, sink: e.sink, ids: e.rk.ids, keys: keys, rows: rows}
}

// BuildIndexed is the one-shot form of NewEngine(...).Blocks(key): it
// builds an interned block collection from records in parallel.
func BuildIndexed(cfg parallel.Config, records []*data.Record, key KeyFunc) *Indexed {
	return NewEngine(records, cfg.Workers).Blocks(key)
}

// Indexed is the interned form of a block collection: record IDs are
// dense lexicographic ranks, block keys are sorted, and each row holds
// the member ranks in record input order.
type Indexed struct {
	cfg  parallel.Config
	sink *errSink   // shared with the engine; nil on standalone indexes
	ids  []string   // rank → record ID, sorted ascending
	keys []string   // sorted block keys
	rows [][]uint32 // rows[i] = member ranks of keys[i], input order
}

// check mirrors Engine.check for operations derived from the index.
func (x *Indexed) check(err error) bool {
	if err == nil {
		return false
	}
	if x.sink != nil {
		x.sink.set(err)
		return true
	}
	panic(err)
}

// Index interns a map-form block collection. Within-block order is
// preserved; keys are sorted once (meta-blocking reuses this ordering
// instead of re-sorting the key set per pass).
func (b Blocks) Index() *Indexed {
	keys := b.sortedKeys()
	total := 0
	for _, ids := range b {
		total += len(ids)
	}
	all := make([]string, 0, total)
	for _, ids := range b {
		all = append(all, ids...)
	}
	rk := newRanker(all)
	x := &Indexed{ids: rk.ids, keys: keys, rows: make([][]uint32, len(keys))}
	for i, k := range keys {
		src := b[k]
		row := make([]uint32, len(src))
		for j, id := range src {
			row[j] = rk.rank(id)
		}
		x.rows[i] = row
	}
	return x
}

// NumBlocks returns the number of blocks.
func (x *Indexed) NumBlocks() int { return len(x.keys) }

// NumRecords returns the size of the interned ID table.
func (x *Indexed) NumRecords() int { return len(x.ids) }

// Comparisons counts the total pairwise comparisons implied by the
// blocks, duplicates across blocks included (the meta-blocking cost
// measure).
func (x *Indexed) Comparisons() int {
	n := 0
	for _, row := range x.rows {
		n += len(row) * (len(row) - 1) / 2
	}
	return n
}

// Purge drops blocks larger than maxSize, sharing the ID table with
// the receiver. maxSize <= 0 is a no-op.
func (x *Indexed) Purge(maxSize int) *Indexed {
	if maxSize <= 0 {
		return x
	}
	out := &Indexed{cfg: x.cfg, sink: x.sink, ids: x.ids}
	for i, row := range x.rows {
		if len(row) <= maxSize {
			out.keys = append(out.keys, x.keys[i])
			out.rows = append(out.rows, row)
		}
	}
	x.cfg.Obs.Counter("blocking.blocks_purged").Add(int64(len(x.keys) - len(out.keys)))
	return out
}

// Blocks materialises the map form of the collection.
func (x *Indexed) Blocks() Blocks {
	b := make(Blocks, len(x.keys))
	for i, k := range x.keys {
		ids := make([]string, len(x.rows[i]))
		for j, r := range x.rows[i] {
			ids[j] = x.ids[r]
		}
		b[k] = ids
	}
	return b
}

// rawCodes packs every in-block pair into one flat code slice in the
// sequential emission order (sorted keys, in-block input order),
// duplicates across blocks retained. Per-block offsets are prefix-
// summed so the fill parallelises with deterministic placement.
func (x *Indexed) rawCodes() []uint64 {
	offs := make([]int, len(x.rows)+1)
	for i, row := range x.rows {
		offs[i+1] = offs[i] + len(row)*(len(row)-1)/2
	}
	codes := make([]uint64, offs[len(x.rows)])
	err := parallel.ForEach(x.cfg, len(x.rows), func(i int) {
		row := x.rows[i]
		w := offs[i]
		for a := 0; a < len(row); a++ {
			for b := a + 1; b < len(row); b++ {
				codes[w] = pairCode(row[a], row[b])
				w++
			}
		}
	})
	if x.check(err) {
		return nil
	}
	return codes
}

// CandidateSet expands the blocks into the deduplicated packed
// candidate collection, in the exact order Blocks.Pairs emits.
func (x *Indexed) CandidateSet() *CandidateSet {
	if x.sink.failed() {
		return &CandidateSet{ids: x.ids}
	}
	raw := x.rawCodes()
	if x.sink.failed() {
		return &CandidateSet{ids: x.ids}
	}
	nraw := len(raw)
	codes := dedupCodesStable(raw)
	if reg := x.cfg.Obs; reg != nil {
		rawC := reg.Counter("blocking.pairs_raw")
		rawC.Add(int64(nraw))
		emitC := reg.Counter("blocking.pairs_emitted")
		emitC.Add(int64(len(codes)))
		// Cumulative ratio across all passes on this registry, so the
		// gauge stays meaningful when a pipeline unions several blockers.
		if tot := rawC.Value(); tot > 0 {
			reg.Gauge("blocking.dedup_ratio").Set(float64(emitC.Value()) / float64(tot))
		}
	}
	return &CandidateSet{ids: x.ids, codes: codes}
}

// Pairs expands the blocks into deduplicated candidate pairs,
// byte-identical to the sequential map-based implementation.
func (x *Indexed) Pairs() []data.Pair { return x.CandidateSet().Pairs() }

// EmitPairs streams the deduplicated pairs to emit in Pairs order,
// stopping early when emit returns false.
func (x *Indexed) EmitPairs(emit func(data.Pair) bool) { x.CandidateSet().EmitPairs(emit) }

// CandidateSet is a deduplicated candidate-pair collection packed as
// uint64 rank codes over a shared ID table. It supports random access
// (for the parallel matcher) and streaming emission without ever
// materialising a []data.Pair.
type CandidateSet struct {
	ids   []string
	codes []uint64 // deduplicated pair codes, first-emission order
}

// Len returns the number of candidate pairs.
func (c *CandidateSet) Len() int { return len(c.codes) }

// Pair decodes the i-th candidate. The high word holds the smaller
// rank, so A < B lexicographically without a comparison.
func (c *CandidateSet) Pair(i int) data.Pair {
	code := c.codes[i]
	return data.Pair{A: c.ids[code>>32], B: c.ids[code&0xffffffff]}
}

// Pairs materialises the full pair slice (nil when empty).
func (c *CandidateSet) Pairs() []data.Pair {
	if len(c.codes) == 0 {
		return nil
	}
	out := make([]data.Pair, len(c.codes))
	for i := range c.codes {
		out[i] = c.Pair(i)
	}
	return out
}

// EmitPairs streams the candidates to emit in order, stopping early
// when emit returns false.
func (c *CandidateSet) EmitPairs(emit func(data.Pair) bool) {
	for i := range c.codes {
		if !emit(c.Pair(i)) {
			return
		}
	}
}

// RecordIDs returns the distinct record IDs referenced by the
// candidates, ascending.
func (c *CandidateSet) RecordIDs() []string {
	seen := make([]bool, len(c.ids))
	for _, code := range c.codes {
		seen[code>>32] = true
		seen[code&0xffffffff] = true
	}
	var out []string
	for rank, ok := range seen {
		if ok {
			out = append(out, c.ids[rank])
		}
	}
	return out
}

// UnionCandidates unions candidate sets, deduplicating while
// preserving first-seen order across the concatenation — the packed
// equivalent of appending pair slices and deduplicating through a
// map[data.Pair]bool. Sets built over the same Engine share an ID
// table and merge on codes; mixed tables fall back to re-ranking.
func UnionCandidates(sets ...*CandidateSet) *CandidateSet {
	var nonEmpty []*CandidateSet
	for _, s := range sets {
		if s != nil && len(s.codes) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		return &CandidateSet{}
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	shared := true
	for _, s := range nonEmpty[1:] {
		if !sameIDs(nonEmpty[0].ids, s.ids) {
			shared = false
			break
		}
	}
	if !shared {
		return rerankUnion(nonEmpty)
	}
	total := 0
	for _, s := range nonEmpty {
		total += len(s.codes)
	}
	codes := make([]uint64, 0, total)
	for _, s := range nonEmpty {
		codes = append(codes, s.codes...)
	}
	return &CandidateSet{ids: nonEmpty[0].ids, codes: dedupCodesStable(codes)}
}

// sameIDs reports whether two ID tables are the same slice (the common
// case: both sets came from one Engine).
func sameIDs(a, b []string) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// rerankUnion merges candidate sets with differing ID tables by
// building a combined ranker and re-encoding every pair.
func rerankUnion(sets []*CandidateSet) *CandidateSet {
	var all []string
	for _, s := range sets {
		all = append(all, s.ids...)
	}
	rk := newRanker(all)
	total := 0
	for _, s := range sets {
		total += len(s.codes)
	}
	codes := make([]uint64, 0, total)
	for _, s := range sets {
		for i := range s.codes {
			p := s.Pair(i)
			codes = append(codes, pairCode(rk.rank(p.A), rk.rank(p.B)))
		}
	}
	return &CandidateSet{ids: rk.ids, codes: dedupCodesStable(codes)}
}
