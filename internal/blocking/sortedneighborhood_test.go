package blocking

import (
	"fmt"
	"testing"

	"repro/internal/data"
)

// snRecords builds n records whose sort key is the record index itself,
// so the window structure is fully predictable.
func snRecords(n int) []*data.Record {
	recs := make([]*data.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, data.NewRecord(
			fmt.Sprintf("r%03d", i), "s").Set("k", data.String(fmt.Sprintf("%03d", i))))
	}
	return recs
}

func snKey(attr string) KeyFunc {
	return func(r *data.Record) []string {
		if !r.Has(attr) {
			return nil
		}
		return []string{r.Get(attr).String()}
	}
}

// TestSortedNeighborhoodWindowBoundaries pins the pair counts at the
// window-size edge cases: the minimum window, windows that exactly
// cover the corpus, and over-sized windows.
func TestSortedNeighborhoodWindowBoundaries(t *testing.T) {
	const n = 6
	recs := snRecords(n)
	cases := []struct {
		window int
		want   int
	}{
		{window: 2, want: n - 1},                 // adjacent pairs only
		{window: 3, want: (n - 1) + (n - 2)},     // two diagonals
		{window: n, want: n * (n - 1) / 2},       // exactly all pairs
		{window: n + 1, want: n * (n - 1) / 2},   // over-sized: still all pairs
		{window: 100, want: n * (n - 1) / 2},     // far over-sized
		{window: 0, want: (n - 1) + (n - 2) + (n - 3) + (n - 4)}, // default w=5
		{window: 1, want: (n - 1) + (n - 2) + (n - 3) + (n - 4)}, // <2 ⇒ default w=5
	}
	for _, tc := range cases {
		sn := SortedNeighborhood{Keys: []KeyFunc{snKey("k")}, Window: tc.window}
		got := sn.Candidates(recs)
		if len(got) != tc.want {
			t.Errorf("window %d: got %d pairs, want %d", tc.window, len(got), tc.want)
		}
	}
}

// TestSortedNeighborhoodWindowTwoAdjacency: at the minimum window the
// candidate list is exactly the chain of sort-order neighbours.
func TestSortedNeighborhoodWindowTwoAdjacency(t *testing.T) {
	recs := snRecords(5)
	sn := SortedNeighborhood{Keys: []KeyFunc{snKey("k")}, Window: 2}
	got := sn.Candidates(recs)
	want := []data.Pair{
		{A: "r000", B: "r001"}, {A: "r001", B: "r002"},
		{A: "r002", B: "r003"}, {A: "r003", B: "r004"},
	}
	samePairs(t, "window=2 chain", want, got)
}

// TestSortedNeighborhoodSkipsKeylessRecords: records yielding no key or
// an empty key never enter the window.
func TestSortedNeighborhoodSkipsKeylessRecords(t *testing.T) {
	recs := snRecords(4)
	recs = append(recs,
		data.NewRecord("r-nokey", "s"), // no attribute at all
		data.NewRecord("r-empty", "s").Set("k", data.String("")))
	sn := SortedNeighborhood{Keys: []KeyFunc{snKey("k")}, Window: 100}
	got := sn.Candidates(recs)
	if want := 4 * 3 / 2; len(got) != want {
		t.Fatalf("got %d pairs, want %d (keyless records must not pair)", len(got), want)
	}
	for _, p := range got {
		if p.A == "r-nokey" || p.B == "r-nokey" || p.A == "r-empty" || p.B == "r-empty" {
			t.Fatalf("keyless record appeared in pair %v", p)
		}
	}
}

// TestSortedNeighborhoodMultiPassDedups: two passes whose windows
// overlap union without duplicates, and workers don't change output.
func TestSortedNeighborhoodMultiPassDedups(t *testing.T) {
	recs := snRecords(8)
	// Second key reverses the sort order: identical neighbourhoods, so
	// the multi-pass union must collapse to the single-pass output.
	for i, r := range recs {
		r.Set("rev", data.String(fmt.Sprintf("%03d", len(recs)-i)))
	}
	single := SortedNeighborhood{Keys: []KeyFunc{snKey("k")}, Window: 3}.Candidates(recs)
	multi := SortedNeighborhood{Keys: []KeyFunc{snKey("k"), snKey("rev")}, Window: 3}.Candidates(recs)
	if len(multi) != len(single) {
		t.Fatalf("multi-pass got %d pairs, want %d (dup pairs must dedup)", len(multi), len(single))
	}
	for _, w := range workerCounts {
		got := SortedNeighborhood{Keys: []KeyFunc{snKey("k"), snKey("rev")}, Window: 3, Workers: w}.Candidates(recs)
		samePairs(t, fmt.Sprintf("workers=%d", w), multi, got)
	}
}

// TestUnionCandidatesEmptyAndNil: unions over any mix of nil sets,
// empty sets and zero operands behave like the empty set and stay
// usable (Len/Pairs/EmitPairs/Close).
func TestUnionCandidatesEmptyAndNil(t *testing.T) {
	recs := detRecords(60)
	full := NewEngine(recs, 0).Blocks(TokenKey("title")).CandidateSet()
	if full.Len() == 0 {
		t.Fatal("fixture produced no pairs")
	}
	empty := NewEngine(recs, 0).Blocks(AttrExactKey("missing-attr")).CandidateSet()
	if empty.Len() != 0 {
		t.Fatal("fixture empty set is not empty")
	}

	checkEmpty := func(name string, cs *CandidateSet) {
		t.Helper()
		if cs == nil {
			t.Fatalf("%s: nil result", name)
		}
		if cs.Len() != 0 || len(cs.Pairs()) != 0 {
			t.Fatalf("%s: want empty set, got Len=%d", name, cs.Len())
		}
		cs.EmitPairs(func(data.Pair) bool {
			t.Fatalf("%s: EmitPairs called back on an empty set", name)
			return false
		})
		if err := cs.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
	checkEmpty("no operands", UnionCandidates())
	checkEmpty("single nil", UnionCandidates(nil))
	checkEmpty("all nil", UnionCandidates(nil, nil, nil))
	checkEmpty("empty + nil", UnionCandidates(empty, nil, empty))

	// Mixed: nil and empty operands are invisible; the union of a
	// single real set is that set's pair list.
	for name, got := range map[string]*CandidateSet{
		"nil+full":       UnionCandidates(nil, full),
		"full+nil":       UnionCandidates(full, nil),
		"empty+full+nil": UnionCandidates(empty, full, nil),
		"nil+empty+full": UnionCandidates(nil, empty, full),
	} {
		samePairs(t, name, full.Pairs(), got.Pairs())
	}
}
