package blocking

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/data"
	"repro/internal/obs"
)

var shardCounts = []int{1, 4, 16}

// pinKeys is the blocker matrix for the sharded/spilled identity pins.
func pinKeys() map[string]KeyFunc {
	return map[string]KeyFunc{
		"token":  TokenKey("title"),
		"prefix": AttrPrefixKey("title", 4),
		"exact":  AttrExactKey("pid"),
		"qgram":  QGramKey("title", 3),
		"all":    AllTokensKey(),
	}
}

// TestShardedMatchesUnsharded pins the acceptance criterion: sharded
// engine output is byte-identical to the unsharded engine for every
// blocker key at workers ∈ {1,2,8} × shards ∈ {1,4,16}, purged and
// unpurged.
func TestShardedMatchesUnsharded(t *testing.T) {
	recs := detRecords(300)
	for name, key := range pinKeys() {
		for _, max := range []int{0, 40} {
			want := NewEngine(recs, 1).Blocks(key).Purge(max).Pairs()
			for _, w := range workerCounts {
				for _, s := range shardCounts {
					e := NewEngineOpts(recs, Opts{Workers: w, Shards: s})
					got := e.Blocks(key).Purge(max).Pairs()
					samePairs(t, fmt.Sprintf("%s max=%d workers=%d shards=%d", name, max, w, s), want, got)
				}
			}
		}
	}
}

// TestSpilledMatchesInMemory pins the external path: a budget far below
// the raw pair bytes forces run spilling, and the streamed result must
// be byte-identical to the in-memory sweep at every worker and shard
// count.
func TestSpilledMatchesInMemory(t *testing.T) {
	recs := detRecords(300)
	const budget = 1 << 6 // 64 bytes ≪ raw pair bytes for every key
	for name, key := range pinKeys() {
		want := NewEngine(recs, 1).Blocks(key).Pairs()
		for _, w := range workerCounts {
			for _, s := range shardCounts {
				e := NewEngineOpts(recs, Opts{
					Workers:       w,
					Shards:        s,
					PairMemBudget: budget,
					SpillDir:      t.TempDir(),
				})
				cs := e.Blocks(key).CandidateSet()
				// Raw pairs ≥ emitted pairs, so past this threshold the
				// budget must have engaged the external path.
				if int64(len(want))*8 > budget && !cs.Spilled() {
					t.Fatalf("%s workers=%d shards=%d: budget did not trigger spill", name, w, s)
				}
				samePairs(t, fmt.Sprintf("%s workers=%d shards=%d spilled", name, w, s), want, cs.Pairs())
				if got := cs.Len(); got != len(want) {
					t.Fatalf("%s: spilled Len = %d, want %d", name, got, len(want))
				}
				if err := cs.Close(); err != nil {
					t.Fatalf("%s: Close: %v", name, err)
				}
			}
		}
	}
}

// TestSpilledEmitReplaysAndStopsEarly: a spilled set is re-emittable
// (the runs persist until Close) and honours early stop.
func TestSpilledEmitReplaysAndStopsEarly(t *testing.T) {
	recs := detRecords(200)
	e := NewEngineOpts(recs, Opts{Shards: 4, PairMemBudget: 1 << 12, SpillDir: t.TempDir()})
	cs := e.Blocks(TokenKey("title")).CandidateSet()
	defer cs.Close()
	if !cs.Spilled() {
		t.Fatal("budget did not trigger spill")
	}
	first := cs.Pairs()
	second := cs.Pairs()
	samePairs(t, "replay", first, second)
	var head []data.Pair
	cs.EmitPairs(func(p data.Pair) bool {
		head = append(head, p)
		return len(head) < 5
	})
	if len(head) != 5 {
		t.Fatalf("early stop emitted %d pairs, want 5", len(head))
	}
	samePairs(t, "early-stop prefix", first[:5], head)
}

// TestSpilledRandomAccessPanics pins the documented contract: Pair on a
// spilled set panics rather than silently misbehaving.
func TestSpilledRandomAccessPanics(t *testing.T) {
	recs := detRecords(120)
	e := NewEngineOpts(recs, Opts{PairMemBudget: 1 << 10, SpillDir: t.TempDir()})
	cs := e.Blocks(TokenKey("title")).CandidateSet()
	defer cs.Close()
	if !cs.Spilled() {
		t.Fatal("budget did not trigger spill")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pair on a spilled set did not panic")
		}
	}()
	cs.Pair(0)
}

// TestSpilledUnionStaysExternal: unioning in-memory sets onto a spilled
// base keeps the disk backing, matches the all-in-memory union exactly,
// and reference-counts the run directory across Closes.
func TestSpilledUnionStaysExternal(t *testing.T) {
	recs := detRecords(250)
	dir := t.TempDir()

	mem := NewEngine(recs, 2)
	memBase := mem.Blocks(TokenKey("title")).CandidateSet()
	memID := mem.Blocks(AttrExactKey("pid")).CandidateSet()
	want := UnionCandidates(memBase, memID).Pairs()

	e := NewEngineOpts(recs, Opts{Workers: 2, Shards: 4, PairMemBudget: 1 << 12, SpillDir: dir})
	base := e.Blocks(TokenKey("title")).CandidateSet()
	id := e.Blocks(AttrExactKey("pid")).CandidateSet()
	if !base.Spilled() {
		t.Fatal("base did not spill")
	}
	u := UnionCandidates(base, id)
	if !u.Spilled() {
		t.Fatal("union of spilled base lost its disk backing")
	}
	samePairs(t, "spilled union", want, u.Pairs())

	// The union retained the base's runs: closing the base must not
	// break the union, and closing both releases the directory.
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "after base close", want, u.Pairs())
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base.ext.dir); !os.IsNotExist(err) {
		t.Fatalf("run directory survived the last Close: %v", err)
	}
}

// TestSpilledUnionLaterPosition: a spilled set that is not the first
// non-empty operand is materialised through its stream — order still
// matches the in-memory union.
func TestSpilledUnionLaterPosition(t *testing.T) {
	recs := detRecords(250)
	mem := NewEngine(recs, 2)
	want := UnionCandidates(
		mem.Blocks(AttrExactKey("pid")).CandidateSet(),
		mem.Blocks(TokenKey("title")).CandidateSet(),
	).Pairs()

	e := NewEngineOpts(recs, Opts{Shards: 4, PairMemBudget: 1 << 12, SpillDir: t.TempDir()})
	spilled := e.Blocks(TokenKey("title")).CandidateSet()
	defer spilled.Close()
	id := e.Blocks(AttrExactKey("pid")).CandidateSet()
	u := UnionCandidates(id, spilled)
	if u.Spilled() {
		t.Fatal("union with a later spilled operand should be in-memory")
	}
	samePairs(t, "later-position spilled union", want, u.Pairs())
}

// TestSpillObsCounters: spill-run and merge counters are visible in an
// obs snapshot, per the acceptance criteria.
func TestSpillObsCounters(t *testing.T) {
	recs := detRecords(200)
	reg := obs.NewRegistry()
	e := NewEngineOpts(recs, Opts{Shards: 4, PairMemBudget: 1 << 12, SpillDir: t.TempDir(), Obs: reg})
	cs := e.Blocks(TokenKey("title")).CandidateSet()
	defer cs.Close()
	cs.Pairs() // one emission merge
	snap := reg.Snapshot()
	vals := map[string]int64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	for _, name := range []string{
		"blocking.spill_runs", "blocking.spill_bytes", "blocking.pairs_spilled",
		"blocking.spill_merge_runs", "blocking.spill_merges",
	} {
		if vals[name] <= 0 {
			t.Fatalf("counter %s = %d, want > 0 (snapshot: %v)", name, vals[name], vals)
		}
	}
}

// TestSpilledRecordIDs: RecordIDs streams from disk and matches the
// in-memory set.
func TestSpilledRecordIDs(t *testing.T) {
	recs := detRecords(150)
	want := NewEngine(recs, 1).Blocks(TokenKey("title")).CandidateSet().RecordIDs()
	e := NewEngineOpts(recs, Opts{PairMemBudget: 1 << 10, SpillDir: t.TempDir()})
	cs := e.Blocks(TokenKey("title")).CandidateSet()
	defer cs.Close()
	got := cs.RecordIDs()
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestShardedMetaBlockingMatchesSeed: meta-blocking over a sharded
// engine's index is unchanged — the shard knobs only affect pair
// generation, never the block collection it sees.
func TestShardedMetaBlockingMatchesSeed(t *testing.T) {
	recs := detRecords(300)
	blocks := refBuildBlocks(recs, TokenKey("title"))
	for _, weight := range []WeightScheme{CBS, ECBS, JS} {
		mb := MetaBlocker{Weight: weight, Prune: WEP}
		want := refMetaCandidates(mb, blocks)
		for _, s := range shardCounts {
			e := NewEngineOpts(recs, Opts{Workers: 2, Shards: s})
			got := mb.Pruned(e.Blocks(TokenKey("title"))).Pairs()
			samePairs(t, fmt.Sprintf("meta weight=%d shards=%d", weight, s), want, got)
		}
	}
}

// TestSpillCancellation: a cancelled context poisons the engine instead
// of panicking, and the spill directory is cleaned up.
func TestSpillCancellation(t *testing.T) {
	recs := detRecords(200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	e := NewEngineOpts(recs, Opts{Shards: 4, PairMemBudget: 1 << 12, SpillDir: dir, Ctx: ctx})
	cs := e.Blocks(TokenKey("title")).CandidateSet()
	if e.Err() == nil {
		t.Fatal("cancelled engine reported no error")
	}
	if cs.Len() != 0 {
		t.Fatalf("poisoned engine produced %d pairs", cs.Len())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("cancelled spill left %d entries in the spill dir", len(ents))
	}
}
