package blocking

// Memory-budgeted external pair generation. When the raw pair codes of
// a pass would exceed the configured budget, generation spills sorted
// runs of (code, position) entries to temp files and never holds more
// than ~budget bytes of pair state in RAM:
//
//   phase A  per shard, in parallel: expand blocks into a bounded
//            entry buffer; on overflow sort by (code, pos), compact
//            duplicate codes, and write the buffer as one run file.
//   phase B  one k-way loser-tree merge of all runs by (code, pos):
//            the first entry of each code is its global first
//            occurrence. Unique entries stream into a by-code file
//            (sorted membership stream for unions) and into bounded
//            buffers re-sorted by position and written as emission
//            runs.
//   phase C  on every EmitPairs, a k-way merge of the emission runs
//            by position replays the deduplicated codes in the exact
//            first-seen order of the in-memory sweep.
//
// The result is byte-identical to the unsharded in-memory path; only
// the peak memory differs.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// peSize is the on-disk size of one (code, position) entry.
const peSize = 16

// minRunEnts floors the run-buffer capacity so a degenerate budget
// cannot explode into one file per handful of pairs.
const minRunEnts = 256

// runCap sizes one of parts concurrent run buffers against budget.
func runCap(budget int64, parts int) int {
	if parts < 1 {
		parts = 1
	}
	c := budget / peSize / int64(parts)
	if c < minRunEnts {
		return minRunEnts
	}
	return int(c)
}

// peSource yields entries in nondecreasing key order; ok=false marks
// exhaustion.
type peSource interface {
	next() (e pe, ok bool, err error)
}

// sliceSource adapts an in-memory sorted entry slice to peSource.
type sliceSource struct {
	ents []pe
	i    int
}

func (s *sliceSource) next() (pe, bool, error) {
	if s.i >= len(s.ents) {
		return pe{}, false, nil
	}
	e := s.ents[s.i]
	s.i++
	return e, true, nil
}

// loserTree is a tournament tree over k sorted sources: head() is the
// minimum entry across all of them, advance() refills one source and
// replays only that leaf's path to the root — log(k) comparisons per
// emitted entry instead of k.
type loserTree struct {
	src  []peSource
	head []pe
	ok   []bool
	node []int // node[j], j>=1: loser parked at internal node j; node[0]: winner
	less func(a, b pe) bool
}

func newLoserTree(src []peSource, less func(a, b pe) bool) (*loserTree, error) {
	k := len(src)
	t := &loserTree{
		src:  src,
		head: make([]pe, k),
		ok:   make([]bool, k),
		node: make([]int, max(k, 1)),
		less: less,
	}
	for i := range src {
		if err := t.load(i); err != nil {
			return nil, err
		}
	}
	t.build()
	return t, nil
}

func (t *loserTree) load(i int) error {
	e, ok, err := t.src[i].next()
	if err != nil {
		return err
	}
	t.head[i], t.ok[i] = e, ok
	return nil
}

// beats reports whether source a wins (sorts before) source b.
// Exhausted sources always lose; ties break to the lower index so the
// order is total even for equal keys.
func (t *loserTree) beats(a, b int) bool {
	switch {
	case !t.ok[a]:
		return false
	case !t.ok[b]:
		return true
	case t.less(t.head[a], t.head[b]):
		return true
	case t.less(t.head[b], t.head[a]):
		return false
	}
	return a < b
}

// build plays the full tournament: leaves sit at win[k+i], internal
// node j compares the winners of its children 2j and 2j+1 (children
// indices are always larger, so a single descending sweep suffices).
func (t *loserTree) build() {
	k := len(t.src)
	if k == 0 {
		return
	}
	if k == 1 {
		t.node[0] = 0
		return
	}
	win := make([]int, 2*k)
	for i := 0; i < k; i++ {
		win[k+i] = i
	}
	for j := k - 1; j >= 1; j-- {
		a, b := win[2*j], win[2*j+1]
		if t.beats(a, b) {
			win[j], t.node[j] = a, b
		} else {
			win[j], t.node[j] = b, a
		}
	}
	t.node[0] = win[1]
}

// top returns the current minimum entry and its source; ok=false when
// every source is exhausted.
func (t *loserTree) top() (pe, int, bool) {
	if len(t.src) == 0 {
		return pe{}, 0, false
	}
	w := t.node[0]
	if !t.ok[w] {
		return pe{}, 0, false
	}
	return t.head[w], w, true
}

// advance refills source i (the last winner) and replays its leaf-to-
// root path against the parked losers.
func (t *loserTree) advance(i int) error {
	if err := t.load(i); err != nil {
		return err
	}
	k := len(t.src)
	w := i
	for j := (k + i) / 2; j >= 1; j /= 2 {
		if t.beats(t.node[j], w) {
			w, t.node[j] = t.node[j], w
		}
	}
	t.node[0] = w
	return nil
}

// mergePE streams the k-way merge of sorted sources to emit in
// nondecreasing less order.
func mergePE(src []peSource, less func(a, b pe) bool, emit func(pe) error) error {
	t, err := newLoserTree(src, less)
	if err != nil {
		return err
	}
	for {
		e, i, ok := t.top()
		if !ok {
			return nil
		}
		if err := emit(e); err != nil {
			return err
		}
		if err := t.advance(i); err != nil {
			return err
		}
	}
}

// runWriter writes fixed-width little-endian entries to one run file.
type runWriter struct {
	path string
	f    *os.File
	bw   *bufio.Writer
	n    int64 // entries written
}

func createRun(dir, name string) (*runWriter, error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("blocking: create spill run: %w", err)
	}
	return &runWriter{path: path, f: f, bw: bufio.NewWriterSize(f, 1<<18)}, nil
}

func (w *runWriter) write(e pe) error {
	var b [peSize]byte
	binary.LittleEndian.PutUint64(b[:8], e.code)
	binary.LittleEndian.PutUint64(b[8:], e.pos)
	w.n++
	_, err := w.bw.Write(b[:])
	return err
}

func (w *runWriter) close() error {
	ferr := w.bw.Flush()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// runReader streams one run file back as a peSource.
type runReader struct {
	f  *os.File
	br *bufio.Reader
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("blocking: open spill run: %w", err)
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

func (r *runReader) next() (pe, bool, error) {
	var b [peSize]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		if err == io.EOF {
			return pe{}, false, nil
		}
		return pe{}, false, fmt.Errorf("blocking: read spill run: %w", err)
	}
	return pe{
		code: binary.LittleEndian.Uint64(b[:8]),
		pos:  binary.LittleEndian.Uint64(b[8:]),
	}, true, nil
}

func (r *runReader) close() error { return r.f.Close() }

// openRuns opens every path, closing the opened prefix on failure.
func openRuns(paths []string) ([]*runReader, error) {
	rs := make([]*runReader, 0, len(paths))
	for _, p := range paths {
		r, err := openRun(p)
		if err != nil {
			closeRuns(rs)
			return nil, err
		}
		rs = append(rs, r)
	}
	return rs, nil
}

func closeRuns(rs []*runReader) {
	for _, r := range rs {
		if r != nil {
			r.close()
		}
	}
}

// errStopEmit aborts a merge when the emission callback asks to stop;
// it never escapes to callers.
var errStopEmit = errors.New("blocking: emission stopped")

// spillSet is the disk-resident backing of a budgeted candidate set:
// emission runs replayed by position on every read, plus the by-code
// stream used for union membership. The run directory is reference-
// counted so unions can share it; the last release removes it.
type spillSet struct {
	dir      string
	byCode   string   // unique (code, pos) entries sorted by code
	emitRuns []string // each sorted by position; k-way merged on emit
	n        int      // unique codes
	refs     atomic.Int32
	reg      *obs.Registry
}

func (s *spillSet) retain() *spillSet {
	s.refs.Add(1)
	return s
}

func (s *spillSet) release() error {
	if s.refs.Add(-1) > 0 {
		return nil
	}
	return os.RemoveAll(s.dir)
}

// emit replays the deduplicated codes in first-seen order by merging
// the emission runs on position. Returning false from f stops early.
func (s *spillSet) emit(f func(code uint64) bool) error {
	s.reg.Counter("blocking.spill_merges").Add(1)
	rs, err := openRuns(s.emitRuns)
	if err != nil {
		return err
	}
	defer closeRuns(rs)
	src := make([]peSource, len(rs))
	for i, r := range rs {
		src[i] = r
	}
	err = mergePE(src, peLessPos, func(e pe) error {
		if !f(e.code) {
			return errStopEmit
		}
		return nil
	})
	if err == errStopEmit {
		return nil
	}
	return err
}

// filterSorted sweeps the by-code stream against an ascending probe
// slice, calling mark for every probe code present in the set. One
// sequential read, no probe-sized state beyond the caller's.
func (s *spillSet) filterSorted(sorted []uint64, mark func(code uint64)) error {
	if len(sorted) == 0 {
		return nil
	}
	r, err := openRun(s.byCode)
	if err != nil {
		return err
	}
	defer r.close()
	i := 0
	for {
		e, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i < len(sorted) && sorted[i] < e.code {
			i++
		}
		if i == len(sorted) {
			return nil
		}
		if sorted[i] == e.code {
			mark(e.code)
			i++
		}
	}
}

// spillShard is phase A for one shard: expand blocks [rng[0], rng[1])
// through a capEnts-entry buffer, writing each full (sorted, locally
// deduplicated) buffer as one run file. Returns the run paths in
// generation order and the entry count written.
func (x *Indexed) spillShard(shard int, rng [2]int, offs []int, dir string, capEnts int) (paths []string, written int64, err error) {
	buf := make([]pe, 0, capEnts)
	seq := 0
	flush := func(b []pe) ([]pe, error) {
		if len(b) == 0 {
			return b, nil
		}
		ents := sortCompactEntries(b)
		w, werr := createRun(dir, fmt.Sprintf("a-%03d-%05d.run", shard, seq))
		if werr != nil {
			return b, werr
		}
		seq++
		for _, e := range ents {
			if werr := w.write(e); werr != nil {
				w.close()
				return b, werr
			}
		}
		if werr := w.close(); werr != nil {
			return b, werr
		}
		paths = append(paths, w.path)
		written += w.n
		return b[:0], nil
	}
	buf, err = x.appendBlockEntries(rng[0], rng[1], offs, buf, flush)
	if err == nil {
		_, err = flush(buf)
	}
	return paths, written, err
}

// spillCandidates is the external strategy behind CandidateSet: pair
// state on disk, ~budget bytes in RAM, byte-identical output.
func (x *Indexed) spillCandidates(offs []int) *CandidateSet {
	reg := x.cfg.Obs
	nraw := offs[len(x.rows)]
	dir, err := os.MkdirTemp(x.dir, "bdi-spill-*")
	if x.check(err) {
		return &CandidateSet{ids: x.ids}
	}
	fail := func(err error) *CandidateSet {
		os.RemoveAll(dir)
		x.check(err)
		return &CandidateSet{ids: x.ids}
	}

	// Phase A: parallel sharded run generation. The budget is split
	// across shards because their buffers coexist.
	ranges := x.shardPlan(offs, x.shards)
	type shardOut struct {
		paths   []string
		written int64
		err     error
	}
	outs := make([]shardOut, len(ranges))
	capA := runCap(x.budget, len(ranges))
	ferr := parallel.ForEach(x.cfg, len(ranges), func(s int) {
		o := &outs[s]
		o.paths, o.written, o.err = x.spillShard(s, ranges[s], offs, dir, capA)
	})
	var runs []string
	var written int64
	for _, o := range outs {
		if ferr == nil {
			ferr = o.err
		}
		runs = append(runs, o.paths...)
		written += o.written
	}
	if ferr != nil {
		return fail(ferr)
	}
	reg.Counter("blocking.spill_runs").Add(int64(len(runs)))
	reg.Counter("blocking.spill_bytes").Add(written * peSize)
	reg.Counter("blocking.pairs_spilled").Add(int64(nraw))

	// Phase B: one k-way merge by (code, pos) deduplicates globally —
	// the first entry of a code run carries its minimum position, i.e.
	// its global first occurrence. Unique entries stream into the
	// by-code membership file and into position-sorted emission runs.
	ss := &spillSet{dir: dir, reg: reg}
	ss.refs.Store(1)
	rs, err := openRuns(runs)
	if err != nil {
		return fail(err)
	}
	src := make([]peSource, len(rs))
	for i, r := range rs {
		src[i] = r
	}
	reg.Counter("blocking.spill_merges").Add(1)
	bw, err := createRun(dir, "bycode.run")
	if err != nil {
		closeRuns(rs)
		return fail(err)
	}
	cbuf := make([]pe, 0, runCap(x.budget, 1))
	cseq := 0
	flushC := func() error {
		if len(cbuf) == 0 {
			return nil
		}
		slices.SortFunc(cbuf, func(a, b pe) int {
			if peLessPos(a, b) {
				return -1
			}
			return 1
		})
		w, err := createRun(dir, fmt.Sprintf("c-%05d.run", cseq))
		if err != nil {
			return err
		}
		cseq++
		for _, e := range cbuf {
			if err := w.write(e); err != nil {
				w.close()
				return err
			}
		}
		if err := w.close(); err != nil {
			return err
		}
		ss.emitRuns = append(ss.emitRuns, w.path)
		cbuf = cbuf[:0]
		return nil
	}
	ctx := x.cfg.Ctx
	seen := 0
	var last uint64
	have := false
	err = mergePE(src, peLessCode, func(e pe) error {
		seen++
		if ctx != nil && seen&0xffff == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if have && e.code == last {
			return nil
		}
		last, have = e.code, true
		ss.n++
		if err := bw.write(e); err != nil {
			return err
		}
		cbuf = append(cbuf, e)
		if len(cbuf) == cap(cbuf) {
			return flushC()
		}
		return nil
	})
	closeRuns(rs)
	if err == nil {
		err = flushC()
	}
	if cerr := bw.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	// The phase-A runs are dead once merged; drop them so peak disk is
	// ~2× the unique pair codes, not raw + unique.
	for _, p := range runs {
		os.Remove(p)
	}
	ss.byCode = bw.path
	reg.Counter("blocking.spill_bytes").Add((bw.n + int64(ss.n)) * peSize)
	reg.Counter("blocking.spill_merge_runs").Add(int64(len(ss.emitRuns)))
	return &CandidateSet{ids: x.ids, ext: ss, sink: x.sink}
}
