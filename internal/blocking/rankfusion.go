package blocking

// Rank-fused multi-blocker candidate generation. Every blocker is
// treated as a producer of a *ranked* candidate stream in packed
// pair-code space — rank = the blocker's progressive emission position
// (smallest blocks first for key blockers, nearest neighbours first
// for sorted neighbourhood, smallest buckets first for MinHash LSH) —
// and the streams are fused with reciprocal-rank fusion:
//
//	score(pair) = Σ over streams s containing the pair of
//	              1 / (K + rank_s(pair) + 1)
//
// Pairs surfaced near the top of several independent blockers
// accumulate score from each, so consensus candidates sort ahead of
// pairs only one blocker produced — the ordering a budgeted
// (pay-as-you-go) matcher should consume. The kernel runs in rank
// space on the shared interned engine: per-shard score accumulation
// over parallel.WeightedRanges (codes never split across shards and
// per-code contributions always sum in stream-index order, so the
// floating-point result is independent of the worker and shard count)
// followed by a deterministic k-way sorted merge, the same shape as
// the sharded pair generator. The fused stream is byte-identical for
// any Workers/Shards combination, and spills to disk run files when it
// exceeds the engine's PairMemBudget, so downstream matching streams
// it in bounded batches exactly like a spilled blocking pass.

import (
	"fmt"
	"math"
	"os"
	"slices"

	"repro/internal/data"
	"repro/internal/parallel"
)

// DefaultRRFK is the standard reciprocal-rank-fusion constant: large
// enough that a handful of top ranks don't dominate the sum, small
// enough that rank order still matters deep into each stream.
const DefaultRRFK = 60

// RankedStream is one blocker's ranked candidate output over an
// engine's rank space: Codes[i] is the packed pair code the blocker
// ranks at position i (rank 0 = most promising). Codes must be
// deduplicated within the stream; the producers below guarantee it.
type RankedStream struct {
	Name  string
	Codes []uint64
}

// RankedBlocker produces a ranked candidate stream over a shared
// engine, so every stream lives in one rank space and the fusion
// kernel can merge them on packed codes.
type RankedBlocker interface {
	Ranked(e *Engine) RankedStream
}

// RankedPairs decodes a ranked stream into its pair slice in rank
// order — the single-blocker baseline an evaluation compares the fused
// ordering against.
func (e *Engine) RankedPairs(s RankedStream) []data.Pair {
	return (&CandidateSet{ids: e.rk.ids, codes: s.Codes}).Pairs()
}

// RankedKey ranks a key blocker's candidates progressively: blocks are
// emitted smallest-first (rare keys are most discriminative), so a
// pair's rank is its position in the progressive emission order.
type RankedKey struct {
	Name string
	Key  KeyFunc
	// MaxBlock purges blocks above this size when > 0.
	MaxBlock int
}

// Ranked implements RankedBlocker.
func (r RankedKey) Ranked(e *Engine) RankedStream {
	x := e.Blocks(r.Key).Purge(r.MaxBlock).ProgressiveOrder()
	return RankedStream{Name: r.Name, Codes: x.inMemoryCodes()}
}

// RankedSortedNeighborhood ranks the sorted-neighbourhood blocker by
// window distance: all adjacent pairs (distance 1) across every pass
// first, then distance 2, and so on — records that sort next to each
// other are the most promising, widening distances progressively less
// so.
type RankedSortedNeighborhood struct {
	Name string
	Keys []KeyFunc // one pass per key; each must yield ≤1 key
	// Window is the sliding window size (≥2); default 5.
	Window int
}

// Ranked implements RankedBlocker.
func (r RankedSortedNeighborhood) Ranked(e *Engine) RankedStream {
	w := r.Window
	if w < 2 {
		w = 5
	}
	type entry struct {
		k    string
		rank uint32
	}
	passes := make([][]entry, len(r.Keys))
	for pi, key := range r.Keys {
		keyed, err := parallel.MapSlice(e.cfg, e.recs, func(rec *data.Record) []string { return key(rec) })
		if e.check(err) {
			return RankedStream{Name: r.Name}
		}
		entries := make([]entry, 0, len(e.recs))
		for i := range e.recs {
			ks := keyed[i]
			if len(ks) == 0 || ks[0] == "" {
				continue
			}
			entries = append(entries, entry{k: ks[0], rank: e.ranks[i]})
		}
		slices.SortFunc(entries, func(a, b entry) int {
			if a.k != b.k {
				if a.k < b.k {
					return -1
				}
				return 1
			}
			return int(int64(a.rank) - int64(b.rank))
		})
		passes[pi] = entries
	}
	var codes []uint64
	for d := 1; d < w; d++ {
		for _, entries := range passes {
			for i := 0; i+d < len(entries); i++ {
				codes = append(codes, pairCode(entries[i].rank, entries[i+d].rank))
			}
		}
	}
	return RankedStream{Name: r.Name, Codes: dedupCodesStable(codes)}
}

// RankedMinHash ranks the MinHash-LSH blocker progressively: band
// buckets are emitted smallest-first (ties broken by bucket hash), the
// same rare-collisions-are-most-promising heuristic the key blockers
// use.
type RankedMinHash struct {
	Name    string
	MinHash MinHashLSH
}

// Ranked implements RankedBlocker.
func (r RankedMinHash) Ranked(e *Engine) RankedStream {
	attrs, bands, rows := r.MinHash.params()
	n := bands * rows
	sigs, err := parallel.MapSlice(e.cfg, e.recs, func(rec *data.Record) []uint64 {
		return r.MinHash.signature(rec, attrs, n)
	})
	if e.check(err) {
		return RankedStream{Name: r.Name}
	}
	buckets := map[uint64][]uint32{}
	for i := range e.recs {
		sig := sigs[i]
		if sig == nil {
			continue
		}
		for b := 0; b < bands; b++ {
			key := bandHash(b, sig[b*rows:(b+1)*rows])
			buckets[key] = append(buckets[key], e.ranks[i])
		}
	}
	keys := make([]uint64, 0, len(buckets))
	for k, ids := range buckets {
		if len(ids) >= 2 {
			keys = append(keys, k)
		}
	}
	slices.SortFunc(keys, func(a, b uint64) int {
		if la, lb := len(buckets[a]), len(buckets[b]); la != lb {
			return la - lb
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	var codes []uint64
	for _, k := range keys {
		ids := buckets[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				codes = append(codes, pairCode(ids[i], ids[j]))
			}
		}
	}
	return RankedStream{Name: r.Name, Codes: dedupCodesStable(codes)}
}

// FuseRRFCodes is the sequential reference reciprocal-rank-fusion
// kernel: every code scores Σ 1/(k+rank+1) over the streams containing
// it (per code, contributions sum in stream order then ascending
// rank), and the fused order is descending score with ties broken by
// ascending code. Engine.FuseRanked computes the identical result with
// the parallel sharded kernel.
func FuseRRFCodes(k float64, streams ...[]uint64) []uint64 {
	if k <= 0 {
		k = DefaultRRFK
	}
	scores := map[uint64]float64{}
	for _, s := range streams {
		for r, code := range s {
			scores[code] += 1 / (k + float64(r) + 1)
		}
	}
	out := make([]uint64, 0, len(scores))
	for code := range scores {
		out = append(out, code)
	}
	slices.SortFunc(out, func(a, b uint64) int {
		sa, sb := scores[a], scores[b]
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	return out
}

// fusedKey packs an RRF score into a sort key that ascends as the
// score descends: positive IEEE-754 doubles order by their bit
// patterns, so the complement inverts the order. Scores are strict
// sums of positive terms, never zero, negative or NaN.
func fusedKey(score float64) uint64 { return ^math.Float64bits(score) }

// peLessKeyCode orders fused entries by (packed score key, code) —
// descending score, ties by ascending code. Codes are unique across
// entries, so the order is total.
func peLessKeyCode(a, b pe) bool {
	if a.pos != b.pos {
		return a.pos < b.pos
	}
	return a.code < b.code
}

// FuseRanked runs every producer over the engine — all streams share
// its interned rank space — and fuses the ranked streams with
// reciprocal-rank fusion (k <= 0 means DefaultRRFK). The returned set
// is ordered by descending RRF score (ties by ascending pair code),
// deduplicated, and byte-identical for any worker or shard count; when
// the fused stream would exceed the engine's PairMemBudget it is
// spill-backed (consume with EmitPairs or a streaming matcher and
// release with Close), exactly like a budgeted blocking pass.
func (e *Engine) FuseRanked(k float64, blockers ...RankedBlocker) *CandidateSet {
	if k <= 0 {
		k = DefaultRRFK
	}
	streams := make([]RankedStream, len(blockers))
	for i, b := range blockers {
		streams[i] = b.Ranked(e)
	}
	return e.FuseStreams(k, streams...)
}

// FuseStreams is FuseRanked over already-produced ranked streams (all
// of which must live in this engine's rank space).
func (e *Engine) FuseStreams(k float64, streams ...RankedStream) *CandidateSet {
	if k <= 0 {
		k = DefaultRRFK
	}
	if e.sink.failed() {
		return &CandidateSet{ids: e.rk.ids, sink: e.sink}
	}
	fused := e.fuseRRF(k, streams)
	if e.sink.failed() {
		return &CandidateSet{ids: e.rk.ids, sink: e.sink}
	}
	reg := e.cfg.Obs
	reg.Counter("blocking.rrf_streams").Add(int64(len(streams)))
	reg.Counter("blocking.rrf_candidates").Add(int64(len(fused)))
	if e.budget > 0 && int64(len(fused))*peSize > e.budget {
		return e.spillFused(fused)
	}
	codes := make([]uint64, len(fused))
	for i, f := range fused {
		codes[i] = f.code
	}
	return &CandidateSet{ids: e.rk.ids, codes: codes, sink: e.sink}
}

// fuseRRF is the parallel rank-space RRF kernel. It returns the fused
// entries in fused order with pos rewritten to the fused rank (the
// spill path needs positions). Determinism: shard boundaries land on
// distinct-code edges, so a code's contributions always accumulate in
// one shard, summed in (stream index, ascending rank) order — the
// floating-point scores, and therefore the fused order, are identical
// for any worker or shard count.
func (e *Engine) fuseRRF(k float64, streams []RankedStream) []pe {
	// Per-stream code-sorted entries, pos = rank.
	ents := make([][]pe, len(streams))
	err := parallel.ForEach(e.cfg, len(streams), func(s int) {
		codes := streams[s].Codes
		es := make([]pe, len(codes))
		for i, c := range codes {
			es[i] = pe{code: c, pos: uint64(i)}
		}
		slices.SortFunc(es, func(a, b pe) int {
			switch {
			case peLessCode(a, b):
				return -1
			case peLessCode(b, a):
				return 1
			}
			return 0
		})
		ents[s] = es
	})
	if e.check(err) {
		return nil
	}
	// Distinct code universe plus per-code multiplicity prefix sums —
	// the weight plan for sharding the accumulation.
	total := 0
	for _, es := range ents {
		total += len(es)
	}
	if total == 0 {
		return nil
	}
	all := make([]uint64, 0, total)
	for _, es := range ents {
		for _, en := range es {
			all = append(all, en.code)
		}
	}
	slices.Sort(all)
	distinct := make([]uint64, 0, len(all))
	cum := make([]int, 1, len(all)+1)
	for i, c := range all {
		if i == 0 || c != all[i-1] {
			distinct = append(distinct, c)
			cum = append(cum, cum[len(cum)-1])
		}
		cum[len(cum)-1]++
	}
	shards := e.shards
	if shards <= 1 {
		shards = e.cfg.Workers
	}
	ranges := parallel.WeightedRanges(cum, max(shards, 1))
	e.cfg.Obs.Gauge("blocking.rrf_shards").Set(float64(len(ranges)))
	// Per-shard accumulation: walk each stream's sorted entries in
	// lockstep with the shard's distinct-code range, then sort the
	// shard's scored entries into fused order.
	per := make([][]pe, len(ranges))
	err = parallel.ForEach(e.cfg, len(ranges), func(si int) {
		lo, hi := ranges[si][0], ranges[si][1]
		ptrs := make([]int, len(ents))
		for s, es := range ents {
			ptrs[s], _ = slices.BinarySearchFunc(es, distinct[lo], func(en pe, c uint64) int {
				switch {
				case en.code < c:
					return -1
				case en.code > c:
					return 1
				}
				return 0
			})
		}
		out := make([]pe, 0, hi-lo)
		for ci := lo; ci < hi; ci++ {
			code := distinct[ci]
			score := 0.0
			for s, es := range ents {
				p := ptrs[s]
				for p < len(es) && es[p].code == code {
					score += 1 / (k + float64(es[p].pos) + 1)
					p++
				}
				ptrs[s] = p
			}
			out = append(out, pe{code: code, pos: fusedKey(score)})
		}
		slices.SortFunc(out, func(a, b pe) int {
			switch {
			case peLessKeyCode(a, b):
				return -1
			}
			return 1
		})
		per[si] = out
	})
	if e.check(err) {
		return nil
	}
	// Deterministic sorted merge of the per-shard fused orders, then
	// rewrite pos from packed score key to fused rank.
	sources := make([]peSource, len(per))
	for i, es := range per {
		sources[i] = &sliceSource{ents: es}
	}
	fused := make([]pe, 0, len(distinct))
	err = mergePE(sources, peLessKeyCode, func(en pe) error {
		fused = append(fused, pe{code: en.code, pos: uint64(len(fused))})
		return nil
	})
	if e.check(err) {
		return nil
	}
	return fused
}

// spillFused writes a fused stream to disk run files and returns the
// spill-backed candidate set: emission runs in fused order (each chunk
// is a contiguous rank range, so the position merge replays the exact
// fused order) plus the by-code membership stream unions probe. The
// long-lived set then holds no pair state in RAM.
func (e *Engine) spillFused(fused []pe) *CandidateSet {
	reg := e.cfg.Obs
	dir, err := os.MkdirTemp(e.dir, "bdi-rrf-*")
	if e.check(err) {
		return &CandidateSet{ids: e.rk.ids, sink: e.sink}
	}
	fail := func(err error) *CandidateSet {
		os.RemoveAll(dir)
		e.check(err)
		return &CandidateSet{ids: e.rk.ids, sink: e.sink}
	}
	ss := &spillSet{dir: dir, reg: reg, n: len(fused)}
	ss.refs.Store(1)
	var written int64
	capE := runCap(e.budget, 1)
	for seq, lo := 0, 0; lo < len(fused); seq++ {
		hi := min(lo+capE, len(fused))
		w, werr := createRun(dir, fmt.Sprintf("c-%05d.run", seq))
		if werr != nil {
			return fail(werr)
		}
		for _, en := range fused[lo:hi] {
			if werr := w.write(en); werr != nil {
				w.close()
				return fail(werr)
			}
		}
		if werr := w.close(); werr != nil {
			return fail(werr)
		}
		ss.emitRuns = append(ss.emitRuns, w.path)
		written += w.n
		lo = hi
	}
	byCode := slices.Clone(fused)
	slices.SortFunc(byCode, func(a, b pe) int {
		switch {
		case peLessCode(a, b):
			return -1
		case peLessCode(b, a):
			return 1
		}
		return 0
	})
	bw, err := createRun(dir, "bycode.run")
	if err != nil {
		return fail(err)
	}
	for _, en := range byCode {
		if err := bw.write(en); err != nil {
			bw.close()
			return fail(err)
		}
	}
	if err := bw.close(); err != nil {
		return fail(err)
	}
	ss.byCode = bw.path
	reg.Counter("blocking.rrf_spilled").Add(int64(len(fused)))
	reg.Counter("blocking.spill_runs").Add(int64(len(ss.emitRuns)))
	reg.Counter("blocking.spill_bytes").Add((written + bw.n) * peSize)
	reg.Counter("blocking.spill_merge_runs").Add(int64(len(ss.emitRuns)))
	return &CandidateSet{ids: e.rk.ids, ext: ss, sink: e.sink}
}

// inMemoryCodes expands the collection's deduplicated codes in
// emission order, always in RAM regardless of the engine's pair-memory
// budget — ranked streams are kernel inputs, not long-lived candidate
// sets, so they bypass the spill path.
func (x *Indexed) inMemoryCodes() []uint64 {
	if x.sink.failed() {
		return nil
	}
	offs := x.pairOffsets()
	if x.shards > 1 {
		return x.shardedCodes(offs)
	}
	raw := x.rawCodes()
	if x.sink.failed() {
		return nil
	}
	return dedupCodesStable(raw)
}
