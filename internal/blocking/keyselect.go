package blocking

import (
	"fmt"
	"sort"

	"repro/internal/data"
)

// Blocking-key selection: given candidate key functions and a labelled
// sample (truth match pairs), rank keys by the harmonic mean of pair
// completeness and reduction ratio — automating the key-engineering
// step that otherwise requires domain expertise.

// KeyCandidate names a key function under evaluation.
type KeyCandidate struct {
	Name string
	Key  KeyFunc
	// MaxBlock purges oversized blocks before evaluation (0 = none).
	MaxBlock int
}

// KeyScore is one candidate's evaluation.
type KeyScore struct {
	Name             string
	PairCompleteness float64
	ReductionRatio   float64
	// Score is the harmonic mean of PC and RR (0 when either is 0).
	Score      float64
	Candidates int
}

// SelectKey evaluates each candidate against the labelled sample and
// returns the scores best-first plus the winner's name.
func SelectKey(records []*data.Record, truth []data.Pair, candidates []KeyCandidate) ([]KeyScore, string, error) {
	if len(candidates) == 0 {
		return nil, "", fmt.Errorf("blocking: no key candidates")
	}
	if len(truth) == 0 {
		return nil, "", fmt.Errorf("blocking: key selection needs labelled truth pairs")
	}
	truthSet := map[data.Pair]bool{}
	for _, p := range truth {
		truthSet[p] = true
	}
	total := len(records) * (len(records) - 1) / 2

	scores := make([]KeyScore, 0, len(candidates))
	for _, cand := range candidates {
		pairs := BuildBlocks(records, cand.Key).Purge(cand.MaxBlock).Pairs()
		hit := 0
		for _, p := range pairs {
			if truthSet[p] {
				hit++
			}
		}
		ks := KeyScore{Name: cand.Name, Candidates: len(pairs)}
		ks.PairCompleteness = float64(hit) / float64(len(truthSet))
		if total > 0 {
			ks.ReductionRatio = 1 - float64(len(pairs))/float64(total)
		}
		if ks.PairCompleteness > 0 && ks.ReductionRatio > 0 {
			ks.Score = 2 * ks.PairCompleteness * ks.ReductionRatio /
				(ks.PairCompleteness + ks.ReductionRatio)
		}
		scores = append(scores, ks)
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Name < scores[j].Name
	})
	return scores, scores[0].Name, nil
}

// DefaultKeyCandidates returns the standard key-function line-up over
// an attribute — the menu SelectKey usually chooses from.
func DefaultKeyCandidates(attr string) []KeyCandidate {
	return []KeyCandidate{
		{Name: "exact", Key: AttrExactKey(attr), MaxBlock: 200},
		{Name: "prefix3", Key: AttrPrefixKey(attr, 3), MaxBlock: 200},
		{Name: "prefix5", Key: AttrPrefixKey(attr, 5), MaxBlock: 200},
		{Name: "token", Key: TokenKey(attr), MaxBlock: 200},
		{Name: "qgram3", Key: QGramKey(attr, 3), MaxBlock: 200},
		{Name: "soundex", Key: PhoneticKey(attr, "soundex"), MaxBlock: 200},
	}
}
