package blocking

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Meta-blocking (Papadakis et al.) restructures a redundancy-positive
// block collection (e.g. token blocking) into a blocking graph — nodes
// are records, edges are co-occurring pairs — weights the edges by
// co-occurrence evidence and prunes weak edges, cutting comparisons by
// an order of magnitude at small recall cost.
//
// The graph is built on the interned representation: each record
// carries a sorted []uint32 block-ID set, common-block counts come
// from linear merges over those sorted sets (the same kernel style the
// similarity.FeatureIndex uses for token sets), and edge scoring is
// parallelized per record shard with a deterministic rank-order merge.
// WEP/CEP/WNP pruning evaluates the same floating-point expressions in
// the same order as the sequential implementation, so the surviving
// candidate list is byte-identical at any worker count.

// WeightScheme selects the edge-weighting function.
type WeightScheme int

const (
	// CBS weights an edge by the number of common blocks.
	CBS WeightScheme = iota
	// ECBS scales CBS by the rarity of each endpoint's blocks
	// (entity-aware IDF correction).
	ECBS
	// JS weights an edge by the Jaccard similarity of the two records'
	// block sets.
	JS
)

// PruneScheme selects the edge-pruning strategy.
type PruneScheme int

const (
	// WEP (weighted edge pruning) keeps edges above the global mean
	// weight.
	WEP PruneScheme = iota
	// CEP (cardinality edge pruning) keeps the globally top-K edges,
	// K = total block assignments / 2.
	CEP
	// WNP (weighted node pruning) keeps, per node, edges above that
	// node's mean incident weight.
	WNP
)

// MetaBlocker prunes a block collection into candidate pairs.
type MetaBlocker struct {
	Weight WeightScheme
	Prune  PruneScheme
	// Workers bounds the edge-scoring workers (0 = NumCPU). Output is
	// identical for any value.
	Workers int
	// Obs records "blocking.meta_edges" / "blocking.meta_kept" when set.
	Obs *obs.Registry
}

// iedge is a weighted packed record pair.
type iedge struct {
	code uint64 // pairCode of the endpoints
	w    float64
}

// Candidates builds the blocking graph from blocks and returns the
// pairs surviving pruning.
func (mb MetaBlocker) Candidates(blocks Blocks) []data.Pair {
	return mb.Pruned(blocks.Index()).Pairs()
}

// Pruned is Candidates on the interned representation, returning the
// surviving pairs as a packed candidate set in pruning order.
// Pruning inherits x's context and error sink: on an engine built with
// NewEngineCtx a cancellation sticks to the engine and Pruned returns
// an empty candidate set; the caller reads Engine.Err afterwards.
func (mb MetaBlocker) Pruned(x *Indexed) *CandidateSet {
	if x.sink.failed() {
		return &CandidateSet{ids: x.ids}
	}
	cfg := parallel.Config{Workers: mb.Workers, Obs: obs.OrDefault(mb.Obs), Ctx: x.cfg.Ctx}
	n := len(x.ids)

	// Per-record sorted block-ID sets, filled from one flat buffer.
	// Scanning blocks in ascending index order makes each set sorted by
	// construction.
	deg := make([]int32, n)
	for _, row := range x.rows {
		for _, r := range row {
			deg[r]++
		}
	}
	offs := make([]int32, n+1)
	for r := 0; r < n; r++ {
		offs[r+1] = offs[r] + deg[r]
	}
	flat := make([]uint32, offs[n])
	cursor := make([]int32, n)
	copy(cursor, offs[:n])
	for b, row := range x.rows {
		for _, r := range row {
			flat[cursor[r]] = uint32(b)
			cursor[r]++
		}
	}
	recBlocks := func(r uint32) []uint32 { return flat[offs[r]:offs[r+1]] }

	// Edge scoring, sharded per record. Rank r owns every edge whose
	// smaller endpoint it is: the occurrences of a larger rank s across
	// r's blocks are exactly the common blocks of (r, s), so a sort +
	// run-length pass over the gathered co-occurrers yields each
	// neighbour with its CBS count — equal, by construction, to the
	// linear-merge intersection of the two sorted block-ID sets.
	nBlocks := float64(len(x.keys))
	perRec := make([][]iedge, n)
	err := parallel.ForEach(cfg, n, func(ri int) {
		r := uint32(ri)
		total := 0
		for _, b := range recBlocks(r) {
			total += len(x.rows[b])
		}
		if total == 0 {
			return
		}
		scratch := make([]uint32, 0, total)
		for _, b := range recBlocks(r) {
			for _, s := range x.rows[b] {
				if s > r {
					scratch = append(scratch, s)
				}
			}
		}
		if len(scratch) == 0 {
			return
		}
		slices.Sort(scratch)
		edges := make([]iedge, 0, len(scratch))
		for i := 0; i < len(scratch); {
			s := scratch[i]
			c := 1
			for i++; i < len(scratch) && scratch[i] == s; i++ {
				c++
			}
			edges = append(edges, iedge{
				code: pairCode(r, s),
				w:    mb.weight(c, nBlocks, deg[r], deg[s]),
			})
		}
		perRec[ri] = edges
	})
	if x.check(err) {
		return &CandidateSet{ids: x.ids}
	}
	total := 0
	for _, es := range perRec {
		total += len(es)
	}
	edges := make([]iedge, 0, total)
	for _, es := range perRec {
		edges = append(edges, es...)
	}

	// Deterministic order before pruning: weight descending, then pair
	// order (code order is (A, B) order because ranks are lexicographic).
	slices.SortFunc(edges, func(a, b iedge) int {
		if a.w != b.w {
			if a.w > b.w {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.code, b.code)
	})

	var kept []iedge
	switch mb.Prune {
	case WEP:
		kept = pruneWEP(edges)
	case CEP:
		k := 0
		for _, row := range x.rows {
			k += len(row)
		}
		k /= 2
		if k < 1 {
			k = 1
		}
		if k > len(edges) {
			k = len(edges)
		}
		kept = edges[:k]
	case WNP:
		kept = pruneWNP(edges, n)
	}
	reg := obs.OrDefault(mb.Obs)
	reg.Counter("blocking.meta_edges").Add(int64(len(edges)))
	reg.Counter("blocking.meta_kept").Add(int64(len(kept)))
	if len(kept) == 0 {
		return &CandidateSet{ids: x.ids}
	}
	codes := make([]uint64, len(kept))
	for i, e := range kept {
		codes[i] = e.code
	}
	return &CandidateSet{ids: x.ids, codes: codes}
}

// weight computes the edge weight from the common-block count and the
// endpoint degrees, with the exact floating-point expressions of the
// sequential implementation (lo is the lexicographically smaller
// endpoint, matching pair.A).
func (mb MetaBlocker) weight(c int, nBlocks float64, degLo, degHi int32) float64 {
	switch mb.Weight {
	case CBS:
		return float64(c)
	case ECBS:
		return float64(c) *
			math.Log(nBlocks/float64(degLo)) *
			math.Log(nBlocks/float64(degHi))
	case JS:
		union := int(degLo) + int(degHi) - c
		if union > 0 {
			return float64(c) / float64(union)
		}
	}
	return 0
}

func pruneWEP(edges []iedge) []iedge {
	if len(edges) == 0 {
		return nil
	}
	var sum float64
	for _, e := range edges {
		sum += e.w
	}
	mean := sum / float64(len(edges))
	var out []iedge
	for _, e := range edges {
		if e.w > mean {
			out = append(out, e)
		}
	}
	return out
}

func pruneWNP(edges []iedge, n int) []iedge {
	sum := make([]float64, n)
	cnt := make([]int32, n)
	for _, e := range edges {
		lo, hi := uint32(e.code>>32), uint32(e.code&0xffffffff)
		sum[lo] += e.w
		sum[hi] += e.w
		cnt[lo]++
		cnt[hi]++
	}
	mean := func(r uint32) float64 {
		if cnt[r] == 0 {
			return 0
		}
		return sum[r] / float64(cnt[r])
	}
	var out []iedge
	for _, e := range edges {
		lo, hi := uint32(e.code>>32), uint32(e.code&0xffffffff)
		// Keep an edge retained by either endpoint's local threshold.
		if e.w >= mean(lo) || e.w >= mean(hi) {
			out = append(out, e)
		}
	}
	return out
}
