package blocking

import (
	"math"
	"sort"

	"repro/internal/data"
)

// Meta-blocking (Papadakis et al.) restructures a redundancy-positive
// block collection (e.g. token blocking) into a blocking graph — nodes
// are records, edges are co-occurring pairs — weights the edges by
// co-occurrence evidence and prunes weak edges, cutting comparisons by
// an order of magnitude at small recall cost.

// WeightScheme selects the edge-weighting function.
type WeightScheme int

const (
	// CBS weights an edge by the number of common blocks.
	CBS WeightScheme = iota
	// ECBS scales CBS by the rarity of each endpoint's blocks
	// (entity-aware IDF correction).
	ECBS
	// JS weights an edge by the Jaccard similarity of the two records'
	// block sets.
	JS
)

// PruneScheme selects the edge-pruning strategy.
type PruneScheme int

const (
	// WEP (weighted edge pruning) keeps edges above the global mean
	// weight.
	WEP PruneScheme = iota
	// CEP (cardinality edge pruning) keeps the globally top-K edges,
	// K = total block assignments / 2.
	CEP
	// WNP (weighted node pruning) keeps, per node, edges above that
	// node's mean incident weight.
	WNP
)

// MetaBlocker prunes a block collection into candidate pairs.
type MetaBlocker struct {
	Weight WeightScheme
	Prune  PruneScheme
}

// edge is an internal weighted record pair.
type edge struct {
	p data.Pair
	w float64
}

// Candidates builds the blocking graph from blocks and returns the
// pairs surviving pruning.
func (mb MetaBlocker) Candidates(blocks Blocks) []data.Pair {
	// Per-record block membership.
	blockOf := map[string][]string{} // record → block keys
	for _, k := range blocksSorted(blocks) {
		for _, id := range blocks[k] {
			blockOf[id] = append(blockOf[id], k)
		}
	}
	// Common-block counts per pair.
	common := map[data.Pair]int{}
	for _, k := range blocksSorted(blocks) {
		ids := blocks[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				common[data.NewPair(ids[i], ids[j])]++
			}
		}
	}
	edges := make([]edge, 0, len(common))
	for p, c := range common {
		var w float64
		switch mb.Weight {
		case CBS:
			w = float64(c)
		case ECBS:
			nBlocks := float64(len(blocks))
			w = float64(c) *
				math.Log(nBlocks/float64(len(blockOf[p.A]))) *
				math.Log(nBlocks/float64(len(blockOf[p.B])))
		case JS:
			union := len(blockOf[p.A]) + len(blockOf[p.B]) - c
			if union > 0 {
				w = float64(c) / float64(union)
			}
		}
		edges = append(edges, edge{p: p, w: w})
	}
	// Deterministic order before pruning.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].p.A != edges[j].p.A {
			return edges[i].p.A < edges[j].p.A
		}
		return edges[i].p.B < edges[j].p.B
	})

	switch mb.Prune {
	case WEP:
		return pruneWEP(edges)
	case CEP:
		k := 0
		for _, ids := range blocks {
			k += len(ids)
		}
		k /= 2
		if k < 1 {
			k = 1
		}
		if k > len(edges) {
			k = len(edges)
		}
		out := make([]data.Pair, 0, k)
		for _, e := range edges[:k] {
			out = append(out, e.p)
		}
		return out
	case WNP:
		return pruneWNP(edges)
	}
	return nil
}

func pruneWEP(edges []edge) []data.Pair {
	if len(edges) == 0 {
		return nil
	}
	var sum float64
	for _, e := range edges {
		sum += e.w
	}
	mean := sum / float64(len(edges))
	var out []data.Pair
	for _, e := range edges {
		if e.w > mean {
			out = append(out, e.p)
		}
	}
	return out
}

func pruneWNP(edges []edge) []data.Pair {
	sum := map[string]float64{}
	deg := map[string]int{}
	for _, e := range edges {
		sum[e.p.A] += e.w
		sum[e.p.B] += e.w
		deg[e.p.A]++
		deg[e.p.B]++
	}
	mean := func(id string) float64 {
		if deg[id] == 0 {
			return 0
		}
		return sum[id] / float64(deg[id])
	}
	var out []data.Pair
	for _, e := range edges {
		// Keep an edge retained by either endpoint's local threshold.
		if e.w >= mean(e.p.A) || e.w >= mean(e.p.B) {
			out = append(out, e.p)
		}
	}
	return out
}

func blocksSorted(b Blocks) []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
