package blocking

import (
	"hash/fnv"
	"slices"

	"repro/internal/data"
	"repro/internal/parallel"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

// MinHashLSH is locality-sensitive-hashing blocking for web-scale ER:
// each record's token set is summarised by a MinHash signature; the
// signature is split into bands, and records colliding on any band
// become candidates. Pairs with Jaccard similarity above the scheme's
// threshold (≈ (1/bands)^(1/rows)) collide with high probability; very
// dissimilar pairs almost never do — sub-quadratic candidate
// generation without key engineering.
type MinHashLSH struct {
	// Attrs are tokenised into the record's shingle set. Default {"title"}.
	Attrs []string
	// Bands × Rows = signature length. Defaults 8 × 4 (threshold ≈ 0.59).
	Bands int
	Rows  int
	// Seed varies the hash family.
	Seed uint64
	// Workers bounds the signature-computation workers (0 = NumCPU).
	// Output is identical for any value.
	Workers int
}

func (m MinHashLSH) params() (attrs []string, bands, rows int) {
	attrs = m.Attrs
	if len(attrs) == 0 {
		attrs = []string{"title"}
	}
	bands = m.Bands
	if bands <= 0 {
		bands = 8
	}
	rows = m.Rows
	if rows <= 0 {
		rows = 4
	}
	return
}

// signature computes the record's MinHash signature of length
// bands*rows. Records without tokens return nil.
func (m MinHashLSH) signature(r *data.Record, attrs []string, n int) []uint64 {
	var tokens []string
	for _, a := range attrs {
		v := r.Get(a)
		if v.IsNull() {
			continue
		}
		tokens = append(tokens, tokenize.Words(v.String())...)
	}
	if len(tokens) == 0 {
		return nil
	}
	sig := make([]uint64, n)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, tok := range tokens {
		base := hash64(tok)
		for i := 0; i < n; i++ {
			// A cheap universal-ish family: xorshift-mix of the token
			// hash with a per-function constant derived from i and Seed.
			h := mix64(base ^ (m.Seed+uint64(i)+1)*0x9e3779b97f4a7c15)
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// Candidates implements Blocker. Signatures are computed across
// workers; buckets are expanded in sorted band-hash order with packed
// pair-code dedup, so — unlike the historical map-iteration version —
// the output order is canonical and identical for any worker count.
func (m MinHashLSH) Candidates(records []*data.Record) []data.Pair {
	attrs, bands, rows := m.params()
	n := bands * rows
	eng := NewEngine(records, m.Workers)
	sigs := parallel.Must(parallel.MapSlice(eng.cfg, records, func(r *data.Record) []uint64 {
		return m.signature(r, attrs, n)
	}))
	buckets := map[uint64][]uint32{} // band-hash → record ranks, input order
	for i := range records {
		sig := sigs[i]
		if sig == nil {
			continue
		}
		for b := 0; b < bands; b++ {
			key := bandHash(b, sig[b*rows:(b+1)*rows])
			buckets[key] = append(buckets[key], eng.ranks[i])
		}
	}
	keys := make([]uint64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var codes []uint64
	for _, k := range keys {
		ids := buckets[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				codes = append(codes, pairCode(ids[i], ids[j]))
			}
		}
	}
	return (&CandidateSet{ids: eng.rk.ids, codes: dedupCodesStable(codes)}).Pairs()
}

// EstimateJaccard estimates the Jaccard similarity of two records'
// token sets from their MinHash signatures — useful to pre-filter
// candidates without re-tokenising.
func (m MinHashLSH) EstimateJaccard(a, b *data.Record) float64 {
	attrs, bands, rows := m.params()
	n := bands * rows
	sa := m.signature(a, attrs, n)
	sb := m.signature(b, attrs, n)
	if sa == nil || sb == nil {
		return 0
	}
	agree := 0
	for i := range sa {
		if sa[i] == sb[i] {
			agree++
		}
	}
	return float64(agree) / float64(n)
}

// bandHash hashes one signature band into a bucket key. The band tag
// keeps bands in separate key spaces.
func bandHash(b int, band []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(b)
	_, _ = h.Write(buf[:1])
	for _, v := range band {
		putUint64(&buf, v)
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// PhoneticKey blocks on the phonetic encoding of the attribute value:
// "soundex" or "nysiis". Misspelled names that sound alike share keys.
func PhoneticKey(attr, scheme string) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		var keys []string
		for _, w := range tokenize.Words(v.String()) {
			var code string
			switch scheme {
			case "nysiis":
				code = similarity.NYSIIS(w)
			default:
				code = similarity.Soundex(w)
			}
			if code != "" {
				keys = append(keys, code)
			}
		}
		return keys
	}
}
