package blocking

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/similarity"
)

func rec(id, title string) *data.Record {
	return data.NewRecord(id, "s").Set("title", data.String(title))
}

func sampleRecords() []*data.Record {
	return []*data.Record{
		rec("r1", "canon eos camera"),
		rec("r2", "canon eos camera pro"),
		rec("r3", "nikon coolpix"),
		rec("r4", "nikon coolpix zoom"),
		rec("r5", "sony tv bravia"),
	}
}

func pairSet(ps []data.Pair) map[data.Pair]bool {
	m := map[data.Pair]bool{}
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func TestBuildBlocksAndPairs(t *testing.T) {
	blocks := BuildBlocks(sampleRecords(), AttrPrefixKey("title", 3))
	// canon×2 ("can"), nikon×2 ("nik"), sony×1 ("son").
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	pairs := blocks.Pairs()
	want := []data.Pair{data.NewPair("r1", "r2"), data.NewPair("r3", "r4")}
	got := pairSet(pairs)
	if len(pairs) != 2 || !got[want[0]] || !got[want[1]] {
		t.Errorf("pairs = %v", pairs)
	}
	if blocks.Comparisons() != 2 {
		t.Errorf("comparisons = %d", blocks.Comparisons())
	}
}

func TestPairsDeduplicatesAcrossBlocks(t *testing.T) {
	// Token blocking puts (r1,r2) in both "canon" and "eos" blocks.
	blocks := BuildBlocks(sampleRecords(), TokenKey("title"))
	pairs := blocks.Pairs()
	seen := map[data.Pair]int{}
	for _, p := range pairs {
		seen[p]++
		if seen[p] > 1 {
			t.Fatalf("pair %v appears twice", p)
		}
	}
	if blocks.Comparisons() <= len(pairs) {
		t.Error("comparisons (with redundancy) must exceed distinct pairs here")
	}
}

func TestPurge(t *testing.T) {
	recs := make([]*data.Record, 20)
	for i := range recs {
		recs[i] = rec(fmt.Sprintf("r%02d", i), "common brand")
	}
	blocks := BuildBlocks(recs, TokenKey("title"))
	purged := blocks.Purge(5)
	if len(purged) != 0 {
		t.Errorf("oversized blocks must be purged, got %d blocks", len(purged))
	}
	if got := blocks.Purge(0); len(got) != len(blocks) {
		t.Error("maxSize<=0 must be a no-op")
	}
}

func TestStandardBlockerMissingValues(t *testing.T) {
	recs := append(sampleRecords(), data.NewRecord("r6", "s")) // no title
	pairs := Standard{Key: AttrExactKey("title")}.Candidates(recs)
	for _, p := range pairs {
		if p.A == "r6" || p.B == "r6" {
			t.Fatal("record without key must generate no candidates")
		}
	}
}

func TestSortedNeighborhoodWindow(t *testing.T) {
	recs := []*data.Record{
		rec("a", "aaa"), rec("b", "aab"), rec("c", "aac"), rec("d", "aad"), rec("e", "aae"),
	}
	sn := SortedNeighborhood{Keys: []KeyFunc{AttrExactKey("title")}, Window: 2}
	pairs := sn.Candidates(recs)
	// Window 2: only adjacent pairs → 4 pairs.
	if len(pairs) != 4 {
		t.Fatalf("window-2 pairs = %d, want 4", len(pairs))
	}
	sn.Window = 5
	if got := len(sn.Candidates(recs)); got != 10 {
		t.Fatalf("window-5 pairs = %d, want all 10", got)
	}
}

func TestSortedNeighborhoodMultiPass(t *testing.T) {
	// Pass 1 sorts by title prefix; pass 2 by suffix-reversed key would
	// rescue records whose prefix was corrupted. Simulate with two keys.
	recs := []*data.Record{
		rec("x1", "zcanon eos"), // corrupted prefix
		rec("x2", "canon eos"),
		rec("x3", "nikon z"),
	}
	firstTok := func(r *data.Record) []string { return []string{tokenFirst(r.Get("title").String())} }
	lastTok := func(r *data.Record) []string { return []string{tokenLast(r.Get("title").String())} }
	single := SortedNeighborhood{Keys: []KeyFunc{firstTok}, Window: 2}
	multi := SortedNeighborhood{Keys: []KeyFunc{firstTok, lastTok}, Window: 2}
	singleSet := pairSet(single.Candidates(recs))
	multiSet := pairSet(multi.Candidates(recs))
	if len(multiSet) < len(singleSet) {
		t.Error("multi-pass must not lose candidates")
	}
	if !multiSet[data.NewPair("x1", "x2")] {
		t.Error("second pass must rescue the corrupted-prefix pair")
	}
}

func tokenFirst(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

func tokenLast(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return s[i+1:]
		}
	}
	return s
}

func TestQGramKeyToleratesTypos(t *testing.T) {
	recs := []*data.Record{rec("t1", "powershot"), rec("t2", "powershoot")}
	exact := Standard{Key: AttrExactKey("title")}.Candidates(recs)
	if len(exact) != 0 {
		t.Fatal("exact key must miss the typo pair")
	}
	qg := Standard{Key: QGramKey("title", 3)}.Candidates(recs)
	if !pairSet(qg)[data.NewPair("t1", "t2")] {
		t.Error("q-gram blocking must catch the typo pair")
	}
}

func TestSuffixKey(t *testing.T) {
	recs := []*data.Record{rec("u1", "xcanon"), rec("u2", "ycanon")}
	pairs := Standard{Key: SuffixKey("title", 4)}.Candidates(recs)
	if !pairSet(pairs)[data.NewPair("u1", "u2")] {
		t.Error("suffix blocking must match on shared suffix")
	}
	short := Standard{Key: SuffixKey("title", 40)}.Candidates(recs)
	if len(short) != 0 {
		t.Error("minLen longer than values must yield nothing")
	}
}

func TestCanopy(t *testing.T) {
	sim := func(a, b *data.Record) float64 {
		return similarity.Jaccard(a.Get("title").Str, b.Get("title").Str)
	}
	recs := sampleRecords()
	pairs := Canopy{Sim: sim, Loose: 0.3, Tight: 0.8}.Candidates(recs)
	got := pairSet(pairs)
	if !got[data.NewPair("r1", "r2")] || !got[data.NewPair("r3", "r4")] {
		t.Errorf("canopy missed close pairs: %v", pairs)
	}
	if got[data.NewPair("r1", "r5")] {
		t.Error("canopy must not pair unrelated records")
	}
}

func TestCanopyTerminates(t *testing.T) {
	// Even with thresholds that never remove non-centres, the centre
	// itself is consumed each round, so it must terminate.
	sim := func(a, b *data.Record) float64 { return 0 }
	recs := sampleRecords()
	if pairs := (Canopy{Sim: sim, Loose: 0.9, Tight: 0.99}).Candidates(recs); len(pairs) != 0 {
		t.Errorf("zero-similarity canopy must yield no pairs, got %v", pairs)
	}
}

func TestBlockingInvariantNoSelfPairs(t *testing.T) {
	f := func(n uint8) bool {
		recs := make([]*data.Record, int(n%20)+2)
		for i := range recs {
			recs[i] = rec(fmt.Sprintf("p%03d", i), fmt.Sprintf("title %d", i%5))
		}
		for _, p := range (Standard{Key: TokenKey("title")}).Candidates(recs) {
			if p.A == p.B || p.A > p.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
