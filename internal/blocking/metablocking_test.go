package blocking

import (
	"fmt"
	"testing"

	"repro/internal/data"
)

// noisyBlocks builds a token-blocking collection where true pairs share
// many blocks and noise pairs share only one.
func noisyBlocks() (Blocks, []data.Pair) {
	recs := []*data.Record{
		rec("a1", "acme rocket skate deluxe"),
		rec("a2", "acme rocket skate deluxe kit"),
		rec("b1", "zenix photon blender max"),
		rec("b2", "zenix photon blender max pro"),
		// Noise: shares exactly one token with each group.
		rec("n1", "acme zenix catalog"),
	}
	truth := []data.Pair{data.NewPair("a1", "a2"), data.NewPair("b1", "b2")}
	return BuildBlocks(recs, TokenKey("title")), truth
}

func TestMetaBlockingReducesComparisons(t *testing.T) {
	blocks, truth := noisyBlocks()
	base := blocks.Pairs()
	for _, scheme := range []WeightScheme{CBS, ECBS, JS} {
		mb := MetaBlocker{Weight: scheme, Prune: WEP}
		pruned := mb.Candidates(blocks)
		if len(pruned) >= len(base) {
			t.Errorf("scheme %v: pruned %d >= base %d", scheme, len(pruned), len(base))
		}
		got := pairSet(pruned)
		for _, p := range truth {
			if !got[p] {
				t.Errorf("scheme %v dropped true pair %v", scheme, p)
			}
		}
	}
}

func TestMetaBlockingCEPRespectsBudget(t *testing.T) {
	blocks, _ := noisyBlocks()
	mb := MetaBlocker{Weight: CBS, Prune: CEP}
	pruned := mb.Candidates(blocks)
	budget := 0
	for _, ids := range blocks {
		budget += len(ids)
	}
	budget /= 2
	if len(pruned) > budget {
		t.Errorf("CEP kept %d edges, budget %d", len(pruned), budget)
	}
	if len(pruned) == 0 {
		t.Error("CEP must keep at least one edge")
	}
}

func TestMetaBlockingWNPKeepsLocalBest(t *testing.T) {
	blocks, truth := noisyBlocks()
	pruned := MetaBlocker{Weight: JS, Prune: WNP}.Candidates(blocks)
	got := pairSet(pruned)
	for _, p := range truth {
		if !got[p] {
			t.Errorf("WNP dropped true pair %v", p)
		}
	}
}

func TestMetaBlockingEmpty(t *testing.T) {
	for _, prune := range []PruneScheme{WEP, CEP, WNP} {
		if got := (MetaBlocker{Prune: prune}).Candidates(Blocks{}); len(got) != 0 {
			t.Errorf("empty blocks must yield nothing, got %v", got)
		}
	}
}

func TestMetaBlockingDeterministic(t *testing.T) {
	blocks, _ := noisyBlocks()
	mb := MetaBlocker{Weight: ECBS, Prune: CEP}
	a := mb.Candidates(blocks)
	b := mb.Candidates(blocks)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMetaBlockingAtScaleBeatsTokenBlocking(t *testing.T) {
	// 40 entities × 2 records each, titles share brand tokens heavily.
	var recs []*data.Record
	var truth []data.Pair
	brands := []string{"acme", "zenix", "orion", "nova"}
	for i := 0; i < 40; i++ {
		brand := brands[i%len(brands)]
		t1 := fmt.Sprintf("%s model %d alpha beta", brand, i)
		t2 := fmt.Sprintf("%s model %d alpha", brand, i)
		a, b := fmt.Sprintf("m%da", i), fmt.Sprintf("m%db", i)
		recs = append(recs, rec(a, t1), rec(b, t2))
		truth = append(truth, data.NewPair(a, b))
	}
	blocks := BuildBlocks(recs, TokenKey("title"))
	base := blocks.Pairs()
	pruned := MetaBlocker{Weight: ECBS, Prune: WEP}.Candidates(blocks)
	if len(pruned) >= len(base)/2 {
		t.Errorf("meta-blocking kept %d of %d pairs, want < half", len(pruned), len(base))
	}
	got := pairSet(pruned)
	hits := 0
	for _, p := range truth {
		if got[p] {
			hits++
		}
	}
	if float64(hits)/float64(len(truth)) < 0.9 {
		t.Errorf("meta-blocking recall = %d/%d, want >= 0.9", hits, len(truth))
	}
}
