package blocking

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/parallel"
)

// ---------------------------------------------------------------------
// Reference implementations: verbatim copies of the sequential seed
// code the engine replaced. The regression tests below require the
// engine's output to be byte-identical to these at every worker count.
// ---------------------------------------------------------------------

func refBuildBlocks(records []*data.Record, key KeyFunc) Blocks {
	b := Blocks{}
	for _, r := range records {
		seen := map[string]bool{}
		for _, k := range key(r) {
			if k == "" || seen[k] {
				continue
			}
			seen[k] = true
			b[k] = append(b[k], r.ID)
		}
	}
	return b
}

func refPairs(b Blocks) []data.Pair {
	seen := map[data.Pair]bool{}
	keys := b.sortedKeys()
	var out []data.Pair
	for _, k := range keys {
		ids := b[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				p := data.NewPair(ids[i], ids[j])
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

func refStandard(records []*data.Record, key KeyFunc, maxBlock int) []data.Pair {
	return refPairs(refBuildBlocks(records, key).Purge(maxBlock))
}

type refEdge struct {
	p data.Pair
	w float64
}

func refMetaCandidates(mb MetaBlocker, blocks Blocks) []data.Pair {
	blockOf := map[string][]string{}
	for _, k := range blocks.sortedKeys() {
		for _, id := range blocks[k] {
			blockOf[id] = append(blockOf[id], k)
		}
	}
	common := map[data.Pair]int{}
	for _, k := range blocks.sortedKeys() {
		ids := blocks[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				common[data.NewPair(ids[i], ids[j])]++
			}
		}
	}
	edges := make([]refEdge, 0, len(common))
	for p, c := range common {
		var w float64
		switch mb.Weight {
		case CBS:
			w = float64(c)
		case ECBS:
			nBlocks := float64(len(blocks))
			w = float64(c) *
				math.Log(nBlocks/float64(len(blockOf[p.A]))) *
				math.Log(nBlocks/float64(len(blockOf[p.B])))
		case JS:
			union := len(blockOf[p.A]) + len(blockOf[p.B]) - c
			if union > 0 {
				w = float64(c) / float64(union)
			}
		}
		edges = append(edges, refEdge{p: p, w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].p.A != edges[j].p.A {
			return edges[i].p.A < edges[j].p.A
		}
		return edges[i].p.B < edges[j].p.B
	})
	switch mb.Prune {
	case WEP:
		return refPruneWEP(edges)
	case CEP:
		k := 0
		for _, ids := range blocks {
			k += len(ids)
		}
		k /= 2
		if k < 1 {
			k = 1
		}
		if k > len(edges) {
			k = len(edges)
		}
		out := make([]data.Pair, 0, k)
		for _, e := range edges[:k] {
			out = append(out, e.p)
		}
		return out
	case WNP:
		return refPruneWNP(edges)
	}
	return nil
}

func refPruneWEP(edges []refEdge) []data.Pair {
	if len(edges) == 0 {
		return nil
	}
	var sum float64
	for _, e := range edges {
		sum += e.w
	}
	mean := sum / float64(len(edges))
	var out []data.Pair
	for _, e := range edges {
		if e.w > mean {
			out = append(out, e.p)
		}
	}
	return out
}

func refPruneWNP(edges []refEdge) []data.Pair {
	sum := map[string]float64{}
	deg := map[string]int{}
	for _, e := range edges {
		sum[e.p.A] += e.w
		sum[e.p.B] += e.w
		deg[e.p.A]++
		deg[e.p.B]++
	}
	mean := func(id string) float64 {
		if deg[id] == 0 {
			return 0
		}
		return sum[id] / float64(deg[id])
	}
	var out []data.Pair
	for _, e := range edges {
		if e.w >= mean(e.p.A) || e.w >= mean(e.p.B) {
			out = append(out, e.p)
		}
	}
	return out
}

func refSortedNeighborhood(records []*data.Record, keys []KeyFunc, window int) []data.Pair {
	w := window
	if w < 2 {
		w = 5
	}
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for _, key := range keys {
		type entry struct{ k, id string }
		entries := make([]entry, 0, len(records))
		for _, r := range records {
			ks := key(r)
			if len(ks) == 0 || ks[0] == "" {
				continue
			}
			entries = append(entries, entry{k: ks[0], id: r.ID})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].k != entries[j].k {
				return entries[i].k < entries[j].k
			}
			return entries[i].id < entries[j].id
		})
		for i := range entries {
			for j := i + 1; j < len(entries) && j < i+w; j++ {
				p := data.NewPair(entries[i].id, entries[j].id)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

func refProgressiveStream(records []*data.Record, key KeyFunc, maxBlock int) []data.Pair {
	blocks := refBuildBlocks(records, key)
	type blockEntry struct {
		key string
		ids []string
	}
	entries := make([]blockEntry, 0, len(blocks))
	for k, ids := range blocks {
		if len(ids) < 2 {
			continue
		}
		if maxBlock > 0 && len(ids) > maxBlock {
			continue
		}
		entries = append(entries, blockEntry{key: k, ids: ids})
	}
	sort.Slice(entries, func(i, j int) bool {
		if len(entries[i].ids) != len(entries[j].ids) {
			return len(entries[i].ids) < len(entries[j].ids)
		}
		return entries[i].key < entries[j].key
	})
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for _, e := range entries {
		for i := 0; i < len(e.ids); i++ {
			for j := i + 1; j < len(e.ids); j++ {
				pair := data.NewPair(e.ids[i], e.ids[j])
				if !seen[pair] {
					seen[pair] = true
					out = append(out, pair)
				}
			}
		}
	}
	return out
}

func refCanopy(c Canopy, records []*data.Record) []data.Pair {
	remaining := append([]*data.Record(nil), records...)
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for len(remaining) > 0 {
		center := remaining[0]
		canopy := []*data.Record{center}
		var next []*data.Record
		for _, r := range remaining[1:] {
			s := c.Sim(center, r)
			if s >= c.Loose {
				canopy = append(canopy, r)
			}
			if s < c.Tight {
				next = append(next, r)
			}
		}
		remaining = next
		for i := 0; i < len(canopy); i++ {
			for j := i + 1; j < len(canopy); j++ {
				p := data.NewPair(canopy[i].ID, canopy[j].ID)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Workload: a deterministic noisy-product corpus with heavy token
// overlap, a sprinkle of shared identifiers and missing values.
// ---------------------------------------------------------------------

var detWords = []string{
	"acme", "ultra", "pro", "max", "mini", "camera", "lens", "tripod",
	"battery", "charger", "digital", "compact", "zoom", "kit", "black",
	"silver", "edition", "hd", "wireless", "flash",
}

// detRecords builds n records from a fixed linear-congruential stream,
// so every run and every worker count sees the same corpus. IDs are
// deliberately NOT in input order (r%7 shuffle digit) to exercise the
// rank/ID-order distinction.
func detRecords(n int) []*data.Record {
	lcg := uint64(88172645463325252)
	next := func(m int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(m))
	}
	recs := make([]*data.Record, 0, n)
	for i := 0; i < n; i++ {
		title := ""
		for w := 0; w < 3+next(4); w++ {
			if w > 0 {
				title += " "
			}
			title += detWords[next(len(detWords))]
		}
		id := fmt.Sprintf("s%d-r%04d", next(7), i)
		r := data.NewRecord(id, fmt.Sprintf("src%d", next(5))).Set("title", data.String(title))
		if next(3) == 0 {
			r.Set("pid", data.String(fmt.Sprintf("P%03d", next(n/4+1))))
		}
		if next(4) != 0 {
			r.Set("brand", data.String(detWords[next(6)]))
		}
		recs = append(recs, r)
	}
	return recs
}

var workerCounts = []int{1, 2, 8}

func samePairs(t *testing.T, name string, want, got []data.Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d pairs, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// ---------------------------------------------------------------------
// Regression tests: engine output vs the seed reference, at 1/2/8
// workers, for every blocker.
// ---------------------------------------------------------------------

func TestEngineStandardMatchesSeed(t *testing.T) {
	recs := detRecords(300)
	keys := map[string]KeyFunc{
		"token":  TokenKey("title"),
		"prefix": AttrPrefixKey("title", 4),
		"exact":  AttrExactKey("pid"),
		"qgram":  QGramKey("title", 3),
		"suffix": SuffixKey("brand", 3),
		"all":    AllTokensKey(),
	}
	for name, key := range keys {
		for _, max := range []int{0, 40} {
			want := refStandard(recs, key, max)
			for _, w := range workerCounts {
				got := Standard{Key: key, MaxBlock: max, Workers: w}.Candidates(recs)
				samePairs(t, fmt.Sprintf("%s max=%d workers=%d", name, max, w), want, got)
			}
		}
	}
}

func TestEngineBlocksMatchSeedBlocks(t *testing.T) {
	recs := detRecords(250)
	key := TokenKey("title")
	want := refBuildBlocks(recs, key)
	for _, w := range workerCounts {
		got := NewEngine(recs, w).Blocks(key).Blocks()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d blocks, want %d", w, len(got), len(want))
		}
		for k, ids := range want {
			g := got[k]
			if len(g) != len(ids) {
				t.Fatalf("workers=%d block %q: %v, want %v", w, k, g, ids)
			}
			for i := range ids {
				if g[i] != ids[i] {
					t.Fatalf("workers=%d block %q member %d: %q, want %q", w, k, i, g[i], ids[i])
				}
			}
		}
	}
}

func TestEngineMetaBlockingMatchesSeed(t *testing.T) {
	recs := detRecords(250)
	blocks := refBuildBlocks(recs, TokenKey("title")).Purge(60)
	for _, weight := range []WeightScheme{CBS, ECBS, JS} {
		for _, prune := range []PruneScheme{WEP, CEP, WNP} {
			want := refMetaCandidates(MetaBlocker{Weight: weight, Prune: prune}, blocks)
			for _, w := range workerCounts {
				mb := MetaBlocker{Weight: weight, Prune: prune, Workers: w}
				got := mb.Candidates(blocks)
				samePairs(t, fmt.Sprintf("weight=%d prune=%d workers=%d", weight, prune, w), want, got)

				// The interned fast path over an engine-built collection
				// (whose ID table spans all records) must agree too.
				idx := BuildIndexed(cfgFor(w), recs, TokenKey("title")).Purge(60)
				got2 := mb.Pruned(idx).Pairs()
				samePairs(t, fmt.Sprintf("pruned weight=%d prune=%d workers=%d", weight, prune, w), want, got2)
			}
		}
	}
}

func TestEngineSortedNeighborhoodMatchesSeed(t *testing.T) {
	recs := detRecords(300)
	keys := []KeyFunc{AttrPrefixKey("title", 5), AttrExactKey("brand")}
	for _, window := range []int{0, 3, 7} {
		want := refSortedNeighborhood(recs, keys, window)
		for _, w := range workerCounts {
			got := SortedNeighborhood{Keys: keys, Window: window, Workers: w}.Candidates(recs)
			samePairs(t, fmt.Sprintf("window=%d workers=%d", window, w), want, got)
		}
	}
}

func TestEngineProgressiveMatchesSeed(t *testing.T) {
	recs := detRecords(300)
	key := TokenKey("title")
	for _, max := range []int{0, 30} {
		want := refProgressiveStream(recs, key, max)
		for _, w := range workerCounts {
			got := Progressive{Key: key, MaxBlock: max, Workers: w}.Stream(recs)
			samePairs(t, fmt.Sprintf("max=%d workers=%d", max, w), want, got)
		}
	}
}

func TestEngineCanopyMatchesSeed(t *testing.T) {
	recs := detRecords(150)
	sim := func(a, b *data.Record) float64 {
		ta, tb := a.Get("title").String(), b.Get("title").String()
		if len(ta) == 0 || len(tb) == 0 {
			return 0
		}
		if ta[0] == tb[0] {
			return 0.9
		}
		return 0.1
	}
	c := Canopy{Sim: sim, Loose: 0.5, Tight: 0.8}
	want := refCanopy(c, recs)
	got := c.Candidates(recs)
	samePairs(t, "canopy", want, got)
}

// MinHash: the seed implementation iterated a Go map, so its ORDER was
// never deterministic — the engine's canonical order is checked for
// worker-independence, and the SET is checked against the seed.
func TestEngineMinHashCanonicalAndSetMatchesSeed(t *testing.T) {
	recs := detRecords(250)
	m := MinHashLSH{Bands: 6, Rows: 3, Seed: 7}
	base := MinHashLSH{Bands: 6, Rows: 3, Seed: 7, Workers: 1}.Candidates(recs)
	for _, w := range workerCounts[1:] {
		m.Workers = w
		samePairs(t, fmt.Sprintf("minhash workers=%d", w), base, m.Candidates(recs))
	}
	seedSet := pairSet(refMinHash(m, recs))
	gotSet := pairSet(base)
	if len(seedSet) != len(gotSet) {
		t.Fatalf("minhash set: %d pairs, want %d", len(gotSet), len(seedSet))
	}
	for p := range seedSet {
		if !gotSet[p] {
			t.Fatalf("minhash set: missing %v", p)
		}
	}
}

// refMinHash reproduces the seed bucket expansion (order irrelevant —
// only the set is compared).
func refMinHash(m MinHashLSH, records []*data.Record) []data.Pair {
	attrs, bands, rows := m.params()
	n := bands * rows
	eng := NewEngine(records, 1)
	buckets := map[uint64][]uint32{}
	for i, r := range records {
		sig := m.signature(r, attrs, n)
		if sig == nil {
			continue
		}
		for b := 0; b < bands; b++ {
			key := bandHash(b, sig[b*rows:(b+1)*rows])
			buckets[key] = append(buckets[key], eng.ranks[i])
		}
	}
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for _, ids := range buckets {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				c := pairCode(ids[i], ids[j])
				p := data.Pair{A: eng.rk.ids[c>>32], B: eng.rk.ids[c&0xffffffff]}
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Streaming, union and allocation behaviour.
// ---------------------------------------------------------------------

func TestUnionCandidatesMatchesAppendDedup(t *testing.T) {
	recs := detRecords(200)
	eng := NewEngine(recs, 4)
	token := eng.Blocks(TokenKey("title")).Purge(50).CandidateSet()
	id := eng.Blocks(AttrExactKey("pid")).CandidateSet()

	// Seed semantics: append the slices, dedup first-seen.
	var want []data.Pair
	want = append(want, token.Pairs()...)
	want = append(want, id.Pairs()...)
	seen := map[data.Pair]bool{}
	dedup := want[:0:0]
	for _, p := range want {
		if !seen[p] {
			seen[p] = true
			dedup = append(dedup, p)
		}
	}
	samePairs(t, "union shared table", dedup, UnionCandidates(token, id).Pairs())

	// Mixed ID tables (separate engines) must agree as a set and order.
	other := NewEngine(recs[:150], 2).Blocks(AttrExactKey("pid")).CandidateSet()
	var want2 []data.Pair
	want2 = append(want2, token.Pairs()...)
	want2 = append(want2, other.Pairs()...)
	seen2 := map[data.Pair]bool{}
	dedup2 := want2[:0:0]
	for _, p := range want2 {
		if !seen2[p] {
			seen2[p] = true
			dedup2 = append(dedup2, p)
		}
	}
	samePairs(t, "union mixed tables", dedup2, UnionCandidates(token, other).Pairs())
}

func TestEmitPairsOrderAndEarlyStop(t *testing.T) {
	recs := detRecords(120)
	idx := BuildIndexed(cfgFor(2), recs, TokenKey("title")).Purge(40)
	want := idx.Pairs()
	var got []data.Pair
	idx.EmitPairs(func(p data.Pair) bool {
		got = append(got, p)
		return true
	})
	samePairs(t, "emit order", want, got)

	stopAt := len(want) / 2
	n := 0
	idx.EmitPairs(func(p data.Pair) bool {
		n++
		return n < stopAt
	})
	if n != stopAt {
		t.Fatalf("early stop after %d emissions, want %d", n, stopAt)
	}
}

func TestCandidateSetRecordIDs(t *testing.T) {
	recs := detRecords(100)
	cs := BuildIndexed(cfgFor(2), recs, AttrExactKey("pid")).CandidateSet()
	ids := cs.RecordIDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("RecordIDs not sorted: %v", ids)
	}
	inPairs := map[string]bool{}
	for i := 0; i < cs.Len(); i++ {
		p := cs.Pair(i)
		inPairs[p.A] = true
		inPairs[p.B] = true
	}
	if len(ids) != len(inPairs) {
		t.Fatalf("RecordIDs has %d ids, pairs reference %d", len(ids), len(inPairs))
	}
	for _, id := range ids {
		if !inPairs[id] {
			t.Fatalf("RecordIDs includes %q which no pair references", id)
		}
	}
}

// Dedup allocations must not scale with the number of pairs: the packed
// path allocates a constant number of slices, never a map entry per
// pair.
func TestDedupAllocsDoNotScaleWithPairs(t *testing.T) {
	countAllocs := func(n int) float64 {
		codes := make([]uint64, n)
		lcg := uint64(12345)
		for i := range codes {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			codes[i] = pairCode(uint32((lcg>>33)%500), uint32((lcg>>43)%500))
		}
		buf := make([]uint64, n)
		return testing.AllocsPerRun(5, func() {
			copy(buf, codes)
			dedupCodesStable(buf)
		})
	}
	small, large := countAllocs(1_000), countAllocs(20_000)
	if large > small+2 {
		t.Fatalf("dedup allocations scale with input: %0.0f at 1k vs %0.0f at 20k", small, large)
	}
}

func cfgFor(workers int) parallel.Config {
	return parallel.Config{Workers: workers}
}
