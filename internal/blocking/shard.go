package blocking

// Sharded pair generation. The sorted key space is split into
// contiguous block ranges of roughly equal pair weight
// (parallel.WeightedRanges over the pair-count prefix sums), each
// shard expands and locally deduplicates its blocks' pairs in
// parallel, and a deterministic k-way merge reconciles codes whose
// blocks span shards. Every raw pair carries its global emission
// position, so the merged, deduplicated set can be restored to the
// exact first-occurrence order of the sequential sweep — sharded
// output is byte-identical to the unsharded engine for any shard or
// worker count.

import (
	"slices"

	"repro/internal/parallel"
)

// pe is one raw pair emission: the packed pair code plus its global
// position in the sequential emission order (sorted keys, in-block
// input order). The position makes stable dedup mergeable: the global
// first occurrence of a code is simply its minimum position.
type pe struct{ code, pos uint64 }

// peLessCode orders entries by (code, pos) — the merge key for dedup,
// where the first entry of a code run is its first global occurrence.
func peLessCode(a, b pe) bool {
	if a.code != b.code {
		return a.code < b.code
	}
	return a.pos < b.pos
}

// peLessPos orders entries by position — the merge key for restoring
// emission order (positions are globally unique).
func peLessPos(a, b pe) bool { return a.pos < b.pos }

// appendBlockEntries appends the (code, pos) entries of blocks
// [lo, hi) to buf in raw emission order, flushing through full when
// the buffer reaches its capacity. offs supplies each block's global
// starting position.
func (x *Indexed) appendBlockEntries(lo, hi int, offs []int, buf []pe, full func([]pe) ([]pe, error)) ([]pe, error) {
	var err error
	for b := lo; b < hi; b++ {
		row := x.rows[b]
		pos := uint64(offs[b])
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				buf = append(buf, pe{code: pairCode(row[i], row[j]), pos: pos})
				pos++
				if len(buf) == cap(buf) {
					if buf, err = full(buf); err != nil {
						return buf, err
					}
				}
			}
		}
	}
	return buf, nil
}

// sortCompactEntries sorts entries by (code, pos) and keeps only the
// first entry of each code — its minimum position — in place.
func sortCompactEntries(ents []pe) []pe {
	slices.SortFunc(ents, func(a, b pe) int {
		switch {
		case peLessCode(a, b):
			return -1
		case peLessCode(b, a):
			return 1
		}
		return 0
	})
	out := ents[:0]
	for i, e := range ents {
		if i == 0 || e.code != ents[i-1].code {
			out = append(out, e)
		}
	}
	return out
}

// shardPlan returns the pair-weighted block ranges for the configured
// shard count.
func (x *Indexed) shardPlan(offs []int, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	return parallel.WeightedRanges(offs, shards)
}

// shardedCodes is the sharded in-memory strategy behind CandidateSet:
// per-shard expansion and local dedup in parallel, a loser-tree merge
// by (code, pos) that drops cross-shard duplicates keeping each code's
// global first occurrence, and a final position sort restoring the
// sequential emission order.
func (x *Indexed) shardedCodes(offs []int) []uint64 {
	ranges := x.shardPlan(offs, x.shards)
	if len(ranges) == 0 {
		return nil
	}
	per := make([][]pe, len(ranges))
	err := parallel.ForEach(x.cfg, len(ranges), func(s int) {
		lo, hi := ranges[s][0], ranges[s][1]
		ents := make([]pe, 0, offs[hi]-offs[lo])
		// The buffer is sized for the whole shard, so full never fires.
		ents, _ = x.appendBlockEntries(lo, hi, offs, ents, func(b []pe) ([]pe, error) { return b, nil })
		per[s] = sortCompactEntries(ents)
	})
	if x.check(err) {
		return nil
	}
	x.cfg.Obs.Gauge("blocking.shards").Set(float64(len(ranges)))
	sources := make([]peSource, len(per))
	for i, ents := range per {
		sources[i] = &sliceSource{ents: ents}
	}
	var merged []pe
	have := false
	var last uint64
	err = mergePE(sources, peLessCode, func(e pe) error {
		if !have || e.code != last {
			merged = append(merged, e)
			last, have = e.code, true
		}
		return nil
	})
	if x.check(err) {
		return nil
	}
	slices.SortFunc(merged, func(a, b pe) int {
		switch {
		case peLessPos(a, b):
			return -1
		default:
			return 1
		}
	})
	codes := make([]uint64, len(merged))
	for i, e := range merged {
		codes[i] = e.code
	}
	return codes
}
