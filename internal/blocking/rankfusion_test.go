package blocking

import (
	"slices"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/obs"
)

func TestFuseRRFCodesReferenceOrder(t *testing.T) {
	// k=1: code 20 scores 1/2 + 1/3, 10 scores 1/2, 40 scores 1/3,
	// 30 scores 1/4 — consensus first, then by best single rank.
	got := FuseRRFCodes(1, []uint64{10, 20, 30}, []uint64{20, 40})
	want := []uint64{20, 10, 40, 30}
	if !slices.Equal(got, want) {
		t.Fatalf("fused order = %v, want %v", got, want)
	}
	// Ties (equal score from identical ranks in disjoint streams) break
	// by ascending code.
	got = FuseRRFCodes(60, []uint64{9}, []uint64{4})
	if !slices.Equal(got, []uint64{4, 9}) {
		t.Fatalf("tie order = %v, want [4 9]", got)
	}
	// k <= 0 resolves to the default constant.
	a := FuseRRFCodes(0, []uint64{3, 1}, []uint64{1})
	b := FuseRRFCodes(DefaultRRFK, []uint64{3, 1}, []uint64{1})
	if !slices.Equal(a, b) {
		t.Fatalf("k=0 order %v differs from default-k order %v", a, b)
	}
	if out := FuseRRFCodes(60); len(out) != 0 {
		t.Fatalf("no streams must fuse to nothing, got %v", out)
	}
}

// fusionWorld is a small dirty workload with enough key collisions that
// every ranked producer emits a non-trivial stream.
func fusionWorld(t *testing.T) []*data.Record {
	t.Helper()
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 31, NumEntities: 60, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 32, NumSources: 8, DirtLevel: 2,
		IdentifierRate: 0.9, HeadFraction: 0.4, TailCoverage: 0.3,
	})
	return web.Dataset.Records()
}

func fusionBlockers() []RankedBlocker {
	return []RankedBlocker{
		RankedKey{Name: "token", Key: TokenKey("title"), MaxBlock: 100},
		RankedKey{Name: "qgram", Key: QGramKey("title", 3), MaxBlock: 100},
		RankedMinHash{Name: "minhash", MinHash: MinHashLSH{Attrs: []string{"title", "pid"}}},
		RankedSortedNeighborhood{
			Name: "sortedngh",
			Keys: []KeyFunc{AttrExactKey("pid"), AttrExactKey("title")}, Window: 5,
		},
	}
}

func TestRankedStreamsAreDeduplicated(t *testing.T) {
	records := fusionWorld(t)
	e := NewEngine(records, 0)
	for _, b := range fusionBlockers() {
		s := b.Ranked(e)
		if len(s.Codes) == 0 {
			t.Fatalf("stream %s is empty", s.Name)
		}
		seen := make(map[uint64]bool, len(s.Codes))
		for _, c := range s.Codes {
			if seen[c] {
				t.Fatalf("stream %s contains duplicate code %d", s.Name, c)
			}
			seen[c] = true
		}
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFuseStreamsMatchesSequentialReference(t *testing.T) {
	records := fusionWorld(t)
	ref := NewEngine(records, 0)
	blockers := fusionBlockers()
	streams := make([]RankedStream, len(blockers))
	codeLists := make([][]uint64, len(blockers))
	for i, b := range blockers {
		streams[i] = b.Ranked(ref)
		codeLists[i] = streams[i].Codes
	}
	const k = 60
	wantPairs := ref.RankedPairs(RankedStream{Codes: FuseRRFCodes(k, codeLists...)})
	if len(wantPairs) == 0 {
		t.Fatal("reference fusion produced no pairs")
	}

	// The parallel kernel must reproduce the sequential reference for
	// every worker × shard combination, bit for bit.
	for _, workers := range []int{1, 2, 8} {
		for _, shards := range []int{1, 4, 16} {
			e := NewEngineOpts(records, Opts{Workers: workers, Shards: shards})
			cs := e.FuseRanked(k, blockers...)
			if err := e.Err(); err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if got := cs.Pairs(); !slices.Equal(got, wantPairs) {
				t.Fatalf("workers=%d shards=%d: fused stream diverged from reference", workers, shards)
			}
		}
	}
}

func TestFuseStreamsSpillPathReplaysFusedOrder(t *testing.T) {
	records := fusionWorld(t)
	ref := NewEngine(records, 0)
	blockers := fusionBlockers()
	want := ref.FuseRanked(60, blockers...).Pairs()

	reg := obs.NewRegistry()
	e := NewEngineOpts(records, Opts{
		Workers: 2, Shards: 4, PairMemBudget: int64(len(want)), Obs: reg, SpillDir: t.TempDir(),
	})
	cs := e.FuseRanked(60, blockers...)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if !cs.Spilled() {
		t.Fatal("tiny pair-memory budget must spill the fused stream")
	}
	var got []data.Pair
	cs.EmitPairs(func(p data.Pair) bool {
		got = append(got, p)
		return true
	})
	if !slices.Equal(got, want) {
		t.Fatal("spilled fused stream diverged from the in-memory order")
	}
	if cs.Len() != len(want) {
		t.Fatalf("spilled Len = %d, want %d", cs.Len(), len(want))
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("blocking.rrf_spilled").Value() == 0 || reg.Counter("blocking.spill_runs").Value() == 0 {
		t.Error("spill counters not recorded")
	}
}

func TestFuseStreamsEmptyInputs(t *testing.T) {
	records := fusionWorld(t)
	e := NewEngine(records, 0)
	if cs := e.FuseStreams(60); cs.Len() != 0 {
		t.Fatalf("fusing zero streams produced %d pairs", cs.Len())
	}
	if cs := e.FuseStreams(60, RankedStream{Name: "empty"}); cs.Len() != 0 {
		t.Fatalf("fusing an empty stream produced %d pairs", cs.Len())
	}
	// An empty stream alongside a real one contributes nothing.
	s := RankedKey{Name: "token", Key: TokenKey("title"), MaxBlock: 100}.Ranked(e)
	got := e.FuseStreams(60, RankedStream{Name: "empty"}, s).Pairs()
	want := e.RankedPairs(RankedStream{Codes: FuseRRFCodes(60, nil, s.Codes)})
	if !slices.Equal(got, want) {
		t.Fatal("empty stream changed the fused order")
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}
