package blocking

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

func TestProgressiveOrdersSmallBlocksFirst(t *testing.T) {
	// "rare" is shared by exactly the true pair; "common" by everyone.
	recs := []*data.Record{
		rec("p1", "rare common"),
		rec("p2", "rare common"),
		rec("p3", "common other1"),
		rec("p4", "common other2"),
	}
	ordered := Progressive{Key: TokenKey("title")}.Stream(recs)
	if len(ordered) == 0 {
		t.Fatal("no pairs")
	}
	if ordered[0] != data.NewPair("p1", "p2") {
		t.Errorf("first pair = %v, want the rare-key pair", ordered[0])
	}
	// Deduplicated.
	seen := map[data.Pair]bool{}
	for _, p := range ordered {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestProgressiveMaxBlock(t *testing.T) {
	recs := []*data.Record{
		rec("q1", "shared"), rec("q2", "shared"), rec("q3", "shared"), rec("q4", "shared"),
	}
	if got := (Progressive{Key: TokenKey("title"), MaxBlock: 3}).Stream(recs); len(got) != 0 {
		t.Errorf("oversized block must be skipped, got %v", got)
	}
}

func TestRecallCurveMonotoneAndCorrect(t *testing.T) {
	truth := []data.Pair{data.NewPair("a", "b"), data.NewPair("c", "d")}
	ordered := []data.Pair{
		data.NewPair("a", "b"), // hit at budget 1
		data.NewPair("a", "c"),
		data.NewPair("c", "d"), // hit at budget 3
	}
	got := RecallCurve(ordered, truth, []int{1, 2, 3, 10})
	want := []float64{0.5, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("budget curve = %v, want %v", got, want)
			break
		}
	}
	if z := RecallCurve(ordered, nil, []int{1}); z[0] != 0 {
		t.Error("no truth pairs must give zero curve")
	}
}

func TestProgressiveBeatsRandomOrderOnBudget(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 101, NumEntities: 80, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 102, NumSources: 12, DirtLevel: 1, HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()

	prog := Progressive{Key: TokenKey("title"), MaxBlock: 200}
	ordered := prog.Stream(records)
	shuffled := append([]data.Pair(nil), ordered...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	budget := len(ordered) / 10 // 10% comparison budget
	progRecall := RecallCurve(ordered, truth, []int{budget})[0]
	randRecall := RecallCurve(shuffled, truth, []int{budget})[0]
	if progRecall <= randRecall {
		t.Errorf("progressive recall %f must beat random order %f at a 10%% budget",
			progRecall, randRecall)
	}
	// Full budget: same recall by construction.
	full := len(ordered)
	if RecallCurve(ordered, truth, []int{full})[0] != RecallCurve(shuffled, truth, []int{full})[0] {
		t.Error("full-budget recall must be order-independent")
	}
}
