package blocking

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

func TestProgressiveOrdersSmallBlocksFirst(t *testing.T) {
	// "rare" is shared by exactly the true pair; "common" by everyone.
	recs := []*data.Record{
		rec("p1", "rare common"),
		rec("p2", "rare common"),
		rec("p3", "common other1"),
		rec("p4", "common other2"),
	}
	ordered := Progressive{Key: TokenKey("title")}.Stream(recs)
	if len(ordered) == 0 {
		t.Fatal("no pairs")
	}
	if ordered[0] != data.NewPair("p1", "p2") {
		t.Errorf("first pair = %v, want the rare-key pair", ordered[0])
	}
	// Deduplicated.
	seen := map[data.Pair]bool{}
	for _, p := range ordered {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestProgressiveMaxBlock(t *testing.T) {
	recs := []*data.Record{
		rec("q1", "shared"), rec("q2", "shared"), rec("q3", "shared"), rec("q4", "shared"),
	}
	if got := (Progressive{Key: TokenKey("title"), MaxBlock: 3}).Stream(recs); len(got) != 0 {
		t.Errorf("oversized block must be skipped, got %v", got)
	}
}

func TestRecallCurveMonotoneAndCorrect(t *testing.T) {
	truth := []data.Pair{data.NewPair("a", "b"), data.NewPair("c", "d")}
	ordered := []data.Pair{
		data.NewPair("a", "b"), // hit at budget 1
		data.NewPair("a", "c"),
		data.NewPair("c", "d"), // hit at budget 3
	}
	got := RecallCurve(ordered, truth, []int{1, 2, 3, 10})
	want := []float64{0.5, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("budget curve = %v, want %v", got, want)
			break
		}
	}
	if z := RecallCurve(ordered, nil, []int{1}); z[0] != 0 {
		t.Error("no truth pairs must give zero curve")
	}
}

func TestProgressiveBeatsRandomOrderOnBudget(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 101, NumEntities: 80, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 102, NumSources: 12, DirtLevel: 1, HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()

	prog := Progressive{Key: TokenKey("title"), MaxBlock: 200}
	ordered := prog.Stream(records)
	shuffled := append([]data.Pair(nil), ordered...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	budget := len(ordered) / 10 // 10% comparison budget
	progRecall := RecallCurve(ordered, truth, []int{budget})[0]
	randRecall := RecallCurve(shuffled, truth, []int{budget})[0]
	if progRecall <= randRecall {
		t.Errorf("progressive recall %f must beat random order %f at a 10%% budget",
			progRecall, randRecall)
	}
	// Full budget: same recall by construction.
	full := len(ordered)
	if RecallCurve(ordered, truth, []int{full})[0] != RecallCurve(shuffled, truth, []int{full})[0] {
		t.Error("full-budget recall must be order-independent")
	}
}

func TestRecallCurveKeepsCallerBudgetOrder(t *testing.T) {
	truth := []data.Pair{data.NewPair("a", "b"), data.NewPair("c", "d")}
	ordered := []data.Pair{
		data.NewPair("a", "b"),
		data.NewPair("a", "c"),
		data.NewPair("c", "d"),
	}
	// Unsorted budgets with duplicates, a non-positive entry and one
	// past the stream end: the output must line up position-for-position
	// with the caller's slice, which must come back untouched.
	budgets := []int{10, 1, 3, 3, 0, -2}
	orig := append([]int(nil), budgets...)
	got := RecallCurve(ordered, truth, budgets)
	want := []float64{1, 0.5, 1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("curve = %v, want %v", got, want)
		}
	}
	for i := range orig {
		if budgets[i] != orig[i] {
			t.Fatalf("budgets mutated: %v, want %v", budgets, orig)
		}
	}
}

func TestRecallCurveEmptyStreamAndOrientation(t *testing.T) {
	truth := []data.Pair{data.NewPair("a", "b")}
	if got := RecallCurve(nil, truth, []int{1, 5}); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty stream must give zero recall, got %v", got)
	}
	// Pairs arriving in reversed orientation on either side still
	// count: both stream and truth normalise before comparing.
	ordered := []data.Pair{{A: "b", B: "a"}}
	reversedTruth := []data.Pair{{A: "b", B: "a"}}
	if got := RecallCurve(ordered, truth, []int{1}); got[0] != 1 {
		t.Errorf("reversed stream pair missed: %v", got)
	}
	if got := RecallCurve(ordered, reversedTruth, []int{1}); got[0] != 1 {
		t.Errorf("reversed truth pair missed: %v", got)
	}
}

func TestProgressiveMaxBlockBoundaryKeepsExactLimit(t *testing.T) {
	recs := []*data.Record{
		rec("q1", "shared"), rec("q2", "shared"), rec("q3", "shared"),
	}
	// A block exactly at the limit survives; one past it is purged.
	if got := (Progressive{Key: TokenKey("title"), MaxBlock: 3}).Stream(recs); len(got) != 3 {
		t.Errorf("block exactly at MaxBlock must be kept, got %d pairs", len(got))
	}
	recs = append(recs, rec("q4", "shared"))
	if got := (Progressive{Key: TokenKey("title"), MaxBlock: 3}).Stream(recs); len(got) != 0 {
		t.Errorf("block one past MaxBlock must be purged, got %d pairs", len(got))
	}
}

func TestProgressiveStreamSpillsUnderPairBudget(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 103, NumEntities: 60, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 104, NumSources: 10, DirtLevel: 1, HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	want := Progressive{Key: TokenKey("title"), MaxBlock: 200}.Stream(records)
	if len(want) == 0 {
		t.Fatal("no pairs")
	}

	budgeted := Progressive{
		Key: TokenKey("title"), MaxBlock: 200,
		PairMemBudget: 1, SpillDir: t.TempDir(),
	}
	cs := budgeted.StreamSet(records)
	if !cs.Spilled() {
		t.Fatal("a 1-byte pair budget must spill the progressive stream")
	}
	var got []data.Pair
	cs.EmitPairs(func(p data.Pair) bool {
		got = append(got, p)
		return true
	})
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("spilled stream has %d pairs, in-memory %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("spilled order diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Stream itself routes through the same spill-aware path.
	if streamed := budgeted.Stream(records); len(streamed) != len(want) {
		t.Fatalf("budgeted Stream returned %d pairs, want %d", len(streamed), len(want))
	}
}
