package blocking

import (
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
)

// SortedNeighborhood implements the sorted-neighbourhood method: records
// are sorted by a sorting key and every pair within a sliding window of
// size Window becomes a candidate. MultiPass runs one pass per key
// function and unions the candidates, the standard remedy for key
// corruption. Key extraction runs across workers; window pairs dedup
// through packed codes, preserving the sequential emission order.
type SortedNeighborhood struct {
	Keys   []KeyFunc // one pass per key; each must yield ≤1 key
	Window int       // window size (≥2); default 5
	// Workers bounds the key-extraction workers (0 = NumCPU). Output
	// is identical for any value.
	Workers int
}

// Candidates implements Blocker.
func (sn SortedNeighborhood) Candidates(records []*data.Record) []data.Pair {
	w := sn.Window
	if w < 2 {
		w = 5
	}
	cfg := parallel.Config{Workers: sn.Workers}
	eng := NewEngine(records, sn.Workers)
	var codes []uint64
	for _, key := range sn.Keys {
		type entry struct {
			k    string
			rank uint32
		}
		keyed := parallel.Must(parallel.MapSlice(cfg, records, func(r *data.Record) []string { return key(r) }))
		entries := make([]entry, 0, len(records))
		for i := range records {
			ks := keyed[i]
			if len(ks) == 0 || ks[0] == "" {
				continue
			}
			entries = append(entries, entry{k: ks[0], rank: eng.ranks[i]})
		}
		// Rank order is ID order, so the (key, id) sort of the
		// sequential implementation is exactly this.
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].k != entries[j].k {
				return entries[i].k < entries[j].k
			}
			return entries[i].rank < entries[j].rank
		})
		for i := range entries {
			for j := i + 1; j < len(entries) && j < i+w; j++ {
				codes = append(codes, pairCode(entries[i].rank, entries[j].rank))
			}
		}
	}
	return (&CandidateSet{ids: eng.rk.ids, codes: dedupCodesStable(codes)}).Pairs()
}

// Canopy implements canopy clustering with a cheap similarity: records
// are greedily grouped under canopies using Sim; pairs within a canopy
// are candidates. Loose < Tight thresholds follow McCallum et al.:
// records within Loose of a centre join its canopy (and may join
// others); records within Tight are removed from further consideration
// as centres. The greedy sweep is inherently sequential; only the pair
// dedup runs on packed codes.
type Canopy struct {
	Sim   func(a, b *data.Record) float64
	Loose float64 // canopy-membership threshold (lower)
	Tight float64 // removal threshold (higher)
}

// Candidates implements Blocker.
func (c Canopy) Candidates(records []*data.Record) []data.Pair {
	eng := NewEngine(records, 1)
	rank := make(map[string]uint32, len(records))
	for i, r := range records {
		rank[r.ID] = eng.ranks[i]
	}
	remaining := append([]*data.Record(nil), records...)
	var codes []uint64
	for len(remaining) > 0 {
		center := remaining[0]
		canopy := []*data.Record{center}
		var next []*data.Record
		for _, r := range remaining[1:] {
			s := c.Sim(center, r)
			if s >= c.Loose {
				canopy = append(canopy, r)
			}
			if s < c.Tight {
				next = append(next, r)
			}
		}
		remaining = next
		for i := 0; i < len(canopy); i++ {
			for j := i + 1; j < len(canopy); j++ {
				codes = append(codes, pairCode(rank[canopy[i].ID], rank[canopy[j].ID]))
			}
		}
	}
	return (&CandidateSet{ids: eng.rk.ids, codes: dedupCodesStable(codes)}).Pairs()
}
