package blocking

import (
	"sort"

	"repro/internal/data"
)

// SortedNeighborhood implements the sorted-neighbourhood method: records
// are sorted by a sorting key and every pair within a sliding window of
// size Window becomes a candidate. MultiPass runs one pass per key
// function and unions the candidates, the standard remedy for key
// corruption.
type SortedNeighborhood struct {
	Keys   []KeyFunc // one pass per key; each must yield ≤1 key
	Window int       // window size (≥2); default 5
}

// Candidates implements Blocker.
func (sn SortedNeighborhood) Candidates(records []*data.Record) []data.Pair {
	w := sn.Window
	if w < 2 {
		w = 5
	}
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for _, key := range sn.Keys {
		type entry struct{ k, id string }
		entries := make([]entry, 0, len(records))
		for _, r := range records {
			ks := key(r)
			if len(ks) == 0 || ks[0] == "" {
				continue
			}
			entries = append(entries, entry{k: ks[0], id: r.ID})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].k != entries[j].k {
				return entries[i].k < entries[j].k
			}
			return entries[i].id < entries[j].id
		})
		for i := range entries {
			for j := i + 1; j < len(entries) && j < i+w; j++ {
				p := data.NewPair(entries[i].id, entries[j].id)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// Canopy implements canopy clustering with a cheap similarity: records
// are greedily grouped under canopies using Sim; pairs within a canopy
// are candidates. Loose < Tight thresholds follow McCallum et al.:
// records within Loose of a centre join its canopy (and may join
// others); records within Tight are removed from further consideration
// as centres.
type Canopy struct {
	Sim   func(a, b *data.Record) float64
	Loose float64 // canopy-membership threshold (lower)
	Tight float64 // removal threshold (higher)
}

// Candidates implements Blocker.
func (c Canopy) Candidates(records []*data.Record) []data.Pair {
	remaining := append([]*data.Record(nil), records...)
	seen := map[data.Pair]bool{}
	var out []data.Pair
	for len(remaining) > 0 {
		center := remaining[0]
		canopy := []*data.Record{center}
		var next []*data.Record
		for _, r := range remaining[1:] {
			s := c.Sim(center, r)
			if s >= c.Loose {
				canopy = append(canopy, r)
			}
			if s < c.Tight {
				next = append(next, r)
			}
		}
		remaining = next
		for i := 0; i < len(canopy); i++ {
			for j := i + 1; j < len(canopy); j++ {
				p := data.NewPair(canopy[i].ID, canopy[j].ID)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}
