package blocking

import (
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
)

func TestSelectKeyRanksSensibly(t *testing.T) {
	w := datagen.NewWorld(datagen.WorldConfig{Seed: 201, NumEntities: 60, Categories: []string{"camera"}})
	web := datagen.BuildWeb(w, datagen.SourceConfig{
		Seed: 202, NumSources: 10, DirtLevel: 2,
		HeadFraction: 0.4, TailCoverage: 0.3,
	})
	records := web.Dataset.Records()
	truth := web.Dataset.GroundTruthClusters().Pairs()

	scores, best, err := SelectKey(records, truth, DefaultKeyCandidates("title"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 {
		t.Fatalf("scores = %d", len(scores))
	}
	if best != scores[0].Name {
		t.Error("winner must be the top-ranked candidate")
	}
	// Sorted best-first with scores in range.
	for i, s := range scores {
		if s.Score < 0 || s.Score > 1 {
			t.Errorf("%s score %f out of range", s.Name, s.Score)
		}
		if i > 0 && s.Score > scores[i-1].Score {
			t.Error("scores not sorted")
		}
	}
	// Exact blocking on dirt-2 titles has poor PC; the winner must beat
	// it on the combined score.
	var exact KeyScore
	for _, s := range scores {
		if s.Name == "exact" {
			exact = s
		}
	}
	if scores[0].Score <= exact.Score && scores[0].Name != "exact" {
		t.Errorf("winner %s (%f) does not beat exact (%f)", scores[0].Name, scores[0].Score, exact.Score)
	}
}

func TestSelectKeyValidation(t *testing.T) {
	records := propRecords(3, 10)
	if _, _, err := SelectKey(records, nil, DefaultKeyCandidates("title")); err == nil {
		t.Error("no truth must error")
	}
	truth := []data.Pair{data.NewPair("a", "b")}
	if _, _, err := SelectKey(records, truth, nil); err == nil {
		t.Error("no candidates must error")
	}
}
