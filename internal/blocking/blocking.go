// Package blocking implements the candidate-pair generation techniques
// the Big Data Integration tutorial surveys for taming the Volume
// dimension of record linkage: standard key blocking, sorted
// neighbourhood, q-gram blocking, canopy clustering, suffix and token
// blocking, block purging, and meta-blocking over the blocking graph.
package blocking

import (
	"sort"

	"repro/internal/data"
	"repro/internal/parallel"
	"repro/internal/tokenize"
)

// KeyFunc derives zero or more blocking keys from a record. A record
// lands in one block per distinct key.
type KeyFunc func(r *data.Record) []string

// Blocker produces candidate pairs from a set of records.
type Blocker interface {
	// Candidates returns the deduplicated candidate pairs for records.
	Candidates(records []*data.Record) []data.Pair
}

// Blocks groups record IDs by blocking key. Exposed for meta-blocking,
// which consumes blocks rather than pairs.
type Blocks map[string][]string

// BuildBlocks applies key to every record and groups IDs by key. Within
// a block, IDs appear in input order. Records yielding no keys are
// unblocked (they generate no candidates). This is the sequential
// path; Engine.Blocks / BuildIndexed shard the key extraction across
// workers with byte-identical output.
func BuildBlocks(records []*data.Record, key KeyFunc) Blocks {
	b := Blocks{}
	var ks keySet
	for _, r := range records {
		ks.reset()
		for _, k := range key(r) {
			if k == "" || !ks.add(k) {
				continue
			}
			b[k] = append(b[k], r.ID)
		}
	}
	return b
}

// smallKeys is the per-record key count up to which keySet dedupes by
// scanning a reused slice instead of allocating a map.
const smallKeys = 8

// keySet deduplicates one record's blocking keys. Most key functions
// emit a handful of keys, so the common case is a linear scan of a
// small reused slice; prolific functions (q-grams, suffixes) spill to
// a map that is cleared, not reallocated, between records.
type keySet struct {
	small []string
	big   map[string]bool
}

func (s *keySet) reset() {
	s.small = s.small[:0]
	if s.big != nil {
		clear(s.big)
	}
}

// add reports whether k is new, recording it either way.
func (s *keySet) add(k string) bool {
	for _, have := range s.small {
		if have == k {
			return false
		}
	}
	if len(s.small) < smallKeys {
		s.small = append(s.small, k)
		return true
	}
	if s.big == nil {
		s.big = map[string]bool{}
	}
	if s.big[k] {
		return false
	}
	s.big[k] = true
	return true
}

// Pairs expands blocks into deduplicated candidate pairs. Dedup runs
// on packed uint64 pair codes (sorted + compacted, no per-pair heap
// allocation); the output order — first occurrence over sorted keys,
// in-block input order — is byte-identical to the historical
// map[data.Pair]bool implementation.
func (b Blocks) Pairs() []data.Pair {
	return b.Index().Pairs()
}

// EmitPairs streams the deduplicated candidate pairs to emit in Pairs
// order without materialising the pair slice, stopping early when emit
// returns false.
func (b Blocks) EmitPairs(emit func(data.Pair) bool) {
	b.Index().EmitPairs(emit)
}

// Comparisons counts the total pairwise comparisons implied by the
// blocks, counting duplicates across blocks (the meta-blocking cost
// measure).
func (b Blocks) Comparisons() int {
	n := 0
	for _, ids := range b {
		n += len(ids) * (len(ids) - 1) / 2
	}
	return n
}

// Purge removes blocks larger than maxSize — the standard block-purging
// heuristic that drops high-frequency, low-information keys (e.g. the
// block for brand "acme"). It returns the purged copy.
func (b Blocks) Purge(maxSize int) Blocks {
	if maxSize <= 0 {
		return b
	}
	out := Blocks{}
	for k, ids := range b {
		if len(ids) <= maxSize {
			out[k] = ids
		}
	}
	return out
}

// SortedKeys returns the block keys in ascending order — the canonical
// block enumeration order every pair-emission path uses.
func (b Blocks) SortedKeys() []string { return b.sortedKeys() }

func (b Blocks) sortedKeys() []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Standard is classic key blocking: records sharing any key are
// candidates.
type Standard struct {
	Key KeyFunc
	// MaxBlock purges blocks above this size when > 0.
	MaxBlock int
	// Workers bounds the block-building and pair-expansion workers
	// (0 = NumCPU). Output is identical for any value.
	Workers int
}

// Candidates implements Blocker through the interned parallel engine;
// the candidate list is byte-identical to the sequential
// BuildBlocks/Purge/Pairs path at any worker count.
func (s Standard) Candidates(records []*data.Record) []data.Pair {
	cfg := parallel.Config{Workers: s.Workers}
	return BuildIndexed(cfg, records, s.Key).Purge(s.MaxBlock).Pairs()
}

// AttrPrefixKey blocks on the first n runes of the normalised attribute
// value — the textbook blocking key.
func AttrPrefixKey(attr string, n int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		p := tokenize.Prefix(v.String(), n)
		if p == "" {
			return nil
		}
		return []string{p}
	}
}

// AttrExactKey blocks on the full normalised attribute value (identifier
// blocking, e.g. on a product id).
func AttrExactKey(attr string) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		k := tokenize.Normalize(v.String())
		if k == "" {
			return nil
		}
		return []string{k}
	}
}

// TokenKey emits one key per distinct normalised token of the attribute
// — token blocking, the schema-agnostic baseline from the heterogeneous
// ER literature.
func TokenKey(attrs ...string) KeyFunc {
	return func(r *data.Record) []string {
		var keys []string
		for _, attr := range attrs {
			v := r.Get(attr)
			if v.IsNull() {
				continue
			}
			keys = append(keys, tokenize.Words(v.String())...)
		}
		return keys
	}
}

// AllTokensKey emits a key per token of every field value — used when
// schemas are unaligned and attribute names are unreliable.
func AllTokensKey() KeyFunc {
	return func(r *data.Record) []string {
		var keys []string
		for _, a := range r.Attrs() {
			keys = append(keys, tokenize.Words(r.Fields[a].String())...)
		}
		return keys
	}
}

// QGramKey emits the padded q-grams of the attribute value as keys,
// tolerating typos in the blocking key at the cost of more blocks.
func QGramKey(attr string, q int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		return tokenize.QGrams(v.String(), q)
	}
}

// SuffixKey emits all suffixes of the normalised value with length >=
// minLen (suffix-array blocking), robust to prefix corruption.
func SuffixKey(attr string, minLen int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		s := []rune(tokenize.Normalize(v.String()))
		if len(s) < minLen {
			return nil
		}
		var keys []string
		for i := 0; i+minLen <= len(s); i++ {
			keys = append(keys, string(s[i:]))
		}
		return keys
	}
}
