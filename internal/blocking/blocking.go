// Package blocking implements the candidate-pair generation techniques
// the Big Data Integration tutorial surveys for taming the Volume
// dimension of record linkage: standard key blocking, sorted
// neighbourhood, q-gram blocking, canopy clustering, suffix and token
// blocking, block purging, and meta-blocking over the blocking graph.
package blocking

import (
	"sort"

	"repro/internal/data"
	"repro/internal/tokenize"
)

// KeyFunc derives zero or more blocking keys from a record. A record
// lands in one block per distinct key.
type KeyFunc func(r *data.Record) []string

// Blocker produces candidate pairs from a set of records.
type Blocker interface {
	// Candidates returns the deduplicated candidate pairs for records.
	Candidates(records []*data.Record) []data.Pair
}

// Blocks groups record IDs by blocking key. Exposed for meta-blocking,
// which consumes blocks rather than pairs.
type Blocks map[string][]string

// BuildBlocks applies key to every record and groups IDs by key. Within
// a block, IDs appear in input order. Records yielding no keys are
// unblocked (they generate no candidates).
func BuildBlocks(records []*data.Record, key KeyFunc) Blocks {
	b := Blocks{}
	for _, r := range records {
		seen := map[string]bool{}
		for _, k := range key(r) {
			if k == "" || seen[k] {
				continue
			}
			seen[k] = true
			b[k] = append(b[k], r.ID)
		}
	}
	return b
}

// Pairs expands blocks into deduplicated candidate pairs.
func (b Blocks) Pairs() []data.Pair {
	seen := map[data.Pair]bool{}
	keys := b.sortedKeys()
	var out []data.Pair
	for _, k := range keys {
		ids := b[k]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				p := data.NewPair(ids[i], ids[j])
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// Comparisons counts the total pairwise comparisons implied by the
// blocks, counting duplicates across blocks (the meta-blocking cost
// measure).
func (b Blocks) Comparisons() int {
	n := 0
	for _, ids := range b {
		n += len(ids) * (len(ids) - 1) / 2
	}
	return n
}

// Purge removes blocks larger than maxSize — the standard block-purging
// heuristic that drops high-frequency, low-information keys (e.g. the
// block for brand "acme"). It returns the purged copy.
func (b Blocks) Purge(maxSize int) Blocks {
	if maxSize <= 0 {
		return b
	}
	out := Blocks{}
	for k, ids := range b {
		if len(ids) <= maxSize {
			out[k] = ids
		}
	}
	return out
}

func (b Blocks) sortedKeys() []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Standard is classic key blocking: records sharing any key are
// candidates.
type Standard struct {
	Key KeyFunc
	// MaxBlock purges blocks above this size when > 0.
	MaxBlock int
}

// Candidates implements Blocker.
func (s Standard) Candidates(records []*data.Record) []data.Pair {
	return BuildBlocks(records, s.Key).Purge(s.MaxBlock).Pairs()
}

// AttrPrefixKey blocks on the first n runes of the normalised attribute
// value — the textbook blocking key.
func AttrPrefixKey(attr string, n int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		p := tokenize.Prefix(v.String(), n)
		if p == "" {
			return nil
		}
		return []string{p}
	}
}

// AttrExactKey blocks on the full normalised attribute value (identifier
// blocking, e.g. on a product id).
func AttrExactKey(attr string) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		k := tokenize.Normalize(v.String())
		if k == "" {
			return nil
		}
		return []string{k}
	}
}

// TokenKey emits one key per distinct normalised token of the attribute
// — token blocking, the schema-agnostic baseline from the heterogeneous
// ER literature.
func TokenKey(attrs ...string) KeyFunc {
	return func(r *data.Record) []string {
		var keys []string
		for _, attr := range attrs {
			v := r.Get(attr)
			if v.IsNull() {
				continue
			}
			keys = append(keys, tokenize.Words(v.String())...)
		}
		return keys
	}
}

// AllTokensKey emits a key per token of every field value — used when
// schemas are unaligned and attribute names are unreliable.
func AllTokensKey() KeyFunc {
	return func(r *data.Record) []string {
		var keys []string
		for _, a := range r.Attrs() {
			keys = append(keys, tokenize.Words(r.Fields[a].String())...)
		}
		return keys
	}
}

// QGramKey emits the padded q-grams of the attribute value as keys,
// tolerating typos in the blocking key at the cost of more blocks.
func QGramKey(attr string, q int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		return tokenize.QGrams(v.String(), q)
	}
}

// SuffixKey emits all suffixes of the normalised value with length >=
// minLen (suffix-array blocking), robust to prefix corruption.
func SuffixKey(attr string, minLen int) KeyFunc {
	return func(r *data.Record) []string {
		v := r.Get(attr)
		if v.IsNull() {
			return nil
		}
		s := []rune(tokenize.Normalize(v.String()))
		if len(s) < minLen {
			return nil
		}
		var keys []string
		for i := 0; i+minLen <= len(s); i++ {
			keys = append(keys, string(s[i:]))
		}
		return keys
	}
}
