package eval

import "repro/internal/data"

// BCubed computes the B-cubed precision/recall/F1 of a predicted
// clustering against ground truth: per-record precision is the fraction
// of its predicted cluster that truly co-refers with it; per-record
// recall is the fraction of its true cluster it was placed with. The
// macro-average over records is less dominated by large clusters than
// pairwise P/R — the complementary standard metric for entity
// resolution. Records present in only one clustering are ignored.
func BCubed(predicted, truth data.Clustering) PRF {
	pa, ta := predicted.Assignment(), truth.Assignment()
	// Cluster membership indexes.
	predMembers := membersByCluster(predicted)
	truthMembers := membersByCluster(truth)

	var pSum, rSum float64
	n := 0
	for id, pc := range pa {
		tc, ok := ta[id]
		if !ok {
			continue
		}
		n++
		// Precision: of the records predicted together with id, how
		// many share its true cluster.
		same := 0
		for _, other := range predMembers[pc] {
			if ta[other] == tc {
				if _, known := ta[other]; known {
					same++
				}
			}
		}
		pSum += float64(same) / float64(len(predMembers[pc]))
		// Recall: of the records truly together with id, how many were
		// predicted with it.
		got := 0
		for _, other := range truthMembers[tc] {
			if pa[other] == pc {
				if _, known := pa[other]; known {
					got++
				}
			}
		}
		rSum += float64(got) / float64(len(truthMembers[tc]))
	}
	if n == 0 {
		return PRF{}
	}
	m := PRF{Precision: pSum / float64(n), Recall: rSum / float64(n)}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func membersByCluster(c data.Clustering) map[int][]string {
	out := map[int][]string{}
	for i, cl := range c {
		out[i] = append([]string(nil), cl...)
	}
	return out
}
