package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func TestNewPRF(t *testing.T) {
	m := NewPRF(8, 2, 4)
	if math.Abs(m.Precision-0.8) > 1e-9 {
		t.Errorf("P = %f", m.Precision)
	}
	if math.Abs(m.Recall-8.0/12) > 1e-9 {
		t.Errorf("R = %f", m.Recall)
	}
	want := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if math.Abs(m.F1-want) > 1e-9 {
		t.Errorf("F1 = %f, want %f", m.F1, want)
	}
	z := NewPRF(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Error("0/0 must define to 0")
	}
}

func TestPRFBounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := NewPRF(int(tp), int(fp), int(fn))
		return m.Precision >= 0 && m.Precision <= 1 &&
			m.Recall >= 0 && m.Recall <= 1 &&
			m.F1 >= 0 && m.F1 <= 1 &&
			m.F1 <= math.Max(m.Precision, m.Recall)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairs(t *testing.T) {
	pred := []data.Pair{data.NewPair("a", "b"), data.NewPair("c", "d")}
	truth := []data.Pair{data.NewPair("b", "a"), data.NewPair("e", "f")}
	m := Pairs(pred, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("counts tp=%d fp=%d fn=%d", m.TP, m.FP, m.FN)
	}
}

func TestClustersPerfect(t *testing.T) {
	c := data.Clustering{{"a", "b", "c"}, {"d"}}
	m := Clusters(c, c)
	if m.F1 != 1 {
		t.Errorf("identical clusterings F1 = %f", m.F1)
	}
}

func TestClustersSplitMerge(t *testing.T) {
	truth := data.Clustering{{"a", "b", "c", "d"}}
	split := data.Clustering{{"a", "b"}, {"c", "d"}}
	m := Clusters(split, truth)
	// Split: perfect precision, partial recall (2 of 6 pairs).
	if m.Precision != 1 {
		t.Errorf("split precision = %f", m.Precision)
	}
	if math.Abs(m.Recall-2.0/6) > 1e-9 {
		t.Errorf("split recall = %f", m.Recall)
	}
	merged := data.Clustering{{"a", "b", "x", "y"}}
	m2 := Clusters(merged, data.Clustering{{"a", "b"}, {"x", "y"}})
	if m2.Recall != 1 || m2.Precision >= 1 {
		t.Errorf("merge P=%f R=%f", m2.Precision, m2.Recall)
	}
}

func TestBlocking(t *testing.T) {
	truth := []data.Pair{data.NewPair("a", "b"), data.NewPair("c", "d")}
	cands := []data.Pair{data.NewPair("a", "b"), data.NewPair("a", "c")}
	q := Blocking(cands, truth, 4) // 6 total pairs
	if q.TotalPairs != 6 || q.Candidates != 2 {
		t.Fatalf("totals wrong: %+v", q)
	}
	if math.Abs(q.ReductionRatio-4.0/6) > 1e-9 {
		t.Errorf("RR = %f", q.ReductionRatio)
	}
	if math.Abs(q.PairCompleteness-0.5) > 1e-9 {
		t.Errorf("PC = %f", q.PairCompleteness)
	}
	if math.Abs(q.PairQuality-0.5) > 1e-9 {
		t.Errorf("PQ = %f", q.PairQuality)
	}
}

func TestFusionAccuracy(t *testing.T) {
	cs := data.NewClaimSet()
	i1 := data.Item{Entity: "e1", Attr: "x"}
	i2 := data.Item{Entity: "e2", Attr: "x"}
	i3 := data.Item{Entity: "e3", Attr: "x"}
	cs.SetTruth(i1, data.Number(1))
	cs.SetTruth(i2, data.Number(2))
	fused := map[data.Item]data.Value{
		i1: data.Number(1),
		i2: data.Number(99),
		i3: data.Number(3), // no truth: skipped
	}
	acc, n := FusionAccuracy(fused, cs)
	if n != 2 || math.Abs(acc-0.5) > 1e-9 {
		t.Errorf("acc=%f n=%d", acc, n)
	}
}

func TestVariationOfInformation(t *testing.T) {
	a := data.Clustering{{"a", "b"}, {"c", "d"}}
	if vi := VariationOfInformation(a, a); math.Abs(vi) > 1e-9 {
		t.Errorf("identical VI = %f, want 0", vi)
	}
	b := data.Clustering{{"a", "c"}, {"b", "d"}}
	if vi := VariationOfInformation(a, b); vi <= 0 {
		t.Errorf("different clusterings VI = %f, want > 0", vi)
	}
	// VI is symmetric.
	c := data.Clustering{{"a"}, {"b"}, {"c", "d"}}
	if math.Abs(VariationOfInformation(a, c)-VariationOfInformation(c, a)) > 1e-9 {
		t.Error("VI must be symmetric")
	}
}
