// Package eval provides the evaluation substrate for every pipeline
// stage: pairwise precision/recall/F1 for linkage, reduction ratio and
// pair completeness/quality for blocking, cluster-comparison metrics,
// and value-level accuracy for fusion. All metrics consume generator
// ground truth; nothing here feeds back into integration decisions.
package eval

import (
	"fmt"
	"math"

	"repro/internal/data"
)

// PRF bundles precision, recall and their harmonic mean.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// String renders the metric triple compactly.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f (tp=%d fp=%d fn=%d)", m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// NewPRF computes the triple from raw counts, defining 0/0 as 0.
func NewPRF(tp, fp, fn int) PRF {
	m := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// PairSet turns pair slices into a set for comparison.
func PairSet(pairs []data.Pair) map[data.Pair]bool {
	s := make(map[data.Pair]bool, len(pairs))
	for _, p := range pairs {
		s[p] = true
	}
	return s
}

// Pairs scores predicted match pairs against truth pairs.
func Pairs(predicted, truth []data.Pair) PRF {
	ps, ts := PairSet(predicted), PairSet(truth)
	tp := 0
	for p := range ps {
		if ts[p] {
			tp++
		}
	}
	return NewPRF(tp, len(ps)-tp, len(ts)-tp)
}

// Clusters scores a predicted clustering against ground truth using
// pairwise precision/recall over intra-cluster pairs — the standard
// record-linkage clustering metric.
func Clusters(predicted, truth data.Clustering) PRF {
	return Pairs(predicted.Pairs(), truth.Pairs())
}

// BlockingQuality describes a candidate-pair set produced by blocking,
// relative to ground-truth match pairs and the total number of records.
type BlockingQuality struct {
	Candidates       int     // |candidate pairs|
	TotalPairs       int     // n*(n-1)/2
	ReductionRatio   float64 // 1 - candidates/total
	PairCompleteness float64 // recall of true matches among candidates
	PairQuality      float64 // precision of true matches among candidates
}

// String renders the blocking quality summary.
func (b BlockingQuality) String() string {
	return fmt.Sprintf("cands=%d RR=%.4f PC=%.4f PQ=%.6f", b.Candidates, b.ReductionRatio, b.PairCompleteness, b.PairQuality)
}

// Blocking computes blocking quality for candidate pairs against truth
// pairs over n records.
func Blocking(candidates, truth []data.Pair, n int) BlockingQuality {
	total := n * (n - 1) / 2
	cs, ts := PairSet(candidates), PairSet(truth)
	hit := 0
	for p := range cs {
		if ts[p] {
			hit++
		}
	}
	q := BlockingQuality{Candidates: len(cs), TotalPairs: total}
	if total > 0 {
		q.ReductionRatio = 1 - float64(len(cs))/float64(total)
	}
	if len(ts) > 0 {
		q.PairCompleteness = float64(hit) / float64(len(ts))
	}
	if len(cs) > 0 {
		q.PairQuality = float64(hit) / float64(len(cs))
	}
	return q
}

// FusionAccuracy is the fraction of data items whose fused value equals
// the ground truth. Items without known truth are skipped; it returns
// the accuracy and the number of items evaluated.
func FusionAccuracy(fused map[data.Item]data.Value, cs *data.ClaimSet) (float64, int) {
	correct, n := 0, 0
	for it, v := range fused {
		truth, ok := cs.Truth(it)
		if !ok {
			continue
		}
		n++
		if v.Equal(truth) {
			correct++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(correct) / float64(n), n
}

// VariationOfInformation computes the VI distance between two
// clusterings over the same element universe (lower is better, 0 means
// identical). Elements present in only one clustering are ignored.
func VariationOfInformation(a, b data.Clustering) float64 {
	aa, ba := a.Assignment(), b.Assignment()
	common := []string{}
	for id := range aa {
		if _, ok := ba[id]; ok {
			common = append(common, id)
		}
	}
	n := float64(len(common))
	if n == 0 {
		return 0
	}
	sizeA := map[int]float64{}
	sizeB := map[int]float64{}
	joint := map[[2]int]float64{}
	for _, id := range common {
		i, j := aa[id], ba[id]
		sizeA[i]++
		sizeB[j]++
		joint[[2]int{i, j}]++
	}
	var vi float64
	for k, nij := range joint {
		pij := nij / n
		pi := sizeA[k[0]] / n
		qj := sizeB[k[1]] / n
		vi -= pij * (math.Log(pij/pi) + math.Log(pij/qj))
	}
	return vi
}

// Accuracy is a generic proportion-correct helper defining 0/0 as 0.
func Accuracy(correct, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
