package eval

import (
	"math"
	"testing"

	"repro/internal/data"
)

func TestBCubedPerfect(t *testing.T) {
	c := data.Clustering{{"a", "b"}, {"c"}}
	m := BCubed(c, c)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("identical clusterings: %+v", m)
	}
}

func TestBCubedSplit(t *testing.T) {
	truth := data.Clustering{{"a", "b", "c", "d"}}
	split := data.Clustering{{"a", "b"}, {"c", "d"}}
	m := BCubed(split, truth)
	if m.Precision != 1 {
		t.Errorf("split precision = %f, want 1", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-9 {
		t.Errorf("split recall = %f, want 0.5", m.Recall)
	}
}

func TestBCubedMerge(t *testing.T) {
	truth := data.Clustering{{"a", "b"}, {"c", "d"}}
	merged := data.Clustering{{"a", "b", "c", "d"}}
	m := BCubed(merged, truth)
	if m.Recall != 1 {
		t.Errorf("merge recall = %f, want 1", m.Recall)
	}
	if math.Abs(m.Precision-0.5) > 1e-9 {
		t.Errorf("merge precision = %f, want 0.5", m.Precision)
	}
}

func TestBCubedLessDominatedByLargeClusters(t *testing.T) {
	// One giant correct cluster and many split singleton-pairs: pairwise
	// recall is dominated by the giant cluster's pairs; B-cubed averages
	// per record, so the split pairs pull it down harder.
	truth := data.Clustering{
		{"g1", "g2", "g3", "g4", "g5", "g6", "g7", "g8", "g9", "g10"},
		{"x1", "x2"}, {"y1", "y2"}, {"z1", "z2"},
	}
	pred := data.Clustering{
		{"g1", "g2", "g3", "g4", "g5", "g6", "g7", "g8", "g9", "g10"},
		{"x1"}, {"x2"}, {"y1"}, {"y2"}, {"z1"}, {"z2"},
	}
	pw := Clusters(pred, truth)
	bc := BCubed(pred, truth)
	if bc.Recall >= pw.Recall {
		t.Errorf("b-cubed recall %f should be below pairwise %f here", bc.Recall, pw.Recall)
	}
}

func TestBCubedIgnoresUnsharedRecords(t *testing.T) {
	truth := data.Clustering{{"a", "b"}}
	pred := data.Clustering{{"a", "b"}, {"only-in-pred"}}
	m := BCubed(pred, truth)
	if m.F1 != 1 {
		t.Errorf("unshared record must be ignored: %+v", m)
	}
	if got := BCubed(data.Clustering{}, truth); got.F1 != 0 {
		t.Errorf("no shared records: %+v", got)
	}
}
