// Package parallel is a small, deterministic map/shuffle/reduce
// framework over goroutines — the stand-in for the MapReduce clusters
// used by the scale experiments the Big Data Integration tutorial
// surveys. It exercises the same logical structure (partitioning,
// key-grouped shuffle, reduce skew) on shared memory.
//
// Every entry point is generic and allocation-conscious: no values are
// boxed through interface{}, work is handed out in dynamic chunks so
// skewed item costs cannot strand a worker, and the reduce phase runs
// on a bounded pool (never one goroutine per key). All results are
// deterministic: identical output for any worker count.
//
// Entry points return an error instead of crashing: a panic inside a
// worker function is recovered into a *PanicError, and a Config.Ctx
// cancellation is observed at chunk boundaries, so a stuck or poisoned
// stage unwinds cleanly instead of taking the process down.
package parallel

import (
	"cmp"
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config controls a job run.
type Config struct {
	Workers int             // default runtime.NumCPU()
	Obs     *obs.Registry   // optional scheduling metrics ("parallel." namespace); nil disables
	Ctx     context.Context // optional cancellation; nil means never cancelled
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// PanicError is the error returned when a worker function panics. The
// panic is recovered at the chunk boundary and surfaced to the caller,
// so one poisoned record cannot crash the whole process. Value holds
// the recovered panic value and Stack the worker stack captured at
// recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", e.Value)
}

// ctxErr reports the cancellation state of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// runChunk applies f to [start, end) with panic recovery — one
// defer/recover per chunk, never per item, so the hot loop stays free
// of per-index overhead.
func runChunk(f func(i int), start, end int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for i := start; i < end; i++ {
		f(i)
	}
	return nil
}

// Must unwraps a (value, error) result from Run or MapSlice on
// infallible paths: callers that configure no Ctx and trust f not to
// panic keep their value-only call chains, and an unexpected error
// escalates to a panic instead of being silently dropped.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Must0 is Must for the error-only entry points (ForEach, ForEachPair).
func Must0(err error) {
	if err != nil {
		panic(err)
	}
}

// Run executes a full map→shuffle→reduce job over items and returns the
// reducer outputs. The map function emits (key, value) pairs; the
// reduce function sees one key with all its values. Output order is
// deterministic regardless of worker count: reduce keys are processed
// in sorted order, outputs are concatenated in that order, and within a
// key, values appear in input order (stable shuffle). The reduce phase
// runs on the same bounded worker pool as the map phase — key
// cardinality never translates into goroutine count. A worker panic or
// a Config.Ctx cancellation aborts the job and is returned as the
// error; the partial output is discarded.
func Run[I any, K cmp.Ordered, V, O any](cfg Config, items []I, m func(item I, emit func(K, V)), r func(key K, values []V, emit func(O))) ([]O, error) {
	grouped, err := mapAndShuffle(cfg, items, m)
	if err != nil {
		return nil, err
	}

	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	slices.Sort(keys)

	// Reduce on the bounded pool, preserving key order in the output.
	// Dynamic chunking absorbs reduce skew (hot keys with many values).
	outs := make([][]O, len(keys))
	if err := ForEach(cfg, len(keys), func(i int) {
		k := keys[i]
		r(k, grouped[k], func(o O) { outs[i] = append(outs[i], o) })
	}); err != nil {
		return nil, err
	}

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	flat := make([]O, 0, total)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return flat, nil
}

// mapAndShuffle runs the map phase over items with the configured
// worker count and groups emissions by key. Emissions are buffered per
// input index, so grouping order depends only on input order, never on
// worker scheduling.
func mapAndShuffle[I any, K cmp.Ordered, V any](cfg Config, items []I, m func(item I, emit func(K, V))) (map[K][]V, error) {
	type emission struct {
		k K
		v V
	}
	emissionsPer := make([][]emission, len(items))
	if err := ForEach(cfg, len(items), func(i int) {
		m(items[i], func(k K, v V) {
			emissionsPer[i] = append(emissionsPer[i], emission{k: k, v: v})
		})
	}); err != nil {
		return nil, err
	}

	grouped := map[K][]V{}
	for _, ems := range emissionsPer {
		for _, e := range ems {
			grouped[e.k] = append(grouped[e.k], e.v)
		}
	}
	return grouped, nil
}

// Partition assigns a key to one of n buckets by FNV hash — the
// hash-partitioner used when fanning records out to blocking workers.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// ForEach applies f to every index in [0,n) using the configured number
// of workers, blocking until done. Work is handed out in dynamically
// sized chunks from a shared counter, so skewed per-index costs (large
// blocks, hot reduce keys) rebalance across workers instead of
// stranding one on a static range. Each index is visited exactly once;
// callers writing results by index get deterministic output for any
// worker count.
//
// A nil return means every index ran. When Config.Ctx is cancelled the
// workers stop at the next chunk boundary and the context error is
// returned; when f panics the panic is recovered into a *PanicError,
// the remaining workers drain, and the error is returned. In both
// cases some indexes may not have run — callers must discard partial
// results on error.
func ForEach(cfg Config, n int, f func(i int)) error {
	if n <= 0 {
		return nil
	}
	reg := obs.OrDefault(cfg.Obs)
	reg.Counter("parallel.foreach_calls").Inc()
	reg.Counter("parallel.tasks").Add(int64(n))
	ctx := cfg.Ctx
	w := cfg.workers()
	if w > n {
		w = n
	}
	// ~8 hand-outs per worker: tail imbalance bounded by ~1/(8w) of the
	// work while keeping shared-counter traffic negligible. The chunk is
	// also the cancellation granularity.
	chunk := n / (8 * w)
	if chunk < 1 {
		chunk = 1
	}
	if w <= 1 {
		for start := 0; start < n; start += chunk {
			if err := ctxErr(ctx); err != nil {
				reg.Counter("parallel.cancelled").Inc()
				return err
			}
			end := start + chunk
			if end > n {
				end = n
			}
			if err := runChunk(f, start, end); err != nil {
				return err
			}
		}
		return nil
	}
	chunks := reg.Counter("parallel.chunks")
	busy := reg.Timer("parallel.worker_busy")
	var next atomic.Int64
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker accumulation: one counter Add and one timer
			// Observe per worker, not per chunk, keeps the shared
			// metric traffic off the hand-out loop.
			var t0 time.Time
			if busy != nil {
				t0 = time.Now()
			}
			taken := int64(0)
			for !stop.Load() {
				if err := ctxErr(ctx); err != nil {
					fail(err)
					break
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					break
				}
				taken++
				if end > n {
					end = n
				}
				if err := runChunk(f, start, end); err != nil {
					fail(err)
					break
				}
			}
			chunks.Add(taken)
			if busy != nil {
				busy.Observe(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if _, ok := firstErr.(*PanicError); !ok {
			reg.Counter("parallel.cancelled").Inc()
		}
	}
	return firstErr
}

// ForEachPair applies f to every unordered pair (i, j), i < j, drawn
// from [0,n), in parallel. k is the pair's rank in lexicographic (i, j)
// order — callers write results to slot k for deterministic assembly.
// The triangular flat index is decoded per pair by binary search on the
// row-start offsets, so work is handed out with the same dynamic
// chunking as ForEach and a skewed row cannot strand a worker. Errors
// propagate exactly as in ForEach.
func ForEachPair(cfg Config, n int, f func(k, i, j int)) error {
	if n < 2 {
		return nil
	}
	// rowStart(i) = number of pairs whose first element precedes i.
	rowStart := func(i int) int { return i*(2*n-i-1) / 2 }
	total := rowStart(n - 1)
	return ForEach(cfg, total, func(k int) {
		lo, hi := 0, n-2
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if rowStart(mid) <= k {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		f(k, lo, lo+1+(k-rowStart(lo)))
	})
}

// WeightedRanges splits the n items described by the prefix-sum slice
// cum (len n+1, cum[i] = total weight of items [0,i)) into at most
// shards contiguous ranges of roughly equal weight. Boundaries are
// chosen by binary search on the cumulative weight, so they depend only
// on (cum, shards) — never on worker count or scheduling — and empty
// ranges are dropped. This is the shard planner for stages whose
// per-item cost is known up front (pair generation over blocks, where
// the weight of a block is its pair count).
func WeightedRanges(cum []int, shards int) [][2]int {
	n := len(cum) - 1
	if n <= 0 {
		return nil
	}
	total := cum[n]
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if total <= 0 {
		// All items weightless: fall back to equal item counts so the
		// items are still covered exactly once.
		out := make([][2]int, 0, shards)
		for s := 0; s < shards; s++ {
			lo, hi := n*s/shards, n*(s+1)/shards
			if lo < hi {
				out = append(out, [2]int{lo, hi})
			}
		}
		return out
	}
	out := make([][2]int, 0, shards)
	lo := 0
	for s := 1; s <= shards; s++ {
		target := total * s / shards
		// First index whose cumulative weight reaches the target: the
		// shard boundary lands on an item edge, never inside an item.
		hi, _ := slices.BinarySearch(cum[lo:], target)
		hi += lo
		if hi > n {
			hi = n
		}
		if s == shards {
			hi = n
		}
		if lo < hi {
			out = append(out, [2]int{lo, hi})
			lo = hi
		}
	}
	return out
}

// ReduceShards runs m over each [lo, hi) range in parallel on the
// bounded pool, then reduces the shard outputs sequentially in shard
// order — the deterministic cross-shard merge used by the sharded
// blocking engine. The map phase inherits cfg's workers, metrics and
// cancellation; the reduce phase runs on the calling goroutine, so r
// needs no synchronisation and its side effects happen in shard order
// for any worker count. The first error (cancellation, worker panic,
// or an error returned by r) aborts the job.
func ReduceShards[T any](cfg Config, ranges [][2]int, m func(shard, lo, hi int) T, r func(shard int, v T) error) error {
	outs := make([]T, len(ranges))
	if err := ForEach(cfg, len(ranges), func(s int) {
		outs[s] = m(s, ranges[s][0], ranges[s][1])
	}); err != nil {
		return err
	}
	for s, v := range outs {
		if err := r(s, v); err != nil {
			return err
		}
	}
	return nil
}

// MapSlice applies f to every element of a slice in parallel and
// returns outputs in input order. On error the partial output is
// discarded.
func MapSlice[I, O any](cfg Config, in []I, f func(item I) O) ([]O, error) {
	out := make([]O, len(in))
	if err := ForEach(cfg, len(in), func(i int) { out[i] = f(in[i]) }); err != nil {
		return nil, err
	}
	return out, nil
}

// Errgroup runs fns concurrently and returns the first error. A panic
// inside a task is recovered into a *PanicError rather than crashing
// the process.
func Errgroup(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parallel: task %d: %w", i, err)
		}
	}
	return nil
}
