// Package parallel is a small, deterministic map/shuffle/reduce
// framework over goroutines — the stand-in for the MapReduce clusters
// used by the scale experiments the Big Data Integration tutorial
// surveys. It exercises the same logical structure (partitioning,
// key-grouped shuffle, reduce skew) on shared memory.
//
// Every entry point is generic and allocation-conscious: no values are
// boxed through interface{}, work is handed out in dynamic chunks so
// skewed item costs cannot strand a worker, and the reduce phase runs
// on a bounded pool (never one goroutine per key). All results are
// deterministic: identical output for any worker count.
package parallel

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config controls a job run.
type Config struct {
	Workers int           // default runtime.NumCPU()
	Obs     *obs.Registry // optional scheduling metrics ("parallel." namespace); nil disables
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// Run executes a full map→shuffle→reduce job over items and returns the
// reducer outputs. The map function emits (key, value) pairs; the
// reduce function sees one key with all its values. Output order is
// deterministic regardless of worker count: reduce keys are processed
// in sorted order, outputs are concatenated in that order, and within a
// key, values appear in input order (stable shuffle). The reduce phase
// runs on the same bounded worker pool as the map phase — key
// cardinality never translates into goroutine count.
func Run[I any, K cmp.Ordered, V, O any](cfg Config, items []I, m func(item I, emit func(K, V)), r func(key K, values []V, emit func(O))) []O {
	grouped := mapAndShuffle(cfg, items, m)

	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	slices.Sort(keys)

	// Reduce on the bounded pool, preserving key order in the output.
	// Dynamic chunking absorbs reduce skew (hot keys with many values).
	outs := make([][]O, len(keys))
	ForEach(cfg, len(keys), func(i int) {
		k := keys[i]
		r(k, grouped[k], func(o O) { outs[i] = append(outs[i], o) })
	})

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	flat := make([]O, 0, total)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return flat
}

// mapAndShuffle runs the map phase over items with the configured
// worker count and groups emissions by key. Emissions are buffered per
// input index, so grouping order depends only on input order, never on
// worker scheduling.
func mapAndShuffle[I any, K cmp.Ordered, V any](cfg Config, items []I, m func(item I, emit func(K, V))) map[K][]V {
	type emission struct {
		k K
		v V
	}
	emissionsPer := make([][]emission, len(items))
	ForEach(cfg, len(items), func(i int) {
		m(items[i], func(k K, v V) {
			emissionsPer[i] = append(emissionsPer[i], emission{k: k, v: v})
		})
	})

	grouped := map[K][]V{}
	for _, ems := range emissionsPer {
		for _, e := range ems {
			grouped[e.k] = append(grouped[e.k], e.v)
		}
	}
	return grouped
}

// Partition assigns a key to one of n buckets by FNV hash — the
// hash-partitioner used when fanning records out to blocking workers.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// ForEach applies f to every index in [0,n) using the configured number
// of workers, blocking until done. Work is handed out in dynamically
// sized chunks from a shared counter, so skewed per-index costs (large
// blocks, hot reduce keys) rebalance across workers instead of
// stranding one on a static range. Each index is visited exactly once;
// callers writing results by index get deterministic output for any
// worker count.
func ForEach(cfg Config, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	reg := obs.OrDefault(cfg.Obs)
	reg.Counter("parallel.foreach_calls").Inc()
	reg.Counter("parallel.tasks").Add(int64(n))
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	// ~8 hand-outs per worker: tail imbalance bounded by ~1/(8w) of the
	// work while keeping shared-counter traffic negligible.
	chunk := n / (8 * w)
	if chunk < 1 {
		chunk = 1
	}
	chunks := reg.Counter("parallel.chunks")
	busy := reg.Timer("parallel.worker_busy")
	var next atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker accumulation: one counter Add and one timer
			// Observe per worker, not per chunk, keeps the shared
			// metric traffic off the hand-out loop.
			var t0 time.Time
			if busy != nil {
				t0 = time.Now()
			}
			taken := int64(0)
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					break
				}
				taken++
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
			chunks.Add(taken)
			if busy != nil {
				busy.Observe(time.Since(t0))
			}
		}()
	}
	wg.Wait()
}

// ForEachPair applies f to every unordered pair (i, j), i < j, drawn
// from [0,n), in parallel. k is the pair's rank in lexicographic (i, j)
// order — callers write results to slot k for deterministic assembly.
// The triangular flat index is decoded per pair by binary search on the
// row-start offsets, so work is handed out with the same dynamic
// chunking as ForEach and a skewed row cannot strand a worker.
func ForEachPair(cfg Config, n int, f func(k, i, j int)) {
	if n < 2 {
		return
	}
	// rowStart(i) = number of pairs whose first element precedes i.
	rowStart := func(i int) int { return i*(2*n-i-1) / 2 }
	total := rowStart(n - 1)
	ForEach(cfg, total, func(k int) {
		lo, hi := 0, n-2
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if rowStart(mid) <= k {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		f(k, lo, lo+1+(k-rowStart(lo)))
	})
}

// MapSlice applies f to every element of a slice in parallel and
// returns outputs in input order.
func MapSlice[I, O any](cfg Config, in []I, f func(item I) O) []O {
	out := make([]O, len(in))
	ForEach(cfg, len(in), func(i int) { out[i] = f(in[i]) })
	return out
}

// Errgroup runs fns concurrently and returns the first error.
func Errgroup(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parallel: task %d: %w", i, err)
		}
	}
	return nil
}
